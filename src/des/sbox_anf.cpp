#include "des/sbox_anf.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "des/des_reference.hpp"

namespace glitchmask::des {

namespace {

constexpr std::array<std::uint8_t, 10> kProductMonomials = {
    0b0011, 0b0101, 0b0110, 0b1001, 0b1010, 0b1100,  // degree 2
    0b0111, 0b1011, 0b1101, 0b1110};                 // degree 3

}  // namespace

MiniSboxAnf mini_sbox_anf(unsigned box, unsigned row) {
    MiniSboxAnf anf;
    for (unsigned bit = 0; bit < 4; ++bit) {
        // Truth table of coordinate y_{bit+1}: output nibble bit (3 - bit).
        std::array<std::uint8_t, 16> coeff{};
        for (unsigned column = 0; column < 16; ++column)
            coeff[column] =
                (mini_sbox(box, row, static_cast<std::uint8_t>(column)) >>
                 (3 - bit)) &
                1u;
        // In-place Moebius transform (XOR butterfly per variable).
        for (unsigned stride = 1; stride < 16; stride <<= 1)
            for (unsigned m = 0; m < 16; ++m)
                if ((m & stride) != 0) coeff[m] ^= coeff[m ^ stride];
        for (unsigned mask = 0; mask < 16; ++mask)
            if (coeff[mask] != 0)
                anf.terms[bit].push_back(static_cast<std::uint8_t>(mask));
    }
    return anf;
}

std::uint8_t eval_mini_anf(const MiniSboxAnf& anf, std::uint8_t column) {
    std::uint8_t out = 0;
    for (unsigned bit = 0; bit < 4; ++bit) {
        unsigned value = 0;
        for (const std::uint8_t mask : anf.terms[bit])
            value ^= ((column & mask) == mask) ? 1u : 0u;
        out |= static_cast<std::uint8_t>(value << (3 - bit));
    }
    return out;
}

int max_degree(const MiniSboxAnf& anf) {
    int degree = 0;
    for (const auto& terms : anf.terms)
        for (const std::uint8_t mask : terms)
            degree = std::max(degree, std::popcount(mask));
    return degree;
}

std::span<const std::uint8_t> all_product_monomials() {
    return kProductMonomials;
}

std::size_t product_monomial_index(std::uint8_t mask) {
    for (std::size_t i = 0; i < kProductMonomials.size(); ++i)
        if (kProductMonomials[i] == mask) return i;
    throw std::out_of_range("product_monomial_index: not a product monomial");
}

}  // namespace glitchmask::des
