#!/usr/bin/env bash
# Reference CI recipe: configure + build + test one or more presets.
# With no arguments the default sweep runs the Release preset and then the
# AddressSanitizer preset (heap/stack bugs in the checkpoint and snapshot
# I/O paths would otherwise only surface as flaky corruption); pass
# explicit preset names to run a subset, e.g. `scripts/ci.sh release` or
# `scripts/ci.sh asan tsan`.  Exits nonzero on any build or test failure.
#
# The release and asan legs smoke per-net leakage attribution end to end
# (examples/inspect_gadget trichina --attribute).  The release leg
# additionally gates observability:
#   * one extra ctest pass under GLITCHMASK_LOG=debug (log call sites in
#     the hot paths must never change a result or crash);
#   * bench/campaign_throughput's telemetry_overhead must stay <= 3%,
#     and its attribution_off_overhead <= 1% (the disabled probe tap
#     must be free).
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ "${#presets[@]}" -eq 0 ]; then
  presets=(release asan)
fi
for preset in "${presets[@]}"; do
  case "$preset" in
    release|asan|tsan) ;;
    *) echo "usage: scripts/ci.sh [release|asan|tsan ...]" >&2; exit 2 ;;
  esac
done

jobs="$(nproc 2>/dev/null || echo 2)"

for preset in "${presets[@]}"; do
  echo "==> preset: $preset"
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$jobs"
  ctest --preset "$preset" -j "$jobs"

  if [ "$preset" = "release" ] || [ "$preset" = "asan" ]; then
    builddir="build"
    [ "$preset" = "asan" ] && builddir="build-asan"
    echo "==> $preset extras: attribution smoke (inspect_gadget trichina)"
    (cd "$builddir/examples" &&
      ./inspect_gadget trichina --attribute --top-k 5 > /dev/null)
  fi

  if [ "$preset" = "release" ]; then
    echo "==> release extras: suite under GLITCHMASK_LOG=debug"
    GLITCHMASK_LOG=debug ctest --preset "$preset" -j "$jobs"

    echo "==> release extras: telemetry overhead gate (bar: 3%)"
    (cd build/bench && GLITCHMASK_TRACES=96 ./campaign_throughput > /dev/null)
    overhead="$(sed -n 's/.*"telemetry_overhead": \(-\{0,1\}[0-9.]*\).*/\1/p' \
      build/bench/BENCH_batch_sim.json)"
    if [ -z "$overhead" ]; then
      echo "FAIL: telemetry_overhead missing from BENCH_batch_sim.json" >&2
      exit 1
    fi
    if ! awk -v x="$overhead" 'BEGIN { exit !(x <= 0.03) }'; then
      echo "FAIL: telemetry overhead ${overhead} exceeds the 0.03 bar" >&2
      exit 1
    fi
    echo "telemetry overhead: ${overhead} (<= 0.03)"

    echo "==> release extras: attribution-off overhead gate (bar: 1%)"
    attr_off="$(sed -n 's/.*"attribution_off_overhead": \(-\{0,1\}[0-9.]*\).*/\1/p' \
      build/bench/BENCH_batch_sim.json)"
    if [ -z "$attr_off" ]; then
      echo "FAIL: attribution_off_overhead missing from BENCH_batch_sim.json" >&2
      exit 1
    fi
    if ! awk -v x="$attr_off" 'BEGIN { exit !(x <= 0.01) }'; then
      echo "FAIL: attribution-off overhead ${attr_off} exceeds the 0.01 bar" >&2
      exit 1
    fi
    echo "attribution-off overhead: ${attr_off} (<= 0.01)"
  fi
done
