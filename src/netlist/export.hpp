// Netlist export: structural Verilog and Graphviz DOT.
//
// The Verilog export emits one `assign` per combinational cell and one
// clocked `always` block per flip-flop, with the enable/reset control
// groups exposed as module ports (`en_g<k>` / `rst_g<k>`) -- exactly the
// interface the C++ control FSMs drive in simulation, so a design can be
// taken to a real synthesis flow with the same controller contract.
// Primary inputs become input ports; nets without fanout become output
// ports.  Cell and net names use the hierarchical names recorded by the
// builder (sanitized), falling back to n<id>.
//
// The DOT export draws the gate graph for inspection of small gadgets;
// cells are shaped by kind and DelayBuf chains are collapsed into single
// labelled nodes to keep secAND2-PD drawings readable.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "netlist/netlist.hpp"

namespace glitchmask::netlist {

/// Structural Verilog for the whole netlist as one module.
[[nodiscard]] std::string to_verilog(const Netlist& nl,
                                     std::string_view module_name);

/// Writes to_verilog() to `path`; throws std::runtime_error on I/O error.
void write_verilog(const Netlist& nl, const std::string& path,
                   std::string_view module_name);

struct DotOptions {
    /// Collapse runs of DelayBuf cells into one node labelled "delay xN".
    bool collapse_delay_chains = true;
    /// Refuse to draw more than this many cells (0 = unlimited).
    std::size_t max_cells = 2000;
    /// Optional per-cell extra label line, indexed by CellId (empty
    /// string or short vector = no annotation).  Used by the leakage
    /// attribution export to stamp |t| / glitch counts onto cells.
    std::vector<std::string> cell_annotations;
    /// Optional per-cell fill color (any Graphviz color, e.g. an HSV
    /// triple "0.0 0.85 1.0"); non-empty entries render filled.
    std::vector<std::string> cell_colors;
};

/// Graphviz "digraph" of the gate graph.
[[nodiscard]] std::string to_dot(const Netlist& nl, const DotOptions& options = {});

}  // namespace glitchmask::netlist
