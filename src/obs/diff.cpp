#include "obs/diff.hpp"

#include <bit>
#include <cstdint>
#include <cstdio>

namespace glitchmask::obs {

namespace {

/// Bit-exact double equality: distinguishes -0.0 from 0.0 and treats a
/// NaN as equal to the same NaN bit pattern -- "did the producer emit the
/// same bits", not IEEE ==.
bool same_bits(double a, double b) {
    return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

FieldDiff field(std::string name, double before, double after,
                bool identical) {
    FieldDiff d;
    d.name = std::move(name);
    d.before = before;
    d.after = after;
    d.bit_identical = identical;
    return d;
}

const LedgerNet* find_net(const LedgerEntry& entry, const std::string& name) {
    for (const LedgerNet& net : entry.attribution)
        if (net.name == name) return &net;
    return nullptr;
}

std::string format_value(double value) {
    char buffer[40];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return buffer;
}

}  // namespace

EntryDiff diff_entries(const LedgerEntry& before, const LedgerEntry& after) {
    EntryDiff diff;
    diff.same_fingerprint = before.fingerprint == after.fingerprint;

    diff.leakage.push_back(field("max_abs_t1", before.max_abs_t1,
                                 after.max_abs_t1,
                                 same_bits(before.max_abs_t1,
                                           after.max_abs_t1)));
    diff.leakage.push_back(field("toggles",
                                 static_cast<double>(before.toggles),
                                 static_cast<double>(after.toggles),
                                 before.toggles == after.toggles));
    // Higher-order t statistics ride in the metrics bag; compare any the
    // two entries share (a leakage metric present on only one side is a
    // table-membership change, handled below for nets and ignored here).
    for (const auto& [name, value] : before.metrics) {
        if (name.rfind("max_abs_t_order", 0) != 0 || name == "max_abs_t_order1")
            continue;
        for (const auto& [other_name, other_value] : after.metrics)
            if (other_name == name)
                diff.leakage.push_back(
                    field(name, value, other_value,
                          same_bits(value, other_value)));
    }

    // Per-net rows, in `before`'s ranking order; then table membership.
    bool table_identical = before.attribution.size() == after.attribution.size();
    for (std::size_t i = 0; i < before.attribution.size(); ++i) {
        const LedgerNet& net = before.attribution[i];
        const LedgerNet* other = find_net(after, net.name);
        if (other == nullptr) {
            diff.net_changes.push_back(NetChange{net.name, false, net.max_abs_t});
            table_identical = false;
            continue;
        }
        const bool identical = same_bits(net.max_abs_t, other->max_abs_t) &&
                               net.toggles == other->toggles &&
                               net.glitches == other->glitches;
        diff.leakage.push_back(field("net:" + net.name, net.max_abs_t,
                                     other->max_abs_t, identical));
        table_identical &= identical;
        // Rank moves matter even when the statistics match: the ranked
        // table IS the culprit ordering the paper's analysis reads.
        if (i < after.attribution.size() &&
            after.attribution[i].name != net.name)
            table_identical = false;
    }
    for (const LedgerNet& net : after.attribution)
        if (find_net(before, net.name) == nullptr) {
            diff.net_changes.push_back(NetChange{net.name, true, net.max_abs_t});
            table_identical = false;
        }

    diff.leakage_identical = table_identical;
    for (const FieldDiff& f : diff.leakage)
        diff.leakage_identical &= f.bit_identical;

    // Side-by-side timings: never judged here (see obs/regression.hpp).
    diff.timings.push_back(field("wall_seconds", before.wall_seconds,
                                 after.wall_seconds,
                                 same_bits(before.wall_seconds,
                                           after.wall_seconds)));
    diff.timings.push_back(field("cpu_seconds", before.cpu_seconds,
                                 after.cpu_seconds,
                                 same_bits(before.cpu_seconds,
                                           after.cpu_seconds)));
    for (const LedgerPhase& phase : before.phases) {
        double other_cpu = 0.0;
        for (const LedgerPhase& other : after.phases)
            if (other.name == phase.name) other_cpu = other.cpu_seconds;
        diff.timings.push_back(field("phase_cpu:" + phase.name,
                                     phase.cpu_seconds, other_cpu,
                                     same_bits(phase.cpu_seconds, other_cpu)));
    }
    for (const LedgerPhase& phase : after.phases) {
        bool seen = false;
        for (const LedgerPhase& other : before.phases)
            seen |= other.name == phase.name;
        if (!seen)
            diff.timings.push_back(field("phase_cpu:" + phase.name, 0.0,
                                         phase.cpu_seconds, false));
    }
    return diff;
}

std::string render_diff_markdown(const LedgerEntry& before,
                                 const LedgerEntry& after,
                                 const EntryDiff& diff) {
    std::string out;
    out += "## Ledger diff: " + after.campaign + "\n\n";
    out += "- fingerprint: " + fingerprint_key(after.fingerprint) +
           (diff.same_fingerprint ? "" : "  **(MISMATCH vs before!)**") + "\n";
    out += "- before: revision `" +
           (before.revision.empty() ? "?" : before.revision) + "` on " +
           (before.host.empty() ? "?" : before.host) + " at " +
           (before.utc.empty() ? "?" : before.utc) + "\n";
    out += "- after:  revision `" +
           (after.revision.empty() ? "?" : after.revision) + "` on " +
           (after.host.empty() ? "?" : after.host) + " at " +
           (after.utc.empty() ? "?" : after.utc) + "\n\n";
    out += diff.leakage_identical
               ? "**Leakage: bit-identical.**\n\n"
               : "**Leakage: CHANGED.**\n\n";
    out += "| field | before | after | verdict |\n";
    out += "|---|---|---|---|\n";
    for (const FieldDiff& f : diff.leakage)
        out += "| " + f.name + " | " + format_value(f.before) + " | " +
               format_value(f.after) + " | " +
               (f.bit_identical ? "bit-identical" : "**changed**") + " |\n";
    if (!diff.net_changes.empty()) {
        out += "\nAttribution table membership:\n";
        for (const NetChange& change : diff.net_changes)
            out += std::string("- ") + (change.entered ? "entered" : "left") +
                   ": " + change.name + " (max|t| " +
                   format_value(change.max_abs_t) + ")\n";
    }
    out += "\nTimings (side by side; judged only against history -- see "
           "`glitchmask_ledger trend`):\n\n";
    out += "| metric | before | after |\n";
    out += "|---|---|---|\n";
    for (const FieldDiff& f : diff.timings)
        out += "| " + f.name + " | " + format_value(f.before) + " | " +
               format_value(f.after) + " |\n";
    return out;
}

}  // namespace glitchmask::obs
