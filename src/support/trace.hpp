// End-to-end span tracing: a zero-cost-when-off recorder of timed spans
// with parent links, exported as Chrome-trace JSON.
//
// Where telemetry (support/telemetry.hpp) answers "how much, in total",
// tracing answers "where did *this* job's wall-clock go": every span is
// one timed interval (queue wait, execute, block 17, the sim phase of
// block 17, a checkpoint write, ...) with a parent link, so a run or a
// service job unfolds into a tree a human can read in chrome://tracing
// or Perfetto.
//
// Design centre (mirrors the telemetry shards):
//
//   * Zero-cost when off.  GLITCHMASK_TRACE=1 (or set_enabled) gates
//     every recording site behind one relaxed load; a disabled ScopedSpan
//     is two branches and no clock read, so tracing-off runs stay
//     bit-and-speed-identical to untraced builds.
//   * Buffered per-thread.  Completed spans append to the calling
//     thread's buffer (one short mutex hold, contended only by a
//     concurrent take_spans()); buffers of exited threads survive in the
//     registry until drained, so no span is lost to thread churn.  A
//     global cap bounds memory; overflow increments dropped_spans()
//     instead of growing without bound.
//   * Recording never perturbs results.  Spans carry measurements only
//     (monotonic clock reads + strings); campaign statistics are
//     bit-identical with tracing on or off, which the test suite asserts.
//
// Cross-thread parenting: an ambient thread-local span stack supplies the
// default parent (a block span opened on a pool thread parents the phase
// leaves flushed on that same thread), and spans that cross threads --
// a service job begins on the daemon thread and ends on an executor --
// carry explicit ids: allocate with new_span_id(), pass the id along, and
// record the completed span retrospectively with record_span().
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace glitchmask::trace {

/// Process-unique span identity; 0 = "no span" everywhere.
using SpanId = std::uint64_t;

/// One completed span.  Timestamps are telemetry::steady_now_ns() reads
/// (the registry's monotonic time base); `thread` is a small stable index
/// identifying the recording thread (the Chrome-trace tid).
struct Span {
    SpanId id = 0;
    SpanId parent = 0;        // 0 = root
    std::string name;
    std::uint64_t begin_ns = 0;
    std::uint64_t end_ns = 0;
    std::uint32_t thread = 0;
    std::vector<std::pair<std::string, std::string>> attrs;
};

/// Global collection switch: GLITCHMASK_TRACE (0/1, default off) on first
/// call, overridable via set_enabled.  When off, every recording site is
/// a single relaxed load.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Enables collection for a scope and restores the previous state.
class ScopedTraceEnable {
public:
    explicit ScopedTraceEnable(bool on = true) : previous_(enabled()) {
        if (on) set_enabled(true);
    }
    ~ScopedTraceEnable() { set_enabled(previous_); }
    ScopedTraceEnable(const ScopedTraceEnable&) = delete;
    ScopedTraceEnable& operator=(const ScopedTraceEnable&) = delete;

private:
    bool previous_;
};

/// Allocates a fresh nonzero span id (for spans recorded retrospectively
/// across threads).  Cheap and valid whether or not tracing is on.
[[nodiscard]] SpanId new_span_id() noexcept;

/// The innermost ambient span on this thread (0 = none): the default
/// parent for spans opened without an explicit one.
[[nodiscard]] SpanId current_span() noexcept;

/// Pushes/pops an externally-managed span onto the ambient stack (the
/// block scopes use this so phase leaves flushed mid-block nest under the
/// block).  Calls must be balanced on the same thread.
void push_ambient(SpanId id);
void pop_ambient() noexcept;

/// Appends one completed span to the calling thread's buffer.  No-op when
/// collection is off; drops (and counts) when the global buffer cap is
/// reached.
void record_span(Span span);

/// Convenience: record a completed span under a pre-allocated id.
void record_span(SpanId id, std::string name, SpanId parent,
                 std::uint64_t begin_ns, std::uint64_t end_ns,
                 std::vector<std::pair<std::string, std::string>> attrs = {});

/// RAII span for intervals that begin and end on one thread: allocates an
/// id, pins the clock and joins the ambient stack on construction (parent
/// defaults to the ambient span); records on destruction.  Fully inert
/// when tracing is off -- id() is then 0.
class ScopedSpan {
public:
    explicit ScopedSpan(
        std::string name, SpanId parent = 0,
        std::vector<std::pair<std::string, std::string>> attrs = {});
    ~ScopedSpan();
    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

    [[nodiscard]] SpanId id() const noexcept { return id_; }

private:
    SpanId id_ = 0;
    SpanId parent_ = 0;
    std::uint64_t begin_ns_ = 0;
    std::string name_;
    std::vector<std::pair<std::string, std::string>> attrs_;
};

/// Drains every buffer (live threads and exited ones) into one vector;
/// spans recorded after the call land in the next drain.
[[nodiscard]] std::vector<Span> take_spans();

/// Drops all buffered spans and zeroes the drop counter (test isolation).
void reset();

/// Spans discarded because the global buffer cap was reached.
[[nodiscard]] std::uint64_t dropped_spans() noexcept;

// ----- export ------------------------------------------------------------

/// Renders spans as Chrome Trace Event Format JSON (complete "X" events,
/// microsecond timestamps) loadable by chrome://tracing and Perfetto.
/// Span ids, parent links and attributes ride each event's "args".
[[nodiscard]] std::string render_chrome_trace(const std::vector<Span>& spans);

/// render_chrome_trace + atomic file replace; throws
/// CampaignError{IoFailure} on I/O errors.
void write_chrome_trace(const std::string& path,
                        const std::vector<Span>& spans);

/// Per-name rollup of a span set (the one-line summary that rides the
/// service's result event and run_report v3).
struct SpanSummary {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;

    friend bool operator==(const SpanSummary&, const SpanSummary&) = default;
};

/// Aggregates spans by name, sorted by name (deterministic order).
[[nodiscard]] std::vector<SpanSummary> summarize_spans(
    const std::vector<Span>& spans);

}  // namespace glitchmask::trace
