# Empty dependencies file for fig13_16_power_traces.
# This may be replaced when dependencies are built.
