file(REMOVE_RECURSE
  "CMakeFiles/gadget_zoo.dir/gadget_zoo.cpp.o"
  "CMakeFiles/gadget_zoo.dir/gadget_zoo.cpp.o.d"
  "gadget_zoo"
  "gadget_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gadget_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
