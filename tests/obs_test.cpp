// Tests for the cross-run observability subsystem (src/obs/): the
// CRC-guarded NDJSON ledger, the bit-exact leakage diff, and the
// noise-aware regression radar.
//
// The load-bearing properties:
//   * full-range u64 counters and arbitrary doubles round-trip the file
//     format bit-exactly (the "bit-identical" verdict is real),
//   * a truncated or corrupted tail never costs the intact prefix,
//   * the regression verdict is a pure function of the entry *set* --
//     any ingest order of concurrent writers yields a byte-identical
//     report.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "eval/run_report.hpp"
#include "obs/diff.hpp"
#include "obs/ledger.hpp"
#include "obs/regression.hpp"
#include "service/campaign_request.hpp"

namespace {

using namespace glitchmask;
using namespace glitchmask::obs;

std::string temp_path(const std::string& name) {
    const std::string path = ::testing::TempDir() + "glitchmask_obs_" + name;
    std::remove(path.c_str());
    return path;
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& text) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
}

eval::CampaignFingerprint test_fingerprint(std::uint64_t payload = 7) {
    eval::CampaignFingerprint fp;
    fp.kind = eval::fnv1a64_tag("gadget_tvla");
    fp.seed = 1;
    fp.traces = 2000;
    fp.block_size = 64;
    fp.payload = payload;
    return fp;
}

/// A fully-populated entry exercising every field, including values a
/// double round-trip would destroy.
LedgerEntry sample_entry(const std::string& utc, double wall) {
    LedgerEntry entry;
    entry.source = "run_report";
    entry.campaign = "gadget_trichina";
    entry.fingerprint = test_fingerprint();
    entry.revision = "0123456789abcdef0123456789abcdef01234567";
    entry.host = "rig-a";
    entry.utc = utc;
    entry.backend = "event";
    entry.workers = 4;
    entry.lanes = 64;
    entry.wall_seconds = wall;
    entry.cpu_seconds = wall * 3.7;
    entry.max_abs_t1 = 4.4408920985006262e-16;
    entry.toggles = 0xFFFFFFFFFFFFFFFFull;  // full-range u64
    entry.attribution.push_back(
        {0x8000000000000001ull, "sbox.g3", 3.25, 0x123456789ABCDEF0ull, 42});
    entry.attribution.push_back({17, "sbox.g7", 1.0, 100, 0});
    entry.phases.push_back({"sim", 0.125, 0.0625});
    entry.phases.push_back({"moments", 0.25, 0.0});
    entry.metrics.emplace_back("max_abs_t_order2", 1.9999999999999998);
    entry.metrics.emplace_back("traces_per_sec", 123456.789);
    return entry;
}

TEST(LedgerTest, FingerprintKeyIsServiceKey) {
    const eval::CampaignFingerprint fp = test_fingerprint();
    const std::string key = fingerprint_key(fp);
    EXPECT_EQ(key.size(), 80u);
    EXPECT_EQ(key, service::fingerprint_hex(fp));
    EXPECT_EQ(key.find_first_not_of("0123456789abcdef"), std::string::npos);
}

TEST(LedgerTest, RoundTripsFullRangeValuesBitExactly) {
    const std::string path = temp_path("roundtrip.ndjson");
    const LedgerEntry entry = sample_entry("2026-08-09T10:00:00Z", 1.5);
    append_ledger(path, entry);

    const LedgerFile back = read_ledger(path);
    ASSERT_EQ(back.entries.size(), 1u);
    EXPECT_EQ(back.corrupt_lines, 0u);
    // Defaulted operator== covers every field, but make the interesting
    // ones explicit: full-range u64s and bit-exact doubles.
    EXPECT_EQ(back.entries[0].toggles, 0xFFFFFFFFFFFFFFFFull);
    EXPECT_EQ(back.entries[0].attribution[0].net, 0x8000000000000001ull);
    EXPECT_EQ(back.entries[0].attribution[0].toggles, 0x123456789ABCDEF0ull);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back.entries[0].max_abs_t1),
              std::bit_cast<std::uint64_t>(entry.max_abs_t1));
    EXPECT_EQ(back.entries[0], entry);
    // One canonical form: re-rendering the decoded entry reproduces the
    // file line byte for byte.
    EXPECT_EQ(render_ledger_line(back.entries[0]), slurp(path));
}

TEST(LedgerTest, MissingFileReadsEmpty) {
    const LedgerFile file = read_ledger(temp_path("never_written.ndjson"));
    EXPECT_TRUE(file.entries.empty());
    EXPECT_EQ(file.corrupt_lines, 0u);
}

TEST(LedgerTest, TruncatedTailKeepsIntactPrefix) {
    const std::string path = temp_path("truncated.ndjson");
    append_ledger(path, sample_entry("2026-08-09T10:00:00Z", 1.0));
    append_ledger(path, sample_entry("2026-08-09T10:01:00Z", 1.1));
    append_ledger(path, sample_entry("2026-08-09T10:02:00Z", 1.2));

    std::string text = slurp(path);
    // Chop the last line mid-entry (simulating a torn concurrent append
    // or a crash mid-write).
    text.resize(text.size() - 37);
    spit(path, text);

    const LedgerFile file = read_ledger(path);
    EXPECT_EQ(file.entries.size(), 2u);
    EXPECT_EQ(file.corrupt_lines, 1u);
    EXPECT_EQ(file.entries[0].utc, "2026-08-09T10:00:00Z");
    EXPECT_EQ(file.entries[1].utc, "2026-08-09T10:01:00Z");
}

TEST(LedgerTest, CrcCorruptedLineIsSkippedNotFatal) {
    const std::string path = temp_path("bitrot.ndjson");
    append_ledger(path, sample_entry("2026-08-09T10:00:00Z", 1.0));
    append_ledger(path, sample_entry("2026-08-09T10:01:00Z", 1.1));
    append_ledger(path, sample_entry("2026-08-09T10:02:00Z", 1.2));

    std::string text = slurp(path);
    // Flip one digit inside the *middle* line's entry body -- the CRC
    // must catch it and the reader must keep both neighbours.
    const std::size_t second = text.find('\n') + 1;
    const std::size_t wall = text.find("10:01:00Z", second);
    ASSERT_NE(wall, std::string::npos);
    text[wall] = '9';
    spit(path, text);

    const LedgerFile file = read_ledger(path);
    EXPECT_EQ(file.entries.size(), 2u);
    EXPECT_EQ(file.corrupt_lines, 1u);
    EXPECT_EQ(file.entries[0].utc, "2026-08-09T10:00:00Z");
    EXPECT_EQ(file.entries[1].utc, "2026-08-09T10:02:00Z");
}

TEST(LedgerTest, SortIsTotalAndDeterministic) {
    std::vector<LedgerEntry> entries;
    entries.push_back(sample_entry("2026-08-09T10:02:00Z", 1.2));
    entries.push_back(sample_entry("2026-08-09T10:00:00Z", 1.0));
    // Equal timestamps: the canonical text breaks the tie.
    LedgerEntry a = sample_entry("2026-08-09T10:01:00Z", 1.1);
    LedgerEntry b = sample_entry("2026-08-09T10:01:00Z", 1.15);
    entries.push_back(b);
    entries.push_back(a);

    std::vector<LedgerEntry> once = entries;
    sort_ledger(once);
    std::vector<LedgerEntry> twice = entries;
    std::reverse(twice.begin(), twice.end());
    sort_ledger(twice);
    EXPECT_EQ(once, twice);
    EXPECT_EQ(once.front().utc, "2026-08-09T10:00:00Z");
    EXPECT_EQ(once.back().utc, "2026-08-09T10:02:00Z");
}

// ----- diff --------------------------------------------------------------

TEST(DiffTest, IdenticalEntriesAreBitIdentical) {
    const LedgerEntry entry = sample_entry("2026-08-09T10:00:00Z", 1.0);
    const EntryDiff diff = diff_entries(entry, entry);
    EXPECT_TRUE(diff.same_fingerprint);
    EXPECT_TRUE(diff.leakage_identical);
    EXPECT_TRUE(diff.net_changes.empty());
    for (const FieldDiff& field : diff.leakage)
        EXPECT_TRUE(field.bit_identical) << field.name;
}

TEST(DiffTest, OneUlpLeakageChangeIsDetected) {
    const LedgerEntry before = sample_entry("2026-08-09T10:00:00Z", 1.0);
    LedgerEntry after = before;
    // The smallest possible change: one ulp.  An epsilon comparison
    // would call this equal; the bit comparison must not.
    after.max_abs_t1 = std::bit_cast<double>(
        std::bit_cast<std::uint64_t>(after.max_abs_t1) + 1);
    const EntryDiff diff = diff_entries(before, after);
    EXPECT_FALSE(diff.leakage_identical);
    bool flagged = false;
    for (const FieldDiff& field : diff.leakage)
        if (field.name == "max_abs_t1") flagged = !field.bit_identical;
    EXPECT_TRUE(flagged);
}

TEST(DiffTest, AttributionMembershipChangesAreNamed) {
    const LedgerEntry before = sample_entry("2026-08-09T10:00:00Z", 1.0);
    LedgerEntry after = before;
    after.attribution.erase(after.attribution.begin() + 1);  // sbox.g7 left
    after.attribution.push_back({99, "sbox.g1", 2.5, 7, 1});  // entered
    const EntryDiff diff = diff_entries(before, after);
    EXPECT_FALSE(diff.leakage_identical);
    ASSERT_EQ(diff.net_changes.size(), 2u);
    bool left = false, entered = false;
    for (const NetChange& change : diff.net_changes) {
        if (change.name == "sbox.g7" && !change.entered) left = true;
        if (change.name == "sbox.g1" && change.entered) entered = true;
    }
    EXPECT_TRUE(left);
    EXPECT_TRUE(entered);
}

// ----- regression radar --------------------------------------------------

std::vector<LedgerEntry> stable_history(std::size_t n, double wall,
                                        double jitter) {
    std::vector<LedgerEntry> history;
    for (std::size_t i = 0; i < n; ++i) {
        char utc[32];
        std::snprintf(utc, sizeof utc, "2026-08-09T10:%02zu:00Z", i);
        // Deterministic small jitter around `wall`.
        const double sign = (i % 2 == 0) ? 1.0 : -1.0;
        history.push_back(sample_entry(utc, wall + sign * jitter));
    }
    return history;
}

const MetricJudgement* find_metric(const RegressionReport& report,
                                   const std::string& name) {
    for (const MetricJudgement& m : report.metrics)
        if (m.name == name) return &m;
    return nullptr;
}

TEST(RegressionTest, ThinHistoryNeverJudges) {
    const RegressionRule rule;
    const LedgerEntry candidate = sample_entry("2026-08-09T11:00:00Z", 9.0);
    const RegressionReport report =
        evaluate_candidate(candidate, stable_history(2, 1.0, 0.01), rule);
    const MetricJudgement* wall = find_metric(report, "wall_seconds");
    ASSERT_NE(wall, nullptr);
    EXPECT_EQ(wall->verdict, MetricVerdict::kNoHistory);
    EXPECT_FALSE(report.regressed);
}

TEST(RegressionTest, VerdictsFollowDirectionAndBand) {
    const RegressionRule rule;
    const std::vector<LedgerEntry> history = stable_history(6, 1.0, 0.01);

    // Far above the band: slower wall time is a regression.
    RegressionReport slow = evaluate_candidate(
        sample_entry("2026-08-09T11:00:00Z", 2.0), history, rule);
    EXPECT_EQ(find_metric(slow, "wall_seconds")->verdict,
              MetricVerdict::kRegressed);
    EXPECT_TRUE(slow.regressed);

    // Far below: improvement, not a regression.
    RegressionReport fast = evaluate_candidate(
        sample_entry("2026-08-09T11:00:00Z", 0.5), history, rule);
    EXPECT_EQ(find_metric(fast, "wall_seconds")->verdict,
              MetricVerdict::kImproved);
    EXPECT_FALSE(fast.regressed);

    // Inside the deadband: stable even though != median.
    RegressionReport same = evaluate_candidate(
        sample_entry("2026-08-09T11:00:00Z", 1.02), history, rule);
    EXPECT_EQ(find_metric(same, "wall_seconds")->verdict,
              MetricVerdict::kStable);

    // Throughput metrics flip the direction: higher is better.
    RegressionReport throughput = evaluate_candidate(
        sample_entry("2026-08-09T11:00:00Z", 1.0), history, rule);
    const MetricJudgement* tps = find_metric(throughput, "traces_per_sec");
    ASSERT_NE(tps, nullptr);
    EXPECT_EQ(tps->verdict, MetricVerdict::kStable);
    {
        LedgerEntry candidate = sample_entry("2026-08-09T11:00:00Z", 1.0);
        for (auto& [name, value] : candidate.metrics)
            if (name == "traces_per_sec") value = 1.0;  // collapsed
        RegressionReport collapsed =
            evaluate_candidate(candidate, history, rule);
        EXPECT_EQ(find_metric(collapsed, "traces_per_sec")->verdict,
                  MetricVerdict::kRegressed);
    }
}

TEST(RegressionTest, LeakageChangeTripsRadarRegardlessOfMagnitude) {
    const RegressionRule rule;
    const std::vector<LedgerEntry> history = stable_history(6, 1.0, 0.01);
    LedgerEntry candidate = sample_entry("2026-08-09T11:00:00Z", 1.0);
    candidate.toggles -= 1;  // one toggle: still a real change
    const RegressionReport report =
        evaluate_candidate(candidate, history, rule);
    EXPECT_TRUE(report.leakage_checked);
    EXPECT_TRUE(report.leakage_changed);
    EXPECT_TRUE(report.regressed);
    EXPECT_FALSE(report.leakage_changes.empty());
}

TEST(RegressionTest, ReportIsByteIdenticalUnderIngestPermutation) {
    const RegressionRule rule;
    const std::vector<LedgerEntry> history = stable_history(7, 1.0, 0.01);
    const LedgerEntry candidate = sample_entry("2026-08-09T11:00:00Z", 1.3);

    const RegressionReport reference =
        evaluate_candidate(candidate, history, rule);
    const std::string reference_text = render_regression_markdown(reference);

    // Every rotation + a few deterministic shuffles stand in for "any
    // interleaving of concurrent writers".
    for (std::size_t rot = 1; rot < history.size(); ++rot) {
        std::vector<LedgerEntry> permuted = history;
        std::rotate(permuted.begin(), permuted.begin() + rot,
                    permuted.end());
        if (rot % 2 == 0) std::swap(permuted.front(), permuted.back());
        const RegressionReport report =
            evaluate_candidate(candidate, permuted, rule);
        EXPECT_EQ(report, reference);
        EXPECT_EQ(render_regression_markdown(report), reference_text);
    }
}

TEST(RegressionTest, OtherFingerprintsAndIncompleteRunsAreInvisible) {
    const RegressionRule rule;
    std::vector<LedgerEntry> history = stable_history(6, 1.0, 0.01);
    // Noise the radar must ignore: another campaign's entries and a
    // cancelled run of this one.
    LedgerEntry other = sample_entry("2026-08-09T09:00:00Z", 50.0);
    other.fingerprint = test_fingerprint(99);
    history.push_back(other);
    LedgerEntry cancelled = sample_entry("2026-08-09T09:30:00Z", 0.01);
    cancelled.status = "cancelled";
    history.push_back(cancelled);

    const RegressionReport report = evaluate_candidate(
        sample_entry("2026-08-09T11:00:00Z", 1.0), history, rule);
    const MetricJudgement* wall = find_metric(report, "wall_seconds");
    ASSERT_NE(wall, nullptr);
    EXPECT_EQ(wall->verdict, MetricVerdict::kStable);
    EXPECT_EQ(wall->history, 6u);
}

// ----- ingestion ---------------------------------------------------------

TEST(IngestTest, RunReportBecomesOneEntry) {
    eval::RunReport report;
    report.campaign = "des_tvla";
    report.fingerprint = test_fingerprint();
    report.workers = 2;
    report.lanes = 64;
    report.revision = "cafe";
    report.hostname = "rig-b";
    report.utc = "2026-08-09T12:00:00Z";
    report.wall_seconds = 2.5;
    report.metrics.emplace_back("max_abs_t_order1", 3.75);

    const std::string text = eval::render_run_report(report);
    const std::vector<LedgerEntry> entries =
        entries_from_file_text(text, IngestOverrides{});
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].source, "run_report");
    EXPECT_EQ(entries[0].campaign, "des_tvla");
    EXPECT_EQ(entries[0].fingerprint, report.fingerprint);
    EXPECT_EQ(entries[0].revision, "cafe");
    EXPECT_EQ(entries[0].host, "rig-b");
    EXPECT_EQ(entries[0].max_abs_t1, 3.75);
}

TEST(IngestTest, OverridesFillOnlyEmptyFields) {
    eval::RunReport report;
    report.campaign = "des_tvla";
    report.fingerprint = test_fingerprint();
    report.revision = "";  // v1-v3 file: no attribution fields
    const std::string text = eval::render_run_report(report);

    IngestOverrides overrides;
    overrides.revision = "deadbeef";
    overrides.host = "pinned-host";
    overrides.utc = "2026-08-09T13:00:00Z";
    const std::vector<LedgerEntry> entries =
        entries_from_file_text(text, overrides);
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].revision, "deadbeef");
    EXPECT_EQ(entries[0].host, "pinned-host");
    EXPECT_EQ(entries[0].utc, "2026-08-09T13:00:00Z");

    // A file that *does* carry attribution keeps it.
    report.revision = "cafe";
    const std::vector<LedgerEntry> kept = entries_from_file_text(
        eval::render_run_report(report), overrides);
    EXPECT_EQ(kept.at(0).revision, "cafe");
}

const char* kBenchJson = R"({
  "workload": "des_ff_tvla",
  "revision": "feed",
  "hostname": "bench-rig",
  "utc": "2026-08-09T14:00:00Z",
  "traces": 512,
  "block_size": 64,
  "noise_sigma": 0.500,
  "deterministic": true,
  "stats_speedup": 2.125,
  "series": [
    {"backend": "event", "lanes": 64, "workers": 1, "checkpoint_every": 0,
     "attribution": false, "oversubscribed": false, "seconds": 1.5,
     "traces_per_sec": 341.33, "toggle_mb_per_sec": 10.0,
     "toggles": 18446744073709551615, "sim_events": 7, "sim_glitches": 3,
     "sim_inertial_cancels": 1, "sim_queue_peak": 9, "speedup": 1.0,
     "max_abs_t1": 4.125,
     "phases_cpu": {"sim": 1.0, "noise": 0.125, "moments": 0.25,
                    "attribution": 0.0, "checkpoint": 0.0}},
    {"backend": "compiled", "lanes": 128, "workers": 2, "checkpoint_every": 16,
     "attribution": true, "oversubscribed": false, "seconds": 0.5,
     "traces_per_sec": 1024.0, "toggle_mb_per_sec": 30.0,
     "toggles": 123, "sim_events": 7, "sim_glitches": 3,
     "sim_inertial_cancels": 1, "sim_queue_peak": 9, "speedup": 3.0,
     "max_abs_t1": 4.125,
     "phases": {"sim": 0.5, "noise": 0.0625, "moments": 0.125,
                "attribution": 0.25, "checkpoint": 0.03125}}
  ]
})";

TEST(IngestTest, BenchJsonBecomesRowsPlusHeadline) {
    const std::vector<LedgerEntry> entries =
        entries_from_file_text(kBenchJson, IngestOverrides{});
    ASSERT_EQ(entries.size(), 3u);

    const auto by_campaign = [&](const std::string& name) -> const LedgerEntry* {
        for (const LedgerEntry& entry : entries)
            if (entry.campaign == name) return &entry;
        return nullptr;
    };
    const LedgerEntry* event_row =
        by_campaign("des_ff_tvla/event-l64-w1");
    ASSERT_NE(event_row, nullptr);
    EXPECT_EQ(event_row->source, "bench");
    EXPECT_EQ(event_row->revision, "feed");
    EXPECT_EQ(event_row->toggles, 18446744073709551615ull);  // full range
    EXPECT_EQ(event_row->max_abs_t1, 4.125);
    ASSERT_FALSE(event_row->phases.empty());
    EXPECT_EQ(event_row->phases[0].name, "sim");
    EXPECT_EQ(event_row->phases[0].cpu_seconds, 1.0);

    // Legacy "phases" key still ingests (pre-rename artifacts).
    const LedgerEntry* compiled_row =
        by_campaign("des_ff_tvla/compiled-l128-w2-c16-attr");
    ASSERT_NE(compiled_row, nullptr);
    ASSERT_FALSE(compiled_row->phases.empty());
    EXPECT_EQ(compiled_row->phases[0].cpu_seconds, 0.5);

    const LedgerEntry* headline = by_campaign("des_ff_tvla/headline");
    ASSERT_NE(headline, nullptr);
    bool has_speedup = false;
    for (const auto& [name, value] : headline->metrics)
        if (name == "stats_speedup" && value == 2.125) has_speedup = true;
    EXPECT_TRUE(has_speedup);

    // Same row config -> same fingerprint (that is the history key);
    // different row config -> different fingerprint.
    const std::vector<LedgerEntry> again =
        entries_from_file_text(kBenchJson, IngestOverrides{});
    const LedgerEntry* again_event = nullptr;
    for (const LedgerEntry& entry : again)
        if (entry.campaign == event_row->campaign) again_event = &entry;
    ASSERT_NE(again_event, nullptr);
    EXPECT_EQ(fingerprint_key(event_row->fingerprint),
              fingerprint_key(again_event->fingerprint));
    EXPECT_NE(fingerprint_key(event_row->fingerprint),
              fingerprint_key(compiled_row->fingerprint));
}

TEST(IngestTest, UnrecognizedDocumentThrows) {
    EXPECT_THROW(entries_from_file_text("{\"what\": 1}", IngestOverrides{}),
                 std::runtime_error);
    EXPECT_THROW(entries_from_file_text("not json", IngestOverrides{}),
                 std::runtime_error);
}

}  // namespace
