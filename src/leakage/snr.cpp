#include "leakage/snr.hpp"

#include <cmath>
#include <stdexcept>

namespace glitchmask::leakage {

SnrAccumulator::SnrAccumulator(std::size_t classes)
    : n_(classes, 0.0), mean_(classes, 0.0), m2_(classes, 0.0) {
    if (classes < 2) throw std::invalid_argument("SnrAccumulator: < 2 classes");
}

void SnrAccumulator::add(std::size_t cls, double x) {
    if (cls >= n_.size()) throw std::out_of_range("SnrAccumulator::add");
    n_[cls] += 1.0;
    const double delta = x - mean_[cls];
    mean_[cls] += delta / n_[cls];
    m2_[cls] += delta * (x - mean_[cls]);
}

double SnrAccumulator::snr() const {
    double total_n = 0.0;
    double grand_mean = 0.0;
    std::size_t populated = 0;
    for (std::size_t c = 0; c < n_.size(); ++c) {
        if (n_[c] == 0.0) continue;
        ++populated;
        total_n += n_[c];
        grand_mean += n_[c] * mean_[c];
    }
    if (populated < 2 || total_n == 0.0) return 0.0;
    grand_mean /= total_n;

    double signal = 0.0;
    double noise = 0.0;
    for (std::size_t c = 0; c < n_.size(); ++c) {
        if (n_[c] == 0.0) continue;
        const double dm = mean_[c] - grand_mean;
        signal += n_[c] * dm * dm;
        noise += m2_[c];
    }
    signal /= total_n;
    noise /= total_n;
    if (!(noise > 0.0)) return 0.0;  // zero variance in every class, or NaN
    const double snr = signal / noise;
    // Degenerate inputs (single-sample classes, constant data) must yield
    // the defined sentinel 0.0, never a quiet NaN/Inf.
    return std::isfinite(snr) ? snr : 0.0;
}

double SnrAccumulator::class_mean(std::size_t cls) const { return mean_.at(cls); }
double SnrAccumulator::class_count(std::size_t cls) const { return n_.at(cls); }

}  // namespace glitchmask::leakage
