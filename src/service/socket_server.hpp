// Local-socket transport for the campaign daemon: an AF_UNIX stream
// listener with a single poll loop, newline-framed input, and bounded
// per-client output buffers.
//
// Responsibilities end at framing -- the server hands complete lines to a
// callback and writes back whatever lines the owner enqueues.  Two
// properties the daemon depends on:
//
//   * Writers never block the poll loop or an executor: send() appends to
//     an in-memory buffer and wakes the loop through a self-pipe; the
//     loop drains buffers as POLLOUT allows.  A client that stops reading
//     first loses *droppable* lines (progress events) past the soft cap,
//     then is disconnected at the hard cap -- the daemon's memory is
//     bounded by slow clients, never its correctness.
//   * A disconnect is not a cancellation: the server only reports it
//     (on_disconnect); whether the job keeps running is the daemon's
//     decision (it does -- results land in the cache for re-query).
//
// Thread model: run() owns the poll loop on the calling thread; send()
// and wake() are safe from any thread; everything else (callbacks) runs
// on the loop thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace glitchmask::service {

struct SocketServerConfig {
    std::string socket_path;
    /// Output buffer caps per client: droppable lines are discarded past
    /// `soft_buffer_bytes`, the connection is closed past
    /// `hard_buffer_bytes`.
    std::size_t soft_buffer_bytes = 256 * 1024;
    std::size_t hard_buffer_bytes = 4 * 1024 * 1024;
    /// Poll timeout; bounds the latency of stop()/wake() observation.
    int poll_interval_ms = 200;
};

class SocketServer {
public:
    using ClientId = std::uint64_t;
    /// Complete input line (without the newline) from a client.
    using LineHandler = std::function<void(ClientId, const std::string&)>;
    using DisconnectHandler = std::function<void(ClientId)>;
    /// Called once per loop iteration (after I/O); the daemon uses it to
    /// poll its signal token.
    using TickHandler = std::function<void()>;

    explicit SocketServer(SocketServerConfig config);
    ~SocketServer();

    SocketServer(const SocketServer&) = delete;
    SocketServer& operator=(const SocketServer&) = delete;

    void set_line_handler(LineHandler handler);
    void set_disconnect_handler(DisconnectHandler handler);
    void set_tick_handler(TickHandler handler);

    /// Binds and listens; throws std::runtime_error on failure.  Unlinks
    /// a stale socket file first.
    void listen();

    /// Runs the poll loop until stop().  Call after listen().
    void run();

    /// Requests loop exit from any thread (or a signal handler via
    /// wake(): stop() itself is not async-signal-safe).
    void stop();

    /// Enqueues one line for `client`.  `droppable` marks advisory lines
    /// (progress) the server may discard under backpressure.  False when
    /// the client is gone or the line was dropped.
    bool send(ClientId client, const std::string& line, bool droppable);

    /// Wakes the poll loop (safe from other threads).
    void wake();

    [[nodiscard]] const std::string& socket_path() const noexcept {
        return config_.socket_path;
    }

private:
    struct Client {
        int fd = -1;
        std::string in;
        std::string out;        // drained by the loop under POLLOUT
        bool closing = false;   // hard cap exceeded: drop after flush
    };

    void accept_clients();
    void service_client(ClientId id, short revents);
    void close_client(ClientId id);
    void drain_wake_pipe();
    void flush_on_stop();

    SocketServerConfig config_;
    LineHandler on_line_;
    DisconnectHandler on_disconnect_;
    TickHandler on_tick_;

    int listen_fd_ = -1;
    int wake_pipe_[2] = {-1, -1};
    std::atomic<bool> stop_{false};

    std::mutex mutex_;  // guards clients_ (send() runs off-loop)
    std::map<ClientId, Client> clients_;
    ClientId next_client_ = 1;
};

}  // namespace glitchmask::service
