// Minimal CSV writer used by benches to dump the series behind each
// reproduced figure (one file per figure, columns documented in the
// header row).  Values are written with enough precision to re-plot.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace glitchmask {

class CsvWriter {
public:
    /// Opens `path` for writing and emits the header row.
    /// Throws std::runtime_error if the file cannot be created.
    CsvWriter(const std::string& path, std::initializer_list<std::string_view> header);

    /// Appends one row; the number of fields should match the header.
    /// Throws std::runtime_error if the stream has gone bad (disk full,
    /// closed descriptor, ...) -- a silent short CSV would be mistaken
    /// for real data.
    void row(std::initializer_list<double> values);
    void row(const std::vector<double>& values);

    /// Appends one row of preformatted fields (e.g. labels + numbers).
    void raw_row(std::initializer_list<std::string_view> fields);

    /// Flushes and closes the file, throwing if any write (including the
    /// flush) failed.  The destructor closes too but swallows the error;
    /// call close() explicitly when the file matters.
    void close();

    ~CsvWriter();

    [[nodiscard]] const std::string& path() const noexcept { return path_; }

private:
    void check() const;

    std::ofstream out_;
    std::string path_;
};

}  // namespace glitchmask
