#include "netlist/lutmap.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace glitchmask::netlist {

namespace {

/// Sorted small set of leaf nets with capped size.
using Support = std::vector<NetId>;

void merge_into(Support& dest, const Support& src) {
    Support merged;
    merged.reserve(dest.size() + src.size());
    std::set_union(dest.begin(), dest.end(), src.begin(), src.end(),
                   std::back_inserter(merged));
    dest = std::move(merged);
}

void insert_leaf(Support& dest, NetId leaf) {
    const auto it = std::lower_bound(dest.begin(), dest.end(), leaf);
    if (it == dest.end() || *it != leaf) dest.insert(it, leaf);
}

[[nodiscard]] bool absorbable(const Netlist& nl, NetId driver) {
    const Cell& cell = nl.cell(driver);
    switch (cell.kind) {
        case CellKind::Input:
        case CellKind::Const0:
        case CellKind::Const1:
        case CellKind::Dff:
        case CellKind::DelayBuf:
            return false;
        default:
            return nl.fanout(driver).size() == 1;
    }
}

}  // namespace

LutMapResult estimate_luts(const Netlist& nl, unsigned k) {
    if (!nl.frozen()) throw std::runtime_error("estimate_luts: netlist not frozen");

    LutMapResult result;
    result.ffs = nl.flops().size();

    // support[c]: leaves of the cone currently rooted at c.
    // absorbed[c]: c has been merged into its single sink's LUT.
    std::vector<Support> support(nl.size());
    std::vector<char> absorbed(nl.size(), 0);

    for (const CellId id : nl.topo_order()) {
        const Cell& cell = nl.cell(id);
        if (cell.kind == CellKind::DelayBuf) {
            ++result.delay_luts;
            continue;
        }

        Support cone;
        const unsigned pins = pin_count(cell.kind);
        // First pass: the cone with every absorbable driver merged.
        for (unsigned p = 0; p < pins; ++p) {
            const NetId in = cell.in[p];
            if (absorbable(nl, in))
                merge_into(cone, support[in]);
            else
                insert_leaf(cone, in);
        }
        if (cone.size() <= k) {
            for (unsigned p = 0; p < pins; ++p) {
                const NetId in = cell.in[p];
                if (absorbable(nl, in)) absorbed[in] = 1;
            }
            support[id] = std::move(cone);
        } else {
            // Cone too wide: keep this cell as its own LUT root over its
            // direct inputs.
            Support direct;
            for (unsigned p = 0; p < pins; ++p) insert_leaf(direct, cell.in[p]);
            support[id] = std::move(direct);
        }
    }

    std::size_t logic_luts = 0;
    for (const CellId id : nl.topo_order()) {
        const Cell& cell = nl.cell(id);
        if (cell.kind == CellKind::DelayBuf) continue;
        if (!absorbed[id]) ++logic_luts;
    }
    result.luts = logic_luts + result.delay_luts;
    return result;
}

}  // namespace glitchmask::netlist
