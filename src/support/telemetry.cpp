#include "support/telemetry.hpp"

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <mutex>
#include <vector>

#include "support/env.hpp"

namespace glitchmask::telemetry {

namespace {

std::int64_t steady_ns() noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct CounterInfo {
    const char* name;
    MergeKind merge;
    bool deterministic;
};

constexpr CounterInfo kCounterInfo[kCounterCount] = {
    {"sim.events", MergeKind::kSum, true},
    {"sim.toggles", MergeKind::kSum, true},
    {"sim.glitches", MergeKind::kSum, true},
    {"sim.inertial_cancels", MergeKind::kSum, true},
    {"sim.queue_peak", MergeKind::kMax, true},
    {"pool.tasks_executed", MergeKind::kSum, false},
    {"pool.tasks_stolen", MergeKind::kSum, false},
    {"pool.idle_nanos", MergeKind::kSum, false},
    {"campaign.blocks", MergeKind::kSum, true},
    {"campaign.traces", MergeKind::kSum, true},
    {"campaign.block_nanos", MergeKind::kSum, false},
    {"checkpoint.writes", MergeKind::kSum, false},
    {"checkpoint.write_nanos", MergeKind::kSum, false},
    {"phase.sim_nanos", MergeKind::kSum, false},
    {"phase.noise_nanos", MergeKind::kSum, false},
    {"phase.moments_nanos", MergeKind::kSum, false},
    {"phase.attribution_nanos", MergeKind::kSum, false},
    {"io.retries", MergeKind::kSum, false},
    {"service.jobs", MergeKind::kSum, false},
    {"service.cache_hits", MergeKind::kSum, false},
};

struct HistogramInfo {
    const char* name;
    bool deterministic;
};

constexpr HistogramInfo kHistogramInfo[kHistogramCount] = {
    {"service.queue_wait_nanos", false},
    {"service.execute_nanos", false},
    {"checkpoint.write_latency_nanos", false},
    {"service.cache_lookup_nanos", false},
    {"io.retry_backoff_nanos", false},
    {"service.watchdog_fire_nanos", false},
    {"campaign.block_latency_nanos", false},
    {"campaign.block_traces", true},
    {"service.job_traces", true},
};

constexpr const char* kGaugeNames[kGaugeCount] = {
    "service.queue_depth",
    "service.running_jobs",
    "service.cache_entries",
    "service.spool_bytes",
};

std::array<std::atomic<std::uint64_t>, kGaugeCount>& gauges() noexcept {
    static std::array<std::atomic<std::uint64_t>, kGaugeCount> instance{};
    return instance;
}

std::atomic<int> g_enabled{-1};  // -1 = resolve GLITCHMASK_TELEMETRY

/// Registry of live shards + totals of shards whose threads exited.
/// Shards are heap-owned by their thread-local handle; registration and
/// snapshotting share one mutex (shard *writes* never take it).
struct Registry {
    std::mutex mutex;
    std::vector<Shard*> live;
    std::array<std::uint64_t, kCounterCount> retired{};
    std::array<HistogramSnapshot, kHistogramCount> retired_histograms{};
};

Registry& registry() {
    static Registry instance;
    return instance;
}

void fold_into(std::array<std::uint64_t, kCounterCount>& into,
               const std::array<std::uint64_t, kCounterCount>& from) noexcept {
    for (std::size_t i = 0; i < kCounterCount; ++i) {
        if (kCounterInfo[i].merge == MergeKind::kMax) {
            if (from[i] > into[i]) into[i] = from[i];
        } else {
            into[i] += from[i];
        }
    }
}

void fold_histogram(HistogramSnapshot& into,
                    const HistogramSnapshot& from) noexcept {
    for (std::size_t b = 0; b < kHistogramBuckets; ++b)
        into.buckets[b] += from.buckets[b];
    into.count += from.count;
    into.sum += from.sum;
    if (from.max > into.max) into.max = from.max;
}

/// Thread-local shard owner: registers at first use, folds the totals
/// into the retired accumulator and deregisters when the thread exits.
struct ShardHandle {
    Shard shard;

    ShardHandle() {
        Registry& reg = registry();
        const std::lock_guard<std::mutex> lock(reg.mutex);
        reg.live.push_back(&shard);
    }

    ~ShardHandle() {
        Registry& reg = registry();
        const std::lock_guard<std::mutex> lock(reg.mutex);
        std::array<std::uint64_t, kCounterCount> totals{};
        for (std::size_t i = 0; i < kCounterCount; ++i)
            totals[i] = shard.load(i);
        fold_into(reg.retired, totals);
        for (std::size_t h = 0; h < kHistogramCount; ++h)
            fold_histogram(reg.retired_histograms[h], shard.load_histogram(h));
        std::erase(reg.live, &shard);
    }
};

std::atomic<double> g_heartbeat_override{0.0};

std::string format_duration(double seconds) {
    char buffer[64];
    if (seconds < 90.0) {
        std::snprintf(buffer, sizeof buffer, "%.0fs", seconds);
    } else if (seconds < 5400.0) {
        std::snprintf(buffer, sizeof buffer, "%dm%02ds",
                      static_cast<int>(seconds) / 60,
                      static_cast<int>(seconds) % 60);
    } else {
        const int hours = static_cast<int>(seconds / 3600.0);
        const int minutes = static_cast<int>((seconds - hours * 3600.0) / 60.0);
        std::snprintf(buffer, sizeof buffer, "%dh%02dm", hours, minutes);
    }
    return buffer;
}

}  // namespace

const char* counter_name(Counter counter) noexcept {
    return kCounterInfo[static_cast<std::size_t>(counter)].name;
}

MergeKind counter_merge(Counter counter) noexcept {
    return kCounterInfo[static_cast<std::size_t>(counter)].merge;
}

bool counter_deterministic(Counter counter) noexcept {
    return kCounterInfo[static_cast<std::size_t>(counter)].deterministic;
}

const char* histogram_name(Histogram histogram) noexcept {
    return kHistogramInfo[static_cast<std::size_t>(histogram)].name;
}

bool histogram_deterministic(Histogram histogram) noexcept {
    return kHistogramInfo[static_cast<std::size_t>(histogram)].deterministic;
}

const char* gauge_name(Gauge gauge) noexcept {
    return kGaugeNames[static_cast<std::size_t>(gauge)];
}

void set_gauge(Gauge gauge, std::uint64_t value) noexcept {
    gauges()[static_cast<std::size_t>(gauge)].store(
        value, std::memory_order_relaxed);
}

std::uint64_t gauge_value(Gauge gauge) noexcept {
    return gauges()[static_cast<std::size_t>(gauge)].load(
        std::memory_order_relaxed);
}

std::uint64_t steady_now_ns() noexcept {
    return static_cast<std::uint64_t>(steady_ns());
}

void PhaseClock::flush() {
    if (!enabled_ && !tracing_) return;
    // Stitch the phase totals into the trace as leaf spans under the
    // ambient (block) span, laid out sequentially from the first mark --
    // the per-phase durations are exact, the layout within the block is a
    // rendering convention (phases interleave in reality).
    if (tracing_ && first_ != 0) {
        if (const trace::SpanId parent = trace::current_span(); parent != 0) {
            static constexpr std::pair<Counter, const char*> kPhases[] = {
                {Counter::kPhaseSimNanos, "sim"},
                {Counter::kPhaseNoiseNanos, "noise"},
                {Counter::kPhaseMomentsNanos, "moments"},
                {Counter::kPhaseAttributionNanos, "attribution"},
            };
            std::uint64_t cursor = first_;
            for (const auto& [counter, name] : kPhases) {
                const std::uint64_t nanos =
                    nanos_[static_cast<std::size_t>(counter)];
                if (nanos == 0) continue;
                trace::record_span(trace::new_span_id(), name, parent, cursor,
                                   cursor + nanos);
                cursor += nanos;
            }
        }
    }
    if (enabled_) {
        Shard& s = shard();
        for (std::size_t i = 0; i < kCounterCount; ++i)
            if (nanos_[i] != 0) s.add(static_cast<Counter>(i), nanos_[i]);
    }
    nanos_.fill(0);
    first_ = 0;
}

bool enabled() noexcept {
    int state = g_enabled.load(std::memory_order_relaxed);
    if (state < 0) {
        state = env_int("GLITCHMASK_TELEMETRY", 0) != 0 ? 1 : 0;
        int expected = -1;
        g_enabled.compare_exchange_strong(expected, state,
                                          std::memory_order_relaxed);
        state = g_enabled.load(std::memory_order_relaxed);
    }
    return state != 0;
}

void set_enabled(bool on) noexcept {
    g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

Snapshot Snapshot::delta_since(const Snapshot& start) const noexcept {
    Snapshot delta;
    for (std::size_t i = 0; i < kCounterCount; ++i) {
        if (kCounterInfo[i].merge == MergeKind::kMax)
            delta.values[i] = values[i];  // high-water marks don't subtract
        else
            delta.values[i] =
                values[i] >= start.values[i] ? values[i] - start.values[i] : 0;
    }
    const auto sub = [](std::uint64_t end, std::uint64_t begin) {
        return end >= begin ? end - begin : 0;
    };
    for (std::size_t h = 0; h < kHistogramCount; ++h) {
        const HistogramSnapshot& end = histograms[h];
        const HistogramSnapshot& begin = start.histograms[h];
        HistogramSnapshot& out = delta.histograms[h];
        for (std::size_t b = 0; b < kHistogramBuckets; ++b)
            out.buckets[b] = sub(end.buckets[b], begin.buckets[b]);
        out.count = sub(end.count, begin.count);
        out.sum = sub(end.sum, begin.sum);
        out.max = end.max;  // maxima don't subtract either
    }
    delta.gauges = gauges;  // instantaneous values: keep the end reading
    return delta;
}

Shard& shard() {
    thread_local ShardHandle handle;
    return handle.shard;
}

Snapshot snapshot() {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    Snapshot merged;
    merged.values = reg.retired;
    merged.histograms = reg.retired_histograms;
    for (const Shard* live : reg.live) {
        std::array<std::uint64_t, kCounterCount> totals{};
        for (std::size_t i = 0; i < kCounterCount; ++i)
            totals[i] = live->load(i);
        fold_into(merged.values, totals);
        for (std::size_t h = 0; h < kHistogramCount; ++h)
            fold_histogram(merged.histograms[h], live->load_histogram(h));
    }
    for (std::size_t g = 0; g < kGaugeCount; ++g)
        merged.gauges[g] = gauge_value(static_cast<Gauge>(g));
    return merged;
}

void reset() {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    reg.retired.fill(0);
    reg.retired_histograms.fill(HistogramSnapshot{});
    for (Shard* live : reg.live) live->clear();
    for (auto& gauge : gauges()) gauge.store(0, std::memory_order_relaxed);
}

std::string render_prometheus_text(const Snapshot& snapshot) {
    std::string out;
    out.reserve(4096);
    const auto mangled = [](const char* name) {
        std::string full = "glitchmask_";
        for (const char* c = name; *c != '\0'; ++c)
            full += *c == '.' ? '_' : *c;
        return full;
    };
    for (std::size_t i = 0; i < kCounterCount; ++i) {
        const auto counter = static_cast<Counter>(i);
        const std::string name = mangled(counter_name(counter));
        // Max-merged counters are high-water marks, i.e. gauges.
        out += "# TYPE " + name +
               (counter_merge(counter) == MergeKind::kMax ? " gauge\n"
                                                          : " counter\n");
        out += name + ' ' + std::to_string(snapshot.values[i]) + '\n';
    }
    for (std::size_t h = 0; h < kHistogramCount; ++h) {
        const HistogramSnapshot& hist = snapshot.histograms[h];
        const std::string name =
            mangled(histogram_name(static_cast<Histogram>(h)));
        out += "# TYPE " + name + " histogram\n";
        std::size_t highest = 0;
        for (std::size_t b = 0; b < kHistogramBuckets; ++b)
            if (hist.buckets[b] != 0) highest = b;
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b <= highest; ++b) {
            cumulative += hist.buckets[b];
            // Bucket b spans [floor(b), floor(b + 1)), so its inclusive
            // upper bound is floor(b + 1) - 1; the last bucket tops out
            // at the u64 maximum.
            const std::uint64_t le =
                b == 0 ? 0
                : b + 1 >= kHistogramBuckets
                    ? ~std::uint64_t{0}
                    : histogram_bucket_floor(b + 1) - 1;
            out += name + "_bucket{le=\"" + std::to_string(le) + "\"} " +
                   std::to_string(cumulative) + '\n';
        }
        out += name + "_bucket{le=\"+Inf\"} " + std::to_string(hist.count) +
               '\n';
        out += name + "_sum " + std::to_string(hist.sum) + '\n';
        out += name + "_count " + std::to_string(hist.count) + '\n';
    }
    for (std::size_t g = 0; g < kGaugeCount; ++g) {
        const std::string name = mangled(gauge_name(static_cast<Gauge>(g)));
        out += "# TYPE " + name + " gauge\n";
        out += name + ' ' + std::to_string(snapshot.gauges[g]) + '\n';
    }
    return out;
}

double process_cpu_seconds() noexcept {
    struct rusage usage = {};
    if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
    const auto seconds = [](const timeval& tv) {
        return static_cast<double>(tv.tv_sec) +
               static_cast<double>(tv.tv_usec) * 1e-6;
    };
    return seconds(usage.ru_utime) + seconds(usage.ru_stime);
}

void record_sim_block(const SimStats& now, SimStats& last) {
    Shard& s = shard();
    s.add(Counter::kSimEvents, now.events - last.events);
    s.add(Counter::kSimToggles, now.toggles - last.toggles);
    s.add(Counter::kSimGlitches, now.glitches - last.glitches);
    s.add(Counter::kSimInertialCancels,
          now.inertial_cancels - last.inertial_cancels);
    s.peak(Counter::kSimQueuePeak, now.queue_peak);
    last = now;
}

// ----- progress / ETA ----------------------------------------------------

void set_heartbeat_interval(double seconds) noexcept {
    g_heartbeat_override.store(seconds, std::memory_order_relaxed);
}

double heartbeat_interval() noexcept {
    const double override = g_heartbeat_override.load(std::memory_order_relaxed);
    if (override > 0.0) return override;
    return env_double("GLITCHMASK_PROGRESS", 0.0);
}

ProgressMeter::ProgressMeter(std::string campaign, std::size_t total_traces,
                             ProgressFn callback)
    : campaign_(std::move(campaign)),
      total_(total_traces),
      callback_(std::move(callback)),
      start_ns_(steady_ns()) {
    const double env_interval = heartbeat_interval();
    heartbeat_ = env_interval > 0.0;
    // Callback-only meters still rate-limit (default 0.5 s) so a cheap
    // campaign with thousands of blocks doesn't drown its observer.
    interval_sec_ = env_interval > 0.0 ? env_interval : 0.5;
}

bool ProgressMeter::active() const noexcept {
    return heartbeat_ || static_cast<bool>(callback_);
}

void ProgressMeter::note_resumed(std::size_t traces) {
    completed_.fetch_add(traces, std::memory_order_relaxed);
    resumed_.fetch_add(traces, std::memory_order_relaxed);
}

void ProgressMeter::advance(std::size_t traces) {
    completed_.fetch_add(traces, std::memory_order_relaxed);
    if (!active()) return;
    const std::int64_t now = steady_ns();
    std::int64_t deadline = next_emit_ns_.load(std::memory_order_relaxed);
    if (now < deadline) return;
    const auto interval_ns =
        static_cast<std::int64_t>(interval_sec_ * 1e9);
    // One thread wins the slot; the rest skip -- an update is never worth
    // blocking a worker for.
    if (next_emit_ns_.compare_exchange_strong(deadline, now + interval_ns,
                                              std::memory_order_relaxed))
        emit(/*final=*/false);
}

void ProgressMeter::finish() {
    if (!active()) return;
    emit(/*final=*/true);
}

void ProgressMeter::emit(bool final) {
    ProgressUpdate update;
    update.campaign = campaign_;
    update.completed_traces = completed_.load(std::memory_order_relaxed);
    update.total_traces = total_;
    update.final = final;
    // Robustness guards (resume-corrected math must survive degenerate
    // inputs): a stepped/suspended clock can make the raw delta negative
    // (clamped to 0), and note_resumed() racing this read can leave the
    // loaded `resumed` momentarily ahead of `completed` -- an unguarded
    // u64 subtraction would turn that into a ~1.8e19 "fresh" count and a
    // nonsense rate/ETA, so the subtraction saturates at 0 instead.
    const std::int64_t elapsed_raw = steady_ns() - start_ns_;
    update.elapsed_sec =
        elapsed_raw > 0 ? static_cast<double>(elapsed_raw) * 1e-9 : 0.0;
    const std::size_t resumed = resumed_.load(std::memory_order_relaxed);
    const std::size_t fresh = update.completed_traces > resumed
                                  ? update.completed_traces - resumed
                                  : 0;
    if (update.elapsed_sec > 0.0 && fresh > 0) {
        update.traces_per_sec =
            static_cast<double>(fresh) / update.elapsed_sec;
        if (update.total_traces > update.completed_traces)
            update.eta_sec = static_cast<double>(update.total_traces -
                                                 update.completed_traces) /
                             update.traces_per_sec;
    }
    if (callback_) callback_(update);
    if (heartbeat_) {
        const double pct =
            update.total_traces > 0
                ? 100.0 * static_cast<double>(update.completed_traces) /
                      static_cast<double>(update.total_traces)
                : 0.0;
        char line[256];
        std::snprintf(line, sizeof line,
                      "[glitchmask] %s: %zu/%zu traces (%.1f%%), %.0f "
                      "traces/s, %s %s\n",
                      campaign_.c_str(), update.completed_traces,
                      update.total_traces, pct, update.traces_per_sec,
                      final ? "done in" : "ETA",
                      format_duration(final ? update.elapsed_sec
                                            : update.eta_sec)
                          .c_str());
        std::fputs(line, stderr);
    }
}

}  // namespace glitchmask::telemetry
