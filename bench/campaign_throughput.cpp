// Campaign throughput harness: traces/sec and toggle-activity MB/s of the
// trace-collection engine on the DES TVLA workload (the paper's dominant
// cost: Sec. VII campaigns at up to 50M traces), swept over the scaling
// axes -- worker count, lanes per pass, and simulation backend
// (event = the PR-2 priority-queue engines, scalar at 1 lane and
// bitsliced at 64; compiled = the levelized straight-line replay of
// sim/compiled_simulator.hpp at 64/128/256/512 lanes).
// Emits JSON -- one object, schema documented in EXPERIMENTS.md -- to
// stdout and to BENCH_batch_sim.json so future PRs can track the perf
// trajectory.
//
// Every row replays the identical campaign (counter-based per-trace
// seeding, one shared block size of 512 so wide compiled passes fill
// their lanes), so the max|t| column doubles as a live equivalence
// check: all rows -- across worker counts, lane widths AND backends --
// must agree bit-for-bit.
//
// Scale with GLITCHMASK_TRACES (default 1024) and GLITCHMASK_NOISE; note
// that meaningful worker speedups need as many physical cores as workers
// (and traces >= workers x 512 blocks), while the lane speedup is
// per-core.
//
// Flags: --progress[=seconds] (stderr heartbeat) and --report <path>
// (run report of each row; the file is rewritten per row, so it ends up
// describing the last row of the sweep).  Before the sweep the harness
// times telemetry off-vs-on pairs and emits the relative cost as the
// top-level "telemetry_overhead" key; span tracing gets the same
// treatment ("trace_off_overhead" -- off-vs-off pairs bound the
// disabled recorder's residual, CI gate <= 1% -- and "trace_overhead"
// for full block/phase span collection, gated <= 5%), and so does
// per-net leakage attribution ("attribution_off_overhead" -- the CI
// gate holds the disabled feature to <= 1% -- and
// "attribution_overhead" for the S-box-scoped probe taps, gated <= 30%
// since the batched probe deposit).  A statistics-fold microbench times the pre-fusion gather
// path against the fused MomentBank fold on identical data
// ("stats_speedup", CI gate >= 1.5x), and every sweep row carries a
// "phases_cpu" breakdown (sim/noise/moments/attribution/checkpoint CPU
// seconds from the phase.* telemetry counters -- summed across workers,
// so a row's phases_cpu can exceed its wall "seconds") plus an
// "oversubscribed" flag for worker counts beyond the machine's physical
// cores (top-level "physical_cores").  Each run is stamped with its git
// "revision", "hostname", and UTC timestamp so the results ledger
// (src/obs/) can attribute entries without trusting file mtimes.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "des/masked_des.hpp"
#include "eval/des_experiments.hpp"
#include "leakage/moment_bank.hpp"
#include "leakage/tvla.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"
#include "support/runenv.hpp"
#include "support/table.hpp"
#include "support/telemetry.hpp"
#include "support/trace.hpp"

using namespace glitchmask;

namespace {

/// Bytes the simulator touches per committed toggle event: the event
/// record plus the power bin read-modify-write (documented in
/// EXPERIMENTS.md; a fixed constant so MB/s stays comparable across PRs).
constexpr double kBytesPerToggle = 16.0;

/// One shared block size: blocks are cut at 512-trace boundaries in every
/// row, so the widest compiled pass (512 lanes) fills all its lanes and
/// every row folds the accumulators at the same 64-trace granularity.
constexpr std::size_t kBlockSize = 512;

struct Series {
    std::string backend = "event";
    unsigned lanes = 0;
    unsigned workers = 0;
    std::size_t checkpoint_every = 0;  // blocks between snapshots; 0 = off
    bool attribution = false;          // per-net probe taps (scope "sbox")
    bool oversubscribed = false;       // workers > physical cores
    double seconds = 0.0;
    double traces_per_sec = 0.0;
    double toggle_mb_per_sec = 0.0;
    double max_abs_t1 = 0.0;
    double speedup = 1.0;  // vs the scalar 1-worker baseline
    std::uint64_t toggles = 0;
    std::uint64_t sim_events = 0;
    std::uint64_t sim_glitches = 0;
    std::uint64_t sim_inertial_cancels = 0;
    std::uint64_t sim_queue_peak = 0;
    // Per-phase *CPU* seconds from the block-level phase.* telemetry
    // counters.  Each worker's on-thread time is summed, so with W
    // workers these can total up to W x the row's wall seconds -- they
    // answer "where did the cores spend their cycles", not "what took so
    // long".  Emitted as "phases_cpu" to keep the ambiguity out of the
    // artifact; "other" is everything the phase clocks do not cover
    // (thread handoff, block orchestration, finalization).
    double phase_sim = 0.0;
    double phase_noise = 0.0;
    double phase_moments = 0.0;
    double phase_attribution = 0.0;
    double phase_checkpoint = 0.0;
};

/// Physical (non-SMT) core count: unique (physical id, core id) pairs in
/// /proc/cpuinfo, falling back to hardware_concurrency where the file is
/// absent (non-Linux) or unparsable.  Worker counts above this figure
/// only measure scheduler time-slicing, so rows get flagged -- not
/// dropped -- as "oversubscribed".
unsigned physical_core_count() {
    std::ifstream cpuinfo("/proc/cpuinfo");
    std::set<std::pair<int, int>> cores;
    int physical_id = 0;
    std::string line;
    while (std::getline(cpuinfo, line)) {
        const auto colon = line.find(':');
        if (colon == std::string::npos) continue;
        const std::string key = line.substr(0, line.find('\t'));
        const int value = std::atoi(line.c_str() + colon + 1);
        if (key == "physical id") physical_id = value;
        else if (key == "core id") cores.emplace(physical_id, value);
    }
    if (!cores.empty()) return static_cast<unsigned>(cores.size());
    const unsigned fallback = std::thread::hardware_concurrency();
    return fallback > 0 ? fallback : 1;
}

}  // namespace

int main(int argc, char** argv) {
    const bench::CliOptions cli = bench::parse_cli(argc, argv);
    bench::banner(
        "Campaign throughput: DES TVLA, event (scalar/bitsliced) vs compiled");

    const des::MaskedDesCore core(des::MaskedDesOptions{});
    const std::size_t traces = static_cast<std::size_t>(
        env_int("GLITCHMASK_TRACES", static_cast<std::int64_t>(
                                         bench::scaled_traces(1024))));
    const double noise = env_double("GLITCHMASK_NOISE", 1.0);

    // Telemetry cost check: identical 64-lane 1-worker campaigns with the
    // registry off vs on, best of three each (no report path here -- a
    // report would force telemetry on and void the "off" timings).
    auto time_once = [&](bool telemetry_on) {
        telemetry::set_enabled(telemetry_on);
        eval::DesTvlaConfig config;
        config.traces = traces;
        config.block_size = kBlockSize;
        config.noise_sigma = noise;
        config.seed = 7;
        config.workers = 1;
        config.lanes = 64;
        config.run.backend = "event";
        const auto start = std::chrono::steady_clock::now();
        (void)eval::run_des_tvla(core, config);
        const auto stop = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(stop - start).count();
    };
    double best_off = std::numeric_limits<double>::infinity();
    double best_on = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 3; ++rep) {
        best_off = std::min(best_off, time_once(false));
        best_on = std::min(best_on, time_once(true));
    }
    const double telemetry_overhead = best_on / best_off - 1.0;

    // Tracing cost check, same protocol.  With the recorder off every
    // instrumented site is a single relaxed load, so off-vs-off pairs
    // bound the residual plumbing cost at measurement noise (CI gate
    // <= 1%); turning collection on adds a block-granularity span plus
    // the phase leaves, which must stay cheap (CI gate <= 5%).
    // Telemetry is held off throughout so the pair isolates tracing.
    auto time_traced = [&](bool tracing_on) {
        trace::set_enabled(tracing_on);
        eval::DesTvlaConfig config;
        config.traces = traces;
        config.block_size = kBlockSize;
        config.noise_sigma = noise;
        config.seed = 7;
        config.workers = 1;
        config.lanes = 64;
        config.run.backend = "event";
        const auto start = std::chrono::steady_clock::now();
        (void)eval::run_des_tvla(core, config);
        const auto stop = std::chrono::steady_clock::now();
        // Spans are measurement-only here: drain so repeated traced runs
        // never hit the global buffer cap mid-timing.
        if (tracing_on) (void)trace::take_spans();
        return std::chrono::duration<double>(stop - start).count();
    };
    telemetry::set_enabled(false);
    double best_trace_base = std::numeric_limits<double>::infinity();
    double best_trace_off = std::numeric_limits<double>::infinity();
    double best_trace_on = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 3; ++rep) {
        best_trace_base = std::min(best_trace_base, time_traced(false));
        best_trace_off = std::min(best_trace_off, time_traced(false));
        best_trace_on = std::min(best_trace_on, time_traced(true));
    }
    trace::set_enabled(false);
    trace::reset();
    const double trace_off_overhead = best_trace_off / best_trace_base - 1.0;
    const double trace_overhead = best_trace_on / best_trace_base - 1.0;
    // The telemetry pair above leaves collection on; the attribution pair
    // below historically runs in that state -- restore it.
    telemetry::set_enabled(true);

    // Attribution cost check.  With attribution off no probe is even
    // constructed -- the sink chain is exactly the pre-feature one -- so
    // timing off-vs-off pairs bounds the residual cost of the plumbing
    // (a never-taken branch per trace) plus measurement noise; the CI
    // gate holds that to <= 1%.  The on-cost scales with the watched
    // point count (here the S-box scope); since the probe batches its
    // per-toggle deposit (one SWAR add per 8 lanes instead of a
    // per-lane loop), CI holds it to <= 30% on the 64-lane engine.
    auto time_attribution = [&](bool attribute) {
        eval::DesTvlaConfig config;
        config.traces = traces;
        config.block_size = kBlockSize;
        config.noise_sigma = noise;
        config.seed = 7;
        config.workers = 1;
        config.lanes = 64;
        config.run.backend = "event";
        config.run.attribution = attribute;
        config.run.attribution_scope = "sbox";
        const auto start = std::chrono::steady_clock::now();
        (void)eval::run_des_tvla(core, config);
        const auto stop = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(stop - start).count();
    };
    double best_plain = std::numeric_limits<double>::infinity();
    double best_attr_off = std::numeric_limits<double>::infinity();
    double best_attr_on = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 3; ++rep) {
        best_plain = std::min(best_plain, time_attribution(false));
        best_attr_off = std::min(best_attr_off, time_attribution(false));
        best_attr_on = std::min(best_attr_on, time_attribution(true));
    }
    const double attribution_off_overhead = best_attr_off / best_plain - 1.0;
    const double attribution_overhead = best_attr_on / best_plain - 1.0;

    // Statistics-fold microbench: the pre-fusion gather path (a bin-major
    // noisy batch swept point-by-point into per-point scalar accumulators
    // via TvlaCampaign::add_lane_traces) against the fused fold (each lane
    // row streamed straight into the bin-vectorized MomentBank).  Both
    // layouts hold the same values and are built outside the timed
    // region, so the ratio isolates the moment update itself.  Both sides
    // must land on the same t statistic to the bit (the bank feeds every
    // per-point accumulator the same addend sequence); CI gates the
    // speedup at >= 1.5x.
    const std::size_t stat_points = core.total_cycles();
    constexpr unsigned kStatLanes = 64;
    constexpr std::size_t kStatBlocks = 8;
    std::vector<std::vector<double>> stat_bins;    // [block][point*lanes+lane]
    std::vector<std::vector<double>> stat_rows;    // [block*lanes][point]
    std::vector<std::uint64_t> stat_masks;
    {
        Xoshiro256 stat_rng(99);
        for (std::size_t b = 0; b < kStatBlocks; ++b) {
            std::vector<double> bins(stat_points * kStatLanes);
            for (double& x : bins) x = stat_rng.gaussian(0.0, 1.0);
            for (unsigned lane = 0; lane < kStatLanes; ++lane) {
                std::vector<double> row(stat_points);
                for (std::size_t i = 0; i < stat_points; ++i)
                    row[i] = bins[i * kStatLanes + lane];
                stat_rows.push_back(std::move(row));
            }
            stat_bins.push_back(std::move(bins));
            stat_masks.push_back(stat_rng());
        }
    }
    double best_gather = std::numeric_limits<double>::infinity();
    double best_fused = std::numeric_limits<double>::infinity();
    double gather_t1 = 0.0;
    double fused_t1 = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        {
            leakage::TvlaCampaign campaign(stat_points, 2);
            const auto start = std::chrono::steady_clock::now();
            for (std::size_t b = 0; b < kStatBlocks; ++b)
                campaign.add_lane_traces(stat_bins[b], kStatLanes,
                                         stat_masks[b], kStatLanes);
            const auto stop = std::chrono::steady_clock::now();
            best_gather = std::min(
                best_gather,
                std::chrono::duration<double>(stop - start).count());
            gather_t1 = campaign.max_abs_t(1);
        }
        {
            leakage::MomentBank bank(stat_points, 2);
            const auto start = std::chrono::steady_clock::now();
            for (std::size_t b = 0; b < kStatBlocks; ++b)
                for (unsigned lane = 0; lane < kStatLanes; ++lane)
                    bank.add_trace(((stat_masks[b] >> lane) & 1u) != 0,
                                   stat_rows[b * kStatLanes + lane].data());
            const auto stop = std::chrono::steady_clock::now();
            best_fused = std::min(
                best_fused,
                std::chrono::duration<double>(stop - start).count());
            fused_t1 = bank.max_abs_t(1);
        }
    }
    const double stats_speedup = best_gather / best_fused;
    const bool stats_identical = gather_t1 == fused_t1;

    // Counters for every sweep row below.
    telemetry::set_enabled(true);
    const unsigned physical_cores = physical_core_count();

    TablePrinter table({"backend", "lanes", "workers", "ckpt", "attr",
                        "seconds", "traces/s", "toggle MB/s", "speedup",
                        "max|t1|"});
    std::vector<Series> series;
    const std::string snapshot_path = "BENCH_checkpoint.gmsnap";

    auto run_row = [&](const std::string& backend, unsigned lanes,
                       unsigned workers, std::size_t checkpoint_every,
                       bool attribute = false) {
        eval::DesTvlaConfig config;
        config.traces = traces;
        config.block_size = kBlockSize;
        config.noise_sigma = noise;
        config.seed = 7;
        config.workers = workers;
        config.lanes = lanes;
        config.run.backend = backend;
        config.run.report_path = cli.report_path;
        config.run.attribution = attribute;
        config.run.attribution_scope = "sbox";
        if (checkpoint_every > 0) {
            // Fresh file each run: a leftover snapshot would resume (and
            // "finish" instantly), voiding the timing.
            std::remove(snapshot_path.c_str());
            config.run.checkpoint_path = snapshot_path;
            config.run.checkpoint_every = checkpoint_every;
        }

        // Fresh registry per row so Max counters (queue peak) are row-local.
        telemetry::reset();
        const auto start = std::chrono::steady_clock::now();
        const eval::DesTvlaResult r = eval::run_des_tvla(core, config);
        const auto stop = std::chrono::steady_clock::now();
        const telemetry::Snapshot counters = telemetry::snapshot();

        Series s;
        s.backend = backend;
        s.lanes = lanes;
        s.workers = workers;
        s.checkpoint_every = checkpoint_every;
        s.attribution = attribute;
        s.oversubscribed = workers > physical_cores;
        s.seconds = std::chrono::duration<double>(stop - start).count();
        s.traces_per_sec = static_cast<double>(r.traces) / s.seconds;
        s.toggle_mb_per_sec =
            static_cast<double>(r.toggles) * kBytesPerToggle / 1e6 / s.seconds;
        s.max_abs_t1 = r.max_abs_t[1];
        s.toggles = r.toggles;
        s.sim_events = counters.value(telemetry::Counter::kSimEvents);
        s.sim_glitches = counters.value(telemetry::Counter::kSimGlitches);
        s.sim_inertial_cancels =
            counters.value(telemetry::Counter::kSimInertialCancels);
        s.sim_queue_peak = counters.value(telemetry::Counter::kSimQueuePeak);
        const auto phase_seconds = [&](telemetry::Counter c) {
            return static_cast<double>(counters.value(c)) / 1e9;
        };
        s.phase_sim = phase_seconds(telemetry::Counter::kPhaseSimNanos);
        s.phase_noise = phase_seconds(telemetry::Counter::kPhaseNoiseNanos);
        s.phase_moments =
            phase_seconds(telemetry::Counter::kPhaseMomentsNanos);
        s.phase_attribution =
            phase_seconds(telemetry::Counter::kPhaseAttributionNanos);
        s.phase_checkpoint =
            phase_seconds(telemetry::Counter::kCheckpointNanos);
        s.speedup = series.empty() ? 1.0 : series.front().seconds / s.seconds;
        series.push_back(s);

        table.add_row({backend, std::to_string(lanes),
                       std::to_string(workers),
                       checkpoint_every == 0 ? std::string("off")
                                             : std::to_string(checkpoint_every),
                       attribute ? "on" : "off",
                       TablePrinter::num(s.seconds, 2),
                       TablePrinter::num(s.traces_per_sec, 1),
                       TablePrinter::num(s.toggle_mb_per_sec, 1),
                       TablePrinter::num(s.speedup, 2),
                       TablePrinter::num(s.max_abs_t1, 6)});
        return s;
    };

    // Event axis: the scalar baseline, then the bitsliced engine across
    // workers.
    run_row("event", 1, 1, /*checkpoint_every=*/0);
    const Series event64_1w = run_row("event", 64, 1, 0);
    const Series event64_2w = run_row("event", 64, 2, 0);

    // Compiled axis: lane-width sweep at one worker, then workers on the
    // widest pass.  The fastest width carries the headline: wider is not
    // always faster once the lane-word state outgrows L2, so the sweep
    // itself picks the per-machine sweet spot.
    Series compiled_best_1w;
    compiled_best_1w.seconds = std::numeric_limits<double>::infinity();
    for (const unsigned lanes : {64u, 128u, 256u, 512u}) {
        const Series s = run_row("compiled", lanes, 1, 0);
        if (s.seconds < compiled_best_1w.seconds) compiled_best_1w = s;
    }
    run_row("compiled", 512, 2, 0);

    // Crash-safe runtime axis: same campaign with periodic snapshots.  The
    // merge-frontier checkpoint is O(log blocks) accumulators, so even the
    // most aggressive cadence (a snapshot after every block) must stay
    // within a few percent of the plain run (acceptance bar: <= 5%).
    double checkpoint_overhead = 0.0;
    for (const std::size_t every : {4u, 1u}) {
        const Series s = run_row("event", 64, 2, every);
        checkpoint_overhead =
            std::max(checkpoint_overhead, s.seconds / event64_2w.seconds - 1.0);
    }
    // Attribution axis: same campaign with S-box probe taps, both
    // backends.  Rides the determinism check below -- the probe must not
    // perturb the power statistics by a single bit.
    run_row("event", 64, 1, /*checkpoint_every=*/0, /*attribute=*/true);
    run_row("compiled", 512, 1, /*checkpoint_every=*/0, /*attribute=*/true);
    std::remove(snapshot_path.c_str());
    table.print();

    bool deterministic = true;
    for (const Series& s : series)
        deterministic &= (s.max_abs_t1 == series.front().max_abs_t1) &&
                         (s.toggles == series.front().toggles);
    std::printf("\nEquivalence across workers, backends, lane widths and "
                "checkpointing: %s\n",
                deterministic ? "bit-identical" : "MISMATCH (bug!)");
    std::printf("Checkpoint overhead (worst cadence, event-64 / 2 workers): "
                "%.2f%%\n",
                checkpoint_overhead * 100.0);
    std::printf("Telemetry overhead (event-64 / 1 worker, best of 3): "
                "%.2f%%\n",
                telemetry_overhead * 100.0);
    std::printf("Tracing-off overhead (must be noise): %.2f%%   "
                "tracing-on cost (block+phase spans): %.2f%%\n",
                trace_off_overhead * 100.0, trace_overhead * 100.0);
    std::printf("Attribution-off overhead (must be noise): %.2f%%   "
                "attribution-on cost (sbox scope): %.2f%%\n",
                attribution_off_overhead * 100.0, attribution_overhead * 100.0);
    std::printf("Statistics fold (%zu bins x %zu traces): gather %.1f ms, "
                "fused %.1f ms -> %.2fx (%s)\n",
                stat_points, kStatBlocks * (std::size_t)kStatLanes,
                best_gather * 1e3, best_fused * 1e3, stats_speedup,
                stats_identical ? "bit-identical" : "MISMATCH (bug!)");
    std::printf("Physical cores: %u%s\n", physical_cores,
                physical_cores < 2
                    ? " (multi-worker rows flagged oversubscribed)"
                    : "");

    // The headline numbers, both per-core: the PR-2 bitslicing gain
    // (scalar -> 64-lane event) and this PR's compiled-replay gain on top
    // (64-lane event -> the best compiled lane width at 1 worker).
    const double batch_speedup_1w =
        series.front().seconds / event64_1w.seconds;
    const double compiled_speedup_1w =
        event64_1w.seconds / compiled_best_1w.seconds;
    std::printf("Bitsliced speedup at 1 worker: %.2fx\n", batch_speedup_1w);
    std::printf("Compiled-%u speedup over event-64 at 1 worker: %.2fx\n",
                compiled_best_1w.lanes, compiled_speedup_1w);

    std::string json = "{\n  \"workload\": \"des_ff_tvla\",\n";
    json += "  \"revision\": \"" + git_revision() + "\",\n";
    json += "  \"hostname\": \"" + host_name() + "\",\n";
    json += "  \"utc\": \"" + utc_timestamp() + "\",\n";
    json += "  \"traces\": " + std::to_string(traces) + ",\n";
    json += "  \"block_size\": " + std::to_string(kBlockSize) + ",\n";
    json += "  \"samples\": " + std::to_string(core.total_cycles()) + ",\n";
    json += "  \"noise_sigma\": " + TablePrinter::num(noise, 3) + ",\n";
    json += "  \"bytes_per_toggle\": " + TablePrinter::num(kBytesPerToggle, 0) +
            ",\n";
    json += std::string("  \"deterministic\": ") +
            (deterministic ? "true" : "false") + ",\n";
    json += "  \"batch_speedup_1worker\": " +
            TablePrinter::num(batch_speedup_1w, 3) + ",\n";
    json += "  \"compiled_best_lanes\": " +
            std::to_string(compiled_best_1w.lanes) + ",\n";
    json += "  \"compiled_speedup_1worker\": " +
            TablePrinter::num(compiled_speedup_1w, 3) + ",\n";
    json += "  \"checkpoint_overhead\": " +
            TablePrinter::num(checkpoint_overhead, 4) + ",\n";
    json += "  \"telemetry_overhead\": " +
            TablePrinter::num(telemetry_overhead, 4) + ",\n";
    json += "  \"trace_off_overhead\": " +
            TablePrinter::num(trace_off_overhead, 4) + ",\n";
    json += "  \"trace_overhead\": " +
            TablePrinter::num(trace_overhead, 4) + ",\n";
    json += "  \"attribution_off_overhead\": " +
            TablePrinter::num(attribution_off_overhead, 4) + ",\n";
    json += "  \"attribution_overhead\": " +
            TablePrinter::num(attribution_overhead, 4) + ",\n";
    json += "  \"stats_speedup\": " + TablePrinter::num(stats_speedup, 3) +
            ",\n";
    json += "  \"physical_cores\": " + std::to_string(physical_cores) + ",\n";
    json += "  \"series\": [\n";
    for (std::size_t i = 0; i < series.size(); ++i) {
        const Series& s = series[i];
        json += "    {\"backend\": \"" + s.backend + "\"" +
                ", \"lanes\": " + std::to_string(s.lanes) +
                ", \"workers\": " + std::to_string(s.workers) +
                ", \"checkpoint_every\": " + std::to_string(s.checkpoint_every) +
                std::string(", \"attribution\": ") +
                (s.attribution ? "true" : "false") +
                std::string(", \"oversubscribed\": ") +
                (s.oversubscribed ? "true" : "false") +
                ", \"seconds\": " + TablePrinter::num(s.seconds, 4) +
                ", \"traces_per_sec\": " + TablePrinter::num(s.traces_per_sec, 2) +
                ", \"toggle_mb_per_sec\": " +
                TablePrinter::num(s.toggle_mb_per_sec, 2) +
                ", \"toggles\": " + std::to_string(s.toggles) +
                ", \"sim_events\": " + std::to_string(s.sim_events) +
                ", \"sim_glitches\": " + std::to_string(s.sim_glitches) +
                ", \"sim_inertial_cancels\": " +
                std::to_string(s.sim_inertial_cancels) +
                ", \"sim_queue_peak\": " + std::to_string(s.sim_queue_peak) +
                ", \"speedup\": " + TablePrinter::num(s.speedup, 3) +
                ", \"max_abs_t1\": " + TablePrinter::num(s.max_abs_t1, 9) +
                ", \"phases_cpu\": {\"sim\": " +
                TablePrinter::num(s.phase_sim, 4) +
                ", \"noise\": " + TablePrinter::num(s.phase_noise, 4) +
                ", \"moments\": " + TablePrinter::num(s.phase_moments, 4) +
                ", \"attribution\": " +
                TablePrinter::num(s.phase_attribution, 4) +
                ", \"checkpoint\": " +
                TablePrinter::num(s.phase_checkpoint, 4) + "}}";
        json += (i + 1 < series.size()) ? ",\n" : "\n";
    }
    json += "  ]\n}\n";

    std::fputs(json.c_str(), stdout);
    if (std::FILE* f = std::fopen("BENCH_batch_sim.json", "w")) {
        std::fputs(json.c_str(), f);
        std::fclose(f);
        std::printf("JSON: BENCH_batch_sim.json\n");
    }
    return (deterministic && stats_identical) ? 0 : 1;
}
