// The campaign service layer: request codec, wire protocol, the
// CampaignService scheduler (cache, coalescing, backpressure, priorities,
// cancellation, watchdog, drain/restart), and the checkpoint I/O failure
// taxonomy the service's graceful-degradation policy is built on.
//
// The load-bearing invariant throughout is determinism: equal request
// fingerprints imply bit-identical results, so every cached, coalesced,
// resumed, or degraded outcome is checked with EXPECT_EQ against a
// fault-free direct driver run -- not "approximately recovered", equal.
#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>

#include "eval/run_report.hpp"
#include "obs/ledger.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"
#include "support/atomic_file.hpp"
#include "support/campaign_error.hpp"
#include "support/fault.hpp"
#include "support/telemetry.hpp"
#include "support/trace.hpp"

namespace glitchmask::service {
namespace {

// ----- shared helpers ----------------------------------------------------

/// A quick gadget campaign (~tens of ms).  Distinct seeds keep the tests'
/// fingerprints disjoint, so no test can accidentally hit another's cache
/// or spool file.
CampaignRequest small_gadget_request(std::uint64_t seed,
                                     std::size_t traces = 256) {
    CampaignRequest request = default_request(CampaignKind::GadgetTvla);
    request.gadget = eval::GadgetKind::Trichina;
    request.replicas = 4;
    request.traces = traces;
    request.noise_sigma = 0.5;
    request.seed = seed;
    request.block_size = 16;
    request.workers = 2;
    return request;
}

/// Fault-free direct driver run -- the bit-exactness reference.
CampaignOutcome reference_outcome(const CampaignRequest& request) {
    return run_campaign_request(request, eval::CampaignRunOptions{});
}

void expect_same_metrics(const CampaignOutcome& actual,
                         const CampaignOutcome& expected) {
    ASSERT_EQ(actual.metrics.size(), expected.metrics.size());
    for (std::size_t i = 0; i < expected.metrics.size(); ++i) {
        EXPECT_EQ(actual.metrics[i].first, expected.metrics[i].first);
        EXPECT_EQ(actual.metrics[i].second, expected.metrics[i].second)
            << "metric " << expected.metrics[i].first;
    }
}

std::string make_temp_dir(const std::string& name) {
    const std::string dir = ::testing::TempDir() + "glitchmask_" + name;
    ::mkdir(dir.c_str(), 0755);
    return dir;
}

bool spool_file_exists(const std::string& path) {
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0;
}

template <class Pred>
bool wait_until(Pred&& pred, unsigned timeout_ms = 20000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (!pred()) {
        if (std::chrono::steady_clock::now() >= deadline) return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
}

ServiceConfig service_config(unsigned executors,
                             std::string spool_dir = {},
                             std::string state_path = {}) {
    ServiceConfig config;
    config.executors = executors;
    config.spool_dir = std::move(spool_dir);
    config.state_path = std::move(state_path);
    return config;
}

class ServiceTest : public ::testing::Test {
protected:
    void TearDown() override { fault::clear(); }
};

// ----- request codec -----------------------------------------------------

TEST(CampaignRequestCodec, EncodeDecodeRoundTripsEveryKind) {
    std::vector<CampaignRequest> originals;

    CampaignRequest sequence = default_request(CampaignKind::SequenceTvla);
    sequence.priority = -3;
    sequence.traces = 777;
    sequence.seed = 42;
    sequence.sequence = {core::ShareId::Y1, core::ShareId::X0,
                         core::ShareId::Y0, core::ShareId::X1};
    sequence.replicas = 5;
    originals.push_back(sequence);

    CampaignRequest gadget = small_gadget_request(9001);
    gadget.gadget = eval::GadgetKind::DomIndep;
    gadget.lanes = 64;
    originals.push_back(gadget);

    CampaignRequest des = default_request(CampaignKind::DesTvla);
    des.flavor = des::CoreFlavor::PD;
    des.prng_on = false;
    des.fixed_plaintext = 0x0123456789ABCDEFull;
    des.key = 0xFEDCBA9876543210ull;
    des.max_test_order = 3;
    originals.push_back(des);

    CampaignRequest mean = default_request(CampaignKind::MeanPower);
    mean.flavor = des::CoreFlavor::DOM;
    mean.placement_seed = 17;
    originals.push_back(mean);

    for (const CampaignRequest& original : originals) {
        const std::string encoded = encode_request(original);
        const CampaignRequest decoded =
            decode_request(eval::parse_json(encoded));
        // Field-complete comparison via the canonical encoding.
        EXPECT_EQ(encode_request(decoded), encoded);
        EXPECT_EQ(fingerprint_hex(request_fingerprint(decoded)),
                  fingerprint_hex(request_fingerprint(original)));
    }
}

TEST(CampaignRequestCodec, RejectsMalformedRequests) {
    const auto decode = [](const std::string& text) {
        return decode_request(eval::parse_json(text));
    };
    EXPECT_THROW((void)decode("{\"traces\":10}"), std::runtime_error);
    EXPECT_THROW((void)decode("{\"kind\":\"no_such_kind\"}"),
                 std::runtime_error);
    EXPECT_THROW((void)decode("{\"kind\":\"gadget_tvla\",\"bogus\":1}"),
                 std::runtime_error);
    EXPECT_THROW(
        (void)decode("{\"kind\":\"gadget_tvla\",\"gadget\":\"nope\"}"),
        std::runtime_error);
    EXPECT_THROW(
        (void)decode("{\"kind\":\"sequence_tvla\",\"sequence\":\"0011\"}"),
        std::runtime_error);
    EXPECT_THROW((void)decode("{\"kind\":\"des_tvla\",\"flavor\":\"xx\"}"),
                 std::runtime_error);
    EXPECT_THROW((void)decode("{\"kind\":\"des_tvla\",\"traces\":-5}"),
                 std::runtime_error);
}

TEST(CampaignRequestCodec, FingerprintIsWorkerAndLaneInvariant) {
    CampaignRequest a = small_gadget_request(31337);
    CampaignRequest b = a;
    b.workers = 7;
    b.lanes = 64;
    b.priority = 9;  // scheduling only, not identity
    EXPECT_EQ(fingerprint_hex(request_fingerprint(a)),
              fingerprint_hex(request_fingerprint(b)));

    CampaignRequest c = a;
    c.seed = a.seed + 1;
    EXPECT_NE(fingerprint_hex(request_fingerprint(a)),
              fingerprint_hex(request_fingerprint(c)));

    const std::string hex = fingerprint_hex(request_fingerprint(a));
    EXPECT_EQ(hex.size(), 80u);
    for (const char digit : hex)
        EXPECT_TRUE((digit >= '0' && digit <= '9') ||
                    (digit >= 'a' && digit <= 'f'))
            << hex;
}

TEST(CampaignRequestCodec, DesFlavorsHaveDistinctIdentities) {
    CampaignRequest ff = default_request(CampaignKind::DesTvla);
    CampaignRequest pd = ff;
    pd.flavor = des::CoreFlavor::PD;
    // FF runs 113 clock windows per trace, PD 34; the sample count is in
    // the fingerprint payload, so the two never share cache entries.
    EXPECT_NE(fingerprint_hex(request_fingerprint(ff)),
              fingerprint_hex(request_fingerprint(pd)));
}

// ----- wire protocol -----------------------------------------------------

TEST(Protocol, ParsesEveryOp) {
    const ClientCommand submit = parse_client_command(
        "{\"op\":\"submit\",\"kind\":\"gadget_tvla\",\"gadget\":\"trichina\","
        "\"traces\":123}");
    EXPECT_EQ(submit.op, ClientCommand::Op::Submit);
    ASSERT_TRUE(submit.request.has_value());
    EXPECT_EQ(submit.request->kind, CampaignKind::GadgetTvla);
    EXPECT_EQ(submit.request->gadget, eval::GadgetKind::Trichina);
    EXPECT_EQ(submit.request->traces, 123u);

    const ClientCommand status =
        parse_client_command("{\"op\":\"status\",\"job\":42}");
    EXPECT_EQ(status.op, ClientCommand::Op::Status);
    EXPECT_EQ(status.job_id, 42u);

    const ClientCommand cancel =
        parse_client_command("{\"op\":\"cancel\",\"job\":7}");
    EXPECT_EQ(cancel.op, ClientCommand::Op::Cancel);
    EXPECT_EQ(cancel.job_id, 7u);

    EXPECT_EQ(parse_client_command("{\"op\":\"stats\"}").op,
              ClientCommand::Op::Stats);

    EXPECT_EQ(parse_client_command("{\"op\":\"metrics\"}").op,
              ClientCommand::Op::Metrics);

    const ClientCommand history = parse_client_command(
        "{\"op\":\"history\",\"fingerprint\":\"abc123\"}");
    EXPECT_EQ(history.op, ClientCommand::Op::History);
    EXPECT_EQ(history.fingerprint, "abc123");

    const ClientCommand shutdown =
        parse_client_command("{\"op\":\"shutdown\",\"drain\":false}");
    EXPECT_EQ(shutdown.op, ClientCommand::Op::Shutdown);
    EXPECT_FALSE(shutdown.drain);
    EXPECT_TRUE(parse_client_command("{\"op\":\"shutdown\"}").drain);
}

TEST(Protocol, RejectsMalformedLines) {
    EXPECT_THROW((void)parse_client_command("not json"), std::runtime_error);
    EXPECT_THROW((void)parse_client_command("[1,2]"), std::runtime_error);
    EXPECT_THROW((void)parse_client_command("{\"job\":1}"),
                 std::runtime_error);
    EXPECT_THROW((void)parse_client_command("{\"op\":\"frobnicate\"}"),
                 std::runtime_error);
    EXPECT_THROW((void)parse_client_command("{\"op\":\"status\"}"),
                 std::runtime_error);
    EXPECT_THROW(
        (void)parse_client_command("{\"op\":\"submit\",\"kind\":\"x\"}"),
        std::runtime_error);
    EXPECT_THROW((void)parse_client_command("{\"op\":\"history\"}"),
                 std::runtime_error);
    EXPECT_THROW((void)parse_client_command(
                     "{\"op\":\"history\",\"fingerprint\":\"\"}"),
                 std::runtime_error);
}

TEST(Protocol, HistoryEncoderRoundTripsThroughTheJsonReader) {
    obs::LedgerEntry entry;
    entry.source = "service";
    entry.campaign = "gadget_tvla";
    entry.status = "completed";
    entry.revision = "cafe";
    entry.host = "rig";
    entry.utc = "2026-08-09T12:00:00Z";
    entry.wall_seconds = 1.25;
    entry.max_abs_t1 = 3.5;
    entry.toggles = 0xFFFFFFFFFFFFFFFFull;

    const eval::JsonValue reply =
        eval::parse_json(encode_history("ab12", {entry, entry}));
    EXPECT_EQ(reply.find("event")->string, "history");
    EXPECT_EQ(reply.find("fingerprint")->string, "ab12");
    const eval::JsonValue* entries = reply.find("entries");
    ASSERT_NE(entries, nullptr);
    ASSERT_EQ(entries->array.size(), 2u);
    EXPECT_EQ(entries->array[0].find("status")->string, "completed");
    EXPECT_EQ(entries->array[0].find("revision")->string, "cafe");
    EXPECT_EQ(entries->array[0].find("wall_seconds")->as_number(), 1.25);
    EXPECT_EQ(entries->array[0].find("toggles")->unsigned_value,
              0xFFFFFFFFFFFFFFFFull);

    const eval::JsonValue empty =
        eval::parse_json(encode_history("ab12", {}));
    ASSERT_NE(empty.find("entries"), nullptr);
    EXPECT_TRUE(empty.find("entries")->array.empty());
}

TEST(Protocol, EventEncodersRoundTripThroughTheJsonReader) {
    const eval::JsonValue accepted =
        eval::parse_json(encode_accepted(5, "deadbeef"));
    EXPECT_EQ(accepted.find("event")->string, "accepted");
    EXPECT_EQ(accepted.find("job")->unsigned_value, 5u);
    EXPECT_EQ(accepted.find("fingerprint")->string, "deadbeef");

    EXPECT_EQ(eval::parse_json(encode_overloaded()).find("event")->string,
              "overloaded");
    EXPECT_EQ(
        eval::parse_json(encode_rejected("bad \"quoted\" reason"))
            .find("reason")
            ->string,
        "bad \"quoted\" reason");

    telemetry::ProgressUpdate update;
    update.completed_traces = 100;
    update.total_traces = 400;
    update.traces_per_sec = 123.5;
    update.eta_sec = 2.43;
    const eval::JsonValue progress =
        eval::parse_json(encode_progress(9, update));
    EXPECT_EQ(progress.find("event")->string, "progress");
    EXPECT_EQ(progress.find("completed")->unsigned_value, 100u);
    EXPECT_EQ(progress.find("total")->unsigned_value, 400u);
    EXPECT_EQ(progress.find("traces_per_sec")->as_number(), 123.5);

    JobStatus completed;
    completed.id = 3;
    completed.state = JobState::Completed;
    completed.request = small_gadget_request(1);
    completed.outcome.total_traces = 256;
    completed.outcome.completed_traces = 256;
    completed.outcome.metrics = {{"max_abs_t_order1", 12.25},
                                 {"leaks_first_order", 1.0}};
    const eval::JsonValue result = eval::parse_json(encode_result(completed));
    EXPECT_EQ(result.find("event")->string, "result");
    EXPECT_EQ(result.find("state")->string, "completed");
    EXPECT_EQ(result.find("completed_traces")->unsigned_value, 256u);
    const eval::JsonValue* metrics = result.find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_EQ(metrics->find("max_abs_t_order1")->as_number(), 12.25);

    JobStatus failed;
    failed.id = 4;
    failed.state = JobState::Failed;
    failed.error_kind = "io_failure";
    failed.error_message = "disk full";
    const eval::JsonValue failure = eval::parse_json(encode_status(failed));
    EXPECT_EQ(failure.find("event")->string, "status");
    EXPECT_EQ(failure.find("error_kind")->string, "io_failure");
    EXPECT_EQ(failure.find("error_message")->string, "disk full");

    CampaignService::Stats stats;
    stats.submitted = 11;
    stats.cache_hits = 4;
    stats.completed = 9;
    stats.cache_misses = 7;
    stats.queue_peak = 5;
    const eval::JsonValue encoded = eval::parse_json(encode_stats(stats));
    EXPECT_EQ(encoded.find("submitted")->unsigned_value, 11u);
    EXPECT_EQ(encoded.find("cache_hits")->unsigned_value, 4u);
    EXPECT_EQ(encoded.find("completed")->unsigned_value, 9u);
    EXPECT_EQ(encoded.find("cache_misses")->unsigned_value, 7u);
    EXPECT_EQ(encoded.find("queue_peak")->unsigned_value, 5u);

    // A terminal status with a span rollup carries it on the wire; a
    // non-terminal one never does.
    completed.spans = {{"execute", 1, 2500000}, {"queue_wait", 1, 1000}};
    const eval::JsonValue traced = eval::parse_json(encode_result(completed));
    const eval::JsonValue* spans = traced.find("spans");
    ASSERT_NE(spans, nullptr);
    ASSERT_EQ(spans->array.size(), 2u);
    EXPECT_EQ(spans->array[0].find("name")->string, "execute");
    EXPECT_EQ(spans->array[0].find("count")->unsigned_value, 1u);
    EXPECT_EQ(spans->array[0].find("total_ns")->unsigned_value, 2500000u);
    JobStatus running = completed;
    running.state = JobState::Running;
    EXPECT_EQ(eval::parse_json(encode_status(running)).find("spans"),
              nullptr);
}

TEST(Protocol, MetricsEncoderRoundTripsThroughTheJsonReader) {
    telemetry::Snapshot snapshot;
    snapshot.values[static_cast<std::size_t>(
        telemetry::Counter::kServiceJobs)] = 3;
    auto& wait = snapshot.histograms[static_cast<std::size_t>(
        telemetry::Histogram::kQueueWaitNanos)];
    wait.buckets[telemetry::histogram_bucket(1024)] = 2;
    wait.count = 2;
    wait.sum = 2048;
    wait.max = 1024;
    snapshot.gauges[static_cast<std::size_t>(
        telemetry::Gauge::kServiceQueueDepth)] = 4;

    CampaignService::MetricsInfo info;
    info.stats.queued_now = 4;
    info.stats.running_now = 1;
    info.stats.queue_peak = 6;
    info.cache_entries = 12;
    info.cache_hit_rate = 0.25;
    info.spool_bytes = 4096;

    const eval::JsonValue doc =
        eval::parse_json(encode_metrics(snapshot, info));
    EXPECT_EQ(doc.find("event")->string, "metrics");
    const eval::JsonValue* counters = doc.find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_EQ(counters->find("service.jobs")->unsigned_value, 3u);
    const eval::JsonValue* histograms = doc.find("histograms");
    ASSERT_NE(histograms, nullptr);
    const eval::JsonValue* wait_out =
        histograms->find("service.queue_wait_nanos");
    ASSERT_NE(wait_out, nullptr);
    EXPECT_EQ(wait_out->find("count")->unsigned_value, 2u);
    EXPECT_EQ(wait_out->find("sum")->unsigned_value, 2048u);
    EXPECT_EQ(wait_out->find("max")->unsigned_value, 1024u);
    const eval::JsonValue* buckets = wait_out->find("buckets");
    ASSERT_NE(buckets, nullptr);
    ASSERT_EQ(buckets->array.size(), 1u);  // sparse: only occupied buckets
    ASSERT_EQ(buckets->array[0].array.size(), 2u);
    EXPECT_EQ(buckets->array[0].array[0].unsigned_value, 1024u);  // floor
    EXPECT_EQ(buckets->array[0].array[1].unsigned_value, 2u);
    const eval::JsonValue* gauges = doc.find("gauges");
    ASSERT_NE(gauges, nullptr);
    EXPECT_EQ(gauges->find("service.queue_depth")->unsigned_value, 4u);
    const eval::JsonValue* svc = doc.find("service");
    ASSERT_NE(svc, nullptr);
    EXPECT_EQ(svc->find("queue_depth")->unsigned_value, 4u);
    EXPECT_EQ(svc->find("running")->unsigned_value, 1u);
    EXPECT_EQ(svc->find("queue_peak")->unsigned_value, 6u);
    EXPECT_EQ(svc->find("cache_entries")->unsigned_value, 12u);
    EXPECT_EQ(svc->find("cache_hit_rate")->as_number(), 0.25);
    EXPECT_EQ(svc->find("spool_bytes")->unsigned_value, 4096u);
}

// ----- scheduler behaviour -----------------------------------------------

TEST_F(ServiceTest, CompletesCachesAndDedupesAcrossBackendKnobs) {
    const CampaignRequest request = small_gadget_request(100);
    const CampaignOutcome reference = reference_outcome(request);

    CampaignService svc(service_config(2));
    const auto submitted = svc.submit(request);
    ASSERT_EQ(submitted.kind, CampaignService::SubmitResult::Kind::Accepted);

    const std::optional<JobStatus> done = svc.wait(submitted.job_id);
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->state, JobState::Completed);
    EXPECT_FALSE(done->cached);
    EXPECT_EQ(done->outcome.completed_traces, request.traces);
    EXPECT_FALSE(done->outcome.cancelled);
    expect_same_metrics(done->outcome, reference);

    // Identical resubmit: answered from the cache, no second simulation.
    const auto resubmitted = svc.submit(request);
    const std::optional<JobStatus> cached = svc.wait(resubmitted.job_id);
    ASSERT_TRUE(cached.has_value());
    EXPECT_EQ(cached->state, JobState::Completed);
    EXPECT_TRUE(cached->cached);
    expect_same_metrics(cached->outcome, reference);

    // workers/lanes change the execution plan, not the campaign identity:
    // the determinism proof makes the cached result answer this too.
    CampaignRequest other_backend = request;
    other_backend.workers = 1;
    other_backend.lanes = 1;
    const auto cross = svc.submit(other_backend);
    const std::optional<JobStatus> cross_hit = svc.wait(cross.job_id);
    ASSERT_TRUE(cross_hit.has_value());
    EXPECT_TRUE(cross_hit->cached);
    expect_same_metrics(cross_hit->outcome, reference);

    const CampaignService::Stats stats = svc.stats();
    EXPECT_EQ(stats.submitted, 3u);
    EXPECT_EQ(stats.executed, 1u);
    EXPECT_EQ(stats.cache_hits, 2u);
    svc.shutdown(/*cancel_running=*/false);
}

TEST_F(ServiceTest, CoalescesIdenticalInFlightSubmissions) {
    // One executor, held busy by a stalled filler job, so the identical
    // pair is provably in flight together.
    fault::install(
        fault::parse_fault_plan("service.worker=stall@ms=300,count=1"));
    CampaignService svc(service_config(1));

    const auto filler = svc.submit(small_gadget_request(110));
    ASSERT_EQ(filler.kind, CampaignService::SubmitResult::Kind::Accepted);

    const CampaignRequest request = small_gadget_request(111);
    const auto primary = svc.submit(request);
    const auto follower = svc.submit(request);
    ASSERT_EQ(primary.kind, CampaignService::SubmitResult::Kind::Accepted);
    ASSERT_EQ(follower.kind, CampaignService::SubmitResult::Kind::Accepted);

    const std::optional<JobStatus> first = svc.wait(primary.job_id);
    const std::optional<JobStatus> second = svc.wait(follower.job_id);
    ASSERT_TRUE(first.has_value() && second.has_value());
    EXPECT_EQ(first->state, JobState::Completed);
    EXPECT_EQ(second->state, JobState::Completed);
    EXPECT_FALSE(first->coalesced);
    EXPECT_TRUE(second->coalesced);
    expect_same_metrics(second->outcome, first->outcome);

    const CampaignService::Stats stats = svc.stats();
    EXPECT_EQ(stats.executed, 2u);  // filler + primary; follower rode along
    EXPECT_EQ(stats.coalesced, 1u);
    svc.shutdown(false);
}

TEST_F(ServiceTest, OverloadIsAnExplicitRejection) {
    fault::install(
        fault::parse_fault_plan("service.worker=stall@ms=800,count=1"));
    ServiceConfig config = service_config(1);
    config.queue_capacity = 1;
    CampaignService svc(config);

    const auto running = svc.submit(small_gadget_request(120));
    ASSERT_EQ(running.kind, CampaignService::SubmitResult::Kind::Accepted);
    ASSERT_TRUE(wait_until([&] { return svc.stats().running_now == 1; }));

    const auto queued = svc.submit(small_gadget_request(121));
    EXPECT_EQ(queued.kind, CampaignService::SubmitResult::Kind::Accepted);

    const auto rejected = svc.submit(small_gadget_request(122));
    EXPECT_EQ(rejected.kind, CampaignService::SubmitResult::Kind::Overloaded);
    EXPECT_EQ(svc.stats().rejected_overloaded, 1u);

    svc.wait_idle();
    EXPECT_EQ(svc.stats().executed, 2u);
    svc.shutdown(false);
}

TEST_F(ServiceTest, LedgerRecordsExecutedJobsButNotCacheHits) {
    const std::string ledger =
        ::testing::TempDir() + "glitchmask_service_ledger.ndjson";
    std::remove(ledger.c_str());
    ServiceConfig config = service_config(1);
    config.ledger_path = ledger;
    CampaignService svc(config);

    const CampaignRequest request = small_gadget_request(150);
    const auto first = svc.submit(request);
    ASSERT_EQ(first.kind, CampaignService::SubmitResult::Kind::Accepted);
    svc.wait_idle();
    const auto second = svc.submit(request);  // cache hit: no new entry
    ASSERT_EQ(second.kind, CampaignService::SubmitResult::Kind::Accepted);
    svc.wait_idle();
    svc.shutdown(false);

    const obs::LedgerFile file = obs::read_ledger(ledger);
    EXPECT_EQ(file.corrupt_lines, 0u);
    ASSERT_EQ(file.entries.size(), 1u);
    const obs::LedgerEntry& entry = file.entries[0];
    EXPECT_EQ(entry.source, "service");
    EXPECT_EQ(entry.campaign, "gadget_tvla");
    EXPECT_EQ(entry.status, "completed");
    EXPECT_EQ(obs::fingerprint_key(entry.fingerprint),
              fingerprint_hex(request_fingerprint(request)));
    EXPECT_GT(entry.wall_seconds, 0.0);
    // The driver's headline number must have landed in the leakage field
    // the diff layer compares bit-exactly.
    const CampaignOutcome reference = reference_outcome(request);
    double expected_t1 = 0.0;
    for (const auto& [name, value] : reference.metrics)
        if (name == "max_abs_t_order1") expected_t1 = value;
    EXPECT_EQ(entry.max_abs_t1, expected_t1);
}

TEST_F(ServiceTest, HigherPriorityJumpsTheQueue) {
    fault::install(
        fault::parse_fault_plan("service.worker=stall@ms=400,count=1"));
    CampaignService svc(service_config(1));

    std::mutex order_mutex;
    std::vector<std::uint64_t> completion_order;
    svc.set_completion_hook([&](const JobStatus& status) {
        std::lock_guard<std::mutex> lock(order_mutex);
        completion_order.push_back(status.id);
    });

    const auto filler = svc.submit(small_gadget_request(130));
    ASSERT_TRUE(wait_until([&] { return svc.stats().running_now == 1; }));

    CampaignRequest low = small_gadget_request(131);
    low.priority = 0;
    CampaignRequest high = small_gadget_request(132);
    high.priority = 7;
    const auto low_id = svc.submit(low).job_id;
    const auto high_id = svc.submit(high).job_id;

    svc.wait_idle();
    std::lock_guard<std::mutex> lock(order_mutex);
    ASSERT_EQ(completion_order.size(), 3u);
    EXPECT_EQ(completion_order[0], filler.job_id);
    EXPECT_EQ(completion_order[1], high_id);
    EXPECT_EQ(completion_order[2], low_id);
    svc.shutdown(false);
}

TEST_F(ServiceTest, QueuedJobsCancelImmediately) {
    fault::install(
        fault::parse_fault_plan("service.worker=stall@ms=400,count=1"));
    CampaignService svc(service_config(1));

    (void)svc.submit(small_gadget_request(140));
    ASSERT_TRUE(wait_until([&] { return svc.stats().running_now == 1; }));
    const auto queued = svc.submit(small_gadget_request(141));

    EXPECT_TRUE(svc.cancel(queued.job_id));
    const std::optional<JobStatus> cancelled = svc.status(queued.job_id);
    ASSERT_TRUE(cancelled.has_value());
    EXPECT_EQ(cancelled->state, JobState::Cancelled);

    EXPECT_FALSE(svc.cancel(queued.job_id));  // already terminal
    EXPECT_FALSE(svc.cancel(99999));          // unknown id

    svc.wait_idle();
    EXPECT_EQ(svc.stats().cancelled, 1u);
    EXPECT_EQ(svc.stats().executed, 1u);
    svc.shutdown(false);
}

TEST_F(ServiceTest, CancellingAQueuedPrimaryPromotesItsFollowers) {
    // One executor held by a stalled filler, so three identical submits
    // stack up: one queued primary plus two coalesced followers.
    // Cancelling the primary must not strand the followers -- the first
    // is promoted to a real queued job and the rest ride on it.
    fault::install(
        fault::parse_fault_plan("service.worker=stall@ms=400,count=1"));
    CampaignService svc(service_config(1));

    (void)svc.submit(small_gadget_request(145));
    ASSERT_TRUE(wait_until([&] { return svc.stats().running_now == 1; }));

    const CampaignRequest request = small_gadget_request(146);
    const auto primary = svc.submit(request);
    const auto follower = svc.submit(request);
    const auto rider = svc.submit(request);
    ASSERT_EQ(primary.kind, CampaignService::SubmitResult::Kind::Accepted);
    ASSERT_EQ(follower.kind, CampaignService::SubmitResult::Kind::Accepted);
    ASSERT_EQ(rider.kind, CampaignService::SubmitResult::Kind::Accepted);

    EXPECT_TRUE(svc.cancel(primary.job_id));
    const std::optional<JobStatus> cancelled = svc.status(primary.job_id);
    ASSERT_TRUE(cancelled.has_value());
    EXPECT_EQ(cancelled->state, JobState::Cancelled);

    // The promoted heir runs for real; the remaining follower rides it.
    const std::optional<JobStatus> heir = svc.wait(follower.job_id);
    const std::optional<JobStatus> rode = svc.wait(rider.job_id);
    ASSERT_TRUE(heir.has_value() && rode.has_value());
    EXPECT_EQ(heir->state, JobState::Completed);
    EXPECT_FALSE(heir->coalesced);
    EXPECT_EQ(rode->state, JobState::Completed);
    EXPECT_TRUE(rode->coalesced);
    expect_same_metrics(rode->outcome, heir->outcome);

    EXPECT_EQ(svc.stats().executed, 2u);  // filler + promoted heir
    EXPECT_EQ(svc.stats().cancelled, 1u);
    EXPECT_EQ(svc.stats().coalesced, 1u);
    svc.shutdown(false);
}

TEST_F(ServiceTest, TerminalJobHistoryIsBounded) {
    ServiceConfig config = service_config(1);
    config.history_capacity = 2;
    CampaignService svc(config);

    std::vector<std::uint64_t> ids;
    for (std::uint64_t seed = 160; seed < 165; ++seed) {
        const auto submitted = svc.submit(small_gadget_request(seed));
        ASSERT_EQ(submitted.kind,
                  CampaignService::SubmitResult::Kind::Accepted);
        const std::optional<JobStatus> done = svc.wait(submitted.job_id);
        ASSERT_TRUE(done.has_value());
        EXPECT_EQ(done->state, JobState::Completed);
        EXPECT_EQ(done->fingerprint_key,
                  fingerprint_hex(request_fingerprint(
                      small_gadget_request(seed))));
        ids.push_back(submitted.job_id);
    }

    // Only the newest history_capacity terminal jobs stay queryable; the
    // older ones age out (their results persist in the result cache).
    EXPECT_FALSE(svc.status(ids[0]).has_value());
    EXPECT_FALSE(svc.status(ids[1]).has_value());
    EXPECT_FALSE(svc.status(ids[2]).has_value());
    EXPECT_TRUE(svc.status(ids[3]).has_value());
    EXPECT_TRUE(svc.status(ids[4]).has_value());

    // An evicted job's campaign still answers from the cache.
    const auto resubmitted = svc.submit(small_gadget_request(160));
    const std::optional<JobStatus> cached = svc.wait(resubmitted.job_id);
    ASSERT_TRUE(cached.has_value());
    EXPECT_TRUE(cached->cached);
    svc.shutdown(false);
}

TEST_F(ServiceTest, CancelledRunLeavesResumableSpoolAndResumesExactly) {
    const CampaignRequest request = small_gadget_request(150, 8192);
    const CampaignOutcome reference = reference_outcome(request);
    const std::string spool = make_temp_dir("svc_spool_cancel");
    const std::string snapshot =
        spool + "/" + fingerprint_hex(request_fingerprint(request)) +
        ".gmsnap";
    std::remove(snapshot.c_str());

    CampaignService svc(service_config(1, spool));
    const auto submitted = svc.submit(request);

    // Cancel once the first spool checkpoint lands, well before the 8192
    // traces are done.
    ASSERT_TRUE(wait_until([&] { return spool_file_exists(snapshot); }));
    ASSERT_TRUE(svc.cancel(submitted.job_id));

    const std::optional<JobStatus> cancelled = svc.wait(submitted.job_id);
    ASSERT_TRUE(cancelled.has_value());
    EXPECT_EQ(cancelled->state, JobState::Cancelled);
    EXPECT_TRUE(cancelled->outcome.cancelled);
    EXPECT_LT(cancelled->outcome.completed_traces, request.traces);
    EXPECT_TRUE(spool_file_exists(snapshot)) << "spool must stay resumable";

    // The resubmission resumes from the spool frontier and finishes
    // bit-identical to the never-interrupted run.
    const auto resumed = svc.submit(request);
    const std::optional<JobStatus> done = svc.wait(resumed.job_id);
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->state, JobState::Completed);
    EXPECT_FALSE(done->cached);
    EXPECT_TRUE(done->outcome.resumed);
    EXPECT_EQ(done->outcome.completed_traces, request.traces);
    expect_same_metrics(done->outcome, reference);
    EXPECT_FALSE(spool_file_exists(snapshot))
        << "completed results retire their spool snapshot";
    svc.shutdown(false);
}

TEST_F(ServiceTest, WatchdogTimesOutAWedgedJobAndItStaysResumable) {
    const CampaignRequest request = small_gadget_request(160, 2048);
    const CampaignOutcome reference = reference_outcome(request);
    const std::string spool = make_temp_dir("svc_spool_watchdog");
    const std::string snapshot =
        spool + "/" + fingerprint_hex(request_fingerprint(request)) +
        ".gmsnap";
    std::remove(snapshot.c_str());

    // The first block wedges for 2.5 s; the watchdog (0.75 s, no progress
    // signal during the stall) must cancel cooperatively.
    fault::install(
        fault::parse_fault_plan("campaign.block=stall@ms=2500,count=1"));
    ServiceConfig config = service_config(1, spool);
    config.watchdog_timeout_sec = 0.75;
    CampaignService svc(config);
    const auto submitted = svc.submit(request);
    const std::optional<JobStatus> timed_out = svc.wait(submitted.job_id);
    ASSERT_TRUE(timed_out.has_value());
    EXPECT_EQ(timed_out->state, JobState::TimedOut);
    EXPECT_TRUE(timed_out->outcome.cancelled);
    EXPECT_LT(timed_out->outcome.completed_traces, request.traces);
    EXPECT_EQ(svc.stats().timed_out, 1u);

    // Unwedged resubmit completes exactly.
    fault::clear();
    const auto retry = svc.submit(request);
    const std::optional<JobStatus> done = svc.wait(retry.job_id);
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->state, JobState::Completed);
    expect_same_metrics(done->outcome, reference);
    svc.shutdown(false);
}

TEST_F(ServiceTest, WorkerFaultFailsOneJobNotTheService) {
    fault::install(fault::parse_fault_plan("service.worker=oom@count=1"));
    CampaignService svc(service_config(1));

    const CampaignRequest request = small_gadget_request(180);
    const auto doomed = svc.submit(request);
    const std::optional<JobStatus> failed = svc.wait(doomed.job_id);
    ASSERT_TRUE(failed.has_value());
    EXPECT_EQ(failed->state, JobState::Failed);
    EXPECT_EQ(failed->error_kind, "error");
    EXPECT_EQ(svc.stats().failed, 1u);

    // The executor survived; the retry (fault budget spent) succeeds.
    const auto retry = svc.submit(request);
    const std::optional<JobStatus> done = svc.wait(retry.job_id);
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->state, JobState::Completed);
    svc.shutdown(false);
}

TEST_F(ServiceTest, DrainPersistsUnfinishedWorkAndARestartFinishesIt) {
    const std::string spool = make_temp_dir("svc_spool_drain");
    const std::string state = ::testing::TempDir() + "glitchmask_svc_state";
    std::remove(state.c_str());
    const ServiceConfig config = service_config(1, spool, state);

    const CampaignRequest running_req = small_gadget_request(170, 4096);
    const CampaignRequest queued_req = small_gadget_request(171);

    fault::install(
        fault::parse_fault_plan("service.worker=stall@ms=600,count=1"));
    {
        CampaignService svc(config);
        (void)svc.submit(running_req);
        ASSERT_TRUE(wait_until([&] { return svc.stats().running_now == 1; }));
        (void)svc.submit(queued_req);
        // SIGTERM path: cancel the running job (it checkpoints), persist
        // both unfinished requests.
        svc.shutdown(/*cancel_running=*/true);
    }
    fault::clear();
    ASSERT_TRUE(spool_file_exists(state));

    CampaignService restarted(config);
    EXPECT_EQ(restarted.load_state(), 2u);
    EXPECT_FALSE(spool_file_exists(state))
        << "a consumed state file must not replay twice";
    restarted.wait_idle();

    const CampaignService::Stats stats = restarted.stats();
    EXPECT_EQ(stats.executed, 2u);
    EXPECT_EQ(stats.failed, 0u);

    // Both campaigns really finished: identical resubmits are cache hits.
    const auto check_a = restarted.submit(running_req);
    const auto check_b = restarted.submit(queued_req);
    EXPECT_TRUE(restarted.wait(check_a.job_id)->cached);
    EXPECT_TRUE(restarted.wait(check_b.job_id)->cached);
    restarted.shutdown(false);
}

// ----- checkpoint I/O failure taxonomy (driver level) --------------------

class CheckpointFailureTest : public ::testing::Test {
protected:
    void TearDown() override { fault::clear(); }

    static std::string snapshot_path(const std::string& name) {
        const std::string path =
            ::testing::TempDir() + "glitchmask_" + name + ".gmsnap";
        std::remove(path.c_str());
        std::remove((path + ".corrupt").c_str());
        return path;
    }

    /// Runs the campaign until >= 2 checkpoints landed, then cancels --
    /// the standard way to manufacture a valid mid-campaign snapshot.
    static CampaignOutcome run_until_checkpointed(
        const CampaignRequest& request, const std::string& path,
        CancelToken& cancel) {
        eval::CampaignRunOptions run;
        run.checkpoint_path = path;
        run.checkpoint_every = 1;
        run.cancel = &cancel;
        run.on_checkpoint = [&cancel](std::size_t blocks) {
            if (blocks >= 2) cancel.request();
        };
        return run_campaign_request(request, std::move(run));
    }
};

TEST_F(CheckpointFailureTest, UnwritableCheckpointDirIsTypedIoFailure) {
    CampaignRequest request = small_gadget_request(210, 64);
    eval::CampaignRunOptions run;
    run.checkpoint_path =
        ::testing::TempDir() + "glitchmask_no_such_dir/frontier.gmsnap";
    run.checkpoint_every = 1;
    try {
        (void)run_campaign_request(request, std::move(run));
        FAIL() << "expected CampaignError";
    } catch (const CampaignError& error) {
        EXPECT_EQ(error.kind(), CampaignErrorKind::IoFailure);
        EXPECT_EQ(error.error_number(), ENOENT);
        EXPECT_NE(std::string(error.what()).find("glitchmask_no_such_dir"),
                  std::string::npos)
            << error.what();
    }
}

TEST_F(CheckpointFailureTest, EnospcMidCampaignFailsTypedWithoutDegrade) {
    const CampaignRequest request = small_gadget_request(211, 128);
    const std::string path = snapshot_path("enospc_strict");
    // First checkpoint lands, the next fsync hits the full disk.
    fault::install(
        fault::parse_fault_plan("atomic_file.fsync=enospc@after=1"));
    eval::CampaignRunOptions run;
    run.checkpoint_path = path;
    run.checkpoint_every = 1;
    try {
        (void)run_campaign_request(request, std::move(run));
        FAIL() << "expected CampaignError";
    } catch (const CampaignError& error) {
        EXPECT_EQ(error.kind(), CampaignErrorKind::IoFailure);
        EXPECT_EQ(error.error_number(), ENOSPC);
    }
}

TEST_F(CheckpointFailureTest, EnospcMidCampaignDegradesToExactResult) {
    const CampaignRequest request = small_gadget_request(212, 128);
    const CampaignOutcome reference = reference_outcome(request);
    const std::string path = snapshot_path("enospc_degrade");

    fault::install(
        fault::parse_fault_plan("atomic_file.fsync=enospc@after=1"));
    eval::CampaignRunOptions run;
    run.checkpoint_path = path;
    run.checkpoint_every = 1;
    run.degrade_on_io_error = true;
    std::vector<std::string> degradations;
    run.on_degraded = [&](const char* what, const std::string&) {
        degradations.push_back(what);
    };
    const CampaignOutcome outcome =
        run_campaign_request(request, std::move(run));

    EXPECT_EQ(outcome.completed_traces, request.traces);
    EXPECT_FALSE(outcome.cancelled);
    EXPECT_TRUE(outcome.checkpoint_degraded);
    EXPECT_FALSE(outcome.snapshot_discarded);
    ASSERT_FALSE(degradations.empty());
    EXPECT_EQ(degradations.front(), "checkpoint_degraded");
    expect_same_metrics(outcome, reference);
}

TEST_F(CheckpointFailureTest, TruncatedSnapshotIsTypedAndQuarantinable) {
    const CampaignRequest request = small_gadget_request(213, 256);
    const CampaignOutcome reference = reference_outcome(request);
    const std::string path = snapshot_path("truncated");

    CancelToken cancel;
    const CampaignOutcome partial =
        run_until_checkpointed(request, path, cancel);
    ASSERT_TRUE(partial.cancelled);
    ASSERT_TRUE(spool_file_exists(path));

    // Simulate a torn write the rename discipline should have prevented:
    // chop the snapshot mid-frame.
    const auto bytes = read_file_if_exists(path);
    ASSERT_TRUE(bytes.has_value());
    ASSERT_GT(bytes->size(), 8u);
    atomic_write_file(path, std::span<const std::uint8_t>(bytes->data(),
                                                          bytes->size() / 2));

    // Strict resume: the damage is a typed CorruptSnapshot, never a
    // partially-trusted frontier.
    {
        eval::CampaignRunOptions run;
        run.checkpoint_path = path;
        run.checkpoint_every = 1;
        try {
            (void)run_campaign_request(request, std::move(run));
            FAIL() << "expected CampaignError";
        } catch (const CampaignError& error) {
            EXPECT_EQ(error.kind(), CampaignErrorKind::CorruptSnapshot);
        }
    }

    // Degraded resume: quarantine + restart from zero, bit-identical.
    eval::CampaignRunOptions run;
    run.checkpoint_path = path;
    run.checkpoint_every = 1;
    run.discard_corrupt_snapshot = true;
    const CampaignOutcome outcome =
        run_campaign_request(request, std::move(run));
    EXPECT_TRUE(outcome.snapshot_discarded);
    EXPECT_FALSE(outcome.resumed);
    EXPECT_EQ(outcome.completed_traces, request.traces);
    EXPECT_TRUE(spool_file_exists(path + ".corrupt"))
        << "the damaged snapshot must be preserved for forensics";
    expect_same_metrics(outcome, reference);
}

TEST_F(CheckpointFailureTest, FailedWritesNeverDamageThePreviousSnapshot) {
    const CampaignRequest request = small_gadget_request(214, 256);
    const CampaignOutcome reference = reference_outcome(request);
    const std::string path = snapshot_path("keep_previous");

    CancelToken cancel;
    (void)run_until_checkpointed(request, path, cancel);
    const auto before = read_file_if_exists(path);
    ASSERT_TRUE(before.has_value());

    // Every further checkpoint write fails; the resumed run must degrade,
    // finish exactly, and leave the old frontier byte-identical on disk.
    fault::install(fault::parse_fault_plan("atomic_file.fsync=enospc"));
    eval::CampaignRunOptions run;
    run.checkpoint_path = path;
    run.checkpoint_every = 1;
    run.degrade_on_io_error = true;
    const CampaignOutcome outcome =
        run_campaign_request(request, std::move(run));
    fault::clear();

    EXPECT_TRUE(outcome.resumed);
    EXPECT_TRUE(outcome.checkpoint_degraded);
    EXPECT_EQ(outcome.completed_traces, request.traces);
    expect_same_metrics(outcome, reference);

    const auto after = read_file_if_exists(path);
    ASSERT_TRUE(after.has_value());
    EXPECT_EQ(*after, *before);
}

// ----- chaos soak --------------------------------------------------------

// The acceptance bar for the whole robustness layer: under every seeded
// fault schedule, a campaign either completes bit-identical to the
// fault-free reference, or fails typed with a resumable path -- and the
// retry after clearing the faults always lands exactly on the reference.
TEST_F(ServiceTest, ChaosSoakEveryScheduleEndsBitIdentical) {
    const CampaignRequest request = small_gadget_request(200, 1024);
    const CampaignOutcome reference = reference_outcome(request);

    const char* schedules[] = {
        "seed=3;atomic_file.*=eintr@p=0.35",
        "seed=5;atomic_file.write=eio@every=3",
        "seed=7;atomic_file.fsync=enospc@after=2",
        "seed=11;atomic_file.payload=corrupt@every=2",
        "seed=13;service.worker=oom@count=1",
        "seed=17;atomic_file.write=eio@p=0.5;atomic_file.fsync=enospc@after=4",
    };

    int schedule_index = 0;
    for (const char* schedule : schedules) {
        SCOPED_TRACE(schedule);
        const std::string spool = make_temp_dir(
            "svc_soak_" + std::to_string(schedule_index++));
        fault::install(fault::parse_fault_plan(schedule));
        CampaignService svc(service_config(1, spool));
        const auto submitted = svc.submit(request);
        ASSERT_EQ(submitted.kind,
                  CampaignService::SubmitResult::Kind::Accepted);
        const std::optional<JobStatus> outcome = svc.wait(submitted.job_id);
        ASSERT_TRUE(outcome.has_value());

        if (outcome->state == JobState::Completed) {
            EXPECT_EQ(outcome->outcome.completed_traces, request.traces);
            expect_same_metrics(outcome->outcome, reference);
        } else {
            // Not absorbed: must be a *typed* failure, and the campaign
            // must stay recoverable.
            ASSERT_EQ(outcome->state, JobState::Failed);
            EXPECT_TRUE(outcome->error_kind == "io_failure" ||
                        outcome->error_kind == "corrupt_snapshot" ||
                        outcome->error_kind == "error")
                << outcome->error_kind;
            fault::clear();
            const auto retry = svc.submit(request);
            const std::optional<JobStatus> recovered =
                svc.wait(retry.job_id);
            ASSERT_TRUE(recovered.has_value());
            ASSERT_EQ(recovered->state, JobState::Completed);
            expect_same_metrics(recovered->outcome, reference);
        }
        fault::clear();
        svc.shutdown(false);
    }
}

// ----- observability ------------------------------------------------------

TEST_F(ServiceTest, ExtendedStatsAndMetricsInfoTrackOutcomes) {
    const telemetry::ScopedTelemetryEnable scoped;
    telemetry::reset();
    CampaignService svc(service_config(1));
    const CampaignRequest request = small_gadget_request(400);

    const auto first = svc.submit(request);
    ASSERT_EQ(first.kind, CampaignService::SubmitResult::Kind::Accepted);
    ASSERT_TRUE(svc.wait(first.job_id).has_value());
    const auto second = svc.submit(request);  // cache hit
    ASSERT_TRUE(svc.wait(second.job_id).has_value());

    const CampaignService::Stats stats = svc.stats();
    EXPECT_EQ(stats.submitted, 2u);
    EXPECT_EQ(stats.executed, 1u);
    EXPECT_EQ(stats.completed, 2u);  // executed + cached both count
    EXPECT_EQ(stats.cache_hits, 1u);
    EXPECT_EQ(stats.cache_misses, 1u);
    EXPECT_GE(stats.queue_peak, 1u);

    const CampaignService::MetricsInfo info = svc.metrics_info();
    EXPECT_EQ(info.stats.completed, 2u);
    EXPECT_EQ(info.cache_entries, 1u);
    EXPECT_EQ(info.cache_hit_rate, 0.5);
    EXPECT_EQ(info.spool_bytes, 0u);  // no spool configured

    // metrics_info refreshed the gauges, and the executed job fed the
    // service latency histograms.
    const telemetry::Snapshot snap = telemetry::snapshot();
    EXPECT_EQ(snap.gauge(telemetry::Gauge::kServiceCacheEntries), 1u);
    EXPECT_EQ(snap.gauge(telemetry::Gauge::kServiceRunningJobs), 0u);
    EXPECT_EQ(
        snap.histogram(telemetry::Histogram::kQueueWaitNanos).count, 1u);
    EXPECT_EQ(snap.histogram(telemetry::Histogram::kExecuteNanos).count, 1u);
    EXPECT_EQ(snap.histogram(telemetry::Histogram::kCacheLookupNanos).count,
              2u);
    const telemetry::HistogramSnapshot& jobs =
        snap.histogram(telemetry::Histogram::kJobTraces);
    EXPECT_EQ(jobs.count, 1u);  // cache hits do not re-observe
    EXPECT_EQ(jobs.sum, request.traces);
    svc.shutdown(false);
    telemetry::reset();
}

TEST_F(ServiceTest, TraceHistogramsAreExecutorCountInvariant) {
    // The deterministic histogram families observe trace counts -- pure
    // functions of the workload -- so the merged buckets must come out
    // bit-identical whether one executor runs the jobs back to back or
    // four run them concurrently.
    const auto run_fleet = [&](unsigned executors) {
        const telemetry::ScopedTelemetryEnable scoped;
        telemetry::reset();
        CampaignService svc(service_config(executors));
        std::vector<std::uint64_t> jobs;
        for (std::uint64_t seed = 500; seed < 503; ++seed) {
            const auto submitted =
                svc.submit(small_gadget_request(seed, 128 + 64 * seed % 256));
            EXPECT_EQ(submitted.kind,
                      CampaignService::SubmitResult::Kind::Accepted);
            jobs.push_back(submitted.job_id);
        }
        for (const std::uint64_t job : jobs)
            EXPECT_TRUE(svc.wait(job).has_value());
        const telemetry::Snapshot snap = telemetry::snapshot();
        svc.shutdown(false);
        telemetry::reset();
        return snap;
    };
    const telemetry::Snapshot one = run_fleet(1);
    const telemetry::Snapshot four = run_fleet(4);
    for (std::size_t i = 0; i < telemetry::kHistogramCount; ++i) {
        const auto histogram = static_cast<telemetry::Histogram>(i);
        if (!telemetry::histogram_deterministic(histogram)) continue;
        EXPECT_EQ(one.histogram(histogram), four.histogram(histogram))
            << telemetry::histogram_name(histogram);
    }
    // Sanity: the invariant families actually saw the three jobs.
    EXPECT_EQ(one.histogram(telemetry::Histogram::kJobTraces).count, 3u);
    EXPECT_GT(one.histogram(telemetry::Histogram::kBlockTraces).count, 0u);
}

TEST_F(ServiceTest, TerminalJobsCarrySpanRollups) {
    // Tracing off: terminal statuses still get the two-entry fallback
    // rollup (execute + queue_wait) measured from the job timestamps.
    trace::set_enabled(false);
    CampaignService svc(service_config(1));
    const auto submitted = svc.submit(small_gadget_request(600));
    const std::optional<JobStatus> done = svc.wait(submitted.job_id);
    svc.shutdown(false);
    ASSERT_TRUE(done.has_value());
    ASSERT_EQ(done->state, JobState::Completed);
    ASSERT_EQ(done->spans.size(), 2u);  // name-sorted
    EXPECT_EQ(done->spans[0].name, "execute");
    EXPECT_EQ(done->spans[0].count, 1u);
    EXPECT_GT(done->spans[0].total_ns, 0u);
    EXPECT_EQ(done->spans[1].name, "queue_wait");
    EXPECT_EQ(done->spans[1].count, 1u);
}

TEST_F(ServiceTest, TracedJobExportsAChromeTraceTree) {
    const trace::ScopedTraceEnable scoped;
    trace::reset();
    const std::string trace_dir = make_temp_dir("svc_trace");
    ServiceConfig config = service_config(1);
    config.trace_dir = trace_dir;
    CampaignService svc(config);
    const auto submitted = svc.submit(small_gadget_request(700));
    const std::optional<JobStatus> done = svc.wait(submitted.job_id);
    svc.shutdown(false);
    ASSERT_TRUE(done.has_value());
    ASSERT_EQ(done->state, JobState::Completed);

    // The in-status rollup now covers the full tree, not the fallback.
    const auto count_of = [&](const std::string& name) -> std::uint64_t {
        for (const trace::SpanSummary& span : done->spans)
            if (span.name == name) return span.count;
        return 0;
    };
    EXPECT_EQ(count_of("job"), 1u);
    EXPECT_EQ(count_of("execute"), 1u);
    EXPECT_EQ(count_of("queue_wait"), 1u);
    EXPECT_EQ(count_of("block"), 16u);  // 256 traces / block_size 16

    // And the exported file is a loadable Chrome trace whose parent links
    // form the queue_wait -> execute -> block chain under one root.
    const std::string path = trace_dir + "/job-" +
                             std::to_string(submitted.job_id) +
                             ".trace.json";
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const eval::JsonValue doc = eval::parse_json(buffer.str());
    const eval::JsonValue* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    std::string root_id;
    std::string execute_id;
    for (const eval::JsonValue& event : events->array) {
        if (event.find("name")->string == "job")
            root_id = event.find("args")->find("id")->string;
        else if (event.find("name")->string == "execute")
            execute_id = event.find("args")->find("id")->string;
    }
    ASSERT_FALSE(root_id.empty());
    ASSERT_FALSE(execute_id.empty());
    for (const eval::JsonValue& event : events->array) {
        const std::string& name = event.find("name")->string;
        const std::string& parent =
            event.find("args")->find("parent")->string;
        if (name == "queue_wait" || name == "execute" ||
            name == "cache_lookup") {
            EXPECT_EQ(parent, root_id) << name;
        } else if (name == "block") {
            EXPECT_EQ(parent, execute_id);
        }
    }
    std::remove(path.c_str());
    trace::reset();
}

}  // namespace
}  // namespace glitchmask::service
