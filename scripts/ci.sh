#!/usr/bin/env bash
# Reference CI recipe: configure + build + test one or more presets.
# With no arguments the default sweep runs the Release preset, the
# AddressSanitizer preset (heap/stack bugs in the checkpoint and snapshot
# I/O paths would otherwise only surface as flaky corruption), then the
# UBSan preset (the intrinsics-heavy moment kernels and bit-manipulating
# recorders are where signed overflow and misaligned loads would hide);
# pass explicit preset names to run a subset, e.g. `scripts/ci.sh release`
# or `scripts/ci.sh asan tsan ubsan`.  Exits nonzero on any build or test
# failure.
#
# The release and asan legs smoke per-net leakage attribution end to end
# (examples/inspect_gadget trichina --attribute) and rerun the suite with
# GLITCHMASK_BACKEND=compiled, so every campaign-level test also covers
# the compiled replay engine (memory bugs in its wide-lane state would
# otherwise only surface in benches).  Both legs also run the daemon
# chaos smoke (scripts/chaos_smoke.sh): glitchmaskd under seeded
# fault-injection schedules -- EINTR storms, checkpoint ENOSPC, SIGTERM
# mid-campaign -- must complete bit-identically, degrade gracefully, and
# resume from its spool.  Both legs also smoke the results ledger
# (glitchmask_ledger): the attribution smoke's run report is ingested
# twice and `diff` must prove every leakage field bit-identical (exit 0)
# -- under asan this also leak-checks the whole obs/ stack.  The release
# leg additionally gates observability and performance:
#   * one extra ctest pass under GLITCHMASK_LOG=debug (log call sites in
#     the hot paths must never change a result or crash);
#   * one extra ctest pass under GLITCHMASK_SIMD=off, pinning every
#     runtime-dispatched kernel to its portable scalar fallback (the
#     bit-identity tests then prove scalar == vector end to end);
#   * bench/campaign_throughput's overhead/speedup figures are bounds-
#     checked through `glitchmask_ledger gate` (telemetry <= 3%,
#     tracing-off <= 1%, tracing-on <= 5%, attribution-off <= 1%,
#     attribution-on <= 30%, compiled_speedup_1worker >= 2x,
#     stats_speedup >= 1.5x -- same bars the awk gates used to enforce);
#   * the ledger regression radar is exercised end to end: the bench
#     artifact is ingested twice (diff must exit 0, leakage
#     bit-identical), then a deliberately perturbed copy is ingested and
#     `diff` must exit with the regression code (3).
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ "${#presets[@]}" -eq 0 ]; then
  presets=(release asan ubsan)
fi
for preset in "${presets[@]}"; do
  case "$preset" in
    release|asan|tsan|ubsan) ;;
    *) echo "usage: scripts/ci.sh [release|asan|tsan|ubsan ...]" >&2; exit 2 ;;
  esac
done

jobs="$(nproc 2>/dev/null || echo 2)"

for preset in "${presets[@]}"; do
  echo "==> preset: $preset"
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$jobs"
  ctest --preset "$preset" -j "$jobs"

  if [ "$preset" = "release" ] || [ "$preset" = "asan" ]; then
    builddir="build"
    [ "$preset" = "asan" ] && builddir="build-asan"
    echo "==> $preset extras: attribution smoke (inspect_gadget trichina)"
    report_dir="$(mktemp -d)"
    (cd "$builddir/examples" &&
      GLITCHMASK_REPORT_DIR="$report_dir" \
        ./inspect_gadget trichina --attribute --top-k 5 > /dev/null)

    echo "==> $preset extras: results-ledger smoke (run-report ingest + diff)"
    # Same report ingested twice: the diff must find two same-fingerprint
    # entries and prove every leakage field bit-identical (exit 0).
    # Under asan this drives the whole obs/ stack through the sanitizer.
    ledger="$report_dir/ci-ledger.ndjson"
    "$builddir"/src/glitchmask_ledger ingest "$ledger" \
      "$report_dir"/*.report.json > /dev/null
    "$builddir"/src/glitchmask_ledger ingest "$ledger" \
      "$report_dir"/*.report.json > /dev/null
    ledger_diff="$("$builddir"/src/glitchmask_ledger diff "$ledger")"
    if ! echo "$ledger_diff" | grep -q "leakage bit-identical"; then
      echo "FAIL: ledger diff did not prove leakage bit-identity:" >&2
      echo "$ledger_diff" >&2
      exit 1
    fi
    "$builddir"/src/glitchmask_ledger list "$ledger" > /dev/null
    rm -rf "$report_dir"

    echo "==> $preset extras: suite under GLITCHMASK_BACKEND=compiled"
    GLITCHMASK_BACKEND=compiled ctest --preset "$preset" -j "$jobs"

    echo "==> $preset extras: daemon chaos smoke (seeded fault sweep)"
    scripts/chaos_smoke.sh "$builddir"
  fi

  if [ "$preset" = "release" ]; then
    echo "==> release extras: suite under GLITCHMASK_LOG=debug"
    GLITCHMASK_LOG=debug ctest --preset "$preset" -j "$jobs"

    echo "==> release extras: suite under GLITCHMASK_SIMD=off (scalar kernels)"
    GLITCHMASK_SIMD=off ctest --preset "$preset" -j "$jobs"

    echo "==> release extras: bench overhead + speedup gates"
    # 256 traces: large enough that the per-block amortizations (spill
    # staging, checkpoint cadence) are representative and the off-vs-off
    # noise floor sits well under the 1% bar.
    (cd build/bench && GLITCHMASK_TRACES=256 ./campaign_throughput > /dev/null)
    build/src/glitchmask_ledger gate build/bench/BENCH_batch_sim.json \
      --max telemetry_overhead=0.03 \
      --max trace_off_overhead=0.01 \
      --max trace_overhead=0.05 \
      --max attribution_off_overhead=0.01 \
      --max attribution_overhead=0.30 \
      --min compiled_speedup_1worker=2.0 \
      --min stats_speedup=1.5

    echo "==> release extras: ledger regression radar (bench ingest + diff)"
    radar_dir="$(mktemp -d)"
    radar_ledger="$radar_dir/bench-ledger.ndjson"
    # Twice the same artifact: every leakage field must prove
    # bit-identical and diff must exit 0.
    build/src/glitchmask_ledger ingest "$radar_ledger" \
      build/bench/BENCH_batch_sim.json > /dev/null
    build/src/glitchmask_ledger ingest "$radar_ledger" \
      build/bench/BENCH_batch_sim.json > /dev/null
    radar_out="$(build/src/glitchmask_ledger diff "$radar_ledger")"
    if ! echo "$radar_out" | grep -q "leakage bit-identical"; then
      echo "FAIL: bench ledger diff did not prove bit-identity:" >&2
      echo "$radar_out" >&2
      exit 1
    fi
    # A perturbed copy (leakage headline changed, timestamp bumped so it
    # sorts newest) must trip the radar: diff exits with the regression
    # code, nothing else.
    sed -e 's/"max_abs_t1": [-0-9.eE+]*/"max_abs_t1": 99.5/' \
        -e 's/"utc": "[^"]*"/"utc": "2999-12-31T23:59:59Z"/' \
      build/bench/BENCH_batch_sim.json > "$radar_dir/perturbed.json"
    build/src/glitchmask_ledger ingest "$radar_ledger" \
      "$radar_dir/perturbed.json" > /dev/null
    set +e
    build/src/glitchmask_ledger diff "$radar_ledger" > /dev/null
    radar_rc=$?
    set -e
    if [ "$radar_rc" -ne 3 ]; then
      echo "FAIL: perturbed ledger diff exited $radar_rc, wanted 3" >&2
      exit 1
    fi
    echo "ledger radar: bit-identity proven, perturbation tripped (exit 3)"
    rm -rf "$radar_dir"
  fi
done
