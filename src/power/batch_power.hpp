// Lane-word power recording for the bitsliced batch simulator.
//
// The scalar PowerRecorder deposits one energy weight per committed
// toggle; the batch engine commits up to 64 traces' toggles in one event,
// delivered as a lane mask.  BatchPowerRecorder keeps a bin-major matrix
// of (bins x 64) samples and deposits the identical per-toggle doubles
// into each toggled lane's column, in the identical per-lane event order,
// so every lane's extracted trace is bit-for-bit the scalar trace of that
// lane's stimulus (the equivalence tests assert ==, not near).
//
// Per-lane Hamming activity is counted with popcount64(toggled) for the
// batch total plus a per-lane counter array, so toggle statistics stay
// exact even when a campaign's final block uses fewer than 64 lanes.
//
// Energy coupling (PowerConfig::coupling_epsilon) works in batch mode:
// the Miller term only reads the *committed* lane word of the partner
// net, available from the attached engine.  Timing coupling never reaches
// this class -- the batch engine refuses to construct under it.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "power/deposit_kernels.hpp"
#include "power/power_model.hpp"
#include "sim/batch_simulator.hpp"

namespace glitchmask::power {

class BatchPowerRecorder final : public sim::BatchToggleSink {
public:
    BatchPowerRecorder(const Netlist& nl, PowerConfig config);

    /// Neighbour lane words for the coupling term; required only when
    /// coupling_epsilon != 0.  Any BatchWordView works: the batch engine
    /// itself, or one chunk of the compiled wide-lane engine.
    void attach(const sim::BatchWordView* engine) noexcept {
        engine_ = engine;
    }

    /// Starts a fresh batch of traces of `bins` samples each (all zero).
    /// Reuses the sample matrix's capacity across batches.
    void begin_trace(std::size_t bins);

    void on_toggle(NetId net, sim::TimePs time, std::uint64_t values,
                   std::uint64_t toggled) override;

    [[nodiscard]] std::size_t bins() const noexcept { return bins_; }

    [[nodiscard]] double sample(std::size_t bin, unsigned lane) const noexcept {
        return trace_[bin * sim::kBatchLanes + lane];
    }

    /// Extracts lane `lane`'s noise-free trace into `out` (resized).
    void lane_trace_into(unsigned lane, std::vector<double>& out) const;

    /// Extracts lane `lane`'s trace with i.i.d. Gaussian noise drawn from
    /// `rng` in bin order -- the same draw sequence as the scalar
    /// noisy_trace so a lane's noisy samples match the scalar path
    /// bit-for-bit under the same per-trace rng.
    void noisy_lane_trace_into(unsigned lane, Xoshiro256& rng, double sigma,
                               std::vector<double>& out) const;

    /// Toggles committed in lane `lane` since begin_trace() (includes
    /// out-of-window toggles past the last bin, like the scalar counter).
    [[nodiscard]] std::uint64_t lane_toggles(unsigned lane) const noexcept {
        return lane_toggles_[lane];
    }

    /// Sum over all lanes since begin_trace().
    [[nodiscard]] std::uint64_t trace_toggles() const noexcept {
        return trace_toggles_;
    }

    /// Sum over all lanes over the recorder's lifetime.
    [[nodiscard]] std::uint64_t total_toggles() const noexcept {
        return total_toggles_;
    }

    [[nodiscard]] const PowerConfig& config() const noexcept { return config_; }

private:
    PowerConfig config_;
    kernels::DepositKernels kernels_;
    const sim::BatchWordView* engine_ = nullptr;
    std::vector<double> weight_;
    std::vector<NetId> partner_;
    std::vector<double> trace_;  // bin-major: [bin * 64 + lane]
    std::size_t bins_ = 0;
    // Current-bin cursor: engine commit times never decrease within a
    // batch, so the bin index advances monotonically -- no division in
    // on_toggle.  bin_end_ == (cur_bin_ + 1) * bin_ps.
    std::size_t cur_bin_ = 0;
    sim::TimePs bin_end_ = 0;
    std::array<std::uint64_t, sim::kBatchLanes> lane_toggles_{};
    std::uint64_t trace_toggles_ = 0;
    std::uint64_t total_toggles_ = 0;
};

}  // namespace glitchmask::power
