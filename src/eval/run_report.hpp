// Machine-readable run reports + the per-run telemetry session drivers
// wrap around a campaign.
//
// Every driver (DES TVLA, sequence experiments, mean power) can emit a
// versioned JSON report describing what ran and what it cost: campaign
// identity (the same fingerprint the checkpoint format uses), seed,
// wall/CPU time, the telemetry counter dump, checkpoint/resume history
// and the driver's headline metrics (peak |t| per order).  Reports are
// written with atomic_write_file so a crash never leaves a torn file,
// and they are pure observability -- the runtime never reads one back.
//
// Path resolution mirrors checkpoints: an explicit run.report_path wins,
// otherwise $GLITCHMASK_REPORT_DIR/<campaign_id>.report.json when the
// env var is set, otherwise no report.  Note an explicit path is
// overwritten on every run (same contract as checkpoint_path).
//
// The JSON subset used is deliberately tiny; parse_json() reads it back
// keeping unsigned integer literals exact at 64 bits (fingerprint words
// do not survive a double round-trip), which the schema round-trip test
// relies on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "eval/checkpoint.hpp"
#include "support/telemetry.hpp"
#include "support/trace.hpp"

namespace glitchmask::leakage {
struct AttributionResult;
}

namespace glitchmask::eval {

inline constexpr const char* kRunReportSchema = "glitchmask.run_report";
/// v2 added the optional "attribution" section (per-net culprit summary);
/// v3 adds the optional "histograms" (sparse latency-histogram dump) and
/// "spans" (per-name trace rollup) sections; v4 adds run attribution --
/// "revision", "hostname", "utc" (support/runenv.hpp) -- so the cross-run
/// ledger (obs/ledger.hpp) can key history by where and when a report was
/// produced.  The reader accepts v1-v3 files -- absent sections/fields
/// read back empty/disabled.
inline constexpr std::uint32_t kRunReportVersion = 4;

/// One culprit row of the report's attribution section (a flat copy of
/// leakage::NetAttribution, kept here so the report schema does not pull
/// in the simulator headers).
struct AttributionNetReport {
    std::uint64_t net = 0;
    std::string name;
    std::string kind;
    std::string module;
    double max_abs_t = 0.0;
    std::uint64_t argmax_window = 0;
    double snr = 0.0;
    std::uint64_t toggles = 0;
    std::uint64_t glitches = 0;
    double glitch_density = 0.0;

    friend bool operator==(const AttributionNetReport&,
                           const AttributionNetReport&) = default;
};

/// v2 attribution section: top-k culprits of an attributed campaign.
struct AttributionReport {
    bool enabled = false;
    std::uint64_t top_k = 0;
    std::string scope;
    std::uint64_t traces_fixed = 0;
    std::uint64_t traces_random = 0;
    std::vector<AttributionNetReport> nets;  // ranked, at most top_k

    friend bool operator==(const AttributionReport&,
                           const AttributionReport&) = default;
};

/// Everything a report records.  `counters` is the per-run registry
/// delta (all zero when telemetry collection was off for the run).
struct RunReport {
    std::string campaign;                 // driver id ("des_tvla", ...)
    CampaignFingerprint fingerprint;
    unsigned workers = 0;
    unsigned lanes = 0;
    /// v4 run attribution (support/runenv.hpp); "" in v1-v3 files and
    /// when the producer could not resolve a value.
    std::string revision;                 // git commit of the producer
    std::string hostname;
    std::string utc;                      // "YYYY-MM-DDTHH:MM:SSZ"
    double wall_seconds = 0.0;
    double cpu_seconds = 0.0;             // user+sys, all threads
    bool telemetry_enabled = false;
    telemetry::Snapshot counters;
    CampaignProgress progress;
    /// Completed-block marks at each checkpoint write, in order.  A
    /// resumed run records only this process's writes.
    std::vector<std::uint64_t> checkpoint_blocks;
    /// Driver headline numbers, e.g. {"max_abs_t_order1", 4.2}.
    std::vector<std::pair<std::string, double>> metrics;
    /// v2: per-net leakage attribution summary; the JSON section is
    /// emitted only when enabled.
    AttributionReport attribution;
    /// v3: per-name rollup of the run's trace spans (block, sim, noise,
    /// moments, checkpoint, ...); empty when tracing was off.  The JSON
    /// section is emitted only when non-empty.
    std::vector<trace::SpanSummary> spans;
};

/// Report path for one driver run: explicit run.report_path, else
/// $GLITCHMASK_REPORT_DIR/<id>.report.json, else "" (no report).
[[nodiscard]] std::string resolve_report_path(const CampaignRunOptions& run,
                                              const std::string& default_id);

/// Chrome-trace export path for one driver run:
/// $GLITCHMASK_TRACE_DIR/<id>.trace.json when the env var is set, else ""
/// (no per-run trace file).  The daemon deliberately does NOT set the env
/// var -- it exports per-*job* traces itself (ServiceConfig::trace_dir),
/// and a driver-side drain here would steal the service's span buffer.
[[nodiscard]] std::string resolve_trace_path(const CampaignRunOptions& run,
                                             const std::string& default_id);

/// Serializes the report as pretty-printed JSON (trailing newline).
[[nodiscard]] std::string render_run_report(const RunReport& report);

/// render + atomic_write_file; throws CampaignError{IoFailure} on I/O
/// errors.
void write_run_report(const std::string& path, const RunReport& report);

// ----- minimal JSON reader ----------------------------------------------

/// Parsed JSON value.  Non-negative integer literals stay exact u64s
/// (kind Unsigned); anything with a sign, fraction or exponent becomes a
/// double (kind Number).
struct JsonValue {
    enum class Kind { kNull, kBool, kUnsigned, kNumber, kString, kArray, kObject };

    Kind kind = Kind::kNull;
    bool boolean = false;
    std::uint64_t unsigned_value = 0;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    /// Object member lookup; nullptr when absent or not an object.
    [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;
    /// Numeric view: exact for Unsigned, lossy for large doubles.
    [[nodiscard]] double as_number() const noexcept {
        return kind == Kind::kUnsigned ? static_cast<double>(unsigned_value)
                                       : number;
    }
};

/// Parses one JSON document (object/array/scalar); throws
/// std::runtime_error with a byte offset on malformed input.
[[nodiscard]] JsonValue parse_json(std::string_view text);

/// Decodes a parsed report document (any accepted schema version); throws
/// std::runtime_error on schema violations.  Exposed so the ledger can
/// ingest report *text* it obtained elsewhere (a spool, a socket) without
/// a temp file; read_run_report delegates here.
[[nodiscard]] RunReport decode_run_report(const JsonValue& root);

/// Reads back a report written by write_run_report; nullopt when the
/// file does not exist.  Throws on unreadable files, malformed JSON or a
/// schema/version mismatch.
[[nodiscard]] std::optional<RunReport> read_run_report(const std::string& path);

// ----- driver session ----------------------------------------------------

/// Brackets one driver run: resolves the report path, turns telemetry
/// collection on for the run's duration when a report was requested,
/// snapshots the counter registry and both clocks, owns the progress
/// meter, and records checkpoint history.  Usage:
///
///   RunTelemetrySession session(id, config.run, fingerprint,
///                               plan.traces, workers, lanes);
///   CheckpointPolicy policy = make_checkpoint_policy(config.run, id);
///   session.attach(policy);            // wraps policy.on_checkpoint
///   ... run_sharded_blocks_checkpointed(..., &progress, session.meter());
///   session.add_metric("max_abs_t_order1", t1);
///   session.finish(progress);          // final progress emit + report
class RunTelemetrySession {
public:
    RunTelemetrySession(std::string campaign_id, const CampaignRunOptions& run,
                        const CampaignFingerprint& fingerprint,
                        std::size_t total_traces, unsigned workers,
                        unsigned lanes);
    ~RunTelemetrySession();

    RunTelemetrySession(const RunTelemetrySession&) = delete;
    RunTelemetrySession& operator=(const RunTelemetrySession&) = delete;

    /// Chains a history-recording hook in front of policy.on_checkpoint.
    void attach(CheckpointPolicy& policy);

    /// Meter pointer for the sharded runners; nullptr when neither a
    /// callback nor a heartbeat is configured (meter overhead skipped).
    [[nodiscard]] telemetry::ProgressMeter* meter() noexcept;

    void add_metric(std::string name, double value);

    /// Folds an attribution result's top-k ranking into the report's v2
    /// attribution section (no-op when the result is disabled).
    void set_attribution(const leakage::AttributionResult& result,
                         std::size_t top_k, std::string scope);

    /// True when finish() will write a report file.
    [[nodiscard]] bool writes_report() const noexcept {
        return !report_path_.empty();
    }
    [[nodiscard]] const std::string& report_path() const noexcept {
        return report_path_;
    }

    /// Emits the final progress update, exports the trace (when
    /// GLITCHMASK_TRACE_DIR resolved a path: drains the span buffer,
    /// writes the Chrome-trace file, folds the rollup into the report's
    /// "spans" section) and writes the report (when one was requested).
    /// Idempotent; safe to skip on exception paths (the destructor
    /// restores telemetry/trace state but writes nothing).
    void finish(const CampaignProgress& progress);

private:
    std::string campaign_;
    std::string report_path_;
    std::string trace_path_;
    CampaignFingerprint fingerprint_;
    unsigned workers_ = 0;
    unsigned lanes_ = 0;
    bool restore_enabled_ = false;   // telemetry state to restore
    bool restore_trace_ = false;     // trace state to restore
    bool finished_ = false;
    telemetry::Snapshot start_;
    double cpu_start_ = 0.0;
    std::int64_t wall_start_ns_ = 0;
    telemetry::ProgressMeter meter_;
    std::vector<std::uint64_t> checkpoint_blocks_;
    std::vector<std::pair<std::string, double>> metrics_;
    AttributionReport attribution_;
};

}  // namespace glitchmask::eval
