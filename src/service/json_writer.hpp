// Minimal JSON writer for the service protocol and state files.
//
// The daemon speaks newline-delimited JSON; eval/run_report.hpp already
// owns the matching reader (parse_json).  This writer covers exactly the
// subset the protocol emits -- objects, arrays, strings, exact u64s,
// doubles, booleans -- with no allocation beyond the output string.
// Unsigned integers are written as bare digit runs so the reader's exact
// u64 path (JsonValue::kUnsigned) round-trips seeds and fingerprint words
// losslessly; doubles use %.17g for the same reason.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace glitchmask::service {

class JsonWriter {
public:
    void begin_object() { open('{'); }
    void end_object() { close('}'); }
    void begin_array() { open('['); }
    void end_array() { close(']'); }

    void key(std::string_view name) {
        comma();
        quote(name);
        out_ += ':';
        pending_value_ = true;
    }

    void value(std::string_view text) {
        comma();
        quote(text);
    }
    void value(const char* text) { value(std::string_view(text)); }
    void value(bool flag) {
        comma();
        out_ += flag ? "true" : "false";
    }
    void value(std::uint64_t n) {
        comma();
        char buffer[32];
        std::snprintf(buffer, sizeof buffer, "%llu",
                      static_cast<unsigned long long>(n));
        out_ += buffer;
    }
    void value(int n) {
        comma();
        char buffer[32];
        std::snprintf(buffer, sizeof buffer, "%d", n);
        out_ += buffer;
    }
    void value(double x) {
        comma();
        char buffer[40];
        std::snprintf(buffer, sizeof buffer, "%.17g", x);
        out_ += buffer;
    }

    template <class T>
    void member(std::string_view name, const T& v) {
        key(name);
        value(v);
    }

    [[nodiscard]] const std::string& str() const noexcept { return out_; }
    [[nodiscard]] std::string take() { return std::move(out_); }

private:
    void open(char c) {
        comma();
        out_ += c;
        need_comma_.push_back(false);
    }
    void close(char c) {
        out_ += c;
        need_comma_.pop_back();
        if (!need_comma_.empty()) need_comma_.back() = true;
    }
    /// Inserts the separator before a sibling; a value right after key()
    /// never takes one.
    void comma() {
        if (pending_value_) {
            pending_value_ = false;
            return;
        }
        if (!need_comma_.empty()) {
            if (need_comma_.back()) out_ += ',';
            need_comma_.back() = true;
        }
    }
    void quote(std::string_view text) {
        out_ += '"';
        for (const char c : text) {
            switch (c) {
                case '"': out_ += "\\\""; break;
                case '\\': out_ += "\\\\"; break;
                case '\n': out_ += "\\n"; break;
                case '\r': out_ += "\\r"; break;
                case '\t': out_ += "\\t"; break;
                default:
                    if (static_cast<unsigned char>(c) < 0x20) {
                        char buffer[8];
                        std::snprintf(buffer, sizeof buffer, "\\u%04x",
                                      static_cast<unsigned>(c));
                        out_ += buffer;
                    } else {
                        out_ += c;
                    }
            }
        }
        out_ += '"';
    }

    std::string out_;
    std::vector<bool> need_comma_;
    bool pending_value_ = false;
};

}  // namespace glitchmask::service
