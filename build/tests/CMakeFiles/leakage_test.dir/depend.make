# Empty dependencies file for leakage_test.
# This may be replaced when dependencies are built.
