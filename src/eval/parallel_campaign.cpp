#include "eval/parallel_campaign.hpp"

#include <stdexcept>

#include "support/env.hpp"

namespace glitchmask::eval {

unsigned resolve_workers(unsigned configured) {
    return configured > 0 ? configured : ThreadPool::default_worker_count();
}

unsigned resolve_lanes(unsigned configured, bool timing_coupling) {
    unsigned lanes = configured;
    if (lanes == 0)
        lanes = static_cast<unsigned>(env_int("GLITCHMASK_LANES", 64));
    if (lanes != 1 && lanes != 64)
        throw std::invalid_argument(
            "resolve_lanes: lanes must be 1 (scalar) or 64 (bitsliced)");
    // Data-dependent delays cannot share one event schedule across lanes.
    if (timing_coupling) return 1;
    return lanes;
}

}  // namespace glitchmask::eval
