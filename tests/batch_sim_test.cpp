// Exact-equivalence harness for the bitsliced batch simulator: every
// masked-AND gadget in the zoo runs 64 random-stimulus traces through the
// scalar EventSimulator (one run per lane) and once through the 64-lane
// BatchEventSimulator, and the per-lane committed toggle streams, power
// traces, toggle counts and settle times must match bit-for-bit -- with
// inertial filtering on and off, and with energy coupling on where the
// gadget has coupled pairs.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/circuits.hpp"
#include "core/gadgets.hpp"
#include "eval/campaign.hpp"
#include "power/batch_power.hpp"
#include "power/power_model.hpp"
#include "sim/batch_simulator.hpp"
#include "sim/clocked.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace glitchmask {
namespace {

using core::SharedNet;
using netlist::NetId;
using sim::TimePs;

struct ToggleRec {
    NetId net;
    TimePs time;
    bool value;

    bool operator==(const ToggleRec&) const = default;
};

/// Records the scalar commit stream while forwarding to a power recorder.
class ScalarTee final : public sim::ToggleSink {
public:
    explicit ScalarTee(sim::ToggleSink* next = nullptr) : next_(next) {}
    void on_toggle(NetId net, TimePs time, bool value) override {
        records.push_back({net, time, value});
        if (next_ != nullptr) next_->on_toggle(net, time, value);
    }
    std::vector<ToggleRec> records;

private:
    sim::ToggleSink* next_;
};

/// Records the batch commit stream while forwarding to a batch recorder.
class BatchTee final : public sim::BatchToggleSink {
public:
    explicit BatchTee(sim::BatchToggleSink* next = nullptr) : next_(next) {}
    void on_toggle(NetId net, TimePs time, std::uint64_t values,
                   std::uint64_t toggled) override {
        records.push_back({net, time, values, toggled});
        if (next_ != nullptr) next_->on_toggle(net, time, values, toggled);
    }

    /// The batch stream restricted to one lane, in commit order.
    [[nodiscard]] std::vector<ToggleRec> lane(unsigned l) const {
        std::vector<ToggleRec> out;
        for (const auto& rec : records)
            if (((rec.toggled >> l) & 1u) != 0)
                out.push_back({rec.net, rec.time, ((rec.values >> l) & 1u) != 0});
        return out;
    }

    struct Rec {
        NetId net;
        TimePs time;
        std::uint64_t values;
        std::uint64_t toggled;
    };
    std::vector<Rec> records;

private:
    sim::BatchToggleSink* next_;
};

enum class Kind { Naive, Ff, Pd, Trichina, DomIndep, DomDep };

constexpr Kind kZoo[] = {Kind::Naive,    Kind::Ff,       Kind::Pd,
                         Kind::Trichina, Kind::DomIndep, Kind::DomDep};

const char* kind_name(Kind kind) {
    switch (kind) {
        case Kind::Naive: return "naive";
        case Kind::Ff: return "ff";
        case Kind::Pd: return "pd";
        case Kind::Trichina: return "trichina";
        case Kind::DomIndep: return "dom_indep";
        case Kind::DomDep: return "dom_dep";
    }
    return "?";
}

unsigned fresh_bits(Kind kind) {
    switch (kind) {
        case Kind::Trichina:
        case Kind::DomIndep: return 1;
        case Kind::DomDep: return 3;
        default: return 0;
    }
}

struct Harness {
    core::Netlist nl;
    SharedNet x_in{}, y_in{};
    std::vector<NetId> rand_in;
};

/// Same structure as the gadget-zoo bench: registered shared inputs and
/// registered fresh bits feeding `replicas` gadget instances.
Harness build(Kind kind, unsigned replicas) {
    Harness h;
    h.x_in = core::shared_input(h.nl, "x");
    h.y_in = core::shared_input(h.nl, "y");
    for (unsigned i = 0; i < fresh_bits(kind); ++i)
        h.rand_in.push_back(h.nl.input("r" + std::to_string(i)));
    const SharedNet x = core::reg_shares(h.nl, h.x_in, 1);
    const SharedNet y = core::reg_shares(h.nl, h.y_in, 1);
    std::vector<NetId> rand_regs;
    for (const NetId r : h.rand_in) rand_regs.push_back(h.nl.dff(r, 1));

    for (unsigned k = 0; k < replicas; ++k) {
        const std::string name = "g" + std::to_string(k);
        switch (kind) {
            case Kind::Naive:
                (void)core::secand2(h.nl, x, y, name);
                break;
            case Kind::Ff:
                (void)core::secand2_ff(h.nl, x, y, 2, 3, name);
                break;
            case Kind::Pd:
                (void)core::secand2_pd(h.nl, x, y, {10, true}, name);
                break;
            case Kind::Trichina:
                (void)core::trichina_and(h.nl, x, y, rand_regs[0], name);
                break;
            case Kind::DomIndep:
                (void)core::dom_and_indep(h.nl, x, y, rand_regs[0], 2, name);
                break;
            case Kind::DomDep:
                (void)core::dom_and_dep(h.nl, x, y, rand_regs[0], rand_regs[1],
                                        rand_regs[2], 2, name);
                break;
        }
    }
    h.nl.freeze();
    return h;
}

/// Combinational-only variant for raw-engine tests: the gadgets read the
/// primary inputs directly (no registration, no clock), so input pulses
/// reach the gadget logic.  Only register-free gadgets qualify.
Harness build_comb(Kind kind, unsigned replicas) {
    Harness h;
    h.x_in = core::shared_input(h.nl, "x");
    h.y_in = core::shared_input(h.nl, "y");
    for (unsigned i = 0; i < fresh_bits(kind); ++i)
        h.rand_in.push_back(h.nl.input("r" + std::to_string(i)));
    for (unsigned k = 0; k < replicas; ++k) {
        const std::string name = "g" + std::to_string(k);
        switch (kind) {
            case Kind::Naive:
                (void)core::secand2(h.nl, h.x_in, h.y_in, name);
                break;
            case Kind::Pd:
                (void)core::secand2_pd(h.nl, h.x_in, h.y_in, {10, true}, name);
                break;
            case Kind::Trichina:
                (void)core::trichina_and(h.nl, h.x_in, h.y_in, h.rand_in[0],
                                         name);
                break;
            default:
                throw std::logic_error("gadget has registers");
        }
    }
    h.nl.freeze();
    return h;
}

std::vector<NetId> all_inputs(const Harness& h) {
    std::vector<NetId> nets{h.x_in.s0, h.x_in.s1, h.y_in.s0, h.y_in.s1};
    nets.insert(nets.end(), h.rand_in.begin(), h.rand_in.end());
    return nets;
}

/// The zoo's drive schedule, against either clocked driver.
template <typename Sim>
void run_schedule(Sim& sim, bool has_stage2) {
    sim.step();
    sim.set_enable(1, true);
    sim.step();
    sim.set_enable(1, false);
    if (has_stage2) sim.set_enable(2, true);
    sim.step();
    if (has_stage2) sim.set_enable(2, false);
    sim.step();
    sim.step();
}

constexpr std::size_t kCycles = 5;
constexpr TimePs kPeriod = 90000;

void expect_clocked_equivalence(Kind kind, bool inertial, double epsilon) {
    SCOPED_TRACE(std::string(kind_name(kind)) +
                 (inertial ? " inertial" : " transport") +
                 (epsilon != 0.0 ? " coupled" : ""));
    Harness h = build(kind, 4);
    const sim::DelayModel dm(h.nl, sim::DelayConfig::spartan6());
    const sim::ClockConfig clock{kPeriod};
    const sim::SimOptions options{inertial, 1.0};
    const power::PowerConfig power_config{.coupling_epsilon = epsilon,
                                          .bin_ps = kPeriod};
    const bool has_stage2 = h.nl.max_ctrl_group() >= 2;
    const std::vector<NetId> inputs = all_inputs(h);

    // Per-lane random stimulus.
    Xoshiro256 rng(1234 + static_cast<std::uint64_t>(kind));
    std::vector<std::vector<bool>> stim(sim::kBatchLanes);
    for (auto& lane_bits : stim)
        for (std::size_t i = 0; i < inputs.size(); ++i)
            lane_bits.push_back(rng.bit());

    // 64 scalar reference runs.
    std::vector<std::vector<ToggleRec>> scalar_stream(sim::kBatchLanes);
    std::vector<std::vector<double>> scalar_trace(sim::kBatchLanes);
    std::vector<std::uint64_t> scalar_toggles(sim::kBatchLanes);
    for (unsigned lane = 0; lane < sim::kBatchLanes; ++lane) {
        sim::ClockedSim sim(h.nl, dm, clock, {}, options);
        power::PowerRecorder recorder(h.nl, power_config);
        recorder.attach(&sim.engine());
        ScalarTee tee(&recorder);
        sim.engine().set_sink(&tee);
        recorder.begin_trace(kCycles);
        for (std::size_t i = 0; i < inputs.size(); ++i)
            sim.set_input(inputs[i], stim[lane][i]);
        run_schedule(sim, has_stage2);
        scalar_stream[lane] = std::move(tee.records);
        scalar_trace[lane] = recorder.trace();
        scalar_toggles[lane] = recorder.trace_toggles();
    }

    // One batch run.
    sim::BatchClockedSim batch(h.nl, dm, clock, {}, options);
    power::BatchPowerRecorder recorder(h.nl, power_config);
    recorder.attach(&batch.engine());
    BatchTee tee(&recorder);
    batch.engine().set_sink(&tee);
    recorder.begin_trace(kCycles);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        std::uint64_t word = 0;
        for (unsigned lane = 0; lane < sim::kBatchLanes; ++lane)
            if (stim[lane][i]) word |= std::uint64_t{1} << lane;
        batch.set_input_word(inputs[i], word);
    }
    run_schedule(batch, has_stage2);

    std::vector<double> lane_trace;
    for (unsigned lane = 0; lane < sim::kBatchLanes; ++lane) {
        SCOPED_TRACE("lane " + std::to_string(lane));
        EXPECT_EQ(tee.lane(lane), scalar_stream[lane]);
        EXPECT_EQ(recorder.lane_toggles(lane), scalar_toggles[lane]);
        recorder.lane_trace_into(lane, lane_trace);
        ASSERT_EQ(lane_trace.size(), scalar_trace[lane].size());
        for (std::size_t bin = 0; bin < lane_trace.size(); ++bin)
            EXPECT_EQ(lane_trace[bin], scalar_trace[lane][bin]) << "bin " << bin;
    }
}

TEST(BatchSim, ZooEquivalenceInertial) {
    for (const Kind kind : kZoo) expect_clocked_equivalence(kind, true, 0.0);
}

TEST(BatchSim, ZooEquivalenceTransportDelay) {
    for (const Kind kind : kZoo) expect_clocked_equivalence(kind, false, 0.0);
}

TEST(BatchSim, EnergyCouplingEquivalence) {
    // secAND2-PD registers its delay chains as coupled pairs; the Miller
    // energy term must pick the per-lane neighbour level.
    expect_clocked_equivalence(Kind::Pd, true, 0.25);
}

TEST(BatchSim, CombinationalQuiescenceEquivalence) {
    // Raw engine drive/settle on the combinational gadgets, two input
    // waves per lane: per-lane streams, final values and the global
    // settle time (max over lanes) must match the scalar runs.
    for (const Kind kind : {Kind::Naive, Kind::Pd, Kind::Trichina}) {
        SCOPED_TRACE(kind_name(kind));
        Harness h = build_comb(kind, 4);
        const sim::DelayModel dm(h.nl, sim::DelayConfig::spartan6());
        const std::vector<NetId> inputs = all_inputs(h);
        constexpr TimePs kWave2 = 40000;

        Xoshiro256 rng(99 + static_cast<std::uint64_t>(kind));
        std::vector<std::vector<bool>> wave1(sim::kBatchLanes);
        std::vector<std::vector<bool>> wave2(sim::kBatchLanes);
        for (unsigned lane = 0; lane < sim::kBatchLanes; ++lane)
            for (std::size_t i = 0; i < inputs.size(); ++i) {
                wave1[lane].push_back(rng.bit());
                wave2[lane].push_back(rng.bit());
            }

        std::vector<std::vector<ToggleRec>> scalar_stream(sim::kBatchLanes);
        TimePs max_settle = 0;
        std::vector<std::vector<bool>> finals(sim::kBatchLanes);
        for (unsigned lane = 0; lane < sim::kBatchLanes; ++lane) {
            sim::EventSimulator engine(h.nl, dm);
            ScalarTee tee;
            engine.set_sink(&tee);
            for (std::size_t i = 0; i < inputs.size(); ++i)
                engine.drive(inputs[i], wave1[lane][i], 0);
            for (std::size_t i = 0; i < inputs.size(); ++i)
                engine.drive(inputs[i], wave2[lane][i], kWave2);
            const TimePs settle = engine.run_to_quiescence();
            if (settle > max_settle) max_settle = settle;
            scalar_stream[lane] = std::move(tee.records);
            for (NetId net = 0; net < h.nl.size(); ++net)
                finals[lane].push_back(engine.value(net));
        }

        sim::BatchEventSimulator batch(h.nl, dm);
        BatchTee tee;
        batch.set_sink(&tee);
        auto word_of = [&](const std::vector<std::vector<bool>>& wave,
                           std::size_t i) {
            std::uint64_t word = 0;
            for (unsigned lane = 0; lane < sim::kBatchLanes; ++lane)
                if (wave[lane][i]) word |= std::uint64_t{1} << lane;
            return word;
        };
        for (std::size_t i = 0; i < inputs.size(); ++i)
            batch.drive(inputs[i], word_of(wave1, i), sim::kAllLanes, 0);
        for (std::size_t i = 0; i < inputs.size(); ++i)
            batch.drive(inputs[i], word_of(wave2, i), sim::kAllLanes, kWave2);
        EXPECT_EQ(batch.run_to_quiescence(), max_settle);

        for (unsigned lane = 0; lane < sim::kBatchLanes; ++lane) {
            SCOPED_TRACE("lane " + std::to_string(lane));
            EXPECT_EQ(tee.lane(lane), scalar_stream[lane]);
            for (NetId net = 0; net < h.nl.size(); ++net)
                ASSERT_EQ(batch.value(net, lane), finals[lane][net])
                    << "net " << net;
        }
    }
}

TEST(BatchSim, PerLanePulseCancellationEquivalence) {
    // Per-lane input pulses of widths from well under to well over the
    // gate inertial windows: some lanes' pulses get swallowed while their
    // neighbours' propagate, so pending-commit cancellation masks genuinely
    // differ per lane.  Equivalence must hold, and transport-delay mode
    // (no filtering) must commit strictly more toggles -- guarding the
    // equivalence suite against vacuously never firing the inertial path.
    Harness h = build_comb(Kind::Naive, 4);
    const sim::DelayModel dm(h.nl, sim::DelayConfig::spartan6());
    const std::vector<NetId> inputs = all_inputs(h);

    // Lane l: all inputs rise at 0, fall again after 40 + 55*l ps.
    auto fall_time = [](unsigned lane) {
        return static_cast<TimePs>(40 + 55 * lane);
    };

    std::uint64_t toggles_by_mode[2] = {0, 0};
    for (const bool inertial : {true, false}) {
        std::vector<std::vector<ToggleRec>> scalar_stream(sim::kBatchLanes);
        for (unsigned lane = 0; lane < sim::kBatchLanes; ++lane) {
            sim::EventSimulator engine(h.nl, dm, {},
                                       sim::SimOptions{inertial, 1.0});
            ScalarTee tee;
            engine.set_sink(&tee);
            for (const NetId input : inputs) engine.drive(input, true, 0);
            for (const NetId input : inputs)
                engine.drive(input, false, fall_time(lane));
            engine.run_to_quiescence();
            scalar_stream[lane] = std::move(tee.records);
        }

        sim::BatchEventSimulator batch(h.nl, dm, {},
                                       sim::SimOptions{inertial, 1.0});
        BatchTee tee;
        batch.set_sink(&tee);
        for (const NetId input : inputs)
            batch.drive(input, sim::kAllLanes, sim::kAllLanes, 0);
        for (unsigned lane = 0; lane < sim::kBatchLanes; ++lane)
            for (const NetId input : inputs)
                batch.drive(input, 0, std::uint64_t{1} << lane,
                            fall_time(lane));
        batch.run_to_quiescence();

        std::size_t total = 0;
        for (unsigned lane = 0; lane < sim::kBatchLanes; ++lane) {
            SCOPED_TRACE((inertial ? "inertial lane " : "transport lane ") +
                         std::to_string(lane));
            EXPECT_EQ(tee.lane(lane), scalar_stream[lane]);
            total += scalar_stream[lane].size();
        }
        toggles_by_mode[inertial ? 0 : 1] = total;
    }
    EXPECT_GT(toggles_by_mode[1], toggles_by_mode[0]);
}

TEST(BatchSim, RejectsTimingCoupling) {
    Harness h = build(Kind::Pd, 1);
    const sim::DelayModel dm(h.nl, sim::DelayConfig::spartan6());
    sim::CouplingConfig coupling;
    coupling.timing_enabled = true;
    EXPECT_THROW(sim::BatchEventSimulator(h.nl, dm, coupling),
                 std::invalid_argument);
    EXPECT_THROW(sim::BatchClockedSim(h.nl, dm, {}, coupling),
                 std::invalid_argument);
}

TEST(BatchSim, BroadcastInputMatchesScalarFsm) {
    // set_input(bool) must behave as the same control bit in every lane.
    Harness h = build(Kind::Ff, 1);
    const sim::DelayModel dm(h.nl, sim::DelayConfig::spartan6());
    sim::BatchClockedSim batch(h.nl, dm, sim::ClockConfig{kPeriod});
    batch.set_input(h.x_in.s0, true);
    batch.step();
    batch.step();
    EXPECT_EQ(batch.word(h.x_in.s0), sim::kAllLanes);
    batch.set_input(h.x_in.s0, false);
    batch.step();
    batch.step();
    EXPECT_EQ(batch.word(h.x_in.s0), 0u);
}

TEST(BatchSim, SequenceCampaignBitIdentical) {
    // Golden-campaign criterion: the full TVLA statistics of a sequence
    // experiment must be bit-identical (exact double equality) between the
    // scalar and the 64-lane path, including a partial final lane group
    // (200 % 64 != 0) and a multi-worker pool.
    eval::SequenceExperimentConfig config;
    config.replicas = 4;
    config.traces = 200;
    config.noise_sigma = 1.0;
    config.seed = 77;
    config.workers = 2;
    config.block_size = 64;
    config.max_test_order = 2;
    const core::InputSequence sequence = core::all_input_sequences().front();

    config.lanes = 1;
    const eval::SequenceLeakResult scalar =
        eval::run_sequence_experiment(sequence, config);
    config.lanes = 64;
    const eval::SequenceLeakResult batch =
        eval::run_sequence_experiment(sequence, config);

    EXPECT_EQ(scalar.max_abs_t1, batch.max_abs_t1);
    EXPECT_EQ(scalar.max_abs_t2, batch.max_abs_t2);
    EXPECT_EQ(scalar.argmax_cycle, batch.argmax_cycle);
    EXPECT_EQ(scalar.leaks_first_order, batch.leaks_first_order);
    EXPECT_GT(scalar.max_abs_t1, 0.0);  // not vacuous
}

}  // namespace
}  // namespace glitchmask
