# Empty compiler generated dependencies file for refresh_or_leak.
# This may be replaced when dependencies are built.
