#include "support/retry.hpp"

#include <cerrno>

namespace glitchmask {

bool errno_transient(int error_number) noexcept {
    switch (error_number) {
        case EINTR:
        case EAGAIN:
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
        case EWOULDBLOCK:
#endif
        case EIO:
        case EBUSY:
            return true;
        default:
            return false;
    }
}

bool backoff_sleep(unsigned ms, const CancelToken* cancel) noexcept {
    using clock = std::chrono::steady_clock;
    const auto deadline = clock::now() + std::chrono::milliseconds(ms);
    for (;;) {
        if (cancel != nullptr && cancel->requested()) return false;
        const auto now = clock::now();
        if (now >= deadline) return true;
        const auto slice = std::min<std::chrono::steady_clock::duration>(
            deadline - now, std::chrono::milliseconds(2));
        std::this_thread::sleep_for(slice);
    }
}

}  // namespace glitchmask
