// DelayUnit tuning at gadget scale (the fast version of the paper's
// Sec. V / Fig. 15 methodology).
//
// A bank of secAND2-PD gadgets runs two back-to-back multiplications per
// trace (continuous operation, no reset -- the scenario secAND2-PD is
// designed for).  Sweeping the DelayUnit size shows how larger delays
// separate the arrival times: first-order leakage fades as the unit grows
// past the routing-jitter spread, and the utilization cost rises.
#include <cstdio>

#include "core/gadgets.hpp"
#include "core/sharing.hpp"
#include "leakage/tvla.hpp"
#include "netlist/area.hpp"
#include "netlist/lutmap.hpp"
#include "power/power_model.hpp"
#include "sim/clocked.hpp"
#include "support/table.hpp"

using namespace glitchmask;

namespace {

struct SweepPoint {
    double t1 = 0.0;
    double t2 = 0.0;
    std::size_t luts = 0;
};

SweepPoint run_size(unsigned unit_luts, std::size_t traces) {
    core::Netlist nl;
    const core::SharedNet x_in = core::shared_input(nl, "x");
    const core::SharedNet y_in = core::shared_input(nl, "y");
    const core::SharedNet x = core::reg_shares(nl, x_in);
    const core::SharedNet y = core::reg_shares(nl, y_in);
    for (unsigned k = 0; k < 24; ++k)
        (void)core::secand2_pd(nl, x, y,
                               core::PathDelayOptions{unit_luts, true},
                               "g" + std::to_string(k));
    nl.freeze();

    const sim::DelayModel dm(nl, sim::DelayConfig::spartan6());
    sim::ClockConfig clock;
    clock.period_ps = 60000;
    sim::ClockedSim sim(nl, dm, clock);
    power::PowerRecorder recorder(nl, power::PowerConfig{
                                          .bin_ps = clock.period_ps});
    sim.engine().set_sink(&recorder);

    constexpr std::size_t kCycles = 5;
    leakage::TvlaCampaign campaign(kCycles, 2);
    Xoshiro256 rng(31);
    Xoshiro256 noise(32);
    for (std::size_t t = 0; t < traces; ++t) {
        const bool fixed = rng.bit();
        sim.restart();
        recorder.begin_trace(kCycles);
        for (int op = 0; op < 2; ++op) {
            const bool classed = (op == 1) && fixed;
            const core::MaskedBit mx = core::mask_bit(classed || rng.bit(), rng);
            const core::MaskedBit my =
                core::mask_bit(classed ? true : rng.bit(), rng);
            sim.set_input(x_in.s0, mx.s0);
            sim.set_input(x_in.s1, mx.s1);
            sim.set_input(y_in.s0, my.s0);
            sim.set_input(y_in.s1, my.s1);
            sim.step(2);
        }
        campaign.add_trace(fixed, recorder.noisy_trace(noise, 0.5));
    }
    SweepPoint point;
    point.t1 = campaign.max_abs_t(1);
    point.t2 = campaign.max_abs_t(2);
    point.luts = netlist::estimate_luts(nl).luts;
    return point;
}

}  // namespace

int main() {
    std::printf("DelayUnit tuning: security vs cost for secAND2-PD\n");
    std::printf("(24 parallel gadgets, continuous operation, 12000 traces)\n\n");
    TablePrinter table({"DelayUnit [LUTs]", "max|t1|", "max|t2|",
                        "1st order", "total LUTs"});
    double first = 0.0;
    double last = 0.0;
    for (const unsigned unit : {1u, 2u, 4u, 7u, 10u}) {
        const SweepPoint p = run_size(unit, 12000);
        if (unit == 1) first = p.t1;
        last = p.t1;
        table.add_row({std::to_string(unit), TablePrinter::num(p.t1),
                       TablePrinter::num(p.t2),
                       p.t1 > 4.5 ? "LEAKS" : "no leak",
                       std::to_string(p.luts)});
    }
    table.print();
    std::printf(
        "\nThe trade-off of paper Sec. V: leakage falls as the DelayUnit\n"
        "grows past the routing jitter, while the LUT cost rises; 10 LUTs\n"
        "is the paper's sweet spot.\n");
    return (first > last) ? 0 : 1;
}
