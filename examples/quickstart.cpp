// Quickstart: mask two bits, build a secAND2-FF gadget, and run it on the
// glitchy timing simulator.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Walks through the library's core loop: netlist construction, delay
// annotation, clocked simulation with an enable-group FSM, and share
// recombination.
#include <cstdio>

#include "core/gadgets.hpp"
#include "core/sharing.hpp"
#include "sim/clocked.hpp"
#include "support/rng.hpp"

using namespace glitchmask;

int main() {
    std::printf("glitchmask quickstart: one masked AND in glitchy hardware\n\n");

    // 1. Build the circuit: two masked inputs -> input registers ->
    //    secAND2-FF (paper Fig. 2: the y1 share is delayed one cycle
    //    through an internal flip-flop so it always arrives last).
    core::Netlist nl;
    const core::SharedNet x_in = core::shared_input(nl, "x");
    const core::SharedNet y_in = core::shared_input(nl, "y");
    const core::SharedNet x = core::reg_shares(nl, x_in, /*enable=*/1);
    const core::SharedNet y = core::reg_shares(nl, y_in, /*enable=*/1);
    const core::SharedNet z =
        core::secand2_ff(nl, x, y, /*enable=*/2, /*reset=*/3);
    nl.freeze();
    std::printf("netlist: %zu cells, %zu flip-flops\n", nl.size(),
                nl.flops().size());

    // 2. Annotate with per-instance delays (the "placement") and create a
    //    clocked simulator.  Every gate and wire gets a static random
    //    delay, so reconvergent paths genuinely glitch.
    const sim::DelayModel dm(nl, sim::DelayConfig::spartan6());
    sim::ClockedSim sim(nl, dm);

    // 3. Run a few masked multiplications.
    Xoshiro256 rng(2026);
    int correct = 0;
    constexpr int kOps = 16;
    for (int i = 0; i < kOps; ++i) {
        const bool xv = rng.bit();
        const bool yv = rng.bit();
        const core::MaskedBit mx = core::mask_bit(xv, rng);
        const core::MaskedBit my = core::mask_bit(yv, rng);

        sim.restart();
        sim.set_input(x_in.s0, mx.s0);
        sim.set_input(x_in.s1, mx.s1);
        sim.set_input(y_in.s0, my.s0);
        sim.set_input(y_in.s1, my.s1);
        sim.step();              // shares land on the primary inputs
        sim.set_enable(1, true);
        sim.step();              // input registers sample (cycle 1)
        sim.set_enable(2, true);
        sim.step();              // internal y1 flop samples (cycle 2)

        const core::MaskedBit mz{sim.value(z.s0), sim.value(z.s1)};
        const bool ok = mz.value() == (xv && yv);
        correct += ok;
        if (i < 4)
            std::printf(
                "  x=%d (shares %d,%d)  y=%d (shares %d,%d)  ->  z=%d "
                "(shares %d,%d)  %s\n",
                xv, mx.s0, mx.s1, yv, my.s0, my.s1, mz.value(), mz.s0, mz.s1,
                ok ? "ok" : "WRONG");
    }
    std::printf("  ...\n%d / %d multiplications correct.\n\n", correct, kOps);

    std::printf(
        "The value never exists unmasked in the circuit: each wire carries\n"
        "one share, and the internal flip-flop guarantees the y1 share\n"
        "arrives last, so no glitch can combine both shares of y (paper\n"
        "Sec. II-C).  See examples/leakage_lab.cpp for the TVLA proof.\n");
    return correct == kOps ? 0 : 1;
}
