#include <gtest/gtest.h>

#include "core/circuits.hpp"
#include "eval/campaign.hpp"
#include "leakage/ttest.hpp"

namespace glitchmask::eval {
namespace {

using core::InputSequence;
using core::ShareId;

SequenceExperimentConfig small_config() {
    SequenceExperimentConfig config;
    config.replicas = 16;
    config.traces = 8000;
    config.noise_sigma = 0.5;
    config.seed = 42;
    config.placement_seed = 7;
    return config;
}

TEST(SequenceExperiment, XShareLastLeaksFirstOrder) {
    // Paper Table I: any sequence ending in x0 or x1 leaks.
    const InputSequence sequence{ShareId::Y0, ShareId::X1, ShareId::Y1,
                                 ShareId::X0};
    const SequenceLeakResult result =
        run_sequence_experiment(sequence, small_config());
    EXPECT_TRUE(result.expected_to_leak);
    EXPECT_GT(result.max_abs_t1, leakage::kTvlaThreshold)
        << "sequence ending in x0 must show first-order leakage";
    // The leak appears when the last share lands: cycle 4.
    EXPECT_EQ(result.argmax_cycle, 4u);
}

TEST(SequenceExperiment, YShareLastDoesNotLeakFirstOrder) {
    // Paper Table I: any sequence ending in y0 or y1 does not leak.
    const InputSequence sequence{ShareId::X0, ShareId::X1, ShareId::Y0,
                                 ShareId::Y1};
    const SequenceLeakResult result =
        run_sequence_experiment(sequence, small_config());
    EXPECT_FALSE(result.expected_to_leak);
    EXPECT_LT(result.max_abs_t1, leakage::kTvlaThreshold)
        << "sequence ending in y1 must stay below the TVLA threshold";
}

TEST(SequenceExperiment, SecondOrderLeakageIsPresentEitherWay) {
    // Both shares are processed in parallel: second-order leakage is
    // expected for 2-share designs (the paper sees it clearly too).
    const InputSequence sequence{ShareId::X0, ShareId::X1, ShareId::Y0,
                                 ShareId::Y1};
    SequenceExperimentConfig config = small_config();
    config.traces = 4000;
    const SequenceLeakResult result = run_sequence_experiment(sequence, config);
    EXPECT_GT(result.max_abs_t2, leakage::kTvlaThreshold);
}

}  // namespace
}  // namespace glitchmask::eval
