// Minimal client for the glitchmaskd campaign daemon.
//
// Sends one NDJSON request line over the daemon's Unix socket and prints
// every response line until the terminal one for that request arrives:
//
//   campaign_client /tmp/gm.sock '{"op":"submit","kind":"gadget_tvla",
//                                  "gadget":"trichina","traces":2000}'
//   campaign_client /tmp/gm.sock '{"op":"status","job":3}'
//   campaign_client /tmp/gm.sock '{"op":"stats"}'
//   campaign_client /tmp/gm.sock '{"op":"metrics"}'
//   campaign_client /tmp/gm.sock '{"op":"shutdown","drain":false}'
//
// One convenience subcommand replaces the raw JSON:
//
//   campaign_client /tmp/gm.sock history <80-hex-fingerprint>
//
// sends {"op":"history","fingerprint":...} (the daemon must run with
// --ledger) and renders the reply as a table -- one row per ledger
// entry: verdict (status), wall time, revision, utc, campaign.
//
// For a submit, the client stays connected and relays progress events
// until the result line; every other op gets exactly one reply.  With a
// trailing --follow, a submit additionally renders the result's span
// rollup (queue_wait, execute, block, sim, ...) as a one-line-per-span
// latency summary on stderr.  Exit status: 0 on a completed/answered
// request, 1 on rejection or overload, 2 on usage/connection errors.

#include <cstdio>
#include <cstring>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "eval/run_report.hpp"

namespace {

bool line_ends_conversation(const std::string& line, bool is_submit,
                            int& exit_code) {
    const auto has = [&](const char* token) {
        return line.find(token) != std::string::npos;
    };
    if (has("\"event\":\"rejected\"") || has("\"event\":\"overloaded\"")) {
        exit_code = 1;
        return true;
    }
    if (is_submit) {
        if (has("\"event\":\"result\"")) {
            exit_code = has("\"state\":\"completed\"") ? 0 : 1;
            return true;
        }
        return false;  // accepted / progress: keep streaming
    }
    exit_code = 0;
    return true;  // single-reply ops are done after any event line
}

/// --follow: one line per span name from the result event's "spans"
/// rollup, on stderr so piped-stdout consumers still see pure NDJSON.
void render_span_summary(const std::string& result_line) {
    try {
        const glitchmask::eval::JsonValue json =
            glitchmask::eval::parse_json(result_line);
        const glitchmask::eval::JsonValue* spans = json.find("spans");
        if (spans == nullptr || spans->array.empty()) {
            std::fprintf(stderr, "[follow] no span rollup in result\n");
            return;
        }
        for (const glitchmask::eval::JsonValue& entry : spans->array) {
            const glitchmask::eval::JsonValue* name = entry.find("name");
            const glitchmask::eval::JsonValue* count = entry.find("count");
            const glitchmask::eval::JsonValue* total = entry.find("total_ns");
            if (name == nullptr || count == nullptr || total == nullptr)
                continue;
            std::fprintf(stderr, "[follow] %-16s count=%-8llu total=%.3fms\n",
                         name->string.c_str(),
                         static_cast<unsigned long long>(
                             count->unsigned_value),
                         static_cast<double>(total->unsigned_value) * 1e-6);
        }
    } catch (const std::exception& error) {
        std::fprintf(stderr, "[follow] unparsable result line: %s\n",
                     error.what());
    }
}

/// `history` subcommand: turn the daemon's {"event":"history",...} reply
/// into a human table.  Returns 0 when the reply parsed (even with zero
/// entries -- an empty history is an answer), 1 otherwise.
int render_history_table(const std::string& reply_line) {
    try {
        const glitchmask::eval::JsonValue json =
            glitchmask::eval::parse_json(reply_line);
        const glitchmask::eval::JsonValue* entries = json.find("entries");
        if (entries == nullptr ||
            entries->kind != glitchmask::eval::JsonValue::Kind::kArray) {
            std::fprintf(stderr, "history reply has no 'entries' array\n");
            return 1;
        }
        const auto str = [](const glitchmask::eval::JsonValue& entry,
                            const char* key) -> std::string {
            const glitchmask::eval::JsonValue* v = entry.find(key);
            return v != nullptr ? v->string : std::string("-");
        };
        const auto num = [](const glitchmask::eval::JsonValue& entry,
                            const char* key) -> double {
            const glitchmask::eval::JsonValue* v = entry.find(key);
            if (v == nullptr) return 0.0;
            if (v->kind == glitchmask::eval::JsonValue::Kind::kUnsigned)
                return static_cast<double>(v->unsigned_value);
            return v->number;
        };
        std::printf("%-4s %-10s %10s %-12s %-20s %-14s %12s\n", "#",
                    "verdict", "wall_s", "revision", "utc", "campaign",
                    "max_abs_t1");
        std::size_t row = 0;
        for (const glitchmask::eval::JsonValue& entry : entries->array) {
            std::string revision = str(entry, "revision");
            if (revision.size() > 12) revision.resize(12);
            std::printf("%-4zu %-10s %10.3f %-12s %-20s %-14s %12.4f\n",
                        row++, str(entry, "status").c_str(),
                        num(entry, "wall_seconds"), revision.c_str(),
                        str(entry, "utc").c_str(),
                        str(entry, "campaign").c_str(),
                        num(entry, "max_abs_t1"));
        }
        if (row == 0) std::printf("(no ledger entries for fingerprint)\n");
        return 0;
    } catch (const std::exception& error) {
        std::fprintf(stderr, "unparsable history reply: %s\n", error.what());
        return 1;
    }
}

}  // namespace

int main(int argc, char** argv) {
    bool follow = false;
    bool history_mode = false;
    if (argc == 4 && std::strcmp(argv[3], "--follow") == 0) {
        follow = true;
    } else if (argc == 4 && std::strcmp(argv[2], "history") == 0) {
        history_mode = true;
    } else if (argc != 3) {
        std::fprintf(stderr,
                     "usage: %s SOCKET_PATH REQUEST_JSON [--follow]\n"
                     "       %s SOCKET_PATH history FINGERPRINT\n",
                     argv[0], argv[0]);
        return 2;
    }
    const std::string socket_path = argv[1];
    std::string request =
        history_mode ? std::string("{\"op\":\"history\",\"fingerprint\":\"") +
                           argv[3] + "\"}"
                     : std::string(argv[2]);
    if (request.empty() || request.back() != '\n') request += '\n';
    const bool is_submit =
        request.find("\"op\":\"submit\"") != std::string::npos;

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        std::perror("socket");
        return 2;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
        std::perror(("connect " + socket_path).c_str());
        ::close(fd);
        return 2;
    }

    std::size_t sent = 0;
    while (sent < request.size()) {
        const ssize_t n =
            ::write(fd, request.data() + sent, request.size() - sent);
        if (n < 0) {
            if (errno == EINTR) continue;
            std::perror("write");
            ::close(fd);
            return 2;
        }
        sent += static_cast<std::size_t>(n);
    }

    int exit_code = 1;
    std::string pending;
    std::string last_line;
    char buffer[4096];
    for (;;) {
        const ssize_t n = ::read(fd, buffer, sizeof buffer);
        if (n < 0) {
            if (errno == EINTR) continue;
            std::perror("read");
            break;
        }
        if (n == 0) break;  // daemon closed (e.g. shutdown)
        pending.append(buffer, static_cast<std::size_t>(n));
        std::size_t start = 0;
        bool done = false;
        for (;;) {
            const std::size_t newline = pending.find('\n', start);
            if (newline == std::string::npos) break;
            const std::string line = pending.substr(start, newline - start);
            start = newline + 1;
            if (!history_mode) {
                std::printf("%s\n", line.c_str());
                std::fflush(stdout);
            }
            if (line_ends_conversation(line, is_submit, exit_code)) {
                last_line = line;
                done = true;
                break;
            }
        }
        pending.erase(0, start);
        if (done) break;
    }
    ::close(fd);
    if (history_mode) {
        if (!last_line.empty() &&
            last_line.find("\"event\":\"history\"") != std::string::npos)
            return render_history_table(last_line);
        if (!last_line.empty())
            std::printf("%s\n", last_line.c_str());  // rejection line
        return 1;
    }
    if (follow && is_submit && !last_line.empty() &&
        last_line.find("\"event\":\"result\"") != std::string::npos)
        render_span_summary(last_line);
    return exit_code;
}
