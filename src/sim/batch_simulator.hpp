// Bitsliced 64-lane event simulation: one event-queue pass per 64 traces.
//
// All wire and gate delays in the DelayModel are static and data
// *independent* -- the very property the paper's gadgets are built on --
// so the set of potential event times is identical across traces of a
// campaign.  BatchEventSimulator exploits that: every net and pin holds a
// 64-bit lane word (bit l = the value in trace l), gates re-evaluate with
// word-parallel Boolean ops, and one event is scheduled whenever *any*
// lane changes.  The heap operations, pin bookkeeping and cell
// evaluations -- the cost of the scalar EventSimulator -- are thereby
// amortized over 64 traces.
//
// Equivalence contract: each lane's committed waveform is bit-identical
// to a scalar EventSimulator run of that lane's stimulus (asserted
// exhaustively in tests/batch_sim_test.cpp).  The mechanisms that could
// diverge per lane are all carried as lane masks:
//   * a schedule only covers the lanes whose evaluation actually changed
//     (lanes outside an event's mask provably evaluate to their last
//     scheduled value, so the "changed" word is the per-lane guard);
//   * the per-cell monotonic commit guard ("a later evaluation must not
//     commit before an earlier one") is per-lane: recent schedule times
//     are kept as (time, lane-mask) marks and same-timestamp evaluation
//     bursts split into per-`when` groups exactly as the scalar +1 bump
//     does per lane;
//   * inertial pulse filtering cancels pending commits per lane by
//     clearing lane bits; a commit event applies only to the lanes that
//     survived.
//
// What is NOT supported: timing coupling (CouplingConfig::timing_enabled)
// makes DelayBuf delays depend on a *neighbour's data*, so the shared
// schedule assumption breaks -- the constructor rejects it and campaigns
// fall back to the scalar path (eval/ owns that policy).  Energy coupling
// is fine: it only reads committed lane values (power/batch_power.hpp).
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/clocked.hpp"
#include "sim/delay_model.hpp"
#include "sim/simulator.hpp"

namespace glitchmask::sim {

/// Number of traces simulated per batch pass (one per bit of a lane word).
inline constexpr unsigned kBatchLanes = 64;

/// All-lanes mask.
inline constexpr std::uint64_t kAllLanes = ~std::uint64_t{0};

/// Observer for committed lane-word transitions.  `values` is the full
/// lane word after the commit; `toggled` marks the lanes that changed.
class BatchToggleSink {
public:
    virtual ~BatchToggleSink() = default;
    virtual void on_toggle(NetId net, TimePs time, std::uint64_t values,
                           std::uint64_t toggled) = 0;
};

/// Read-only lane-word view of committed net values -- the seam the
/// energy-coupling power model taps (power/batch_power.hpp).  Implemented
/// by BatchEventSimulator (its one 64-lane word) and by each 64-lane
/// chunk of the compiled wide-lane engine (sim/compiled_simulator.hpp).
class BatchWordView {
public:
    virtual ~BatchWordView() = default;
    [[nodiscard]] virtual std::uint64_t word(NetId net) const noexcept = 0;
};

class BatchEventSimulator final : public BatchWordView {
public:
    /// Throws std::invalid_argument when `coupling.timing_enabled` is set:
    /// data-dependent delays break the shared-schedule premise.
    BatchEventSimulator(const Netlist& nl, const DelayModel& dm,
                        CouplingConfig coupling = {}, SimOptions options = {});

    /// Consistent steady state for "all sources low" in every lane; no
    /// toggles emitted, time reset to 0.
    void initialize();

    void set_sink(BatchToggleSink* sink) noexcept { sink_ = sink; }

    /// Drives a source net to per-lane `values` (only lanes in `lanes`
    /// take effect) at `time`.
    void drive(NetId source, std::uint64_t values, std::uint64_t lanes,
               TimePs time);

    /// Processes all events strictly before `t_end` and advances time.
    void run_until(TimePs t_end);

    /// Processes events until the queue drains; returns the global settle
    /// time (max over lanes; per-lane settle times come from the sink).
    TimePs run_to_quiescence();

    [[nodiscard]] std::uint64_t word(NetId net) const noexcept override {
        return out_val_[net];
    }
    [[nodiscard]] bool value(NetId net, unsigned lane) const noexcept {
        return ((out_val_[net] >> lane) & 1u) != 0;
    }
    /// Input pin lane word as currently visible at `cell` (what a flop
    /// samples at a clock edge).
    [[nodiscard]] std::uint64_t pin_word(CellId cell, unsigned pin) const noexcept {
        return pin_val_[cell * 3 + pin];
    }

    [[nodiscard]] TimePs now() const noexcept { return now_; }
    [[nodiscard]] std::size_t processed_events() const noexcept {
        return processed_;
    }
    [[nodiscard]] const Netlist& nl() const noexcept { return nl_; }

    /// Cumulative activity counters (per-lane accounting: toggles,
    /// glitches and cancels count each lane individually, so their sums
    /// across a campaign equal the scalar engine's -- events and queue
    /// peak measure the amortized shared schedule instead).
    [[nodiscard]] telemetry::SimStats stats() const noexcept {
        return telemetry::SimStats{processed_, toggles_, glitches_,
                                   inertial_cancels_, queue_peak_};
    }

    /// Starts a new glitch-accounting window (BatchClockedSim calls this
    /// at every clock edge).  Pure bookkeeping.
    void begin_activity_window() noexcept { ++window_epoch_; }

private:
    struct Event {
        TimePs time;
        std::uint64_t seq;
        CellId cell;
        std::uint8_t pin;     // 0xFF = gate output commit, 0xFE = source drive
        std::uint64_t value;  // lane word (only bits in `lanes` meaningful)
        std::uint64_t lanes;
    };
    /// In-flight output commit; cancellation clears lane bits in place so
    /// the already-queued event commits only the surviving lanes.
    struct Pending {
        TimePs time;
        std::uint64_t seq;
        std::uint64_t lanes;
    };
    /// Recent schedule time shared by the lanes in `lanes` -- the
    /// compressed per-lane last_sched_time of the scalar simulator.  Marks
    /// older than the (non-decreasing) candidate commit time can never
    /// trigger the monotonic bump again and are pruned on the fly.
    struct SchedMark {
        TimePs when;
        std::uint64_t lanes;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const noexcept {
            return (a.time != b.time) ? a.time > b.time : a.seq > b.seq;
        }
    };

    void commit_output(const Event& ev);
    void update_pin(const Event& ev);
    void schedule_output(CellId cell, std::uint64_t value, std::uint64_t changed,
                         TimePs at);
    void schedule_group(CellId cell, std::uint64_t value, std::uint64_t lanes,
                        TimePs when);
    [[nodiscard]] std::uint64_t eval_word(CellId cell) const noexcept;

    const Netlist& nl_;
    const DelayModel& dm_;
    SimOptions options_;
    BatchToggleSink* sink_ = nullptr;

    std::vector<std::uint64_t> out_val_;
    std::vector<std::uint64_t> pin_val_;         // 3 per cell
    std::vector<std::uint64_t> last_sched_out_;  // last scheduled value per lane
    std::vector<std::vector<Pending>> pending_;
    std::vector<std::vector<SchedMark>> marks_;
    std::vector<TimePs> inertial_window_;  // precomputed per cell

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    std::uint64_t seq_ = 0;
    TimePs now_ = 0;
    std::size_t processed_ = 0;

    // Telemetry counters (see stats()).  Glitch windows use epoch
    // stamping -- no per-cycle O(nets) clearing: a net's toggled-lanes
    // mask is valid only while its stamp matches window_epoch_.
    std::uint64_t toggles_ = 0;
    std::uint64_t glitches_ = 0;
    std::uint64_t inertial_cancels_ = 0;
    std::uint64_t queue_peak_ = 0;
    std::uint32_t window_epoch_ = 1;
    std::vector<std::uint32_t> window_stamp_;   // per net
    std::vector<std::uint64_t> window_toggled_; // lanes toggled this window
};

/// Cycle-level testbench driver around the batch engine -- the lane-word
/// counterpart of ClockedSim, with the identical control API (enable/reset
/// groups, pending primary inputs applied after the edge, per-edge flop
/// sampling through the wire-delayed pin view).  Control flow (clocking,
/// enables, resets) is shared across lanes; only data is per-lane.
class BatchClockedSim {
public:
    BatchClockedSim(const Netlist& nl, const DelayModel& dm,
                    ClockConfig clock = {}, CouplingConfig coupling = {},
                    SimOptions options = {});

    void set_enable(netlist::CtrlGroup group, bool enabled);
    void set_reset(netlist::CtrlGroup group, bool asserted);

    /// Schedules a per-lane primary-input change for right after the next
    /// clock edge.
    void set_input_word(NetId input, std::uint64_t values);
    /// Broadcast form for unmasked control inputs (same value in every
    /// lane) -- keeps testbench FSM code lane-agnostic.
    void set_input(NetId input, bool value) {
        set_input_word(input, value ? kAllLanes : 0);
    }

    void step(std::size_t cycles = 1);

    [[nodiscard]] std::uint64_t word(NetId net) const { return engine_.word(net); }
    [[nodiscard]] bool value(NetId net, unsigned lane) const {
        return engine_.value(net, lane);
    }

    [[nodiscard]] std::size_t cycle() const noexcept { return cycle_; }
    [[nodiscard]] TimePs period() const noexcept { return clock_.period_ps; }
    [[nodiscard]] BatchEventSimulator& engine() noexcept { return engine_; }
    [[nodiscard]] const BatchEventSimulator& engine() const noexcept {
        return engine_;
    }

    void restart();

private:
    const Netlist& nl_;
    const DelayModel& dm_;
    ClockConfig clock_;
    BatchEventSimulator engine_;
    std::vector<std::uint8_t> enable_;
    std::vector<std::uint8_t> reset_;
    struct PendingInput {
        NetId net;
        std::uint64_t values;
    };
    std::vector<PendingInput> pending_;
    std::size_t cycle_ = 0;
};

}  // namespace glitchmask::sim
