#include "des/masked_sbox.hpp"

#include <array>
#include <bit>
#include <stdexcept>
#include <string>
#include <vector>

#include "netlist/builder.hpp"

namespace glitchmask::des {

namespace {

using core::refresh_shares;
using core::secand2;
using netlist::DelayChain;

/// Variable indices (1..4 for x1..x4) selected by a monomial mask,
/// ascending.  Mask bit 3 selects x1 (b4) down to bit 0 selecting x4.
std::vector<unsigned> monomial_vars(std::uint8_t mask) {
    std::vector<unsigned> vars;
    for (int bit = 3; bit >= 0; --bit)
        if ((mask >> bit) & 1u) vars.push_back(4 - static_cast<unsigned>(bit));
    return vars;
}

/// XOR-stage recombination of one mini S-box coordinate.
SharedNet mini_coordinate(Netlist& nl, const MiniSboxAnf& anf, unsigned bit,
                          const SharedBus& x,
                          const std::array<SharedNet, 10>& products) {
    std::vector<NetId> s0;
    std::vector<NetId> s1;
    bool constant = false;
    for (const std::uint8_t mask : anf.terms[bit]) {
        if (mask == 0) {
            constant = true;
            continue;
        }
        if (std::popcount(mask) == 1) {
            const unsigned var = monomial_vars(mask).front();
            s0.push_back(x[var].s0);
            s1.push_back(x[var].s1);
        } else {
            const SharedNet& p = products[product_monomial_index(mask)];
            s0.push_back(p.s0);
            s1.push_back(p.s1);
        }
    }
    NetId out0 = netlist::xor_reduce(nl, s0);
    const NetId out1 = netlist::xor_reduce(nl, s1);
    if (constant) out0 = nl.inv(out0);
    return SharedNet{out0, out1};
}

/// All 16 mini S-box coordinates ([row][bit]) from the refreshed products.
std::array<std::array<SharedNet, 4>, 4> mini_xor_stage(
    Netlist& nl, unsigned box, const SharedBus& x,
    const std::array<SharedNet, 10>& products) {
    std::array<std::array<SharedNet, 4>, 4> out{};
    for (unsigned row = 0; row < 4; ++row) {
        Netlist::Scope scope(nl, "mini" + std::to_string(row));
        const MiniSboxAnf anf = mini_sbox_anf(box, row);
        for (unsigned bit = 0; bit < 4; ++bit)
            out[row][bit] = mini_coordinate(nl, anf, bit, x, products);
    }
    return out;
}

/// Lazily grown DelayUnit tap chain on one net.
class DelayTaps {
public:
    DelayTaps() = default;
    DelayTaps(Netlist* nl, NetId src, unsigned luts_per_unit, std::string base)
        : nl_(nl), luts_per_unit_(luts_per_unit), base_(std::move(base)) {
        taps_.push_back(src);  // tap 0 = undelayed
    }

    [[nodiscard]] NetId tap(unsigned units) {
        while (taps_.size() <= units) {
            const DelayChain chain = netlist::delay_units(
                *nl_, taps_.back(), 1, luts_per_unit_,
                base_ + ".u" + std::to_string(taps_.size()));
            stages_.insert(stages_.end(), chain.stages.begin(),
                           chain.stages.end());
            taps_.push_back(chain.out);
        }
        return taps_[units];
    }

    [[nodiscard]] const std::vector<NetId>& stages() const noexcept {
        return stages_;
    }

private:
    Netlist* nl_ = nullptr;
    unsigned luts_per_unit_ = 10;
    std::string base_;
    std::vector<NetId> taps_;
    std::vector<NetId> stages_;
};

/// Registers coupling pairs between consecutive tap chains (physically
/// adjacent DelayUnit stacks, paper Fig. 11).
void couple_taps(Netlist& nl, const std::vector<const DelayTaps*>& chains) {
    for (std::size_t i = 0; i + 1 < chains.size(); ++i) {
        const auto& a = chains[i]->stages();
        const auto& b = chains[i + 1]->stages();
        const std::size_t overlap = std::min(a.size(), b.size());
        for (std::size_t s = 0; s < overlap; ++s) nl.couple(a[s], b[s]);
    }
}

}  // namespace

SharedBus build_masked_sbox_ff(Netlist& nl, unsigned box, const SharedBus& in,
                               std::span<const NetId> rand,
                               const SboxFfGroups& groups) {
    if (in.size() != 6)
        throw std::invalid_argument("build_masked_sbox_ff: need 6 input bits");
    if (rand.size() < kRandomBitsPerSbox)
        throw std::invalid_argument("build_masked_sbox_ff: need 14 random bits");
    Netlist::Scope scope(nl, "sbox" + std::to_string(box));

    const SharedBus& x = in;  // caller-registered shares

    // Shared delayed y1 flops (paper Sec. III-A: input registers shared by
    // multiple gadgets).  Layer 1 delays x2/x3/x4 share 1; layer 2 delays
    // the last variable of each triple (x3 or x4).
    std::array<NetId, 5> y1_layer1{};  // index by variable 2..4
    for (unsigned var = 2; var <= 4; ++var)
        y1_layer1[var] = nl.dff(x[var].s1, groups.g_layer1, groups.rst_early,
                                "y1l1_x" + std::to_string(var));
    std::array<NetId, 5> y1_layer2{};
    for (unsigned var = 3; var <= 4; ++var)
        y1_layer2[var] = nl.dff(x[var].s1, groups.g_layer2, groups.rst_late,
                                "y1l2_x" + std::to_string(var));

    // Mini S-box AND stage: 6 pairs, then 4 triples chained on the pairs.
    std::array<SharedNet, 10> products{};
    std::array<SharedNet, 10> pair_products{};  // by monomial index
    for (const std::uint8_t mask : all_product_monomials()) {
        const std::size_t index = product_monomial_index(mask);
        const std::vector<unsigned> vars = monomial_vars(mask);
        if (vars.size() == 2) {
            const SharedNet y{x[vars[1]].s0, y1_layer1[vars[1]]};
            products[index] = secand2(nl, x[vars[0]], y,
                                      "pair" + std::to_string(index));
            pair_products[index] = products[index];
        } else {
            const std::uint8_t pair_mask =
                static_cast<std::uint8_t>(mask & (mask - 1));  // drop lowest bit
            const SharedNet pair =
                pair_products[product_monomial_index(pair_mask)];
            const unsigned last = vars[2];
            const SharedNet y{x[last].s0, y1_layer2[last]};
            products[index] =
                secand2(nl, pair, y, "triple" + std::to_string(index));
        }
    }

    // Refresh layer: 10 fresh bits.
    for (std::size_t i = 0; i < products.size(); ++i)
        products[i] = refresh_shares(nl, products[i], rand[i],
                                     "refresh" + std::to_string(i));

    const auto mini = mini_xor_stage(nl, box, x, products);

    // MUX stage 1: select products of x0/x5, one shared delayed x5.s1 flop.
    const NetId x5s1_ff =
        nl.dff(x[5].s1, groups.g_layer1, groups.rst_early, "y1l1_x5");
    const NetId nx0 = nl.inv(x[0].s0, "nx0");
    const NetId nx5 = nl.inv(x[5].s0, "nx5");
    std::array<SharedNet, 4> sel{};
    for (unsigned row = 0; row < 4; ++row) {
        const SharedNet xa{(row & 2) != 0 ? x[0].s0 : nx0, x[0].s1};
        const SharedNet xb{(row & 1) != 0 ? x[5].s0 : nx5, x5s1_ff};
        sel[row] = secand2(nl, xa, xb, "sel" + std::to_string(row));
        sel[row] = refresh_shares(nl, sel[row], rand[10 + row],
                                  "selref" + std::to_string(row));
        // The synchronization register is an x-operand of stage 2 and must
        // NOT be in the gadget reset group: clearing it at the reset edge
        // would make the stage-2 x shares transition while both old mini
        // shares are still visible through the (also resetting) m1 flops
        // -- exactly the x-share-last hazard of Table I.  Only the
        // y1-delay flops are ever reset.
        sel[row] = core::reg_shares(nl, sel[row], groups.g_sync,
                                    netlist::kAlwaysEnabled,
                                    "selreg" + std::to_string(row));
    }

    // MUX stage 2: 16 secAND2 (select x mini output), delayed-share flops
    // in g_mux2; stage 3: XOR recombination; output register.
    SharedBus out(4);
    for (unsigned bit = 0; bit < 4; ++bit) {
        std::vector<NetId> s0;
        std::vector<NetId> s1;
        for (unsigned row = 0; row < 4; ++row) {
            const SharedNet& m = mini[row][bit];
            const NetId m1_ff =
                nl.dff(m.s1, groups.g_mux2, groups.rst_late,
                       "m1ff_r" + std::to_string(row) + "b" + std::to_string(bit));
            const SharedNet product =
                secand2(nl, sel[row], SharedNet{m.s0, m1_ff},
                        "mux2_r" + std::to_string(row) + "b" + std::to_string(bit));
            s0.push_back(product.s0);
            s1.push_back(product.s1);
        }
        const SharedNet combined{netlist::xor_reduce(nl, s0),
                                 netlist::xor_reduce(nl, s1)};
        out[bit] = core::reg_shares(nl, combined, groups.g_out,
                                    netlist::kAlwaysEnabled,
                                    "out" + std::to_string(bit));
    }
    return out;
}

SharedBus build_masked_sbox_pd(Netlist& nl, unsigned box, const SharedBus& in,
                               std::span<const NetId> rand,
                               const SboxPdGroups& groups,
                               const SboxPdOptions& options) {
    if (in.size() != 6)
        throw std::invalid_argument("build_masked_sbox_pd: need 6 input bits");
    if (rand.size() < kRandomBitsPerSbox)
        throw std::invalid_argument("build_masked_sbox_pd: need 14 random bits");
    Netlist::Scope scope(nl, "sbox" + std::to_string(box));

    const SharedBus& x = in;  // caller-registered shares
    std::vector<const DelayTaps*> all_chains;

    // Global Table-II-style schedule over x1..x4: share 0 of x_i delayed
    // by 4-i units, share 1 by 2+i units (see header for the rationale).
    std::array<DelayTaps, 5> taps0;
    std::array<DelayTaps, 5> taps1;
    for (unsigned var = 1; var <= 4; ++var) {
        taps0[var] = DelayTaps(&nl, x[var].s0, options.luts_per_unit,
                               "d_x" + std::to_string(var) + "s0");
        taps1[var] = DelayTaps(&nl, x[var].s1, options.luts_per_unit,
                               "d_x" + std::to_string(var) + "s1");
    }
    auto delayed_var = [&](unsigned var) {
        return SharedNet{taps0[var].tap(4 - var), taps1[var].tap(2 + var)};
    };

    // Mini S-box AND stage: single-cycle chains.
    std::array<SharedNet, 10> products{};
    std::array<SharedNet, 10> pair_products{};
    for (const std::uint8_t mask : all_product_monomials()) {
        const std::size_t index = product_monomial_index(mask);
        const std::vector<unsigned> vars = monomial_vars(mask);
        if (vars.size() == 2) {
            products[index] = secand2(nl, delayed_var(vars[0]),
                                      delayed_var(vars[1]),
                                      "pair" + std::to_string(index));
            pair_products[index] = products[index];
        } else {
            const std::uint8_t pair_mask =
                static_cast<std::uint8_t>(mask & (mask - 1));
            const SharedNet pair =
                pair_products[product_monomial_index(pair_mask)];
            products[index] = secand2(nl, pair, delayed_var(vars[2]),
                                      "triple" + std::to_string(index));
        }
    }
    for (std::size_t i = 0; i < products.size(); ++i)
        products[i] = refresh_shares(nl, products[i], rand[i],
                                     "refresh" + std::to_string(i));

    const auto mini = mini_xor_stage(nl, box, x, products);

    // MUX stage 1 with the 2-variable schedule on x0/x5 taps.
    const NetId nx0 = nl.inv(x[0].s0, "nx0");
    const NetId nx5 = nl.inv(x[5].s0, "nx5");
    DelayTaps x0s0(&nl, x[0].s0, options.luts_per_unit, "d_x0s0");
    DelayTaps nx0s0(&nl, nx0, options.luts_per_unit, "d_nx0s0");
    DelayTaps x0s1(&nl, x[0].s1, options.luts_per_unit, "d_x0s1");
    DelayTaps x5s1(&nl, x[5].s1, options.luts_per_unit, "d_x5s1");
    std::array<SharedNet, 4> sel{};
    for (unsigned row = 0; row < 4; ++row) {
        const SharedNet xa{(row & 2) != 0 ? x0s0.tap(1) : nx0s0.tap(1),
                           x0s1.tap(1)};
        const SharedNet xb{(row & 1) != 0 ? x[5].s0 : nx5, x5s1.tap(2)};
        sel[row] = secand2(nl, xa, xb, "sel" + std::to_string(row));
        sel[row] = refresh_shares(nl, sel[row], rand[10 + row],
                                  "selref" + std::to_string(row));
        sel[row] = core::reg_shares(nl, sel[row], groups.g_mid,
                                    netlist::kAlwaysEnabled,
                                    "selreg" + std::to_string(row));
    }

    // Mini outputs registered at g_mid (synchronization register).
    std::array<std::array<SharedNet, 4>, 4> mini_reg{};
    for (unsigned row = 0; row < 4; ++row)
        for (unsigned bit = 0; bit < 4; ++bit)
            mini_reg[row][bit] = core::reg_shares(
                nl, mini[row][bit], groups.g_mid, netlist::kAlwaysEnabled,
                "minireg_r" + std::to_string(row) + "b" + std::to_string(bit));

    // MUX stage 2: delays on the registered values (2-variable schedule:
    // select products +1/+1, mini outputs +0/+2), then stage-3 XOR.
    std::array<SharedNet, 4> sel_delayed{};
    std::vector<DelayTaps> stage2_taps;
    stage2_taps.reserve(4 * 2 + 16);
    for (unsigned row = 0; row < 4; ++row) {
        stage2_taps.emplace_back(&nl, sel[row].s0, options.luts_per_unit,
                                 "d_sel" + std::to_string(row) + "s0");
        DelayTaps& t0 = stage2_taps.back();
        stage2_taps.emplace_back(&nl, sel[row].s1, options.luts_per_unit,
                                 "d_sel" + std::to_string(row) + "s1");
        DelayTaps& t1 = stage2_taps.back();
        sel_delayed[row] = SharedNet{t0.tap(1), t1.tap(1)};
    }

    SharedBus out(4);
    for (unsigned bit = 0; bit < 4; ++bit) {
        std::vector<NetId> s0;
        std::vector<NetId> s1;
        for (unsigned row = 0; row < 4; ++row) {
            const SharedNet& m = mini_reg[row][bit];
            stage2_taps.emplace_back(&nl, m.s1, options.luts_per_unit,
                                     "d_mini_r" + std::to_string(row) + "b" +
                                         std::to_string(bit));
            const SharedNet y{m.s0, stage2_taps.back().tap(2)};
            const SharedNet product =
                secand2(nl, sel_delayed[row], y,
                        "mux2_r" + std::to_string(row) + "b" + std::to_string(bit));
            s0.push_back(product.s0);
            s1.push_back(product.s1);
        }
        out[bit] = SharedNet{netlist::xor_reduce(nl, s0),
                             netlist::xor_reduce(nl, s1)};
    }

    if (options.couple_adjacent) {
        for (unsigned var = 1; var <= 4; ++var) {
            all_chains.push_back(&taps0[var]);
            all_chains.push_back(&taps1[var]);
        }
        all_chains.push_back(&x0s0);
        all_chains.push_back(&nx0s0);
        all_chains.push_back(&x0s1);
        all_chains.push_back(&x5s1);
        for (const DelayTaps& taps : stage2_taps) all_chains.push_back(&taps);
        couple_taps(nl, all_chains);
    }
    return out;
}

SharedBus build_masked_sbox_dom(Netlist& nl, unsigned box, const SharedBus& in,
                                std::span<const NetId> rand,
                                const SboxDomGroups& groups) {
    if (in.size() != 6)
        throw std::invalid_argument("build_masked_sbox_dom: need 6 input bits");
    if (rand.size() < kDomRandomBitsPerSbox)
        throw std::invalid_argument("build_masked_sbox_dom: need 30 random bits");
    Netlist::Scope scope(nl, "sbox" + std::to_string(box));
    const SharedBus& x = in;  // caller-registered shares

    // Mini S-box AND stage: pairs register at g_dom1, triples (chained on
    // the registered pairs) at g_dom2.  One fresh bit per gadget.
    std::array<SharedNet, 10> products{};
    std::array<SharedNet, 10> pair_products{};
    for (const std::uint8_t mask : all_product_monomials()) {
        const std::size_t index = product_monomial_index(mask);
        const std::vector<unsigned> vars = monomial_vars(mask);
        if (vars.size() == 2) {
            products[index] =
                core::dom_and_indep(nl, x[vars[0]], x[vars[1]], rand[index],
                                    groups.g_dom1, "pair" + std::to_string(index));
            pair_products[index] = products[index];
        } else {
            const std::uint8_t pair_mask =
                static_cast<std::uint8_t>(mask & (mask - 1));
            const SharedNet pair =
                pair_products[product_monomial_index(pair_mask)];
            products[index] =
                core::dom_and_indep(nl, pair, x[vars[2]], rand[index],
                                    groups.g_dom2, "triple" + std::to_string(index));
        }
    }
    // DOM outputs carry their own fresh mask: no refresh layer needed.
    const auto mini = mini_xor_stage(nl, box, x, products);

    // MUX stage 1: select products (registered inside the DOM gadgets).
    const NetId nx0 = nl.inv(x[0].s0, "nx0");
    const NetId nx5 = nl.inv(x[5].s0, "nx5");
    std::array<SharedNet, 4> sel{};
    for (unsigned row = 0; row < 4; ++row) {
        const SharedNet xa{(row & 2) != 0 ? x[0].s0 : nx0, x[0].s1};
        const SharedNet xb{(row & 1) != 0 ? x[5].s0 : nx5, x[5].s1};
        sel[row] = core::dom_and_indep(nl, xa, xb, rand[10 + row],
                                       groups.g_dom1,
                                       "sel" + std::to_string(row));
    }

    // MUX stage 2 + 3.
    SharedBus out(4);
    for (unsigned bit = 0; bit < 4; ++bit) {
        std::vector<NetId> s0;
        std::vector<NetId> s1;
        for (unsigned row = 0; row < 4; ++row) {
            const SharedNet product = core::dom_and_indep(
                nl, sel[row], mini[row][bit], rand[14 + row * 4 + bit],
                groups.g_dom3,
                "mux2_r" + std::to_string(row) + "b" + std::to_string(bit));
            s0.push_back(product.s0);
            s1.push_back(product.s1);
        }
        const SharedNet combined{netlist::xor_reduce(nl, s0),
                                 netlist::xor_reduce(nl, s1)};
        out[bit] = core::reg_shares(nl, combined, groups.g_out,
                                    netlist::kAlwaysEnabled,
                                    "out" + std::to_string(bit));
    }
    return out;
}

}  // namespace glitchmask::des
