#include "support/env.hpp"

#include <cstdlib>

namespace glitchmask {

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
    const char* raw = std::getenv(name.c_str());
    if (raw == nullptr || *raw == '\0') return fallback;
    char* end = nullptr;
    const long long value = std::strtoll(raw, &end, 10);
    return (end == raw) ? fallback : static_cast<std::int64_t>(value);
}

double env_double(const std::string& name, double fallback) {
    const char* raw = std::getenv(name.c_str());
    if (raw == nullptr || *raw == '\0') return fallback;
    char* end = nullptr;
    const double value = std::strtod(raw, &end);
    return (end == raw) ? fallback : value;
}

std::string env_string(const std::string& name, const std::string& fallback) {
    const char* raw = std::getenv(name.c_str());
    return (raw == nullptr || *raw == '\0') ? fallback : std::string(raw);
}

double trace_scale() { return env_double("GLITCHMASK_TRACE_SCALE", 1.0); }

}  // namespace glitchmask
