#include "leakage/ttest.hpp"

#include <cmath>
#include <stdexcept>

namespace glitchmask::leakage {

double welch_t(double mean_a, double var_a, double n_a, double mean_b,
               double var_b, double n_b) {
    if (n_a <= 1.0 || n_b <= 1.0) return 0.0;
    if (!std::isfinite(mean_a) || !std::isfinite(mean_b) ||
        !std::isfinite(var_a) || !std::isfinite(var_b))
        return 0.0;
    // A negative variance is numerical poison from a cancelled moment
    // sum, not a statistic -- reject it even when the other class would
    // carry the denominator.
    if (var_a < 0.0 || var_b < 0.0) return 0.0;
    const double denom = std::sqrt(var_a / n_a + var_b / n_b);
    if (!(denom > 0.0)) return 0.0;  // zero/negative variance, or NaN
    const double t = (mean_a - mean_b) / denom;
    return std::isfinite(t) ? t : 0.0;
}

double preprocessed_mean(const MomentAccumulator& acc, int order) {
    if (order < 1) throw std::invalid_argument("preprocessed_mean: order < 1");
    if (order == 1) return acc.mean();
    if (order == 2) return acc.central_moment(2);
    const double m2 = acc.central_moment(2);
    if (!(m2 > 0.0)) return 0.0;
    return acc.central_moment(order) / std::pow(m2, order / 2.0);
}

double preprocessed_variance(const MomentAccumulator& acc, int order) {
    if (order < 1) throw std::invalid_argument("preprocessed_variance: order < 1");
    if (order == 1) return acc.central_moment(2);
    const double md = acc.central_moment(order);
    const double m2d = acc.central_moment(2 * order);
    if (order == 2) return m2d - md * md;
    const double m2 = acc.central_moment(2);
    if (!(m2 > 0.0)) return 0.0;
    const double var = (m2d - md * md) / std::pow(m2, static_cast<double>(order));
    return std::isfinite(var) ? var : 0.0;
}

UnivariateTTest::UnivariateTTest(int max_test_order)
    : max_test_order_(max_test_order),
      fixed_(2 * max_test_order < 2 ? 2 : 2 * max_test_order),
      random_(2 * max_test_order < 2 ? 2 : 2 * max_test_order) {
    if (max_test_order < 1 || max_test_order > 3)
        throw std::invalid_argument("UnivariateTTest: order must be 1..3");
}

void UnivariateTTest::add(bool fixed_class, double x) {
    (fixed_class ? fixed_ : random_).add(x);
}

void UnivariateTTest::add_batch(bool fixed_class,
                                std::span<const double> values) {
    (fixed_class ? fixed_ : random_).add_batch(values);
}

double UnivariateTTest::t(int order) const {
    if (order < 1 || order > max_test_order_)
        throw std::out_of_range("UnivariateTTest::t: order out of range");
    if (fixed_.count() <= 1.0 || random_.count() <= 1.0) return 0.0;
    return welch_t(preprocessed_mean(fixed_, order),
                   preprocessed_variance(fixed_, order), fixed_.count(),
                   preprocessed_mean(random_, order),
                   preprocessed_variance(random_, order), random_.count());
}

double UnivariateTTest::count(bool fixed_class) const {
    return fixed_class ? fixed_.count() : random_.count();
}

void UnivariateTTest::merge(const UnivariateTTest& other) {
    fixed_.merge(other.fixed_);
    random_.merge(other.random_);
}

void UnivariateTTest::reset() {
    fixed_.reset();
    random_.reset();
}

void UnivariateTTest::encode(SnapshotWriter& out) const {
    out.u32(static_cast<std::uint32_t>(max_test_order_));
    fixed_.encode(out);
    random_.encode(out);
}

UnivariateTTest UnivariateTTest::decode(SnapshotReader& in) {
    const std::uint32_t order = in.u32();
    if (order < 1 || order > 3)
        throw CampaignError(CampaignErrorKind::CorruptSnapshot,
                            "UnivariateTTest: implausible order in snapshot");
    UnivariateTTest test(static_cast<int>(order));
    test.fixed_ = MomentAccumulator::decode(in);
    test.random_ = MomentAccumulator::decode(in);
    if (test.fixed_.max_order() < 2 * test.max_test_order_ ||
        test.random_.max_order() < 2 * test.max_test_order_)
        throw CampaignError(
            CampaignErrorKind::CorruptSnapshot,
            "UnivariateTTest: accumulator order below 2x test order");
    return test;
}

}  // namespace glitchmask::leakage
