#include "netlist/area.hpp"

#include <algorithm>
#include <map>

namespace glitchmask::netlist {

AreaModel AreaModel::nangate45() {
    AreaModel model;
    auto set = [&model](CellKind kind, double value) {
        model.ge[static_cast<std::size_t>(kind)] = value;
    };
    set(CellKind::Input, 0.0);
    set(CellKind::Const0, 0.0);
    set(CellKind::Const1, 0.0);
    set(CellKind::Buf, 1.0);
    set(CellKind::Inv, 0.67);
    set(CellKind::DelayBuf, 1.0);
    set(CellKind::And2, 1.33);
    set(CellKind::Nand2, 1.0);
    set(CellKind::Or2, 1.33);
    set(CellKind::Nor2, 1.0);
    set(CellKind::Xor2, 2.33);
    set(CellKind::Xnor2, 2.0);
    set(CellKind::Orn2, 1.33);
    // SecAnd3 is one LUT on FPGA; the ASIC realization is AND2+ORN2+XOR2.
    set(CellKind::SecAnd3, 1.33 + 1.33 + 2.33);
    set(CellKind::Mux2, 2.33);
    set(CellKind::Dff, 6.0);  // enable flop (DFF + feedback mux)
    return model;
}

AreaModel AreaModel::nangate45_with_delay_inverters(double inverters_per_delaybuf) {
    AreaModel model = nangate45();
    model.ge[static_cast<std::size_t>(CellKind::DelayBuf)] =
        inverters_per_delaybuf * 0.67;
    return model;
}

double total_ge(const Netlist& nl, const AreaModel& model) {
    double total = 0.0;
    for (const Cell& cell : nl.cells())
        total += model.ge[static_cast<std::size_t>(cell.kind)];
    return total;
}

double total_ge_excluding_delay(const Netlist& nl, const AreaModel& model) {
    double total = 0.0;
    for (const Cell& cell : nl.cells()) {
        if (cell.kind == CellKind::DelayBuf) continue;
        total += model.ge[static_cast<std::size_t>(cell.kind)];
    }
    return total;
}

std::vector<ModuleArea> area_by_module(const Netlist& nl, const AreaModel& model) {
    std::map<std::string, ModuleArea> by_prefix;
    const auto& modules = nl.module_names();
    for (CellId id = 0; id < nl.size(); ++id) {
        const Cell& cell = nl.cell(id);
        const std::string& full = modules[cell.module];
        const std::size_t slash = full.find('/');
        const std::string prefix =
            (slash == std::string::npos) ? full : full.substr(0, slash);
        ModuleArea& entry = by_prefix[prefix];
        entry.module = prefix.empty() ? "<top>" : prefix;
        entry.ge += model.ge[static_cast<std::size_t>(cell.kind)];
        entry.cells += 1;
    }
    std::vector<ModuleArea> result;
    result.reserve(by_prefix.size());
    for (auto& [prefix, entry] : by_prefix) result.push_back(std::move(entry));
    std::sort(result.begin(), result.end(),
              [](const ModuleArea& a, const ModuleArea& b) { return a.ge > b.ge; });
    return result;
}

}  // namespace glitchmask::netlist
