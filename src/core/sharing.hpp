// First-order Boolean sharing: types, mask generation, and *software*
// reference models of every gadget in the library.
//
// A sensitive bit x is split into two shares (x0, x1) with x = x0 ^ x1 and
// x0 uniform.  The functions here are pure bit arithmetic -- they are the
// specification the netlist gadgets (core/gadgets.hpp) are tested against,
// and they power the fast functional masked models in the test suite.
// They deliberately know nothing about glitches: the whole point of the
// paper is that a functionally correct masked AND is not automatically a
// *hardware*-secure one.
#pragma once

#include <cstdint>

#include "support/rng.hpp"

namespace glitchmask::core {

/// One masked bit (2 shares).
struct MaskedBit {
    bool s0 = false;
    bool s1 = false;

    [[nodiscard]] constexpr bool value() const noexcept { return s0 != s1; }

    friend constexpr bool operator==(const MaskedBit&, const MaskedBit&) = default;
};

/// Splits `value` into a fresh uniform sharing.
[[nodiscard]] inline MaskedBit mask_bit(bool value, Xoshiro256& rng) {
    const bool r = rng.bit();
    return MaskedBit{r, r != value};
}

/// A masked word: share 0 and share 1 packed bitwise.
struct MaskedWord {
    std::uint64_t s0 = 0;
    std::uint64_t s1 = 0;

    [[nodiscard]] constexpr std::uint64_t value() const noexcept { return s0 ^ s1; }

    friend constexpr bool operator==(const MaskedWord&, const MaskedWord&) = default;
};

/// Splits `value` (low `width` bits) into a fresh uniform sharing.
[[nodiscard]] MaskedWord mask_word(std::uint64_t value, unsigned width,
                                   Xoshiro256& rng);

// ----- reference gadget semantics (bit level) ---------------------------

/// secAND2 (Biryukov et al., paper Eq. 2):
///   z0 = (x0 & y0) ^ (x0 | !y1)
///   z1 = (x1 & y0) ^ (x1 | !y1)
/// No fresh randomness; output is NOT independent of the inputs, which
/// composition must account for (paper Sec. III-C).
[[nodiscard]] constexpr MaskedBit secand2_ref(MaskedBit x, MaskedBit y) noexcept {
    const bool ny1 = !y.s1;
    return MaskedBit{(x.s0 && y.s0) != (x.s0 || ny1),
                     (x.s1 && y.s0) != (x.s1 || ny1)};
}

/// Trichina masked AND (paper Eq. 1); secure only with left-to-right
/// evaluation order, consumes one fresh bit `r`.
[[nodiscard]] constexpr MaskedBit trichina_and_ref(MaskedBit x, MaskedBit y,
                                                   bool r) noexcept {
    bool z0 = r;
    z0 = z0 != (x.s0 && y.s0);
    z0 = z0 != (x.s0 && y.s1);
    z0 = z0 != (x.s1 && y.s1);
    z0 = z0 != (x.s1 && y.s0);
    return MaskedBit{z0, r};
}

/// Domain-oriented masked AND for independent shares (Gross et al.):
///   z0 = x0 y0 ^ (x0 y1 ^ r),  z1 = x1 y1 ^ (x1 y0 ^ r).
/// In hardware the parenthesised cross terms pass through a register.
[[nodiscard]] constexpr MaskedBit dom_and_ref(MaskedBit x, MaskedBit y,
                                              bool r) noexcept {
    return MaskedBit{(x.s0 && y.s0) != ((x.s0 && y.s1) != r),
                     (x.s1 && y.s1) != ((x.s1 && y.s0) != r)};
}

/// Share refresh with fresh mask m: (s0 ^ m, s1 ^ m).
[[nodiscard]] constexpr MaskedBit refresh_ref(MaskedBit a, bool m) noexcept {
    return MaskedBit{a.s0 != m, a.s1 != m};
}

/// Masked XOR (share-wise).
[[nodiscard]] constexpr MaskedBit xor_ref(MaskedBit a, MaskedBit b) noexcept {
    return MaskedBit{a.s0 != b.s0, a.s1 != b.s1};
}

/// Masked NOT (invert exactly one share).
[[nodiscard]] constexpr MaskedBit not_ref(MaskedBit a) noexcept {
    return MaskedBit{!a.s0, a.s1};
}

/// XOR with an unmasked constant (folds into share 0).
[[nodiscard]] constexpr MaskedBit xor_const_ref(MaskedBit a, bool c) noexcept {
    return MaskedBit{a.s0 != c, a.s1};
}

}  // namespace glitchmask::core
