#include "eval/run_report.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <span>
#include <stdexcept>

#include "leakage/attribution.hpp"
#include "support/atomic_file.hpp"
#include "support/campaign_error.hpp"
#include "support/env.hpp"
#include "support/runenv.hpp"

namespace glitchmask::eval {

namespace {

std::int64_t steady_ns() noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void append_escaped(std::string& out, std::string_view text) {
    out += '"';
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buffer[8];
                    std::snprintf(buffer, sizeof buffer, "\\u%04x",
                                  static_cast<unsigned>(c));
                    out += buffer;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

void append_double(std::string& out, double value) {
    if (!std::isfinite(value)) value = 0.0;  // JSON has no NaN/Inf
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    out += buffer;
}

void append_u64(std::string& out, std::uint64_t value) {
    out += std::to_string(value);
}

// ----- parser ------------------------------------------------------------

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    JsonValue document() {
        JsonValue value = parse_value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing characters");
        return value;
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        throw std::runtime_error("parse_json: " + what + " at byte " +
                                 std::to_string(pos_));
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(std::string_view literal) {
        if (text_.substr(pos_, literal.size()) != literal) return false;
        pos_ += literal.size();
        return true;
    }

    JsonValue parse_value() {
        skip_ws();
        switch (peek()) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': {
                JsonValue value;
                value.kind = JsonValue::Kind::kString;
                value.string = parse_string();
                return value;
            }
            case 't': {
                if (!consume_literal("true")) fail("bad literal");
                JsonValue value;
                value.kind = JsonValue::Kind::kBool;
                value.boolean = true;
                return value;
            }
            case 'f': {
                if (!consume_literal("false")) fail("bad literal");
                JsonValue value;
                value.kind = JsonValue::Kind::kBool;
                value.boolean = false;
                return value;
            }
            case 'n':
                if (!consume_literal("null")) fail("bad literal");
                return JsonValue{};
            default: return parse_number();
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') code |= h - '0';
                        else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
                        else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
                        else fail("bad \\u escape");
                    }
                    // Reports only emit \u for control chars; keep other
                    // BMP points as UTF-8.
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                }
                default: fail("bad escape");
            }
        }
    }

    JsonValue parse_number() {
        const std::size_t start = pos_;
        bool negative = false;
        bool integral = true;
        if (peek() == '-') {
            negative = true;
            ++pos_;
        }
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start + (negative ? 1u : 0u)) fail("bad number");
        const std::string token(text_.substr(start, pos_ - start));
        JsonValue value;
        if (integral && !negative) {
            // Exact u64 path: fingerprint words must round-trip.
            value.kind = JsonValue::Kind::kUnsigned;
            value.unsigned_value = std::stoull(token);
        } else {
            value.kind = JsonValue::Kind::kNumber;
            value.number = std::stod(token);
        }
        return value;
    }

    JsonValue parse_array() {
        expect('[');
        JsonValue value;
        value.kind = JsonValue::Kind::kArray;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return value;
        }
        for (;;) {
            value.array.push_back(parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return value;
        }
    }

    JsonValue parse_object() {
        expect('{');
        JsonValue value;
        value.kind = JsonValue::Kind::kObject;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return value;
        }
        for (;;) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            value.object.emplace_back(std::move(key), parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return value;
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

const JsonValue& require(const JsonValue& object, std::string_view key) {
    const JsonValue* member = object.find(key);
    if (member == nullptr)
        throw std::runtime_error("run report: missing field '" +
                                 std::string(key) + "'");
    return *member;
}

std::uint64_t require_u64(const JsonValue& object, std::string_view key) {
    const JsonValue& member = require(object, key);
    if (member.kind != JsonValue::Kind::kUnsigned)
        throw std::runtime_error("run report: field '" + std::string(key) +
                                 "' is not an unsigned integer");
    return member.unsigned_value;
}

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [name, value] : object)
        if (name == key) return &value;
    return nullptr;
}

JsonValue parse_json(std::string_view text) {
    return Parser(text).document();
}

std::string resolve_report_path(const CampaignRunOptions& run,
                                const std::string& default_id) {
    if (!run.report_path.empty()) return run.report_path;
    const std::string dir = env_string("GLITCHMASK_REPORT_DIR", "");
    if (dir.empty()) return {};
    const std::string id =
        run.campaign_id.empty() ? default_id : run.campaign_id;
    return dir + "/" + id + ".report.json";
}

std::string resolve_trace_path(const CampaignRunOptions& run,
                               const std::string& default_id) {
    const std::string dir = env_string("GLITCHMASK_TRACE_DIR", "");
    if (dir.empty()) return {};
    const std::string id =
        run.campaign_id.empty() ? default_id : run.campaign_id;
    return dir + "/" + id + ".trace.json";
}

std::string render_run_report(const RunReport& report) {
    std::string out;
    out.reserve(2048);
    out += "{\n  \"schema\": ";
    append_escaped(out, kRunReportSchema);
    out += ",\n  \"version\": ";
    append_u64(out, kRunReportVersion);
    out += ",\n  \"campaign\": ";
    append_escaped(out, report.campaign);
    out += ",\n  \"fingerprint\": {";
    out += "\"kind\": ";
    append_u64(out, report.fingerprint.kind);
    out += ", \"seed\": ";
    append_u64(out, report.fingerprint.seed);
    out += ", \"traces\": ";
    append_u64(out, report.fingerprint.traces);
    out += ", \"block_size\": ";
    append_u64(out, report.fingerprint.block_size);
    out += ", \"payload\": ";
    append_u64(out, report.fingerprint.payload);
    out += "},\n  \"workers\": ";
    append_u64(out, report.workers);
    out += ",\n  \"lanes\": ";
    append_u64(out, report.lanes);
    out += ",\n  \"revision\": ";
    append_escaped(out, report.revision);
    out += ",\n  \"hostname\": ";
    append_escaped(out, report.hostname);
    out += ",\n  \"utc\": ";
    append_escaped(out, report.utc);
    out += ",\n  \"wall_seconds\": ";
    append_double(out, report.wall_seconds);
    out += ",\n  \"cpu_seconds\": ";
    append_double(out, report.cpu_seconds);
    out += ",\n  \"telemetry_enabled\": ";
    out += report.telemetry_enabled ? "true" : "false";
    out += ",\n  \"counters\": {";
    for (std::size_t i = 0; i < telemetry::kCounterCount; ++i) {
        if (i != 0) out += ",";
        out += "\n    ";
        append_escaped(out,
                       telemetry::counter_name(static_cast<telemetry::Counter>(i)));
        out += ": ";
        append_u64(out, report.counters.values[i]);
    }
    out += "\n  },\n  \"histograms\": {";
    // v3, sparse: only observed families, only nonzero buckets, each
    // bucket as [floor, count] (the floor maps back to its index via
    // histogram_bucket()).
    bool first_histogram = true;
    for (std::size_t i = 0; i < telemetry::kHistogramCount; ++i) {
        const telemetry::HistogramSnapshot& h = report.counters.histograms[i];
        if (h.count == 0) continue;
        if (!first_histogram) out += ",";
        first_histogram = false;
        out += "\n    ";
        append_escaped(out, telemetry::histogram_name(
                                static_cast<telemetry::Histogram>(i)));
        out += ": {\"count\": ";
        append_u64(out, h.count);
        out += ", \"sum\": ";
        append_u64(out, h.sum);
        out += ", \"max\": ";
        append_u64(out, h.max);
        out += ", \"buckets\": [";
        bool first_bucket = true;
        for (std::size_t b = 0; b < telemetry::kHistogramBuckets; ++b) {
            if (h.buckets[b] == 0) continue;
            if (!first_bucket) out += ", ";
            first_bucket = false;
            out += "[";
            append_u64(out, telemetry::histogram_bucket_floor(b));
            out += ", ";
            append_u64(out, h.buckets[b]);
            out += "]";
        }
        out += "]}";
    }
    out += first_histogram ? "}" : "\n  }";
    out += ",\n  \"progress\": {";
    out += "\"completed_blocks\": ";
    append_u64(out, report.progress.completed_blocks);
    out += ", \"completed_traces\": ";
    append_u64(out, report.progress.completed_traces);
    out += ", \"resumed\": ";
    out += report.progress.resumed ? "true" : "false";
    out += ", \"cancelled\": ";
    out += report.progress.cancelled ? "true" : "false";
    out += "},\n  \"checkpoint_blocks\": [";
    for (std::size_t i = 0; i < report.checkpoint_blocks.size(); ++i) {
        if (i != 0) out += ", ";
        append_u64(out, report.checkpoint_blocks[i]);
    }
    out += "],\n  \"metrics\": {";
    for (std::size_t i = 0; i < report.metrics.size(); ++i) {
        if (i != 0) out += ",";
        out += "\n    ";
        append_escaped(out, report.metrics[i].first);
        out += ": ";
        append_double(out, report.metrics[i].second);
    }
    out += report.metrics.empty() ? "}" : "\n  }";
    if (report.attribution.enabled) {
        const AttributionReport& attr = report.attribution;
        out += ",\n  \"attribution\": {\n    \"top_k\": ";
        append_u64(out, attr.top_k);
        out += ",\n    \"scope\": ";
        append_escaped(out, attr.scope);
        out += ",\n    \"traces_fixed\": ";
        append_u64(out, attr.traces_fixed);
        out += ",\n    \"traces_random\": ";
        append_u64(out, attr.traces_random);
        out += ",\n    \"nets\": [";
        for (std::size_t i = 0; i < attr.nets.size(); ++i) {
            const AttributionNetReport& net = attr.nets[i];
            out += i != 0 ? "," : "";
            out += "\n      {\"net\": ";
            append_u64(out, net.net);
            out += ", \"name\": ";
            append_escaped(out, net.name);
            out += ", \"kind\": ";
            append_escaped(out, net.kind);
            out += ", \"module\": ";
            append_escaped(out, net.module);
            out += ", \"max_abs_t\": ";
            append_double(out, net.max_abs_t);
            out += ", \"argmax_window\": ";
            append_u64(out, net.argmax_window);
            out += ", \"snr\": ";
            append_double(out, net.snr);
            out += ", \"toggles\": ";
            append_u64(out, net.toggles);
            out += ", \"glitches\": ";
            append_u64(out, net.glitches);
            out += ", \"glitch_density\": ";
            append_double(out, net.glitch_density);
            out += "}";
        }
        out += attr.nets.empty() ? "]\n  }" : "\n    ]\n  }";
    }
    if (!report.spans.empty()) {
        out += ",\n  \"spans\": [";
        for (std::size_t i = 0; i < report.spans.size(); ++i) {
            const trace::SpanSummary& span = report.spans[i];
            out += i != 0 ? "," : "";
            out += "\n    {\"name\": ";
            append_escaped(out, span.name);
            out += ", \"count\": ";
            append_u64(out, span.count);
            out += ", \"total_ns\": ";
            append_u64(out, span.total_ns);
            out += "}";
        }
        out += "\n  ]";
    }
    out += "\n}\n";
    return out;
}

void write_run_report(const std::string& path, const RunReport& report) {
    const std::string text = render_run_report(report);
    atomic_write_file(path,
                      std::span<const std::uint8_t>(
                          reinterpret_cast<const std::uint8_t*>(text.data()),
                          text.size()));
}

std::optional<RunReport> read_run_report(const std::string& path) {
    const auto bytes = read_file_if_exists(path);
    if (!bytes.has_value()) return std::nullopt;
    const JsonValue root = parse_json(std::string_view(
        reinterpret_cast<const char*>(bytes->data()), bytes->size()));
    return decode_run_report(root);
}

RunReport decode_run_report(const JsonValue& root) {
    if (root.kind != JsonValue::Kind::kObject)
        throw std::runtime_error("run report: not a JSON object");
    const JsonValue& schema = require(root, "schema");
    if (schema.string != kRunReportSchema)
        throw std::runtime_error("run report: unexpected schema '" +
                                 schema.string + "'");
    const std::uint64_t version = require_u64(root, "version");
    if (version < 1 || version > kRunReportVersion)
        throw std::runtime_error("run report: unsupported version " +
                                 std::to_string(version));

    RunReport report;
    report.campaign = require(root, "campaign").string;
    const JsonValue& fp = require(root, "fingerprint");
    report.fingerprint.kind = require_u64(fp, "kind");
    report.fingerprint.seed = require_u64(fp, "seed");
    report.fingerprint.traces = require_u64(fp, "traces");
    report.fingerprint.block_size = require_u64(fp, "block_size");
    report.fingerprint.payload = require_u64(fp, "payload");
    report.workers = static_cast<unsigned>(require_u64(root, "workers"));
    report.lanes = static_cast<unsigned>(require_u64(root, "lanes"));
    // v4 attribution fields; absent in v1-v3 files.
    if (const JsonValue* revision = root.find("revision"))
        report.revision = revision->string;
    if (const JsonValue* hostname = root.find("hostname"))
        report.hostname = hostname->string;
    if (const JsonValue* utc = root.find("utc")) report.utc = utc->string;
    report.wall_seconds = require(root, "wall_seconds").as_number();
    report.cpu_seconds = require(root, "cpu_seconds").as_number();
    report.telemetry_enabled = require(root, "telemetry_enabled").boolean;
    const JsonValue& counters = require(root, "counters");
    for (std::size_t i = 0; i < telemetry::kCounterCount; ++i) {
        const char* name =
            telemetry::counter_name(static_cast<telemetry::Counter>(i));
        if (const JsonValue* value = counters.find(name))
            report.counters.values[i] = value->unsigned_value;
    }
    // v3 section; absent in v1/v2 files and in histogram-free runs.
    if (const JsonValue* histograms = root.find("histograms")) {
        for (std::size_t i = 0; i < telemetry::kHistogramCount; ++i) {
            const char* name = telemetry::histogram_name(
                static_cast<telemetry::Histogram>(i));
            const JsonValue* cell = histograms->find(name);
            if (cell == nullptr) continue;
            telemetry::HistogramSnapshot& h = report.counters.histograms[i];
            h.count = require_u64(*cell, "count");
            h.sum = require_u64(*cell, "sum");
            h.max = require_u64(*cell, "max");
            for (const JsonValue& pair : require(*cell, "buckets").array) {
                if (pair.kind != JsonValue::Kind::kArray ||
                    pair.array.size() != 2)
                    throw std::runtime_error(
                        "run report: histogram bucket is not a "
                        "[floor, count] pair");
                const std::size_t bucket = telemetry::histogram_bucket(
                    pair.array[0].unsigned_value);
                h.buckets[bucket] = pair.array[1].unsigned_value;
            }
        }
    }
    const JsonValue& progress = require(root, "progress");
    report.progress.completed_blocks =
        static_cast<std::size_t>(require_u64(progress, "completed_blocks"));
    report.progress.completed_traces =
        static_cast<std::size_t>(require_u64(progress, "completed_traces"));
    report.progress.resumed = require(progress, "resumed").boolean;
    report.progress.cancelled = require(progress, "cancelled").boolean;
    for (const JsonValue& mark : require(root, "checkpoint_blocks").array)
        report.checkpoint_blocks.push_back(mark.unsigned_value);
    for (const auto& [name, value] : require(root, "metrics").object)
        report.metrics.emplace_back(name, value.as_number());
    // v2 section; absent in v1 files and in unattributed v2 runs.
    if (const JsonValue* attr = root.find("attribution")) {
        report.attribution.enabled = true;
        report.attribution.top_k = require_u64(*attr, "top_k");
        report.attribution.scope = require(*attr, "scope").string;
        report.attribution.traces_fixed = require_u64(*attr, "traces_fixed");
        report.attribution.traces_random = require_u64(*attr, "traces_random");
        for (const JsonValue& entry : require(*attr, "nets").array) {
            AttributionNetReport net;
            net.net = require_u64(entry, "net");
            net.name = require(entry, "name").string;
            net.kind = require(entry, "kind").string;
            net.module = require(entry, "module").string;
            net.max_abs_t = require(entry, "max_abs_t").as_number();
            net.argmax_window = require_u64(entry, "argmax_window");
            net.snr = require(entry, "snr").as_number();
            net.toggles = require_u64(entry, "toggles");
            net.glitches = require_u64(entry, "glitches");
            net.glitch_density = require(entry, "glitch_density").as_number();
            report.attribution.nets.push_back(std::move(net));
        }
    }
    // v3 section; absent in v1/v2 files and in untraced runs.
    if (const JsonValue* spans = root.find("spans")) {
        for (const JsonValue& entry : spans->array) {
            trace::SpanSummary span;
            span.name = require(entry, "name").string;
            span.count = require_u64(entry, "count");
            span.total_ns = require_u64(entry, "total_ns");
            report.spans.push_back(std::move(span));
        }
    }
    return report;
}

// ----- RunTelemetrySession -----------------------------------------------

RunTelemetrySession::RunTelemetrySession(std::string campaign_id,
                                         const CampaignRunOptions& run,
                                         const CampaignFingerprint& fingerprint,
                                         std::size_t total_traces,
                                         unsigned workers, unsigned lanes)
    : campaign_(std::move(campaign_id)),
      report_path_(resolve_report_path(run, campaign_)),
      trace_path_(resolve_trace_path(run, campaign_)),
      fingerprint_(fingerprint),
      workers_(workers),
      lanes_(lanes),
      restore_enabled_(telemetry::enabled()),
      restore_trace_(trace::enabled()),
      meter_(campaign_, total_traces, run.on_progress) {
    // A requested report implies collection for this run; drivers without
    // a report keep whatever GLITCHMASK_TELEMETRY selected.  Likewise a
    // requested trace file implies span collection.
    if (!report_path_.empty()) telemetry::set_enabled(true);
    if (!trace_path_.empty()) trace::set_enabled(true);
    start_ = telemetry::snapshot();
    cpu_start_ = telemetry::process_cpu_seconds();
    wall_start_ns_ = steady_ns();
}

RunTelemetrySession::~RunTelemetrySession() {
    telemetry::set_enabled(restore_enabled_);
    trace::set_enabled(restore_trace_);
}

void RunTelemetrySession::attach(CheckpointPolicy& policy) {
    // The runner invokes on_checkpoint from the wave loop on the calling
    // thread, so the history vector needs no lock.
    policy.on_checkpoint = [this, chained = std::move(policy.on_checkpoint)](
                               std::size_t completed_blocks) {
        checkpoint_blocks_.push_back(completed_blocks);
        if (chained) chained(completed_blocks);
    };
}

telemetry::ProgressMeter* RunTelemetrySession::meter() noexcept {
    return meter_.active() ? &meter_ : nullptr;
}

void RunTelemetrySession::add_metric(std::string name, double value) {
    metrics_.emplace_back(std::move(name), value);
}

void RunTelemetrySession::set_attribution(
    const leakage::AttributionResult& result, std::size_t top_k,
    std::string scope) {
    if (!result.enabled) return;
    attribution_.enabled = true;
    attribution_.top_k = top_k;
    attribution_.scope = std::move(scope);
    attribution_.traces_fixed = result.traces_fixed;
    attribution_.traces_random = result.traces_random;
    attribution_.nets.clear();
    const std::size_t rows = std::min(top_k, result.ranked.size());
    for (std::size_t rank = 0; rank < rows; ++rank) {
        const leakage::NetAttribution& from = result.ranked[rank];
        AttributionNetReport net;
        net.net = from.net;
        net.name = from.name;
        net.kind = from.kind;
        net.module = from.module;
        net.max_abs_t = from.max_abs_t;
        net.argmax_window = from.argmax_window;
        net.snr = from.snr;
        net.toggles = from.toggles;
        net.glitches = from.glitches;
        net.glitch_density = from.glitch_density;
        attribution_.nets.push_back(std::move(net));
    }
}

void RunTelemetrySession::finish(const CampaignProgress& progress) {
    if (finished_) return;
    finished_ = true;
    meter_.finish();

    // Only a session that *asked* for a trace file drains the global span
    // buffer -- under the daemon, spans belong to the service's per-job
    // harvest and draining here would steal them.
    std::vector<trace::SpanSummary> span_summary;
    if (!trace_path_.empty()) {
        const std::vector<trace::Span> spans = trace::take_spans();
        trace::write_chrome_trace(trace_path_, spans);
        span_summary = trace::summarize_spans(spans);
    }
    if (report_path_.empty()) return;

    RunReport report;
    report.campaign = campaign_;
    report.fingerprint = fingerprint_;
    report.workers = workers_;
    report.lanes = lanes_;
    report.revision = git_revision();
    report.hostname = host_name();
    report.utc = utc_timestamp();
    report.wall_seconds =
        static_cast<double>(steady_ns() - wall_start_ns_) * 1e-9;
    report.cpu_seconds = telemetry::process_cpu_seconds() - cpu_start_;
    report.telemetry_enabled = true;
    report.counters = telemetry::snapshot().delta_since(start_);
    report.progress = progress;
    report.checkpoint_blocks = checkpoint_blocks_;
    report.metrics = metrics_;
    report.attribution = attribution_;
    report.spans = std::move(span_summary);
    write_run_report(report_path_, report);
}

}  // namespace glitchmask::eval
