// The campaign service: a long-running scheduler that turns
// CampaignRequests into campaign runs on a bounded executor pool, with
// result caching, request coalescing, watchdog supervision, and
// drain/restart semantics.
//
// Design centre -- everything the daemon promises lives here, transport-
// free, so tests drive it in-process:
//
//   * Bounded admission.  At most queue_capacity jobs wait; a submit
//     beyond that is rejected *explicitly* (SubmitResult::Overloaded) --
//     backpressure is the client's signal to slow down, never a silent
//     drop.  Queued jobs run highest-priority first, FIFO within a
//     priority.  Terminal jobs stay queryable through a bounded history
//     (history_capacity), so a long-running daemon's job table cannot
//     grow without bound.
//   * Dedupe by campaign identity.  The request fingerprint (the same
//     identity checkpoints are stamped with) keys an LRU result cache; a
//     resubmit of a completed campaign answers from the cache without
//     simulating, and a submit equal to a queued/running job coalesces
//     onto it instead of running twice.  Determinism makes this sound:
//     equal fingerprints imply bit-identical results.
//   * Crash-safe by spool.  Each job checkpoints (when spool_dir is set)
//     to <spool>/<fingerprint-hex>.gmsnap, so a killed daemon resumes any
//     identical resubmission from the frontier; the snapshot is unlinked
//     once the result is safely in the cache.  Checkpoint ENOSPC degrades
//     to in-memory progress (warned, flagged) instead of failing the job;
//     a corrupt spool snapshot is quarantined and the job restarts clean.
//   * Watchdog.  A job that stops making progress (no trace completed
//     for watchdog_timeout_sec) is cancelled cooperatively: in-flight
//     blocks finish, a final checkpoint is written, the job reports
//     TimedOut with its partial trace count and stays resumable.
//   * Drain.  shutdown(drain) stops admission, optionally cancels the
//     running jobs (which checkpoint), and persists every unfinished
//     request to state_path; a restarted service resubmits them
//     (load_state) and their spool snapshots make the replay cheap.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/campaign_request.hpp"
#include "support/cancel.hpp"
#include "support/trace.hpp"

namespace glitchmask::service {

struct ServiceConfig {
    unsigned executors = 1;        // concurrent campaign runs
    std::size_t queue_capacity = 16;
    std::size_t cache_capacity = 64;    // LRU entries; 0 disables caching
    /// Terminal jobs kept queryable via status()/wait(); older ones are
    /// evicted (oldest-terminal first) so a long-running daemon's job
    /// table stays bounded.  0 = keep everything (tests, short runs).
    std::size_t history_capacity = 256;
    double watchdog_timeout_sec = 0.0;  // 0 = watchdog off
    std::string spool_dir;   // checkpoint spool; empty = no checkpoints
    std::string state_path;  // drain state file; empty = none
    /// Per-job Chrome-trace export directory: each terminal job writes
    /// <trace_dir>/job-<id>.trace.json when trace collection is on.
    /// Empty = no files (span summaries still ride the job status).
    std::string trace_dir;
    /// Cross-run results ledger (obs/ledger.hpp): every *executed*
    /// primary job reaching a terminal state appends one entry here,
    /// stamped with this host/revision/UTC.  Cache hits and coalesced
    /// followers are deliberately not appended -- they did not re-run
    /// the campaign, and their near-zero wall times would poison the
    /// perf history the regression radar judges.  Empty = no ledger.
    std::string ledger_path;
};

enum class JobState {
    Queued,
    Running,
    Completed,
    Failed,
    Cancelled,
    TimedOut,
};

[[nodiscard]] const char* job_state_name(JobState state) noexcept;
[[nodiscard]] constexpr bool job_state_terminal(JobState state) noexcept {
    return state != JobState::Queued && state != JobState::Running;
}

/// Point-in-time view of one job (value copy; safe to hold).
struct JobStatus {
    std::uint64_t id = 0;
    JobState state = JobState::Queued;
    CampaignRequest request;
    CampaignOutcome outcome;       // valid in terminal states except Failed
    /// Hex request fingerprint (the cache/spool identity) -- known from
    /// submit time, unlike outcome.fingerprint which only exists once a
    /// campaign has run.
    std::string fingerprint_key;
    bool cached = false;           // served from the result cache
    bool coalesced = false;        // rode on an identical in-flight job
    std::string error_kind;        // Failed: campaign_error_kind_name / "error"
    std::string error_message;
    /// Per-name span rollup of this job's trace (queue_wait, execute,
    /// block, sim, ...).  Populated in terminal states; always carries at
    /// least queue_wait + execute for executed jobs, the full tree when
    /// trace collection is on.
    std::vector<trace::SpanSummary> spans;
};

class CampaignService {
public:
    struct SubmitResult {
        enum class Kind { Accepted, Overloaded, Draining };
        Kind kind = Kind::Accepted;
        std::uint64_t job_id = 0;  // valid when accepted
    };

    /// Progress observer: (job id, update).  Called from executor threads
    /// at the meter's rate limit; must not block.
    using ProgressHook =
        std::function<void(std::uint64_t, const telemetry::ProgressUpdate&)>;
    /// Completion observer: called from executor threads once per job
    /// reaching a terminal state (including coalesced followers).
    using CompletionHook = std::function<void(const JobStatus&)>;

    explicit CampaignService(ServiceConfig config);
    ~CampaignService();

    CampaignService(const CampaignService&) = delete;
    CampaignService& operator=(const CampaignService&) = delete;

    /// Install before the first submit; not thread-safe against running
    /// jobs.
    void set_progress_hook(ProgressHook hook);
    void set_completion_hook(CompletionHook hook);

    [[nodiscard]] SubmitResult submit(const CampaignRequest& request);

    /// Requests cooperative cancellation of a queued or running job.
    /// Queued jobs terminate immediately; running jobs finish their
    /// in-flight blocks, checkpoint, and report Cancelled with a partial
    /// count.  False when the id is unknown or already terminal.
    bool cancel(std::uint64_t job_id);

    [[nodiscard]] std::optional<JobStatus> status(std::uint64_t job_id) const;

    /// Blocks until `job_id` reaches a terminal state (or returns nullopt
    /// for an unknown id).
    [[nodiscard]] std::optional<JobStatus> wait(std::uint64_t job_id);

    /// Blocks until no job is queued or running.
    void wait_idle();

    /// Stops admission, waits for the current jobs to finish (cancelling
    /// them first when `cancel_running`), writes every unfinished request
    /// to state_path, and joins the executors.  Idempotent.
    void shutdown(bool cancel_running);

    /// Resubmits the requests a previous shutdown persisted to
    /// state_path; returns how many were accepted.  Call before serving.
    std::size_t load_state();

    struct Stats {
        std::uint64_t submitted = 0;
        std::uint64_t executed = 0;       // ran a real campaign
        std::uint64_t completed = 0;      // reached Completed (any path:
                                          // executed, cached, coalesced)
        std::uint64_t cache_hits = 0;
        std::uint64_t cache_misses = 0;   // fingerprint lookups that missed
        std::uint64_t coalesced = 0;
        std::uint64_t rejected_overloaded = 0;
        std::uint64_t failed = 0;
        std::uint64_t cancelled = 0;
        std::uint64_t timed_out = 0;
        std::size_t queued_now = 0;
        std::size_t running_now = 0;
        std::size_t queue_peak = 0;       // high-water mark of queued_now
    };
    [[nodiscard]] Stats stats() const;

    /// Instantaneous service-health view for the metrics surface: the
    /// counters above plus derived cache/spool figures.  Also refreshes
    /// the service gauges (queue depth, running jobs, cache entries,
    /// spool bytes) so a snapshot taken right after is current.
    struct MetricsInfo {
        Stats stats;
        std::size_t cache_entries = 0;
        /// cache_hits / (cache_hits + cache_misses); 0 when no lookups.
        double cache_hit_rate = 0.0;
        /// Total bytes of spool checkpoints on disk (0 when no spool).
        std::uint64_t spool_bytes = 0;
    };
    [[nodiscard]] MetricsInfo metrics_info() const;

private:
    struct Job {
        std::uint64_t id = 0;
        CampaignRequest request;
        eval::CampaignFingerprint fingerprint{};
        std::string fingerprint_key;
        JobState state = JobState::Queued;
        CampaignOutcome outcome;
        bool cached = false;
        bool coalesced = false;
        std::string error_kind;
        std::string error_message;
        CancelToken cancel;
        std::atomic<bool> watchdog_fired{false};
        /// Cancelled by shutdown(), not by a client: persisted to the
        /// state file so the next incarnation resumes it.
        std::atomic<bool> shutdown_cancelled{false};
        std::atomic<std::uint64_t> last_activity_ns{0};
        /// Followers coalesced onto this job; completed with its result.
        std::vector<std::shared_ptr<Job>> followers;
        std::uint64_t submit_ns = 0;   // enqueue time (queue-wait origin)
        std::uint64_t start_ns = 0;    // executor pickup time
        /// Root span id of this job's trace tree (0 when tracing is off);
        /// allocated at submit so queue-wait is part of the tree.
        trace::SpanId trace_root = 0;
        /// Per-name rollup, set under mutex_ at terminal transition.
        std::vector<trace::SpanSummary> spans;
    };
    using JobPtr = std::shared_ptr<Job>;

    void executor_loop();
    void watchdog_loop();
    void run_job(const JobPtr& job);
    void finish_job(const JobPtr& job, JobState state,
                    std::vector<trace::SpanSummary> spans = {});
    /// Drains the global span buffer and extracts the spans whose parent
    /// chain reaches `root` (this job's tree); spans of other in-flight
    /// jobs stay pending for their own harvest.  Returns the job's spans.
    [[nodiscard]] std::vector<trace::Span> harvest_job_trace(
        trace::SpanId root);
    void retire_job_locked(const JobPtr& job);
    [[nodiscard]] JobPtr pop_next_locked();
    [[nodiscard]] JobStatus snapshot_locked(const Job& job) const;
    void write_state_locked();
    [[nodiscard]] std::string spool_path(const Job& job) const;
    [[nodiscard]] std::string trace_path(std::uint64_t job_id) const;

    ServiceConfig config_;
    ProgressHook progress_hook_;
    CompletionHook completion_hook_;

    mutable std::mutex mutex_;
    // The watchdog polls on its own variable: if it shared work_cv_, a
    // submit's notify_one could land on the watchdog instead of an
    // executor and the queued job would never be picked up (lost wakeup).
    std::condition_variable work_cv_;      // executors: queue / stop changes
    std::condition_variable watchdog_cv_;  // watchdog: stop only
    std::condition_variable done_cv_;      // waiters: job reached terminal
    bool draining_ = false;
    bool stop_ = false;
    std::uint64_t next_id_ = 1;
    std::deque<JobPtr> queue_;          // admission order; priority at pop
    /// Every job still queryable: the non-terminal ones plus a bounded
    /// history of terminal ones (config_.history_capacity).
    std::map<std::uint64_t, JobPtr> jobs_;
    /// Non-terminal subset of jobs_: the coalesce scan in submit() and
    /// the watchdog walk this instead of the whole history.
    std::map<std::uint64_t, JobPtr> active_;
    /// Terminal job ids in retirement order -- the eviction queue that
    /// keeps jobs_ bounded.
    std::deque<std::uint64_t> terminal_order_;
    std::size_t running_ = 0;
    /// Completion hooks still executing outside the lock.  wait_idle()
    /// counts these as live work: a caller must be able to destroy
    /// hook-captured state the moment wait_idle() returns.
    std::size_t notifying_ = 0;
    Stats stats_;

    /// LRU result cache: most-recently-used at the front.
    struct CacheEntry {
        std::string key;
        CampaignOutcome outcome;
    };
    std::deque<CacheEntry> cache_;

    /// Spans drained from the global buffer while harvesting one job's
    /// tree but belonging to a *different* in-flight job (executors share
    /// the buffer); kept until that job's harvest claims them.  Bounded:
    /// overflow drops the oldest.
    mutable std::mutex trace_mutex_;
    std::vector<trace::Span> trace_pending_;

    std::vector<std::thread> executors_;
    std::thread watchdog_;
};

}  // namespace glitchmask::service
