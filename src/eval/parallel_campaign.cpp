#include "eval/parallel_campaign.hpp"

#include <stdexcept>
#include <string>

#include "support/env.hpp"

namespace glitchmask::eval {

unsigned resolve_workers(unsigned configured) {
    return configured > 0 ? configured : ThreadPool::default_worker_count();
}

unsigned resolve_lanes(unsigned configured, bool timing_coupling) {
    unsigned lanes = configured;
    if (lanes == 0)
        lanes = static_cast<unsigned>(env_int("GLITCHMASK_LANES", 64));
    if (lanes != 1 && lanes != 64)
        throw std::invalid_argument(
            "campaign config: lanes must be 1 (scalar) or 64 (bitsliced), got " +
            std::to_string(lanes));
    // Data-dependent delays cannot share one event schedule across lanes.
    if (timing_coupling) {
        if (lanes == 64)
            log::info(
                "timing coupling forces the scalar simulator; ignoring "
                "lanes=64");
        return 1;
    }
    return lanes;
}

void validate_campaign_config(std::size_t traces, std::size_t block_size,
                              unsigned lanes) {
    if (traces == 0)
        throw std::invalid_argument(
            "campaign config: traces must be > 0 (a zero budget would "
            "silently produce a zero-block plan)");
    if (block_size == 0)
        throw std::invalid_argument(
            "campaign config: block_size must be > 0 (a zero block size "
            "would silently produce a zero-block plan)");
    if (lanes != 0 && lanes != 1 && lanes != 64 && lanes != 128 &&
        lanes != 256 && lanes != 512)
        throw std::invalid_argument(
            "campaign config: lanes must be 0 (auto), 1 (scalar), 64 "
            "(bitsliced) or 128/256/512 (compiled backend), got " +
            std::to_string(lanes));
}

}  // namespace glitchmask::eval
