#!/usr/bin/env bash
# Reference CI recipe: configure + build + test one or more presets.
# With no arguments the default sweep runs the Release preset, the
# AddressSanitizer preset (heap/stack bugs in the checkpoint and snapshot
# I/O paths would otherwise only surface as flaky corruption), then the
# UBSan preset (the intrinsics-heavy moment kernels and bit-manipulating
# recorders are where signed overflow and misaligned loads would hide);
# pass explicit preset names to run a subset, e.g. `scripts/ci.sh release`
# or `scripts/ci.sh asan tsan ubsan`.  Exits nonzero on any build or test
# failure.
#
# The release and asan legs smoke per-net leakage attribution end to end
# (examples/inspect_gadget trichina --attribute) and rerun the suite with
# GLITCHMASK_BACKEND=compiled, so every campaign-level test also covers
# the compiled replay engine (memory bugs in its wide-lane state would
# otherwise only surface in benches).  Both legs also run the daemon
# chaos smoke (scripts/chaos_smoke.sh): glitchmaskd under seeded
# fault-injection schedules -- EINTR storms, checkpoint ENOSPC, SIGTERM
# mid-campaign -- must complete bit-identically, degrade gracefully, and
# resume from its spool.  The release leg additionally gates
# observability and performance:
#   * one extra ctest pass under GLITCHMASK_LOG=debug (log call sites in
#     the hot paths must never change a result or crash);
#   * one extra ctest pass under GLITCHMASK_SIMD=off, pinning every
#     runtime-dispatched kernel to its portable scalar fallback (the
#     bit-identity tests then prove scalar == vector end to end);
#   * bench/campaign_throughput's telemetry_overhead must stay <= 3%,
#     its trace_off_overhead <= 1% (the disabled span recorder must be
#     free) and trace_overhead <= 5% (block+phase span collection),
#     and its attribution_off_overhead <= 1% (the disabled probe tap
#     must be free);
#   * attribution_overhead <= 30% (the sbox-scoped probe taps), and
#     compiled_speedup_1worker >= 2x (best compiled width vs event-64;
#     the committed single-core reference run shows ~2.8x);
#   * stats_speedup >= 1.5x (the fused bin-vectorized moment fold vs the
#     pre-fusion per-point gather on identical data; the reference run
#     shows ~6x with AVX2).
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ "${#presets[@]}" -eq 0 ]; then
  presets=(release asan ubsan)
fi
for preset in "${presets[@]}"; do
  case "$preset" in
    release|asan|tsan|ubsan) ;;
    *) echo "usage: scripts/ci.sh [release|asan|tsan|ubsan ...]" >&2; exit 2 ;;
  esac
done

jobs="$(nproc 2>/dev/null || echo 2)"

for preset in "${presets[@]}"; do
  echo "==> preset: $preset"
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$jobs"
  ctest --preset "$preset" -j "$jobs"

  if [ "$preset" = "release" ] || [ "$preset" = "asan" ]; then
    builddir="build"
    [ "$preset" = "asan" ] && builddir="build-asan"
    echo "==> $preset extras: attribution smoke (inspect_gadget trichina)"
    (cd "$builddir/examples" &&
      ./inspect_gadget trichina --attribute --top-k 5 > /dev/null)

    echo "==> $preset extras: suite under GLITCHMASK_BACKEND=compiled"
    GLITCHMASK_BACKEND=compiled ctest --preset "$preset" -j "$jobs"

    echo "==> $preset extras: daemon chaos smoke (seeded fault sweep)"
    scripts/chaos_smoke.sh "$builddir"
  fi

  if [ "$preset" = "release" ]; then
    echo "==> release extras: suite under GLITCHMASK_LOG=debug"
    GLITCHMASK_LOG=debug ctest --preset "$preset" -j "$jobs"

    echo "==> release extras: suite under GLITCHMASK_SIMD=off (scalar kernels)"
    GLITCHMASK_SIMD=off ctest --preset "$preset" -j "$jobs"

    echo "==> release extras: bench overhead + speedup gates"
    # 256 traces: large enough that the per-block amortizations (spill
    # staging, checkpoint cadence) are representative and the off-vs-off
    # noise floor sits well under the 1% bar.
    (cd build/bench && GLITCHMASK_TRACES=256 ./campaign_throughput > /dev/null)
    echo "==> release extras: telemetry overhead gate (bar: 3%)"
    overhead="$(sed -n 's/.*"telemetry_overhead": \(-\{0,1\}[0-9.]*\).*/\1/p' \
      build/bench/BENCH_batch_sim.json)"
    if [ -z "$overhead" ]; then
      echo "FAIL: telemetry_overhead missing from BENCH_batch_sim.json" >&2
      exit 1
    fi
    if ! awk -v x="$overhead" 'BEGIN { exit !(x <= 0.03) }'; then
      echo "FAIL: telemetry overhead ${overhead} exceeds the 0.03 bar" >&2
      exit 1
    fi
    echo "telemetry overhead: ${overhead} (<= 0.03)"

    echo "==> release extras: tracing-off overhead gate (bar: 1%)"
    trace_off="$(sed -n 's/.*"trace_off_overhead": \(-\{0,1\}[0-9.]*\).*/\1/p' \
      build/bench/BENCH_batch_sim.json)"
    if [ -z "$trace_off" ]; then
      echo "FAIL: trace_off_overhead missing from BENCH_batch_sim.json" >&2
      exit 1
    fi
    if ! awk -v x="$trace_off" 'BEGIN { exit !(x <= 0.01) }'; then
      echo "FAIL: tracing-off overhead ${trace_off} exceeds the 0.01 bar" >&2
      exit 1
    fi
    echo "tracing-off overhead: ${trace_off} (<= 0.01)"

    echo "==> release extras: tracing-on overhead gate (bar: 5%)"
    trace_on="$(sed -n 's/.*"trace_overhead": \(-\{0,1\}[0-9.]*\).*/\1/p' \
      build/bench/BENCH_batch_sim.json)"
    if [ -z "$trace_on" ]; then
      echo "FAIL: trace_overhead missing from BENCH_batch_sim.json" >&2
      exit 1
    fi
    if ! awk -v x="$trace_on" 'BEGIN { exit !(x <= 0.05) }'; then
      echo "FAIL: tracing overhead ${trace_on} exceeds the 0.05 bar" >&2
      exit 1
    fi
    echo "tracing overhead: ${trace_on} (<= 0.05)"

    echo "==> release extras: attribution-off overhead gate (bar: 1%)"
    attr_off="$(sed -n 's/.*"attribution_off_overhead": \(-\{0,1\}[0-9.]*\).*/\1/p' \
      build/bench/BENCH_batch_sim.json)"
    if [ -z "$attr_off" ]; then
      echo "FAIL: attribution_off_overhead missing from BENCH_batch_sim.json" >&2
      exit 1
    fi
    if ! awk -v x="$attr_off" 'BEGIN { exit !(x <= 0.01) }'; then
      echo "FAIL: attribution-off overhead ${attr_off} exceeds the 0.01 bar" >&2
      exit 1
    fi
    echo "attribution-off overhead: ${attr_off} (<= 0.01)"

    echo "==> release extras: attribution-on overhead gate (bar: 30%)"
    attr_on="$(sed -n 's/.*"attribution_overhead": \(-\{0,1\}[0-9.]*\).*/\1/p' \
      build/bench/BENCH_batch_sim.json)"
    if [ -z "$attr_on" ]; then
      echo "FAIL: attribution_overhead missing from BENCH_batch_sim.json" >&2
      exit 1
    fi
    if ! awk -v x="$attr_on" 'BEGIN { exit !(x <= 0.30) }'; then
      echo "FAIL: attribution overhead ${attr_on} exceeds the 0.30 bar" >&2
      exit 1
    fi
    echo "attribution overhead: ${attr_on} (<= 0.30)"

    echo "==> release extras: compiled-backend speedup gate (bar: 2x)"
    compiled="$(sed -n 's/.*"compiled_speedup_1worker": \(-\{0,1\}[0-9.]*\).*/\1/p' \
      build/bench/BENCH_batch_sim.json)"
    if [ -z "$compiled" ]; then
      echo "FAIL: compiled_speedup_1worker missing from BENCH_batch_sim.json" >&2
      exit 1
    fi
    if ! awk -v x="$compiled" 'BEGIN { exit !(x >= 2.0) }'; then
      echo "FAIL: compiled speedup ${compiled} below the 2.0 bar" >&2
      exit 1
    fi
    echo "compiled speedup: ${compiled} (>= 2.0)"

    echo "==> release extras: statistics-fold speedup gate (bar: 1.5x)"
    stats="$(sed -n 's/.*"stats_speedup": \(-\{0,1\}[0-9.]*\).*/\1/p' \
      build/bench/BENCH_batch_sim.json)"
    if [ -z "$stats" ]; then
      echo "FAIL: stats_speedup missing from BENCH_batch_sim.json" >&2
      exit 1
    fi
    if ! awk -v x="$stats" 'BEGIN { exit !(x >= 1.5) }'; then
      echo "FAIL: statistics-fold speedup ${stats} below the 1.5 bar" >&2
      exit 1
    fi
    echo "statistics-fold speedup: ${stats} (>= 1.5)"
  fi
done
