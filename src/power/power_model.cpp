#include "power/power_model.hpp"

#include <stdexcept>

namespace glitchmask::power {

std::vector<double> net_weights(const Netlist& nl, const PowerConfig& config) {
    std::vector<double> weight(nl.size());
    for (NetId id = 0; id < nl.size(); ++id) {
        weight[id] = config.base_weight +
                     config.fanout_weight * static_cast<double>(nl.fanout(id).size());
        if (nl.cell(id).kind == netlist::CellKind::DelayBuf)
            weight[id] *= config.delaybuf_weight;
    }
    return weight;
}

std::vector<NetId> coupling_partners(const Netlist& nl) {
    std::vector<NetId> partner(nl.size(), netlist::kNoNet);
    for (const netlist::CoupledPair& pair : nl.coupled_pairs()) {
        if (partner[pair.a] == netlist::kNoNet) partner[pair.a] = pair.b;
        if (partner[pair.b] == netlist::kNoNet) partner[pair.b] = pair.a;
    }
    return partner;
}

PowerRecorder::PowerRecorder(const Netlist& nl, PowerConfig config)
    : config_(config) {
    if (!nl.frozen()) throw std::runtime_error("PowerRecorder: netlist not frozen");
    weight_ = net_weights(nl, config);
    partner_ = coupling_partners(nl);
}

void PowerRecorder::begin_trace(std::size_t bins) {
    trace_.assign(bins, 0.0);
    trace_toggles_ = 0;
}

void PowerRecorder::on_toggle(NetId net, TimePs time, bool new_value) {
    ++trace_toggles_;
    ++total_toggles_;
    const std::size_t bin = static_cast<std::size_t>(time / config_.bin_ps);
    if (bin >= trace_.size()) return;
    double energy = weight_[net];
    if (config_.coupling_epsilon != 0.0 && partner_[net] != netlist::kNoNet &&
        engine_ != nullptr) {
        // Opposite neighbour level: the cross capacitance sees a doubled
        // swing (more energy); same level: part of the load is shielded.
        const bool neighbour = engine_->value(partner_[net]);
        energy += (neighbour != new_value) ? config_.coupling_epsilon
                                           : -config_.coupling_epsilon;
    }
    trace_[bin] += energy;
}

std::vector<double> PowerRecorder::noisy_trace(Xoshiro256& rng,
                                               double sigma) const {
    std::vector<double> noisy;
    noisy_trace_into(rng, sigma, noisy);
    return noisy;
}

void PowerRecorder::noisy_trace_into(Xoshiro256& rng, double sigma,
                                     std::vector<double>& out) const {
    out.assign(trace_.begin(), trace_.end());
    if (sigma > 0.0)
        for (double& sample : out) sample += rng.gaussian(0.0, sigma);
}

}  // namespace glitchmask::power
