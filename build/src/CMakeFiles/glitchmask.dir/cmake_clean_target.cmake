file(REMOVE_RECURSE
  "libglitchmask.a"
)
