// Signal-to-noise ratio of a leakage sample with respect to a discrete
// intermediate value:  SNR = Var_v( E[x | v] ) / E_v( Var[x | v] ).
// Used by the composition tests to quantify how strongly a net's
// activity depends on an unshared value, and by EXPERIMENTS.md to relate
// our synthetic noise sigma to the paper's trace counts.
#pragma once

#include <cstddef>
#include <vector>

namespace glitchmask::leakage {

class SnrAccumulator {
public:
    explicit SnrAccumulator(std::size_t classes);

    void add(std::size_t cls, double x);

    /// Variance of class means over mean of class variances; 0 while any
    /// populated class is degenerate or fewer than two classes have data.
    [[nodiscard]] double snr() const;

    [[nodiscard]] double class_mean(std::size_t cls) const;
    [[nodiscard]] double class_count(std::size_t cls) const;
    [[nodiscard]] std::size_t classes() const noexcept { return mean_.size(); }

private:
    std::vector<double> n_;
    std::vector<double> mean_;
    std::vector<double> m2_;
};

}  // namespace glitchmask::leakage
