#include <gtest/gtest.h>

#include <vector>

#include "netlist/builder.hpp"
#include "netlist/netlist.hpp"
#include "power/power_model.hpp"
#include "sim/clocked.hpp"
#include "sim/delay_model.hpp"
#include "sim/functional.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace glitchmask::sim {
namespace {

using netlist::Bus;
using netlist::CellKind;
using netlist::kNoNet;
using netlist::NetId;
using netlist::Netlist;

/// Records every committed transition.
class RecordingSink final : public ToggleSink {
public:
    struct Toggle {
        NetId net;
        TimePs time;
        bool value;
    };
    void on_toggle(NetId net, TimePs time, bool value) override {
        toggles.push_back({net, time, value});
    }
    [[nodiscard]] int count(NetId net) const {
        int n = 0;
        for (const Toggle& t : toggles) n += (t.net == net);
        return n;
    }
    std::vector<Toggle> toggles;
};

/// Full adder used by several tests: sum = a^b^cin, cout = maj(a,b,cin).
struct FullAdder {
    Netlist nl;
    NetId a, b, cin, sum, cout;
    FullAdder() {
        a = nl.input("a");
        b = nl.input("b");
        cin = nl.input("cin");
        const NetId ab = nl.xor2(a, b);
        sum = nl.xor2(ab, cin);
        const NetId t1 = nl.and2(a, b);
        const NetId t2 = nl.and2(ab, cin);
        cout = nl.or2(t1, t2);
        nl.freeze();
    }
};

TEST(ZeroDelay, FullAdderExhaustive) {
    FullAdder fa;
    ZeroDelaySim sim(fa.nl);
    for (unsigned v = 0; v < 8; ++v) {
        sim.set_input(fa.a, (v & 1) != 0);
        sim.set_input(fa.b, (v & 2) != 0);
        sim.set_input(fa.cin, (v & 4) != 0);
        sim.step();
        const unsigned total = (v & 1) + ((v >> 1) & 1) + ((v >> 2) & 1);
        EXPECT_EQ(sim.value(fa.sum), (total & 1) != 0) << "v=" << v;
        EXPECT_EQ(sim.value(fa.cout), total >= 2) << "v=" << v;
    }
}

TEST(ZeroDelay, FlopSamplesOnlyWhenEnabled) {
    Netlist nl;
    const NetId d = nl.input("d");
    const NetId q = nl.dff(d, /*enable=*/1);
    nl.freeze();
    ZeroDelaySim sim(nl);
    sim.set_input(d, true);
    sim.step();  // enable off: holds 0 (input applied after sampling)
    EXPECT_FALSE(sim.value(q));
    sim.step();
    EXPECT_FALSE(sim.value(q));
    sim.set_enable(1, true);
    sim.step();
    EXPECT_TRUE(sim.value(q));
    sim.set_enable(1, false);
    sim.set_input(d, false);
    sim.step(3);
    EXPECT_TRUE(sim.value(q));  // held
}

TEST(ZeroDelay, ResetOverridesEnable) {
    Netlist nl;
    const NetId d = nl.input("d");
    const NetId q = nl.dff(d, /*enable=*/1, /*reset=*/2);
    nl.freeze();
    ZeroDelaySim sim(nl);
    sim.set_enable(1, true);
    sim.set_input(d, true);
    sim.step(2);
    EXPECT_TRUE(sim.value(q));
    sim.set_reset(2, true);
    sim.step();
    EXPECT_FALSE(sim.value(q));
}

TEST(ZeroDelay, CounterFeedback) {
    // Toggle flop: q <= !q every cycle.
    Netlist nl;
    const NetId q = nl.dff_floating();
    const NetId nq = nl.inv(q);
    nl.connect_flop(q, nq);
    nl.freeze();
    ZeroDelaySim sim(nl);
    for (int cycle = 0; cycle < 6; ++cycle) {
        EXPECT_EQ(sim.value(q), cycle % 2 == 1) << "cycle=" << cycle;
        sim.step();
    }
}

TEST(EventSim, InitializeComputesConsistentState) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId n = nl.inv(a);
    const NetId k = nl.xnor2(a, n);
    nl.freeze();
    const DelayModel dm(nl, DelayConfig::spartan6());
    EventSimulator sim(nl, dm);
    EXPECT_FALSE(sim.value(a));
    EXPECT_TRUE(sim.value(n));   // inv(0) = 1 settled without events
    EXPECT_FALSE(sim.value(k));  // xnor(0,1) = 0
}

TEST(EventSim, SteadyStateMatchesZeroDelay) {
    // Property: after quiescence the event simulator's settled values must
    // equal the functional simulator's, for random DAGs and random inputs.
    Xoshiro256 rng(2024);
    for (int trial = 0; trial < 20; ++trial) {
        Netlist nl;
        std::vector<NetId> pool;
        Bus inputs = netlist::input_bus(nl, "in", 6);
        for (const NetId i : inputs) pool.push_back(i);
        for (int g = 0; g < 40; ++g) {
            const NetId a = pool[rng.below(pool.size())];
            const NetId b = pool[rng.below(pool.size())];
            NetId out = kNoNet;
            switch (rng.below(6)) {
                case 0: out = nl.and2(a, b); break;
                case 1: out = nl.or2(a, b); break;
                case 2: out = nl.xor2(a, b); break;
                case 3: out = nl.nand2(a, b); break;
                case 4: out = nl.inv(a); break;
                default: out = nl.xnor2(a, b); break;
            }
            pool.push_back(out);
        }
        nl.freeze();

        DelayConfig config = DelayConfig::spartan6();
        config.seed = 77 + trial;
        const DelayModel dm(nl, config);
        EventSimulator esim(nl, dm);
        ZeroDelaySim zsim(nl);

        const std::uint64_t stimulus = rng.bits(6);
        for (std::size_t i = 0; i < inputs.size(); ++i) {
            const bool v = ((stimulus >> i) & 1) != 0;
            esim.drive(inputs[i], v, 0);
            zsim.set_input(inputs[i], v);
        }
        esim.run_to_quiescence();
        zsim.step();
        for (const NetId net : pool)
            ASSERT_EQ(esim.value(net), zsim.value(net))
                << "trial=" << trial << " net=" << net;
    }
}

TEST(EventSim, ReconvergentPathGlitches) {
    // z = xor(a, delay_chain(a)): a single input transition must produce a
    // transient pulse on z (two commits) because the two paths reconverge
    // with very different delays.
    Netlist nl;
    const NetId a = nl.input("a");
    const netlist::DelayChain slow = netlist::delay_units(nl, a, 1, 10);
    const NetId z = nl.xor2(a, slow.out);
    nl.freeze();
    const DelayModel dm(nl, DelayConfig::deterministic());
    EventSimulator sim(nl, dm);
    RecordingSink sink;
    sim.set_sink(&sink);
    sim.drive(a, true, 1000);
    sim.run_to_quiescence();
    EXPECT_EQ(sink.count(z), 2) << "expected a glitch pulse on z";
    EXPECT_FALSE(sim.value(z));  // settles back to 0
}

TEST(EventSim, NoGlitchWhenPathsBalanced) {
    // z = xor(a, buf(a)) with deterministic delays: the buffer skew still
    // produces a 150 ps pulse -- but z through two *identical* delay
    // chains cancels to zero observable pulse only in value, not timing.
    // The meaningful no-glitch case: single path, z = inv(a).
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId z = nl.inv(a);
    nl.freeze();
    const DelayModel dm(nl, DelayConfig::deterministic());
    EventSimulator sim(nl, dm);
    RecordingSink sink;
    sim.set_sink(&sink);
    sim.drive(a, true, 1000);
    sim.run_to_quiescence();
    EXPECT_EQ(sink.count(z), 1);
    EXPECT_FALSE(sim.value(z));
}

TEST(EventSim, ArrivalOrderFollowsWireDelays) {
    // With randomized wire delays two fanout branches of the same source
    // see the transition at different times; the later XOR input produces
    // the final commit.  We only check that total commits stay bounded
    // and the settled value is correct.
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    const NetId z = nl.xor2(a, b);
    nl.freeze();
    DelayConfig config = DelayConfig::spartan6();
    config.seed = 5;
    const DelayModel dm(nl, config);
    EventSimulator sim(nl, dm);
    RecordingSink sink;
    sim.set_sink(&sink);
    sim.drive(a, true, 0);
    sim.drive(b, true, 5000);  // well beyond any inertial window
    sim.run_to_quiescence();
    // a and b arrive skewed: z pulses to 1 and back to 0.
    EXPECT_EQ(sink.count(z), 2);
    EXPECT_FALSE(sim.value(z));
}

TEST(EventSim, RunUntilStopsBeforeBoundary) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId z = nl.inv(a);
    nl.freeze();
    const DelayModel dm(nl, DelayConfig::deterministic());
    EventSimulator sim(nl, dm);
    sim.drive(a, true, 5000);
    sim.run_until(5000);  // strictly-before semantics
    EXPECT_FALSE(sim.value(a));
    sim.run_until(10000);
    EXPECT_TRUE(sim.value(a));
    EXPECT_FALSE(sim.value(z));
}

TEST(Clocked, RegisterPipeline) {
    Netlist nl;
    const NetId d = nl.input("d");
    const NetId q1 = nl.dff(d, 0, 0, "q1");
    const NetId q2 = nl.dff(q1, 0, 0, "q2");
    nl.freeze();
    const DelayModel dm(nl, DelayConfig::spartan6());
    ClockedSim sim(nl, dm);
    sim.set_input(d, true);
    sim.step();  // input launches after this edge
    EXPECT_FALSE(sim.value(q1));
    sim.step();  // q1 samples the new input
    EXPECT_TRUE(sim.value(q1));
    EXPECT_FALSE(sim.value(q2));
    sim.step();
    EXPECT_TRUE(sim.value(q2));
}

TEST(Clocked, MatchesZeroDelayOnSequentialCircuit) {
    // LFSR-ish: s0 <= s1, s1 <= s0 ^ in.
    Netlist nl;
    const NetId in = nl.input("in");
    const NetId s0 = nl.dff_floating(0, 0, "s0");
    const NetId s1 = nl.dff_floating(0, 0, "s1");
    nl.connect_flop(s0, s1);
    const NetId fb = nl.xor2(s0, in);
    nl.connect_flop(s1, fb);
    nl.freeze();

    const DelayModel dm(nl, DelayConfig::spartan6());
    ClockedSim csim(nl, dm);
    ZeroDelaySim zsim(nl);
    Xoshiro256 rng(3);
    for (int cycle = 0; cycle < 40; ++cycle) {
        const bool v = rng.bit();
        csim.set_input(in, v);
        zsim.set_input(in, v);
        csim.step();
        zsim.step();
        ASSERT_EQ(csim.value(s0), zsim.value(s0)) << "cycle " << cycle;
        ASSERT_EQ(csim.value(s1), zsim.value(s1)) << "cycle " << cycle;
    }
}

TEST(Clocked, EnableGroupsStartDisabled) {
    Netlist nl;
    const NetId d = nl.input("d");
    const NetId q = nl.dff(d, /*enable=*/2);
    nl.freeze();
    const DelayModel dm(nl, DelayConfig::spartan6());
    ClockedSim sim(nl, dm);
    sim.set_input(d, true);
    sim.step(3);
    EXPECT_FALSE(sim.value(q));
    sim.set_enable(2, true);
    sim.step();
    EXPECT_TRUE(sim.value(q));
}

TEST(Clocked, RestartReturnsToResetState) {
    Netlist nl;
    const NetId d = nl.input("d");
    const NetId q = nl.dff(d);
    nl.freeze();
    const DelayModel dm(nl, DelayConfig::spartan6());
    ClockedSim sim(nl, dm);
    sim.set_input(d, true);
    sim.step(2);
    EXPECT_TRUE(sim.value(q));
    sim.restart();
    EXPECT_EQ(sim.cycle(), 0u);
    EXPECT_FALSE(sim.value(q));
}

TEST(Clocked, ReadAndWriteBuses) {
    Netlist nl;
    const Bus d = netlist::input_bus(nl, "d", 8);
    const Bus q = netlist::register_bank(nl, d);
    nl.freeze();
    const DelayModel dm(nl, DelayConfig::spartan6());
    ClockedSim sim(nl, dm);
    sim.set_input_bus(d, 0xA5);
    sim.step(2);
    EXPECT_EQ(sim.read_bus(q), 0xA5u);
}

TEST(Power, TogglesLandInCycleBins) {
    Netlist nl;
    const NetId d = nl.input("d");
    const NetId q = nl.dff(d);
    (void)nl.inv(q);
    nl.freeze();
    const DelayModel dm(nl, DelayConfig::spartan6());
    ClockedSim sim(nl, dm);
    power::PowerRecorder recorder(nl, power::PowerConfig{});
    recorder.begin_trace(6);
    sim.engine().set_sink(&recorder);

    sim.set_input(d, true);
    sim.step(6);
    const std::vector<double>& trace = recorder.trace();
    ASSERT_EQ(trace.size(), 6u);
    EXPECT_GT(trace[0], 0.0);   // d rises right after the first edge
    EXPECT_GT(trace[1], 0.0);   // q samples and the inverter follows
    EXPECT_EQ(trace[3], 0.0);   // steady state afterwards
    EXPECT_EQ(trace[4], 0.0);
}

TEST(Power, NoisyTraceAddsGaussian) {
    Netlist nl;
    const NetId d = nl.input("d");
    (void)nl.inv(d);
    nl.freeze();
    power::PowerRecorder recorder(nl, power::PowerConfig{});
    recorder.begin_trace(4);
    Xoshiro256 rng(1);
    const std::vector<double> noisy = recorder.noisy_trace(rng, 1.0);
    ASSERT_EQ(noisy.size(), 4u);
    bool any_nonzero = false;
    for (const double v : noisy) any_nonzero |= (v != 0.0);
    EXPECT_TRUE(any_nonzero);
}

TEST(Power, FanoutIncreasesWeight) {
    Netlist nl;
    const NetId a = nl.input("a");
    (void)nl.inv(a);
    (void)nl.inv(a);
    (void)nl.inv(a);
    nl.freeze();
    const DelayModel dm(nl, DelayConfig::deterministic());
    EventSimulator sim(nl, dm);
    power::PowerConfig config;
    config.base_weight = 1.0;
    config.fanout_weight = 0.5;
    power::PowerRecorder recorder(nl, config);
    recorder.begin_trace(1);
    sim.set_sink(&recorder);
    sim.drive(a, true, 0);
    sim.run_to_quiescence();
    // a toggle: 1 + 0.5*3; three inverter toggles: 3 * (1 + 0).
    EXPECT_NEAR(recorder.trace()[0], 2.5 + 3.0, 1e-9);
}

}  // namespace
}  // namespace glitchmask::sim
