#include "obs/regression.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <optional>
#include <string_view>

#include "obs/diff.hpp"

namespace glitchmask::obs {

namespace {

bool contains(const std::string& haystack, const char* needle) {
    return haystack.find(needle) != std::string::npos;
}

double median_of(std::vector<double> values) {
    std::sort(values.begin(), values.end());
    const std::size_t n = values.size();
    if (n == 0) return 0.0;
    return n % 2 == 1 ? values[n / 2]
                      : (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

/// The candidate-side value of one judged metric in a history entry;
/// nullopt when that entry never recorded it (older schema, different
/// producer) -- absent is "no sample", never "zero".
std::optional<double> metric_value(const LedgerEntry& entry,
                                   const std::string& name) {
    if (name == "wall_seconds") return entry.wall_seconds;
    if (name == "cpu_seconds") return entry.cpu_seconds;
    constexpr std::string_view kPhasePrefix = "phase_cpu:";
    if (name.rfind(kPhasePrefix, 0) == 0) {
        const std::string phase = name.substr(kPhasePrefix.size());
        for (const LedgerPhase& p : entry.phases)
            if (p.name == phase) return p.cpu_seconds;
        return std::nullopt;
    }
    for (const auto& [metric, value] : entry.metrics)
        if (metric == name) return value;
    return std::nullopt;
}

std::string format_value(double value) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.6g", value);
    return buffer;
}

}  // namespace

bool metric_higher_is_better(const std::string& name) {
    return contains(name, "per_sec") || contains(name, "speedup") ||
           name == "deterministic";
}

bool metric_is_leakage(const std::string& name) {
    return name.rfind("max_abs_t", 0) == 0 || name == "toggles" ||
           name.rfind("net:", 0) == 0;
}

MetricJudgement judge_metric(const std::string& name, double value,
                             const std::vector<double>& samples,
                             const RegressionRule& rule) {
    MetricJudgement judgement;
    judgement.name = name;
    judgement.value = value;
    judgement.history = samples.size();
    if (samples.size() < rule.min_history) {
        judgement.verdict = MetricVerdict::kNoHistory;
        return judgement;
    }
    judgement.median = median_of(samples);
    std::vector<double> deviations;
    deviations.reserve(samples.size());
    for (const double sample : samples)
        deviations.push_back(std::fabs(sample - judgement.median));
    judgement.mad = median_of(std::move(deviations));
    judgement.threshold = std::max(
        {rule.mad_k * judgement.mad,
         rule.deadband_rel * std::fabs(judgement.median), rule.deadband_abs});
    const double delta = value - judgement.median;
    if (std::fabs(delta) <= judgement.threshold) {
        judgement.verdict = MetricVerdict::kStable;
    } else if (metric_higher_is_better(name)) {
        judgement.verdict =
            delta > 0 ? MetricVerdict::kImproved : MetricVerdict::kRegressed;
    } else {
        judgement.verdict =
            delta > 0 ? MetricVerdict::kRegressed : MetricVerdict::kImproved;
    }
    return judgement;
}

RegressionReport evaluate_candidate(const LedgerEntry& candidate,
                                    std::vector<LedgerEntry> history,
                                    const RegressionRule& rule) {
    RegressionReport report;
    report.fingerprint = fingerprint_key(candidate.fingerprint);
    report.campaign = candidate.campaign;

    // Only finished runs of the *same* campaign identity are evidence.
    std::erase_if(history, [&](const LedgerEntry& entry) {
        return !(entry.fingerprint == candidate.fingerprint) ||
               entry.status != "completed";
    });
    // Canonical order makes the whole evaluation a pure function of the
    // history *set*: the window and the leakage baseline land on the same
    // entries for any arrival interleaving.
    sort_ledger(history);
    if (history.size() > rule.window)
        history.erase(history.begin(),
                      history.end() - static_cast<std::ptrdiff_t>(rule.window));

    // Leakage: bit-exact vs the most recent history entry -- noise rules
    // never apply to deterministic facts.
    if (!history.empty()) {
        report.leakage_checked = true;
        const EntryDiff diff = diff_entries(history.back(), candidate);
        report.leakage_changed = !diff.leakage_identical;
        for (const FieldDiff& f : diff.leakage)
            if (!f.bit_identical) report.leakage_changes.push_back(f.name);
        for (const NetChange& change : diff.net_changes)
            report.leakage_changes.push_back(
                std::string(change.entered ? "net entered: " : "net left: ") +
                change.name);
    }

    // Perf metrics, fixed order: the two clocks, the candidate's phases,
    // then its remaining (non-leakage) metrics.
    std::vector<std::string> names = {"wall_seconds", "cpu_seconds"};
    for (const LedgerPhase& phase : candidate.phases)
        names.push_back("phase_cpu:" + phase.name);
    for (const auto& [name, value] : candidate.metrics)
        if (!metric_is_leakage(name)) names.push_back(name);

    for (const std::string& name : names) {
        const std::optional<double> value = metric_value(candidate, name);
        if (!value.has_value()) continue;
        std::vector<double> samples;
        samples.reserve(history.size());
        for (const LedgerEntry& entry : history)
            if (const std::optional<double> sample = metric_value(entry, name))
                samples.push_back(*sample);
        report.metrics.push_back(judge_metric(name, *value, samples, rule));
    }

    report.regressed = report.leakage_changed;
    for (const MetricJudgement& judgement : report.metrics)
        report.regressed |= judgement.verdict == MetricVerdict::kRegressed;
    return report;
}

std::string render_regression_markdown(const RegressionReport& report) {
    std::string out;
    out += "## Regression radar: " + report.campaign + "\n\n";
    out += "- fingerprint: " + report.fingerprint + "\n";
    if (!report.leakage_checked) {
        out += "- leakage: no history to compare against\n";
    } else if (report.leakage_changed) {
        out += "- leakage: **CHANGED** (";
        for (std::size_t i = 0; i < report.leakage_changes.size(); ++i) {
            if (i != 0) out += ", ";
            out += report.leakage_changes[i];
        }
        out += ")\n";
    } else {
        out += "- leakage: bit-identical to the most recent run\n";
    }
    out += std::string("- overall: ") +
           (report.regressed ? "**REGRESSED**" : "ok") + "\n\n";
    out += "| metric | value | median | MAD | threshold | n | verdict |\n";
    out += "|---|---|---|---|---|---|---|\n";
    for (const MetricJudgement& j : report.metrics) {
        out += "| " + j.name + " | " + format_value(j.value) + " | " +
               format_value(j.median) + " | " + format_value(j.mad) + " | " +
               format_value(j.threshold) + " | " + std::to_string(j.history) +
               " | ";
        out += j.verdict == MetricVerdict::kRegressed
                   ? "**regressed**"
                   : metric_verdict_name(j.verdict);
        out += " |\n";
    }
    return out;
}

}  // namespace glitchmask::obs
