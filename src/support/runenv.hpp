// Run attribution: who/where/when identifiers stamped on results that
// outlive the process.
//
// The cross-run ledger (obs/ledger.hpp) compares campaigns *across*
// revisions and machines, so every durable artifact -- run reports, bench
// JSON, ledger entries -- carries (git revision, hostname, UTC timestamp).
// All three are best-effort: an unknown value reads as "" and never
// fails a run.  Each has an environment override so CI can pin them for
// byte-identical fixtures:
//
//   GLITCHMASK_GIT_REVISION  overrides git_revision()
//   GLITCHMASK_HOST          overrides host_name()
//   GLITCHMASK_UTC           overrides utc_timestamp()
//
// git_revision() never spawns a subprocess: it walks up from the working
// directory to the nearest .git (directory or worktree file), resolves
// HEAD through one level of ref indirection, and falls back to
// packed-refs -- milliseconds, no fork, works in sandboxes without a git
// binary.
#pragma once

#include <string>

namespace glitchmask {

/// 40-hex commit id of the checkout containing the working directory, or
/// "" when none can be resolved.  $GLITCHMASK_GIT_REVISION wins.
[[nodiscard]] std::string git_revision();

/// gethostname(), or "unknown" when it fails.  $GLITCHMASK_HOST wins.
[[nodiscard]] std::string host_name();

/// Current time as "YYYY-MM-DDTHH:MM:SSZ" (UTC, second resolution --
/// lexicographic order is chronological order, which the ledger's
/// history ordering relies on).  $GLITCHMASK_UTC wins.
[[nodiscard]] std::string utc_timestamp();

}  // namespace glitchmask
