// VCD (Value Change Dump) waveform writer.
//
// A ToggleSink that streams every committed net transition into a
// standard VCD file, viewable in GTKWave & friends.  Useful for debugging
// the arrival-order properties the paper's gadgets live on: the glitches,
// the DelayUnit separations, and the FSM enable schedules are all plainly
// visible in the waveform.
//
// Either dump everything or pass an explicit watch list (recommended for
// the DES cores -- 10k nets make heavy files).
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"

namespace glitchmask::sim {

class VcdWriter final : public ToggleSink {
public:
    /// Dumps all nets of `nl` to `path`.  Throws on I/O error.
    VcdWriter(const netlist::Netlist& nl, const std::string& path);

    /// Dumps only `watch` (ids into `nl`).
    VcdWriter(const netlist::Netlist& nl, const std::string& path,
              const std::vector<netlist::NetId>& watch);

    void on_toggle(netlist::NetId net, TimePs time, bool value) override;

    /// Emits the initial $dumpvars block with the given values; call once
    /// after the simulator has been initialized (all-zero reset state is
    /// assumed when never called).
    void dump_initial(const EventSimulator& sim);

    /// Flushes and closes the file, throwing std::runtime_error if any
    /// write (including the flush) failed -- a silently truncated dump
    /// looks like a clean simulation end in the viewer.  The destructor
    /// closes too but swallows the error.
    void close();

    ~VcdWriter() override;

private:
    void write_header(const netlist::Netlist& nl);
    [[nodiscard]] const std::string& code_of(netlist::NetId net) const {
        return codes_[net];
    }

    std::ofstream out_;
    std::vector<std::string> codes_;   // empty string = not watched
    std::vector<netlist::NetId> watch_;
    TimePs last_time_ = ~TimePs{0};
};

}  // namespace glitchmask::sim
