// Torn-write-proof file replacement.
//
// A checkpoint that can be half-written is worse than none: a campaign
// killed mid-write would resume from garbage.  atomic_write_file() writes
// to `<path>.tmp`, fsyncs the data, renames over `path`, and fsyncs the
// containing directory -- on POSIX the rename is atomic, so a reader (or
// a resuming campaign) only ever sees the complete old file or the
// complete new one.  Failures throw CampaignError{IoFailure}.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace glitchmask {

/// Atomically replaces `path` with `bytes` (temp file + fsync + rename +
/// directory fsync).  Throws CampaignError{IoFailure} on any failure; the
/// previous file, if any, is left intact in that case.
void atomic_write_file(const std::string& path,
                       std::span<const std::uint8_t> bytes);

/// Reads the whole file, or nullopt when it does not exist.  Any other
/// failure (permissions, I/O error) throws CampaignError{IoFailure}.
[[nodiscard]] std::optional<std::vector<std::uint8_t>> read_file_if_exists(
    const std::string& path);

}  // namespace glitchmask
