#include "leakage/attribution.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "leakage/ttest.hpp"
#include "support/table.hpp"

namespace glitchmask::leakage {

// ----- plan ---------------------------------------------------------------

AttributionPlan::AttributionPlan(const netlist::Netlist& nl,
                                 std::size_t windows, sim::TimePs window_ps,
                                 std::string_view scope)
    : windows_(windows), window_ps_(window_ps), scope_(scope) {
    if (windows == 0 || window_ps <= 0)
        throw std::invalid_argument(
            "AttributionPlan: windows and window_ps must be positive");
    probe_of_.assign(nl.size(), kUnwatched);
    for (netlist::NetId id = 0; id < nl.size(); ++id) {
        if (!scope_.empty()) {
            const std::string& module = nl.module_names()[nl.module_of(id)];
            if (module.find(scope_) == std::string::npos) continue;
        }
        probe_of_[id] = static_cast<std::uint32_t>(nets_.size());
        nets_.push_back(id);
    }
}

// ----- accumulator --------------------------------------------------------

void AttributionAccumulator::merge(const AttributionAccumulator& other) {
    if (points_.size() != other.points_.size())
        throw std::invalid_argument(
            "AttributionAccumulator::merge: point count mismatch");
    traces_fixed += other.traces_fixed;
    traces_random += other.traces_random;
    for (std::size_t i = 0; i < points_.size(); ++i) {
        PointStats& into = points_[i];
        const PointStats& from = other.points_[i];
        into.sum_fixed += from.sum_fixed;
        into.sumsq_fixed += from.sumsq_fixed;
        into.sum_random += from.sum_random;
        into.sumsq_random += from.sumsq_random;
        into.toggles += from.toggles;
        into.glitches += from.glitches;
    }
}

void AttributionAccumulator::encode(SnapshotWriter& out) const {
    out.u64(traces_fixed);
    out.u64(traces_random);
    out.u64(points_.size());
    for (const PointStats& p : points_) {
        out.f64(p.sum_fixed);
        out.f64(p.sumsq_fixed);
        out.f64(p.sum_random);
        out.f64(p.sumsq_random);
        out.u64(p.toggles);
        out.u64(p.glitches);
    }
}

AttributionAccumulator AttributionAccumulator::decode(SnapshotReader& in) {
    AttributionAccumulator acc;
    acc.traces_fixed = in.u64();
    acc.traces_random = in.u64();
    const std::uint64_t points = in.u64();
    acc.points_.resize(points);
    for (PointStats& p : acc.points_) {
        p.sum_fixed = in.f64();
        p.sumsq_fixed = in.f64();
        p.sum_random = in.f64();
        p.sumsq_random = in.f64();
        p.toggles = in.u64();
        p.glitches = in.u64();
    }
    return acc;
}

// ----- scalar probe -------------------------------------------------------

AttributionProbe::AttributionProbe(const AttributionPlan& plan,
                                   sim::ToggleSink* next)
    : plan_(plan), next_(next) {
    stamp_.assign(plan.points(), 0);
    count_.assign(plan.points(), 0);
}

void AttributionProbe::begin_trace() {
    touched_.clear();
    if (++epoch_ == 0) {  // u32 wrap: stale stamps could alias epoch 0
        std::fill(stamp_.begin(), stamp_.end(), 0u);
        epoch_ = 1;
    }
    cur_window_ = 0;
    window_end_ = plan_.window_ps();
}

void AttributionProbe::on_toggle(netlist::NetId net, sim::TimePs time,
                                 bool value) {
    if (next_ != nullptr) next_->on_toggle(net, time, value);
    const std::uint32_t probe = plan_.probe_of(net);
    if (probe == AttributionPlan::kUnwatched) return;
    if (cur_window_ >= plan_.windows()) return;
    while (time >= window_end_) {  // commit times never decrease in a trace
        window_end_ += plan_.window_ps();
        if (++cur_window_ >= plan_.windows()) return;
    }
    const std::size_t point = plan_.point_index(probe, cur_window_);
    if (stamp_[point] != epoch_) {
        stamp_[point] = epoch_;
        count_[point] = 1;
        touched_.push_back(static_cast<std::uint32_t>(point));
    } else if (count_[point] != 255) {
        ++count_[point];
    }
}

void AttributionProbe::fold_trace(bool fixed, AttributionAccumulator& acc) {
    if (fixed)
        ++acc.traces_fixed;
    else
        ++acc.traces_random;
    for (const std::uint32_t point : touched_) {
        const std::uint8_t count = count_[point];
        const double v = static_cast<double>(count);
        PointStats& p = acc.point(point);
        if (fixed) {
            p.sum_fixed += v;
            p.sumsq_fixed += v * v;
        } else {
            p.sum_random += v;
            p.sumsq_random += v * v;
        }
        p.toggles += count;
        p.glitches += count - 1u;
    }
    begin_trace();
}

// ----- batch probe --------------------------------------------------------

BatchAttributionProbe::BatchAttributionProbe(const AttributionPlan& plan,
                                             sim::BatchToggleSink* next)
    : plan_(plan), next_(next) {
    stamp_slot_.assign(plan.points(), 0);
}

void BatchAttributionProbe::begin_group(std::uint64_t fixed_mask,
                                        unsigned count,
                                        AttributionAccumulator& acc) {
    // A new fold target (or a u32-headroom limit: sumsq grows by at most
    // 64 * 255^2 per group, so ~1000 groups fit) forces a spill of the
    // staged subtotals first.
    if (acc_ != nullptr && (acc_ != &acc || groups_in_block_ >= 1000))
        spill_block();
    if (block_.empty()) block_.assign(plan_.points() * 5, 0u);
    touched_.clear();
    if (++epoch_ == 0) {
        std::fill(stamp_slot_.begin(), stamp_slot_.end(), std::uint64_t{0});
        epoch_ = 1;
    }
    cur_window_ = 0;
    window_end_ = plan_.window_ps();
    fixed_mask_ = fixed_mask;
    for (unsigned lane = 0; lane < sim::kBatchLanes; ++lane)
        class_of_[lane] = static_cast<std::uint8_t>((fixed_mask >> lane) & 1u);
    count_ = count;
    acc_ = &acc;
}

void BatchAttributionProbe::on_toggle(netlist::NetId net, sim::TimePs time,
                                      std::uint64_t values,
                                      std::uint64_t toggled) {
    if (next_ != nullptr) next_->on_toggle(net, time, values, toggled);
    const std::uint32_t probe = plan_.probe_of(net);
    if (probe == AttributionPlan::kUnwatched) return;
    if (cur_window_ >= plan_.windows()) return;
    if (time >= window_end_) {  // commit times never decrease in a group
        // The cursor leaves one or more windows behind: their counters
        // are final, so fold them while they are still cache-hot and
        // recycle their arena slots for the windows ahead.
        flush_windows();
        do {
            window_end_ += plan_.window_ps();
            if (++cur_window_ >= plan_.windows()) return;
        } while (time >= window_end_);
    }
    const std::size_t point = plan_.point_index(probe, cur_window_);
    const std::uint64_t entry = stamp_slot_[point];
    std::uint32_t slot = static_cast<std::uint32_t>(entry);
    if (static_cast<std::uint32_t>(entry >> 32) != epoch_) {
        slot = static_cast<std::uint32_t>(touched_.size());
        stamp_slot_[point] = (std::uint64_t{epoch_} << 32) | slot;
        touched_.push_back(static_cast<std::uint32_t>(point));
        if (arena_.size() < (slot + 1u) * std::size_t{sim::kBatchLanes})
            arena_.resize((slot + 1u) * std::size_t{sim::kBatchLanes});
        std::fill_n(arena_.begin() + slot * std::size_t{sim::kBatchLanes},
                    sim::kBatchLanes, std::uint8_t{0});
    }
    // SWAR deposit, 8 lane counters per step: spread the mask byte to one
    // 0/1 increment per counter byte, then suppress increments for bytes
    // already saturated at 255.  Both byte tests are exact (no borrow
    // artifacts): a byte of `v` is nonzero iff the high bit of
    // ((v & 0x7f..) + 0x7f..) | v is set.
    std::uint8_t* counts =
        arena_.data() + slot * std::size_t{sim::kBatchLanes};
    constexpr std::uint64_t kLow7 = 0x7F7F7F7F7F7F7F7Full;
    constexpr std::uint64_t kHigh = 0x8080808080808080ull;
    // Only visit the nonzero bytes of the mask (masks are sparse: schedule
    // groups split lanes by mark time, so most commits touch 1-2 bytes).
    std::uint64_t nz = ((((toggled & kLow7) + kLow7) | toggled) & kHigh);
    while (nz != 0) {
        const unsigned k = static_cast<unsigned>(std::countr_zero(nz)) / 8u;
        nz &= nz - 1;
        const std::uint64_t mb = (toggled >> (8 * k)) & 0xFFu;
        // Byte j of `bits` holds bit j of mb (in that byte's bit j).
        const std::uint64_t bits =
            (mb * 0x0101010101010101ull) & 0x8040201008040201ull;
        const std::uint64_t spread =
            ((((bits & kLow7) + kLow7) | bits) & kHigh) >> 7;  // 0/1 per byte
        std::uint64_t x;
        std::memcpy(&x, counts + 8 * k, 8);
        const std::uint64_t t = ~x;  // byte 0 <=> counter at 255
        const std::uint64_t sat01 = (~((((t & kLow7) + kLow7) | t) & kHigh) &
                                     kHigh) >> 7;  // 0/1 per saturated byte
        x += spread & ~sat01;
        std::memcpy(counts + 8 * k, &x, 8);
    }
}

void BatchAttributionProbe::flush_windows() {
    // Every addend is a small integer (counts saturate at 255) and every
    // partial sum stays far below 2^53, so the accumulator's doubles only
    // ever hold *exact* integers: no addition ever rounds, and any
    // association of the same addends lands on the same double.  That
    // frees the fold from replaying the scalar path's per-trace FP chain
    // -- subtotal in plain integers (1-cycle dependencies instead of
    // FP-add latency) and add one exact subtotal per class, still `==`
    // the scalar fold_trace() sequence.
    if (count_ != 0 && acc_ != nullptr) {
        for (const std::uint32_t point : touched_) {
            const std::uint8_t* counts =
                arena_.data() + static_cast<std::uint32_t>(stamp_slot_[point]) *
                                    std::size_t{sim::kBatchLanes};
            // Branchless per-lane accumulation, class selected by a 0/1
            // multiply: no data-dependent branches, so the compiler turns
            // the loop into SIMD widening sums -- faster than any
            // byte-skipping walk once a net toggles in most lanes (the
            // common case for shared control and clock fanout).
            std::uint32_t sum = 0, sum_f = 0, sumsq = 0, sumsq_f = 0;
            std::uint32_t lanes = 0;
            for (unsigned lane = 0; lane < count_; ++lane) {
                const std::uint32_t c = counts[lane];
                const std::uint32_t m = class_of_[lane];
                sum += c;
                sum_f += c * m;
                sumsq += c * c;
                sumsq_f += c * c * m;
                lanes += c != 0 ? 1u : 0u;
            }
            std::uint32_t* b = block_.data() + point * std::size_t{5};
            b[0] += sum_f;
            b[1] += sumsq_f;
            b[2] += sum - sum_f;
            b[3] += sumsq - sumsq_f;
            b[4] += lanes;
        }
    }
    // Recycling the touch list restarts slot allocation at 0: the next
    // window reuses the same (cache-hot) arena rows.
    touched_.clear();
}

void BatchAttributionProbe::fold_group() {
    flush_windows();
    if (acc_ == nullptr) return;
    ++groups_in_block_;
    for (unsigned lane = 0; lane < count_; ++lane) {
        if ((fixed_mask_ >> lane) & 1u)
            ++acc_->traces_fixed;
        else
            ++acc_->traces_random;
    }
}

void BatchAttributionProbe::spill_block() {
    if (acc_ == nullptr || block_.empty()) {
        groups_in_block_ = 0;
        return;
    }
    const std::size_t points = plan_.points();
    for (std::size_t point = 0; point < points; ++point) {
        std::uint32_t* b = block_.data() + point * std::size_t{5};
        // Skip untouched points entirely, like the scalar fold (adding
        // an exact 0.0 would still be a wasted dirty cache line).
        if ((b[0] | b[1] | b[2] | b[3] | b[4]) == 0) continue;
        PointStats& p = acc_->point(point);
        p.sum_fixed += static_cast<double>(b[0]);
        p.sumsq_fixed += static_cast<double>(b[1]);
        p.sum_random += static_cast<double>(b[2]);
        p.sumsq_random += static_cast<double>(b[3]);
        const std::uint64_t toggles = std::uint64_t{b[0]} + b[2];
        p.toggles += toggles;
        p.glitches += toggles - b[4];
        b[0] = b[1] = b[2] = b[3] = b[4] = 0;
    }
    groups_in_block_ = 0;
    acc_ = nullptr;
}

// ----- analysis -----------------------------------------------------------

namespace {

struct ClassStats {
    double mean = 0.0;
    double variance = 0.0;
};

/// Mean and unbiased variance of one class over n traces (the sums cover
/// only toggling traces; the remaining n - k samples are exact zeros).
ClassStats class_stats(double sum, double sumsq, std::uint64_t n) {
    ClassStats s;
    if (n == 0) return s;
    const double dn = static_cast<double>(n);
    s.mean = sum / dn;
    if (n >= 2) s.variance = (sumsq - dn * s.mean * s.mean) / (dn - 1.0);
    if (s.variance < 0.0) s.variance = 0.0;  // FP cancellation guard
    return s;
}

/// First-order SNR: between-class variance of the means over the mean
/// within-class variance; 0.0 sentinel on degenerate inputs.
double snr_of(const ClassStats& f, std::uint64_t nf, const ClassStats& r,
              std::uint64_t nr) {
    if (nf < 2 || nr < 2) return 0.0;
    const double dnf = static_cast<double>(nf);
    const double dnr = static_cast<double>(nr);
    const double n = dnf + dnr;
    const double grand = (dnf * f.mean + dnr * r.mean) / n;
    const double between = (dnf * (f.mean - grand) * (f.mean - grand) +
                            dnr * (r.mean - grand) * (r.mean - grand)) /
                           n;
    const double within = (dnf * f.variance + dnr * r.variance) / n;
    if (!(within > 0.0)) return 0.0;
    return between / within;
}

}  // namespace

AttributionResult analyze_attribution(const netlist::Netlist& nl,
                                      const AttributionPlan& plan,
                                      const AttributionAccumulator& acc) {
    AttributionResult result;
    result.enabled = plan.enabled();
    result.traces_fixed = acc.traces_fixed;
    result.traces_random = acc.traces_random;
    result.windows = plan.windows();
    if (!plan.enabled()) return result;
    if (acc.size() != plan.points())
        throw std::invalid_argument(
            "analyze_attribution: accumulator does not match the plan");

    const std::uint64_t traces = acc.traces_fixed + acc.traces_random;
    const std::size_t windows = plan.windows();
    std::vector<std::size_t> order(plan.net_count());
    std::vector<NetAttribution> nets(plan.net_count());
    std::vector<double> abs_t(plan.points(), 0.0);

    for (std::size_t i = 0; i < plan.net_count(); ++i) {
        order[i] = i;
        const netlist::NetId id = plan.net(i);
        NetAttribution& net = nets[i];
        net.net = id;
        net.name = nl.name(id).empty() ? "n" + std::to_string(id) : nl.name(id);
        net.kind = std::string(netlist::kind_name(nl.cell(id).kind));
        net.module = nl.module_names()[nl.module_of(id)];
        for (std::size_t w = 0; w < windows; ++w) {
            const PointStats& p = acc.point(plan.point_index(i, w));
            const ClassStats f =
                class_stats(p.sum_fixed, p.sumsq_fixed, acc.traces_fixed);
            const ClassStats r =
                class_stats(p.sum_random, p.sumsq_random, acc.traces_random);
            const double t = welch_t(
                f.mean, f.variance, static_cast<double>(acc.traces_fixed),
                r.mean, r.variance, static_cast<double>(acc.traces_random));
            const double at = t < 0.0 ? -t : t;
            abs_t[i * windows + w] = at;
            if (at > net.max_abs_t) {
                net.max_abs_t = at;
                net.argmax_window = w;
                net.snr = snr_of(f, acc.traces_fixed, r, acc.traces_random);
            }
            net.toggles += p.toggles;
            net.glitches += p.glitches;
        }
        net.glitch_density =
            traces > 0
                ? static_cast<double>(net.glitches) / static_cast<double>(traces)
                : 0.0;
    }

    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        if (nets[a].max_abs_t != nets[b].max_abs_t)
            return nets[a].max_abs_t > nets[b].max_abs_t;
        if (nets[a].glitches != nets[b].glitches)
            return nets[a].glitches > nets[b].glitches;
        return nets[a].net < nets[b].net;
    });

    result.ranked.reserve(nets.size());
    result.abs_t.resize(plan.points());
    result.window_glitches.resize(plan.points());
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
        const std::size_t i = order[rank];
        result.ranked.push_back(std::move(nets[i]));
        for (std::size_t w = 0; w < windows; ++w) {
            result.abs_t[rank * windows + w] = abs_t[i * windows + w];
            result.window_glitches[rank * windows + w] =
                acc.point(plan.point_index(i, w)).glitches;
        }
    }
    return result;
}

// ----- reports ------------------------------------------------------------

void print_culprit_table(const AttributionResult& result, std::size_t top_k) {
    TablePrinter table({"rank", "net", "gate", "gadget role", "max|t|",
                        "window", "SNR", "glitch/trace"});
    const std::size_t rows = std::min(top_k, result.ranked.size());
    for (std::size_t rank = 0; rank < rows; ++rank) {
        const NetAttribution& net = result.ranked[rank];
        table.add_row({std::to_string(rank + 1), net.name, net.kind,
                       net.module.empty() ? "(top)" : net.module,
                       TablePrinter::num(net.max_abs_t),
                       std::to_string(net.argmax_window),
                       TablePrinter::num(net.snr, 4),
                       TablePrinter::num(net.glitch_density, 4)});
    }
    table.print();
}

std::string attribution_csv(const AttributionResult& result) {
    std::string out =
        "net,name,kind,module,max_abs_t,argmax_window,snr,toggles,glitches,"
        "glitch_density";
    for (std::size_t w = 0; w < result.windows; ++w)
        out += ",abs_t_w" + std::to_string(w);
    for (std::size_t w = 0; w < result.windows; ++w)
        out += ",glitches_w" + std::to_string(w);
    out += '\n';
    char buf[64];
    const auto num = [&buf](double v) {
        std::snprintf(buf, sizeof buf, "%.9g", v);
        return std::string(buf);
    };
    for (std::size_t rank = 0; rank < result.ranked.size(); ++rank) {
        const NetAttribution& net = result.ranked[rank];
        out += std::to_string(net.net) + ',' + net.name + ',' + net.kind + ',' +
               net.module + ',' + num(net.max_abs_t) + ',' +
               std::to_string(net.argmax_window) + ',' + num(net.snr) + ',' +
               std::to_string(net.toggles) + ',' + std::to_string(net.glitches) +
               ',' + num(net.glitch_density);
        for (std::size_t w = 0; w < result.windows; ++w)
            out += ',' + num(result.t_at(rank, w));
        for (std::size_t w = 0; w < result.windows; ++w)
            out += ',' + std::to_string(result.glitches_at(rank, w));
        out += '\n';
    }
    return out;
}

void write_attribution_csv(const std::string& path,
                           const AttributionResult& result) {
    std::ofstream file(path);
    if (!file)
        throw std::runtime_error("write_attribution_csv: cannot open " + path);
    file << attribution_csv(result);
    file.flush();
    if (!file)
        throw std::runtime_error("write_attribution_csv: write failed for " +
                                 path);
}

std::string attribution_dot(const netlist::Netlist& nl,
                            const AttributionResult& result, std::size_t top_k,
                            netlist::DotOptions options) {
    options.cell_annotations.assign(nl.size(), std::string());
    options.cell_colors.assign(nl.size(), std::string());
    const std::size_t rows = std::min(top_k, result.ranked.size());
    char buf[96];
    for (std::size_t rank = 0; rank < rows; ++rank) {
        const NetAttribution& net = result.ranked[rank];
        if (net.net >= nl.size()) continue;
        std::snprintf(buf, sizeof buf, "|t|=%.1f g=%llu", net.max_abs_t,
                      static_cast<unsigned long long>(net.glitches));
        options.cell_annotations[net.net] = buf;
        // Heat scale red (rank 0) -> yellow (last annotated rank).
        const double frac =
            rows > 1 ? static_cast<double>(rank) / static_cast<double>(rows - 1)
                     : 0.0;
        std::snprintf(buf, sizeof buf, "%.3f 0.85 1.0", 0.15 * frac);
        options.cell_colors[net.net] = buf;
    }
    return netlist::to_dot(nl, options);
}

}  // namespace glitchmask::leakage
