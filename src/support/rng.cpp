#include "support/rng.hpp"

#include <cmath>

namespace glitchmask {

std::uint64_t Xoshiro256::below(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless unbiased bounded generation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low < n) {
        const std::uint64_t threshold = (0 - n) % n;
        while (low < threshold) {
            x = (*this)();
            m = static_cast<__uint128_t>(x) * n;
            low = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::gaussian() noexcept {
    if (has_spare_) {
        has_spare_ = false;
        return spare_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    has_spare_ = true;
    return u * factor;
}

}  // namespace glitchmask
