// glitchmask_ledger: the cross-run results ledger CLI.
//
//   glitchmask_ledger ingest <ledger> <file...> [--revision R] [--host H]
//                     [--utc T]
//       Converts run-report / BENCH_batch_sim.json files into ledger
//       entries and appends them (obs/ledger.hpp has the line format).
//       The flags fill attribution fields the file itself lacks.
//
//   glitchmask_ledger list <ledger> [--fingerprint HEX] [--csv]
//       Tabulates entries (canonical history order).
//
//   glitchmask_ledger diff <ledger> [--fingerprint HEX] [--campaign C]
//       For every (fingerprint, campaign) group with >= 2 entries,
//       diffs the newest entry against its predecessor: leakage fields
//       bit-exactly, timings side by side.  Exits 3 when any leakage
//       field changed.
//
//   glitchmask_ledger trend <ledger> [--fingerprint HEX] [--campaign C]
//                     [--window N] [--mad-k X]
//       Judges each group's newest entry against its rolling history
//       with the noise-aware rule (obs/regression.hpp).  Exits 3 when
//       any metric regressed or leakage changed.
//
//   glitchmask_ledger report <ledger> [--csv]
//       Markdown report (entry table + per-group radar), or a CSV dump.
//
//   glitchmask_ledger gate <bench.json> [--max key=v ...] [--min key=v ...]
//       Bounds-checks top-level bench metrics (the ci.sh perf bars).
//       Exits 3 on a violated bar, 1 on a missing key.
//
// Exit codes: 0 ok | 1 runtime error | 2 usage | 3 regression (a leakage
// field changed, a metric regressed, or a gate bar was violated).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/diff.hpp"
#include "obs/ledger.hpp"
#include "obs/regression.hpp"
#include "support/atomic_file.hpp"
#include "support/runenv.hpp"
#include "support/table.hpp"

using namespace glitchmask;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitError = 1;
constexpr int kExitUsage = 2;
constexpr int kExitRegressed = 3;

int usage() {
    std::fprintf(
        stderr,
        "usage: glitchmask_ledger <verb> ...\n"
        "  ingest <ledger> <file...> [--revision R] [--host H] [--utc T]\n"
        "  list   <ledger> [--fingerprint HEX] [--csv]\n"
        "  diff   <ledger> [--fingerprint HEX] [--campaign C]\n"
        "  trend  <ledger> [--fingerprint HEX] [--campaign C] [--window N]\n"
        "         [--mad-k X]\n"
        "  report <ledger> [--csv]\n"
        "  gate   <bench.json> [--max key=v ...] [--min key=v ...]\n");
    return kExitUsage;
}

std::string read_text_file(const std::string& path) {
    const auto bytes = read_file_if_exists(path);
    if (!bytes.has_value())
        throw std::runtime_error("no such file: " + path);
    return std::string(reinterpret_cast<const char*>(bytes->data()),
                       bytes->size());
}

/// Entries filtered by the optional --fingerprint / --campaign flags,
/// grouped by (fingerprint, campaign) in deterministic key order; each
/// group is canonically sorted (oldest first).
std::map<std::string, std::vector<obs::LedgerEntry>> load_groups(
    const std::string& path, const std::string& fingerprint,
    const std::string& campaign, std::size_t* corrupt_lines = nullptr) {
    obs::LedgerFile file = obs::read_ledger(path);
    if (corrupt_lines != nullptr) *corrupt_lines = file.corrupt_lines;
    std::map<std::string, std::vector<obs::LedgerEntry>> groups;
    for (obs::LedgerEntry& entry : file.entries) {
        const std::string key = obs::fingerprint_key(entry.fingerprint);
        if (!fingerprint.empty() && key != fingerprint) continue;
        if (!campaign.empty() && entry.campaign != campaign) continue;
        groups[key + "\n" + entry.campaign].push_back(std::move(entry));
    }
    for (auto& [key, entries] : groups) obs::sort_ledger(entries);
    return groups;
}

struct CommonFlags {
    std::string fingerprint;
    std::string campaign;
    bool csv = false;
    std::size_t window = obs::RegressionRule{}.window;
    double mad_k = obs::RegressionRule{}.mad_k;
};

/// Parses the trailing flags shared by list/diff/trend/report; returns
/// false on an unknown flag or a missing value.
bool parse_common_flags(int argc, char** argv, int first, CommonFlags* out) {
    for (int i = first; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (flag == "--fingerprint") {
            const char* v = value();
            if (v == nullptr) return false;
            out->fingerprint = v;
        } else if (flag == "--campaign") {
            const char* v = value();
            if (v == nullptr) return false;
            out->campaign = v;
        } else if (flag == "--window") {
            const char* v = value();
            if (v == nullptr) return false;
            out->window = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
        } else if (flag == "--mad-k") {
            const char* v = value();
            if (v == nullptr) return false;
            out->mad_k = std::strtod(v, nullptr);
        } else if (flag == "--csv") {
            out->csv = true;
        } else {
            return false;
        }
    }
    return true;
}

void print_entry_table(
    const std::map<std::string, std::vector<obs::LedgerEntry>>& groups,
    bool csv) {
    if (csv) {
        std::printf(
            "campaign,fingerprint,source,revision,host,utc,status,backend,"
            "workers,lanes,wall_seconds,cpu_seconds,max_abs_t1,toggles\n");
        for (const auto& [key, entries] : groups)
            for (const obs::LedgerEntry& e : entries)
                std::printf("%s,%s,%s,%s,%s,%s,%s,%s,%u,%u,%.17g,%.17g,%.17g,"
                            "%llu\n",
                            e.campaign.c_str(),
                            obs::fingerprint_key(e.fingerprint).c_str(),
                            e.source.c_str(), e.revision.c_str(),
                            e.host.c_str(), e.utc.c_str(), e.status.c_str(),
                            e.backend.c_str(), e.workers, e.lanes,
                            e.wall_seconds, e.cpu_seconds, e.max_abs_t1,
                            static_cast<unsigned long long>(e.toggles));
        return;
    }
    TablePrinter table({"campaign", "fingerprint", "revision", "utc", "status",
                        "wall s", "max|t1|", "toggles"});
    for (const auto& [key, entries] : groups)
        for (const obs::LedgerEntry& e : entries)
            table.add_row({e.campaign,
                           obs::fingerprint_key(e.fingerprint).substr(0, 12),
                           e.revision.empty()
                               ? std::string("?")
                               : e.revision.substr(0, 12),
                           e.utc.empty() ? "?" : e.utc, e.status,
                           TablePrinter::num(e.wall_seconds, 3),
                           TablePrinter::num(e.max_abs_t1, 6),
                           std::to_string(e.toggles)});
    table.print();
}

int run_ingest(int argc, char** argv) {
    if (argc < 4) return usage();
    const std::string ledger_path = argv[2];
    std::vector<std::string> files;
    obs::IngestOverrides overrides;
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--revision") {
            const char* v = value();
            if (v == nullptr) return usage();
            overrides.revision = v;
        } else if (arg == "--host") {
            const char* v = value();
            if (v == nullptr) return usage();
            overrides.host = v;
        } else if (arg == "--utc") {
            const char* v = value();
            if (v == nullptr) return usage();
            overrides.utc = v;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            files.push_back(arg);
        }
    }
    if (files.empty()) return usage();
    // Unpinned attribution falls back to this process's environment --
    // better a best-effort stamp than an unkeyable entry.
    if (overrides.revision.empty()) overrides.revision = git_revision();
    if (overrides.host.empty()) overrides.host = host_name();
    if (overrides.utc.empty()) overrides.utc = utc_timestamp();

    std::size_t total = 0;
    for (const std::string& file : files) {
        const std::vector<obs::LedgerEntry> entries =
            obs::entries_from_file_text(read_text_file(file), overrides);
        for (const obs::LedgerEntry& entry : entries)
            obs::append_ledger(ledger_path, entry);
        std::printf("ingested %zu entr%s from %s\n", entries.size(),
                    entries.size() == 1 ? "y" : "ies", file.c_str());
        total += entries.size();
    }
    std::printf("ledger %s: +%zu entries\n", ledger_path.c_str(), total);
    return kExitOk;
}

int run_list(int argc, char** argv) {
    if (argc < 3) return usage();
    CommonFlags flags;
    if (!parse_common_flags(argc, argv, 3, &flags)) return usage();
    std::size_t corrupt = 0;
    const auto groups =
        load_groups(argv[2], flags.fingerprint, flags.campaign, &corrupt);
    print_entry_table(groups, flags.csv);
    if (corrupt > 0 && !flags.csv)
        std::printf("(%zu corrupt line%s skipped)\n", corrupt,
                    corrupt == 1 ? "" : "s");
    return kExitOk;
}

int run_diff(int argc, char** argv) {
    if (argc < 3) return usage();
    CommonFlags flags;
    if (!parse_common_flags(argc, argv, 3, &flags)) return usage();
    const auto groups = load_groups(argv[2], flags.fingerprint, flags.campaign);
    std::size_t compared = 0;
    bool changed = false;
    for (const auto& [key, entries] : groups) {
        if (entries.size() < 2) continue;
        ++compared;
        const obs::LedgerEntry& before = entries[entries.size() - 2];
        const obs::LedgerEntry& after = entries.back();
        const obs::EntryDiff diff = obs::diff_entries(before, after);
        std::fputs(obs::render_diff_markdown(before, after, diff).c_str(),
                   stdout);
        std::fputs("\n", stdout);
        changed |= !diff.leakage_identical;
    }
    if (compared == 0) {
        std::fprintf(stderr,
                     "glitchmask_ledger diff: no group has two entries to "
                     "compare\n");
        return kExitError;
    }
    std::printf("diffed %zu group%s: leakage %s\n", compared,
                compared == 1 ? "" : "s",
                changed ? "CHANGED" : "bit-identical");
    return changed ? kExitRegressed : kExitOk;
}

int run_trend(int argc, char** argv) {
    if (argc < 3) return usage();
    CommonFlags flags;
    if (!parse_common_flags(argc, argv, 3, &flags)) return usage();
    const auto groups = load_groups(argv[2], flags.fingerprint, flags.campaign);
    obs::RegressionRule rule;
    rule.window = flags.window;
    rule.mad_k = flags.mad_k;
    std::size_t judged = 0;
    bool regressed = false;
    for (const auto& [key, entries] : groups) {
        if (entries.size() < 2) continue;
        ++judged;
        std::vector<obs::LedgerEntry> history(entries.begin(),
                                              entries.end() - 1);
        const obs::RegressionReport report =
            obs::evaluate_candidate(entries.back(), std::move(history), rule);
        std::fputs(obs::render_regression_markdown(report).c_str(), stdout);
        std::fputs("\n", stdout);
        regressed |= report.regressed;
    }
    if (judged == 0) {
        std::fprintf(stderr,
                     "glitchmask_ledger trend: no group has history to judge "
                     "against\n");
        return kExitError;
    }
    return regressed ? kExitRegressed : kExitOk;
}

int run_report(int argc, char** argv) {
    if (argc < 3) return usage();
    CommonFlags flags;
    if (!parse_common_flags(argc, argv, 3, &flags)) return usage();
    std::size_t corrupt = 0;
    const auto groups =
        load_groups(argv[2], flags.fingerprint, flags.campaign, &corrupt);
    if (flags.csv) {
        print_entry_table(groups, /*csv=*/true);
        return kExitOk;
    }
    std::printf("# Ledger report: %s\n\n", argv[2]);
    std::size_t total = 0;
    for (const auto& [key, entries] : groups) total += entries.size();
    std::printf("%zu entries in %zu groups (%zu corrupt lines skipped)\n\n",
                total, groups.size(), corrupt);
    obs::RegressionRule rule;
    rule.window = flags.window;
    rule.mad_k = flags.mad_k;
    for (const auto& [key, entries] : groups) {
        if (entries.size() < 2) continue;
        std::vector<obs::LedgerEntry> history(entries.begin(),
                                              entries.end() - 1);
        const obs::RegressionReport report =
            obs::evaluate_candidate(entries.back(), std::move(history), rule);
        std::fputs(obs::render_regression_markdown(report).c_str(), stdout);
        std::fputs("\n", stdout);
    }
    return kExitOk;
}

int run_gate(int argc, char** argv) {
    if (argc < 3) return usage();
    const eval::JsonValue root =
        eval::parse_json(read_text_file(argv[2]));
    struct Bar {
        std::string key;
        double bound = 0.0;
        bool is_max = false;
    };
    std::vector<Bar> bars;
    for (int i = 3; i < argc; ++i) {
        const std::string flag = argv[i];
        if ((flag != "--max" && flag != "--min") || i + 1 >= argc)
            return usage();
        const std::string spec = argv[++i];
        const std::size_t eq = spec.find('=');
        if (eq == std::string::npos || eq == 0) return usage();
        bars.push_back(Bar{spec.substr(0, eq),
                           std::strtod(spec.c_str() + eq + 1, nullptr),
                           flag == "--max"});
    }
    if (bars.empty()) return usage();
    bool violated = false;
    for (const Bar& bar : bars) {
        const eval::JsonValue* value = root.find(bar.key);
        if (value == nullptr ||
            (value->kind != eval::JsonValue::Kind::kUnsigned &&
             value->kind != eval::JsonValue::Kind::kNumber)) {
            std::fprintf(stderr, "FAIL: %s missing from %s\n", bar.key.c_str(),
                         argv[2]);
            return kExitError;
        }
        const double x = value->as_number();
        const bool ok = bar.is_max ? x <= bar.bound : x >= bar.bound;
        std::printf("%s: %s = %.6g (%s %.6g)\n", ok ? "ok" : "FAIL",
                    bar.key.c_str(), x, bar.is_max ? "<=" : ">=", bar.bound);
        violated |= !ok;
    }
    return violated ? kExitRegressed : kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string verb = argv[1];
    try {
        if (verb == "ingest") return run_ingest(argc, argv);
        if (verb == "list") return run_list(argc, argv);
        if (verb == "diff") return run_diff(argc, argv);
        if (verb == "trend") return run_trend(argc, argv);
        if (verb == "report") return run_report(argc, argv);
        if (verb == "gate") return run_gate(argc, argv);
    } catch (const std::exception& error) {
        std::fprintf(stderr, "glitchmask_ledger %s: %s\n", verb.c_str(),
                     error.what());
        return kExitError;
    }
    return usage();
}
