#include "support/csv.hpp"

#include <iomanip>
#include <stdexcept>

namespace glitchmask {

CsvWriter::CsvWriter(const std::string& path,
                     std::initializer_list<std::string_view> header)
    : out_(path), path_(path) {
    if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
    bool first = true;
    for (auto field : header) {
        if (!first) out_ << ',';
        out_ << field;
        first = false;
    }
    out_ << '\n';
    out_ << std::setprecision(10);
    check();
}

void CsvWriter::check() const {
    if (!out_)
        throw std::runtime_error("CsvWriter: write to " + path_ +
                                 " failed (disk full or stream error)");
}

void CsvWriter::row(std::initializer_list<double> values) {
    bool first = true;
    for (double v : values) {
        if (!first) out_ << ',';
        out_ << v;
        first = false;
    }
    out_ << '\n';
    check();
}

void CsvWriter::row(const std::vector<double>& values) {
    bool first = true;
    for (double v : values) {
        if (!first) out_ << ',';
        out_ << v;
        first = false;
    }
    out_ << '\n';
    check();
}

void CsvWriter::raw_row(std::initializer_list<std::string_view> fields) {
    bool first = true;
    for (auto f : fields) {
        if (!first) out_ << ',';
        out_ << f;
        first = false;
    }
    out_ << '\n';
    check();
}

void CsvWriter::close() {
    if (!out_.is_open()) return;
    out_.flush();
    check();
    out_.close();
    check();
}

CsvWriter::~CsvWriter() {
    // A throwing destructor would terminate during unwinding; errors on
    // the implicit close are reported by calling close() explicitly.
    try {
        close();
    } catch (const std::runtime_error&) {
    }
}

}  // namespace glitchmask
