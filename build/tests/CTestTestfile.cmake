# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(support_test "/root/repo/build/tests/support_test")
set_tests_properties(support_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(netlist_test "/root/repo/build/tests/netlist_test")
set_tests_properties(netlist_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(leakage_test "/root/repo/build/tests/leakage_test")
set_tests_properties(leakage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(eval_test "/root/repo/build/tests/eval_test")
set_tests_properties(eval_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(des_test "/root/repo/build/tests/des_test")
set_tests_properties(des_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(power_test "/root/repo/build/tests/power_test")
set_tests_properties(power_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(security_test "/root/repo/build/tests/security_test")
set_tests_properties(security_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(export_test "/root/repo/build/tests/export_test")
set_tests_properties(export_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(probing_test "/root/repo/build/tests/probing_test")
set_tests_properties(probing_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
