// Minimal client for the glitchmaskd campaign daemon.
//
// Sends one NDJSON request line over the daemon's Unix socket and prints
// every response line until the terminal one for that request arrives:
//
//   campaign_client /tmp/gm.sock '{"op":"submit","kind":"gadget_tvla",
//                                  "gadget":"trichina","traces":2000}'
//   campaign_client /tmp/gm.sock '{"op":"status","job":3}'
//   campaign_client /tmp/gm.sock '{"op":"stats"}'
//   campaign_client /tmp/gm.sock '{"op":"shutdown","drain":false}'
//
// For a submit, the client stays connected and relays progress events
// until the result line; every other op gets exactly one reply.  Exit
// status: 0 on a completed/answered request, 1 on rejection or overload,
// 2 on usage/connection errors.

#include <cstdio>
#include <cstring>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace {

bool line_ends_conversation(const std::string& line, bool is_submit,
                            int& exit_code) {
    const auto has = [&](const char* token) {
        return line.find(token) != std::string::npos;
    };
    if (has("\"event\":\"rejected\"") || has("\"event\":\"overloaded\"")) {
        exit_code = 1;
        return true;
    }
    if (is_submit) {
        if (has("\"event\":\"result\"")) {
            exit_code = has("\"state\":\"completed\"") ? 0 : 1;
            return true;
        }
        return false;  // accepted / progress: keep streaming
    }
    exit_code = 0;
    return true;  // single-reply ops are done after any event line
}

}  // namespace

int main(int argc, char** argv) {
    if (argc != 3) {
        std::fprintf(stderr, "usage: %s SOCKET_PATH REQUEST_JSON\n", argv[0]);
        return 2;
    }
    const std::string socket_path = argv[1];
    std::string request = argv[2];
    if (request.empty() || request.back() != '\n') request += '\n';
    const bool is_submit =
        request.find("\"op\":\"submit\"") != std::string::npos;

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        std::perror("socket");
        return 2;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
        std::perror(("connect " + socket_path).c_str());
        ::close(fd);
        return 2;
    }

    std::size_t sent = 0;
    while (sent < request.size()) {
        const ssize_t n =
            ::write(fd, request.data() + sent, request.size() - sent);
        if (n < 0) {
            if (errno == EINTR) continue;
            std::perror("write");
            ::close(fd);
            return 2;
        }
        sent += static_cast<std::size_t>(n);
    }

    int exit_code = 1;
    std::string pending;
    char buffer[4096];
    for (;;) {
        const ssize_t n = ::read(fd, buffer, sizeof buffer);
        if (n < 0) {
            if (errno == EINTR) continue;
            std::perror("read");
            break;
        }
        if (n == 0) break;  // daemon closed (e.g. shutdown)
        pending.append(buffer, static_cast<std::size_t>(n));
        std::size_t start = 0;
        bool done = false;
        for (;;) {
            const std::size_t newline = pending.find('\n', start);
            if (newline == std::string::npos) break;
            const std::string line = pending.substr(start, newline - start);
            start = newline + 1;
            std::printf("%s\n", line.c_str());
            std::fflush(stdout);
            if (line_ends_conversation(line, is_submit, exit_code)) {
                done = true;
                break;
            }
        }
        pending.erase(0, start);
        if (done) break;
    }
    ::close(fd);
    return exit_code;
}
