# Empty compiler generated dependencies file for masked_des_demo.
# This may be replaced when dependencies are built.
