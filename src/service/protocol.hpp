// The daemon's wire protocol: newline-delimited JSON over a local Unix
// socket.
//
// Requests (one object per line, "op" selects the verb):
//
//   {"op":"submit", "kind":"gadget_tvla", ...request fields...}
//   {"op":"status", "job":N}
//   {"op":"cancel", "job":N}
//   {"op":"stats"}
//   {"op":"metrics"}
//   {"op":"history", "fingerprint":"<80 hex>"}
//   {"op":"shutdown", "drain":true}
//
// Responses and asynchronous events (one object per line, "event"
// discriminates):
//
//   {"event":"accepted",  "job":N, "fingerprint":"..."}
//   {"event":"overloaded"}               submit rejected: queue full
//   {"event":"rejected",  "reason":...}  malformed request / draining
//   {"event":"progress",  "job":N, "completed":..., "total":...,
//                         "traces_per_sec":..., "eta_sec":...}
//   {"event":"result",    "job":N, "state":"completed"|..., "cached":...,
//                         "metrics":{...}, "error_kind":..., ...}
//   {"event":"status",    ...}           answer to a status op
//   {"event":"stats",     ...}
//   {"event":"metrics",   "counters":{...}, "histograms":{...},
//                         "gauges":{...}, "service":{...}}
//   {"event":"history",   "fingerprint":"...", "entries":[{...},...]}
//   {"event":"shutting_down"}
//
// Terminal result/status events for jobs that carry a span rollup also
// include "spans":[{"name":...,"count":...,"total_ns":...},...] -- the
// per-job latency breakdown (queue_wait, execute, block, sim, ...).
//
// Progress events are advisory and *droppable* (a slow client loses
// progress lines, never results); every other line is reliable up to the
// connection's hard buffer cap.  Encoders live here so the daemon, the
// example client, and the tests agree on one schema.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/ledger.hpp"
#include "service/campaign_request.hpp"
#include "service/service.hpp"
#include "support/telemetry.hpp"

namespace glitchmask::service {

/// One parsed client line.
struct ClientCommand {
    enum class Op {
        Submit, Status, Cancel, Stats, Metrics, History, Shutdown
    };
    Op op = Op::Stats;
    std::optional<CampaignRequest> request;  // Submit
    std::uint64_t job_id = 0;                // Status / Cancel
    std::string fingerprint;                 // History (80-hex ledger key)
    bool drain = true;                       // Shutdown
};

/// Parses one NDJSON request line; throws std::runtime_error with a
/// client-presentable message on malformed input.
[[nodiscard]] ClientCommand parse_client_command(const std::string& line);

// ----- event encoders (each returns one line, '\n'-terminated) ----------

[[nodiscard]] std::string encode_accepted(std::uint64_t job_id,
                                          const std::string& fingerprint_hex);
[[nodiscard]] std::string encode_overloaded();
[[nodiscard]] std::string encode_rejected(const std::string& reason);
[[nodiscard]] std::string encode_progress(
    std::uint64_t job_id, const telemetry::ProgressUpdate& update);
[[nodiscard]] std::string encode_result(const JobStatus& status);
[[nodiscard]] std::string encode_status(const JobStatus& status);
[[nodiscard]] std::string encode_stats(const CampaignService::Stats& stats);
/// The full observability surface in one line: every telemetry counter,
/// every latency histogram (sparse [bucket_floor, count] pairs), every
/// gauge, plus the service-health figures from metrics_info().
[[nodiscard]] std::string encode_metrics(
    const telemetry::Snapshot& snapshot,
    const CampaignService::MetricsInfo& info);
/// The ledger's view of one fingerprint: every matching entry in
/// canonical (oldest-first) order, each reduced to the fields a client
/// table needs (status, wall time, revision, host, utc, campaign,
/// leakage headline).  `entries` must already be filtered and sorted --
/// the encoder renders, it does not select.
[[nodiscard]] std::string encode_history(
    const std::string& fingerprint_hex,
    const std::vector<obs::LedgerEntry>& entries);
[[nodiscard]] std::string encode_shutting_down();

}  // namespace glitchmask::service
