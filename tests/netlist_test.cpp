#include <gtest/gtest.h>

#include <stdexcept>

#include "netlist/area.hpp"
#include "netlist/builder.hpp"
#include "netlist/lutmap.hpp"
#include "netlist/netlist.hpp"
#include "sim/delay_model.hpp"

namespace glitchmask::netlist {
namespace {

TEST(CellKindTable, PinCounts) {
    EXPECT_EQ(pin_count(CellKind::Input), 0u);
    EXPECT_EQ(pin_count(CellKind::Inv), 1u);
    EXPECT_EQ(pin_count(CellKind::And2), 2u);
    EXPECT_EQ(pin_count(CellKind::Mux2), 3u);
    EXPECT_EQ(pin_count(CellKind::Dff), 1u);
}

TEST(CellKindTable, EvalTruthTables) {
    EXPECT_TRUE(eval_cell(CellKind::And2, true, true));
    EXPECT_FALSE(eval_cell(CellKind::And2, true, false));
    EXPECT_TRUE(eval_cell(CellKind::Or2, false, true));
    EXPECT_TRUE(eval_cell(CellKind::Xor2, true, false));
    EXPECT_FALSE(eval_cell(CellKind::Xor2, true, true));
    EXPECT_TRUE(eval_cell(CellKind::Xnor2, true, true));
    EXPECT_TRUE(eval_cell(CellKind::Nand2, true, false));
    EXPECT_FALSE(eval_cell(CellKind::Nor2, true, false));
    EXPECT_TRUE(eval_cell(CellKind::Inv, false));
    // Mux2: c selects between in0 (c=0) and in1 (c=1).
    EXPECT_FALSE(eval_cell(CellKind::Mux2, false, true, false));
    EXPECT_TRUE(eval_cell(CellKind::Mux2, false, true, true));
}

TEST(Netlist, BuildsAndFreezes) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    const NetId x = nl.xor2(a, b, "x");
    const NetId y = nl.and2(a, x, "y");
    nl.freeze();

    EXPECT_EQ(nl.size(), 4u);
    EXPECT_EQ(nl.inputs().size(), 2u);
    EXPECT_EQ(nl.fanout(a).size(), 2u);
    EXPECT_EQ(nl.fanout(x).size(), 1u);
    EXPECT_EQ(nl.fanout(x)[0].cell, y);
    EXPECT_EQ(nl.fanout(x)[0].pin, 1u);
    EXPECT_EQ(nl.topo_order().size(), 2u);
    EXPECT_EQ(nl.name(x), "x");
}

TEST(Netlist, RejectsUnconnectedPins) {
    Netlist nl;
    EXPECT_THROW(nl.add(CellKind::And2, 0, kNoNet), std::runtime_error);
}

TEST(Netlist, RejectsForwardReferences) {
    Netlist nl;
    const NetId a = nl.input("a");
    EXPECT_THROW(nl.add(CellKind::Inv, a + 5), std::runtime_error);
}

TEST(Netlist, ConstantsAreShared) {
    Netlist nl;
    EXPECT_EQ(nl.const0(), nl.const0());
    EXPECT_EQ(nl.const1(), nl.const1());
    EXPECT_NE(nl.const0(), nl.const1());
}

TEST(Netlist, FlopFeedbackViaConnect) {
    Netlist nl;
    const NetId q = nl.dff_floating(kAlwaysEnabled, kAlwaysEnabled, "state");
    const NetId next = nl.inv(q, "next");
    nl.connect_flop(q, next);
    nl.freeze();
    EXPECT_EQ(nl.cell(q).in[0], next);
    EXPECT_EQ(nl.flops().size(), 1u);
}

TEST(Netlist, FreezeRejectsFloatingFlops) {
    Netlist nl;
    (void)nl.dff_floating();
    EXPECT_THROW(nl.freeze(), std::runtime_error);
}

TEST(Netlist, ScopesPrefixNamesAndModules) {
    Netlist nl;
    const NetId a = nl.input("a");
    NetId inner = kNoNet;
    {
        Netlist::Scope scope(nl, "sbox0");
        inner = nl.inv(a, "n");
    }
    const NetId outer = nl.inv(a, "m");
    EXPECT_EQ(nl.name(inner), "sbox0/n");
    EXPECT_EQ(nl.name(outer), "m");
    EXPECT_NE(nl.module_of(inner), nl.module_of(outer));
}

TEST(Netlist, NestedScopesCompose) {
    Netlist nl;
    const NetId a = nl.input("a");
    nl.push_scope("des");
    nl.push_scope("sbox3");
    const NetId deep = nl.inv(a, "g");
    nl.pop_scope();
    const NetId mid = nl.inv(a, "h");
    nl.pop_scope();
    EXPECT_EQ(nl.name(deep), "des/sbox3/g");
    EXPECT_EQ(nl.name(mid), "des/h");
}

TEST(Netlist, KindHistogramCounts) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    (void)nl.xor2(a, b);
    (void)nl.xor2(a, b);
    (void)nl.and2(a, b);
    const auto hist = nl.kind_histogram();
    EXPECT_EQ(hist[static_cast<std::size_t>(CellKind::Input)], 2u);
    EXPECT_EQ(hist[static_cast<std::size_t>(CellKind::Xor2)], 2u);
    EXPECT_EQ(hist[static_cast<std::size_t>(CellKind::And2)], 1u);
}

TEST(Netlist, CtrlGroupsTracked) {
    Netlist nl;
    const NetId a = nl.input("a");
    (void)nl.dff(a, 3, 7);
    EXPECT_EQ(nl.max_ctrl_group(), 7u);
}

TEST(Builder, InputBusAndXorBus) {
    Netlist nl;
    const Bus a = input_bus(nl, "a", 4);
    const Bus b = input_bus(nl, "b", 4);
    const Bus x = xor_bus(nl, a, b);
    EXPECT_EQ(x.size(), 4u);
    EXPECT_EQ(nl.name(a[2]), "a[2]");
    for (const NetId net : x) EXPECT_EQ(nl.cell(net).kind, CellKind::Xor2);
}

TEST(Builder, XorReduceShapes) {
    Netlist nl;
    const Bus a = input_bus(nl, "a", 5);
    const NetId r = xor_reduce(nl, a);
    EXPECT_EQ(nl.cell(r).kind, CellKind::Xor2);
    // 5 leaves need exactly 4 XOR2 cells.
    const auto hist = nl.kind_histogram();
    EXPECT_EQ(hist[static_cast<std::size_t>(CellKind::Xor2)], 4u);
    // Empty reduce returns a constant.
    Netlist nl2;
    const NetId zero = xor_reduce(nl2, {});
    EXPECT_EQ(nl2.cell(zero).kind, CellKind::Const0);
}

TEST(Builder, DelayUnitsChainLength) {
    Netlist nl;
    const NetId a = nl.input("a");
    const DelayChain chain = delay_units(nl, a, 3, 10, "a_delay");
    EXPECT_EQ(chain.stages.size(), 30u);
    EXPECT_EQ(chain.out, chain.stages.back());
    const auto hist = nl.kind_histogram();
    EXPECT_EQ(hist[static_cast<std::size_t>(CellKind::DelayBuf)], 30u);

    const DelayChain none = delay_units(nl, a, 0, 10);
    EXPECT_EQ(none.out, a);
    EXPECT_TRUE(none.stages.empty());
}

TEST(Builder, CoupleChainsPairsStages) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    const DelayChain ca = delay_units(nl, a, 1, 4);
    const DelayChain cb = delay_units(nl, b, 1, 6);
    couple_chains(nl, ca, cb);
    EXPECT_EQ(nl.coupled_pairs().size(), 4u);
}

TEST(Area, NangateWeightsAccumulate) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    (void)nl.xor2(a, b);
    (void)nl.and2(a, b);
    (void)nl.dff(a);
    const AreaModel model = AreaModel::nangate45();
    EXPECT_NEAR(total_ge(nl, model), 2.33 + 1.33 + 6.0, 1e-9);
}

TEST(Area, DelayInverterCosting) {
    Netlist nl;
    const NetId a = nl.input("a");
    (void)delay_units(nl, a, 1, 10);
    // Paper: 120 inverters per 10-LUT DelayUnit -> 12 INV per DelayBuf.
    const AreaModel model = AreaModel::nangate45_with_delay_inverters(12.0);
    EXPECT_NEAR(total_ge(nl, model), 10 * 12.0 * 0.67, 1e-6);
    EXPECT_NEAR(total_ge_excluding_delay(nl, model), 0.0, 1e-9);
}

TEST(Area, ModuleBreakdownSplitsTopLevelScopes) {
    Netlist nl;
    const NetId a = nl.input("a");
    {
        Netlist::Scope scope(nl, "sbox");
        (void)nl.xor2(a, a);
    }
    {
        Netlist::Scope scope(nl, "keysched");
        (void)nl.and2(a, a);
        (void)nl.and2(a, a);
    }
    const auto split = area_by_module(nl, AreaModel::nangate45());
    ASSERT_GE(split.size(), 2u);
    bool saw_sbox = false;
    bool saw_key = false;
    for (const auto& entry : split) {
        if (entry.module == "sbox") {
            saw_sbox = true;
            EXPECT_NEAR(entry.ge, 2.33, 1e-9);
        }
        if (entry.module == "keysched") {
            saw_key = true;
            EXPECT_NEAR(entry.ge, 2.66, 1e-9);
        }
    }
    EXPECT_TRUE(saw_sbox);
    EXPECT_TRUE(saw_key);
}

TEST(LutMap, PacksSmallConesIntoOneLut) {
    // y = (a & b) ^ (c | d): 3 gates, 4 leaves -> one LUT6.
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    const NetId c = nl.input("c");
    const NetId d = nl.input("d");
    const NetId ab = nl.and2(a, b);
    const NetId cd = nl.or2(c, d);
    (void)nl.xor2(ab, cd);
    nl.freeze();
    const LutMapResult result = estimate_luts(nl, 6);
    EXPECT_EQ(result.luts, 1u);
    EXPECT_EQ(result.ffs, 0u);
}

TEST(LutMap, WideConesSplit) {
    // XOR of 8 inputs: support 8 > 6 -> at least two LUTs.
    Netlist nl;
    const Bus a = input_bus(nl, "a", 8);
    (void)xor_reduce(nl, a);
    nl.freeze();
    const LutMapResult result = estimate_luts(nl, 6);
    EXPECT_GE(result.luts, 2u);
    EXPECT_LE(result.luts, 3u);
}

TEST(LutMap, DelayBufsNeverMerge) {
    Netlist nl;
    const NetId a = nl.input("a");
    const DelayChain chain = delay_units(nl, a, 1, 10);
    (void)nl.inv(chain.out);
    nl.freeze();
    const LutMapResult result = estimate_luts(nl, 6);
    EXPECT_EQ(result.delay_luts, 10u);
    EXPECT_EQ(result.luts, 11u);
}

TEST(LutMap, SharedFanoutBlocksAbsorption) {
    // t = a & b feeds two XORs: t cannot be absorbed into either.
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    const NetId c = nl.input("c");
    const NetId t = nl.and2(a, b);
    (void)nl.xor2(t, c);
    (void)nl.xor2(t, a);
    nl.freeze();
    EXPECT_EQ(estimate_luts(nl, 6).luts, 3u);
}

TEST(Sta, ChainDelayAddsUp) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId n1 = nl.inv(a);
    const NetId n2 = nl.inv(n1);
    (void)nl.dff(n2);
    nl.freeze();
    const sim::DelayConfig config = sim::DelayConfig::deterministic();
    const sim::DelayModel dm(nl, config);
    const sim::CriticalPath cp = analyze_timing(nl, dm);
    // clk_to_q + 2 * (wire_min + inv) + final wire hop into the flop.
    const sim::TimePs expected =
        config.clk_to_q_ps + 2u * (config.wire_min_ps + 150u) + config.wire_min_ps;
    EXPECT_EQ(cp.delay_ps, expected);
    EXPECT_GT(cp.max_freq_mhz, 0.0);
    EXPECT_FALSE(cp.path.empty());
}

TEST(Sta, DelayChainDominatesCriticalPath) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    const DelayChain slow = delay_units(nl, a, 4, 10);
    const NetId g = nl.and2(slow.out, b);
    (void)nl.dff(g);
    nl.freeze();
    const sim::DelayModel dm(nl, sim::DelayConfig::deterministic());
    const sim::CriticalPath cp = analyze_timing(nl, dm);
    // 40 DelayBufs at 600 ps dominate: at least 24 ns.
    EXPECT_GT(cp.delay_ps, 24000u);
    EXPECT_LT(cp.max_freq_mhz, 45.0);
}

}  // namespace
}  // namespace glitchmask::netlist
