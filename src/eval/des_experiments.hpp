// DES-level leakage-assessment drivers (paper Sec. VII).
//
// run_des_tvla() reproduces the paper's measurement campaigns: the masked
// DES core runs fixed-vs-random plaintexts in random order with a fixed
// (but freshly masked) key, one power sample per clock cycle, Gaussian
// measurement noise, and univariate t-tests at orders 1..3 over all time
// samples.  "PRNG off" zeroes both the initial masks and the 14 per-round
// refresh bits (paper Figs. 14a / 17d).
//
// mean_power_trace() produces the averaged per-cycle power consumption
// the paper shows as raw scope traces (Figs. 13 / 16).
#pragma once

#include <cstdint>
#include <vector>

#include "des/masked_des.hpp"
#include "eval/checkpoint.hpp"
#include "leakage/attribution.hpp"
#include "leakage/tvla.hpp"
#include "power/power_model.hpp"
#include "sim/clocked.hpp"

namespace glitchmask::eval {

struct DesTvlaConfig {
    std::size_t traces = 1500;
    double noise_sigma = 1.0;
    std::uint64_t seed = 1;
    std::uint64_t placement_seed = 1;
    /// PRNG on: fresh masks + refresh bits; off: all zero (sanity check).
    bool prng_on = true;
    std::uint64_t fixed_plaintext = 0xDA39A3EE5E6B4B0Dull;
    std::uint64_t key = 0x133457799BBCDFF1ull;
    int max_test_order = 3;
    /// Physical-coupling models (PD core, paper Sec. VII-C).
    sim::CouplingConfig coupling = {};
    double coupling_epsilon = 0.0;
    /// Campaign threads; 0 = auto (GLITCHMASK_WORKERS env / core count).
    unsigned workers = 0;
    /// Shard granularity; fixed per campaign so results are bit-identical
    /// at any worker count (see eval/parallel_campaign.hpp).
    std::size_t block_size = 64;
    /// Traces per event-queue pass: 1 = scalar, 64 = bitsliced, 0 = auto
    /// (GLITCHMASK_LANES env, default 64).  Both paths are bit-identical;
    /// timing coupling forces the scalar path regardless.
    unsigned lanes = 0;
    /// Crash-safe runtime knobs: checkpoint path/cadence, cancellation
    /// token (see eval/checkpoint.hpp).  Defaults leave the runtime off.
    CampaignRunOptions run;
};

struct DesTvlaResult {
    std::size_t samples = 0;
    std::size_t traces = 0;
    /// Traces actually folded into the statistics: == `traces` for a full
    /// run, the contiguous completed prefix for a cancelled one.
    std::size_t completed_traces = 0;
    /// The cancel token fired; the result covers completed_traces only.
    bool cancelled = false;
    /// A checkpoint seeded this run (resume path).
    bool resumed = false;
    /// Toggle events the simulation committed across all traces (the
    /// throughput bench's activity metric; deterministic per campaign).
    std::uint64_t toggles = 0;
    /// max |t| per order (index 1..3; index 0 unused).
    std::array<double, 4> max_abs_t{};
    std::array<std::size_t, 4> argmax{};
    /// Per-net culprit ranking; disabled unless config.run.attribution /
    /// GLITCHMASK_ATTRIBUTION was set.  Use run.attribution_scope (e.g.
    /// "sbox") on the full core: unscoped DES attribution costs ~48 B per
    /// (net, cycle) point per in-flight block.
    leakage::AttributionResult attribution;
    leakage::TvlaCampaign campaign;

    explicit DesTvlaResult(std::size_t n_samples, int max_order)
        : campaign(n_samples, max_order) {}
};

/// The campaign identity of one DES TVLA run; `samples` is the core's
/// total_cycles() (des::MaskedDesCore::total_cycles_for answers from the
/// flavor alone).  Exposed so the service layer can key its result cache
/// without building the core.
[[nodiscard]] CampaignFingerprint des_tvla_fingerprint(
    const DesTvlaConfig& config, std::size_t samples);

/// Likewise for mean_power_trace (block size is fixed at 64 there).
[[nodiscard]] CampaignFingerprint mean_power_fingerprint(
    std::size_t traces, std::uint64_t seed, std::uint64_t placement_seed,
    std::size_t samples);

[[nodiscard]] DesTvlaResult run_des_tvla(const des::MaskedDesCore& core,
                                         const DesTvlaConfig& config);

/// Mean per-cycle power over `traces` random encryptions (PRNG on).
/// `lanes` as in DesTvlaConfig (0 = auto; scalar and bitsliced paths are
/// bit-identical).  `run` enables the crash-safe runtime; on cancellation
/// the mean covers `progress->completed_traces` traces.  When
/// run.attribution is on and `attribution` non-null, the per-net activity
/// view is returned there (all traces are one class, so every |t| is the
/// 0.0 sentinel -- the value of attributing a mean-power run is the
/// glitch-density heatmap).
[[nodiscard]] std::vector<double> mean_power_trace(
    const des::MaskedDesCore& core, std::size_t traces, std::uint64_t seed,
    std::uint64_t placement_seed = 1, unsigned workers = 0, unsigned lanes = 0,
    const CampaignRunOptions& run = {}, CampaignProgress* progress = nullptr,
    leakage::AttributionResult* attribution = nullptr);

}  // namespace glitchmask::eval
