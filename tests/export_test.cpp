#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/gadgets.hpp"
#include "des/masked_des.hpp"
#include "netlist/builder.hpp"
#include "netlist/export.hpp"
#include "sim/clocked.hpp"
#include "sim/vcd.hpp"

namespace glitchmask::netlist {
namespace {

TEST(VerilogExport, EmitsModulePortsAndAssigns) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    const NetId x = nl.xor2(a, b, "x");
    (void)nl.dff(x, /*enable=*/2, /*reset=*/3, "q");
    nl.freeze();
    const std::string verilog = to_verilog(nl, "gadget");
    EXPECT_NE(verilog.find("module gadget ("), std::string::npos);
    EXPECT_NE(verilog.find("input  wire a_0"), std::string::npos);
    EXPECT_NE(verilog.find("input  wire en_g2"), std::string::npos);
    EXPECT_NE(verilog.find("input  wire rst_g3"), std::string::npos);
    EXPECT_NE(verilog.find("assign x_2 = a_0 ^ b_1;"), std::string::npos);
    EXPECT_NE(verilog.find("always @(posedge clk)"), std::string::npos);
    EXPECT_NE(verilog.find("if (rst_g3)"), std::string::npos);
    EXPECT_NE(verilog.find("if (en_g2)"), std::string::npos);
    EXPECT_NE(verilog.find("endmodule"), std::string::npos);
}

TEST(VerilogExport, SecAnd3AndMuxExpressions) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    const NetId c = nl.input("c");
    (void)nl.secand3(a, b, c, "z");
    (void)nl.mux2(a, b, c, "m");
    (void)nl.orn2(a, b, "o");
    nl.freeze();
    const std::string verilog = to_verilog(nl, "cells");
    EXPECT_NE(verilog.find("(a_0 & b_1) ^ (a_0 | ~c_2)"), std::string::npos);
    EXPECT_NE(verilog.find("c_2 ? b_1 : a_0"), std::string::npos);
    EXPECT_NE(verilog.find("a_0 | ~b_1"), std::string::npos);
}

TEST(VerilogExport, WholeGadgetRoundtripsToFile) {
    Netlist nl;
    const core::SharedNet x = core::shared_input(nl, "x");
    const core::SharedNet y = core::shared_input(nl, "y");
    (void)core::secand2_ff(nl, x, y, /*enable=*/1);
    nl.freeze();
    const std::string path = ::testing::TempDir() + "secand2_ff.v";
    write_verilog(nl, path, "secand2_ff");
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_NE(buffer.str().find("module secand2_ff ("), std::string::npos);
    std::remove(path.c_str());
}

TEST(VerilogExport, UnnamedNetsGetUniqueIdentifiers) {
    Netlist nl;
    const NetId a = nl.input("a");
    (void)nl.inv(a);
    (void)nl.inv(a);
    nl.freeze();
    const std::string verilog = to_verilog(nl, "m");
    EXPECT_NE(verilog.find("assign n1 = ~a_0;"), std::string::npos);
    EXPECT_NE(verilog.find("assign n2 = ~a_0;"), std::string::npos);
}

TEST(DotExport, DrawsAndCollapsesChains) {
    Netlist nl;
    const core::SharedNet x = core::shared_input(nl, "x");
    const core::SharedNet y = core::shared_input(nl, "y");
    (void)core::secand2_pd(nl, x, y, core::PathDelayOptions{.luts_per_unit = 5});
    nl.freeze();
    const std::string dot = to_dot(nl);
    EXPECT_NE(dot.find("digraph netlist"), std::string::npos);
    EXPECT_NE(dot.find("delay x5"), std::string::npos);   // 1-unit chains
    EXPECT_NE(dot.find("delay x10"), std::string::npos);  // the y1 chain
    EXPECT_NE(dot.find("SECAND3"), std::string::npos);
}

TEST(DotExport, RefusesOversizedNetlists) {
    Netlist nl;
    const NetId a = nl.input("a");
    NetId cursor = a;
    for (int i = 0; i < 100; ++i) cursor = nl.inv(cursor);
    nl.freeze();
    DotOptions options;
    options.max_cells = 10;
    EXPECT_THROW((void)to_dot(nl, options), std::runtime_error);
}

TEST(Vcd, WritesHeaderInitialValuesAndToggles) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId z = nl.inv(a, "z");
    nl.freeze();
    const sim::DelayModel dm(nl, sim::DelayConfig::deterministic());
    sim::EventSimulator engine(nl, dm);

    const std::string path = ::testing::TempDir() + "wave.vcd";
    {
        sim::VcdWriter vcd(nl, path, {a, z});
        vcd.dump_initial(engine);
        engine.set_sink(&vcd);
        engine.drive(a, true, 1000);
        engine.run_to_quiescence();
    }
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    EXPECT_NE(text.find("$timescale 1ps $end"), std::string::npos);
    EXPECT_NE(text.find("$var wire 1 ! "), std::string::npos);
    EXPECT_NE(text.find("$dumpvars"), std::string::npos);
    EXPECT_NE(text.find("#1000"), std::string::npos);   // a rises
    EXPECT_NE(text.find("#1200"), std::string::npos);   // z falls (wire+inv)
    std::remove(path.c_str());
}

TEST(Vcd, UnwatchedNetsAreSilent) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId z = nl.inv(a, "z");
    (void)z;
    nl.freeze();
    const sim::DelayModel dm(nl, sim::DelayConfig::deterministic());
    sim::EventSimulator engine(nl, dm);
    const std::string path = ::testing::TempDir() + "wave2.vcd";
    {
        sim::VcdWriter vcd(nl, path, {a});  // only `a`
        engine.set_sink(&vcd);
        engine.drive(a, true, 500);
        engine.run_to_quiescence();
    }
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    // Only `a` is declared; z appears nowhere.
    EXPECT_NE(buffer.str().find(" a $end"), std::string::npos);
    EXPECT_EQ(buffer.str().find(" z $end"), std::string::npos);
}

TEST(VerilogExport, FullMaskedDesCoreExports) {
    // The 5k-cell FF core exports without identifier collisions and keeps
    // the controller contract visible.
    const des::MaskedDesCore core(des::MaskedDesOptions{});
    const std::string verilog = to_verilog(core.nl(), "masked_des_ff");
    EXPECT_NE(verilog.find("module masked_des_ff ("), std::string::npos);
    EXPECT_NE(verilog.find("input  wire en_g1"), std::string::npos);   // state
    EXPECT_NE(verilog.find("input  wire rst_g9"), std::string::npos);  // early
    EXPECT_NE(verilog.find("input  wire rst_g10"), std::string::npos); // late
    EXPECT_GT(verilog.size(), 100000u);
}

}  // namespace
}  // namespace glitchmask::netlist
