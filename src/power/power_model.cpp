#include "power/power_model.hpp"

#include <stdexcept>

namespace glitchmask::power {

PowerRecorder::PowerRecorder(const Netlist& nl, PowerConfig config)
    : config_(config) {
    if (!nl.frozen()) throw std::runtime_error("PowerRecorder: netlist not frozen");
    weight_.resize(nl.size());
    for (NetId id = 0; id < nl.size(); ++id) {
        weight_[id] = config.base_weight +
                      config.fanout_weight * static_cast<double>(nl.fanout(id).size());
        if (nl.cell(id).kind == netlist::CellKind::DelayBuf)
            weight_[id] *= config.delaybuf_weight;
    }
    partner_.assign(nl.size(), netlist::kNoNet);
    for (const netlist::CoupledPair& pair : nl.coupled_pairs()) {
        if (partner_[pair.a] == netlist::kNoNet) partner_[pair.a] = pair.b;
        if (partner_[pair.b] == netlist::kNoNet) partner_[pair.b] = pair.a;
    }
}

void PowerRecorder::begin_trace(std::size_t bins) {
    trace_.assign(bins, 0.0);
    trace_toggles_ = 0;
}

void PowerRecorder::on_toggle(NetId net, TimePs time, bool new_value) {
    ++trace_toggles_;
    ++total_toggles_;
    const std::size_t bin = static_cast<std::size_t>(time / config_.bin_ps);
    if (bin >= trace_.size()) return;
    double energy = weight_[net];
    if (config_.coupling_epsilon != 0.0 && partner_[net] != netlist::kNoNet &&
        engine_ != nullptr) {
        // Opposite neighbour level: the cross capacitance sees a doubled
        // swing (more energy); same level: part of the load is shielded.
        const bool neighbour = engine_->value(partner_[net]);
        energy += (neighbour != new_value) ? config_.coupling_epsilon
                                           : -config_.coupling_epsilon;
    }
    trace_[bin] += energy;
}

std::vector<double> PowerRecorder::noisy_trace(Xoshiro256& rng,
                                               double sigma) const {
    std::vector<double> noisy = trace_;
    if (sigma > 0.0)
        for (double& sample : noisy) sample += rng.gaussian(0.0, sigma);
    return noisy;
}

}  // namespace glitchmask::power
