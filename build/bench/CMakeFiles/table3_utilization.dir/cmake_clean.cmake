file(REMOVE_RECURSE
  "CMakeFiles/table3_utilization.dir/table3_utilization.cpp.o"
  "CMakeFiles/table3_utilization.dir/table3_utilization.cpp.o.d"
  "table3_utilization"
  "table3_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
