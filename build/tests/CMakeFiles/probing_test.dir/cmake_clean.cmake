file(REMOVE_RECURSE
  "CMakeFiles/probing_test.dir/probing_test.cpp.o"
  "CMakeFiles/probing_test.dir/probing_test.cpp.o.d"
  "probing_test"
  "probing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
