# Empty dependencies file for throughput.
# This may be replaced when dependencies are built.
