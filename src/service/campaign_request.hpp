// The service-level campaign request: one JSON-typable description that
// covers all four evaluation drivers.
//
// The daemon (and its state file) needs a uniform job currency; the
// drivers each grew their own config struct.  CampaignRequest is the
// union the service accepts over the wire: a kind tag, the knobs all
// drivers share (traces, seed, noise, block plan), and the per-kind
// extras (sequence, gadget, DES flavor/key).  decode_request() applies
// the *driver's* defaults for absent fields, so a submit line like
// {"op":"submit","kind":"gadget_tvla","gadget":"trichina"} runs exactly
// the campaign run_gadget_tvla would run.
//
// request_fingerprint() reuses the drivers' exported checkpoint
// fingerprints as the dedupe/cache key -- deliberately *without* the
// backend fold (scalar/bitsliced/compiled results are proven
// bit-identical, so a cached result from any backend answers all of
// them) and without attribution (the service runs statistics-only).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/circuits.hpp"
#include "des/masked_des.hpp"
#include "eval/campaign.hpp"
#include "eval/checkpoint.hpp"
#include "eval/des_experiments.hpp"
#include "eval/gadget_tvla.hpp"
#include "eval/run_report.hpp"

namespace glitchmask::service {

enum class CampaignKind { SequenceTvla, GadgetTvla, DesTvla, MeanPower };

/// Wire name ("sequence_tvla", "gadget_tvla", "des_tvla", "mean_power").
[[nodiscard]] const char* campaign_kind_name(CampaignKind kind) noexcept;
[[nodiscard]] std::optional<CampaignKind> parse_campaign_kind(
    std::string_view name) noexcept;

struct CampaignRequest {
    CampaignKind kind = CampaignKind::GadgetTvla;
    /// Scheduling priority: higher runs first; ties run in submit order.
    int priority = 0;

    // Knobs shared by every driver (defaults are per-kind; see
    // default_request).
    std::size_t traces = 0;
    double noise_sigma = 0.0;
    std::uint64_t seed = 1;
    std::uint64_t placement_seed = 1;
    int max_test_order = 2;
    std::size_t block_size = 64;
    unsigned lanes = 0;    // 0 = auto
    unsigned workers = 0;  // campaign threads per job; 0 = auto

    // SequenceTvla
    core::InputSequence sequence{core::ShareId::X0, core::ShareId::Y0,
                                 core::ShareId::X1, core::ShareId::Y1};
    unsigned replicas = 16;

    // GadgetTvla
    eval::GadgetKind gadget = eval::GadgetKind::Naive;

    // DesTvla / MeanPower
    des::CoreFlavor flavor = des::CoreFlavor::FF;
    bool prng_on = true;
    std::uint64_t fixed_plaintext = 0xDA39A3EE5E6B4B0Dull;
    std::uint64_t key = 0x133457799BBCDFF1ull;
};

/// A request whose unset fields carry the matching driver's defaults.
[[nodiscard]] CampaignRequest default_request(CampaignKind kind);

/// The request's campaign identity -- the service's cache/dedupe key and
/// the fingerprint its spool checkpoints are stamped with.  Cheap: never
/// builds a circuit.
[[nodiscard]] eval::CampaignFingerprint request_fingerprint(
    const CampaignRequest& request);

/// 80 lowercase hex digits of the five fingerprint words -- spool file
/// stem, the wire form of the cache key, and the ledger's history key
/// (delegates to obs::fingerprint_key so all three agree).
[[nodiscard]] std::string fingerprint_hex(
    const eval::CampaignFingerprint& fingerprint);

/// Serializes the request as one JSON object (the state file's and the
/// submit op's schema).
[[nodiscard]] std::string encode_request(const CampaignRequest& request);

/// Builds a request from a parsed JSON object: "kind" selects the driver
/// defaults, every other present member overrides one field.  Throws
/// std::runtime_error naming the offending member.
[[nodiscard]] CampaignRequest decode_request(const eval::JsonValue& json);

/// What a finished campaign hands back to the service: identity, progress
/// flags, and the driver's headline numbers as named metrics.  Small and
/// POD-ish on purpose -- this is what the result cache stores and the
/// protocol serializes.
struct CampaignOutcome {
    eval::CampaignFingerprint fingerprint{};
    std::size_t total_traces = 0;
    std::size_t completed_traces = 0;
    bool cancelled = false;
    bool resumed = false;
    bool checkpoint_degraded = false;
    bool snapshot_discarded = false;
    std::vector<std::pair<std::string, double>> metrics;
};

/// Runs the request's campaign synchronously with the given runtime
/// options (checkpoint path, cancel token, progress observer, degradation
/// policy).  Throws CampaignError on runtime failures the options did not
/// absorb.
[[nodiscard]] CampaignOutcome run_campaign_request(
    const CampaignRequest& request, eval::CampaignRunOptions run);

}  // namespace glitchmask::service
