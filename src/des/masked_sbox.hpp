// Masked DES S-box netlist builders (paper Sec. IV, Figs. 8a / 9a).
//
// Both flavours share the same structure (the input register layer sits
// in the DES core, which feeds these builders registered shares):
//   -> mini S-box AND stage: the 10 product monomials of x1..x4, computed
//      once and shared by all four mini S-boxes (10 secAND2 gadgets:
//      6 pairs + 4 triples chained on the pairs)
//   -> refresh layer: 10 fresh bits
//   -> mini S-box XOR stage: ANF recombination per row/coordinate
//   -> MUX stage 1: the 4 select products of x0/x5 (4 secAND2 gadgets),
//      refreshed with 4 fresh bits and registered (the paper's "move the
//      refresh before the synchronization register" optimization)
//   -> MUX stage 2: 16 secAND2 gadgets (select x mini output)
//   -> MUX stage 3: XOR recombination into the 4 output bits.
// Total: 30 secAND2 gadgets and 14 fresh random bits per S-box, matching
// the paper exactly; the random nets are shared across all 8 S-boxes of
// the DES core.
//
// secAND2-FF flavour: safe arrival order is enforced by the control FSM
// through enable groups; S-box latency 5 cycles:
//   cycle 1: (core's g_sbox_in) input registers sample; gadget FFs reset
//   cycle 2: g_layer1   pair products + MUX select products complete
//   cycle 3: g_layer2   triple products complete; g_sync MUX-1 register
//   cycle 4: g_mux2     stage-2 delayed shares sample
//   cycle 5: g_out      S-box output register samples
//
// secAND2-PD flavour: safe arrival order is enforced by DelayUnit taps.
// The mini AND stage uses one global Table-II-style schedule over
// x1..x4 (share 0 delayed by 3,2,1,0 units, share 1 by 3,4,5,6), which
// keeps the shared pair products safe inside the triple chains; the
// paper's dedicated 3-variable schedule tops out at 4 units, ours at 6 --
// a documented deviation that costs maximum frequency, not security.
// Latency 2 cycles: the core's input register samples at round start,
// g_mid (MUX-1 refresh register + mini S-box outputs) one cycle later;
// stage 2/3 settle before the next round-start edge.
#pragma once

#include <span>

#include "core/composition.hpp"
#include "core/gadgets.hpp"
#include "des/sbox_anf.hpp"

namespace glitchmask::des {

using core::CtrlGroup;
using core::NetId;
using core::Netlist;
using core::SharedBus;
using core::SharedNet;

inline constexpr std::size_t kRandomBitsPerSbox = 14;  // 10 mini + 4 select
inline constexpr unsigned kSecand2PerSbox = 30;        // 10 + 4 + 16

/// DOM baseline: every masked AND consumes one fresh bit (6 pairs + 4
/// triples + 4 selects + 16 stage-2 products).
inline constexpr std::size_t kDomRandomBitsPerSbox = 30;

/// Control groups of the secAND2-FF S-box (shared by all 8 instances).
struct SboxFfGroups {
    CtrlGroup g_layer1 = 0;
    CtrlGroup g_layer2 = 0;
    CtrlGroup g_sync = 0;
    CtrlGroup g_mux2 = 0;
    CtrlGroup g_out = 0;
    /// Reset groups for the y1-delay flops.  They must be staggered: the
    /// *late* group (triple-layer and MUX-stage-2 delay flops) resets one
    /// cycle before the *early* group (pair-layer and select flops),
    /// because clearing the early flops makes the pair outputs and mini
    /// coordinates transition -- and those transitions must find the
    /// downstream gadgets' y1 already cleared, or an x operand arrives
    /// while both old y shares are visible (the Table I hazard).
    CtrlGroup rst_early = 0;  // pair-layer + select y1 flops (reset at c0)
    CtrlGroup rst_late = 0;   // triple-layer + stage-2 y1 flops (reset at c5)
};

/// Control groups of the secAND2-PD S-box.
struct SboxPdGroups {
    CtrlGroup g_mid = 0;
};

struct SboxPdOptions {
    unsigned luts_per_unit = 10;
    bool couple_adjacent = true;
};

/// Builds one masked S-box (`box` 0..7) of the secAND2-FF flavour.
/// `in`: 6 masked input bits, in[0] = x0 (b5) ... in[5] = x5 (b0); the
/// caller must feed *registered* shares (the S-box input register layer
/// belongs to the DES core so it can be shared across experiment
/// harnesses).  `rand`: 14 fresh-mask nets.  Returns the 4 registered
/// masked output bits, out[0] = y1 (MSB of the S-box nibble).
[[nodiscard]] SharedBus build_masked_sbox_ff(Netlist& nl, unsigned box,
                                             const SharedBus& in,
                                             std::span<const NetId> rand,
                                             const SboxFfGroups& groups);

/// Builds one masked S-box of the secAND2-PD flavour (output is
/// combinational off the g_mid registers; the consumer registers it).
[[nodiscard]] SharedBus build_masked_sbox_pd(Netlist& nl, unsigned box,
                                             const SharedBus& in,
                                             std::span<const NetId> rand,
                                             const SboxPdGroups& groups,
                                             const SboxPdOptions& options = {});

/// Control groups of the DOM baseline S-box: one register stage per
/// masked-AND layer (glitch robustness by construction, no resets).
struct SboxDomGroups {
    CtrlGroup g_dom1 = 0;  // pair + select DOM register stage
    CtrlGroup g_dom2 = 0;  // triple DOM register stage
    CtrlGroup g_dom3 = 0;  // MUX stage-2 DOM register stage
    CtrlGroup g_out = 0;   // S-box output register
};

/// Builds one masked S-box from DOM-indep AND gadgets -- the baseline the
/// paper compares against ([17]).  Same mini-S-box/MUX structure, but
/// every masked AND passes its domain-crossing terms through a register
/// and consumes one fresh bit: 30 bits per S-box per round, S-box latency
/// 5 cycles.  `rand` must supply kDomRandomBitsPerSbox nets.
[[nodiscard]] SharedBus build_masked_sbox_dom(Netlist& nl, unsigned box,
                                              const SharedBus& in,
                                              std::span<const NetId> rand,
                                              const SboxDomGroups& groups);

}  // namespace glitchmask::des
