# Empty compiler generated dependencies file for table3_utilization.
# This may be replaced when dependencies are built.
