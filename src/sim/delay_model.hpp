// Per-instance timing annotation of a netlist.
//
// This is what makes the simulator "glitchy": every gate instance gets a
// static, seeded random delay around its kind's nominal value, and every
// (cell, pin) edge gets a static random wire (routing) delay.  Different
// arrival times at reconvergent gates then produce exactly the transient
// toggles the paper attributes to glitches.  The jitter is *data
// independent* (fixed at construction, like placement and routing), which
// is what distinguishes benign skew from the data-dependent coupling
// effects modelled separately (sim/simulator.hpp, CouplingConfig).
//
// DelayBuf cells (LUT delay elements, paper Sec. V) get their own nominal
// delay and a much smaller jitter: the paper hand-places them with
// location constraints precisely to make their delay replicable.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace glitchmask::sim {

using netlist::CellId;
using netlist::CellKind;
using netlist::Netlist;
using netlist::NetId;

/// Simulation time in picoseconds.
using TimePs = std::uint64_t;

struct DelayConfig {
    /// Nominal propagation delay per cell kind [ps].
    std::array<std::uint32_t, netlist::kNumCellKinds> nominal_ps{};

    /// Relative uniform jitter on gate delays (0.25 = +-25%).
    double gate_jitter = 0.25;

    /// Routing delay per (cell, pin) edge: uniform in [wire_min, wire_max].
    /// This range is the "placement uncertainty" the DelayUnits must beat:
    /// a 1-LUT DelayUnit (~0.65 ns) is smaller than the spread, a 10-LUT
    /// unit (~6.5 ns) safely dominates it -- reproducing paper Fig. 15.
    std::uint32_t wire_min_ps = 50;
    std::uint32_t wire_max_ps = 2500;

    /// Relative jitter on DelayBuf cells (hand-placed, replicable).
    double delaybuf_jitter = 0.08;

    /// Clock-to-Q of flip-flops and launch delay of primary inputs.
    std::uint32_t clk_to_q_ps = 200;

    /// Flip-flop setup time (used by STA only).
    std::uint32_t setup_ps = 100;

    /// Seed for the static per-instance jitter ("placement seed").
    std::uint64_t seed = 1;

    /// Spartan-6-flavoured defaults: LUT logic ~250-300 ps, one DelayBuf
    /// (LUT + its local routing) ~600 ps, routing skew up to ~1.6 ns.
    [[nodiscard]] static DelayConfig spartan6();

    /// Zero-jitter variant (all wires wire_min, no gate jitter); useful in
    /// unit tests that need exact arrival arithmetic.
    [[nodiscard]] static DelayConfig deterministic();
};

class DelayModel {
public:
    DelayModel(const Netlist& nl, const DelayConfig& config);

    [[nodiscard]] std::uint32_t gate_delay(CellId id) const noexcept {
        return gate_ps_[id];
    }
    [[nodiscard]] std::uint32_t wire_delay(CellId cell, unsigned pin) const noexcept {
        return wire_ps_[cell * 3 + pin];
    }
    [[nodiscard]] std::uint32_t clk_to_q() const noexcept { return config_.clk_to_q_ps; }
    [[nodiscard]] std::uint32_t setup() const noexcept { return config_.setup_ps; }
    [[nodiscard]] const DelayConfig& config() const noexcept { return config_; }
    [[nodiscard]] std::size_t size() const noexcept { return gate_ps_.size(); }

private:
    DelayConfig config_;
    std::vector<std::uint32_t> gate_ps_;
    std::vector<std::uint32_t> wire_ps_;
};

/// Static timing analysis result.
struct CriticalPath {
    TimePs delay_ps = 0;          // launch edge to last settling point
    double max_freq_mhz = 0.0;    // 1e6 / (delay + setup)
    std::vector<CellId> path;     // endpoint-first chain of cells
};

/// Longest-path STA over the annotated netlist: arrival of every net from
/// launch (flop Q / primary input) through gate + wire delays; the
/// critical path ends at the latest flop D pin (or the latest net when
/// the design has no flops).
[[nodiscard]] CriticalPath analyze_timing(const Netlist& nl, const DelayModel& dm);

}  // namespace glitchmask::sim
