// Self-contained experiment circuits built from the gadget library.
//
// These are the circuits the paper's gadget-level experiments run on:
//   * RegisteredSecand2 -- secAND2 behind four individually enable-
//     controlled input registers (Fig. 5), replicated in parallel for SNR
//     exactly like the paper's Table I experiment.  The testbench updates
//     one register per cycle to realize any of the 4! input sequences.
//   * MaskedF -- the f = x ^ y ^ (x & y) circuit of Fig. 7, with and
//     without the refresh gadget, used to demonstrate why dependent terms
//     must be refreshed before a XOR (Sec. III-C).
#pragma once

#include <array>
#include <vector>

#include "core/composition.hpp"
#include "core/gadgets.hpp"

namespace glitchmask::core {

/// Which input share a sequence slot refers to.
enum class ShareId : std::uint8_t { X0 = 0, X1 = 1, Y0 = 2, Y1 = 3 };

[[nodiscard]] constexpr const char* share_name(ShareId id) noexcept {
    switch (id) {
        case ShareId::X0: return "x0";
        case ShareId::X1: return "x1";
        case ShareId::Y0: return "y0";
        case ShareId::Y1: return "y1";
    }
    return "?";
}

/// An order in which the four shares are applied, one per clock cycle.
using InputSequence = std::array<ShareId, 4>;

/// All 24 permutations of (x0, x1, y0, y1), lexicographic.
[[nodiscard]] std::vector<InputSequence> all_input_sequences();

/// Table I ground truth: a sequence is *expected* to leak iff an x share
/// arrives in the last clock cycle.
[[nodiscard]] constexpr bool sequence_expected_to_leak(
    const InputSequence& seq) noexcept {
    return seq[3] == ShareId::X0 || seq[3] == ShareId::X1;
}

/// secAND2 with an input-register layer (Fig. 5), replicated `replicas`
/// times in parallel on the same registers.
struct RegisteredSecand2 {
    Netlist nl;
    /// Primary inputs carrying the share values (stable during the op).
    std::array<NetId, 4> in{};  // indexed by ShareId
    /// Enable group of each input register (toggle to sample that share).
    std::array<CtrlGroup, 4> enable{};  // indexed by ShareId
    /// Reset group covering all four input registers.
    CtrlGroup reset = 0;
    /// Gadget outputs, one per replica.
    std::vector<SharedNet> outputs;
};
[[nodiscard]] RegisteredSecand2 build_registered_secand2(unsigned replicas);

/// f = x ^ y ^ (x & y) (Fig. 7).  Inputs land in an input-register layer
/// (group `in_enable`), the product is computed with secAND2-FF (internal
/// flop in group `mul_enable`, i.e. the cycle after the inputs), and --
/// when `with_refresh` -- the product shares are refreshed with mask `m`
/// before the XOR plane.
struct MaskedF {
    Netlist nl;
    NetId x0, x1, y0, y1, m;
    CtrlGroup in_enable = 1;
    CtrlGroup mul_enable = 2;
    CtrlGroup reset = 3;
    SharedNet f;
    bool refreshed = false;
};
[[nodiscard]] MaskedF build_masked_f(bool with_refresh);

}  // namespace glitchmask::core
