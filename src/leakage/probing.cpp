#include "leakage/probing.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace glitchmask::leakage {

namespace {

using netlist::CellKind;
using netlist::NetId;

/// Levelized evaluation with transparent flops; values packed per net.
void evaluate_packed(const core::Netlist& nl,
                     const std::vector<std::uint8_t>& source_values,
                     std::vector<std::uint8_t>& values,
                     std::vector<std::uint64_t>& row) {
    for (netlist::CellId id = 0; id < nl.size(); ++id) {
        const netlist::Cell& cell = nl.cell(id);
        bool v = false;
        switch (cell.kind) {
            case CellKind::Input:
                v = source_values[id] != 0;
                break;
            case CellKind::Const0:
                v = false;
                break;
            case CellKind::Const1:
                v = true;
                break;
            case CellKind::Dff:
                v = values[cell.in[0]] != 0;  // transparent
                break;
            default: {
                const unsigned pins = netlist::pin_count(cell.kind);
                bool a = false;
                bool b = false;
                bool c = false;
                if (pins > 0) a = values[cell.in[0]] != 0;
                if (pins > 1) b = values[cell.in[1]] != 0;
                if (pins > 2) c = values[cell.in[2]] != 0;
                v = netlist::eval_cell(cell.kind, a, b, c);
                break;
            }
        }
        values[id] = v ? 1 : 0;
        if (v)
            row[id / 64] |= std::uint64_t{1} << (id % 64);
        else
            row[id / 64] &= ~(std::uint64_t{1} << (id % 64));
    }
}

}  // namespace

ProbingAnalyzer::ProbingAnalyzer(const core::Netlist& nl,
                                 std::vector<core::SharedNet> secrets,
                                 std::vector<netlist::NetId> fresh,
                                 ProbingOptions options)
    : nl_(nl),
      secrets_(std::move(secrets)),
      fresh_(std::move(fresh)),
      options_(options) {
    // Note: flops are transparent, so creation order remains a valid
    // evaluation order only when no flop's D references a later cell; the
    // gadget builders satisfy this (no feedback inside gadgets).
    for (const netlist::CellId flop : nl.flops())
        if (nl.cell(flop).in[0] > flop)
            throw std::invalid_argument(
                "ProbingAnalyzer: feedback flop; analyze gadgets, not cores");

    const std::size_t k = secrets_.size();
    const std::size_t mask_bits = k + fresh_.size();
    if (k > 16 || mask_bits > 62)
        throw std::invalid_argument("ProbingAnalyzer: too many inputs");

    const std::uint64_t n_secrets = std::uint64_t{1} << k;
    const std::uint64_t n_masks = std::uint64_t{1} << mask_bits;
    exhaustive_ = n_secrets * n_masks <= options_.max_exhaustive;
    samples_per_secret_ =
        exhaustive_ ? n_masks : options_.samples_per_secret;

    words_ = (nl.size() + 63) / 64;
    rows_.assign(n_secrets, {});
    evaluate_all();
}

void ProbingAnalyzer::accumulate(std::uint64_t secret_index,
                                 std::uint64_t mask_bits) {
    static thread_local std::vector<std::uint8_t> sources;
    static thread_local std::vector<std::uint8_t> values;
    sources.assign(nl_.size(), 0);
    values.assign(nl_.size(), 0);

    const std::size_t k = secrets_.size();
    for (std::size_t i = 0; i < k; ++i) {
        const bool secret = ((secret_index >> i) & 1u) != 0;
        const bool s0 = ((mask_bits >> i) & 1u) != 0;
        sources[secrets_[i].s0] = s0 ? 1 : 0;
        sources[secrets_[i].s1] = (s0 != secret) ? 1 : 0;
    }
    for (std::size_t j = 0; j < fresh_.size(); ++j)
        sources[fresh_[j]] = ((mask_bits >> (k + j)) & 1u) != 0 ? 1 : 0;

    std::vector<std::uint64_t> row(words_, 0);
    evaluate_packed(nl_, sources, values, row);
    rows_[secret_index].push_back(std::move(row));
}

void ProbingAnalyzer::evaluate_all() {
    const std::uint64_t n_secrets = std::uint64_t{1} << secrets_.size();
    Xoshiro256 rng(options_.seed);
    for (std::uint64_t u = 0; u < n_secrets; ++u) {
        rows_[u].reserve(samples_per_secret_);
        if (exhaustive_) {
            for (std::uint64_t m = 0; m < samples_per_secret_; ++m)
                accumulate(u, m);
        } else {
            const unsigned bits =
                static_cast<unsigned>(secrets_.size() + fresh_.size());
            for (std::uint64_t s = 0; s < samples_per_secret_; ++s)
                accumulate(u, rng.bits(bits));
        }
    }
}

double ProbingAnalyzer::net_bias(NetId net) const {
    const double n = static_cast<double>(samples_per_secret_);
    std::vector<double> p_one(rows_.size(), 0.0);
    double mean = 0.0;
    for (std::size_t u = 0; u < rows_.size(); ++u) {
        std::uint64_t ones = 0;
        for (const auto& row : rows_[u])
            ones += (row[net / 64] >> (net % 64)) & 1u;
        p_one[u] = static_cast<double>(ones) / n;
        mean += p_one[u];
    }
    mean /= static_cast<double>(rows_.size());
    double bias = 0.0;
    for (const double p : p_one) bias = std::max(bias, std::fabs(p - mean));
    return bias;
}

double ProbingAnalyzer::pair_bias(NetId a, NetId b) const {
    const double n = static_cast<double>(samples_per_secret_);
    std::vector<std::array<double, 4>> dist(rows_.size());
    std::array<double, 4> mean{};
    for (std::size_t u = 0; u < rows_.size(); ++u) {
        std::array<std::uint64_t, 4> counts{};
        for (const auto& row : rows_[u]) {
            const unsigned va = (row[a / 64] >> (a % 64)) & 1u;
            const unsigned vb = (row[b / 64] >> (b % 64)) & 1u;
            ++counts[va | (vb << 1)];
        }
        for (int j = 0; j < 4; ++j) {
            dist[u][j] = static_cast<double>(counts[j]) / n;
            mean[j] += dist[u][j];
        }
    }
    for (double& m : mean) m /= static_cast<double>(rows_.size());
    double bias = 0.0;
    for (const auto& d : dist) {
        double tv = 0.0;
        for (int j = 0; j < 4; ++j) tv += std::fabs(d[j] - mean[j]);
        bias = std::max(bias, tv / 2.0);  // total variation distance
    }
    return bias;
}

double ProbingAnalyzer::sharing_uniformity_bias(const core::SharedNet& z) const {
    const double n = static_cast<double>(samples_per_secret_);
    double bias = 0.0;
    for (std::size_t u = 0; u < rows_.size(); ++u) {
        std::array<std::uint64_t, 4> counts{};
        for (const auto& row : rows_[u]) {
            const unsigned s0 = (row[z.s0 / 64] >> (z.s0 % 64)) & 1u;
            const unsigned s1 = (row[z.s1 / 64] >> (z.s1 % 64)) & 1u;
            ++counts[s0 | (s1 << 1)];
        }
        // The unshared value must be constant for this secret (otherwise
        // z is not a sharing of a deterministic function of the secrets).
        const bool value_one = (counts[1] + counts[2]) > (counts[0] + counts[3]);
        const std::uint64_t consistent_a = value_one ? counts[1] : counts[0];
        const std::uint64_t consistent_b = value_one ? counts[2] : counts[3];
        const double tv =
            (std::fabs(static_cast<double>(consistent_a) / n - 0.5) +
             std::fabs(static_cast<double>(consistent_b) / n - 0.5)) /
            2.0;
        bias = std::max(bias, tv);
    }
    return bias;
}

std::vector<ProbeBias> ProbingAnalyzer::first_order_violations() const {
    std::vector<ProbeBias> violations;
    for (NetId net = 0; net < nl_.size(); ++net) {
        const netlist::CellKind kind = nl_.cell(net).kind;
        if (kind == netlist::CellKind::Input) continue;  // inputs are shares
        const double bias = net_bias(net);
        if (bias > options_.bias_threshold)
            violations.push_back(ProbeBias{net, netlist::kNoNet, bias});
    }
    std::sort(violations.begin(), violations.end(),
              [](const ProbeBias& x, const ProbeBias& y) {
                  return x.bias > y.bias;
              });
    return violations;
}

}  // namespace glitchmask::leakage
