// Masked DES / Triple-DES demo: encrypt the classic DES worked example on
// both protected cores and verify against the reference implementation.
//
// Uses the zero-delay engine for speed; swap in sim::ClockedSim (as the
// benches do) to run the same cores glitch-accurately.
#include <cstdio>

#include "core/sharing.hpp"
#include "des/des_reference.hpp"
#include "des/masked_des.hpp"
#include "sim/functional.hpp"
#include "support/rng.hpp"

using namespace glitchmask;

namespace {

bool demo_core(des::CoreFlavor flavor, const char* name, Xoshiro256& rng) {
    des::MaskedDesOptions options;
    options.flavor = flavor;
    options.delayunit_luts = flavor == des::CoreFlavor::PD ? 10 : 0;
    const des::MaskedDesCore core(options);
    sim::ZeroDelaySim sim(core.nl());

    const std::uint64_t pt = 0x0123456789ABCDEFull;
    const std::uint64_t key = 0x133457799BBCDFF1ull;
    const std::uint64_t expected = des::encrypt_block(pt, key);

    sim.restart();
    const core::MaskedWord mpt = core::mask_word(pt, 64, rng);
    const core::MaskedWord mkey = core::mask_word(key, 64, rng);
    const core::MaskedWord mct = core.encrypt(sim, mpt, mkey, &rng);

    std::printf("%s core (%u cells, %u cycles/round, %u cycles/block):\n",
                name, static_cast<unsigned>(core.nl().size()),
                core.cycles_per_round(), core.total_cycles());
    std::printf("  pt  %016llx   key %016llx\n",
                static_cast<unsigned long long>(pt),
                static_cast<unsigned long long>(key));
    std::printf("  ct shares: %016llx ^ %016llx\n",
                static_cast<unsigned long long>(mct.s0),
                static_cast<unsigned long long>(mct.s1));
    std::printf("  ct  %016llx   reference %016llx   %s\n\n",
                static_cast<unsigned long long>(mct.value()),
                static_cast<unsigned long long>(expected),
                mct.value() == expected ? "MATCH" : "MISMATCH");
    return mct.value() == expected;
}

}  // namespace

int main() {
    std::printf("Masked DES demo: the worked example on both cores\n\n");
    Xoshiro256 rng(7);
    bool ok = demo_core(des::CoreFlavor::FF, "secAND2-FF", rng);
    ok = demo_core(des::CoreFlavor::PD, "secAND2-PD", rng) && ok;

    // Triple-DES (EDE) by chaining masked single-DES operations -- DES's
    // main use today (paper Sec. IV).  E(k3, D(k2, E(k1, pt))): the
    // decryption step runs on the reference model here for brevity.
    const std::uint64_t pt = 0x0123456789ABCDEFull;
    const std::uint64_t k1 = 0x133457799BBCDFF1ull;
    const std::uint64_t k2 = 0x0E329232EA6D0D73ull;
    const std::uint64_t k3 = 0xAABB09182736CCDDull;
    const des::MaskedDesCore core(des::MaskedDesOptions{});
    sim::ZeroDelaySim sim(core.nl());

    sim.restart();
    const std::uint64_t stage1 = core.encrypt_value(sim, pt, k1, &rng);
    const std::uint64_t stage2 = des::decrypt_block(stage1, k2);
    sim.restart();
    const std::uint64_t stage3 = core.encrypt_value(sim, stage2, k3, &rng);
    const std::uint64_t expected = des::tdes_encrypt(pt, k1, k2, k3);
    std::printf("TDES-EDE via masked cores: %016llx   reference %016llx   %s\n",
                static_cast<unsigned long long>(stage3),
                static_cast<unsigned long long>(expected),
                stage3 == expected ? "MATCH" : "MISMATCH");
    ok = ok && stage3 == expected;
    return ok ? 0 : 1;
}
