#!/usr/bin/env bash
# Daemon chaos smoke: boots glitchmaskd against a scratch spool and drives
# it through the robustness contract end to end with campaign_client:
#
#   1. clean run      -> completed, and an identical resubmit answers from
#                        the result cache without re-simulating;
#   2. EINTR storm    -> a seeded fault plan (via GLITCHMASK_FAULTS, the
#                        environment lever) peppers every atomic_file site
#                        with EINTR; the run must complete with metrics
#                        byte-identical to the fault-free run;
#   3. ENOSPC        -> persistent checkpoint-fsync failure; the daemon
#                        degrades to the in-memory frontier (flagged as
#                        checkpoint_degraded) and still completes with
#                        byte-identical metrics;
#   4. SIGTERM drain  -> the daemon is killed mid-campaign; the unfinished
#                        request lands in the state file, the restarted
#                        daemon resumes it from the spool snapshot, and a
#                        reconnecting client gets the completed result;
#   5. observability  -> with --trace-dir and --metrics-file up, a traced
#                        job must yield a python-validated Chrome-trace
#                        JSON (queue_wait/execute/block spans), the
#                        metrics verb must answer a well-formed registry
#                        dump, and the Prometheus exposition file must
#                        materialize -- all without perturbing the
#                        result (metrics byte-identical to the clean
#                        run).
#
# All fault schedules are seeded, so any failure reproduces exactly.
# Usage: scripts/chaos_smoke.sh BUILDDIR   (e.g. build or build-asan)
set -euo pipefail
cd "$(dirname "$0")/.."

builddir="${1:?usage: scripts/chaos_smoke.sh BUILDDIR}"
daemon="$builddir/src/glitchmaskd"
client="$builddir/examples/campaign_client"
work="$(mktemp -d "${TMPDIR:-/tmp}/gm-chaos.XXXXXX")"
sock="$work/gm.sock"
request='{"op":"submit","kind":"gadget_tvla","gadget":"trichina","traces":512,"seed":7}'
daemon_pid=""

cleanup() {
  [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

start_daemon() {  # start_daemon [extra daemon args...]
  mkdir -p "$work/spool"
  "$daemon" --socket "$sock" --spool "$work/spool" \
    --state "$work/state.json" "$@" >>"$work/daemon.log" 2>&1 &
  daemon_pid=$!
  for _ in $(seq 1 100); do
    [ -S "$sock" ] && return 0
    sleep 0.1
  done
  echo "FAIL: daemon did not come up (see $work/daemon.log)" >&2
  exit 1
}

stop_daemon() {
  "$client" "$sock" '{"op":"shutdown","drain":false}' >/dev/null
  wait "$daemon_pid"
  daemon_pid=""
}

# Submits $request, prints the terminal result line, fails on non-completion.
submit_expect_completed() {
  local line
  line="$("$client" "$sock" "$request" | tail -1)"
  if ! grep -q '"state":"completed"' <<<"$line"; then
    echo "FAIL: expected a completed result, got: $line" >&2
    exit 1
  fi
  printf '%s\n' "$line"
}

metrics_of() { sed -n 's/.*"metrics":{\([^}]*\)}.*/\1/p' <<<"$1"; }

echo "--- chaos smoke 1/5: clean run + cache hit"
start_daemon
fresh="$(submit_expect_completed)"
reference_metrics="$(metrics_of "$fresh")"
if [ -z "$reference_metrics" ]; then
  echo "FAIL: result carried no metrics: $fresh" >&2
  exit 1
fi
cached="$(submit_expect_completed)"
grep -q '"cached":true' <<<"$cached" || {
  echo "FAIL: resubmit was not answered from the cache: $cached" >&2
  exit 1
}
stop_daemon

echo "--- chaos smoke 2/5: EINTR storm is absorbed bit-identically"
rm -rf "$work/spool" "$work/state.json"
GLITCHMASK_FAULTS='seed=9;atomic_file.*=eintr@p=0.35' start_daemon
stormy="$(submit_expect_completed)"
[ "$(metrics_of "$stormy")" = "$reference_metrics" ] || {
  echo "FAIL: metrics drifted under the EINTR storm: $stormy" >&2
  exit 1
}
stop_daemon

echo "--- chaos smoke 3/5: checkpoint ENOSPC degrades, result still exact"
rm -rf "$work/spool" "$work/state.json"
start_daemon --faults 'seed=10;atomic_file.fsync=enospc'
degraded="$(submit_expect_completed)"
grep -q '"checkpoint_degraded":true' <<<"$degraded" || {
  echo "FAIL: fsync=enospc did not flag checkpoint degradation: $degraded" >&2
  exit 1
}
[ "$(metrics_of "$degraded")" = "$reference_metrics" ] || {
  echo "FAIL: metrics drifted under checkpoint degradation: $degraded" >&2
  exit 1
}
stop_daemon

echo "--- chaos smoke 4/5: SIGTERM drain, restart resumes from the spool"
rm -rf "$work/spool" "$work/state.json"
start_daemon
long_request='{"op":"submit","kind":"gadget_tvla","gadget":"trichina","traces":300000,"seed":8}'
"$client" "$sock" "$long_request" >"$work/client.log" 2>&1 &
client_pid=$!
for _ in $(seq 1 200); do
  grep -q '"event":"progress"' "$work/client.log" && break
  sleep 0.1
done
grep -q '"event":"progress"' "$work/client.log" || {
  echo "FAIL: long campaign never reported progress" >&2
  exit 1
}
kill -TERM "$daemon_pid"
wait "$daemon_pid"
daemon_pid=""
wait "$client_pid" 2>/dev/null || true
[ -f "$work/state.json" ] || {
  echo "FAIL: drain left no state file" >&2
  exit 1
}
start_daemon
resumed="$("$client" "$sock" "$long_request" | tail -1)"
grep -q '"state":"completed"' <<<"$resumed" || {
  echo "FAIL: restarted daemon did not finish the drained campaign: $resumed" >&2
  exit 1
}
grep -q '"resumed":true' <<<"$resumed" || {
  echo "FAIL: restarted campaign did not resume from the spool: $resumed" >&2
  exit 1
}
stop_daemon

echo "--- chaos smoke 5/5: tracing + metrics exposition, result still exact"
rm -rf "$work/spool" "$work/state.json"
mkdir -p "$work/traces"
start_daemon --trace-dir "$work/traces" --metrics-file "$work/metrics.prom"
traced="$(submit_expect_completed)"
[ "$(metrics_of "$traced")" = "$reference_metrics" ] || {
  echo "FAIL: metrics drifted with tracing+telemetry on: $traced" >&2
  exit 1
}
grep -q '"spans":\[' <<<"$traced" || {
  echo "FAIL: traced result carried no span rollup: $traced" >&2
  exit 1
}

metrics_line="$("$client" "$sock" '{"op":"metrics"}' | tail -1)"
printf '%s\n' "$metrics_line" | python3 -c '
import json, sys
doc = json.loads(sys.stdin.readline())
assert doc["event"] == "metrics", doc
for section in ("counters", "histograms", "gauges", "service"):
    assert section in doc, f"metrics reply missing {section!r}"
execute = doc["histograms"]["service.execute_nanos"]
assert execute["count"] >= 1, execute
assert sum(n for _, n in execute["buckets"]) == execute["count"], execute
assert doc["service"]["cache_entries"] >= 1, doc["service"]
' || {
  echo "FAIL: metrics verb reply failed validation: $metrics_line" >&2
  exit 1
}

trace_file="$(ls "$work/traces"/job-*.trace.json 2>/dev/null | head -1)"
[ -n "$trace_file" ] || {
  echo "FAIL: no job trace exported to $work/traces" >&2
  exit 1
}
python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
names = {event["name"] for event in doc["traceEvents"]}
for required in ("job", "queue_wait", "execute", "block"):
    assert required in names, f"trace missing {required!r} spans: {names}"
for event in doc["traceEvents"]:
    assert event["ph"] == "X" and "args" in event, event
' "$trace_file" || {
  echo "FAIL: exported trace failed validation: $trace_file" >&2
  exit 1
}
stop_daemon
[ -s "$work/metrics.prom" ] || {
  echo "FAIL: daemon never wrote the Prometheus exposition file" >&2
  exit 1
}
grep -q '^glitchmask_service_execute_nanos_count' "$work/metrics.prom" || {
  echo "FAIL: exposition file lacks the execute-latency histogram" >&2
  exit 1
}

echo "chaos smoke: all 5 scenarios passed"
