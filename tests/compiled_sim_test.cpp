// Exact-equivalence harness for the compiled-netlist replay backend.
//
// The contract is the same as batch_sim_test.cpp's, one level wider: every
// lane of a CompiledClockedSim pass (here 128 lanes = 2 chunks, so the
// multi-chunk data path is exercised) must commit exactly the toggle
// stream, power trace and toggle count of a scalar EventSimulator run of
// that lane's stimulus -- with inertial filtering on and off, and with
// energy coupling on where the gadget has coupled pairs.  On top of the
// engine-level checks, the campaign drivers must be bit-identical across
// backend={event,compiled} (TVLA t-curves, attribution rankings), a
// checkpoint written under one backend must refuse to resume under the
// other, and the process-wide program cache must actually share programs.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/circuits.hpp"
#include "core/gadgets.hpp"
#include "des/masked_des.hpp"
#include "eval/des_experiments.hpp"
#include "eval/gadget_tvla.hpp"
#include "power/batch_power.hpp"
#include "power/power_model.hpp"
#include "sim/batch_simulator.hpp"
#include "sim/clocked.hpp"
#include "sim/compiled_simulator.hpp"
#include "sim/simulator.hpp"
#include "support/atomic_file.hpp"
#include "support/campaign_error.hpp"
#include "support/cancel.hpp"
#include "support/rng.hpp"

namespace glitchmask {
namespace {

using core::SharedNet;
using netlist::NetId;
using sim::TimePs;

constexpr unsigned kLanes = 128;  // 2 chunks: cross-chunk wiring in play
constexpr unsigned kChunks = kLanes / 64u;

struct ToggleRec {
    NetId net;
    TimePs time;
    bool value;

    bool operator==(const ToggleRec&) const = default;
};

/// Records the scalar commit stream while forwarding to a power recorder.
class ScalarTee final : public sim::ToggleSink {
public:
    explicit ScalarTee(sim::ToggleSink* next = nullptr) : next_(next) {}
    void on_toggle(NetId net, TimePs time, bool value) override {
        records.push_back({net, time, value});
        if (next_ != nullptr) next_->on_toggle(net, time, value);
    }
    std::vector<ToggleRec> records;

private:
    sim::ToggleSink* next_;
};

/// Records one chunk's commit stream while forwarding to its recorder.
class ChunkTee final : public sim::BatchToggleSink {
public:
    explicit ChunkTee(sim::BatchToggleSink* next = nullptr) : next_(next) {}
    void on_toggle(NetId net, TimePs time, std::uint64_t values,
                   std::uint64_t toggled) override {
        records.push_back({net, time, values, toggled});
        if (next_ != nullptr) next_->on_toggle(net, time, values, toggled);
    }

    /// The chunk stream restricted to one lane (0..63), in commit order.
    [[nodiscard]] std::vector<ToggleRec> lane(unsigned l) const {
        std::vector<ToggleRec> out;
        for (const auto& rec : records)
            if (((rec.toggled >> l) & 1u) != 0)
                out.push_back({rec.net, rec.time, ((rec.values >> l) & 1u) != 0});
        return out;
    }

    struct Rec {
        NetId net;
        TimePs time;
        std::uint64_t values;
        std::uint64_t toggled;
    };
    std::vector<Rec> records;

private:
    sim::BatchToggleSink* next_;
};

unsigned fresh_bits(eval::GadgetKind kind) {
    return eval::gadget_fresh_bits(kind);
}

struct Harness {
    core::Netlist nl;
    SharedNet x_in{}, y_in{};
    std::vector<NetId> rand_in;
};

/// Same structure as the gadget-zoo bench: registered shared inputs and
/// registered fresh bits feeding `replicas` gadget instances.
Harness build(eval::GadgetKind kind, unsigned replicas) {
    Harness h;
    h.x_in = core::shared_input(h.nl, "x");
    h.y_in = core::shared_input(h.nl, "y");
    for (unsigned i = 0; i < fresh_bits(kind); ++i)
        h.rand_in.push_back(h.nl.input("r" + std::to_string(i)));
    const SharedNet x = core::reg_shares(h.nl, h.x_in, 1);
    const SharedNet y = core::reg_shares(h.nl, h.y_in, 1);
    std::vector<NetId> rand_regs;
    for (const NetId r : h.rand_in) rand_regs.push_back(h.nl.dff(r, 1));

    for (unsigned k = 0; k < replicas; ++k) {
        const std::string name = "g" + std::to_string(k);
        switch (kind) {
            case eval::GadgetKind::Naive:
                (void)core::secand2(h.nl, x, y, name);
                break;
            case eval::GadgetKind::Ff:
                (void)core::secand2_ff(h.nl, x, y, 2, 3, name);
                break;
            case eval::GadgetKind::Pd:
                (void)core::secand2_pd(h.nl, x, y, {10, true}, name);
                break;
            case eval::GadgetKind::Trichina:
                (void)core::trichina_and(h.nl, x, y, rand_regs[0], name);
                break;
            case eval::GadgetKind::DomIndep:
                (void)core::dom_and_indep(h.nl, x, y, rand_regs[0], 2, name);
                break;
            case eval::GadgetKind::DomDep:
                (void)core::dom_and_dep(h.nl, x, y, rand_regs[0], rand_regs[1],
                                        rand_regs[2], 2, name);
                break;
        }
    }
    h.nl.freeze();
    return h;
}

std::vector<NetId> all_inputs(const Harness& h) {
    std::vector<NetId> nets{h.x_in.s0, h.x_in.s1, h.y_in.s0, h.y_in.s1};
    nets.insert(nets.end(), h.rand_in.begin(), h.rand_in.end());
    return nets;
}

/// The zoo's drive schedule, against either clocked driver.
template <typename Sim>
void run_schedule(Sim& sim, bool has_stage2) {
    sim.step();
    sim.set_enable(1, true);
    sim.step();
    sim.set_enable(1, false);
    if (has_stage2) sim.set_enable(2, true);
    sim.step();
    if (has_stage2) sim.set_enable(2, false);
    sim.step();
    sim.step();
}

constexpr std::size_t kCycles = 5;
constexpr TimePs kPeriod = 90000;

void expect_compiled_equivalence(eval::GadgetKind kind, bool inertial,
                                 double epsilon) {
    SCOPED_TRACE(std::string(eval::gadget_name(kind)) +
                 (inertial ? " inertial" : " transport") +
                 (epsilon != 0.0 ? " coupled" : ""));
    Harness h = build(kind, 4);
    const sim::DelayModel dm(h.nl, sim::DelayConfig::spartan6());
    const sim::ClockConfig clock{kPeriod};
    const sim::SimOptions options{inertial, 1.0};
    const power::PowerConfig power_config{.coupling_epsilon = epsilon,
                                          .bin_ps = kPeriod};
    const bool has_stage2 = h.nl.max_ctrl_group() >= 2;
    const std::vector<NetId> inputs = all_inputs(h);

    // Per-lane random stimulus.
    Xoshiro256 rng(4321 + static_cast<std::uint64_t>(kind));
    std::vector<std::vector<bool>> stim(kLanes);
    for (auto& lane_bits : stim)
        for (std::size_t i = 0; i < inputs.size(); ++i)
            lane_bits.push_back(rng.bit());

    // kLanes scalar reference runs.
    std::vector<std::vector<ToggleRec>> scalar_stream(kLanes);
    std::vector<std::vector<double>> scalar_trace(kLanes);
    std::vector<std::uint64_t> scalar_toggles(kLanes);
    for (unsigned lane = 0; lane < kLanes; ++lane) {
        sim::ClockedSim sim(h.nl, dm, clock, {}, options);
        power::PowerRecorder recorder(h.nl, power_config);
        recorder.attach(&sim.engine());
        ScalarTee tee(&recorder);
        sim.engine().set_sink(&tee);
        recorder.begin_trace(kCycles);
        for (std::size_t i = 0; i < inputs.size(); ++i)
            sim.set_input(inputs[i], stim[lane][i]);
        run_schedule(sim, has_stage2);
        scalar_stream[lane] = std::move(tee.records);
        scalar_trace[lane] = recorder.trace();
        scalar_toggles[lane] = recorder.trace_toggles();
    }

    // One compiled 128-lane pass (per-chunk sinks, like the drivers).
    sim::CompiledClockedSim wide(h.nl, dm, kLanes, clock, {}, options);
    std::vector<power::BatchPowerRecorder> recorders;
    std::vector<ChunkTee> tees(kChunks);
    recorders.reserve(kChunks);
    for (unsigned c = 0; c < kChunks; ++c) {
        recorders.emplace_back(h.nl, power_config);
        recorders.back().attach(wide.chunk_view(c));
    }
    for (unsigned c = 0; c < kChunks; ++c) {
        tees[c] = ChunkTee(&recorders[c]);
        wide.set_sink(c, &tees[c]);
        recorders[c].begin_trace(kCycles);
    }
    for (std::size_t i = 0; i < inputs.size(); ++i)
        for (unsigned c = 0; c < kChunks; ++c) {
            std::uint64_t word = 0;
            for (unsigned l = 0; l < 64; ++l)
                if (stim[c * 64u + l][i]) word |= std::uint64_t{1} << l;
            wide.set_input_word(inputs[i], c, word);
        }
    run_schedule(wide, has_stage2);

    std::vector<double> lane_trace;
    for (unsigned lane = 0; lane < kLanes; ++lane) {
        SCOPED_TRACE("lane " + std::to_string(lane));
        const unsigned c = lane / 64u;
        const unsigned l = lane % 64u;
        EXPECT_EQ(tees[c].lane(l), scalar_stream[lane]);
        EXPECT_EQ(recorders[c].lane_toggles(l), scalar_toggles[lane]);
        recorders[c].lane_trace_into(l, lane_trace);
        ASSERT_EQ(lane_trace.size(), scalar_trace[lane].size());
        for (std::size_t bin = 0; bin < lane_trace.size(); ++bin)
            EXPECT_EQ(lane_trace[bin], scalar_trace[lane][bin]) << "bin " << bin;
    }
}

TEST(CompiledSim, ZooEquivalenceInertial) {
    for (const eval::GadgetKind kind : eval::kAllGadgets)
        expect_compiled_equivalence(kind, true, 0.0);
}

TEST(CompiledSim, ZooEquivalenceTransportDelay) {
    for (const eval::GadgetKind kind : eval::kAllGadgets)
        expect_compiled_equivalence(kind, false, 0.0);
}

TEST(CompiledSim, EnergyCouplingEquivalence) {
    // secAND2-PD registers its delay chains as coupled pairs; the Miller
    // energy term must pick the per-lane neighbour level from the
    // compiled engine's chunk view.
    expect_compiled_equivalence(eval::GadgetKind::Pd, true, 0.25);
}

TEST(CompiledSim, GadgetCampaignWithAttributionBitIdentical) {
    // Driver-level identity on the attribution engine's primary workload:
    // the full TVLA statistics AND the per-net attribution report (ranked
    // nets, |t| heatmap, glitch matrix -- compared with operator==, i.e.
    // exact doubles) must not depend on the backend or the lane width.
    eval::GadgetTvlaConfig config;
    config.gadget = eval::GadgetKind::Trichina;
    config.replicas = 8;
    config.traces = 640;
    config.noise_sigma = 0.5;
    config.seed = 11;
    config.workers = 1;
    config.block_size = 128;
    config.run.attribution = true;

    config.lanes = 64;
    config.run.backend = "event";
    const eval::GadgetTvlaResult event = eval::run_gadget_tvla(config);

    config.lanes = 256;
    config.run.backend = "compiled";
    const eval::GadgetTvlaResult compiled = eval::run_gadget_tvla(config);

    EXPECT_EQ(event.max_abs_t1, compiled.max_abs_t1);
    EXPECT_EQ(event.max_abs_t2, compiled.max_abs_t2);
    EXPECT_EQ(event.argmax_cycle, compiled.argmax_cycle);
    EXPECT_EQ(event.leaks_first_order, compiled.leaks_first_order);
    EXPECT_EQ(event.attribution, compiled.attribution);
    ASSERT_TRUE(compiled.attribution.enabled);
    ASSERT_FALSE(compiled.attribution.ranked.empty());
    EXPECT_GT(compiled.attribution.ranked.front().max_abs_t, 0.0);  // not vacuous
}

TEST(CompiledSim, DesTvlaMatchesScalarBitForBit) {
    // The headline workload: a (small) DES TVLA campaign through the
    // compiled backend against the scalar event path, exact t-curve
    // equality at every order -- including a partial final group
    // (96 % 512 != 0, so the wide pass runs with dead lanes masked).
    const des::MaskedDesCore core(des::MaskedDesOptions{});
    eval::DesTvlaConfig config;
    config.traces = 96;
    config.seed = 23;
    config.workers = 1;
    config.block_size = 48;

    config.lanes = 1;
    config.run.backend = "event";
    const eval::DesTvlaResult scalar = eval::run_des_tvla(core, config);

    config.lanes = 512;
    config.run.backend = "compiled";
    const eval::DesTvlaResult compiled = eval::run_des_tvla(core, config);

    EXPECT_EQ(scalar.toggles, compiled.toggles);
    for (int order = 1; order <= 3; ++order) {
        const std::vector<double> ts = scalar.campaign.t_curve(order);
        const std::vector<double> tc = compiled.campaign.t_curve(order);
        ASSERT_EQ(ts.size(), tc.size());
        for (std::size_t i = 0; i < ts.size(); ++i)
            EXPECT_EQ(ts[i], tc[i]) << "order " << order << " sample " << i;
    }
}

TEST(CompiledSim, BackendSwitchOnResumeIsConfigMismatch) {
    // The compiled backend folds a tag into the campaign fingerprint, so
    // a checkpoint written under one backend must refuse to resume under
    // the other instead of silently mixing payload layouts.
    const des::MaskedDesCore core(des::MaskedDesOptions{});
    const std::string path =
        ::testing::TempDir() + "glitchmask_backend_switch.gmsnap";
    std::remove(path.c_str());

    auto base_config = [&path] {
        eval::DesTvlaConfig config;
        config.traces = 96;
        config.seed = 23;
        config.block_size = 8;
        config.lanes = 0;
        config.workers = 1;
        config.run.checkpoint_path = path;
        config.run.checkpoint_every = 2;
        return config;
    };

    for (const auto& [first, second] :
         {std::pair<const char*, const char*>{"event", "compiled"},
          std::pair<const char*, const char*>{"compiled", "event"}}) {
        SCOPED_TRACE(std::string(first) + " -> " + second);
        const bool first_compiled = std::string_view(first) == "compiled";
        std::remove(path.c_str());
        CancelToken token;
        eval::DesTvlaConfig cfg = base_config();
        cfg.run.backend = first;
        cfg.lanes = first_compiled ? 128 : 0;
        cfg.run.cancel = &token;
        cfg.run.on_checkpoint = [&token](std::size_t completed_blocks) {
            if (completed_blocks >= 2) token.request();
        };
        const eval::DesTvlaResult partial = eval::run_des_tvla(core, cfg);
        ASSERT_TRUE(partial.cancelled);
        ASSERT_TRUE(read_file_if_exists(path).has_value());

        eval::DesTvlaConfig other = base_config();
        other.run.backend = second;
        try {
            (void)eval::run_des_tvla(core, other);
            FAIL() << "backend switch accepted on resume";
        } catch (const CampaignError& e) {
            EXPECT_EQ(e.kind(), CampaignErrorKind::ConfigMismatch);
        }

        // Same backend resumes fine and completes the campaign -- at a
        // different lane width, which is never part of the fingerprint.
        eval::DesTvlaConfig same = base_config();
        same.run.backend = first;
        same.lanes = first_compiled ? 512 : 0;
        const eval::DesTvlaResult resumed = eval::run_des_tvla(core, same);
        EXPECT_TRUE(resumed.resumed);
        EXPECT_EQ(resumed.completed_traces, same.traces);
    }
    std::remove(path.c_str());
}

TEST(CompiledSim, ProgramCacheSharesCompiledPrograms) {
    // Two engines over the same (netlist, delay model, options) triple
    // must share one immutable program through the process-wide LRU; a
    // different SimOptions compiles (and caches) a distinct program.
    Harness h = build(eval::GadgetKind::Trichina, 4);
    const sim::DelayModel dm(h.nl, sim::DelayConfig::spartan6());
    const sim::ClockConfig clock{kPeriod};

    sim::clear_compiled_program_cache();
    const sim::CompiledCacheStats before = sim::compiled_program_cache_stats();
    ASSERT_EQ(before.entries, 0u);

    sim::CompiledClockedSim a(h.nl, dm, 64, clock);
    sim::CompiledClockedSim b(h.nl, dm, 512, clock);  // width is not a key
    EXPECT_EQ(a.program().get(), b.program().get());

    sim::CompiledClockedSim c(h.nl, dm, 64, clock, {},
                              sim::SimOptions{false, 1.0});  // transport mode
    EXPECT_NE(a.program().get(), c.program().get());

    const sim::CompiledCacheStats after = sim::compiled_program_cache_stats();
    EXPECT_EQ(after.entries, 2u);
    EXPECT_EQ(after.misses, before.misses + 2);
    EXPECT_GE(after.hits, before.hits + 1);
}

}  // namespace
}  // namespace glitchmask
