#include "eval/campaign.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/sharing.hpp"
#include "eval/lane_backend.hpp"
#include "leakage/moment_bank.hpp"
#include "eval/run_report.hpp"
#include "power/batch_power.hpp"
#include "sim/batch_simulator.hpp"
#include "sim/compiled_simulator.hpp"
#include "support/telemetry.hpp"

namespace glitchmask::eval {

namespace {

sim::DelayConfig sequence_delay_config(const SequenceExperimentConfig& config) {
    sim::DelayConfig delay_config = sim::DelayConfig::spartan6();
    delay_config.seed = config.placement_seed;
    return delay_config;
}

}  // namespace

std::vector<double> collect_trace(
    sim::ClockedSim& sim, power::PowerRecorder& recorder, std::size_t cycles,
    double sigma, Xoshiro256& noise_rng,
    const std::function<void(sim::ClockedSim&)>& drive) {
    sim.restart();
    recorder.begin_trace(cycles);
    drive(sim);
    return recorder.noisy_trace(noise_rng, sigma);
}

SequenceHarness::SequenceHarness(const SequenceExperimentConfig& config)
    : circuit_(core::build_registered_secand2(config.replicas)),
      dm_(circuit_.nl, sequence_delay_config(config)) {
    power_config_.bin_ps = clock_.period_ps;
}

namespace {

/// Per-trace sequence-experiment stimulus, derived purely from (seed, n).
struct SequenceStimulus {
    bool fixed;
    std::array<bool, 4> share_value;  // x0, x1, y0, y1
};

SequenceStimulus sequence_stimulus(std::uint64_t seed, std::size_t trace_index) {
    Xoshiro256 rng = trace_rng(seed, kStimulusStream, trace_index);
    const bool fixed = rng.bit();
    const bool x = fixed ? true : rng.bit();
    const bool y = fixed ? true : rng.bit();
    const core::MaskedBit mx = core::mask_bit(x, rng);
    const core::MaskedBit my = core::mask_bit(y, rng);
    return SequenceStimulus{fixed, {mx.s0, mx.s1, my.s0, my.s1}};
}

/// "seq_0123"-style tag: default checkpoint-file id for one sequence.
std::string sequence_tag(const core::InputSequence& sequence) {
    std::string tag = "seq_";
    for (const core::ShareId slot : sequence)
        tag += static_cast<char>('0' + static_cast<int>(slot));
    return tag;
}

/// Block accumulator: TVLA statistics plus the optional attribution
/// state, merged and snapshotted together so both ride the same merge
/// tree (attr has zero points when attribution is off).  The statistics
/// live in the fused bin-vectorized MomentBank; its serialized form is
/// byte-identical to TvlaCampaign, so old checkpoints stay resumable.
struct SeqBlockAcc {
    leakage::MomentBank bank;
    leakage::AttributionAccumulator attr;
};

}  // namespace

/// The sequence itself is part of the campaign identity: resuming one
/// sequence's snapshot into another's campaign must be rejected.
CampaignFingerprint sequence_fingerprint(const core::InputSequence& sequence,
                                         const SequenceExperimentConfig& config) {
    const std::size_t cycles = kSequenceCycles;
    std::uint64_t payload = kFnvOffset;
    for (const core::ShareId slot : sequence)
        payload = fnv1a64(payload, static_cast<std::uint64_t>(slot));
    payload = fnv1a64(payload, config.replicas);
    payload = fnv1a64(payload, std::bit_cast<std::uint64_t>(config.noise_sigma));
    payload = fnv1a64(payload, config.placement_seed);
    payload = fnv1a64(payload, static_cast<std::uint64_t>(config.max_test_order));
    payload = fnv1a64(payload, static_cast<std::uint64_t>(cycles));
    return CampaignFingerprint{fnv1a64_tag("sequence_tvla"), config.seed,
                               config.traces, config.block_size, payload};
}

SequenceLeakResult SequenceHarness::run(const core::InputSequence& sequence,
                                        const SequenceExperimentConfig& config,
                                        ThreadPool& pool) const {
    constexpr std::size_t kCycles = kSequenceCycles;

    validate_campaign_config(config.traces, config.block_size, config.lanes);

    // Sequence campaigns never enable coupling, so the lane-parallel paths
    // are always available; the plan only decides which one we take.
    const BackendPlan bplan =
        resolve_backend_plan(config.run, config.lanes, /*timing_coupling=*/false,
                             circuit_.nl.size());
    const ShardPlan plan{config.traces, config.block_size};

    const std::string tag = sequence_tag(sequence);
    const bool attribute = attribution_enabled(config.run);
    const leakage::AttributionPlan attr_plan =
        attribute ? leakage::AttributionPlan(circuit_.nl, kCycles,
                                             clock_.period_ps,
                                             config.run.attribution_scope)
                  : leakage::AttributionPlan();
    CampaignFingerprint fingerprint =
        sequence_fingerprint(sequence, config);
    if (attribute) fold_attribution_fingerprint(fingerprint, config.run);
    fold_backend_fingerprint(fingerprint, bplan);
    RunTelemetrySession session(tag, config.run, fingerprint, plan.traces,
                                pool.size(), bplan.lanes);
    CheckpointPolicy policy = make_checkpoint_policy(config.run, tag);
    session.attach(policy);
    const auto encode = [attribute](const SeqBlockAcc& acc,
                                    SnapshotWriter& out) {
        acc.bank.encode(out);
        if (attribute) acc.attr.encode(out);
    };
    const auto decode = [attribute](SnapshotReader& in) {
        SeqBlockAcc acc{leakage::MomentBank::decode(in), {}};
        if (attribute) acc.attr = leakage::AttributionAccumulator::decode(in);
        return acc;
    };
    const auto make_acc = [&] {
        return SeqBlockAcc{leakage::MomentBank(kCycles, config.max_test_order),
                           leakage::AttributionAccumulator(attr_plan.points())};
    };
    const auto merge = [](SeqBlockAcc& into, const SeqBlockAcc& from) {
        into.bank.merge(from.bank);
        into.attr.merge(from.attr);
    };
    const leakage::AttributionPlan* probe_plan = attribute ? &attr_plan : nullptr;
    CampaignProgress progress;

    SeqBlockAcc merged = [&] {
        if (!bplan.scalar()) {
            // Per-worker lane-parallel replica behind the chunked-sim seam
            // (eval/lane_backend.hpp): one pass per group of up to
            // group_lanes() consecutive trace indices.  Groups are cut
            // within each block (a short tail uses fewer lanes), so any
            // block size stays bit-identical to the scalar path; block
            // sizes >= the lane width merely amortize best.
            const auto run_lanes = [&](auto make_worker) {
                return run_sharded_blocks_checkpointed(
                    pool, plan,
                    [&] {
                        auto worker = make_worker();
                        worker->attach_sinks(circuit_.nl, power_config_,
                                             probe_plan);
                        return worker;
                    },
                    make_acc,
                    [&](auto& worker, std::size_t begin, std::size_t end,
                        SeqBlockAcc& acc) {
                        telemetry::PhaseClock phases;
                        phases.mark();
                        const unsigned group_lanes = worker->group_lanes();
                        for (std::size_t group = begin; group < end;
                             group += group_lanes) {
                            const unsigned count = static_cast<unsigned>(
                                std::min<std::size_t>(group_lanes,
                                                      end - group));
                            std::array<std::uint64_t, sim::kMaxLaneChunks>
                                fixed{};
                            std::array<
                                std::array<std::uint64_t, sim::kMaxLaneChunks>,
                                4>
                                share_words{};
                            for (unsigned lane = 0; lane < count; ++lane) {
                                const SequenceStimulus stim = sequence_stimulus(
                                    config.seed, group + lane);
                                const unsigned c = lane / 64u;
                                const std::uint64_t bit = std::uint64_t{1}
                                                          << (lane % 64u);
                                if (stim.fixed) fixed[c] |= bit;
                                for (std::size_t i = 0; i < 4; ++i)
                                    if (stim.share_value[i])
                                        share_words[i][c] |= bit;
                            }

                            auto& s = worker->sim;
                            s.restart();
                            worker->begin_group(kCycles, fixed.data(), count,
                                                &acc.attr);
                            for (std::size_t i = 0; i < 4; ++i)
                                for (unsigned c = 0; c < s.chunks(); ++c)
                                    s.set_input_word(circuit_.in[i], c,
                                                     share_words[i][c]);
                            s.step();
                            for (const core::ShareId slot : sequence) {
                                s.set_enable(circuit_.enable[static_cast<
                                                 std::size_t>(slot)],
                                             true);
                                s.step();
                            }
                            s.step();
                            phases.lap(telemetry::Counter::kPhaseSimNanos);

                            // Fused fold, chunk by chunk (chunk c == traces
                            // group+64c .. group+64c+63): each lane's noisy
                            // row streams straight into the moment bank --
                            // no batch noisy-trace matrix.  Per-lane noise
                            // draws come in bin order from that trace's
                            // counter-based stream, and lanes fold in lane
                            // order, so every per-point accumulator sees the
                            // same addend sequence as the scalar path.
                            auto& noisy = worker->noisy;
                            const unsigned chunks_used = (count + 63u) / 64u;
                            for (unsigned c = 0; c < chunks_used; ++c) {
                                const unsigned cnt =
                                    std::min(64u, count - c * 64u);
                                for (unsigned lane = 0; lane < cnt; ++lane) {
                                    Xoshiro256 noise_rng =
                                        trace_rng(config.seed, kNoiseStream,
                                                  group + c * 64u + lane);
                                    worker->noisy_row(c * 64u + lane,
                                                      noise_rng,
                                                      config.noise_sigma,
                                                      noisy);
                                    phases.lap(
                                        telemetry::Counter::kPhaseNoiseNanos);
                                    acc.bank.add_trace(
                                        ((fixed[c] >> lane) & 1u) != 0,
                                        noisy.data());
                                    phases.lap(
                                        telemetry::Counter::kPhaseMomentsNanos);
                                }
                                if (!worker->probes.empty())
                                    worker->probes[c].fold_group();
                                phases.lap(
                                    telemetry::Counter::kPhaseAttributionNanos);
                            }
                        }
                        worker->finish_block();
                        phases.lap(telemetry::Counter::kPhaseAttributionNanos);
                        phases.flush();
                        if (telemetry::enabled())
                            telemetry::record_sim_block(worker->sim.stats(),
                                                        worker->last_stats);
                    },
                    merge, policy, fingerprint, encode, decode, &progress,
                    session.meter());
            };

            if (bplan.backend == SimBackend::Compiled)
                return run_lanes([&] {
                    return std::make_unique<
                        LaneWorker<sim::CompiledClockedSim>>(
                        circuit_.nl, dm_, bplan.lanes, clock_,
                        sim::CouplingConfig{}, sim::SimOptions{});
                });
            return run_lanes([&] {
                return std::make_unique<LaneWorker<EventLaneSim>>(circuit_.nl,
                                                                  dm_, clock_);
            });
        }

        // Scalar path: one event-queue pass per trace.  Heap-allocated so
        // the recorder's sink registration never relocates.
        struct Worker {
            sim::ClockedSim sim;
            power::PowerRecorder recorder;
            std::optional<leakage::AttributionProbe> probe;
            std::vector<double> noisy;  // reused per-trace noise buffer
            telemetry::SimStats last_stats;  // delta base for telemetry
            Worker(const core::RegisteredSecand2& circuit,
                   const sim::DelayModel& dm, sim::ClockConfig clock,
                   power::PowerConfig power_config,
                   const leakage::AttributionPlan* attr)
                : sim(circuit.nl, dm, clock), recorder(circuit.nl, power_config) {
                if (attr != nullptr) {
                    probe.emplace(*attr, &recorder);
                    sim.engine().set_sink(&*probe);
                } else {
                    sim.engine().set_sink(&recorder);
                }
            }
        };

        return run_sharded_blocks_checkpointed(
            pool, plan,
            [&] {
                return std::make_unique<Worker>(circuit_, dm_, clock_,
                                                power_config_, probe_plan);
            },
            make_acc,
            [&](std::unique_ptr<Worker>& worker, std::size_t begin,
                std::size_t end, SeqBlockAcc& acc) {
                telemetry::PhaseClock phases;
                phases.mark();
                for (std::size_t trace_index = begin; trace_index < end;
                     ++trace_index) {
                    const SequenceStimulus stim =
                        sequence_stimulus(config.seed, trace_index);
                    Xoshiro256 noise_rng =
                        trace_rng(config.seed, kNoiseStream, trace_index);

                    auto& s = worker->sim;
                    s.restart();
                    worker->recorder.begin_trace(kCycles);
                    if (worker->probe) worker->probe->begin_trace();
                    for (std::size_t i = 0; i < 4; ++i)
                        s.set_input(circuit_.in[i], stim.share_value[i]);
                    s.step();
                    for (const core::ShareId slot : sequence) {
                        s.set_enable(
                            circuit_.enable[static_cast<std::size_t>(slot)],
                            true);
                        s.step();
                    }
                    s.step();
                    phases.lap(telemetry::Counter::kPhaseSimNanos);
                    worker->recorder.noisy_trace_into(
                        noise_rng, config.noise_sigma, worker->noisy);
                    phases.lap(telemetry::Counter::kPhaseNoiseNanos);
                    acc.bank.add_trace(stim.fixed, worker->noisy.data());
                    phases.lap(telemetry::Counter::kPhaseMomentsNanos);
                    if (worker->probe)
                        worker->probe->fold_trace(stim.fixed, acc.attr);
                    phases.lap(telemetry::Counter::kPhaseAttributionNanos);
                }
                phases.flush();
                if (telemetry::enabled())
                    telemetry::record_sim_block(worker->sim.engine().stats(),
                                                worker->last_stats);
            },
            merge, policy, fingerprint, encode, decode, &progress,
            session.meter());
    }();
    const leakage::MomentBank& bank = merged.bank;

    SequenceLeakResult result;
    result.sequence = sequence;
    result.max_abs_t1 = bank.max_abs_t(1, &result.argmax_cycle);
    result.max_abs_t2 = bank.max_abs_t(2);
    result.leaks_first_order = result.max_abs_t1 > leakage::kTvlaThreshold;
    result.expected_to_leak = core::sequence_expected_to_leak(sequence);
    result.completed_traces = progress.completed_traces;
    result.cancelled = progress.cancelled;
    result.resumed = progress.resumed;
    session.add_metric("max_abs_t_order1", result.max_abs_t1);
    session.add_metric("max_abs_t_order2", result.max_abs_t2);
    if (attribute) {
        result.attribution =
            leakage::analyze_attribution(circuit_.nl, attr_plan, merged.attr);
        session.set_attribution(result.attribution,
                                config.run.attribution_top_k,
                                config.run.attribution_scope);
    }
    session.finish(progress);
    return result;
}

SequenceLeakResult run_sequence_experiment(
    const core::InputSequence& sequence,
    const SequenceExperimentConfig& config) {
    const SequenceHarness harness(config);
    ThreadPool pool(resolve_workers(config.workers));
    return harness.run(sequence, config, pool);
}

std::vector<SequenceLeakResult> run_all_sequences(
    const SequenceExperimentConfig& config) {
    // One netlist/delay-model and one worker pool serve all 24 sequences;
    // the circuit is sequence-independent, rebuilding it per sequence was
    // pure waste.
    const SequenceHarness harness(config);
    ThreadPool pool(resolve_workers(config.workers));
    std::vector<SequenceLeakResult> results;
    for (const core::InputSequence& sequence : core::all_input_sequences()) {
        results.push_back(harness.run(sequence, config, pool));
        // A fired cancel token stops the whole sweep: later sequences
        // would each spin up, notice the token and return empty results.
        if (results.back().cancelled) break;
    }
    return results;
}

}  // namespace glitchmask::eval
