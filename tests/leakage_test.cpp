#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "leakage/moments.hpp"
#include "leakage/snr.hpp"
#include "leakage/ttest.hpp"
#include "leakage/tvla.hpp"
#include "support/rng.hpp"

namespace glitchmask::leakage {
namespace {

/// Direct (two-pass) central moment for cross-checking the streaming code.
double direct_moment(const std::vector<double>& xs, int p) {
    double mean = 0.0;
    for (const double x : xs) mean += x;
    mean /= static_cast<double>(xs.size());
    double sum = 0.0;
    for (const double x : xs) sum += std::pow(x - mean, p);
    return sum / static_cast<double>(xs.size());
}

std::vector<double> random_data(std::uint64_t seed, std::size_t n,
                                double mean = 0.0, double sigma = 1.0) {
    Xoshiro256 rng(seed);
    std::vector<double> xs(n);
    for (double& x : xs) x = rng.gaussian(mean, sigma);
    return xs;
}

TEST(Moments, MatchDirectComputationOrders2To6) {
    const std::vector<double> xs = random_data(1, 5000, 2.0, 3.0);
    MomentAccumulator acc(6);
    for (const double x : xs) acc.add(x);
    EXPECT_EQ(acc.count(), 5000.0);
    EXPECT_NEAR(acc.mean(), direct_moment(xs, 1) + acc.mean(), 1e-9);
    for (int p = 2; p <= 6; ++p)
        EXPECT_NEAR(acc.central_moment(p), direct_moment(xs, p),
                    1e-7 * std::max(1.0, std::fabs(direct_moment(xs, p))))
            << "order " << p;
}

TEST(Moments, SinglePointHasZeroCentralMoments) {
    MomentAccumulator acc(4);
    acc.add(5.0);
    EXPECT_EQ(acc.mean(), 5.0);
    EXPECT_EQ(acc.central_moment(2), 0.0);
    EXPECT_EQ(acc.central_moment(4), 0.0);
}

TEST(Moments, MergeEqualsSequential) {
    const std::vector<double> xs = random_data(2, 3000, -1.0, 2.0);
    MomentAccumulator whole(6);
    MomentAccumulator left(6);
    MomentAccumulator right(6);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        whole.add(xs[i]);
        (i < xs.size() / 3 ? left : right).add(xs[i]);
    }
    left.merge(right);
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
    for (int p = 2; p <= 6; ++p)
        EXPECT_NEAR(left.central_moment(p), whole.central_moment(p),
                    1e-6 * std::max(1.0, std::fabs(whole.central_moment(p))))
            << "order " << p;
}

TEST(Moments, MergeAssociativityUnevenShards) {
    // The parallel campaign engine merges per-block accumulators whose
    // sizes are rarely equal (the tail block is short).  Merge must be
    // associative up to rounding on grossly uneven shard sizes.
    const std::vector<double> xs = random_data(17, 7 + 64 + 13, 0.5, 1.5);
    const std::array<std::size_t, 3> sizes{7, 64, 13};
    std::array<MomentAccumulator, 3> shard{
        MomentAccumulator(6), MomentAccumulator(6), MomentAccumulator(6)};
    std::size_t index = 0;
    for (std::size_t s = 0; s < sizes.size(); ++s)
        for (std::size_t i = 0; i < sizes[s]; ++i) shard[s].add(xs[index++]);

    // (a + b) + c
    MomentAccumulator left_first = shard[0];
    left_first.merge(shard[1]);
    left_first.merge(shard[2]);
    // a + (b + c)
    MomentAccumulator right_first = shard[1];
    right_first.merge(shard[2]);
    MomentAccumulator a = shard[0];
    a.merge(right_first);

    MomentAccumulator whole(6);
    for (const double x : xs) whole.add(x);

    EXPECT_EQ(left_first.count(), whole.count());
    EXPECT_EQ(a.count(), whole.count());
    for (int p = 2; p <= 6; ++p) {
        const double scale = std::max(1.0, std::fabs(whole.central_moment(p)));
        EXPECT_NEAR(left_first.central_moment(p), a.central_moment(p),
                    1e-9 * scale)
            << "order " << p;
        EXPECT_NEAR(left_first.central_moment(p), whole.central_moment(p),
                    1e-6 * scale)
            << "order " << p;
    }
}

TEST(Moments, MergeWithEmptySides) {
    MomentAccumulator a(4);
    MomentAccumulator b(4);
    a.add(1.0);
    a.add(2.0);
    MomentAccumulator a_copy = a;
    a.merge(b);  // empty rhs: unchanged
    EXPECT_EQ(a.count(), 2.0);
    EXPECT_EQ(a.mean(), a_copy.mean());
    b.merge(a);  // empty lhs: adopt
    EXPECT_EQ(b.count(), 2.0);
    EXPECT_EQ(b.mean(), 1.5);
}

TEST(Moments, ResetClears) {
    MomentAccumulator acc(4);
    acc.add(1.0);
    acc.add(3.0);
    acc.reset();
    EXPECT_EQ(acc.count(), 0.0);
    EXPECT_EQ(acc.mean(), 0.0);
}

TEST(Moments, RejectsBadOrders) {
    EXPECT_THROW(MomentAccumulator(1), std::invalid_argument);
    MomentAccumulator acc(4);
    acc.add(1.0);
    EXPECT_THROW((void)acc.central_moment(1), std::out_of_range);
    EXPECT_THROW((void)acc.central_moment(5), std::out_of_range);
}

TEST(Welch, KnownValue) {
    // Two-sample t with equal n, means 1 vs 0, variances 1:
    // t = 1 / sqrt(2/n).
    const double n = 50.0;
    EXPECT_NEAR(welch_t(1.0, 1.0, n, 0.0, 1.0, n), 1.0 / std::sqrt(2.0 / n), 1e-12);
    EXPECT_EQ(welch_t(1.0, 1.0, 1.0, 0.0, 1.0, 50.0), 0.0);  // degenerate
}

TEST(TTest, DetectsFirstOrderDifference) {
    UnivariateTTest test(3);
    Xoshiro256 rng(3);
    for (int i = 0; i < 20000; ++i) {
        test.add(true, rng.gaussian(0.3, 1.0));
        test.add(false, rng.gaussian(0.0, 1.0));
    }
    EXPECT_GT(std::fabs(test.t(1)), kTvlaThreshold);
}

TEST(TTest, NullDistributionStaysUnderThreshold) {
    // Same distribution in both classes: |t| should almost surely stay
    // small at every order for a single seeded draw.
    UnivariateTTest test(3);
    Xoshiro256 rng(4);
    for (int i = 0; i < 20000; ++i) test.add(rng.bit(), rng.gaussian(0.0, 1.0));
    EXPECT_LT(std::fabs(test.t(1)), kTvlaThreshold);
    EXPECT_LT(std::fabs(test.t(2)), kTvlaThreshold);
    EXPECT_LT(std::fabs(test.t(3)), kTvlaThreshold);
}

TEST(TTest, SecondOrderOnlyDifference) {
    // Equal means, different variances: invisible at order 1, glaring at
    // order 2 -- the signature of a well-masked 2-share implementation.
    UnivariateTTest test(3);
    Xoshiro256 rng(5);
    for (int i = 0; i < 40000; ++i) {
        test.add(true, rng.gaussian(0.0, 2.0));
        test.add(false, rng.gaussian(0.0, 1.0));
    }
    EXPECT_LT(std::fabs(test.t(1)), kTvlaThreshold);
    EXPECT_GT(std::fabs(test.t(2)), kTvlaThreshold);
}

TEST(TTest, ThirdOrderSkewDifference) {
    // Mirror-skewed vs symmetric data with matched mean/variance leaks at
    // order 3.  Exponential(1) centered has skew 2.
    UnivariateTTest test(3);
    Xoshiro256 rng(6);
    for (int i = 0; i < 60000; ++i) {
        const double e = -std::log(1.0 - rng.uniform());
        test.add(true, e - 1.0);
        test.add(false, rng.gaussian(0.0, 1.0));
    }
    EXPECT_GT(std::fabs(test.t(3)), kTvlaThreshold);
}

TEST(TTest, MergeMatchesSequential) {
    UnivariateTTest all(2);
    UnivariateTTest a(2);
    UnivariateTTest b(2);
    Xoshiro256 rng(7);
    for (int i = 0; i < 5000; ++i) {
        const bool cls = rng.bit();
        const double x = rng.gaussian(cls ? 0.1 : 0.0, 1.0);
        all.add(cls, x);
        (i % 2 == 0 ? a : b).add(cls, x);
    }
    a.merge(b);
    EXPECT_NEAR(a.t(1), all.t(1), 1e-9);
    EXPECT_NEAR(a.t(2), all.t(2), 1e-9);
}

TEST(TTest, PreprocessedVarianceOrder2Identity) {
    // Var((x-mu)^2) must equal m4 - m2^2.
    MomentAccumulator acc(4);
    const std::vector<double> xs = random_data(8, 4000);
    for (const double x : xs) acc.add(x);
    EXPECT_NEAR(preprocessed_variance(acc, 2),
                acc.central_moment(4) -
                    acc.central_moment(2) * acc.central_moment(2),
                1e-9);
}

TEST(Tvla, CurveFlagsOnlyLeakySample) {
    constexpr std::size_t kSamples = 8;
    constexpr std::size_t kLeaky = 3;
    TvlaCampaign campaign(kSamples, 2);
    Xoshiro256 rng(9);
    std::vector<double> trace(kSamples);
    for (int i = 0; i < 20000; ++i) {
        const bool fixed = rng.bit();
        for (std::size_t s = 0; s < kSamples; ++s)
            trace[s] = rng.gaussian(s == kLeaky && fixed ? 0.4 : 0.0, 1.0);
        campaign.add_trace(fixed, trace);
    }
    std::size_t argmax = 0;
    EXPECT_GT(campaign.max_abs_t(1, &argmax), kTvlaThreshold);
    EXPECT_EQ(argmax, kLeaky);
    const auto exceeded = campaign.exceedances(1);
    ASSERT_EQ(exceeded.size(), 1u);
    EXPECT_EQ(exceeded.front(), kLeaky);
}

TEST(Tvla, ConsistencyRuleRejectsInconsistentPeaks) {
    // Two campaigns leak at different indexes: the paper's rule says the
    // implementation is not deemed leaky.
    auto make = [](std::size_t leaky_index, std::uint64_t seed) {
        TvlaCampaign campaign(6, 1);
        Xoshiro256 rng(seed);
        std::vector<double> trace(6);
        for (int i = 0; i < 20000; ++i) {
            const bool fixed = rng.bit();
            for (std::size_t s = 0; s < 6; ++s)
                trace[s] = rng.gaussian(s == leaky_index && fixed ? 0.5 : 0.0, 1.0);
            campaign.add_trace(fixed, trace);
        }
        return campaign;
    };
    const TvlaCampaign campaigns_diff[] = {make(1, 10), make(4, 11)};
    EXPECT_TRUE(consistent_exceedances(campaigns_diff, 1).empty());
    const TvlaCampaign campaigns_same[] = {make(2, 12), make(2, 13)};
    const auto hits = consistent_exceedances(campaigns_same, 1);
    ASSERT_FALSE(hits.empty());
    EXPECT_EQ(hits.front(), 2u);
}

TEST(Tvla, TraceCountsPerClass) {
    TvlaCampaign campaign(2, 1);
    const std::vector<double> trace{0.0, 1.0};
    campaign.add_trace(true, trace);
    campaign.add_trace(true, trace);
    campaign.add_trace(false, trace);
    EXPECT_EQ(campaign.traces(true), 2u);
    EXPECT_EQ(campaign.traces(false), 1u);
}

TEST(Tvla, RejectsShortTraces) {
    TvlaCampaign campaign(4, 1);
    const std::vector<double> trace{0.0, 1.0};
    EXPECT_THROW(campaign.add_trace(true, trace), std::invalid_argument);
}

TEST(Tvla, MergeMatchesSequential) {
    TvlaCampaign whole(4, 2);
    TvlaCampaign left(4, 2);
    TvlaCampaign right(4, 2);
    Xoshiro256 rng(21);
    std::vector<double> trace(4);
    for (int i = 0; i < 4000; ++i) {
        const bool fixed = rng.bit();
        for (double& v : trace) v = rng.gaussian(fixed ? 0.1 : 0.0, 1.0);
        whole.add_trace(fixed, trace);
        (i % 2 == 0 ? left : right).add_trace(fixed, trace);
    }
    left.merge(right);
    for (int order = 1; order <= 2; ++order)
        for (std::size_t s = 0; s < 4; ++s)
            EXPECT_NEAR(left.point(s).t(order), whole.point(s).t(order), 1e-9);
}

TEST(Tvla, MergeAssociativityUnevenShards) {
    // Shards of 100, 31 and 5 traces (the parallel engine's tail blocks
    // are short): both association orders must agree to rounding, and the
    // class trace counts must add up exactly.
    const std::array<std::size_t, 3> sizes{100, 31, 5};
    std::array<TvlaCampaign, 3> shard{TvlaCampaign(3, 3), TvlaCampaign(3, 3),
                                      TvlaCampaign(3, 3)};
    TvlaCampaign whole(3, 3);
    Xoshiro256 rng(33);
    std::vector<double> trace(3);
    for (std::size_t s = 0; s < sizes.size(); ++s) {
        for (std::size_t i = 0; i < sizes[s]; ++i) {
            const bool fixed = rng.bit();
            for (double& v : trace) v = rng.gaussian(fixed ? 0.3 : 0.0, 1.0);
            shard[s].add_trace(fixed, trace);
            whole.add_trace(fixed, trace);
        }
    }
    TvlaCampaign left_first = shard[0];
    left_first.merge(shard[1]);
    left_first.merge(shard[2]);
    TvlaCampaign right_first = shard[1];
    right_first.merge(shard[2]);
    TvlaCampaign a = shard[0];
    a.merge(right_first);

    EXPECT_EQ(left_first.traces(true) + left_first.traces(false),
              sizes[0] + sizes[1] + sizes[2]);
    EXPECT_EQ(left_first.traces(true), whole.traces(true));
    for (int order = 1; order <= 3; ++order)
        for (std::size_t s = 0; s < 3; ++s) {
            EXPECT_NEAR(left_first.point(s).t(order), a.point(s).t(order), 1e-9);
            EXPECT_NEAR(left_first.point(s).t(order), whole.point(s).t(order),
                        1e-7);
        }
}

TEST(Snr, KnownSeparation) {
    // Two classes at means 0 and 1 with unit noise: SNR ~ 0.25 (class
    // means +-0.5 around the grand mean -> signal variance 0.25).
    SnrAccumulator snr(2);
    Xoshiro256 rng(14);
    for (int i = 0; i < 40000; ++i) {
        const std::size_t cls = rng.bit() ? 1 : 0;
        snr.add(cls, rng.gaussian(static_cast<double>(cls), 1.0));
    }
    EXPECT_NEAR(snr.snr(), 0.25, 0.02);
}

TEST(Snr, ZeroWhenClassesIdentical) {
    SnrAccumulator snr(4);
    Xoshiro256 rng(15);
    for (int i = 0; i < 20000; ++i)
        snr.add(rng.below(4), rng.gaussian(0.0, 1.0));
    EXPECT_LT(snr.snr(), 0.01);
}

TEST(Snr, RequiresTwoClasses) {
    EXPECT_THROW(SnrAccumulator(1), std::invalid_argument);
}

// ----- degenerate statistics: defined sentinel, never NaN/Inf -----------

TEST(Welch, DegenerateInputsReturnSentinelNotNan) {
    // Either class with n < 2.
    EXPECT_EQ(welch_t(1.0, 1.0, 1.0, 0.0, 1.0, 50.0), 0.0);
    EXPECT_EQ(welch_t(1.0, 1.0, 50.0, 0.0, 1.0, 0.0), 0.0);
    // Both variances zero: the denominator would be 0/0 or x/0.
    EXPECT_EQ(welch_t(1.0, 0.0, 50.0, 0.0, 0.0, 50.0), 0.0);
    EXPECT_EQ(welch_t(1.0, 0.0, 50.0, 1.0, 0.0, 50.0), 0.0);
    // Negative (numerically-poisoned) and non-finite inputs.
    EXPECT_EQ(welch_t(1.0, -1e-18, 50.0, 0.0, 1.0, 50.0), 0.0);
    const double nan = std::nan("");
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(welch_t(nan, 1.0, 50.0, 0.0, 1.0, 50.0), 0.0);
    EXPECT_EQ(welch_t(1.0, inf, 50.0, 0.0, 1.0, 50.0), 0.0);
    EXPECT_TRUE(std::isfinite(welch_t(1.0, 0.0, 50.0, 0.0, 1.0, 50.0)));
}

TEST(TTest, DegenerateClassesGiveFiniteZero) {
    UnivariateTTest test(3);
    // Completely empty.
    for (int d = 1; d <= 3; ++d) EXPECT_EQ(test.t(d), 0.0);
    // One sample per class (n < 2).
    test.add(true, 1.0);
    test.add(false, 0.0);
    for (int d = 1; d <= 3; ++d) {
        EXPECT_TRUE(std::isfinite(test.t(d))) << "order " << d;
        EXPECT_EQ(test.t(d), 0.0) << "order " << d;
    }
}

TEST(TTest, ConstantTracesGiveFiniteZero) {
    // Zero variance in both classes: every order's preprocessed variance
    // is zero, which must yield the sentinel rather than Inf.
    UnivariateTTest test(3);
    for (int i = 0; i < 100; ++i) {
        test.add(true, 2.5);
        test.add(false, 2.5);
    }
    for (int d = 1; d <= 3; ++d) {
        EXPECT_TRUE(std::isfinite(test.t(d))) << "order " << d;
        EXPECT_EQ(test.t(d), 0.0) << "order " << d;
    }
}

TEST(Tvla, DegenerateCampaignCurvesAreFinite) {
    TvlaCampaign campaign(3, 3);
    campaign.add_trace(true, std::vector<double>{1.0, 1.0, 1.0});
    for (int order = 1; order <= 3; ++order) {
        for (const double t : campaign.t_curve(order))
            EXPECT_TRUE(std::isfinite(t));
        EXPECT_EQ(campaign.max_abs_t(order), 0.0);
        EXPECT_TRUE(campaign.exceedances(order).empty());
    }
}

TEST(Snr, DegenerateInputsGiveFiniteZero) {
    SnrAccumulator empty(2);
    EXPECT_EQ(empty.snr(), 0.0);

    // Constant samples: zero noise variance must not divide to Inf.
    SnrAccumulator constant(2);
    for (int i = 0; i < 50; ++i) {
        constant.add(0, 1.0);
        constant.add(1, 1.0);
    }
    EXPECT_TRUE(std::isfinite(constant.snr()));
    EXPECT_EQ(constant.snr(), 0.0);

    // Only one class populated: no between-class signal to speak of.
    SnrAccumulator one_class(2);
    for (int i = 0; i < 50; ++i) one_class.add(0, static_cast<double>(i % 3));
    EXPECT_TRUE(std::isfinite(one_class.snr()));
}

// ----- snapshot round-trips: exact bit-identity -------------------------

TEST(Moments, EncodeDecodeRoundTripIsExact) {
    MomentAccumulator acc(6);
    Xoshiro256 rng(40);
    for (int i = 0; i < 1234; ++i) acc.add(rng.gaussian(0.7, 1.3));

    SnapshotWriter out;
    acc.encode(out);
    const std::vector<std::uint8_t> bytes = std::move(out).finish();
    SnapshotReader in(bytes);
    const MomentAccumulator back = MomentAccumulator::decode(in);

    EXPECT_EQ(back.count(), acc.count());
    EXPECT_EQ(back.mean(), acc.mean());
    EXPECT_EQ(back.max_order(), acc.max_order());
    EXPECT_EQ(back.raw_sums(), acc.raw_sums());
}

TEST(Moments, MergeIntoEmptyAccumulator) {
    MomentAccumulator filled(6);
    Xoshiro256 rng(41);
    for (int i = 0; i < 500; ++i) filled.add(rng.gaussian(0.0, 1.0));

    MomentAccumulator empty(6);
    empty.merge(filled);
    EXPECT_EQ(empty.count(), filled.count());
    EXPECT_EQ(empty.mean(), filled.mean());
    EXPECT_EQ(empty.raw_sums(), filled.raw_sums());

    // And the other direction: merging an empty rhs is the identity.
    MomentAccumulator copy = filled;
    copy.merge(MomentAccumulator(6));
    EXPECT_EQ(copy.count(), filled.count());
    EXPECT_EQ(copy.mean(), filled.mean());
    EXPECT_EQ(copy.raw_sums(), filled.raw_sums());
}

TEST(Moments, MergeAfterDeserializeEqualsInMemoryMerge) {
    // The resume path deserializes one side of every merge; the result
    // must be bit-for-bit what the uninterrupted in-memory merge gives.
    MomentAccumulator a(6);
    MomentAccumulator b(6);
    Xoshiro256 rng(42);
    for (int i = 0; i < 800; ++i) a.add(rng.gaussian(1.0, 2.0));
    for (int i = 0; i < 300; ++i) b.add(rng.gaussian(-1.0, 0.5));

    MomentAccumulator in_memory = a;
    in_memory.merge(b);

    SnapshotWriter out;
    a.encode(out);
    const std::vector<std::uint8_t> bytes = std::move(out).finish();
    SnapshotReader in(bytes);
    MomentAccumulator reloaded = MomentAccumulator::decode(in);
    reloaded.merge(b);

    EXPECT_EQ(reloaded.count(), in_memory.count());
    EXPECT_EQ(reloaded.mean(), in_memory.mean());
    EXPECT_EQ(reloaded.raw_sums(), in_memory.raw_sums());
}

TEST(Tvla, EncodeDecodeRoundTripPreservesTCurves) {
    TvlaCampaign campaign(5, 3);
    Xoshiro256 rng(43);
    std::vector<double> trace(5);
    for (int i = 0; i < 2000; ++i) {
        const bool fixed = rng.bit();
        for (double& v : trace) v = rng.gaussian(fixed ? 0.2 : 0.0, 1.0);
        campaign.add_trace(fixed, trace);
    }

    SnapshotWriter out;
    campaign.encode(out);
    const std::vector<std::uint8_t> bytes = std::move(out).finish();
    SnapshotReader in(bytes);
    const TvlaCampaign back = TvlaCampaign::decode(in);

    ASSERT_EQ(back.samples(), campaign.samples());
    EXPECT_EQ(back.traces(true), campaign.traces(true));
    EXPECT_EQ(back.traces(false), campaign.traces(false));
    for (int order = 1; order <= 3; ++order)
        EXPECT_EQ(back.t_curve(order), campaign.t_curve(order))
            << "order " << order;
}

}  // namespace
}  // namespace glitchmask::leakage
