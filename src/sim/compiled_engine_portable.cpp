// Baseline-ISA instantiation of the wide-lane engine.  Always compiled;
// make_compiled_engine falls back here when AVX2 is unavailable or the
// user forces GLITCHMASK_SIMD=off.
#define GLITCHMASK_ENGINE_VARIANT engine_portable
#include "sim/compiled_engine_impl.h"
