file(REMOVE_RECURSE
  "CMakeFiles/refresh_or_leak.dir/refresh_or_leak.cpp.o"
  "CMakeFiles/refresh_or_leak.dir/refresh_or_leak.cpp.o.d"
  "refresh_or_leak"
  "refresh_or_leak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refresh_or_leak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
