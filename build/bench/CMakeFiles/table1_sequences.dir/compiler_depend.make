# Empty compiler generated dependencies file for table1_sequences.
# This may be replaced when dependencies are built.
