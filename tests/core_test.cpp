#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <map>
#include <vector>

#include "core/circuits.hpp"
#include "core/composition.hpp"
#include "core/gadgets.hpp"
#include "core/sharing.hpp"
#include "sim/clocked.hpp"
#include "sim/functional.hpp"
#include "support/rng.hpp"

namespace glitchmask::core {
namespace {

using netlist::NetId;
using netlist::Netlist;
using sim::ZeroDelaySim;

MaskedBit shares_of(unsigned bits, unsigned offset) {
    return MaskedBit{((bits >> offset) & 1) != 0, ((bits >> (offset + 1)) & 1) != 0};
}

// ----- reference semantics ----------------------------------------------

TEST(SharingRef, MaskBitRoundtrip) {
    Xoshiro256 rng(1);
    int share0_ones = 0;
    for (int i = 0; i < 2000; ++i) {
        const bool v = rng.bit();
        const MaskedBit m = mask_bit(v, rng);
        ASSERT_EQ(m.value(), v);
        share0_ones += m.s0;
    }
    EXPECT_NEAR(share0_ones / 2000.0, 0.5, 0.05);
}

TEST(SharingRef, MaskWordRoundtripAndWidth) {
    Xoshiro256 rng(2);
    for (int i = 0; i < 500; ++i) {
        const std::uint64_t v = rng.bits(48);
        const MaskedWord m = mask_word(v, 48, rng);
        ASSERT_EQ(m.value(), v);
        ASSERT_EQ(m.s0 >> 48, 0u);
        ASSERT_EQ(m.s1 >> 48, 0u);
    }
}

TEST(SharingRef, Secand2ComputesAndExhaustively) {
    for (unsigned bits = 0; bits < 16; ++bits) {
        const MaskedBit x = shares_of(bits, 0);
        const MaskedBit y = shares_of(bits, 2);
        EXPECT_EQ(secand2_ref(x, y).value(), x.value() && y.value())
            << "bits=" << bits;
    }
}

TEST(SharingRef, TrichinaComputesAndExhaustively) {
    for (unsigned bits = 0; bits < 32; ++bits) {
        const MaskedBit x = shares_of(bits, 0);
        const MaskedBit y = shares_of(bits, 2);
        const bool r = ((bits >> 4) & 1) != 0;
        EXPECT_EQ(trichina_and_ref(x, y, r).value(), x.value() && y.value());
    }
}

TEST(SharingRef, DomComputesAndExhaustively) {
    for (unsigned bits = 0; bits < 32; ++bits) {
        const MaskedBit x = shares_of(bits, 0);
        const MaskedBit y = shares_of(bits, 2);
        const bool r = ((bits >> 4) & 1) != 0;
        EXPECT_EQ(dom_and_ref(x, y, r).value(), x.value() && y.value());
    }
}

TEST(SharingRef, LinearGadgets) {
    for (unsigned bits = 0; bits < 32; ++bits) {
        const MaskedBit a = shares_of(bits, 0);
        const MaskedBit b = shares_of(bits, 2);
        const bool m = ((bits >> 4) & 1) != 0;
        EXPECT_EQ(refresh_ref(a, m).value(), a.value());
        EXPECT_EQ(xor_ref(a, b).value(), a.value() != b.value());
        EXPECT_EQ(not_ref(a).value(), !a.value());
        EXPECT_EQ(xor_const_ref(a, m).value(), a.value() != m);
    }
}

TEST(SharingRef, Secand2OutputSharesMatchEquation2) {
    // Spot-check the share-level equations, not just the unshared value.
    const MaskedBit x{true, false};
    const MaskedBit y{false, true};
    const MaskedBit z = secand2_ref(x, y);
    // z0 = (1&0) ^ (1|!1) = 0 ^ 1 = 1;  z1 = (0&0) ^ (0|!1) = 0 ^ 0 = 0.
    EXPECT_TRUE(z.s0);
    EXPECT_FALSE(z.s1);
}

// ----- netlist gadgets vs reference -------------------------------------

struct GadgetHarness {
    Netlist nl;
    SharedNet x, y;
    NetId r0 = netlist::kNoNet, r1 = netlist::kNoNet, r2 = netlist::kNoNet;
    SharedNet z;
};

void drive_shares(ZeroDelaySim& sim, const SharedNet& net, MaskedBit value) {
    sim.set_input(net.s0, value.s0);
    sim.set_input(net.s1, value.s1);
}

MaskedBit read_shares(const ZeroDelaySim& sim, const SharedNet& net) {
    return MaskedBit{sim.value(net.s0), sim.value(net.s1)};
}

TEST(Gadgets, Secand2NetlistMatchesReference) {
    GadgetHarness h;
    h.x = shared_input(h.nl, "x");
    h.y = shared_input(h.nl, "y");
    h.z = secand2(h.nl, h.x, h.y);
    h.nl.freeze();
    ZeroDelaySim sim(h.nl);
    for (unsigned bits = 0; bits < 16; ++bits) {
        const MaskedBit x = shares_of(bits, 0);
        const MaskedBit y = shares_of(bits, 2);
        drive_shares(sim, h.x, x);
        drive_shares(sim, h.y, y);
        sim.step();
        EXPECT_EQ(read_shares(sim, h.z), secand2_ref(x, y)) << "bits=" << bits;
    }
}

TEST(Gadgets, TrichinaNetlistMatchesReference) {
    GadgetHarness h;
    h.x = shared_input(h.nl, "x");
    h.y = shared_input(h.nl, "y");
    h.r0 = h.nl.input("r");
    h.z = trichina_and(h.nl, h.x, h.y, h.r0);
    h.nl.freeze();
    ZeroDelaySim sim(h.nl);
    for (unsigned bits = 0; bits < 32; ++bits) {
        const MaskedBit x = shares_of(bits, 0);
        const MaskedBit y = shares_of(bits, 2);
        const bool r = ((bits >> 4) & 1) != 0;
        drive_shares(sim, h.x, x);
        drive_shares(sim, h.y, y);
        sim.set_input(h.r0, r);
        sim.step();
        EXPECT_EQ(read_shares(sim, h.z), trichina_and_ref(x, y, r));
    }
}

TEST(Gadgets, DomIndepNetlistMatchesReference) {
    GadgetHarness h;
    h.x = shared_input(h.nl, "x");
    h.y = shared_input(h.nl, "y");
    h.r0 = h.nl.input("r");
    h.z = dom_and_indep(h.nl, h.x, h.y, h.r0);
    h.nl.freeze();
    ZeroDelaySim sim(h.nl);
    for (unsigned bits = 0; bits < 32; ++bits) {
        const MaskedBit x = shares_of(bits, 0);
        const MaskedBit y = shares_of(bits, 2);
        const bool r = ((bits >> 4) & 1) != 0;
        drive_shares(sim, h.x, x);
        drive_shares(sim, h.y, y);
        sim.set_input(h.r0, r);
        sim.step(2);  // one register stage
        EXPECT_EQ(read_shares(sim, h.z), dom_and_ref(x, y, r));
    }
}

TEST(Gadgets, DomDepComputesAnd) {
    GadgetHarness h;
    h.x = shared_input(h.nl, "x");
    h.y = shared_input(h.nl, "y");
    h.r0 = h.nl.input("r0");
    h.r1 = h.nl.input("r1");
    h.r2 = h.nl.input("r2");
    h.z = dom_and_dep(h.nl, h.x, h.y, h.r0, h.r1, h.r2);
    h.nl.freeze();
    ZeroDelaySim sim(h.nl);
    Xoshiro256 rng(4);
    for (int i = 0; i < 64; ++i) {
        const MaskedBit x = mask_bit(rng.bit(), rng);
        const MaskedBit y = mask_bit(rng.bit(), rng);
        drive_shares(sim, h.x, x);
        drive_shares(sim, h.y, y);
        sim.set_input(h.r0, rng.bit());
        sim.set_input(h.r1, rng.bit());
        sim.set_input(h.r2, rng.bit());
        sim.step(3);  // refresh registers + DOM register stage
        EXPECT_EQ(read_shares(sim, h.z).value(), x.value() && y.value());
    }
}

TEST(Gadgets, Secand2FfNeedsEnableSchedule) {
    GadgetHarness h;
    h.x = shared_input(h.nl, "x");
    h.y = shared_input(h.nl, "y");
    h.z = secand2_ff(h.nl, h.x, h.y, /*enable=*/1, /*reset=*/2);
    h.nl.freeze();
    ZeroDelaySim sim(h.nl);
    Xoshiro256 rng(5);
    for (int i = 0; i < 64; ++i) {
        sim.restart();
        const MaskedBit x = mask_bit(rng.bit(), rng);
        const MaskedBit y = mask_bit(rng.bit(), rng);
        drive_shares(sim, h.x, x);
        drive_shares(sim, h.y, y);
        sim.step();  // inputs land, internal FF still holds 0
        sim.set_enable(1, true);
        sim.step();  // y1 sampled: gadget complete
        EXPECT_EQ(read_shares(sim, h.z), secand2_ref(x, y));
    }
}

TEST(Gadgets, Secand2PdFunctionallyTransparent) {
    GadgetHarness h;
    h.x = shared_input(h.nl, "x");
    h.y = shared_input(h.nl, "y");
    h.z = secand2_pd(h.nl, h.x, h.y);
    h.nl.freeze();
    ZeroDelaySim sim(h.nl);
    for (unsigned bits = 0; bits < 16; ++bits) {
        const MaskedBit x = shares_of(bits, 0);
        const MaskedBit y = shares_of(bits, 2);
        drive_shares(sim, h.x, x);
        drive_shares(sim, h.y, y);
        sim.step();
        EXPECT_EQ(read_shares(sim, h.z), secand2_ref(x, y));
    }
}

TEST(Gadgets, Secand2PdSettlesCorrectlyUnderTiming) {
    GadgetHarness h;
    h.x = shared_input(h.nl, "x");
    h.y = shared_input(h.nl, "y");
    h.z = secand2_pd(h.nl, h.x, h.y);
    h.nl.freeze();
    sim::DelayConfig config = sim::DelayConfig::spartan6();
    const sim::DelayModel dm(h.nl, config);
    sim::ClockConfig clock;
    clock.period_ps = 48000;  // fits 2 DelayUnits + logic comfortably
    sim::ClockedSim sim(h.nl, dm, clock);
    Xoshiro256 rng(6);
    for (int i = 0; i < 32; ++i) {
        const MaskedBit x = mask_bit(rng.bit(), rng);
        const MaskedBit y = mask_bit(rng.bit(), rng);
        sim.set_input(h.x.s0, x.s0);
        sim.set_input(h.x.s1, x.s1);
        sim.set_input(h.y.s0, y.s0);
        sim.set_input(h.y.s1, y.s1);
        sim.step();
        const MaskedBit z{sim.value(h.z.s0), sim.value(h.z.s1)};
        EXPECT_EQ(z, secand2_ref(x, y));
    }
}

TEST(Gadgets, Secand2PdRegistersCoupledChains) {
    Netlist nl;
    const SharedNet x = shared_input(nl, "x");
    const SharedNet y = shared_input(nl, "y");
    (void)secand2_pd(nl, x, y, PathDelayOptions{.luts_per_unit = 4});
    // x0|x1 chains overlap on 4 stages, x1|y1 on 4 stages.
    EXPECT_EQ(nl.coupled_pairs().size(), 8u);
}

TEST(Gadgets, RefreshAndLinearNetlist) {
    Netlist nl;
    const SharedNet a = shared_input(nl, "a");
    const SharedNet b = shared_input(nl, "b");
    const NetId m = nl.input("m");
    const SharedNet r = refresh_shares(nl, a, m);
    const SharedNet x = xor_shares(nl, a, b);
    const SharedNet n = not_shares(nl, a);
    nl.freeze();
    ZeroDelaySim sim(nl);
    for (unsigned bits = 0; bits < 32; ++bits) {
        const MaskedBit av = shares_of(bits, 0);
        const MaskedBit bv = shares_of(bits, 2);
        const bool mv = ((bits >> 4) & 1) != 0;
        drive_shares(sim, a, av);
        drive_shares(sim, b, bv);
        sim.set_input(m, mv);
        sim.step();
        EXPECT_EQ(read_shares(sim, r), refresh_ref(av, mv));
        EXPECT_EQ(read_shares(sim, x).value(), av.value() != bv.value());
        EXPECT_EQ(read_shares(sim, n).value(), !av.value());
    }
}

// ----- composition -------------------------------------------------------

TEST(Composition, Table2ScheduleMatchesPaper) {
    // Product of 3: c0 -> b0 -> a0,a1 -> b1 -> c1  (delays 2,1,0 / 2,3,4).
    const DelaySchedule s3 = table2_schedule(3);
    EXPECT_EQ(s3.share0, (std::vector<unsigned>{2, 1, 0}));
    EXPECT_EQ(s3.share1, (std::vector<unsigned>{2, 3, 4}));
    // Product of 4: d0 -> c0 -> b0 -> a0,a1 -> b1 -> c1 -> d1.
    const DelaySchedule s4 = table2_schedule(4);
    EXPECT_EQ(s4.share0, (std::vector<unsigned>{3, 2, 1, 0}));
    EXPECT_EQ(s4.share1, (std::vector<unsigned>{3, 4, 5, 6}));
}

TEST(Composition, ScheduleArrivalOrderIsSafe) {
    // Every x-share (any variable's shares entering a gadget as the x
    // operand) must be bracketed: some y0 earlier, some y1 later.  The
    // global order must start with share0 of the last variable and end
    // with share1 of the last variable.
    for (unsigned n = 2; n <= 6; ++n) {
        const DelaySchedule s = table2_schedule(n);
        EXPECT_EQ(s.share0[n - 1], 0u);
        EXPECT_EQ(s.share1[n - 1], 2 * (n - 1));
        for (unsigned i = 0; i + 1 < n; ++i) {
            EXPECT_GT(s.share0[i], s.share0[i + 1]);
            EXPECT_LT(s.share1[i], s.share1[i + 1]);
        }
    }
}

class ProductTreeTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ProductTreeTest, ComputesProduct) {
    const unsigned n = GetParam();
    Netlist nl;
    SharedBus vars = shared_input_bus(nl, "v", n);
    const FfProduct product = product_tree_ff(nl, vars, /*first_group=*/1);
    nl.freeze();

    const unsigned expected_layers =
        n == 1 ? 0 : static_cast<unsigned>(std::ceil(std::log2(n)));
    EXPECT_EQ(product.layers, expected_layers);

    ZeroDelaySim sim(nl);
    Xoshiro256 rng(100 + n);
    for (int trial = 0; trial < 40; ++trial) {
        sim.restart();
        bool expected = true;
        for (unsigned i = 0; i < n; ++i) {
            const bool v = rng.bit();
            expected = expected && v;
            const MaskedBit m = mask_bit(v, rng);
            sim.set_input(vars[i].s0, m.s0);
            sim.set_input(vars[i].s1, m.s1);
        }
        sim.step();  // operands land
        for (unsigned layer = 0; layer < product.layers; ++layer) {
            sim.set_enable(static_cast<netlist::CtrlGroup>(1 + layer), true);
            sim.step();
        }
        const MaskedBit z{sim.value(product.out.s0), sim.value(product.out.s1)};
        EXPECT_EQ(z.value(), expected) << "n=" << n << " trial=" << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ProductTreeTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 8u));

class ProductChainTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ProductChainTest, ComputesProductZeroDelay) {
    const unsigned n = GetParam();
    Netlist nl;
    SharedBus vars = shared_input_bus(nl, "v", n);
    const PdProduct product = product_chain_pd(nl, vars);
    nl.freeze();
    EXPECT_EQ(product.max_delay_units, 2 * (n - 1));

    ZeroDelaySim sim(nl);
    Xoshiro256 rng(200 + n);
    for (int trial = 0; trial < 40; ++trial) {
        bool expected = true;
        for (unsigned i = 0; i < n; ++i) {
            const bool v = rng.bit();
            expected = expected && v;
            const MaskedBit m = mask_bit(v, rng);
            sim.set_input(vars[i].s0, m.s0);
            sim.set_input(vars[i].s1, m.s1);
        }
        sim.step();
        const MaskedBit z{sim.value(product.out.s0), sim.value(product.out.s1)};
        EXPECT_EQ(z.value(), expected) << "n=" << n << " trial=" << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ProductChainTest,
                         ::testing::Values(2u, 3u, 4u));

TEST(Composition, ChainOfThreeSettlesUnderTiming) {
    Netlist nl;
    SharedBus vars = shared_input_bus(nl, "v", 3);
    const PdProduct product =
        product_chain_pd(nl, vars, PathDelayOptions{.luts_per_unit = 10});
    nl.freeze();
    sim::DelayConfig config = sim::DelayConfig::spartan6();
    const sim::DelayModel dm(nl, config);
    sim::ClockConfig clock;
    clock.period_ps = 60000;  // 4 DelayUnits + logic: ~30 ns, margin 2x
    sim::ClockedSim sim(nl, dm, clock);
    Xoshiro256 rng(7);
    for (int trial = 0; trial < 24; ++trial) {
        bool expected = true;
        for (unsigned i = 0; i < 3; ++i) {
            const bool v = rng.bit();
            expected = expected && v;
            const MaskedBit m = mask_bit(v, rng);
            sim.set_input(vars[i].s0, m.s0);
            sim.set_input(vars[i].s1, m.s1);
        }
        sim.step();
        const MaskedBit z{sim.value(product.out.s0), sim.value(product.out.s1)};
        EXPECT_EQ(z.value(), expected) << "trial=" << trial;
    }
}

TEST(Composition, RejectsEmptyInput) {
    Netlist nl;
    EXPECT_THROW((void)product_tree_ff(nl, {}, 1), std::invalid_argument);
    EXPECT_THROW((void)product_chain_pd(nl, {}), std::invalid_argument);
    EXPECT_THROW((void)table2_schedule(0), std::invalid_argument);
}

// ----- experiment circuits ------------------------------------------------

TEST(Circuits, TwentyFourUniqueSequences) {
    const std::vector<InputSequence> sequences = all_input_sequences();
    EXPECT_EQ(sequences.size(), 24u);
    std::map<std::array<int, 4>, int> seen;
    for (const InputSequence& s : sequences)
        ++seen[{static_cast<int>(s[0]), static_cast<int>(s[1]),
                static_cast<int>(s[2]), static_cast<int>(s[3])}];
    EXPECT_EQ(seen.size(), 24u);
}

TEST(Circuits, ExpectedLeakRuleMatchesTable1) {
    int leaky = 0;
    for (const InputSequence& s : all_input_sequences())
        leaky += sequence_expected_to_leak(s);
    // Exactly half the sequences end in an x share.
    EXPECT_EQ(leaky, 12);
    EXPECT_TRUE(sequence_expected_to_leak({ShareId::Y0, ShareId::Y1,
                                           ShareId::X1, ShareId::X0}));
    EXPECT_FALSE(sequence_expected_to_leak({ShareId::X0, ShareId::X1,
                                            ShareId::Y0, ShareId::Y1}));
}

TEST(Circuits, RegisteredSecand2ComputesAfterSequence) {
    RegisteredSecand2 circuit = build_registered_secand2(3);
    ZeroDelaySim sim(circuit.nl);
    Xoshiro256 rng(8);
    for (const InputSequence& sequence : all_input_sequences()) {
        sim.restart();
        const MaskedBit x = mask_bit(rng.bit(), rng);
        const MaskedBit y = mask_bit(rng.bit(), rng);
        const std::array<bool, 4> shares{x.s0, x.s1, y.s0, y.s1};
        for (std::size_t i = 0; i < 4; ++i)
            sim.set_input(circuit.in[i], shares[i]);
        sim.step();
        for (const ShareId slot : sequence) {
            sim.set_enable(circuit.enable[static_cast<std::size_t>(slot)], true);
            sim.step();
        }
        for (const SharedNet& out : circuit.outputs) {
            const MaskedBit z{sim.value(out.s0), sim.value(out.s1)};
            ASSERT_EQ(z, secand2_ref(x, y));
        }
    }
}

TEST(Circuits, MaskedFComputesF) {
    for (const bool with_refresh : {false, true}) {
        MaskedF circuit = build_masked_f(with_refresh);
        ZeroDelaySim sim(circuit.nl);
        Xoshiro256 rng(9);
        for (int trial = 0; trial < 32; ++trial) {
            sim.restart();
            const bool xv = rng.bit();
            const bool yv = rng.bit();
            const MaskedBit x = mask_bit(xv, rng);
            const MaskedBit y = mask_bit(yv, rng);
            sim.set_input(circuit.x0, x.s0);
            sim.set_input(circuit.x1, x.s1);
            sim.set_input(circuit.y0, y.s0);
            sim.set_input(circuit.y1, y.s1);
            sim.set_input(circuit.m, rng.bit());
            sim.step();
            sim.set_enable(circuit.in_enable, true);
            sim.step();
            sim.set_enable(circuit.mul_enable, true);
            sim.step();
            const MaskedBit f{sim.value(circuit.f.s0), sim.value(circuit.f.s1)};
            const bool expected = (xv != yv) != (xv && yv);
            ASSERT_EQ(f.value(), expected)
                << "refresh=" << with_refresh << " trial=" << trial;
        }
    }
}

TEST(Circuits, RefreshRestoresOutputUniformity) {
    // Paper Sec. III-C: without refresh the shares of f are not uniform
    // (for x=y=1 the pair (f0,f1) degenerates to a single point); the
    // 1-bit refresh restores a uniform distribution over the consistent
    // share pairs.
    auto share_histogram = [](bool with_refresh) {
        MaskedF circuit = build_masked_f(with_refresh);
        ZeroDelaySim sim(circuit.nl);
        Xoshiro256 rng(10);
        std::array<int, 4> histogram{};
        for (int trial = 0; trial < 2000; ++trial) {
            sim.restart();
            const MaskedBit x = mask_bit(true, rng);
            const MaskedBit y = mask_bit(true, rng);
            sim.set_input(circuit.x0, x.s0);
            sim.set_input(circuit.x1, x.s1);
            sim.set_input(circuit.y0, y.s0);
            sim.set_input(circuit.y1, y.s1);
            sim.set_input(circuit.m, rng.bit());
            sim.step();
            sim.set_enable(circuit.in_enable, true);
            sim.step();
            sim.set_enable(circuit.mul_enable, true);
            sim.step();
            const unsigned pair = (sim.value(circuit.f.s0) ? 1u : 0u) |
                                  (sim.value(circuit.f.s1) ? 2u : 0u);
            ++histogram[pair];
        }
        return histogram;
    };

    const std::array<int, 4> without = share_histogram(false);
    // Degenerate: all mass on a single share pair.
    int nonzero = 0;
    for (const int count : without) nonzero += (count > 0);
    EXPECT_EQ(nonzero, 1);

    const std::array<int, 4> with = share_histogram(true);
    // f = 1: consistent pairs are (1,0) and (0,1); both near 50%.
    EXPECT_EQ(with[0], 0);
    EXPECT_EQ(with[3], 0);
    EXPECT_NEAR(with[1] / 2000.0, 0.5, 0.05);
    EXPECT_NEAR(with[2] / 2000.0, 0.5, 0.05);
}

}  // namespace
}  // namespace glitchmask::core
