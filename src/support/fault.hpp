// Deterministic, site-addressable fault injection for robustness testing.
//
// The crash-safe campaign runtime promises typed errors and bit-identical
// resume under arbitrary I/O failure; that promise is only worth anything
// if the failure paths actually run.  This layer lets tests and CI drive
// them on demand: named *sites* in the I/O and service code
// ("atomic_file.write", "atomic_file.payload", "campaign.block",
// "service.worker", ...) consult an installed FaultPlan, which decides --
// deterministically, from (plan seed, site, hit index) -- whether to
// simulate an errno, corrupt a buffer, throw std::bad_alloc, stall the
// clock, or SIGKILL the process.
//
// Cost discipline: with no plan installed every site is one relaxed
// atomic load ("is anything active?") and nothing else; configuring the
// build with -DGLITCHMASK_FAULT_INJECTION=OFF compiles every site to a
// constant-false no-op, so production binaries carry zero overhead and
// zero attack surface.
//
// Plans are expressed as a spec string (env GLITCHMASK_FAULTS, daemon
// --faults, or parse_fault_plan in tests):
//
//   spec      := clause (';' clause)*
//   clause    := "seed=" N | site '=' kind ('@' param (',' param)*)?
//   kind      := eintr | eio | enospc | oom | corrupt | kill | stall
//   param     := "after=" N   eligible hits skipped before arming
//              | "count=" N   maximum number of fires (default unlimited)
//              | "every=" N   fire on every Nth armed hit (default 1)
//              | "p=" F       seeded Bernoulli fire probability
//              | "ms=" N      stall duration (stall only, default 50)
//
// e.g. GLITCHMASK_FAULTS="seed=7;atomic_file.write=enospc@after=2,count=1;
//       campaign.block=stall@ms=40,every=5"
// A trailing '*' in a site name prefix-matches ("atomic_file.*").
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace glitchmask::fault {

enum class FaultKind { IoError, Alloc, Corrupt, Kill, Stall };

struct FaultSpec {
    std::string site;                  // exact, or prefix when ending in '*'
    FaultKind kind = FaultKind::IoError;
    int error_number = 0;              // simulated errno (IoError)
    std::uint64_t after = 0;           // eligible hits skipped before arming
    std::uint64_t count = ~0ull;       // max fires
    std::uint64_t every = 1;           // fire on every Nth armed hit
    double probability = 1.0;          // seeded Bernoulli per armed hit
    std::uint64_t stall_ms = 50;       // Stall only
};

struct FaultPlan {
    std::uint64_t seed = 1;
    std::vector<FaultSpec> specs;
};

/// Parses the spec grammar above; throws std::invalid_argument naming the
/// offending clause.
[[nodiscard]] FaultPlan parse_fault_plan(const std::string& text);

/// Per-site observability: how often each configured spec was consulted
/// and how often it fired.
struct SiteStats {
    std::string site;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
};

#if defined(GLITCHMASK_NO_FAULT_INJECTION)

inline void install(FaultPlan) {}
inline void install_from_env() {}
inline void clear() noexcept {}
[[nodiscard]] inline bool active() noexcept { return false; }
[[nodiscard]] inline int inject_errno(const char*) noexcept { return 0; }
[[nodiscard]] inline bool inject_corrupt(const char*,
                                         std::span<std::uint8_t>) noexcept {
    return false;
}
inline void inject_point(const char*) {}
[[nodiscard]] inline std::vector<SiteStats> stats() { return {}; }
[[nodiscard]] inline std::uint64_t total_fires() noexcept { return 0; }

#else

/// Installs `plan` process-wide, resetting all hit counters.
void install(FaultPlan plan);

/// install(parse_fault_plan($GLITCHMASK_FAULTS)) when the env var is set;
/// no-op otherwise.  Called by the daemon and CI harnesses, never by the
/// library implicitly.
void install_from_env();

/// Removes the plan; every site reverts to the single-load fast path.
void clear() noexcept;

/// True when a plan with at least one spec is installed (one relaxed
/// atomic load -- the only cost a site pays when faults are off).
[[nodiscard]] bool active() noexcept;

/// IoError site: the errno this hit should simulate, or 0 (no fault).
[[nodiscard]] int inject_errno(const char* site) noexcept;

/// Corrupt site: deterministically flips one byte of `buf` (position
/// derived from the plan seed and hit index) and returns true when the
/// site fired.  Empty buffers never fire.
[[nodiscard]] bool inject_corrupt(const char* site,
                                  std::span<std::uint8_t> buf) noexcept;

/// Control-flow site: throws std::bad_alloc (Alloc), sleeps (Stall), or
/// SIGKILLs the process (Kill) when the site fires; no-op for sites
/// configured with data kinds (IoError/Corrupt).
void inject_point(const char* site);

/// Counters for every spec of the installed plan, in plan order.
[[nodiscard]] std::vector<SiteStats> stats();

/// Total fires across all specs since install().
[[nodiscard]] std::uint64_t total_fires() noexcept;

#endif  // GLITCHMASK_NO_FAULT_INJECTION

}  // namespace glitchmask::fault
