#include "support/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <span>

#include "support/atomic_file.hpp"
#include "support/env.hpp"
#include "support/telemetry.hpp"

namespace glitchmask::trace {

namespace {

std::atomic<int> g_enabled{-1};  // -1 = resolve GLITCHMASK_TRACE
std::atomic<std::uint64_t> g_next_id{1};

/// Global cap across all thread buffers: a runaway traced loop degrades
/// to counted drops instead of unbounded memory.
constexpr std::size_t kMaxBufferedSpans = std::size_t{1} << 20;
std::atomic<std::size_t> g_buffered{0};
std::atomic<std::uint64_t> g_dropped{0};

/// One thread's span buffer.  Appended only by its owner; the mutex
/// exists for the (rare) concurrent take_spans() drain.
struct Buffer {
    std::mutex mutex;
    std::vector<Span> spans;
    std::uint32_t thread = 0;
};

/// Buffers are shared between the owning thread (thread_local handle) and
/// the registry, so a thread may exit with undrained spans and lose
/// nothing; take_spans() prunes buffers that are both orphaned and empty.
struct TraceRegistry {
    std::mutex mutex;
    std::vector<std::shared_ptr<Buffer>> buffers;
    std::uint32_t next_thread = 1;
};

TraceRegistry& registry() {
    static TraceRegistry instance;
    return instance;
}

struct BufferHandle {
    std::shared_ptr<Buffer> buffer = std::make_shared<Buffer>();

    BufferHandle() {
        TraceRegistry& reg = registry();
        const std::lock_guard<std::mutex> lock(reg.mutex);
        buffer->thread = reg.next_thread++;
        reg.buffers.push_back(buffer);
    }
};

Buffer& local_buffer() {
    thread_local BufferHandle handle;
    return *handle.buffer;
}

thread_local std::vector<SpanId> g_ambient;

void append_escaped(std::string& out, std::string_view text) {
    out += '"';
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buffer[8];
                    std::snprintf(buffer, sizeof buffer, "\\u%04x",
                                  static_cast<unsigned>(c));
                    out += buffer;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

/// Microseconds with nanosecond residue -- Chrome-trace timestamps are
/// conventionally doubles in us; %.3f keeps the ns exact.
void append_us(std::string& out, std::uint64_t nanos) {
    char buffer[40];
    std::snprintf(buffer, sizeof buffer, "%llu.%03u",
                  static_cast<unsigned long long>(nanos / 1000),
                  static_cast<unsigned>(nanos % 1000));
    out += buffer;
}

}  // namespace

bool enabled() noexcept {
    int state = g_enabled.load(std::memory_order_relaxed);
    if (state < 0) {
        state = env_int("GLITCHMASK_TRACE", 0) != 0 ? 1 : 0;
        int expected = -1;
        g_enabled.compare_exchange_strong(expected, state,
                                          std::memory_order_relaxed);
        state = g_enabled.load(std::memory_order_relaxed);
    }
    return state != 0;
}

void set_enabled(bool on) noexcept {
    g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

SpanId new_span_id() noexcept {
    return g_next_id.fetch_add(1, std::memory_order_relaxed);
}

SpanId current_span() noexcept {
    return g_ambient.empty() ? 0 : g_ambient.back();
}

void push_ambient(SpanId id) { g_ambient.push_back(id); }

void pop_ambient() noexcept {
    if (!g_ambient.empty()) g_ambient.pop_back();
}

void record_span(Span span) {
    if (!enabled()) return;
    if (g_buffered.fetch_add(1, std::memory_order_relaxed) >=
        kMaxBufferedSpans) {
        g_buffered.fetch_sub(1, std::memory_order_relaxed);
        g_dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    Buffer& buffer = local_buffer();
    span.thread = buffer.thread;
    const std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.spans.push_back(std::move(span));
}

void record_span(SpanId id, std::string name, SpanId parent,
                 std::uint64_t begin_ns, std::uint64_t end_ns,
                 std::vector<std::pair<std::string, std::string>> attrs) {
    Span span;
    span.id = id;
    span.parent = parent;
    span.name = std::move(name);
    span.begin_ns = begin_ns;
    span.end_ns = end_ns;
    span.attrs = std::move(attrs);
    record_span(std::move(span));
}

ScopedSpan::ScopedSpan(std::string name, SpanId parent,
                       std::vector<std::pair<std::string, std::string>> attrs) {
    if (!enabled()) return;
    id_ = new_span_id();
    parent_ = parent != 0 ? parent : current_span();
    begin_ns_ = telemetry::steady_now_ns();
    name_ = std::move(name);
    attrs_ = std::move(attrs);
    push_ambient(id_);
}

ScopedSpan::~ScopedSpan() {
    if (id_ == 0) return;
    pop_ambient();
    record_span(id_, std::move(name_), parent_, begin_ns_,
                telemetry::steady_now_ns(), std::move(attrs_));
}

std::vector<Span> take_spans() {
    TraceRegistry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    std::vector<Span> out;
    for (const std::shared_ptr<Buffer>& buffer : reg.buffers) {
        const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
        if (buffer->spans.empty()) continue;
        g_buffered.fetch_sub(buffer->spans.size(), std::memory_order_relaxed);
        std::move(buffer->spans.begin(), buffer->spans.end(),
                  std::back_inserter(out));
        buffer->spans.clear();
    }
    // Orphaned (thread exited) and drained: nothing left to hold onto.
    std::erase_if(reg.buffers, [](const std::shared_ptr<Buffer>& buffer) {
        return buffer.use_count() == 1 && buffer->spans.empty();
    });
    return out;
}

void reset() {
    (void)take_spans();
    g_dropped.store(0, std::memory_order_relaxed);
}

std::uint64_t dropped_spans() noexcept {
    return g_dropped.load(std::memory_order_relaxed);
}

std::string render_chrome_trace(const std::vector<Span>& spans) {
    std::string out;
    out.reserve(256 + spans.size() * 160);
    out += "{\"traceEvents\":[";
    bool first = true;
    for (const Span& span : spans) {
        if (!first) out += ",";
        first = false;
        out += "\n{\"name\":";
        append_escaped(out, span.name);
        out += ",\"cat\":\"glitchmask\",\"ph\":\"X\",\"ts\":";
        append_us(out, span.begin_ns);
        out += ",\"dur\":";
        append_us(out, span.end_ns >= span.begin_ns
                           ? span.end_ns - span.begin_ns
                           : 0);
        out += ",\"pid\":1,\"tid\":";
        out += std::to_string(span.thread);
        // Ids as strings: u64 span ids would lose bits in a JS double.
        out += ",\"args\":{\"id\":\"";
        out += std::to_string(span.id);
        out += "\",\"parent\":\"";
        out += std::to_string(span.parent);
        out += '"';
        for (const auto& [key, value] : span.attrs) {
            out += ',';
            append_escaped(out, key);
            out += ':';
            append_escaped(out, value);
        }
        out += "}}";
    }
    out += "\n],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

void write_chrome_trace(const std::string& path,
                        const std::vector<Span>& spans) {
    const std::string text = render_chrome_trace(spans);
    atomic_write_file(path,
                      std::span<const std::uint8_t>(
                          reinterpret_cast<const std::uint8_t*>(text.data()),
                          text.size()));
}

std::vector<SpanSummary> summarize_spans(const std::vector<Span>& spans) {
    std::vector<SpanSummary> out;
    for (const Span& span : spans) {
        const auto it =
            std::find_if(out.begin(), out.end(), [&](const SpanSummary& s) {
                return s.name == span.name;
            });
        SpanSummary& entry =
            it != out.end()
                ? *it
                : out.emplace_back(SpanSummary{span.name, 0, 0});
        entry.count++;
        entry.total_ns +=
            span.end_ns >= span.begin_ns ? span.end_ns - span.begin_ns : 0;
    }
    std::sort(out.begin(), out.end(),
              [](const SpanSummary& a, const SpanSummary& b) {
                  return a.name < b.name;
              });
    return out;
}

}  // namespace glitchmask::trace
