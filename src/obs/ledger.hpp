// The cross-run results ledger: an append-only, CRC-guarded NDJSON
// history of campaign outcomes.
//
// PR 9 made a single campaign observable; nothing remembered anything
// *across* runs -- BENCH_batch_sim.json is overwritten in place and run
// reports are write-once files nobody re-reads.  The ledger is the
// durable memory: one line per finished campaign, keyed by the same
// request fingerprint the checkpoint/cache layers already use, plus the
// git revision and host that produced it.  obs/diff.hpp compares two
// entries field by field (leakage exactly, to the bit); obs/regression.hpp
// judges a candidate against its rolling same-fingerprint history with a
// deterministic noise-aware rule.
//
// File format -- one self-checking line per entry:
//
//   {"crc32":C,"entry":{...canonical single-line JSON...}}\n
//
// C is the CRC-32 (support/snapshot.hpp, the checkpoint polynomial) of
// the exact bytes of the entry object.  Appends are single O_APPEND
// writes, so concurrent writers interleave at line granularity; readers
// verify each line's CRC and *skip* corrupt or truncated lines (counting
// them) instead of failing -- a torn tail must never cost the intact
// prefix.  Doubles are rendered with %.17g, so every value -- including
// full-range u64 counters, which stay bare digit runs -- round-trips
// bit-exactly; "bit-identical" verdicts downstream are therefore real
// bit comparisons, not epsilon tests.
//
// Entries are ingested from three producers:
//   * run report files (eval/run_report.hpp, any schema version),
//   * the bench harness's BENCH_batch_sim.json (one entry per sweep row
//     plus a headline entry carrying the overhead/speedup gates),
//   * the campaign service (ServiceConfig::ledger_path appends one entry
//     per executed terminal job).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "eval/checkpoint.hpp"
#include "eval/run_report.hpp"

namespace glitchmask::obs {

inline constexpr const char* kLedgerSchema = "glitchmask.ledger";
inline constexpr std::uint32_t kLedgerVersion = 1;

/// Per-phase cost split.  cpu_seconds comes from the phase.* telemetry
/// counters (summed across workers -- CPU time, can exceed the run's
/// wall clock); wall_seconds from the trace span rollup where one was
/// collected.  0 = not measured, never "instant".
struct LedgerPhase {
    std::string name;  // "sim", "noise", "moments", ...
    double cpu_seconds = 0.0;
    double wall_seconds = 0.0;

    friend bool operator==(const LedgerPhase&, const LedgerPhase&) = default;
};

/// One ranked row of the per-net attribution table (the leakage-culprit
/// identity the diff layer tracks across revisions).
struct LedgerNet {
    std::uint64_t net = 0;
    std::string name;
    double max_abs_t = 0.0;
    std::uint64_t toggles = 0;
    std::uint64_t glitches = 0;

    friend bool operator==(const LedgerNet&, const LedgerNet&) = default;
};

/// One finished campaign as the ledger remembers it.
struct LedgerEntry {
    std::string source;    // "run_report" | "bench" | "service"
    std::string campaign;  // driver id / bench row id
    eval::CampaignFingerprint fingerprint{};
    std::string revision;  // git commit, "" = unknown
    std::string host;
    std::string utc;       // "YYYY-MM-DDTHH:MM:SSZ"; sorts chronologically
    std::string status{"completed"};  // job_state_name-style verdict
    std::string backend;   // "", "event", "compiled"
    unsigned workers = 0;
    unsigned lanes = 0;
    double wall_seconds = 0.0;
    double cpu_seconds = 0.0;
    // Leakage facts, compared bit-exactly by obs/diff.hpp.
    double max_abs_t1 = 0.0;
    std::uint64_t toggles = 0;
    std::vector<LedgerNet> attribution;  // ranked top-k culprits
    std::vector<LedgerPhase> phases;
    /// Everything else the producer reported, name -> value ("speedup",
    /// "telemetry_overhead", "max_abs_t_order2", ...).
    std::vector<std::pair<std::string, double>> metrics;

    friend bool operator==(const LedgerEntry&, const LedgerEntry&) = default;
};

/// 80 lowercase hex digits of the five fingerprint words -- the same
/// string the service uses as its cache/spool key, so ledger history
/// lookups and daemon job identities agree (service::fingerprint_hex
/// delegates here).
[[nodiscard]] std::string fingerprint_key(
    const eval::CampaignFingerprint& fingerprint);

/// Canonical single-line JSON of one entry (no trailing newline).  The
/// CRC is computed over exactly these bytes, and the regression radar
/// sorts equal-timestamp entries by this text -- one canonical form,
/// three uses.
[[nodiscard]] std::string render_ledger_entry(const LedgerEntry& entry);

/// One complete ledger line: CRC wrapper + entry + '\n'.
[[nodiscard]] std::string render_ledger_line(const LedgerEntry& entry);

/// Decodes the *entry object* (not the CRC wrapper); throws
/// std::runtime_error naming the problem on schema violations.
[[nodiscard]] LedgerEntry decode_ledger_entry(const eval::JsonValue& json);

struct LedgerFile {
    std::vector<LedgerEntry> entries;  // file order (append order)
    /// Lines dropped by the CRC/parse guard: a truncated tail, torn
    /// concurrent appends, bit rot.  The intact prefix is always kept.
    std::size_t corrupt_lines = 0;
};

/// Reads every intact line of the ledger; a missing file reads as empty.
/// Throws CampaignError{IoFailure} only on unreadable-but-present files.
[[nodiscard]] LedgerFile read_ledger(const std::string& path);

/// Appends one line with a single O_APPEND write (concurrent appenders
/// interleave whole lines).  Throws CampaignError{IoFailure}.
void append_ledger(const std::string& path, const LedgerEntry& entry);

/// Total order used everywhere history order matters: (utc, revision,
/// host, canonical text).  Any ingest interleaving of the same entry set
/// sorts to the same sequence, which is what makes the regression
/// verdict byte-identical at any concurrent-writer order.
void sort_ledger(std::vector<LedgerEntry>& entries);

// ----- ingestion ---------------------------------------------------------

/// Fills empty revision/host/utc fields at ingest time (flags win over
/// file contents only where the file carries nothing).
struct IngestOverrides {
    std::string revision;
    std::string host;
    std::string utc;
};

/// One entry from a run report (any schema version the reader accepts).
[[nodiscard]] LedgerEntry entry_from_run_report(const eval::RunReport& report);

/// Entries from a parsed BENCH_batch_sim.json: one per sweep row plus a
/// "<workload>/headline" entry carrying the top-level overhead/speedup
/// figures.  Accepts both the current "phases_cpu" key and the legacy
/// "phases" name.
[[nodiscard]] std::vector<LedgerEntry> entries_from_bench_json(
    const eval::JsonValue& json);

/// Classifies + converts one producer file (run report or bench JSON) and
/// applies the overrides.  Throws std::runtime_error on unrecognized
/// documents.
[[nodiscard]] std::vector<LedgerEntry> entries_from_file_text(
    std::string_view text, const IngestOverrides& overrides);

}  // namespace glitchmask::obs
