// Value-domain probing analysis of masked gadget netlists.
//
// For a (small) combinational gadget with first-order shared inputs and
// optional fresh-randomness inputs, this module computes the exact
// conditional distribution of every internal net -- and of net *pairs* --
// over uniform shares/randomness, for each assignment of the unshared
// secrets.  A net (or pair) is probe-independent when its distribution
// does not vary with the secrets.
//
// This checks the *stability/value* half of masking security (what a
// noiseless probe on settled wires sees); the glitch/transition half is
// what the timing simulator + TVLA cover.  Together they reproduce both
// of the paper's arguments:
//   * every single wire of secAND2 is first-order probe-independent
//     (the gadget is a sound masked AND at order 1), while
//   * the *pair* (z0, z1) is not independent of the inputs -- the output
//     sharing is non-uniform, which is exactly why composition needs the
//     refresh layer (Sec. III-C), and
//   * the refreshed product is pairwise independent again.
//
// Flip-flops are treated as transparent (D passthrough) so registered
// gadgets like secAND2-FF can be analyzed as settled combinational
// functions.  Exhaustive enumeration is used up to a budget; beyond it a
// seeded Monte-Carlo estimate with the same interface.
#pragma once

#include <cstdint>
#include <vector>

#include "core/gadgets.hpp"
#include "support/rng.hpp"

namespace glitchmask::leakage {

struct ProbingOptions {
    /// Max number of (secret x mask) evaluations before switching to
    /// Monte-Carlo sampling.
    std::uint64_t max_exhaustive = 1ull << 22;
    /// Monte-Carlo samples per secret assignment when sampling.
    std::uint64_t samples_per_secret = 20000;
    std::uint64_t seed = 1;
    /// Distribution distance above which a probe counts as dependent
    /// (exact mode can use ~1e-9; sampling needs statistical slack).
    double bias_threshold = 1e-9;
};

/// Largest total-variation distance between the conditional distribution
/// (given some secret assignment) and the secret-averaged distribution.
struct ProbeBias {
    netlist::NetId net = netlist::kNoNet;       // probe 1
    netlist::NetId net2 = netlist::kNoNet;      // probe 2 (pair reports)
    double bias = 0.0;
};

class ProbingAnalyzer {
public:
    /// `secrets`: the shared inputs (each SharedNet's two share nets must
    /// be primary inputs); `fresh`: fresh-randomness primary inputs.
    ProbingAnalyzer(const core::Netlist& nl,
                    std::vector<core::SharedNet> secrets,
                    std::vector<netlist::NetId> fresh,
                    ProbingOptions options = {});

    /// Max bias of a single probe on `net`.
    [[nodiscard]] double net_bias(netlist::NetId net) const;

    /// Max bias of the joint distribution of (a, b).
    [[nodiscard]] double pair_bias(netlist::NetId a, netlist::NetId b) const;

    /// Uniformity of a masked output: for every secret assignment, the
    /// share pair (z.s0, z.s1) of a correct gadget can only take the two
    /// values consistent with the unshared result; a *uniform* sharing
    /// puts probability 1/2 on each.  Returns the largest total-variation
    /// distance from that ideal over all secrets -- 0 for a uniform
    /// sharing, up to 1/2 for a fully degenerate one (paper Sec. III-C).
    [[nodiscard]] double sharing_uniformity_bias(const core::SharedNet& z) const;

    /// All nets whose single-probe bias exceeds the threshold, sorted by
    /// descending bias.
    [[nodiscard]] std::vector<ProbeBias> first_order_violations() const;

    /// True when no single probe depends on the secrets.
    [[nodiscard]] bool first_order_secure() const {
        return first_order_violations().empty();
    }

    [[nodiscard]] bool exhaustive() const noexcept { return exhaustive_; }

private:
    void evaluate_all();
    void accumulate(std::uint64_t secret_index, std::uint64_t mask_bits);

    const core::Netlist& nl_;
    std::vector<core::SharedNet> secrets_;
    std::vector<netlist::NetId> fresh_;
    ProbingOptions options_;
    bool exhaustive_ = true;

    // counts_[secret][net] = count of net==1; pair joint counts are
    // reconstructed from stored per-sample bit matrices would be too big,
    // so we also keep, per secret, the joint counts of all net pairs via
    // per-sample callbacks... instead we store the full per-secret list of
    // evaluated value vectors *compressed* as 64-bit packed rows when the
    // net count allows, else recompute on demand.  Simpler and exact:
    // keep per-secret vectors of packed net values (bit per net).
    std::vector<std::vector<std::vector<std::uint64_t>>> rows_;  // [secret][sample][word]
    std::size_t words_ = 0;
    std::uint64_t samples_per_secret_ = 0;
};

}  // namespace glitchmask::leakage
