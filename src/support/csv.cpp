#include "support/csv.hpp"

#include <iomanip>
#include <stdexcept>

namespace glitchmask {

CsvWriter::CsvWriter(const std::string& path,
                     std::initializer_list<std::string_view> header)
    : out_(path), path_(path) {
    if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
    bool first = true;
    for (auto field : header) {
        if (!first) out_ << ',';
        out_ << field;
        first = false;
    }
    out_ << '\n';
    out_ << std::setprecision(10);
}

void CsvWriter::row(std::initializer_list<double> values) {
    bool first = true;
    for (double v : values) {
        if (!first) out_ << ',';
        out_ << v;
        first = false;
    }
    out_ << '\n';
}

void CsvWriter::row(const std::vector<double>& values) {
    bool first = true;
    for (double v : values) {
        if (!first) out_ << ',';
        out_ << v;
        first = false;
    }
    out_ << '\n';
}

void CsvWriter::raw_row(std::initializer_list<std::string_view> fields) {
    bool first = true;
    for (auto f : fields) {
        if (!first) out_ << ',';
        out_ << f;
        first = false;
    }
    out_ << '\n';
}

}  // namespace glitchmask
