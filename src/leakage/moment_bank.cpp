#include "leakage/moment_bank.hpp"

#include <cmath>
#include <stdexcept>

#include "support/campaign_error.hpp"
#include "support/simd.hpp"

namespace glitchmask::leakage {

namespace bank_kernels {

namespace {

// Same definitions as leakage/moments.cpp -- the kernels must reproduce
// MomentAccumulator's coefficient values exactly, and both are pure
// functions evaluated in the same operation order.
[[nodiscard]] double binomial(int n, int k) {
    double result = 1.0;
    for (int i = 1; i <= k; ++i)
        result = result * static_cast<double>(n - k + i) / static_cast<double>(i);
    return result;
}

[[nodiscard]] double ipow(double base, int exponent) {
    double result = 1.0;
    for (int i = 0; i < exponent; ++i) result *= base;
    return result;
}

}  // namespace

void fold_row_scalar(double* mean, double* sums, std::size_t points,
                     std::size_t stride, int max_order, double n1, double n,
                     const double* row) {
    if (n1 == 0.0) {
        // First trace of the class: central sums stay zero, only the
        // means move (MomentAccumulator::add's early return).
        for (std::size_t i = 0; i < points; ++i) {
            const double delta = row[i] - mean[i];
            const double delta_n = delta / n;
            mean[i] += delta_n;
        }
        return;
    }
    // The Pebay coefficients depend only on (p, k, n1, n) -- scalars the
    // whole row shares -- so hoist them out of the point loop.
    double binom[7][7];
    double tail[7];
    for (int p = 2; p <= max_order; ++p) {
        for (int k = 1; k <= p - 2; ++k) binom[p][k] = binomial(p, k);
        tail[p] = 1.0 - ipow(-1.0 / n1, p - 1);
    }
    for (std::size_t i = 0; i < points; ++i) {
        const double x = row[i];
        const double delta = x - mean[i];
        const double delta_n = delta / n;
        mean[i] += delta_n;
        for (int p = max_order; p >= 2; --p) {
            double update = sums[static_cast<std::size_t>(p) * stride + i];
            for (int k = 1; k <= p - 2; ++k)
                update += binom[p][k] *
                          sums[static_cast<std::size_t>(p - k) * stride + i] *
                          ipow(-delta_n, k);
            const double term = n1 * delta / n;
            update += ipow(term, p) * tail[p];
            sums[static_cast<std::size_t>(p) * stride + i] = update;
        }
    }
}

FoldRowFn resolve_fold_row() noexcept {
#if defined(GLITCHMASK_HAVE_AVX2)
    if (support::active_simd_level() >= support::SimdLevel::kAvx2)
        return fold_row_avx2;
#endif
    return fold_row_scalar;
}

}  // namespace bank_kernels

MomentBank::MomentBank(std::size_t points, int max_test_order)
    : points_(points),
      max_test_order_(max_test_order),
      max_order_(2 * max_test_order < 2 ? 2 : 2 * max_test_order) {
    if (max_test_order < 1 || max_test_order > 3)
        throw std::invalid_argument("MomentBank: order must be 1..3");
    for (ClassPlanes* planes : {&fixed_, &random_}) {
        planes->mean.assign(points_, 0.0);
        planes->sums.assign(static_cast<std::size_t>(max_order_ + 1) * points_,
                            0.0);
    }
}

void MomentBank::fold(ClassPlanes& planes, const double* row) {
    static const bank_kernels::FoldRowFn kernel =
        bank_kernels::resolve_fold_row();
    const double n1 = planes.n;
    planes.n += 1.0;
    kernel(planes.mean.data(), planes.sums.data(), points_, points_,
           max_order_, n1, planes.n, row);
}

void MomentBank::add_trace(bool fixed_class, const double* row) {
    fold(fixed_class ? fixed_ : random_, row);
}

void MomentBank::merge_class(ClassPlanes& into,
                             const ClassPlanes& from) const {
    using bank_kernels::binomial;
    using bank_kernels::ipow;
    if (from.n == 0.0) return;
    if (into.n == 0.0) {
        into = from;
        return;
    }
    const double na = into.n;
    const double nb = from.n;
    const double n = na + nb;
    double binom[7][7];
    double tail[7];
    for (int p = 2; p <= max_order_; ++p) {
        for (int k = 1; k <= p - 2; ++k) binom[p][k] = binomial(p, k);
        tail[p] = 1.0 / ipow(nb, p - 1) - ipow(-1.0 / na, p - 1);
    }
    // Merges are block-boundary events (points-per-block, not
    // traces-per-block, frequency), so the scalar per-point loop is fine;
    // the op sequence mirrors MomentAccumulator::merge exactly.  `merged`
    // buffers row p so the reads of lower rows see pre-merge values.
    for (std::size_t i = 0; i < points_; ++i) {
        const double delta = from.mean[i] - into.mean[i];
        double merged[7];
        for (int p = 2; p <= max_order_; ++p) {
            const std::size_t prow = static_cast<std::size_t>(p) * points_;
            double value = into.sums[prow + i] + from.sums[prow + i];
            for (int k = 1; k <= p - 2; ++k) {
                const std::size_t krow =
                    static_cast<std::size_t>(p - k) * points_;
                value += binom[p][k] *
                         (into.sums[krow + i] * ipow(-nb * delta / n, k) +
                          from.sums[krow + i] * ipow(na * delta / n, k));
            }
            value += ipow(na * nb * delta / n, p) * tail[p];
            merged[p] = value;
        }
        for (int p = 2; p <= max_order_; ++p)
            into.sums[static_cast<std::size_t>(p) * points_ + i] = merged[p];
        into.mean[i] += delta * nb / n;
    }
    into.n = n;
}

void MomentBank::merge(const MomentBank& other) {
    if (other.points_ != points_ ||
        other.max_test_order_ != max_test_order_)
        throw std::invalid_argument("MomentBank::merge: shape mismatch");
    merge_class(fixed_, other.fixed_);
    merge_class(random_, other.random_);
}

double MomentBank::mean(bool fixed_class, std::size_t point) const {
    const ClassPlanes& planes = fixed_class ? fixed_ : random_;
    return planes.mean.at(point);
}

double MomentBank::central_sum(bool fixed_class, std::size_t point,
                               int p) const {
    if (p < 2 || p > max_order_)
        throw std::out_of_range("MomentBank::central_sum");
    const ClassPlanes& planes = fixed_class ? fixed_ : random_;
    return planes.sums.at(static_cast<std::size_t>(p) * points_ + point);
}

double MomentBank::central_moment(const ClassPlanes& planes,
                                  std::size_t point, int p) const {
    if (planes.n == 0.0) return 0.0;
    return planes.sums[static_cast<std::size_t>(p) * points_ + point] /
           planes.n;
}

// The three finalization helpers repeat the formulas of leakage/ttest.cpp
// verbatim (same guards, same operation order) so t() == the equivalent
// UnivariateTTest::t bit for bit.

double MomentBank::preprocessed_mean(const ClassPlanes& planes,
                                     std::size_t point, int order) const {
    if (order == 1) return planes.mean[point];
    if (order == 2) return central_moment(planes, point, 2);
    const double m2 = central_moment(planes, point, 2);
    if (!(m2 > 0.0)) return 0.0;
    return central_moment(planes, point, order) / std::pow(m2, order / 2.0);
}

double MomentBank::preprocessed_variance(const ClassPlanes& planes,
                                         std::size_t point, int order) const {
    if (order == 1) return central_moment(planes, point, 2);
    const double md = central_moment(planes, point, order);
    const double m2d = central_moment(planes, point, 2 * order);
    if (order == 2) return m2d - md * md;
    const double m2 = central_moment(planes, point, 2);
    if (!(m2 > 0.0)) return 0.0;
    const double var =
        (m2d - md * md) / std::pow(m2, static_cast<double>(order));
    return std::isfinite(var) ? var : 0.0;
}

double MomentBank::t(std::size_t point, int order) const {
    if (order < 1 || order > max_test_order_)
        throw std::out_of_range("MomentBank::t: order out of range");
    if (point >= points_) throw std::out_of_range("MomentBank::t: point");
    if (fixed_.n <= 1.0 || random_.n <= 1.0) return 0.0;
    return welch_t(preprocessed_mean(fixed_, point, order),
                   preprocessed_variance(fixed_, point, order), fixed_.n,
                   preprocessed_mean(random_, point, order),
                   preprocessed_variance(random_, point, order), random_.n);
}

std::vector<double> MomentBank::t_curve(int order) const {
    std::vector<double> curve(points_);
    for (std::size_t i = 0; i < points_; ++i) curve[i] = t(i, order);
    return curve;
}

double MomentBank::max_abs_t(int order, std::size_t* argmax) const {
    double best = 0.0;
    std::size_t best_index = 0;
    for (std::size_t i = 0; i < points_; ++i) {
        const double value = std::fabs(t(i, order));
        if (value > best) {
            best = value;
            best_index = i;
        }
    }
    if (argmax != nullptr) *argmax = best_index;
    return best;
}

std::vector<std::size_t> MomentBank::exceedances(int order,
                                                 double threshold) const {
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < points_; ++i)
        if (std::fabs(t(i, order)) > threshold) indices.push_back(i);
    return indices;
}

double MomentBank::snr(std::size_t point) const {
    if (point >= points_) throw std::out_of_range("MomentBank::snr");
    // SnrAccumulator::snr over the two classes, with the class variance
    // taken from the streaming central sum (sums[2] plays M2's role).
    double total_n = 0.0;
    double grand_mean = 0.0;
    std::size_t populated = 0;
    for (const ClassPlanes* planes : {&fixed_, &random_}) {
        if (planes->n == 0.0) continue;
        ++populated;
        total_n += planes->n;
        grand_mean += planes->n * planes->mean[point];
    }
    if (populated < 2 || total_n == 0.0) return 0.0;
    grand_mean /= total_n;
    double signal = 0.0;
    double noise = 0.0;
    for (const ClassPlanes* planes : {&fixed_, &random_}) {
        if (planes->n == 0.0) continue;
        const double dm = planes->mean[point] - grand_mean;
        signal += planes->n * dm * dm;
        noise += planes->sums[2 * points_ + point];
    }
    signal /= total_n;
    noise /= total_n;
    if (!(noise > 0.0)) return 0.0;
    const double snr = signal / noise;
    return std::isfinite(snr) ? snr : 0.0;
}

void MomentBank::encode(SnapshotWriter& out) const {
    out.u64(points_);
    for (std::size_t i = 0; i < points_; ++i) {
        out.u32(static_cast<std::uint32_t>(max_test_order_));
        for (const ClassPlanes* planes : {&fixed_, &random_}) {
            out.u32(static_cast<std::uint32_t>(max_order_));
            out.f64(planes->n);
            out.f64(planes->mean[i]);
            for (int p = 0; p <= max_order_; ++p)
                out.f64(
                    planes->sums[static_cast<std::size_t>(p) * points_ + i]);
        }
    }
}

MomentBank MomentBank::decode(SnapshotReader& in) {
    const std::uint64_t points = in.u64();
    if (points > (std::uint64_t{1} << 32))
        throw CampaignError(CampaignErrorKind::CorruptSnapshot,
                            "MomentBank: implausible sample count");
    if (points == 0) return MomentBank{};
    MomentBank bank;
    for (std::uint64_t i = 0; i < points; ++i) {
        const std::uint32_t order = in.u32();
        if (order < 1 || order > 3)
            throw CampaignError(CampaignErrorKind::CorruptSnapshot,
                                "MomentBank: implausible order in snapshot");
        if (i == 0) {
            bank = MomentBank(static_cast<std::size_t>(points),
                              static_cast<int>(order));
        } else if (static_cast<int>(order) != bank.max_test_order_) {
            throw CampaignError(CampaignErrorKind::CorruptSnapshot,
                                "MomentBank: nonuniform test order");
        }
        for (ClassPlanes* planes : {&bank.fixed_, &bank.random_}) {
            const std::uint32_t acc_order = in.u32();
            if (acc_order != static_cast<std::uint32_t>(bank.max_order_))
                throw CampaignError(
                    CampaignErrorKind::CorruptSnapshot,
                    "MomentBank: accumulator order != 2x test order");
            const double n = in.f64();
            if (i == 0)
                planes->n = n;
            else if (n != planes->n)
                throw CampaignError(CampaignErrorKind::CorruptSnapshot,
                                    "MomentBank: nonuniform class count");
            planes->mean[i] = in.f64();
            for (int p = 0; p <= bank.max_order_; ++p)
                planes->sums[static_cast<std::size_t>(p) * points + i] =
                    in.f64();
        }
    }
    return bank;
}

TvlaCampaign MomentBank::to_campaign() const {
    SnapshotWriter out;
    encode(out);
    const std::vector<std::uint8_t> sealed = std::move(out).finish();
    SnapshotReader in(sealed);
    return TvlaCampaign::decode(in);
}

MomentBank MomentBank::from_campaign(const TvlaCampaign& campaign) {
    SnapshotWriter out;
    campaign.encode(out);
    const std::vector<std::uint8_t> sealed = std::move(out).finish();
    SnapshotReader in(sealed);
    return decode(in);
}

}  // namespace glitchmask::leakage
