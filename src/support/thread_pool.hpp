// Work-stealing thread pool for measurement campaigns.
//
// Campaign workloads are thousands of equally expensive simulation blocks
// plus the occasional heterogeneous task (building a per-worker simulator
// replica takes much longer than running one block).  Each worker owns a
// deque: tasks submitted from a worker push to its own queue and are
// popped LIFO (cache-warm), while idle workers steal FIFO from the other
// end of a victim's queue -- the classic Chase-Lev discipline, here with a
// small per-queue mutex because campaign tasks are coarse (milliseconds,
// not nanoseconds) and contention is negligible.
//
// Determinism note: the pool itself makes no ordering promises -- all
// campaign determinism comes from eval/parallel_campaign.hpp, which gives
// every trace a counter-derived RNG stream and merges block accumulators
// in a fixed tree, so the *schedule* is free to be as racy as it likes.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "support/cancel.hpp"

namespace glitchmask {

class ThreadPool {
public:
    using Task = std::function<void()>;

    /// `workers` == 0 means default_worker_count().
    explicit ThreadPool(unsigned workers = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] unsigned size() const noexcept {
        return static_cast<unsigned>(queues_.size());
    }

    /// Enqueues a task.  From a pool worker the task goes to that worker's
    /// own deque (stolen by others when it falls behind); from outside it
    /// is dealt round-robin.
    void submit(Task task);

    /// Index of the calling pool worker in [0, size()), or -1 when the
    /// caller is not one of this pool's threads.
    [[nodiscard]] int current_worker() const noexcept;

    /// GLITCHMASK_WORKERS when set (> 0), else hardware_concurrency().
    [[nodiscard]] static unsigned default_worker_count();

private:
    struct WorkerQueue {
        std::mutex mutex;
        std::deque<Task> tasks;
    };

    void worker_loop(unsigned id);
    bool try_pop_own(unsigned id, Task& out);
    bool try_steal(unsigned id, Task& out);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> threads_;

    std::mutex sleep_mutex_;
    std::condition_variable wake_;
    std::size_t queued_ = 0;  // guarded by sleep_mutex_
    bool stop_ = false;       // guarded by sleep_mutex_
    std::size_t next_queue_ = 0;  // round-robin cursor for external submits
};

/// Tracks a batch of tasks submitted to a pool and waits for all of them.
/// The first exception thrown by a task is captured and rethrown from
/// wait(); the remaining tasks still run to completion.  Must be waited on
/// from outside the pool (a worker waiting on its own pool would deadlock).
///
/// An optional CancelToken makes the group cooperative: tasks that have
/// not started when the token fires are skipped (they still count towards
/// wait()), while tasks already running finish normally -- the "finish
/// in-flight work, drop queued work" discipline the campaign runtime's
/// graceful shutdown is built on.  skipped() reports how many were
/// dropped.
class TaskGroup {
public:
    explicit TaskGroup(ThreadPool& pool, const CancelToken* cancel = nullptr)
        : pool_(pool), cancel_(cancel) {}
    ~TaskGroup() { wait_no_throw(); }

    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    void run(ThreadPool::Task task);

    /// Blocks until every run() task finished; rethrows the first failure.
    void wait();

    /// Tasks skipped because the cancel token fired before they started.
    /// Only meaningful after wait() returned.
    [[nodiscard]] std::size_t skipped() const noexcept { return skipped_; }

private:
    void wait_no_throw() noexcept;

    ThreadPool& pool_;
    const CancelToken* cancel_ = nullptr;
    std::mutex mutex_;
    std::condition_variable done_;
    std::size_t pending_ = 0;     // guarded by mutex_
    std::size_t skipped_ = 0;     // guarded by mutex_
    std::exception_ptr error_;    // guarded by mutex_
};

}  // namespace glitchmask
