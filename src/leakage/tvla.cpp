#include "leakage/tvla.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace glitchmask::leakage {

TvlaCampaign::TvlaCampaign(std::size_t samples, int max_test_order)
    : points_(samples, UnivariateTTest(max_test_order)) {}

void TvlaCampaign::add_trace(bool fixed_class, std::span<const double> trace) {
    if (trace.size() < points_.size())
        throw std::invalid_argument("TvlaCampaign::add_trace: trace too short");
    for (std::size_t i = 0; i < points_.size(); ++i)
        points_[i].add(fixed_class, trace[i]);
}

void TvlaCampaign::add_lane_traces(std::span<const double> bin_major,
                                   std::size_t stride, std::uint64_t fixed_mask,
                                   unsigned count) {
    if (count > 64)
        throw std::invalid_argument("TvlaCampaign::add_lane_traces: count > 64");
    if (bin_major.size() < points_.size() * stride)
        throw std::invalid_argument(
            "TvlaCampaign::add_lane_traces: matrix too short");
    // Gathering per class keeps each accumulator's sample order identical
    // to `count` interleaved add_trace() calls: a per-point accumulator
    // only ever sees its own class's lanes, in lane order either way.
    double fixed_vals[64];
    double random_vals[64];
    for (std::size_t p = 0; p < points_.size(); ++p) {
        const double* row = bin_major.data() + p * stride;
        unsigned n_fixed = 0;
        unsigned n_random = 0;
        for (unsigned lane = 0; lane < count; ++lane) {
            if (((fixed_mask >> lane) & 1u) != 0)
                fixed_vals[n_fixed++] = row[lane];
            else
                random_vals[n_random++] = row[lane];
        }
        points_[p].add_batch(true, {fixed_vals, n_fixed});
        points_[p].add_batch(false, {random_vals, n_random});
    }
}

std::size_t TvlaCampaign::traces(bool fixed_class) const {
    if (points_.empty()) return 0;
    return static_cast<std::size_t>(points_.front().count(fixed_class));
}

std::vector<double> TvlaCampaign::t_curve(int order) const {
    std::vector<double> curve(points_.size());
    for (std::size_t i = 0; i < points_.size(); ++i) curve[i] = points_[i].t(order);
    return curve;
}

double TvlaCampaign::max_abs_t(int order, std::size_t* argmax) const {
    double best = 0.0;
    std::size_t best_index = 0;
    for (std::size_t i = 0; i < points_.size(); ++i) {
        const double value = std::fabs(points_[i].t(order));
        if (value > best) {
            best = value;
            best_index = i;
        }
    }
    if (argmax != nullptr) *argmax = best_index;
    return best;
}

std::vector<std::size_t> TvlaCampaign::exceedances(int order,
                                                   double threshold) const {
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < points_.size(); ++i)
        if (std::fabs(points_[i].t(order)) > threshold) indices.push_back(i);
    return indices;
}

void TvlaCampaign::encode(SnapshotWriter& out) const {
    out.u64(points_.size());
    for (const UnivariateTTest& point : points_) point.encode(out);
}

TvlaCampaign TvlaCampaign::decode(SnapshotReader& in) {
    const std::uint64_t samples = in.u64();
    if (samples > (std::uint64_t{1} << 32))
        throw CampaignError(CampaignErrorKind::CorruptSnapshot,
                            "TvlaCampaign: implausible sample count");
    TvlaCampaign campaign(0, 1);
    campaign.points_.reserve(static_cast<std::size_t>(samples));
    for (std::uint64_t i = 0; i < samples; ++i)
        campaign.points_.push_back(UnivariateTTest::decode(in));
    return campaign;
}

void TvlaCampaign::merge(const TvlaCampaign& other) {
    if (other.points_.size() != points_.size())
        throw std::invalid_argument("TvlaCampaign::merge: size mismatch");
    for (std::size_t i = 0; i < points_.size(); ++i)
        points_[i].merge(other.points_[i]);
}

std::vector<std::size_t> consistent_exceedances(
    std::span<const TvlaCampaign> campaigns, int order, double threshold) {
    std::vector<std::size_t> result;
    if (campaigns.empty()) return result;
    result = campaigns.front().exceedances(order, threshold);
    for (std::size_t c = 1; c < campaigns.size() && !result.empty(); ++c) {
        const std::vector<std::size_t> next =
            campaigns[c].exceedances(order, threshold);
        std::vector<std::size_t> intersection;
        std::set_intersection(result.begin(), result.end(), next.begin(),
                              next.end(), std::back_inserter(intersection));
        result = std::move(intersection);
    }
    return result;
}

}  // namespace glitchmask::leakage
