#include "eval/lane_backend.hpp"

#include <algorithm>
#include <stdexcept>

#include <unistd.h>

#include "eval/parallel_campaign.hpp"
#include "support/env.hpp"
#include "support/log.hpp"

namespace glitchmask::eval {

const char* backend_name(SimBackend backend) noexcept {
    return backend == SimBackend::Compiled ? "compiled" : "event";
}

namespace {

SimBackend parse_backend(const std::string& name) {
    if (name.empty() || name == "event") return SimBackend::Event;
    if (name == "compiled") return SimBackend::Compiled;
    throw std::invalid_argument(
        "campaign config: unknown backend \"" + name +
        "\" (expected \"event\" or \"compiled\")");
}

/// Picks the widest compiled lane count whose per-worker lane state still
/// fits in roughly a quarter of the L2 cache.  The compiled engine keeps
/// four 64-bit planes per net per 64-lane chunk (value, next, mark,
/// glitch bookkeeping), so the working set scales linearly with the
/// width; once it spills the cache, wider passes lose more to memory
/// stalls than they save in schedule replays (the 512-lane rows of
/// BENCH_batch_sim.json).  A quarter -- not half -- because the power
/// rows, the program stream and the recorder compete for the same cache:
/// on the 2 MiB-L2 reference container the half-L2 budget still admitted
/// 512 lanes for the 3802-net DES netlist, which the sweep measures as
/// ~25% slower than the 128/256-lane rows it would otherwise pick.
unsigned auto_compiled_lanes(std::size_t netlist_nets) {
    if (netlist_nets == 0) return 512;  // no hint -- keep the default
    long cache = sysconf(_SC_LEVEL2_CACHE_SIZE);
    if (cache <= 0) cache = 1 << 20;  // sysconf unsupported: assume 1 MiB
    const std::size_t budget = static_cast<std::size_t>(cache) / 4;
    const std::size_t chunk_bytes = netlist_nets * 4 * sizeof(std::uint64_t);
    unsigned lanes = 64;
    for (const unsigned candidate : {128u, 256u, 512u})
        if ((candidate / 64u) * chunk_bytes <= budget) lanes = candidate;
    log::info("compiled lanes auto: " + std::to_string(lanes) + " (" +
              std::to_string(netlist_nets) + " nets, " +
              std::to_string(chunk_bytes / 1024) + " KiB per chunk, L2 " +
              std::to_string(cache / 1024) + " KiB)");
    return lanes;
}

}  // namespace

BackendPlan resolve_backend_plan(const CampaignRunOptions& run,
                                 unsigned configured_lanes,
                                 bool timing_coupling,
                                 std::size_t netlist_nets) {
    std::string name = run.backend;
    if (name.empty()) name = env_string("GLITCHMASK_BACKEND", "");
    const SimBackend backend = parse_backend(name);

    BackendPlan plan;
    if (backend == SimBackend::Event || configured_lanes == 1 ||
        timing_coupling) {
        // The event plan owns the legacy policy (GLITCHMASK_LANES,
        // timing-coupling fallback to scalar).  lanes == 1 is the scalar
        // path regardless of the requested backend: a compiled pass
        // narrower than 64 lanes cannot exist.
        if (backend == SimBackend::Event && configured_lanes > 64)
            throw std::invalid_argument(
                "campaign config: the event backend supports at most 64 "
                "lanes; use backend=compiled for wider passes");
        if (timing_coupling && backend == SimBackend::Compiled)
            log::info(
                "timing coupling forces the scalar simulator; ignoring "
                "backend=compiled");
        plan.backend = SimBackend::Event;
        plan.lanes = resolve_lanes(
            std::min(configured_lanes, 64u), timing_coupling);
        return plan;
    }

    plan.backend = SimBackend::Compiled;
    unsigned lanes = configured_lanes;
    if (lanes == 0) {
        const std::string configured =
            env_string("GLITCHMASK_COMPILED_LANES", "512");
        if (configured == "auto")
            lanes = auto_compiled_lanes(netlist_nets);
        else
            lanes = static_cast<unsigned>(
                env_int("GLITCHMASK_COMPILED_LANES", 512));
    }
    if (lanes != 64 && lanes != 128 && lanes != 256 && lanes != 512)
        throw std::invalid_argument(
            "campaign config: compiled backend lanes must be 64, 128, 256 "
            "or 512, got " +
            std::to_string(lanes));
    plan.lanes = lanes;
    return plan;
}

void fold_backend_fingerprint(CampaignFingerprint& fingerprint,
                              const BackendPlan& plan) {
    if (plan.backend != SimBackend::Compiled || plan.scalar()) return;
    fingerprint.payload = fnv1a64(fingerprint.payload, fnv1a64_tag("backend"));
    fingerprint.payload = fnv1a64(fingerprint.payload, fnv1a64_tag("compiled"));
}

}  // namespace glitchmask::eval
