// End-to-end leakage-assessment smoke tests at DES scale.
//
// These are deliberately small TVLA campaigns (hundreds of traces, a few
// seconds each) that pin the *qualitative* security behaviour the paper
// reports -- the bench harness runs the full-size versions.  Seeds are
// fixed, so the verdicts are deterministic.
#include <gtest/gtest.h>

#include "des/masked_des.hpp"
#include "eval/des_experiments.hpp"
#include "leakage/ttest.hpp"

namespace glitchmask::eval {
namespace {

TEST(DesSecurity, PrngOffLeaksMassivelyFirstOrder) {
    const des::MaskedDesCore core(des::MaskedDesOptions{});
    DesTvlaConfig config;
    config.traces = 150;
    config.prng_on = false;
    config.seed = 1;
    const DesTvlaResult r = run_des_tvla(core, config);
    EXPECT_GT(r.max_abs_t[1], 10.0)
        << "unmasked operation must fail TVLA almost immediately";
}

TEST(DesSecurity, ProtectedFfCoreFirstOrderClean) {
    const des::MaskedDesCore core(des::MaskedDesOptions{});
    DesTvlaConfig config;
    config.traces = 400;
    config.seed = 2;
    const DesTvlaResult r = run_des_tvla(core, config);
    EXPECT_LT(r.max_abs_t[1], leakage::kTvlaThreshold);
}

TEST(DesSecurity, ProtectedFfCoreLeaksSecondOrder) {
    // 2-share design: second-order leakage must be clearly visible (the
    // paper sees t2 up to 60 at 50M traces; at our noise level a couple of
    // thousand traces suffice).
    const des::MaskedDesCore core(des::MaskedDesOptions{});
    DesTvlaConfig config;
    config.traces = 3000;
    config.seed = 1;
    const DesTvlaResult r = run_des_tvla(core, config);
    EXPECT_LT(r.max_abs_t[1], leakage::kTvlaThreshold);
    EXPECT_GT(r.max_abs_t[2], leakage::kTvlaThreshold);
}

TEST(DesSecurity, NonRecycledRandomnessAlsoClean) {
    const des::MaskedDesCore core(des::MaskedDesOptions{
        .recycle_randomness = false});
    EXPECT_EQ(core.random_bits_per_round(), 112u);
    DesTvlaConfig config;
    config.traces = 400;
    config.seed = 4;
    const DesTvlaResult r = run_des_tvla(core, config);
    EXPECT_LT(r.max_abs_t[1], leakage::kTvlaThreshold);
}

TEST(DesSecurity, PdCoreTinyDelayUnitLeaksFirstOrder) {
    // 1-LUT DelayUnits cannot dominate the routing jitter (paper Fig. 15a).
    const des::MaskedDesCore core(des::MaskedDesOptions{
        .flavor = des::CoreFlavor::PD, .delayunit_luts = 1});
    DesTvlaConfig config;
    config.traces = 1500;
    config.seed = 31;
    const DesTvlaResult r = run_des_tvla(core, config);
    EXPECT_GT(r.max_abs_t[1], leakage::kTvlaThreshold);
}

TEST(DesSecurity, PdCoreOptimalDelayUnitFirstOrderClean) {
    const des::MaskedDesCore core(des::MaskedDesOptions{
        .flavor = des::CoreFlavor::PD, .delayunit_luts = 10});
    DesTvlaConfig config;
    config.traces = 500;
    config.seed = 32;
    const DesTvlaResult r = run_des_tvla(core, config);
    EXPECT_LT(r.max_abs_t[1], leakage::kTvlaThreshold);
}

TEST(DesSecurity, DomBaselineCoreFirstOrderClean) {
    // The DOM baseline is glitch-robust by construction: its register
    // stages stop glitch propagation and every AND has a fresh mask.
    const des::MaskedDesCore core(des::MaskedDesOptions{
        .flavor = des::CoreFlavor::DOM});
    DesTvlaConfig config;
    config.traces = 400;
    config.seed = 5;
    const DesTvlaResult r = run_des_tvla(core, config);
    EXPECT_LT(r.max_abs_t[1], leakage::kTvlaThreshold);
}

}  // namespace
}  // namespace glitchmask::eval
