// Runtime SIMD dispatch for the hot numeric kernels.
//
// Every vector kernel in the tree (power deposit, moment-bank update,
// lane-word engine ops) exists in a portable scalar form plus optional
// AVX2/AVX-512 forms compiled in separate translation units with the
// matching -m flags (and -ffp-contract=off: the kernels must never let
// the compiler fuse a mul+add into an FMA, which would change results).
// The vector forms keep every accumulator's FP operation order identical
// to the scalar form -- vectorization is across *independent* lanes/bins
// only -- so dispatch level never changes a single output bit.  That
// invariant is what lets GLITCHMASK_SIMD exist as a debugging aid rather
// than a results knob.
//
// GLITCHMASK_SIMD: "off"/"scalar" forces the portable path, "avx2" caps
// at AVX2, "avx512" / "auto" (default) use the best level the CPU
// reports.  Requesting a level the CPU lacks silently clamps down.
#pragma once

namespace glitchmask::support {

enum class SimdLevel {
    kScalar = 0,
    kAvx2 = 1,
    kAvx512 = 2,
};

/// Resolved once per process from GLITCHMASK_SIMD + CPUID; cached.
[[nodiscard]] SimdLevel active_simd_level() noexcept;

[[nodiscard]] const char* simd_level_name(SimdLevel level) noexcept;

}  // namespace glitchmask::support
