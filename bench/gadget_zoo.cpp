// Ablation bench: the masked-AND design space, measured under one
// identical campaign.
//
// This is the comparison the paper's Sec. II argues in prose: every
// masked-AND gadget in the library -- the naive secAND2 mapping, the
// paper's two solutions, the Trichina gate, and the DOM baselines -- runs
// the same registered-inputs / fixed-vs-random TVLA, and the table lists
// the cost axes the paper trades off: area, fresh randomness, latency,
// and first/second-order leakage.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/gadgets.hpp"
#include "core/sharing.hpp"
#include "leakage/tvla.hpp"
#include "netlist/area.hpp"
#include "power/power_model.hpp"
#include "sim/clocked.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

using namespace glitchmask;
using core::SharedNet;

namespace {

enum class Kind { Naive, Ff, Pd, Trichina, DomIndep, DomDep };

struct Spec {
    Kind kind;
    const char* name;
    const char* description;
    unsigned fresh_bits;
    unsigned latency_cycles;  // input-register edge to valid output
};

constexpr Spec kZoo[] = {
    {Kind::Naive, "secAND2 (naive)", "Eq. 2 mapped directly, no ordering", 0, 1},
    {Kind::Ff, "secAND2-FF", "internal y1 flop (Fig. 2)", 0, 2},
    {Kind::Pd, "secAND2-PD", "DelayUnit arrival order (Fig. 3)", 0, 1},
    {Kind::Trichina, "Trichina AND", "Eq. 1, order-sensitive XOR chain", 1, 1},
    {Kind::DomIndep, "DOM-indep", "registered domain crossings", 1, 2},
    {Kind::DomDep, "DOM-dep", "refresh + register + DOM", 3, 3},
};

struct Harness {
    core::Netlist nl;
    SharedNet x_in{}, y_in{};
    std::vector<netlist::NetId> rand_in;
    double gadget_ge = 0.0;
};

Harness build(const Spec& spec, unsigned replicas) {
    Harness h;
    h.x_in = core::shared_input(h.nl, "x");
    h.y_in = core::shared_input(h.nl, "y");
    for (unsigned i = 0; i < spec.fresh_bits; ++i)
        h.rand_in.push_back(h.nl.input("r" + std::to_string(i)));
    const SharedNet x = core::reg_shares(h.nl, h.x_in, 1);
    const SharedNet y = core::reg_shares(h.nl, h.y_in, 1);
    std::vector<netlist::NetId> rand_regs;
    for (const netlist::NetId r : h.rand_in)
        rand_regs.push_back(h.nl.dff(r, 1));

    const double ge_before =
        netlist::total_ge(h.nl, netlist::AreaModel::nangate45());
    for (unsigned k = 0; k < replicas; ++k) {
        const std::string name = "g" + std::to_string(k);
        switch (spec.kind) {
            case Kind::Naive:
                (void)core::secand2(h.nl, x, y, name);
                break;
            case Kind::Ff:
                (void)core::secand2_ff(h.nl, x, y, 2, 3, name);
                break;
            case Kind::Pd:
                (void)core::secand2_pd(h.nl, x, y, {10, true}, name);
                break;
            case Kind::Trichina:
                (void)core::trichina_and(h.nl, x, y, rand_regs[0], name);
                break;
            case Kind::DomIndep:
                (void)core::dom_and_indep(h.nl, x, y, rand_regs[0], 2, name);
                break;
            case Kind::DomDep:
                (void)core::dom_and_dep(h.nl, x, y, rand_regs[0], rand_regs[1],
                                        rand_regs[2], 2, name);
                break;
        }
    }
    h.gadget_ge =
        (netlist::total_ge(h.nl, netlist::AreaModel::nangate45()) - ge_before) /
        replicas;
    h.nl.freeze();
    return h;
}

struct ZooResult {
    double t1 = 0.0;
    double t2 = 0.0;
    double ge = 0.0;
};

ZooResult run(const Spec& spec, std::size_t traces) {
    Harness h = build(spec, 16);
    const sim::DelayModel dm(h.nl, sim::DelayConfig::spartan6());
    sim::ClockConfig clock;
    clock.period_ps = 90000;
    sim::ClockedSim sim(h.nl, dm, clock);
    power::PowerRecorder recorder(h.nl,
                                  power::PowerConfig{.bin_ps = clock.period_ps});
    sim.engine().set_sink(&recorder);

    constexpr std::size_t kCycles = 5;
    leakage::TvlaCampaign campaign(kCycles, 2);
    Xoshiro256 rng(55);
    Xoshiro256 noise(56);
    for (std::size_t t = 0; t < traces; ++t) {
        const bool fixed = rng.bit();
        const core::MaskedBit mx = core::mask_bit(fixed ? true : rng.bit(), rng);
        const core::MaskedBit my = core::mask_bit(fixed ? true : rng.bit(), rng);
        sim.restart();
        recorder.begin_trace(kCycles);
        sim.set_input(h.x_in.s0, mx.s0);
        sim.set_input(h.x_in.s1, mx.s1);
        sim.set_input(h.y_in.s0, my.s0);
        sim.set_input(h.y_in.s1, my.s1);
        for (const netlist::NetId r : h.rand_in) sim.set_input(r, rng.bit());
        sim.step();
        sim.set_enable(1, true);
        sim.step();
        sim.set_enable(1, false);
        const bool has_stage2 = h.nl.max_ctrl_group() >= 2;
        if (has_stage2) sim.set_enable(2, true);
        sim.step();
        if (has_stage2) sim.set_enable(2, false);
        sim.step();
        campaign.add_trace(fixed, recorder.noisy_trace(noise, 0.5));
    }
    return ZooResult{campaign.max_abs_t(1), campaign.max_abs_t(2), h.gadget_ge};
}

}  // namespace

int main() {
    bench::banner("Gadget zoo: the masked-AND design space under one campaign");
    const std::size_t traces = bench::scaled_traces(12000);
    std::printf("16 parallel instances per gadget, %zu traces each\n\n", traces);

    TablePrinter table({"gadget", "GE", "fresh bits", "latency", "max|t1|",
                        "max|t2|", "1st order"});
    CsvWriter csv("gadget_zoo.csv",
                  {"gadget", "ge", "fresh_bits", "latency", "t1", "t2"});
    bool paper_gadgets_clean = true;
    bool naive_leaks = false;
    for (const Spec& spec : kZoo) {
        const ZooResult r = run(spec, traces);
        table.add_row({spec.name, TablePrinter::num(r.ge, 1),
                       std::to_string(spec.fresh_bits),
                       std::to_string(spec.latency_cycles) + " cyc",
                       TablePrinter::num(r.t1), TablePrinter::num(r.t2),
                       bench::verdict(r.t1)});
        csv.raw_row({spec.name, TablePrinter::num(r.ge, 2),
                     std::to_string(spec.fresh_bits),
                     std::to_string(spec.latency_cycles),
                     TablePrinter::num(r.t1, 4), TablePrinter::num(r.t2, 4)});
        if (spec.kind == Kind::Naive) naive_leaks = r.t1 > 4.5;
        if (spec.kind == Kind::Ff || spec.kind == Kind::Pd)
            paper_gadgets_clean = paper_gadgets_clean && r.t1 < 4.5;
    }
    table.print();
    std::printf(
        "\nThe paper's trade-off in one table: secAND2-FF/PD reach the same\n"
        "first-order verdict as DOM with zero fresh randomness; the naive\n"
        "mapping of the same equations leaks; secAND2-PD pays in area\n"
        "(DelayUnits), DOM pays in randomness.  GE excludes the shared\n"
        "input registers; secAND2-PD includes its DelayUnit chains.\n");
    std::printf("CSV: gadget_zoo.csv\n");
    return (naive_leaks && paper_gadgets_clean) ? 0 : 1;
}
