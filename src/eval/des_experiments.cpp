#include "eval/des_experiments.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/sharing.hpp"
#include "eval/lane_backend.hpp"
#include "eval/parallel_campaign.hpp"
#include "eval/run_report.hpp"
#include "leakage/moment_bank.hpp"
#include "power/batch_power.hpp"
#include "sim/batch_simulator.hpp"
#include "sim/compiled_simulator.hpp"
#include "support/rng.hpp"
#include "support/telemetry.hpp"
#include "support/thread_pool.hpp"

namespace glitchmask::eval {

namespace {

power::PowerConfig des_power_config(sim::TimePs period) {
    power::PowerConfig config;
    config.bin_ps = period;
    return config;
}

/// Per-worker DES simulator replica over the shared netlist/delay-model.
struct DesWorker {
    sim::ClockedSim sim;
    power::PowerRecorder recorder;
    std::optional<leakage::AttributionProbe> probe;
    std::vector<double> noisy;  // reused per-trace noise buffer
    telemetry::SimStats last_stats;  // delta base for telemetry

    DesWorker(const des::MaskedDesCore& core, const sim::DelayModel& dm,
              sim::ClockConfig clock, sim::CouplingConfig coupling,
              power::PowerConfig power_config,
              const leakage::AttributionPlan* attr = nullptr)
        : sim(core.nl(), dm, clock, coupling),
          recorder(core.nl(), power_config) {
        recorder.attach(&sim.engine());
        if (attr != nullptr) {
            probe.emplace(*attr, &recorder);
            sim.engine().set_sink(&*probe);
        } else {
            sim.engine().set_sink(&recorder);
        }
    }
};

/// Lane-parallel replica behind the chunked-sim seam (eval/lane_backend.hpp):
/// one pass per group_lanes() consecutive traces on either backend.
template <class SimT>
struct DesLaneWorker : LaneWorker<SimT> {
    using LaneWorker<SimT>::LaneWorker;
    std::vector<core::MaskedWord> pts, keys;
    std::vector<Xoshiro256> prngs;  // per-lane refresh generators
};

/// Trace n's full stimulus, a pure function of (config, n): class choice,
/// masked operands, and the generator whose continued state supplies the
/// per-round refresh bits -- the exact draw order of the original scalar
/// loop, shared by both paths.
struct DesStimulus {
    bool fixed = false;
    core::MaskedWord pt, key;
    Xoshiro256 rng;
};

DesStimulus des_stimulus(const DesTvlaConfig& config, std::size_t trace_index) {
    DesStimulus stim;
    stim.rng = trace_rng(config.seed, kStimulusStream, trace_index);
    stim.fixed = stim.rng.bit();
    const std::uint64_t pt = stim.fixed ? config.fixed_plaintext : stim.rng();
    if (config.prng_on) {
        stim.pt = core::mask_word(pt, 64, stim.rng);
        stim.key = core::mask_word(config.key, 64, stim.rng);
    } else {
        stim.pt = core::MaskedWord{0, pt};
        stim.key = core::MaskedWord{0, config.key};
    }
    return stim;
}

/// Per-block accumulator of the DES TVLA campaign (and its snapshot
/// payload: the statistics bank plus the toggle counter).  The bank's
/// serialized form is byte-identical to the TvlaCampaign it replaced,
/// so pre-existing checkpoints stay resumable.
struct DesBlockAcc {
    leakage::MomentBank bank;
    std::uint64_t toggles = 0;
    leakage::AttributionAccumulator attr;  // zero points when off
};

void encode_des_acc(const DesBlockAcc& acc, SnapshotWriter& out,
                    bool attribute) {
    acc.bank.encode(out);
    out.u64(acc.toggles);
    if (attribute) acc.attr.encode(out);
}

DesBlockAcc decode_des_acc(SnapshotReader& in, bool attribute) {
    DesBlockAcc acc{leakage::MomentBank::decode(in), 0, {}};
    acc.toggles = in.u64();
    if (attribute) acc.attr = leakage::AttributionAccumulator::decode(in);
    return acc;
}

}  // namespace

/// Everything that defines the campaign's statistics except workers and
/// lanes (both proven bit-identical) goes into the fingerprint.
CampaignFingerprint des_tvla_fingerprint(const DesTvlaConfig& config,
                                         std::size_t samples) {
    std::uint64_t payload = kFnvOffset;
    payload = fnv1a64(payload, config.placement_seed);
    payload = fnv1a64(payload, std::bit_cast<std::uint64_t>(config.noise_sigma));
    payload = fnv1a64(payload, config.prng_on ? 1 : 0);
    payload = fnv1a64(payload, config.fixed_plaintext);
    payload = fnv1a64(payload, config.key);
    payload = fnv1a64(payload, static_cast<std::uint64_t>(config.max_test_order));
    payload = fnv1a64(payload, static_cast<std::uint64_t>(samples));
    payload = fnv1a64(payload, config.coupling.timing_enabled ? 1 : 0);
    payload = fnv1a64(payload, config.coupling.window_ps);
    payload = fnv1a64(payload, config.coupling.slowdown_ps);
    payload = fnv1a64(payload, config.coupling.speedup_ps);
    payload =
        fnv1a64(payload, std::bit_cast<std::uint64_t>(config.coupling_epsilon));
    return CampaignFingerprint{fnv1a64_tag("des_tvla"), config.seed,
                               config.traces, config.block_size, payload};
}

CampaignFingerprint mean_power_fingerprint(std::size_t traces,
                                           std::uint64_t seed,
                                           std::uint64_t placement_seed,
                                           std::size_t samples) {
    std::uint64_t payload = kFnvOffset;
    payload = fnv1a64(payload, placement_seed);
    payload = fnv1a64(payload, static_cast<std::uint64_t>(samples));
    return CampaignFingerprint{fnv1a64_tag("mean_power"), seed, traces,
                               /*block_size=*/64, payload};
}

DesTvlaResult run_des_tvla(const des::MaskedDesCore& core,
                           const DesTvlaConfig& config) {
    validate_campaign_config(config.traces, config.block_size, config.lanes);

    sim::DelayConfig delay_config = sim::DelayConfig::spartan6();
    delay_config.seed = config.placement_seed;
    const sim::DelayModel dm(core.nl(), delay_config);

    sim::ClockConfig clock;
    clock.period_ps = core.recommended_period();
    power::PowerConfig power_config = des_power_config(clock.period_ps);
    power_config.coupling_epsilon = config.coupling_epsilon;

    const std::size_t samples = core.total_cycles();

    using BlockAcc = DesBlockAcc;

    // Timing coupling makes delays data-dependent, which the shared batch
    // schedule cannot express -- fall back to the scalar engine then.
    const BackendPlan bplan = resolve_backend_plan(
        config.run, config.lanes, config.coupling.timing_enabled,
        core.nl().size());

    const bool attribute = attribution_enabled(config.run);
    const leakage::AttributionPlan attr_plan =
        attribute ? leakage::AttributionPlan(core.nl(), samples,
                                             clock.period_ps,
                                             config.run.attribution_scope)
                  : leakage::AttributionPlan();
    const leakage::AttributionPlan* probe_plan = attribute ? &attr_plan : nullptr;

    CampaignFingerprint fingerprint = des_tvla_fingerprint(config, samples);
    if (attribute) fold_attribution_fingerprint(fingerprint, config.run);
    fold_backend_fingerprint(fingerprint, bplan);
    ThreadPool pool(resolve_workers(config.workers));
    RunTelemetrySession session("des_tvla", config.run, fingerprint,
                                config.traces, pool.size(), bplan.lanes);
    CheckpointPolicy policy = make_checkpoint_policy(config.run, "des_tvla");
    session.attach(policy);
    const auto encode = [attribute](const BlockAcc& acc, SnapshotWriter& out) {
        encode_des_acc(acc, out, attribute);
    };
    const auto decode = [attribute](SnapshotReader& in) {
        return decode_des_acc(in, attribute);
    };
    CampaignProgress progress;

    const ShardPlan plan{config.traces, config.block_size};
    const auto make_acc = [&] {
        return BlockAcc{leakage::MomentBank(samples, config.max_test_order),
                        0,
                        leakage::AttributionAccumulator(attr_plan.points())};
    };
    const auto merge_acc = [](BlockAcc& into, const BlockAcc& from) {
        into.bank.merge(from.bank);
        into.toggles += from.toggles;
        into.attr.merge(from.attr);
    };
    // Lane groups are cut *within* each block (partial groups use fewer
    // lanes), so any block size stays bit-identical to the scalar path;
    // wide compiled passes only fill up when block_size >= lanes.
    const auto run_lanes = [&](auto make_worker) {
        return run_sharded_blocks_checkpointed(
            pool, plan,
            [&] {
                auto worker = make_worker();
                worker->attach_sinks(core.nl(), power_config, probe_plan);
                return worker;
            },
            make_acc,
            [&](auto& worker, std::size_t begin, std::size_t end,
                BlockAcc& acc) {
                telemetry::PhaseClock phases;
                phases.mark();
                const unsigned group_lanes = worker->group_lanes();
                for (std::size_t group = begin; group < end;
                     group += group_lanes) {
                    const unsigned count = static_cast<unsigned>(
                        std::min<std::size_t>(group_lanes, end - group));
                    std::array<std::uint64_t, sim::kMaxLaneChunks> fixed{};
                    worker->pts.clear();
                    worker->keys.clear();
                    worker->prngs.clear();
                    for (unsigned lane = 0; lane < count; ++lane) {
                        DesStimulus stim = des_stimulus(config, group + lane);
                        if (stim.fixed)
                            fixed[lane / 64u] |= std::uint64_t{1}
                                                 << (lane % 64u);
                        worker->pts.push_back(stim.pt);
                        worker->keys.push_back(stim.key);
                        worker->prngs.push_back(stim.rng);
                    }

                    worker->sim.restart();
                    worker->begin_group(samples, fixed.data(), count,
                                        &acc.attr);
                    (void)core.encrypt_batch_chunks(
                        worker->sim, worker->pts, worker->keys,
                        config.prng_on ? std::span<Xoshiro256>(worker->prngs)
                                       : std::span<Xoshiro256>{});
                    phases.lap(telemetry::Counter::kPhaseSimNanos);

                    // Fused fold, chunk by chunk (chunk c covers traces
                    // group+64c .. group+64c+63): each lane's noisy row
                    // streams straight into the moment bank, no batch
                    // noisy-trace matrix.  Noise draws come in bin order
                    // from that trace's counter-based stream and lanes
                    // fold in lane order, so every per-point accumulator
                    // sees the event path's exact addend sequence.
                    auto& noisy = worker->noisy;
                    const unsigned chunks_used = (count + 63u) / 64u;
                    for (unsigned c = 0; c < chunks_used; ++c) {
                        const unsigned cnt =
                            std::min(64u, count - c * 64u);
                        for (unsigned lane = 0; lane < cnt; ++lane) {
                            Xoshiro256 noise_rng =
                                trace_rng(config.seed, kNoiseStream,
                                          group + c * 64u + lane);
                            worker->noisy_row(c * 64u + lane, noise_rng,
                                              config.noise_sigma, noisy);
                            acc.toggles +=
                                worker->lane_toggles(c * 64u + lane);
                            phases.lap(telemetry::Counter::kPhaseNoiseNanos);
                            acc.bank.add_trace(
                                ((fixed[c] >> lane) & 1u) != 0, noisy.data());
                            phases.lap(
                                telemetry::Counter::kPhaseMomentsNanos);
                        }
                        if (!worker->probes.empty())
                            worker->probes[c].fold_group();
                        phases.lap(
                            telemetry::Counter::kPhaseAttributionNanos);
                    }
                }
                worker->finish_block();
                phases.lap(telemetry::Counter::kPhaseAttributionNanos);
                phases.flush();
                if (telemetry::enabled())
                    telemetry::record_sim_block(worker->sim.stats(),
                                                worker->last_stats);
            },
            merge_acc, policy, fingerprint, encode, decode, &progress,
            session.meter());
    };

    BlockAcc merged = [&] {
        if (!bplan.scalar()) {
            if (bplan.backend == SimBackend::Compiled)
                return run_lanes([&] {
                    return std::make_unique<
                        DesLaneWorker<sim::CompiledClockedSim>>(
                        core.nl(), dm, bplan.lanes, clock, config.coupling,
                        sim::SimOptions{});
                });
            return run_lanes([&] {
                return std::make_unique<DesLaneWorker<EventLaneSim>>(
                    core.nl(), dm, clock, config.coupling);
            });
        }

        return run_sharded_blocks_checkpointed(
            pool, plan,
            [&] {
                return std::make_unique<DesWorker>(core, dm, clock,
                                                   config.coupling,
                                                   power_config, probe_plan);
            },
            make_acc,
            [&](std::unique_ptr<DesWorker>& worker, std::size_t begin,
                std::size_t end, BlockAcc& acc) {
                telemetry::PhaseClock phases;
                phases.mark();
                for (std::size_t trace_index = begin; trace_index < end;
                     ++trace_index) {
                    DesStimulus stim = des_stimulus(config, trace_index);
                    Xoshiro256 noise_rng =
                        trace_rng(config.seed, kNoiseStream, trace_index);

                    worker->sim.restart();
                    worker->recorder.begin_trace(samples);
                    if (worker->probe) worker->probe->begin_trace();
                    (void)core.encrypt(worker->sim, stim.pt, stim.key,
                                       config.prng_on ? &stim.rng : nullptr);
                    phases.lap(telemetry::Counter::kPhaseSimNanos);
                    worker->recorder.noisy_trace_into(
                        noise_rng, config.noise_sigma, worker->noisy);
                    acc.toggles += worker->recorder.trace_toggles();
                    phases.lap(telemetry::Counter::kPhaseNoiseNanos);
                    acc.bank.add_trace(stim.fixed, worker->noisy.data());
                    phases.lap(telemetry::Counter::kPhaseMomentsNanos);
                    if (worker->probe)
                        worker->probe->fold_trace(stim.fixed, acc.attr);
                    phases.lap(telemetry::Counter::kPhaseAttributionNanos);
                }
                phases.flush();
                if (telemetry::enabled())
                    telemetry::record_sim_block(worker->sim.engine().stats(),
                                                worker->last_stats);
            },
            merge_acc,
            policy, fingerprint, encode, decode, &progress, session.meter());
    }();

    DesTvlaResult result(samples, config.max_test_order);
    result.samples = samples;
    result.traces = config.traces;
    result.completed_traces = progress.completed_traces;
    result.cancelled = progress.cancelled;
    result.resumed = progress.resumed;
    result.toggles = merged.toggles;
    result.campaign = merged.bank.to_campaign();
    for (int order = 1; order <= config.max_test_order; ++order) {
        result.max_abs_t[order] =
            result.campaign.max_abs_t(order, &result.argmax[order]);
        session.add_metric(
            "max_abs_t_order" + std::to_string(order), result.max_abs_t[order]);
    }
    if (attribute) {
        result.attribution =
            leakage::analyze_attribution(core.nl(), attr_plan, merged.attr);
        session.set_attribution(result.attribution,
                                config.run.attribution_top_k,
                                config.run.attribution_scope);
    }
    session.add_metric("toggles", static_cast<double>(result.toggles));
    session.finish(progress);
    return result;
}

namespace {

/// mean_power_trace's block accumulator: per-bin power sums plus the
/// optional attribution state.
struct MeanPowerAcc {
    std::vector<double> sum;
    leakage::AttributionAccumulator attr;  // zero points when off
};

}  // namespace

std::vector<double> mean_power_trace(const des::MaskedDesCore& core,
                                     std::size_t traces, std::uint64_t seed,
                                     std::uint64_t placement_seed,
                                     unsigned workers, unsigned lanes,
                                     const CampaignRunOptions& run,
                                     CampaignProgress* progress,
                                     leakage::AttributionResult* attribution) {
    validate_campaign_config(traces, /*block_size=*/64, lanes);

    sim::DelayConfig delay_config = sim::DelayConfig::spartan6();
    delay_config.seed = placement_seed;
    const sim::DelayModel dm(core.nl(), delay_config);
    sim::ClockConfig clock;
    clock.period_ps = core.recommended_period();
    const power::PowerConfig power_config = des_power_config(clock.period_ps);

    const std::size_t samples = core.total_cycles();
    ThreadPool pool(resolve_workers(workers));
    const ShardPlan plan{traces, /*block_size=*/64};
    const BackendPlan bplan =
        resolve_backend_plan(run, lanes, /*timing_coupling=*/false,
                             core.nl().size());

    const bool attribute = attribution_enabled(run);
    const leakage::AttributionPlan attr_plan =
        attribute ? leakage::AttributionPlan(core.nl(), samples,
                                             clock.period_ps,
                                             run.attribution_scope)
                  : leakage::AttributionPlan();
    const leakage::AttributionPlan* probe_plan = attribute ? &attr_plan : nullptr;

    CampaignFingerprint fingerprint =
        mean_power_fingerprint(traces, seed, placement_seed, samples);
    if (attribute) fold_attribution_fingerprint(fingerprint, run);
    fold_backend_fingerprint(fingerprint, bplan);
    RunTelemetrySession session("mean_power", run, fingerprint, traces,
                                pool.size(), bplan.lanes);
    CheckpointPolicy policy = make_checkpoint_policy(run, "mean_power");
    session.attach(policy);
    const auto encode = [attribute](const MeanPowerAcc& acc,
                                    SnapshotWriter& out) {
        out.u64(acc.sum.size());
        for (double v : acc.sum) out.f64(v);
        if (attribute) acc.attr.encode(out);
    };
    const auto decode = [samples, attribute](SnapshotReader& in) {
        const std::uint64_t size = in.u64();
        if (size != samples)
            throw CampaignError(CampaignErrorKind::CorruptSnapshot,
                                "snapshot: mean-power sample count mismatch");
        MeanPowerAcc acc;
        acc.sum.resize(samples);
        for (double& v : acc.sum) v = in.f64();
        if (attribute) acc.attr = leakage::AttributionAccumulator::decode(in);
        return acc;
    };
    const auto make_acc = [&] {
        return MeanPowerAcc{std::vector<double>(samples, 0.0),
                            leakage::AttributionAccumulator(attr_plan.points())};
    };
    const auto merge = [](MeanPowerAcc& into, const MeanPowerAcc& from) {
        for (std::size_t i = 0; i < into.sum.size(); ++i)
            into.sum[i] += from.sum[i];
        into.attr.merge(from.attr);
    };
    CampaignProgress local_progress;
    CampaignProgress& prog = progress != nullptr ? *progress : local_progress;

    const auto run_lanes = [&](auto make_worker) {
        return run_sharded_blocks_checkpointed(
            pool, plan,
            [&] {
                auto worker = make_worker();
                worker->attach_sinks(core.nl(), power_config, probe_plan);
                return worker;
            },
            make_acc,
            [&](auto& worker, std::size_t begin, std::size_t end,
                MeanPowerAcc& acc) {
                telemetry::PhaseClock phases;
                phases.mark();
                const unsigned group_lanes = worker->group_lanes();
                for (std::size_t group = begin; group < end;
                     group += group_lanes) {
                    const unsigned count = static_cast<unsigned>(
                        std::min<std::size_t>(group_lanes, end - group));
                    worker->pts.clear();
                    worker->keys.clear();
                    worker->prngs.clear();
                    for (unsigned lane = 0; lane < count; ++lane) {
                        Xoshiro256 rng =
                            trace_rng(seed, kStimulusStream, group + lane);
                        const std::uint64_t pt = rng();
                        const std::uint64_t key = rng();
                        worker->pts.push_back(core::mask_word(pt, 64, rng));
                        worker->keys.push_back(core::mask_word(key, 64, rng));
                        worker->prngs.push_back(rng);
                    }
                    worker->sim.restart();
                    // Mean power has no fixed class: every lane is
                    // "random", matching the scalar fold below.
                    worker->begin_group(samples, /*fixed=*/nullptr, count,
                                        &acc.attr);
                    (void)core.encrypt_batch_chunks(worker->sim, worker->pts,
                                                    worker->keys,
                                                    worker->prngs);
                    phases.lap(telemetry::Counter::kPhaseSimNanos);
                    // Lane order == trace order, so each bin's partial
                    // sum sees the same addend sequence as the scalar
                    // per-trace loop.
                    for (unsigned lane = 0; lane < count; ++lane)
                        for (std::size_t i = 0; i < samples; ++i)
                            acc.sum[i] += worker->sample(i, lane);
                    phases.lap(telemetry::Counter::kPhaseMomentsNanos);
                    const unsigned chunks_used = (count + 63u) / 64u;
                    for (unsigned c = 0; c < chunks_used; ++c)
                        if (!worker->probes.empty())
                            worker->probes[c].fold_group();
                    phases.lap(telemetry::Counter::kPhaseAttributionNanos);
                }
                worker->finish_block();
                phases.lap(telemetry::Counter::kPhaseAttributionNanos);
                phases.flush();
                if (telemetry::enabled())
                    telemetry::record_sim_block(worker->sim.stats(),
                                                worker->last_stats);
            },
            merge, policy, fingerprint, encode, decode, &prog,
            session.meter());
    };

    MeanPowerAcc merged = [&] {
        if (!bplan.scalar()) {
            if (bplan.backend == SimBackend::Compiled)
                return run_lanes([&] {
                    return std::make_unique<
                        DesLaneWorker<sim::CompiledClockedSim>>(
                        core.nl(), dm, bplan.lanes, clock,
                        sim::CouplingConfig{}, sim::SimOptions{});
                });
            return run_lanes([&] {
                return std::make_unique<DesLaneWorker<EventLaneSim>>(
                    core.nl(), dm, clock, sim::CouplingConfig{});
            });
        }

        return run_sharded_blocks_checkpointed(
            pool, plan,
            [&] {
                return std::make_unique<DesWorker>(core, dm, clock,
                                                   sim::CouplingConfig{},
                                                   power_config, probe_plan);
            },
            make_acc,
            [&](std::unique_ptr<DesWorker>& worker, std::size_t begin,
                std::size_t end, MeanPowerAcc& acc) {
                telemetry::PhaseClock phases;
                phases.mark();
                for (std::size_t trace_index = begin; trace_index < end;
                     ++trace_index) {
                    Xoshiro256 rng =
                        trace_rng(seed, kStimulusStream, trace_index);
                    worker->sim.restart();
                    worker->recorder.begin_trace(samples);
                    if (worker->probe) worker->probe->begin_trace();
                    const std::uint64_t pt = rng();
                    const std::uint64_t key = rng();
                    (void)core.encrypt_value(worker->sim, pt, key, &rng);
                    phases.lap(telemetry::Counter::kPhaseSimNanos);
                    const std::vector<double>& trace = worker->recorder.trace();
                    for (std::size_t i = 0; i < samples; ++i)
                        acc.sum[i] += trace[i];
                    phases.lap(telemetry::Counter::kPhaseMomentsNanos);
                    if (worker->probe)
                        worker->probe->fold_trace(/*fixed=*/false, acc.attr);
                    phases.lap(telemetry::Counter::kPhaseAttributionNanos);
                }
                phases.flush();
                if (telemetry::enabled())
                    telemetry::record_sim_block(worker->sim.engine().stats(),
                                                worker->last_stats);
            },
            merge, policy, fingerprint, encode, decode, &prog,
            session.meter());
    }();
    std::vector<double> mean = std::move(merged.sum);
    // A cancelled run averages over the traces it actually folded in.
    const std::size_t denom = prog.completed_traces > 0
                                  ? prog.completed_traces
                                  : traces;
    for (double& v : mean) v /= static_cast<double>(denom);
    if (attribute) {
        leakage::AttributionResult result =
            leakage::analyze_attribution(core.nl(), attr_plan, merged.attr);
        session.set_attribution(result, run.attribution_top_k,
                                run.attribution_scope);
        if (attribution != nullptr) *attribution = std::move(result);
    }
    session.finish(prog);
    return mean;
}

}  // namespace glitchmask::eval
