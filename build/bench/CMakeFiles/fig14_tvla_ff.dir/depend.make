# Empty dependencies file for fig14_tvla_ff.
# This may be replaced when dependencies are built.
