#include "eval/gadget_tvla.hpp"

#include <algorithm>
#include <bit>
#include <memory>
#include <string>

#include "core/sharing.hpp"
#include "eval/lane_backend.hpp"
#include "eval/parallel_campaign.hpp"
#include "eval/run_report.hpp"
#include "leakage/moment_bank.hpp"
#include "leakage/tvla.hpp"
#include "power/batch_power.hpp"
#include "power/power_model.hpp"
#include "sim/batch_simulator.hpp"
#include "sim/compiled_simulator.hpp"
#include "support/telemetry.hpp"

namespace glitchmask::eval {

const char* gadget_name(GadgetKind kind) noexcept {
    switch (kind) {
        case GadgetKind::Naive: return "naive";
        case GadgetKind::Ff: return "ff";
        case GadgetKind::Pd: return "pd";
        case GadgetKind::Trichina: return "trichina";
        case GadgetKind::DomIndep: return "dom-indep";
        case GadgetKind::DomDep: return "dom-dep";
    }
    return "?";
}

std::optional<GadgetKind> parse_gadget(std::string_view name) {
    std::string lower;
    lower.reserve(name.size());
    for (const char c : name)
        lower += c == '_' ? '-'
                          : (c >= 'A' && c <= 'Z' ? static_cast<char>(c + 32)
                                                  : c);
    if (lower == "naive" || lower == "secand2") return GadgetKind::Naive;
    if (lower == "ff" || lower == "secand2-ff") return GadgetKind::Ff;
    if (lower == "pd" || lower == "secand2-pd") return GadgetKind::Pd;
    if (lower == "trichina") return GadgetKind::Trichina;
    if (lower == "dom-indep" || lower == "dom") return GadgetKind::DomIndep;
    if (lower == "dom-dep") return GadgetKind::DomDep;
    return std::nullopt;
}

unsigned gadget_fresh_bits(GadgetKind kind) noexcept {
    switch (kind) {
        case GadgetKind::Trichina:
        case GadgetKind::DomIndep: return 1;
        case GadgetKind::DomDep: return 3;
        default: return 0;
    }
}

GadgetStimulus gadget_stimulus(unsigned fresh_bits, std::uint64_t seed,
                               std::size_t trace_index) {
    Xoshiro256 rng = trace_rng(seed, kStimulusStream, trace_index);
    GadgetStimulus stim;
    stim.fixed = rng.bit();
    const bool x = stim.fixed ? true : rng.bit();
    const bool y = stim.fixed ? true : rng.bit();
    const core::MaskedBit mx = core::mask_bit(x, rng);
    const core::MaskedBit my = core::mask_bit(y, rng);
    stim.shares = {mx.s0, mx.s1, my.s0, my.s1};
    stim.fresh.reserve(fresh_bits);
    for (unsigned i = 0; i < fresh_bits; ++i) stim.fresh.push_back(rng.bit());
    return stim;
}

GadgetCircuit build_gadget_circuit(GadgetKind kind, unsigned replicas) {
    GadgetCircuit c;
    c.kind = kind;
    c.replicas = replicas;
    c.x_in = core::shared_input(c.nl, "x");
    c.y_in = core::shared_input(c.nl, "y");
    const unsigned fresh = gadget_fresh_bits(kind);
    for (unsigned i = 0; i < fresh; ++i)
        c.rand_in.push_back(c.nl.input("r" + std::to_string(i)));
    const core::SharedNet x = core::reg_shares(c.nl, c.x_in, 1);
    const core::SharedNet y = core::reg_shares(c.nl, c.y_in, 1);
    std::vector<netlist::NetId> rand_regs;
    for (const netlist::NetId r : c.rand_in) rand_regs.push_back(c.nl.dff(r, 1));

    for (unsigned k = 0; k < replicas; ++k) {
        const std::string name = "g" + std::to_string(k);
        switch (kind) {
            case GadgetKind::Naive:
                (void)core::secand2(c.nl, x, y, name);
                break;
            case GadgetKind::Ff:
                (void)core::secand2_ff(c.nl, x, y, 2, 3, name);
                break;
            case GadgetKind::Pd:
                (void)core::secand2_pd(c.nl, x, y, {10, true}, name);
                break;
            case GadgetKind::Trichina:
                (void)core::trichina_and(c.nl, x, y, rand_regs[0], name);
                break;
            case GadgetKind::DomIndep:
                (void)core::dom_and_indep(c.nl, x, y, rand_regs[0], 2, name);
                break;
            case GadgetKind::DomDep:
                (void)core::dom_and_dep(c.nl, x, y, rand_regs[0], rand_regs[1],
                                        rand_regs[2], 2, name);
                break;
        }
    }
    c.nl.freeze();
    c.has_stage2 = c.nl.max_ctrl_group() >= 2;
    return c;
}

namespace {

sim::DelayConfig gadget_delay_config(std::uint64_t placement_seed) {
    sim::DelayConfig config = sim::DelayConfig::spartan6();
    config.seed = placement_seed;
    return config;
}

/// Block accumulator: TVLA statistics plus the optional attribution
/// state.  The statistics live in the fused bin-vectorized MomentBank;
/// its snapshot form matches TvlaCampaign byte for byte.
struct GadgetBlockAcc {
    leakage::MomentBank bank;
    leakage::AttributionAccumulator attr;
};

}  // namespace

CampaignFingerprint gadget_fingerprint(const GadgetTvlaConfig& config) {
    std::uint64_t payload = kFnvOffset;
    payload = fnv1a64(payload, static_cast<std::uint64_t>(config.gadget));
    payload = fnv1a64(payload, config.replicas);
    payload = fnv1a64(payload, std::bit_cast<std::uint64_t>(config.noise_sigma));
    payload = fnv1a64(payload, config.placement_seed);
    payload = fnv1a64(payload, static_cast<std::uint64_t>(config.max_test_order));
    payload = fnv1a64(payload, GadgetHarness::kCycles);
    return CampaignFingerprint{fnv1a64_tag("gadget_tvla"), config.seed,
                               config.traces, config.block_size, payload};
}

GadgetHarness::GadgetHarness(GadgetKind kind, unsigned replicas,
                             std::uint64_t placement_seed)
    : circuit_(build_gadget_circuit(kind, replicas)),
      dm_(circuit_.nl, gadget_delay_config(placement_seed)) {
    clock_.period_ps = 90000;  // the zoo's clock
}

void GadgetHarness::drive(sim::ClockedSim& s,
                          const GadgetStimulus& stim) const {
    s.set_input(circuit_.x_in.s0, stim.shares[0]);
    s.set_input(circuit_.x_in.s1, stim.shares[1]);
    s.set_input(circuit_.y_in.s0, stim.shares[2]);
    s.set_input(circuit_.y_in.s1, stim.shares[3]);
    for (std::size_t i = 0; i < circuit_.rand_in.size(); ++i)
        s.set_input(circuit_.rand_in[i], stim.fresh[i]);
    s.step();
    s.set_enable(1, true);
    s.step();
    s.set_enable(1, false);
    if (circuit_.has_stage2) s.set_enable(2, true);
    s.step();
    if (circuit_.has_stage2) s.set_enable(2, false);
    s.step();
}

GadgetTvlaResult GadgetHarness::run(const GadgetTvlaConfig& config,
                                    ThreadPool& pool) const {
    validate_campaign_config(config.traces, config.block_size, config.lanes);
    const BackendPlan bplan =
        resolve_backend_plan(config.run, config.lanes, /*timing_coupling=*/false,
                             circuit_.nl.size());
    const ShardPlan plan{config.traces, config.block_size};
    const unsigned fresh = fresh_bits();

    power::PowerConfig power_config;
    power_config.bin_ps = clock_.period_ps;

    const std::string tag = std::string("gadget_") + gadget_name(circuit_.kind);
    const bool attribute = attribution_enabled(config.run);
    const leakage::AttributionPlan attr_plan =
        attribute ? leakage::AttributionPlan(circuit_.nl, kCycles,
                                             clock_.period_ps,
                                             config.run.attribution_scope)
                  : leakage::AttributionPlan();
    const leakage::AttributionPlan* probe_plan = attribute ? &attr_plan : nullptr;
    CampaignFingerprint fingerprint = gadget_fingerprint(config);
    if (attribute) fold_attribution_fingerprint(fingerprint, config.run);
    fold_backend_fingerprint(fingerprint, bplan);

    RunTelemetrySession session(tag, config.run, fingerprint, plan.traces,
                                pool.size(), bplan.lanes);
    CheckpointPolicy policy = make_checkpoint_policy(config.run, tag);
    session.attach(policy);
    const auto encode = [attribute](const GadgetBlockAcc& acc,
                                    SnapshotWriter& out) {
        acc.bank.encode(out);
        if (attribute) acc.attr.encode(out);
    };
    const auto decode = [attribute](SnapshotReader& in) {
        GadgetBlockAcc acc{leakage::MomentBank::decode(in), {}};
        if (attribute) acc.attr = leakage::AttributionAccumulator::decode(in);
        return acc;
    };
    const auto make_acc = [&] {
        return GadgetBlockAcc{
            leakage::MomentBank(kCycles, config.max_test_order),
            leakage::AttributionAccumulator(attr_plan.points())};
    };
    const auto merge = [](GadgetBlockAcc& into, const GadgetBlockAcc& from) {
        into.bank.merge(from.bank);
        into.attr.merge(from.attr);
    };
    CampaignProgress progress;

    GadgetBlockAcc merged = [&] {
        if (!bplan.scalar()) {
            // Lane-parallel replica behind the chunked-sim seam
            // (eval/lane_backend.hpp): one pass per group of up to
            // group_lanes() consecutive trace indices.
            const auto run_lanes = [&](auto make_worker) {
                return run_sharded_blocks_checkpointed(
                    pool, plan,
                    [&] {
                        auto worker = make_worker();
                        worker->attach_sinks(circuit_.nl, power_config,
                                             probe_plan);
                        return worker;
                    },
                    make_acc,
                    [&](auto& worker, std::size_t begin, std::size_t end,
                        GadgetBlockAcc& acc) {
                        telemetry::PhaseClock phases;
                        phases.mark();
                        const unsigned group_lanes = worker->group_lanes();
                        for (std::size_t group = begin; group < end;
                             group += group_lanes) {
                            const unsigned count = static_cast<unsigned>(
                                std::min<std::size_t>(group_lanes,
                                                      end - group));
                            std::array<std::uint64_t, sim::kMaxLaneChunks>
                                fixed{};
                            std::array<
                                std::array<std::uint64_t, sim::kMaxLaneChunks>,
                                4>
                                share_words{};
                            std::array<
                                std::array<std::uint64_t, sim::kMaxLaneChunks>,
                                3>
                                fresh_words{};
                            for (unsigned lane = 0; lane < count; ++lane) {
                                const GadgetStimulus stim = gadget_stimulus(
                                    fresh, config.seed, group + lane);
                                const unsigned c = lane / 64u;
                                const std::uint64_t bit = std::uint64_t{1}
                                                          << (lane % 64u);
                                if (stim.fixed) fixed[c] |= bit;
                                for (std::size_t i = 0; i < 4; ++i)
                                    if (stim.shares[i]) share_words[i][c] |= bit;
                                for (unsigned i = 0; i < fresh; ++i)
                                    if (stim.fresh[i]) fresh_words[i][c] |= bit;
                            }

                            auto& s = worker->sim;
                            s.restart();
                            worker->begin_group(kCycles, fixed.data(), count,
                                                &acc.attr);
                            for (unsigned c = 0; c < s.chunks(); ++c) {
                                s.set_input_word(circuit_.x_in.s0, c,
                                                 share_words[0][c]);
                                s.set_input_word(circuit_.x_in.s1, c,
                                                 share_words[1][c]);
                                s.set_input_word(circuit_.y_in.s0, c,
                                                 share_words[2][c]);
                                s.set_input_word(circuit_.y_in.s1, c,
                                                 share_words[3][c]);
                                for (unsigned i = 0; i < fresh; ++i)
                                    s.set_input_word(circuit_.rand_in[i], c,
                                                     fresh_words[i][c]);
                            }
                            s.step();
                            s.set_enable(1, true);
                            s.step();
                            s.set_enable(1, false);
                            if (circuit_.has_stage2) s.set_enable(2, true);
                            s.step();
                            if (circuit_.has_stage2) s.set_enable(2, false);
                            s.step();
                            phases.lap(telemetry::Counter::kPhaseSimNanos);

                            // Fused fold, chunk by chunk (chunk c == traces
                            // group+64c .. group+64c+63): each lane's noisy
                            // row streams straight into the moment bank,
                            // noise in the scalar path's per-trace bin
                            // order, lanes in lane order -- the same addend
                            // sequence per accumulator either way.
                            auto& noisy = worker->noisy;
                            const unsigned chunks_used = (count + 63u) / 64u;
                            for (unsigned c = 0; c < chunks_used; ++c) {
                                const unsigned cnt =
                                    std::min(64u, count - c * 64u);
                                for (unsigned lane = 0; lane < cnt; ++lane) {
                                    Xoshiro256 noise_rng =
                                        trace_rng(config.seed, kNoiseStream,
                                                  group + c * 64u + lane);
                                    worker->noisy_row(c * 64u + lane,
                                                      noise_rng,
                                                      config.noise_sigma,
                                                      noisy);
                                    phases.lap(
                                        telemetry::Counter::kPhaseNoiseNanos);
                                    acc.bank.add_trace(
                                        ((fixed[c] >> lane) & 1u) != 0,
                                        noisy.data());
                                    phases.lap(
                                        telemetry::Counter::kPhaseMomentsNanos);
                                }
                                if (!worker->probes.empty())
                                    worker->probes[c].fold_group();
                                phases.lap(
                                    telemetry::Counter::kPhaseAttributionNanos);
                            }
                        }
                        worker->finish_block();
                        phases.lap(telemetry::Counter::kPhaseAttributionNanos);
                        phases.flush();
                        if (telemetry::enabled())
                            telemetry::record_sim_block(worker->sim.stats(),
                                                        worker->last_stats);
                    },
                    merge, policy, fingerprint, encode, decode, &progress,
                    session.meter());
            };

            if (bplan.backend == SimBackend::Compiled)
                return run_lanes([&] {
                    return std::make_unique<
                        LaneWorker<sim::CompiledClockedSim>>(
                        circuit_.nl, dm_, bplan.lanes, clock_,
                        sim::CouplingConfig{}, sim::SimOptions{});
                });
            return run_lanes([&] {
                return std::make_unique<LaneWorker<EventLaneSim>>(circuit_.nl,
                                                                  dm_, clock_);
            });
        }

        struct Worker {
            sim::ClockedSim sim;
            power::PowerRecorder recorder;
            std::optional<leakage::AttributionProbe> probe;
            std::vector<double> noisy;
            telemetry::SimStats last_stats;
            Worker(const netlist::Netlist& nl, const sim::DelayModel& dm,
                   sim::ClockConfig clock, power::PowerConfig power_config,
                   const leakage::AttributionPlan* attr)
                : sim(nl, dm, clock), recorder(nl, power_config) {
                if (attr != nullptr) {
                    probe.emplace(*attr, &recorder);
                    sim.engine().set_sink(&*probe);
                } else {
                    sim.engine().set_sink(&recorder);
                }
            }
        };

        return run_sharded_blocks_checkpointed(
            pool, plan,
            [&] {
                return std::make_unique<Worker>(circuit_.nl, dm_, clock_,
                                                power_config, probe_plan);
            },
            make_acc,
            [&](std::unique_ptr<Worker>& worker, std::size_t begin,
                std::size_t end, GadgetBlockAcc& acc) {
                telemetry::PhaseClock phases;
                phases.mark();
                for (std::size_t trace_index = begin; trace_index < end;
                     ++trace_index) {
                    const GadgetStimulus stim =
                        gadget_stimulus(fresh, config.seed, trace_index);
                    Xoshiro256 noise_rng =
                        trace_rng(config.seed, kNoiseStream, trace_index);

                    worker->sim.restart();
                    worker->recorder.begin_trace(kCycles);
                    if (worker->probe) worker->probe->begin_trace();
                    drive(worker->sim, stim);
                    phases.lap(telemetry::Counter::kPhaseSimNanos);
                    worker->recorder.noisy_trace_into(
                        noise_rng, config.noise_sigma, worker->noisy);
                    phases.lap(telemetry::Counter::kPhaseNoiseNanos);
                    acc.bank.add_trace(stim.fixed, worker->noisy.data());
                    phases.lap(telemetry::Counter::kPhaseMomentsNanos);
                    if (worker->probe)
                        worker->probe->fold_trace(stim.fixed, acc.attr);
                    phases.lap(telemetry::Counter::kPhaseAttributionNanos);
                }
                phases.flush();
                if (telemetry::enabled())
                    telemetry::record_sim_block(worker->sim.engine().stats(),
                                                worker->last_stats);
            },
            merge, policy, fingerprint, encode, decode, &progress,
            session.meter());
    }();

    GadgetTvlaResult result;
    result.gadget = circuit_.kind;
    result.max_abs_t1 = merged.bank.max_abs_t(1, &result.argmax_cycle);
    result.max_abs_t2 = merged.bank.max_abs_t(2);
    result.leaks_first_order = result.max_abs_t1 > leakage::kTvlaThreshold;
    result.completed_traces = progress.completed_traces;
    result.cancelled = progress.cancelled;
    result.resumed = progress.resumed;
    session.add_metric("max_abs_t_order1", result.max_abs_t1);
    session.add_metric("max_abs_t_order2", result.max_abs_t2);
    if (attribute) {
        result.attribution =
            leakage::analyze_attribution(circuit_.nl, attr_plan, merged.attr);
        session.set_attribution(result.attribution,
                                config.run.attribution_top_k,
                                config.run.attribution_scope);
    }
    session.finish(progress);
    return result;
}

GadgetTvlaResult run_gadget_tvla(const GadgetTvlaConfig& config) {
    const GadgetHarness harness(config.gadget, config.replicas,
                                config.placement_seed);
    ThreadPool pool(resolve_workers(config.workers));
    return harness.run(config, pool);
}

}  // namespace glitchmask::eval
