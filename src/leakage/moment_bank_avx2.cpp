// AVX2 moment-bank fold: the Pebay single-point increment of
// fold_row_scalar applied to four sample points per vector.
//
// Bit-identity discipline (support/simd.hpp): each point's accumulator
// is independent, the scalar coefficients (n, n1, binomials, the
// correction tails) are broadcast, and every per-point operation is
// performed in the scalar kernel's order -- the ipow chains are the same
// left-to-right multiply sequences, negation is a sign-bit flip (exact),
// and there are no horizontal operations.  Compiled with -mavx2
// -ffp-contract=off (src/CMakeLists.txt) so no mul+add pair can fuse
// into an FMA behind our back; the tail loop reuses the scalar kernel.
#include "leakage/moment_bank.hpp"

#if defined(GLITCHMASK_HAVE_AVX2)

#include <immintrin.h>

namespace glitchmask::leakage::bank_kernels {

namespace {

[[nodiscard]] double binomial(int n, int k) {
    double result = 1.0;
    for (int i = 1; i <= k; ++i)
        result = result * static_cast<double>(n - k + i) / static_cast<double>(i);
    return result;
}

[[nodiscard]] double ipow(double base, int exponent) {
    double result = 1.0;
    for (int i = 0; i < exponent; ++i) result *= base;
    return result;
}

/// ipow as the identical multiply chain, four points wide.
[[nodiscard]] inline __m256d ipow_pd(__m256d base, int exponent) noexcept {
    __m256d result = _mm256_set1_pd(1.0);
    for (int i = 0; i < exponent; ++i) result = _mm256_mul_pd(result, base);
    return result;
}

}  // namespace

void fold_row_avx2(double* mean, double* sums, std::size_t points,
                   std::size_t stride, int max_order, double n1, double n,
                   const double* row) {
    const std::size_t main = points & ~std::size_t{3};
    const __m256d vn = _mm256_set1_pd(n);
    if (n1 == 0.0) {
        std::size_t i = 0;
        for (; i < main; i += 4) {
            const __m256d m = _mm256_loadu_pd(mean + i);
            const __m256d delta = _mm256_sub_pd(_mm256_loadu_pd(row + i), m);
            const __m256d delta_n = _mm256_div_pd(delta, vn);
            _mm256_storeu_pd(mean + i, _mm256_add_pd(m, delta_n));
        }
        if (i < points)
            fold_row_scalar(mean + i, sums + i, points - i, stride, max_order,
                            n1, n, row + i);
        return;
    }

    double binom[7][7];
    double tail[7];
    for (int p = 2; p <= max_order; ++p) {
        for (int k = 1; k <= p - 2; ++k) binom[p][k] = binomial(p, k);
        tail[p] = 1.0 - ipow(-1.0 / n1, p - 1);
    }

    const __m256d vn1 = _mm256_set1_pd(n1);
    const __m256d sign = _mm256_set1_pd(-0.0);
    std::size_t i = 0;
    for (; i < main; i += 4) {
        const __m256d x = _mm256_loadu_pd(row + i);
        const __m256d m = _mm256_loadu_pd(mean + i);
        const __m256d delta = _mm256_sub_pd(x, m);
        const __m256d delta_n = _mm256_div_pd(delta, vn);
        _mm256_storeu_pd(mean + i, _mm256_add_pd(m, delta_n));
        // -delta_n via sign-bit xor: exact negation, unlike 0.0 - x.
        const __m256d neg_delta_n = _mm256_xor_pd(delta_n, sign);
        const __m256d term =
            _mm256_div_pd(_mm256_mul_pd(vn1, delta), vn);
        for (int p = max_order; p >= 2; --p) {
            double* prow = sums + static_cast<std::size_t>(p) * stride + i;
            __m256d update = _mm256_loadu_pd(prow);
            for (int k = 1; k <= p - 2; ++k) {
                const double* krow =
                    sums + static_cast<std::size_t>(p - k) * stride + i;
                // binom * sums * ipow, left to right as in the scalar form.
                const __m256d product = _mm256_mul_pd(
                    _mm256_mul_pd(_mm256_set1_pd(binom[p][k]),
                                  _mm256_loadu_pd(krow)),
                    ipow_pd(neg_delta_n, k));
                update = _mm256_add_pd(update, product);
            }
            update = _mm256_add_pd(
                update,
                _mm256_mul_pd(ipow_pd(term, p), _mm256_set1_pd(tail[p])));
            _mm256_storeu_pd(prow, update);
        }
    }
    if (i < points)
        fold_row_scalar(mean + i, sums + i, points - i, stride, max_order, n1,
                        n, row + i);
}

}  // namespace glitchmask::leakage::bank_kernels

#endif  // GLITCHMASK_HAVE_AVX2
