// Cooperative cancellation for long-running campaigns.
//
// A CancelToken is a single atomic flag shared between a requester (a
// signal handler, a watchdog thread, a test) and the campaign runtime,
// which polls it at block granularity: in-flight simulation blocks run to
// completion, a final checkpoint is written, and the partial result is
// returned tagged with the completed-trace count.  request() is
// async-signal-safe, so ScopedSignalCancel can bind SIGINT/SIGTERM
// directly to a token: Ctrl-C turns a multi-hour TVLA run into a clean
// partial result instead of a dead process.
#pragma once

#include <atomic>

namespace glitchmask {

class CancelToken {
public:
    /// Requests cancellation.  Async-signal-safe; idempotent.
    void request() noexcept { flag_.store(true, std::memory_order_relaxed); }

    [[nodiscard]] bool requested() const noexcept {
        return flag_.load(std::memory_order_relaxed);
    }

    void reset() noexcept { flag_.store(false, std::memory_order_relaxed); }

private:
    std::atomic<bool> flag_{false};
};

/// RAII binding of SIGINT and SIGTERM to a CancelToken: while alive, both
/// signals request() the token instead of killing the process; the
/// previous handlers are restored on destruction.  At most one instance
/// may be alive at a time (the handler routes through one global slot).
class ScopedSignalCancel {
public:
    explicit ScopedSignalCancel(CancelToken& token);
    ~ScopedSignalCancel();

    ScopedSignalCancel(const ScopedSignalCancel&) = delete;
    ScopedSignalCancel& operator=(const ScopedSignalCancel&) = delete;
};

}  // namespace glitchmask
