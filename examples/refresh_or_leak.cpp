// Composition lesson of paper Sec. III-C (Fig. 7): adding *dependent*
// terms needs a refresh.
//
// f = x ^ y ^ (x & y) where the product comes from a secAND2 gadget.  The
// gadget reuses its input randomness, so (x, y, x&y) are NOT independent
// sharings; XORing them without a refresh produces output shares whose
// joint distribution degenerates -- for x = y = 1 the pair (f0, f1)
// collapses onto a single point.  One fresh bit restores uniformity.
// This example measures the share-pair histograms directly.
#include <array>
#include <cstdio>

#include "core/circuits.hpp"
#include "core/sharing.hpp"
#include "sim/functional.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using namespace glitchmask;

namespace {

std::array<int, 4> histogram(bool with_refresh, bool xv, bool yv, int trials) {
    core::MaskedF circuit = core::build_masked_f(with_refresh);
    sim::ZeroDelaySim sim(circuit.nl);
    Xoshiro256 rng(5);
    std::array<int, 4> counts{};
    for (int t = 0; t < trials; ++t) {
        sim.restart();
        const core::MaskedBit x = core::mask_bit(xv, rng);
        const core::MaskedBit y = core::mask_bit(yv, rng);
        sim.set_input(circuit.x0, x.s0);
        sim.set_input(circuit.x1, x.s1);
        sim.set_input(circuit.y0, y.s0);
        sim.set_input(circuit.y1, y.s1);
        sim.set_input(circuit.m, rng.bit());
        sim.step();
        sim.set_enable(circuit.in_enable, true);
        sim.step();
        sim.set_enable(circuit.mul_enable, true);
        sim.step();
        const unsigned pair = (sim.value(circuit.f.s0) ? 1u : 0u) |
                              (sim.value(circuit.f.s1) ? 2u : 0u);
        ++counts[pair];
    }
    return counts;
}

}  // namespace

int main() {
    std::printf("f = x ^ y ^ (x & y): why dependent terms need a refresh\n\n");
    constexpr int kTrials = 4000;

    TablePrinter table({"x,y", "refresh", "(0,0)", "(1,0)", "(0,1)", "(1,1)",
                        "f", "share distribution"});
    bool degenerate_seen = false;
    bool uniform_ok = true;
    for (const auto& [xv, yv] : {std::pair{false, false}, {true, false},
                                 {true, true}}) {
        const bool f = (xv != yv) != (xv && yv);
        for (const bool refresh : {false, true}) {
            const std::array<int, 4> h = histogram(refresh, xv, yv, kTrials);
            int nonzero = 0;
            for (const int c : h) nonzero += (c > 0);
            const bool degenerate = nonzero == 1;
            degenerate_seen |= (!refresh && degenerate);
            if (refresh) {
                // Both consistent pairs should be ~50/50.
                const int a = f ? h[1] : h[0];
                const int b = f ? h[2] : h[3];
                uniform_ok = uniform_ok && a > kTrials / 3 && b > kTrials / 3;
            }
            table.add_row({std::string(xv ? "1" : "0") + "," + (yv ? "1" : "0"),
                           refresh ? "yes" : "no", std::to_string(h[0]),
                           std::to_string(h[1]), std::to_string(h[2]),
                           std::to_string(h[3]), f ? "1" : "0",
                           degenerate ? "DEGENERATE" : "uniform"});
        }
    }
    table.print();
    std::printf(
        "\nWithout the refresh the masked output collapses to one share pair\n"
        "for some inputs -- its distribution depends on the secret data.\n"
        "One fresh bit (paper Fig. 7) restores a uniform sharing.\n");
    return (degenerate_seen && uniform_ok) ? 0 : 1;
}
