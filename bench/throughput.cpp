// Microbenchmarks of the methodology itself (google-benchmark): event-
// simulation throughput, masked-DES encryption rate in both engines, the
// reference cipher, and the streaming leakage statistics.  These are the
// numbers that determine how far the TVLA campaigns of the fig* benches
// can be scaled.
#include <benchmark/benchmark.h>

#include "core/gadgets.hpp"
#include "des/des_reference.hpp"
#include "des/masked_des.hpp"
#include "leakage/moments.hpp"
#include "leakage/tvla.hpp"
#include "power/power_model.hpp"
#include "sim/clocked.hpp"
#include "sim/functional.hpp"
#include "support/rng.hpp"

using namespace glitchmask;

namespace {

void BM_ReferenceDesEncrypt(benchmark::State& state) {
    Xoshiro256 rng(1);
    std::uint64_t pt = rng();
    const std::uint64_t key = rng();
    for (auto _ : state) {
        pt = des::encrypt_block(pt, key);
        benchmark::DoNotOptimize(pt);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReferenceDesEncrypt);

void BM_EventSimSboxSettle(benchmark::State& state) {
    // One masked FF S-box worth of netlist, random stimulus per iteration.
    core::Netlist nl;
    const core::SharedBus in = core::shared_input_bus(nl, "x", 6);
    std::vector<core::SharedNet> gadgets;
    core::SharedBus regs(6);
    for (unsigned i = 0; i < 6; ++i) regs[i] = core::reg_shares(nl, in[i]);
    for (int g = 0; g < 30; ++g)
        gadgets.push_back(core::secand2(nl, regs[g % 6], regs[(g + 1) % 6],
                                        "g" + std::to_string(g)));
    nl.freeze();
    const sim::DelayModel dm(nl, sim::DelayConfig::spartan6());
    sim::ClockedSim sim(nl, dm);
    Xoshiro256 rng(2);
    std::size_t events = 0;
    for (auto _ : state) {
        for (unsigned i = 0; i < 6; ++i) {
            sim.set_input(in[i].s0, rng.bit());
            sim.set_input(in[i].s1, rng.bit());
        }
        sim.step(2);
        events = sim.engine().processed_events();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
    state.SetLabel("items = simulation events");
}
BENCHMARK(BM_EventSimSboxSettle);

void BM_MaskedDesFfTiming(benchmark::State& state) {
    const des::MaskedDesCore core(des::MaskedDesOptions{});
    const sim::DelayModel dm(core.nl(), sim::DelayConfig::spartan6());
    sim::ClockConfig clock;
    clock.period_ps = core.recommended_period();
    sim::ClockedSim sim(core.nl(), dm, clock);
    power::PowerRecorder recorder(core.nl(), power::PowerConfig{});
    sim.engine().set_sink(&recorder);
    Xoshiro256 rng(3);
    for (auto _ : state) {
        sim.restart();
        recorder.begin_trace(core.total_cycles());
        benchmark::DoNotOptimize(core.encrypt_value(sim, rng(), rng(), &rng));
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel("items = traces (glitchy timing sim)");
}
BENCHMARK(BM_MaskedDesFfTiming);

void BM_MaskedDesFfFunctional(benchmark::State& state) {
    const des::MaskedDesCore core(des::MaskedDesOptions{});
    sim::ZeroDelaySim sim(core.nl());
    Xoshiro256 rng(4);
    for (auto _ : state) {
        sim.restart();
        benchmark::DoNotOptimize(core.encrypt_value(sim, rng(), rng(), &rng));
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel("items = encryptions (zero-delay)");
}
BENCHMARK(BM_MaskedDesFfFunctional);

void BM_MomentAccumulatorOrder6(benchmark::State& state) {
    leakage::MomentAccumulator acc(6);
    Xoshiro256 rng(5);
    for (auto _ : state) acc.add(rng.gaussian());
    benchmark::DoNotOptimize(acc.central_moment(6));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MomentAccumulatorOrder6);

void BM_TvlaAddTrace(benchmark::State& state) {
    constexpr std::size_t kSamples = 113;
    leakage::TvlaCampaign campaign(kSamples, 3);
    std::vector<double> trace(kSamples);
    Xoshiro256 rng(6);
    for (double& v : trace) v = rng.gaussian();
    bool cls = false;
    for (auto _ : state) {
        campaign.add_trace(cls, trace);
        cls = !cls;
    }
    state.SetItemsProcessed(state.iterations() * kSamples);
    state.SetLabel("items = sample updates (order-3 moments)");
}
BENCHMARK(BM_TvlaAddTrace);

}  // namespace

BENCHMARK_MAIN();
