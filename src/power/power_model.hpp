// Power-trace synthesis from simulated switching activity.
//
// CMOS dynamic power is dominated by the charging of node capacitances on
// every output transition, so the model is: each committed net toggle
// deposits an energy weight (base + load term proportional to fanout)
// into the time bin it occurs in; one bin per clock cycle reproduces the
// per-cycle power samples a scope capture would integrate to.  Gaussian
// noise of configurable sigma is added per sample at collection time --
// this is the knob that maps the paper's trace counts (50M on an FPGA
// with amplifier/scope noise) onto software-feasible campaign sizes.
//
// For nets the netlist marked as coupled (adjacent delay-chain stages) an
// optional Miller term is added: a toggle costs more energy when the
// neighbour sits at the opposite level (the cross capacitance is charged
// through a doubled swing) and less when it sits at the same level.  The
// term therefore depends on the *product* of two wires' signals -- the
// physical effect the paper names as the likely cause of the secAND2-PD
// core's residual first-order leakage (Sec. VII-C).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace glitchmask::power {

using netlist::Netlist;
using netlist::NetId;
using sim::TimePs;

struct PowerConfig {
    double base_weight = 1.0;      // energy per toggle
    double fanout_weight = 0.35;   // extra energy per sink (load)
    /// Scale factor for DelayBuf (route-through LUT) toggles: a delay
    /// element drives exactly one short local hop, so it switches far
    /// less capacitance than a logic net with real routing.
    double delaybuf_weight = 0.1;
    double coupling_epsilon = 0.0; // Miller energy term for coupled pairs
    TimePs bin_ps = 20000;         // sample period (one clock cycle)
};

/// Per-net toggle energy table (base + fanout load, DelayBuf scaled down).
/// Shared by the scalar and the batch recorder so both deposit the exact
/// same doubles per toggle.
[[nodiscard]] std::vector<double> net_weights(const Netlist& nl,
                                              const PowerConfig& config);

/// Per-net coupling neighbour (kNoNet when uncoupled), first pair wins.
[[nodiscard]] std::vector<NetId> coupling_partners(const Netlist& nl);

class PowerRecorder final : public sim::ToggleSink {
public:
    PowerRecorder(const Netlist& nl, PowerConfig config);

    /// Gives the recorder access to neighbour states for the coupling
    /// term; required only when coupling_epsilon != 0.
    void attach(const sim::EventSimulator* engine) noexcept { engine_ = engine; }

    /// Starts a fresh trace of `bins` samples (all zero).
    void begin_trace(std::size_t bins);

    void on_toggle(NetId net, TimePs time, bool new_value) override;

    /// The accumulated (noise-free) trace.
    [[nodiscard]] const std::vector<double>& trace() const noexcept {
        return trace_;
    }

    /// Toggle events recorded since begin_trace() (includes out-of-window
    /// toggles that fell past the last bin).  Feeds the throughput bench's
    /// activity metric.
    [[nodiscard]] std::uint64_t trace_toggles() const noexcept {
        return trace_toggles_;
    }

    /// Toggle events recorded over the recorder's lifetime.
    [[nodiscard]] std::uint64_t total_toggles() const noexcept {
        return total_toggles_;
    }

    /// Returns the trace with i.i.d. Gaussian measurement noise added.
    [[nodiscard]] std::vector<double> noisy_trace(Xoshiro256& rng,
                                                  double sigma) const;

    /// Allocation-free variant for hot campaign loops: writes the noisy
    /// trace into `out` (resized to the trace length, capacity reused).
    void noisy_trace_into(Xoshiro256& rng, double sigma,
                          std::vector<double>& out) const;

    [[nodiscard]] const PowerConfig& config() const noexcept { return config_; }

private:
    PowerConfig config_;
    const sim::EventSimulator* engine_ = nullptr;
    std::vector<double> weight_;      // per net: base + fanout load
    std::vector<NetId> partner_;      // coupling neighbour or kNoNet
    std::vector<double> trace_;
    std::uint64_t trace_toggles_ = 0;
    std::uint64_t total_toggles_ = 0;
};

}  // namespace glitchmask::power
