#include "eval/campaign.hpp"

#include <memory>

#include "core/sharing.hpp"

namespace glitchmask::eval {

namespace {

sim::DelayConfig sequence_delay_config(const SequenceExperimentConfig& config) {
    sim::DelayConfig delay_config = sim::DelayConfig::spartan6();
    delay_config.seed = config.placement_seed;
    return delay_config;
}

}  // namespace

std::vector<double> collect_trace(
    sim::ClockedSim& sim, power::PowerRecorder& recorder, std::size_t cycles,
    double sigma, Xoshiro256& noise_rng,
    const std::function<void(sim::ClockedSim&)>& drive) {
    sim.restart();
    recorder.begin_trace(cycles);
    drive(sim);
    return recorder.noisy_trace(noise_rng, sigma);
}

SequenceHarness::SequenceHarness(const SequenceExperimentConfig& config)
    : circuit_(core::build_registered_secand2(config.replicas)),
      dm_(circuit_.nl, sequence_delay_config(config)) {
    power_config_.bin_ps = clock_.period_ps;
}

SequenceLeakResult SequenceHarness::run(const core::InputSequence& sequence,
                                        const SequenceExperimentConfig& config,
                                        ThreadPool& pool) const {
    constexpr std::size_t kCycles = 6;  // inputs + 4 sequence slots + settle

    // Per-worker simulator replica over the shared netlist/delay-model.
    // Heap-allocated so the recorder's sink registration never relocates.
    struct Worker {
        sim::ClockedSim sim;
        power::PowerRecorder recorder;
        Worker(const core::RegisteredSecand2& circuit, const sim::DelayModel& dm,
               sim::ClockConfig clock, power::PowerConfig power_config)
            : sim(circuit.nl, dm, clock), recorder(circuit.nl, power_config) {
            sim.engine().set_sink(&recorder);
        }
    };

    const ShardPlan plan{config.traces, config.block_size};
    leakage::TvlaCampaign campaign = run_sharded(
        pool, plan,
        [&] {
            return std::make_unique<Worker>(circuit_, dm_, clock_,
                                            power_config_);
        },
        [&] { return leakage::TvlaCampaign(kCycles, config.max_test_order); },
        [&](std::unique_ptr<Worker>& worker, std::size_t trace_index,
            leakage::TvlaCampaign& acc) {
            Xoshiro256 rng = trace_rng(config.seed, kStimulusStream, trace_index);
            Xoshiro256 noise_rng = trace_rng(config.seed, kNoiseStream, trace_index);
            const bool fixed = rng.bit();
            const bool x = fixed ? true : rng.bit();
            const bool y = fixed ? true : rng.bit();
            const core::MaskedBit mx = core::mask_bit(x, rng);
            const core::MaskedBit my = core::mask_bit(y, rng);
            const std::array<bool, 4> share_value{mx.s0, mx.s1, my.s0, my.s1};

            const std::vector<double> trace = collect_trace(
                worker->sim, worker->recorder, kCycles, config.noise_sigma,
                noise_rng, [&](sim::ClockedSim& s) {
                    // Cycle 0: share values appear on the primary inputs;
                    // all input registers stay disabled (reset-to-0 state).
                    for (std::size_t i = 0; i < 4; ++i)
                        s.set_input(circuit_.in[i], share_value[i]);
                    s.step();
                    // Cycles 1..4: sample one share per cycle in `sequence`.
                    for (const core::ShareId slot : sequence) {
                        s.set_enable(
                            circuit_.enable[static_cast<std::size_t>(slot)],
                            true);
                        s.step();
                    }
                    s.step();  // settle
                });
            acc.add_trace(fixed, trace);
        },
        [](leakage::TvlaCampaign& into, const leakage::TvlaCampaign& from) {
            into.merge(from);
        });

    SequenceLeakResult result;
    result.sequence = sequence;
    result.max_abs_t1 = campaign.max_abs_t(1, &result.argmax_cycle);
    result.max_abs_t2 = campaign.max_abs_t(2);
    result.leaks_first_order = result.max_abs_t1 > leakage::kTvlaThreshold;
    result.expected_to_leak = core::sequence_expected_to_leak(sequence);
    return result;
}

SequenceLeakResult run_sequence_experiment(
    const core::InputSequence& sequence,
    const SequenceExperimentConfig& config) {
    const SequenceHarness harness(config);
    ThreadPool pool(resolve_workers(config.workers));
    return harness.run(sequence, config, pool);
}

std::vector<SequenceLeakResult> run_all_sequences(
    const SequenceExperimentConfig& config) {
    // One netlist/delay-model and one worker pool serve all 24 sequences;
    // the circuit is sequence-independent, rebuilding it per sequence was
    // pure waste.
    const SequenceHarness harness(config);
    ThreadPool pool(resolve_workers(config.workers));
    std::vector<SequenceLeakResult> results;
    for (const core::InputSequence& sequence : core::all_input_sequences())
        results.push_back(harness.run(sequence, config, pool));
    return results;
}

}  // namespace glitchmask::eval
