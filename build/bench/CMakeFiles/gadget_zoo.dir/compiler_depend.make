# Empty compiler generated dependencies file for gadget_zoo.
# This may be replaced when dependencies are built.
