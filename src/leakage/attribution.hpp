// Per-net leakage attribution: localize a failing t-test to the nets
// that cause it.
//
// The trace-level TVLA engine observes only the summed power trace, so a
// verdict says "the design leaks" but never *which gate*.  Attribution
// answers that question by tapping the committed toggle stream of both
// event simulators (a probe chained in front of the power recorder, so
// the power path is untouched) and accumulating, per watched net and per
// clock window, the per-trace toggle count into per-class sums.  From
// those sums each (net, window) point yields a Welch t-statistic and an
// SNR over raw switching activity, and each net a glitch-density heatmap
// row -- exactly the spatial view the paper argues in prose: Trichina's
// leak lives on specific reconvergent product nets, and secAND2's
// DelayUnits neutralize those sites.
//
// Samples are *toggle counts*, not noisy power values: a net that toggles
// a class-dependent number of times is leaking through glitches no matter
// how the energy model weighs it, and the noise knob of the trace-level
// campaign intentionally does not apply (localization wants the cleanest
// possible signal; the trace-level test remains the methodology-faithful
// verdict).
//
// Determinism contract (the same one the trace campaign makes):
//  * per-trace updates touch only the points that toggled (epoch-stamped
//    sparse scratch, no O(nets x windows) clear per trace);
//  * the per-block accumulator merges by componentwise addition of sums
//    and integer counters, so the fixed merge tree of the sharded runner
//    makes results bit-identical at any worker count;
//  * the batch probe folds lanes in trace order, making the 64-lane path
//    bit-identical to the scalar one (asserted with == in tests);
//  * encode/decode round-trips every field exactly (f64 bit patterns),
//    so checkpoint resume is bit-identical too.
//
// Toggle counts saturate at 255 per (net, window, trace) in both engines
// -- identical saturation is part of the scalar/batch equivalence.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/export.hpp"
#include "netlist/netlist.hpp"
#include "sim/batch_simulator.hpp"
#include "sim/simulator.hpp"
#include "support/snapshot.hpp"

namespace glitchmask::leakage {

/// Which nets are watched and how toggle times map to clock windows.
/// Built once per campaign from the frozen netlist; shared read-only by
/// every worker's probe.
class AttributionPlan {
public:
    static constexpr std::uint32_t kUnwatched = 0xFFFFFFFFu;

    AttributionPlan() = default;

    /// Watches every net whose hierarchical module path contains `scope`
    /// as a substring (empty scope = all nets).  `windows` at `window_ps`
    /// each mirror the power recorder's bins (one per clock cycle);
    /// toggles past the last window are dropped, like power samples.
    AttributionPlan(const netlist::Netlist& nl, std::size_t windows,
                    sim::TimePs window_ps, std::string_view scope = {});

    [[nodiscard]] bool enabled() const noexcept { return !nets_.empty(); }
    [[nodiscard]] std::size_t net_count() const noexcept { return nets_.size(); }
    [[nodiscard]] std::size_t windows() const noexcept { return windows_; }
    [[nodiscard]] sim::TimePs window_ps() const noexcept { return window_ps_; }
    [[nodiscard]] std::size_t points() const noexcept {
        return nets_.size() * windows_;
    }
    [[nodiscard]] const std::string& scope() const noexcept { return scope_; }

    /// Net id of watched-net index `probe`.
    [[nodiscard]] netlist::NetId net(std::size_t probe) const {
        return nets_[probe];
    }
    /// Watched-net index of `net`, or kUnwatched.
    [[nodiscard]] std::uint32_t probe_of(netlist::NetId net) const noexcept {
        return probe_of_[net];
    }
    /// Flat accumulator index of (probe, window).  Window-major on
    /// purpose: commits arrive in time order, so one window's counters
    /// form a contiguous net_count-sized slice -- the probes' working set
    /// stays cache-resident while a window is active, and fold walks the
    /// accumulator as a near-sequential stream instead of striding
    /// `windows` apart on every deposit (at DES scale the accumulator is
    /// ~14 MB, so the stride order was a cache miss per toggle).
    [[nodiscard]] std::size_t point_index(std::size_t probe,
                                          std::size_t window) const noexcept {
        return window * nets_.size() + probe;
    }

private:
    std::vector<netlist::NetId> nets_;       // probe index -> net
    std::vector<std::uint32_t> probe_of_;    // net -> probe index
    std::size_t windows_ = 0;
    sim::TimePs window_ps_ = 0;
    std::string scope_;
};

/// Per-(net, window) class statistics.  sum/sumsq representation instead
/// of Welford: traces in which the point never toggled contribute zeros,
/// which leave sums unchanged -- the sparse per-trace update only visits
/// points that toggled, yet the statistics cover every trace (the class
/// counts live once per accumulator).
struct PointStats {
    double sum_fixed = 0.0;
    double sumsq_fixed = 0.0;
    double sum_random = 0.0;
    double sumsq_random = 0.0;
    std::uint64_t toggles = 0;   // committed toggles, both classes
    std::uint64_t glitches = 0;  // 2nd+ toggle within one window per trace

    friend bool operator==(const PointStats&, const PointStats&) = default;
};

/// Per-block attribution state; rides the campaign's fixed merge tree.
class AttributionAccumulator {
public:
    AttributionAccumulator() = default;  // disabled: zero points
    explicit AttributionAccumulator(std::size_t points) : points_(points) {}

    [[nodiscard]] bool enabled() const noexcept { return !points_.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
    [[nodiscard]] const PointStats& point(std::size_t i) const {
        return points_[i];
    }
    [[nodiscard]] PointStats& point(std::size_t i) { return points_[i]; }

    std::uint64_t traces_fixed = 0;
    std::uint64_t traces_random = 0;

    /// Componentwise addition (associative and exact for the integer
    /// counters; FP sums follow the fixed merge-tree order).
    void merge(const AttributionAccumulator& other);

    /// Exact binary round-trip (doubles as bit patterns).
    void encode(SnapshotWriter& out) const;
    [[nodiscard]] static AttributionAccumulator decode(SnapshotReader& in);

    friend bool operator==(const AttributionAccumulator&,
                           const AttributionAccumulator&) = default;

private:
    std::vector<PointStats> points_;
};

// ----- probe taps ---------------------------------------------------------

/// Scalar probe: a ToggleSink chained in front of the power recorder
/// (every call is forwarded, so enabling attribution cannot perturb the
/// power trace).  Per trace it keeps a saturating 8-bit toggle count per
/// touched (net, window) point; fold_trace() flushes the touched list
/// into a block accumulator and re-arms via an epoch bump -- no per-trace
/// clearing of the point arrays.
class AttributionProbe final : public sim::ToggleSink {
public:
    AttributionProbe(const AttributionPlan& plan, sim::ToggleSink* next);

    /// Arms the probe for the next trace; call alongside the recorder's
    /// begin_trace() (after the simulator restart).
    void begin_trace();

    void on_toggle(netlist::NetId net, sim::TimePs time, bool value) override;

    /// Folds the finished trace's counts into `acc` under class `fixed`
    /// and re-arms.  `acc` must span plan.points().
    void fold_trace(bool fixed, AttributionAccumulator& acc);

private:
    const AttributionPlan& plan_;
    sim::ToggleSink* next_;
    std::vector<std::uint32_t> stamp_;   // per point: epoch of last touch
    std::vector<std::uint8_t> count_;    // valid when stamp matches epoch
    std::vector<std::uint32_t> touched_; // point indices, commit order
    std::uint32_t epoch_ = 1;
    // Monotonic window cursor (commit times never decrease in a trace):
    // window_end_ == (cur_window_ + 1) * window_ps.
    std::size_t cur_window_ = 0;
    sim::TimePs window_end_ = 0;
};

/// Bitsliced probe: same contract for up to 64 traces per event-queue
/// pass.  Counts live in a slot arena indexed by touch order (64 bytes
/// per touched point); each window's subtotals are folded into the
/// registered accumulator the moment the window cursor passes it -- the
/// counters are still cache-hot then, and clearing the touch list lets
/// the next window reuse the same arena slots, so the deposit working
/// set stays ~net_count x 64 bytes for the whole group instead of one
/// row per (net, window) point.  All accumulator sums are exact small
/// integers held in doubles (counts saturate at 255, totals stay far
/// below 2^53), so this early, chunk-interleaved addition order is
/// bit-identical to 64 scalar fold_trace() calls.
class BatchAttributionProbe final : public sim::BatchToggleSink {
public:
    BatchAttributionProbe(const AttributionPlan& plan,
                          sim::BatchToggleSink* next);

    /// Arms the probe for the next lane group and registers its fold
    /// target: bit l of `fixed_mask` labels lane l's class, lanes >=
    /// `count` (partial final group) are ignored, and `acc` -- which must
    /// outlive the group -- receives each window's subtotals as the
    /// cursor passes it.  Call alongside the batch recorder's
    /// begin_trace().
    void begin_group(std::uint64_t fixed_mask, unsigned count,
                     AttributionAccumulator& acc);

    void on_toggle(netlist::NetId net, sim::TimePs time, std::uint64_t values,
                   std::uint64_t toggled) override;

    /// Flushes the windows still pending into the block subtotals and
    /// adds the per-class trace counts to the accumulator registered by
    /// begin_group().
    void fold_group();

    /// Spills the block subtotals into the registered accumulator; call
    /// once per block, after the last fold_group().  (Group flushes land
    /// in a compact u32 staging array -- 20 bytes per point instead of
    /// the accumulator's 48 -- so the expensive full-accumulator pass
    /// runs once per block, not once per 64-trace group.)
    void spill_block();

private:
    void flush_windows();

    const AttributionPlan& plan_;
    sim::BatchToggleSink* next_;
    // Per point: (epoch of last touch << 32) | arena slot.  One word so
    // the first-touch check and the slot lookup share a cache line.
    std::vector<std::uint64_t> stamp_slot_;
    std::vector<std::uint8_t> arena_;    // 64 lane counts per slot
    std::vector<std::uint32_t> touched_; // point indices, commit order
    // 0/1 per lane, spread from begin_group's fixed_mask: lets the flush
    // inner loop select the class arithmetically (branchless, so the
    // compiler vectorizes it).
    std::uint8_t class_of_[sim::kBatchLanes] = {};
    // Per-point block subtotals, 5 u32 each: sum/sumsq per class plus the
    // toggling-lane count (toggles = sum_f + sum_r, glitches = toggles -
    // lanes).  Exact small integers, spilled into the accumulator's
    // (equally exact) doubles by spill_block().
    std::vector<std::uint32_t> block_;
    std::uint32_t epoch_ = 1;
    // Monotonic window cursor (commit times never decrease in a group):
    // window_end_ == (cur_window_ + 1) * window_ps.
    std::size_t cur_window_ = 0;
    sim::TimePs window_end_ = 0;
    // Fold target for the in-flight block.
    std::uint64_t fixed_mask_ = 0;
    unsigned count_ = 0;
    unsigned groups_in_block_ = 0;
    AttributionAccumulator* acc_ = nullptr;
};

// ----- analysis and reports ----------------------------------------------

/// One ranked culprit: net -> driving gate instance -> gadget role.
struct NetAttribution {
    netlist::NetId net = netlist::kNoNet;
    std::string name;        // hierarchical instance name (n<id> fallback)
    std::string kind;        // driving gate kind ("and2", "dff", ...)
    std::string module;      // gadget role: module scope path ("" = top)
    double max_abs_t = 0.0;  // max over windows (order 1, toggle counts)
    std::size_t argmax_window = 0;
    double snr = 0.0;        // at the argmax window
    std::uint64_t toggles = 0;
    std::uint64_t glitches = 0;
    double glitch_density = 0.0;  // glitches per trace

    friend bool operator==(const NetAttribution&,
                           const NetAttribution&) = default;
};

/// Full attribution view of one campaign: every watched net ranked by
/// max |t| (descending; ties by glitch count, then net id), plus the
/// per-window |t| and glitch matrices behind the heatmap, stored in
/// ranked-row order (row i belongs to ranked[i]).
struct AttributionResult {
    bool enabled = false;
    std::uint64_t traces_fixed = 0;
    std::uint64_t traces_random = 0;
    std::size_t windows = 0;
    std::vector<NetAttribution> ranked;
    std::vector<double> abs_t;                   // ranked.size() x windows
    std::vector<std::uint64_t> window_glitches;  // ranked.size() x windows

    [[nodiscard]] double t_at(std::size_t rank, std::size_t window) const {
        return abs_t[rank * windows + window];
    }
    [[nodiscard]] std::uint64_t glitches_at(std::size_t rank,
                                            std::size_t window) const {
        return window_glitches[rank * windows + window];
    }

    friend bool operator==(const AttributionResult&,
                           const AttributionResult&) = default;
};

/// Computes per-point Welch t and SNR from the merged accumulator and
/// ranks every watched net.  Deterministic: a pure function of the
/// accumulator (which is itself bit-identical across workers/lanes).
[[nodiscard]] AttributionResult analyze_attribution(
    const netlist::Netlist& nl, const AttributionPlan& plan,
    const AttributionAccumulator& acc);

/// Prints the top-k culprit table (net, gate, role, |t|, SNR, glitch
/// density) to stdout.
void print_culprit_table(const AttributionResult& result, std::size_t top_k);

/// Per-net CSV: summary columns plus one |t| and one glitch-count column
/// per window (the heatmap, one row per net in ranked order).
[[nodiscard]] std::string attribution_csv(const AttributionResult& result);

/// attribution_csv() to a file; throws std::runtime_error on I/O error.
void write_attribution_csv(const std::string& path,
                           const AttributionResult& result);

/// Graphviz DOT of the netlist with the top-k culprit cells annotated:
/// |t| + glitch count in the label, heat-colored fill (red = rank 0).
[[nodiscard]] std::string attribution_dot(const netlist::Netlist& nl,
                                          const AttributionResult& result,
                                          std::size_t top_k,
                                          netlist::DotOptions options = {});

}  // namespace glitchmask::leakage
