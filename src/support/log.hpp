// Leveled diagnostic logging for the campaign runtime.
//
// Library code must never print unconditionally: a 50M-trace batch run
// wants silence, an interactive debugging session wants the runtime to
// narrate resume/cancel/fallback decisions.  This logger is the single
// funnel for both -- every diagnostic in src/ goes through it, gated by a
// process-wide level read once from GLITCHMASK_LOG
// (off|error|warn|info|debug, default warn) and overridable at runtime.
//
// Two properties the campaign runtime depends on:
//   * level checks are a single relaxed atomic load, safe to call from a
//     signal handler (the SIGINT cancellation notice) and cheap enough
//     for per-block call sites;
//   * a whole line is written to stderr under one mutex, so messages from
//     concurrent pool workers never interleave mid-line.
#pragma once

#include <string>

namespace glitchmask {

enum class LogLevel : int {
    kOff = 0,    // nothing, not even errors
    kError = 1,
    kWarn = 2,   // default
    kInfo = 3,
    kDebug = 4,
};

/// Current process-wide level (first call resolves GLITCHMASK_LOG).
[[nodiscard]] LogLevel log_level() noexcept;

/// Runtime override; later GLITCHMASK_LOG reads are ignored.
void set_log_level(LogLevel level) noexcept;

/// True when a message at `level` would be emitted.  Async-signal-safe.
[[nodiscard]] bool log_enabled(LogLevel level) noexcept;

/// Parses "off|error|warn|info|debug" (anything else -> fallback).
[[nodiscard]] LogLevel parse_log_level(const std::string& text,
                                       LogLevel fallback) noexcept;

/// Emits "[glitchmask +<seconds>s] <level>: <message>\n" to stderr when
/// the level is enabled; whole-line atomic with respect to other log
/// calls.  The timestamp is monotonic seconds (millisecond resolution)
/// since the process's first log call, so interleaved executor output is
/// orderable without wall-clock skew.  When a thread has an active log
/// context (see ScopedLogContext), it is inserted after the level:
/// "[glitchmask +1.042s] info: [job 7 fp=1a2b3c4d] ...".
void log_message(LogLevel level, const std::string& message);

/// Tags every log line emitted by this thread with `context` (service
/// executors set the active job id + fingerprint here) until destruction;
/// nests by simple save/restore.
class ScopedLogContext {
public:
    explicit ScopedLogContext(std::string context);
    ~ScopedLogContext();
    ScopedLogContext(const ScopedLogContext&) = delete;
    ScopedLogContext& operator=(const ScopedLogContext&) = delete;

private:
    std::string previous_;
};

namespace log {
inline void error(const std::string& message) {
    log_message(LogLevel::kError, message);
}
inline void warn(const std::string& message) {
    log_message(LogLevel::kWarn, message);
}
inline void info(const std::string& message) {
    log_message(LogLevel::kInfo, message);
}
inline void debug(const std::string& message) {
    log_message(LogLevel::kDebug, message);
}
}  // namespace log

}  // namespace glitchmask
