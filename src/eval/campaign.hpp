// Trace-collection and experiment drivers shared by the test suite and
// the bench harness.
//
// The general pattern of every evaluation in the paper is:
//   restart device -> apply stimulus (fixed or random class) -> record the
//   per-cycle power trace -> add Gaussian measurement noise -> feed the
//   TVLA accumulators; repeat with randomly interleaved classes.
// collect_trace() implements one iteration of that loop; the experiment
// functions wrap it with the paper's specific stimulus schedules and run
// the campaign on the sharded parallel engine of parallel_campaign.hpp --
// every trace derives its randomness from (seed, trace index), so results
// are bit-identical at any worker count.
#pragma once

#include <functional>
#include <vector>

#include "core/circuits.hpp"
#include "eval/parallel_campaign.hpp"
#include "leakage/attribution.hpp"
#include "leakage/tvla.hpp"
#include "power/power_model.hpp"
#include "sim/clocked.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace glitchmask::eval {

/// Restarts `sim`, records `cycles` power bins while `drive` runs the
/// stimulus, and returns the trace with Gaussian noise of `sigma` added.
[[nodiscard]] std::vector<double> collect_trace(
    sim::ClockedSim& sim, power::PowerRecorder& recorder, std::size_t cycles,
    double sigma, Xoshiro256& noise_rng,
    const std::function<void(sim::ClockedSim&)>& drive);

// ----- Table I: safe input sequences of secAND2 -------------------------

struct SequenceExperimentConfig {
    unsigned replicas = 16;       // parallel secAND2 instances (SNR)
    std::size_t traces = 4000;    // per sequence
    double noise_sigma = 1.0;     // measurement noise
    std::uint64_t seed = 1;       // masks, classes, noise
    std::uint64_t placement_seed = 1;  // delay-model jitter
    int max_test_order = 2;
    unsigned workers = 0;         // campaign threads; 0 = auto (env/cores)
    std::size_t block_size = 64;  // shard granularity (part of the result's
                                  // identity -- see parallel_campaign.hpp)
    unsigned lanes = 0;           // traces per event-queue pass: 1 = scalar,
                                  // 64 = bitsliced; 0 = auto (env, default 64).
                                  // Both paths are bit-identical.
    /// Crash-safe runtime knobs (checkpoint path/cadence, cancel token);
    /// the default leaves the runtime off.  Each sequence checkpoints to
    /// its own file (the sequence is part of the campaign id and the
    /// snapshot fingerprint).
    CampaignRunOptions run;
};

struct SequenceLeakResult {
    core::InputSequence sequence{};
    double max_abs_t1 = 0.0;      // first-order, max over cycles
    std::size_t argmax_cycle = 0;
    double max_abs_t2 = 0.0;      // second-order, for reporting
    bool leaks_first_order = false;
    bool expected_to_leak = false;
    /// Traces folded into the statistics (== config.traces unless the
    /// campaign was cancelled mid-run).
    std::size_t completed_traces = 0;
    bool cancelled = false;
    bool resumed = false;
    /// Per-net culprit ranking; disabled (empty) unless
    /// config.run.attribution / GLITCHMASK_ATTRIBUTION was set.
    leakage::AttributionResult attribution;
};

/// Prebuilt secAND2 harness: the circuit and its delay annotation do not
/// depend on the input sequence, so one instance serves all 24 sequence
/// experiments (and all worker replicas -- simulators share them read-only).
class SequenceHarness {
public:
    explicit SequenceHarness(const SequenceExperimentConfig& config);

    /// Runs one sequence campaign on `pool`.
    [[nodiscard]] SequenceLeakResult run(const core::InputSequence& sequence,
                                         const SequenceExperimentConfig& config,
                                         ThreadPool& pool) const;

private:
    core::RegisteredSecand2 circuit_;
    sim::DelayModel dm_;
    sim::ClockConfig clock_;
    power::PowerConfig power_config_;
};

/// Power bins per sequence trace: inputs + 4 sequence slots + settle.
inline constexpr std::size_t kSequenceCycles = 6;

/// The campaign identity of one sequence experiment -- the exact
/// fingerprint its checkpoints are stamped with.  Exposed so the service
/// layer can key its result cache without running the campaign.
[[nodiscard]] CampaignFingerprint sequence_fingerprint(
    const core::InputSequence& sequence,
    const SequenceExperimentConfig& config);

/// Runs the paper's Sec. II-B experiment for one input sequence: the four
/// shares are applied one per cycle in the given order to the registered
/// secAND2 harness, and a fixed-vs-random TVLA is evaluated per cycle.
[[nodiscard]] SequenceLeakResult run_sequence_experiment(
    const core::InputSequence& sequence, const SequenceExperimentConfig& config);

/// Convenience: runs all 24 sequences (one shared harness, one pool).
[[nodiscard]] std::vector<SequenceLeakResult> run_all_sequences(
    const SequenceExperimentConfig& config);

}  // namespace glitchmask::eval
