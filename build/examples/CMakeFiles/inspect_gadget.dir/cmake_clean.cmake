file(REMOVE_RECURSE
  "CMakeFiles/inspect_gadget.dir/inspect_gadget.cpp.o"
  "CMakeFiles/inspect_gadget.dir/inspect_gadget.cpp.o.d"
  "inspect_gadget"
  "inspect_gadget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_gadget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
