// Welch's t-test and its higher-order univariate extensions.
//
// Implements the TVLA statistics of Goodwill et al. (2011) and the
// moment-based higher-order formulation of Schneider & Moradi (CHES
// 2015): at order d the traces are conceptually preprocessed to
// ((x - mu)/sigma)^d (standardized for d >= 3, centered for d = 2) and a
// Welch t-test is applied; both the preprocessed means and variances are
// computed directly from the streaming central moments, so no second pass
// over the traces is needed.
#pragma once

#include "leakage/moments.hpp"

namespace glitchmask::leakage {

/// The commonly applied TVLA decision threshold (paper: red lines at 4.5).
inline constexpr double kTvlaThreshold = 4.5;

/// Welch's t-statistic from summary statistics.  Degenerate inputs --
/// either class with n < 2, zero/negative/non-finite variances, or
/// non-finite means -- return the defined sentinel 0.0 instead of quiet
/// NaN/Inf, so downstream max/threshold logic never sees a poisoned
/// value.
[[nodiscard]] double welch_t(double mean_a, double var_a, double n_a,
                             double mean_b, double var_b, double n_b);

/// Mean of the order-d preprocessed trace, from central moments.
[[nodiscard]] double preprocessed_mean(const MomentAccumulator& acc, int order);

/// Variance of the order-d preprocessed trace, from central moments
/// (requires the accumulator to hold moments up to 2*order).
[[nodiscard]] double preprocessed_variance(const MomentAccumulator& acc, int order);

/// One sample point of a fixed-vs-random test, orders 1..max_order.
class UnivariateTTest {
public:
    /// `max_test_order` in 1..3 (central moments to 2*order are kept).
    explicit UnivariateTTest(int max_test_order = 3);

    void add(bool fixed_class, double x);

    /// Folds a run of same-class samples in order (== repeated add()).
    void add_batch(bool fixed_class, std::span<const double> values);

    /// t-statistic at order `d` (1 <= d <= max_test_order); the sentinel
    /// 0.0 while a class is still empty or degenerate (n < 2, zero
    /// variance) -- never NaN/Inf.
    [[nodiscard]] double t(int order) const;

    [[nodiscard]] double count(bool fixed_class) const;
    [[nodiscard]] const MomentAccumulator& moments(bool fixed_class) const {
        return fixed_class ? fixed_ : random_;
    }

    void merge(const UnivariateTTest& other);
    void reset();

    /// Exact binary serialization of both class accumulators (see
    /// MomentAccumulator::encode).
    void encode(SnapshotWriter& out) const;
    [[nodiscard]] static UnivariateTTest decode(SnapshotReader& in);

    [[nodiscard]] int max_test_order() const noexcept { return max_test_order_; }

private:
    int max_test_order_;
    MomentAccumulator fixed_;
    MomentAccumulator random_;
};

}  // namespace glitchmask::leakage
