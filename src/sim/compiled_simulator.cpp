#include "sim/compiled_simulator.hpp"

#include <algorithm>
#include <bit>
#include <mutex>
#include <stdexcept>

#include "support/simd.hpp"

namespace glitchmask::sim {

// Per-ISA engine factories (sim/compiled_engine_impl.h, one TU each).
namespace engine_portable {
std::unique_ptr<CompiledEngineBase> make_engine(
    std::shared_ptr<const CompiledProgram> program, unsigned chunks);
}
#if defined(GLITCHMASK_HAVE_AVX2)
namespace engine_avx2 {
std::unique_ptr<CompiledEngineBase> make_engine(
    std::shared_ptr<const CompiledProgram> program, unsigned chunks);
}
#endif

namespace {

// ----- program fingerprint ----------------------------------------------

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

inline std::uint64_t fnv_bytes(std::uint64_t h, const void* data,
                               std::size_t n) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) h = (h ^ p[i]) * kFnvPrime;
    return h;
}

template <class T>
inline std::uint64_t fnv_value(std::uint64_t h, const T& v) noexcept {
    return fnv_bytes(h, &v, sizeof(v));
}

std::uint64_t program_key(const netlist::Netlist& nl, const DelayModel& dm,
                          const SimOptions& options) {
    std::uint64_t h = kFnvOffset;
    h = fnv_value(h, nl.size());
    for (CellId id = 0; id < nl.size(); ++id) {
        const netlist::Cell& cell = nl.cell(id);
        h = fnv_value(h, cell.kind);
        h = fnv_value(h, cell.enable);
        h = fnv_value(h, cell.reset);
        h = fnv_value(h, cell.in[0]);
        h = fnv_value(h, cell.in[1]);
        h = fnv_value(h, cell.in[2]);
        h = fnv_value(h, dm.gate_delay(id));
        h = fnv_value(h, dm.wire_delay(id, 0));
        h = fnv_value(h, dm.wire_delay(id, 1));
        h = fnv_value(h, dm.wire_delay(id, 2));
    }
    h = fnv_value(h, dm.clk_to_q());
    h = fnv_value(h, options.inertial_filtering);
    h = fnv_value(h, options.inertial_factor);
    return h;
}

std::shared_ptr<const CompiledProgram> build_program(const netlist::Netlist& nl,
                                                     const DelayModel& dm,
                                                     const SimOptions& options,
                                                     std::uint64_t key) {
    auto prog = std::make_shared<CompiledProgram>();
    CompiledProgram& p = *prog;
    const std::size_t n = nl.size();
    p.key = key;
    p.n_cells = n;
    p.kind.resize(n);
    p.pins.resize(n);
    p.in.assign(n * 3, netlist::kNoNet);
    p.gate_ps.resize(n);
    p.inertial_window.resize(n);
    p.settle_one.assign(n, 0);
    p.fanout_begin.assign(n + 1, 0);
    p.clk_to_q = dm.clk_to_q();
    p.max_ctrl_group = nl.max_ctrl_group();
    p.inertial_filtering = options.inertial_filtering;

    std::uint32_t max_gate = 0;
    std::uint32_t max_wire = 0;
    p.pin_base.assign(n + 1, 0);
    for (CellId id = 0; id < n; ++id) {
        const netlist::Cell& cell = nl.cell(id);
        p.kind[id] = cell.kind;
        const unsigned pins = netlist::pin_count(cell.kind);
        p.pins[id] = static_cast<std::uint8_t>(pins);
        p.pin_base[id + 1] = p.pin_base[id] + pins;
        for (unsigned q = 0; q < pins; ++q) p.in[id * 3 + q] = cell.in[q];
        p.gate_ps[id] = dm.gate_delay(id);
        max_gate = std::max(max_gate, p.gate_ps[id]);
        // Same rounding expression as the event engines so the inertial
        // windows agree bit-for-bit.
        p.inertial_window[id] = static_cast<TimePs>(
            options.inertial_factor * static_cast<double>(dm.gate_delay(id)));
        if (cell.kind == netlist::CellKind::Dff)
            p.flops.push_back({id, cell.enable, cell.reset});

        // All-sources-low steady state in creation order (topological for
        // combinational cells) -- identical to the event engines' settle.
        std::uint8_t one = 0;
        switch (cell.kind) {
            case netlist::CellKind::Input:
            case netlist::CellKind::Dff:
            case netlist::CellKind::Const0:
                one = 0;
                break;
            case netlist::CellKind::Const1:
                one = 1;
                break;
            default: {
                std::uint64_t a = 0, b = 0, c = 0;
                if (pins > 0) a = p.settle_one[cell.in[0]] ? kAllLanes : 0;
                if (pins > 1) b = p.settle_one[cell.in[1]] ? kAllLanes : 0;
                if (pins > 2) c = p.settle_one[cell.in[2]] ? kAllLanes : 0;
                one = netlist::eval_cell_word(cell.kind, a, b, c) != 0 ? 1 : 0;
                break;
            }
        }
        p.settle_one[id] = one;
    }

    for (CellId id = 0; id < n; ++id)
        p.fanout_begin[id + 1] =
            p.fanout_begin[id] +
            static_cast<std::uint32_t>(nl.fanout(id).size());
    p.fanout.resize(p.fanout_begin[n]);
    for (CellId id = 0; id < n; ++id) {
        std::uint32_t out = p.fanout_begin[id];
        for (const netlist::Sink& sink : nl.fanout(id)) {
            const std::uint32_t wire = dm.wire_delay(sink.cell, sink.pin);
            max_wire = std::max(max_wire, wire);
            p.fanout[out++] = {sink.cell, sink.pin, wire};
        }
    }

    // Ring horizon: the longest push offset past `now` is one wire hop
    // plus one gate delay plus the clk-to-Q launch, with generous slack
    // for the monotonic +1 bump chains.  Events past the horizon (never
    // produced by the clocked drivers) fall back to the overflow heap, so
    // correctness does not depend on this value.
    const std::uint64_t span = static_cast<std::uint64_t>(max_wire) +
                               2ull * max_gate + p.clk_to_q + 1024u;
    p.ring_size = std::bit_ceil(std::max<std::uint64_t>(span, 4096u));
    return prog;
}

struct ProgramCache {
    std::mutex mutex;
    std::vector<std::shared_ptr<const CompiledProgram>> entries;  // MRU first
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};

ProgramCache& program_cache() {
    static ProgramCache cache;
    return cache;
}

constexpr std::size_t kProgramCacheCapacity = 8;

}  // namespace

std::shared_ptr<const CompiledProgram> compile_netlist(const netlist::Netlist& nl,
                                                       const DelayModel& dm,
                                                       SimOptions options) {
    if (!nl.frozen())
        throw std::invalid_argument("compile_netlist: netlist not frozen");
    const std::uint64_t key = program_key(nl, dm, options);
    ProgramCache& cache = program_cache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    for (std::size_t i = 0; i < cache.entries.size(); ++i) {
        if (cache.entries[i]->key == key) {
            auto hit = cache.entries[i];
            cache.entries.erase(cache.entries.begin() +
                                static_cast<std::ptrdiff_t>(i));
            cache.entries.insert(cache.entries.begin(), hit);
            ++cache.hits;
            return hit;
        }
    }
    ++cache.misses;
    auto prog = build_program(nl, dm, options, key);
    cache.entries.insert(cache.entries.begin(), prog);
    if (cache.entries.size() > kProgramCacheCapacity)
        cache.entries.resize(kProgramCacheCapacity);
    return prog;
}

CompiledCacheStats compiled_program_cache_stats() {
    ProgramCache& cache = program_cache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    return CompiledCacheStats{cache.hits, cache.misses, cache.entries.size()};
}

void clear_compiled_program_cache() {
    ProgramCache& cache = program_cache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    cache.entries.clear();
    cache.hits = 0;
    cache.misses = 0;
}

// ----- engine dispatch ---------------------------------------------------

std::unique_ptr<CompiledEngineBase> make_compiled_engine(
    std::shared_ptr<const CompiledProgram> program, unsigned chunks) {
#if defined(GLITCHMASK_HAVE_AVX2)
    if (support::active_simd_level() >= support::SimdLevel::kAvx2)
        return engine_avx2::make_engine(std::move(program), chunks);
#endif
    return engine_portable::make_engine(std::move(program), chunks);
}

// ----- CompiledClockedSim ------------------------------------------------

CompiledClockedSim::CompiledClockedSim(const netlist::Netlist& nl,
                                       const DelayModel& dm, unsigned lanes,
                                       ClockConfig clock,
                                       CouplingConfig coupling,
                                       SimOptions options)
    : nl_(nl), clock_(clock) {
    if (coupling.timing_enabled)
        throw std::invalid_argument(
            "CompiledClockedSim: timing coupling makes delays data-dependent; "
            "lanes cannot share a compiled schedule -- use the scalar "
            "EventSimulator");
    if (lanes != 64 && lanes != 128 && lanes != 256 && lanes != 512)
        throw std::invalid_argument(
            "CompiledClockedSim: lanes must be 64, 128, 256 or 512");
    program_ = compile_netlist(nl, dm, options);
    engine_ = make_compiled_engine(program_, lanes / 64u);
    enable_.assign(nl.max_ctrl_group() + 1u, 0);
    reset_.assign(nl.max_ctrl_group() + 1u, 0);
    enable_[netlist::kAlwaysEnabled] = 1;
}

void CompiledClockedSim::set_enable(netlist::CtrlGroup group, bool enabled) {
    if (group == netlist::kAlwaysEnabled)
        throw std::runtime_error("CompiledClockedSim: group 0 is always enabled");
    enable_.at(group) = enabled ? 1 : 0;
}

void CompiledClockedSim::set_reset(netlist::CtrlGroup group, bool asserted) {
    if (group == netlist::kAlwaysEnabled)
        throw std::runtime_error("CompiledClockedSim: group 0 cannot be reset");
    reset_.at(group) = asserted ? 1 : 0;
}

void CompiledClockedSim::set_input_word(NetId input, unsigned chunk,
                                        std::uint64_t values) {
    if (nl_.cell(input).kind != netlist::CellKind::Input)
        throw std::runtime_error(
            "CompiledClockedSim::set_input_word: not a primary input");
    if (chunk >= chunks())
        throw std::invalid_argument(
            "CompiledClockedSim::set_input_word: chunk out of range");
    pending_.push_back({input, static_cast<std::uint8_t>(chunk), values});
}

void CompiledClockedSim::set_input(NetId input, bool value) {
    if (nl_.cell(input).kind != netlist::CellKind::Input)
        throw std::runtime_error(
            "CompiledClockedSim::set_input: not a primary input");
    pending_.push_back({input, 0xFF, value ? kAllLanes : 0});
}

void CompiledClockedSim::step(std::size_t cycles) {
    for (std::size_t n = 0; n < cycles; ++n) {
        const TimePs edge = static_cast<TimePs>(cycle_) * clock_.period_ps;
        engine_->begin_activity_window();
        const TimePs launch = edge + program_->clk_to_q;
        // Flop updates first, pending inputs second: the same seq order
        // as BatchClockedSim::step, so every lane sees the same source
        // events as its scalar run.
        engine_->sample_flops(enable_.data(), reset_.data(), launch);
        for (const PendingInput& input : pending_) {
            if (input.chunk == 0xFF)
                engine_->drive_all(input.net, input.values != 0, launch);
            else
                engine_->drive_chunk(input.net, input.chunk, input.values,
                                     kAllLanes, launch);
        }
        pending_.clear();
        engine_->run_until(edge + clock_.period_ps);
        ++cycle_;
    }
}

void CompiledClockedSim::restart() {
    engine_->initialize();
    enable_.assign(enable_.size(), 0);
    reset_.assign(reset_.size(), 0);
    enable_[netlist::kAlwaysEnabled] = 1;
    pending_.clear();
    cycle_ = 0;
}

}  // namespace glitchmask::sim
