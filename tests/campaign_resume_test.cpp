// End-to-end fault injection for the crash-safe campaign runtime.
//
// The resume contract is *bit-identity*: a campaign killed at any
// checkpoint boundary -- SIGKILL (no cleanup whatsoever) or a cooperative
// SIGINT-style cancel -- and later resumed must produce exactly the
// statistics of an uninterrupted run, at any worker or lane count.  All
// comparisons here are EXPECT_EQ on raw doubles, never EXPECT_NEAR.
//
// The SIGKILL test forks a child that runs the campaign and kills itself
// from the on_checkpoint hook; fork is safe here because campaign thread
// pools are created and joined inside each driver call, so the parent has
// no live threads at fork time.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "des/masked_des.hpp"
#include "eval/campaign.hpp"
#include "eval/des_experiments.hpp"
#include "support/atomic_file.hpp"
#include "support/campaign_error.hpp"
#include "support/cancel.hpp"

namespace glitchmask::eval {
namespace {

std::string temp_snapshot(const std::string& name) {
    const std::string path = ::testing::TempDir() + "glitchmask_" + name;
    std::remove(path.c_str());
    return path;
}

DesTvlaConfig small_campaign(const std::string& checkpoint_path) {
    DesTvlaConfig config;
    config.traces = 96;
    config.seed = 23;
    config.block_size = 8;  // 12 blocks: room for several checkpoints
    config.lanes = 1;       // scalar: cheap and exercises the wrapped path
    config.workers = 2;
    config.run.checkpoint_path = checkpoint_path;
    config.run.checkpoint_every = 2;
    return config;
}

void expect_identical(const DesTvlaResult& a, const DesTvlaResult& b,
                      const std::string& label) {
    EXPECT_EQ(a.toggles, b.toggles) << label;
    for (int order = 1; order <= 3; ++order) {
        const std::vector<double> ta = a.campaign.t_curve(order);
        const std::vector<double> tb = b.campaign.t_curve(order);
        ASSERT_EQ(ta.size(), tb.size()) << label;
        for (std::size_t i = 0; i < ta.size(); ++i)
            EXPECT_EQ(ta[i], tb[i])
                << label << " order " << order << " sample " << i;
    }
}

TEST(CampaignResume, CheckpointedRunMatchesPlainRunBitForBit) {
    const des::MaskedDesCore core(des::MaskedDesOptions{});
    const std::string path = temp_snapshot("plain_vs_ckpt.gmsnap");

    DesTvlaConfig plain = small_campaign("");
    plain.run.checkpoint_every = 0;
    const DesTvlaResult baseline = run_des_tvla(core, plain);

    const DesTvlaConfig checkpointed = small_campaign(path);
    const DesTvlaResult with_snapshots = run_des_tvla(core, checkpointed);

    expect_identical(baseline, with_snapshots, "checkpointed");
    EXPECT_FALSE(with_snapshots.cancelled);
    EXPECT_FALSE(with_snapshots.resumed);
    EXPECT_EQ(with_snapshots.completed_traces, checkpointed.traces);
    std::remove(path.c_str());
}

TEST(CampaignResume, SigkillMidRunThenResumeIsBitIdentical) {
    const des::MaskedDesCore core(des::MaskedDesOptions{});
    const std::string path = temp_snapshot("sigkill.gmsnap");

    DesTvlaConfig plain = small_campaign("");
    const DesTvlaResult baseline = run_des_tvla(core, plain);

    // Resume must be bit-identical regardless of the worker count on
    // either side of the kill.
    for (const unsigned resume_workers : {1u, 4u}) {
        std::remove(path.c_str());
        const pid_t child = fork();
        ASSERT_GE(child, 0) << "fork failed";
        if (child == 0) {
            // Child: run with a hook that SIGKILLs the process after the
            // second checkpoint -- no destructors, no flushes, exactly
            // like an OOM kill or a power cut mid-campaign.
            DesTvlaConfig cfg = small_campaign(path);
            cfg.run.on_checkpoint = [](std::size_t completed_blocks) {
                if (completed_blocks >= 4) ::kill(::getpid(), SIGKILL);
            };
            (void)run_des_tvla(core, cfg);
            ::_exit(0);  // not reached
        }
        int status = 0;
        ASSERT_EQ(::waitpid(child, &status, 0), child);
        ASSERT_TRUE(WIFSIGNALED(status)) << "child exited instead of dying";
        ASSERT_EQ(WTERMSIG(status), SIGKILL);

        // The snapshot left behind must be a valid mid-run checkpoint.
        ASSERT_TRUE(read_file_if_exists(path).has_value());

        DesTvlaConfig resume = small_campaign(path);
        resume.workers = resume_workers;
        const DesTvlaResult resumed = run_des_tvla(core, resume);
        EXPECT_TRUE(resumed.resumed) << resume_workers;
        EXPECT_FALSE(resumed.cancelled) << resume_workers;
        EXPECT_EQ(resumed.completed_traces, resume.traces) << resume_workers;
        expect_identical(baseline, resumed,
                         "resume workers=" + std::to_string(resume_workers));
    }
    std::remove(path.c_str());
}

TEST(CampaignResume, CancelledRunResumesToIdenticalResult) {
    const des::MaskedDesCore core(des::MaskedDesOptions{});
    const std::string path = temp_snapshot("cancel.gmsnap");

    DesTvlaConfig plain = small_campaign("");
    const DesTvlaResult baseline = run_des_tvla(core, plain);

    // Phase 1: cooperative cancel (the SIGINT path routes a signal into
    // exactly this token; tests fire it from the checkpoint hook to make
    // the interruption point deterministic).
    CancelToken token;
    DesTvlaConfig cancelled_cfg = small_campaign(path);
    cancelled_cfg.run.cancel = &token;
    cancelled_cfg.run.on_checkpoint = [&token](std::size_t completed_blocks) {
        if (completed_blocks >= 4) token.request();
    };
    const DesTvlaResult partial = run_des_tvla(core, cancelled_cfg);
    EXPECT_TRUE(partial.cancelled);
    EXPECT_LT(partial.completed_traces, cancelled_cfg.traces);
    EXPECT_GT(partial.completed_traces, 0u);
    // The partial statistics cover exactly the completed prefix.
    EXPECT_EQ(partial.campaign.traces(true) + partial.campaign.traces(false),
              partial.completed_traces);

    // Phase 2: resume without the token -> runs to completion.
    const DesTvlaConfig resume = small_campaign(path);
    const DesTvlaResult resumed = run_des_tvla(core, resume);
    EXPECT_TRUE(resumed.resumed);
    EXPECT_FALSE(resumed.cancelled);
    expect_identical(baseline, resumed, "resume after cancel");
    std::remove(path.c_str());
}

TEST(CampaignResume, SigintViaScopedSignalCancelStopsGracefully) {
    const des::MaskedDesCore core(des::MaskedDesOptions{});
    const std::string path = temp_snapshot("sigint.gmsnap");

    CancelToken token;
    ScopedSignalCancel guard(token);
    DesTvlaConfig cfg = small_campaign(path);
    cfg.run.cancel = &token;
    cfg.run.on_checkpoint = [](std::size_t completed_blocks) {
        if (completed_blocks >= 2) std::raise(SIGINT);  // a real Ctrl-C
    };
    const DesTvlaResult partial = run_des_tvla(core, cfg);
    EXPECT_TRUE(partial.cancelled);
    EXPECT_LT(partial.completed_traces, cfg.traces);
    ASSERT_TRUE(read_file_if_exists(path).has_value());

    // And the interrupted run resumes to the uninterrupted result.
    token.reset();
    DesTvlaConfig plain = small_campaign("");
    const DesTvlaResult baseline = run_des_tvla(core, plain);
    DesTvlaConfig resume = small_campaign(path);
    resume.run.cancel = &token;  // armed but never fired this time
    const DesTvlaResult resumed = run_des_tvla(core, resume);
    EXPECT_TRUE(resumed.resumed);
    expect_identical(baseline, resumed, "resume after SIGINT");
    std::remove(path.c_str());
}

TEST(CampaignResume, ResumeAcrossLaneConfigsIsBitIdentical) {
    // A snapshot written by the scalar engine must seed the bitsliced one
    // (and vice versa): lanes are absent from the fingerprint because the
    // two paths are proven bit-identical.  The backend is pinned: this
    // test is about the event engine's lane axis, and must not flip to
    // the compiled backend (a fingerprint change by design) when the
    // suite runs under GLITCHMASK_BACKEND=compiled.
    const des::MaskedDesCore core(des::MaskedDesOptions{});
    const std::string path = temp_snapshot("lanes.gmsnap");

    DesTvlaConfig plain = small_campaign("");
    plain.run.backend = "event";
    const DesTvlaResult baseline = run_des_tvla(core, plain);

    CancelToken token;
    DesTvlaConfig scalar_cfg = small_campaign(path);
    scalar_cfg.run.backend = "event";
    scalar_cfg.lanes = 1;
    scalar_cfg.run.cancel = &token;
    scalar_cfg.run.on_checkpoint = [&token](std::size_t completed_blocks) {
        if (completed_blocks >= 4) token.request();
    };
    const DesTvlaResult partial = run_des_tvla(core, scalar_cfg);
    ASSERT_TRUE(partial.cancelled);

    DesTvlaConfig batch_resume = small_campaign(path);
    batch_resume.run.backend = "event";
    batch_resume.lanes = 64;
    const DesTvlaResult resumed = run_des_tvla(core, batch_resume);
    EXPECT_TRUE(resumed.resumed);
    expect_identical(baseline, resumed, "scalar snapshot, bitsliced resume");
    std::remove(path.c_str());
}

TEST(CampaignResume, CorruptSnapshotIsRejectedNeverReadAsData) {
    const des::MaskedDesCore core(des::MaskedDesOptions{});
    const std::string path = temp_snapshot("corrupt.gmsnap");

    // Produce a genuine mid-run snapshot.
    CancelToken token;
    DesTvlaConfig cfg = small_campaign(path);
    cfg.run.cancel = &token;
    cfg.run.on_checkpoint = [&token](std::size_t completed_blocks) {
        if (completed_blocks >= 4) token.request();
    };
    (void)run_des_tvla(core, cfg);
    auto bytes = read_file_if_exists(path);
    ASSERT_TRUE(bytes.has_value());

    // Bit flip in the middle of the accumulator payload.
    std::vector<std::uint8_t> flipped = *bytes;
    flipped[flipped.size() / 2] ^= 0x01;
    atomic_write_file(path, flipped);
    try {
        (void)run_des_tvla(core, small_campaign(path));
        FAIL() << "bit-flipped snapshot was accepted";
    } catch (const CampaignError& e) {
        EXPECT_EQ(e.kind(), CampaignErrorKind::CorruptSnapshot);
    }

    // Truncation (torn write simulated past the atomic-rename guarantee).
    std::vector<std::uint8_t> truncated(*bytes);
    truncated.resize(truncated.size() / 2);
    atomic_write_file(path, truncated);
    try {
        (void)run_des_tvla(core, small_campaign(path));
        FAIL() << "truncated snapshot was accepted";
    } catch (const CampaignError& e) {
        EXPECT_EQ(e.kind(), CampaignErrorKind::CorruptSnapshot);
    }
    std::remove(path.c_str());
}

TEST(CampaignResume, ConfigMismatchOnResumeNamesTheField) {
    const des::MaskedDesCore core(des::MaskedDesOptions{});
    const std::string path = temp_snapshot("mismatch.gmsnap");

    CancelToken token;
    DesTvlaConfig cfg = small_campaign(path);
    cfg.run.cancel = &token;
    cfg.run.on_checkpoint = [&token](std::size_t completed_blocks) {
        if (completed_blocks >= 2) token.request();
    };
    (void)run_des_tvla(core, cfg);
    ASSERT_TRUE(read_file_if_exists(path).has_value());

    DesTvlaConfig other_seed = small_campaign(path);
    other_seed.seed = 999;
    try {
        (void)run_des_tvla(core, other_seed);
        FAIL() << "seed mismatch accepted on resume";
    } catch (const CampaignError& e) {
        EXPECT_EQ(e.kind(), CampaignErrorKind::ConfigMismatch);
        EXPECT_NE(std::string(e.what()).find("seed"), std::string::npos);
    }

    DesTvlaConfig other_noise = small_campaign(path);
    other_noise.noise_sigma = 2.5;  // folded into the payload hash
    try {
        (void)run_des_tvla(core, other_noise);
        FAIL() << "noise mismatch accepted on resume";
    } catch (const CampaignError& e) {
        EXPECT_EQ(e.kind(), CampaignErrorKind::ConfigMismatch);
    }
    std::remove(path.c_str());
}

TEST(CampaignResume, MeanPowerTraceCheckpointAndResume) {
    const des::MaskedDesCore core(des::MaskedDesOptions{});
    const std::string path = temp_snapshot("mean_power.gmsnap");

    const std::vector<double> baseline =
        mean_power_trace(core, /*traces=*/192, /*seed=*/5);

    CancelToken token;
    CampaignRunOptions run;
    run.checkpoint_path = path;
    run.checkpoint_every = 1;
    run.cancel = &token;
    run.on_checkpoint = [&token](std::size_t completed_blocks) {
        if (completed_blocks >= 1) token.request();
    };
    CampaignProgress progress;
    // workers=1 keeps the wave at 2 blocks, so the cancel lands mid-run
    // (192 traces = 3 blocks of 64).
    const std::vector<double> partial =
        mean_power_trace(core, 192, 5, 1, /*workers=*/1, 0, run, &progress);
    EXPECT_TRUE(progress.cancelled);
    EXPECT_LT(progress.completed_traces, 192u);
    EXPECT_EQ(partial.size(), baseline.size());  // still a full-width trace

    CampaignRunOptions resume;
    resume.checkpoint_path = path;
    CampaignProgress resumed_progress;
    const std::vector<double> resumed =
        mean_power_trace(core, 192, 5, 1, 2, 0, resume, &resumed_progress);
    EXPECT_TRUE(resumed_progress.resumed);
    ASSERT_EQ(resumed.size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i)
        EXPECT_EQ(resumed[i], baseline[i]) << "sample " << i;
    std::remove(path.c_str());
}

TEST(CampaignResume, SequenceExperimentCheckpointAndResume) {
    const core::InputSequence sequence{core::ShareId::Y0, core::ShareId::X1,
                                       core::ShareId::Y1, core::ShareId::X0};
    SequenceExperimentConfig config;
    config.replicas = 2;
    config.traces = 256;
    config.seed = 42;
    config.block_size = 16;
    config.workers = 2;

    const SequenceLeakResult baseline =
        run_sequence_experiment(sequence, config);
    EXPECT_EQ(baseline.completed_traces, config.traces);

    const std::string path = temp_snapshot("sequence.gmsnap");
    CancelToken token;
    SequenceExperimentConfig interrupted = config;
    interrupted.run.checkpoint_path = path;
    interrupted.run.checkpoint_every = 2;
    interrupted.run.cancel = &token;
    interrupted.run.on_checkpoint = [&token](std::size_t completed_blocks) {
        if (completed_blocks >= 4) token.request();
    };
    const SequenceLeakResult partial =
        run_sequence_experiment(sequence, interrupted);
    EXPECT_TRUE(partial.cancelled);
    EXPECT_LT(partial.completed_traces, config.traces);

    SequenceExperimentConfig resume = config;
    resume.run.checkpoint_path = path;
    const SequenceLeakResult resumed =
        run_sequence_experiment(sequence, resume);
    EXPECT_TRUE(resumed.resumed);
    EXPECT_EQ(resumed.max_abs_t1, baseline.max_abs_t1);
    EXPECT_EQ(resumed.max_abs_t2, baseline.max_abs_t2);
    EXPECT_EQ(resumed.argmax_cycle, baseline.argmax_cycle);
    std::remove(path.c_str());
}

TEST(CampaignValidation, RejectsDegenerateConfigsNamingTheField) {
    const des::MaskedDesCore core(des::MaskedDesOptions{});

    DesTvlaConfig zero_traces;
    zero_traces.traces = 0;
    try {
        (void)run_des_tvla(core, zero_traces);
        FAIL() << "traces=0 accepted";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("traces"), std::string::npos);
    }

    DesTvlaConfig zero_block;
    zero_block.traces = 8;
    zero_block.block_size = 0;
    try {
        (void)run_des_tvla(core, zero_block);
        FAIL() << "block_size=0 accepted";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("block_size"), std::string::npos);
    }

    DesTvlaConfig bad_lanes;
    bad_lanes.traces = 8;
    bad_lanes.lanes = 7;
    try {
        (void)run_des_tvla(core, bad_lanes);
        FAIL() << "lanes=7 accepted";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("lanes"), std::string::npos);
    }

    EXPECT_THROW(validate_campaign_config(0, 64, 0), std::invalid_argument);
    EXPECT_THROW(validate_campaign_config(10, 0, 0), std::invalid_argument);
    EXPECT_THROW(validate_campaign_config(10, 64, 2), std::invalid_argument);
    EXPECT_NO_THROW(validate_campaign_config(10, 64, 0));
    EXPECT_NO_THROW(validate_campaign_config(10, 64, 1));
    EXPECT_NO_THROW(validate_campaign_config(10, 64, 64));
}

}  // namespace
}  // namespace glitchmask::eval
