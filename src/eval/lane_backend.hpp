// Campaign-side seam between the lane-parallel simulation backends.
//
// The campaign drivers (eval/campaign.cpp, eval/gadget_tvla.cpp,
// eval/des_experiments.cpp) run their lane-parallel block bodies against a
// uniform "chunked sim" API so one generic body serves both backends:
//
//   * EventLaneSim  -- BatchClockedSim behind the chunked API, one 64-lane
//     chunk (the PR-2 bitsliced engine, byte-identical results);
//   * sim::CompiledClockedSim -- the compiled wide-lane engine, 1..8
//     chunks (64..512 traces per pass), program shared through the
//     process-wide LRU cache.
//
// LaneWorker bundles a chunked sim with its per-chunk sinks (one
// BatchPowerRecorder per chunk, optionally one BatchAttributionProbe per
// chunk) exactly as the drivers previously wired the 64-lane engine.
// Chunk c covers lanes [64c, 64c+64) == traces group+64c .. group+64c+63,
// so folding chunk-by-chunk in chunk order feeds the accumulators in
// trace order -- the same add_lane_traces / fold_group call sequence as
// the event path, hence bit-identical campaign statistics.
//
// resolve_backend_plan() owns the policy: CampaignRunOptions::backend
// beats GLITCHMASK_BACKEND beats "event"; timing coupling always forces
// the scalar path; compiled lane width defaults to 512 and is clamped to
// {64,128,256,512}.  The backend (not the width) folds into the campaign
// fingerprint, so checkpoints refuse to resume across a backend switch.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "eval/checkpoint.hpp"
#include "leakage/attribution.hpp"
#include "netlist/netlist.hpp"
#include "power/batch_power.hpp"
#include "sim/batch_simulator.hpp"
#include "sim/compiled_simulator.hpp"
#include "support/telemetry.hpp"

namespace glitchmask::eval {

enum class SimBackend { Event, Compiled };

[[nodiscard]] const char* backend_name(SimBackend backend) noexcept;

struct BackendPlan {
    SimBackend backend = SimBackend::Event;
    /// Traces per pass: 1 = scalar event path, 64 = bitsliced event, up
    /// to 512 for the compiled backend.
    unsigned lanes = 64;

    [[nodiscard]] bool scalar() const noexcept { return lanes == 1; }
    [[nodiscard]] unsigned chunks() const noexcept { return lanes / 64u; }
};

/// Resolves (backend, lanes) for one campaign.  `configured_lanes` is the
/// config's lanes knob (0 = auto).  `netlist_nets` sizes the compiled
/// engine's per-lane state for GLITCHMASK_COMPILED_LANES=auto, which
/// picks the widest lane count whose working set still fits the cache
/// (0 = unknown, auto then falls back to the 512 default).  Throws
/// std::invalid_argument for an unknown backend name or a lane width the
/// backend cannot serve.
[[nodiscard]] BackendPlan resolve_backend_plan(const CampaignRunOptions& run,
                                               unsigned configured_lanes,
                                               bool timing_coupling,
                                               std::size_t netlist_nets = 0);

/// Folds the backend choice into the snapshot identity.  The event
/// backend folds nothing (pre-existing checkpoints stay valid); the
/// compiled backend folds a tag so event<->compiled resume mismatches.
/// Lane width is never folded: results are width-invariant.
void fold_backend_fingerprint(CampaignFingerprint& fingerprint,
                              const BackendPlan& plan);

/// BatchClockedSim behind the chunked-sim API (chunks() == 1).  Thin
/// forwarding only -- the event path's call sequence (and therefore its
/// results) is unchanged.
class EventLaneSim {
public:
    EventLaneSim(const netlist::Netlist& nl, const sim::DelayModel& dm,
                 sim::ClockConfig clock = {}, sim::CouplingConfig coupling = {},
                 sim::SimOptions options = {})
        : sim_(nl, dm, clock, coupling, options) {}

    [[nodiscard]] unsigned chunks() const noexcept { return 1; }

    void restart() { sim_.restart(); }
    void set_enable(netlist::CtrlGroup group, bool enabled) {
        sim_.set_enable(group, enabled);
    }
    void set_reset(netlist::CtrlGroup group, bool asserted) {
        sim_.set_reset(group, asserted);
    }
    void set_input(netlist::NetId input, bool value) {
        sim_.set_input(input, value);
    }
    void set_input_word(netlist::NetId input, unsigned /*chunk*/,
                        std::uint64_t values) {
        sim_.set_input_word(input, values);
    }
    void step(std::size_t cycles = 1) { sim_.step(cycles); }

    [[nodiscard]] std::uint64_t word(netlist::NetId net,
                                     unsigned /*chunk*/ = 0) const {
        return sim_.word(net);
    }
    [[nodiscard]] sim::TimePs period() const noexcept { return sim_.period(); }

    void set_sink(unsigned /*chunk*/, sim::BatchToggleSink* sink) {
        sim_.engine().set_sink(sink);
    }
    [[nodiscard]] const sim::BatchWordView* chunk_view(unsigned /*chunk*/) const {
        return &sim_.engine();
    }
    [[nodiscard]] telemetry::SimStats stats() const noexcept {
        return sim_.engine().stats();
    }

    [[nodiscard]] sim::BatchClockedSim& base() noexcept { return sim_; }

private:
    sim::BatchClockedSim sim_;
};

/// One campaign worker's lane-parallel replica: a chunked sim plus its
/// per-chunk sink chain.  Construct in place (make_unique) and call
/// attach_sinks() once -- the sink registrations hold pointers into the
/// recorder/probe vectors, which are reserved up front and never move.
template <class SimT>
struct LaneWorker {
    SimT sim;
    std::vector<power::BatchPowerRecorder> recorders;      // one per chunk
    std::vector<leakage::BatchAttributionProbe> probes;    // one per chunk
    std::vector<double> noisy;
    telemetry::SimStats last_stats{};

    template <class... Args>
    explicit LaneWorker(Args&&... args) : sim(std::forward<Args>(args)...) {}

    void attach_sinks(const netlist::Netlist& nl,
                      const power::PowerConfig& power_config,
                      const leakage::AttributionPlan* attribution) {
        const unsigned n = sim.chunks();
        recorders.reserve(n);
        probes.reserve(n);
        for (unsigned c = 0; c < n; ++c) {
            recorders.emplace_back(nl, power_config);
            recorders.back().attach(sim.chunk_view(c));
        }
        for (unsigned c = 0; c < n; ++c) {
            if (attribution != nullptr) {
                probes.emplace_back(*attribution, &recorders[c]);
                sim.set_sink(c, &probes[c]);
            } else {
                sim.set_sink(c, &recorders[c]);
            }
        }
    }

    [[nodiscard]] unsigned chunks() const noexcept { return sim.chunks(); }
    /// Traces simulated per pass (the drivers' group stride).
    [[nodiscard]] unsigned group_lanes() const noexcept {
        return sim.chunks() * 64u;
    }

    /// Arms every chunk's recorder (and probe) for the next group.
    /// Arms recorders and (when attribution is on) the per-chunk probes.
    /// `fixed` points at chunks() per-chunk class masks, `count` is the
    /// number of live lanes in the group, and `attr` -- which must
    /// outlive the group -- receives the probes' window subtotals
    /// incrementally while the pass runs (exact integer sums, so the
    /// chunk-interleaved order is bit-identical to the scalar fold).
    void begin_group(std::size_t bins, const std::uint64_t* fixed = nullptr,
                     unsigned count = 0,
                     leakage::AttributionAccumulator* attr = nullptr) {
        for (auto& recorder : recorders) recorder.begin_trace(bins);
        if (attr == nullptr) return;
        for (unsigned c = 0; c < probes.size(); ++c) {
            const unsigned cnt =
                count > c * 64u ? std::min(64u, count - c * 64u) : 0u;
            probes[c].begin_group(fixed != nullptr ? fixed[c] : 0u, cnt,
                                  *attr);
        }
    }

    /// Spills the probes' staged block subtotals; call once after the
    /// last group of each block (before the block accumulator is read).
    void finish_block() {
        for (auto& probe : probes) probe.spill_block();
    }

    [[nodiscard]] double sample(std::size_t bin, unsigned lane) const noexcept {
        return recorders[lane / 64u].sample(bin, lane % 64u);
    }
    [[nodiscard]] std::uint64_t lane_toggles(unsigned lane) const noexcept {
        return recorders[lane / 64u].lane_toggles(lane % 64u);
    }
    /// One lane's complete trace plus Gaussian noise into `out` -- the
    /// fused statistics path hands this row straight to MomentBank
    /// without materializing the whole noisy batch matrix.
    void noisy_row(unsigned lane, Xoshiro256& rng, double sigma,
                   std::vector<double>& out) const {
        recorders[lane / 64u].noisy_lane_trace_into(lane % 64u, rng, sigma,
                                                    out);
    }
};

}  // namespace glitchmask::eval
