// The deterministic fault-injection layer (support/fault.hpp), the typed
// retry ladder (support/retry.hpp), and the hardened atomic-file paths
// they were built to exercise.
//
// Robustness code that never runs is speculation; these tests drive every
// failure path on purpose: simulated EINTR storms must be absorbed
// silently, ENOSPC must surface as a typed CampaignError{IoFailure}
// naming the path, injected payload corruption must be caught by the
// snapshot CRC, and the temp file must never outlive a failed write.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <string>
#include <vector>

#include "support/atomic_file.hpp"
#include "support/campaign_error.hpp"
#include "support/cancel.hpp"
#include "support/fault.hpp"
#include "support/retry.hpp"

namespace glitchmask {
namespace {

/// Every test leaves the process fault-free, even on assertion failure.
class FaultInjectionTest : public ::testing::Test {
protected:
    void TearDown() override { fault::clear(); }

    static std::string temp_path(const std::string& name) {
        const std::string path = ::testing::TempDir() + "glitchmask_" + name;
        std::remove(path.c_str());
        return path;
    }

    static std::vector<std::uint8_t> bytes(const std::string& text) {
        return {text.begin(), text.end()};
    }

    static bool file_exists(const std::string& path) {
        return read_file_if_exists(path).has_value();
    }
};

// ----- plan grammar ------------------------------------------------------

TEST_F(FaultInjectionTest, ParsesFullSpecGrammar) {
    const fault::FaultPlan plan = fault::parse_fault_plan(
        "seed=7;atomic_file.write=enospc@after=2,count=1;"
        "campaign.block=stall@ms=40,every=5;io.*=eintr@p=0.5");
    EXPECT_EQ(plan.seed, 7u);
    ASSERT_EQ(plan.specs.size(), 3u);
    EXPECT_EQ(plan.specs[0].site, "atomic_file.write");
    EXPECT_EQ(plan.specs[0].kind, fault::FaultKind::IoError);
    EXPECT_EQ(plan.specs[0].error_number, ENOSPC);
    EXPECT_EQ(plan.specs[0].after, 2u);
    EXPECT_EQ(plan.specs[0].count, 1u);
    EXPECT_EQ(plan.specs[1].kind, fault::FaultKind::Stall);
    EXPECT_EQ(plan.specs[1].stall_ms, 40u);
    EXPECT_EQ(plan.specs[1].every, 5u);
    EXPECT_EQ(plan.specs[2].site, "io.*");
    EXPECT_EQ(plan.specs[2].probability, 0.5);
}

TEST_F(FaultInjectionTest, RejectsMalformedClauses) {
    EXPECT_THROW((void)fault::parse_fault_plan("nonsense"),
                 std::invalid_argument);
    EXPECT_THROW((void)fault::parse_fault_plan("site=badkind"),
                 std::invalid_argument);
    EXPECT_THROW((void)fault::parse_fault_plan("site=eio@bogus=1"),
                 std::invalid_argument);
    EXPECT_THROW((void)fault::parse_fault_plan("site=eio@every=0"),
                 std::invalid_argument);
    EXPECT_THROW((void)fault::parse_fault_plan("site=corrupt@p=1.5"),
                 std::invalid_argument);
}

// ----- site semantics ----------------------------------------------------

TEST_F(FaultInjectionTest, NoPlanMeansNoFaultsAndNoCost) {
    EXPECT_FALSE(fault::active());
    EXPECT_EQ(fault::inject_errno("anything"), 0);
    EXPECT_EQ(fault::total_fires(), 0u);
}

TEST_F(FaultInjectionTest, AfterCountEveryScheduleIsExact) {
    fault::install(
        fault::parse_fault_plan("s=eio@after=2,every=2,count=3"));
    // Hits:   1 2 3 4 5 6 7 8 9 10 ...
    // Armed:      1 2 3 4 5 6 7  8
    // Fires:        ^   ^   ^          (every 2nd armed, max 3)
    std::vector<int> fired;
    for (int hit = 1; hit <= 12; ++hit)
        if (fault::inject_errno("s") != 0) fired.push_back(hit);
    EXPECT_EQ(fired, (std::vector<int>{4, 6, 8}));
    const std::vector<fault::SiteStats> stats = fault::stats();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].hits, 12u);
    EXPECT_EQ(stats[0].fires, 3u);
}

TEST_F(FaultInjectionTest, BernoulliScheduleIsDeterministic) {
    const auto run_schedule = [] {
        fault::install(fault::parse_fault_plan("seed=11;s=eio@p=0.3"));
        std::vector<int> fired;
        for (int hit = 1; hit <= 200; ++hit)
            if (fault::inject_errno("s") != 0) fired.push_back(hit);
        return fired;
    };
    const std::vector<int> first = run_schedule();
    const std::vector<int> second = run_schedule();
    EXPECT_EQ(first, second);
    EXPECT_FALSE(first.empty());
    EXPECT_LT(first.size(), 120u);  // ~60 expected at p=0.3
}

TEST_F(FaultInjectionTest, PrefixSitePatternMatches) {
    fault::install(fault::parse_fault_plan("atomic_file.*=eintr"));
    EXPECT_EQ(fault::inject_errno("atomic_file.write"), EINTR);
    EXPECT_EQ(fault::inject_errno("atomic_file.fsync"), EINTR);
    EXPECT_EQ(fault::inject_errno("checkpoint.write"), 0);
}

TEST_F(FaultInjectionTest, KindFamiliesDoNotConsumeEachOther) {
    // One site, two specs of different families: an errno consultation
    // must not burn the corrupt spec's budget or vice versa.
    fault::install(
        fault::parse_fault_plan("s=eio@count=1;s=corrupt@count=1"));
    EXPECT_EQ(fault::inject_errno("s"), EIO);
    std::vector<std::uint8_t> buffer(16, 0);
    EXPECT_TRUE(fault::inject_corrupt("s", buffer));
    int changed = 0;
    for (const std::uint8_t byte : buffer) changed += byte != 0;
    EXPECT_EQ(changed, 1);  // exactly one byte flipped
}

TEST_F(FaultInjectionTest, OomPointThrowsBadAlloc) {
    fault::install(fault::parse_fault_plan("p=oom@count=1"));
    EXPECT_THROW(fault::inject_point("p"), std::bad_alloc);
    fault::inject_point("p");  // budget exhausted: no-op
}

// ----- errno classification and retry ladder -----------------------------

TEST_F(FaultInjectionTest, ErrnoTransientClassification) {
    EXPECT_TRUE(errno_transient(EINTR));
    EXPECT_TRUE(errno_transient(EAGAIN));
    EXPECT_TRUE(errno_transient(EIO));
    EXPECT_TRUE(errno_transient(EBUSY));
    EXPECT_FALSE(errno_transient(ENOSPC));
    EXPECT_FALSE(errno_transient(EROFS));
    EXPECT_FALSE(errno_transient(EACCES));
    EXPECT_FALSE(errno_transient(ENOENT));
    EXPECT_FALSE(errno_transient(0));
}

TEST_F(FaultInjectionTest, RetryIoRetriesTransientThenSucceeds) {
    RetryPolicy policy;
    policy.initial_backoff_ms = 1;
    int calls = 0;
    int retries = 0;
    retry_io(
        policy,
        [&] {
            if (++calls < 3)
                throw CampaignError(CampaignErrorKind::IoFailure,
                                    "transient", EIO);
        },
        nullptr, [&](unsigned, const CampaignError&) { ++retries; });
    EXPECT_EQ(calls, 3);
    EXPECT_EQ(retries, 2);
}

TEST_F(FaultInjectionTest, RetryIoNeverRetriesPermanentErrno) {
    RetryPolicy policy;
    policy.initial_backoff_ms = 1;
    int calls = 0;
    EXPECT_THROW(retry_io(policy,
                          [&] {
                              ++calls;
                              throw CampaignError(
                                  CampaignErrorKind::IoFailure,
                                  "disk full", ENOSPC);
                          }),
                 CampaignError);
    EXPECT_EQ(calls, 1);
}

TEST_F(FaultInjectionTest, RetryIoExhaustsAttemptsAndRethrows) {
    RetryPolicy policy;
    policy.max_attempts = 3;
    policy.initial_backoff_ms = 1;
    int calls = 0;
    try {
        retry_io(policy, [&] {
            ++calls;
            throw CampaignError(CampaignErrorKind::IoFailure, "flaky", EIO);
        });
        FAIL() << "expected CampaignError";
    } catch (const CampaignError& error) {
        EXPECT_EQ(error.kind(), CampaignErrorKind::IoFailure);
        EXPECT_EQ(error.error_number(), EIO);
    }
    EXPECT_EQ(calls, 3);
}

TEST_F(FaultInjectionTest, RetryIoStopsOnCancellation) {
    RetryPolicy policy;
    policy.max_attempts = 100;
    policy.initial_backoff_ms = 5;
    CancelToken cancel;
    cancel.request();
    int calls = 0;
    EXPECT_THROW(
        retry_io(policy,
                 [&] {
                     ++calls;
                     throw CampaignError(CampaignErrorKind::IoFailure,
                                         "flaky", EIO);
                 },
                 &cancel),
        CampaignError);
    EXPECT_EQ(calls, 1);  // backoff aborted immediately
}

// ----- hardened atomic_file ----------------------------------------------

TEST_F(FaultInjectionTest, AtomicWriteAbsorbsEintrStorm) {
    // Interrupt open, write and fsync several times each: the EINTR
    // retry loops must land the file intact anyway.
    fault::install(fault::parse_fault_plan(
        "atomic_file.open=eintr@count=2;atomic_file.write=eintr@count=3;"
        "atomic_file.fsync=eintr@count=2"));
    const std::string path = temp_path("eintr.bin");
    atomic_write_file(path, bytes("storm-survivor"));
    const auto readback = read_file_if_exists(path);
    ASSERT_TRUE(readback.has_value());
    EXPECT_EQ(*readback, bytes("storm-survivor"));
    EXPECT_GE(fault::total_fires(), 7u);
    std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, EnospcIsTypedAndNamesThePath) {
    fault::install(fault::parse_fault_plan("atomic_file.write=enospc"));
    const std::string path = temp_path("enospc.bin");
    try {
        atomic_write_file(path, bytes("doomed"));
        FAIL() << "expected CampaignError";
    } catch (const CampaignError& error) {
        EXPECT_EQ(error.kind(), CampaignErrorKind::IoFailure);
        EXPECT_EQ(error.error_number(), ENOSPC);
        EXPECT_NE(std::string(error.what()).find(path), std::string::npos)
            << error.what();
    }
    // No debris: neither the target nor the temp file may exist.
    fault::clear();
    EXPECT_FALSE(file_exists(path));
    EXPECT_FALSE(file_exists(path + ".tmp"));
}

TEST_F(FaultInjectionTest, FailedWriteLeavesPreviousFileIntact) {
    const std::string path = temp_path("keep_old.bin");
    atomic_write_file(path, bytes("old-generation"));
    fault::install(fault::parse_fault_plan("atomic_file.fsync=enospc"));
    EXPECT_THROW(atomic_write_file(path, bytes("new-generation")),
                 CampaignError);
    fault::clear();
    const auto readback = read_file_if_exists(path);
    ASSERT_TRUE(readback.has_value());
    EXPECT_EQ(*readback, bytes("old-generation"));
    EXPECT_FALSE(file_exists(path + ".tmp"));
    std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, RenameFailureUnlinksTempFile) {
    fault::install(fault::parse_fault_plan("atomic_file.rename=eio"));
    const std::string path = temp_path("rename_fail.bin");
    EXPECT_THROW(atomic_write_file(path, bytes("lost")), CampaignError);
    fault::clear();
    EXPECT_FALSE(file_exists(path));
    EXPECT_FALSE(file_exists(path + ".tmp"));
}

TEST_F(FaultInjectionTest, InjectedCorruptionChangesExactlyOneByte) {
    fault::install(
        fault::parse_fault_plan("atomic_file.payload=corrupt@count=1"));
    const std::string path = temp_path("corrupt.bin");
    const std::vector<std::uint8_t> payload(64, 0x11);
    atomic_write_file(path, payload);
    fault::clear();
    const auto readback = read_file_if_exists(path);
    ASSERT_TRUE(readback.has_value());
    ASSERT_EQ(readback->size(), payload.size());
    int changed = 0;
    for (std::size_t i = 0; i < payload.size(); ++i)
        changed += (*readback)[i] != payload[i];
    EXPECT_EQ(changed, 1);
    std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, ReadFailuresAreTypedToo) {
    const std::string path = temp_path("read_eio.bin");
    atomic_write_file(path, bytes("payload"));
    fault::install(fault::parse_fault_plan("atomic_file.read=eio"));
    try {
        (void)read_file_if_exists(path);
        FAIL() << "expected CampaignError";
    } catch (const CampaignError& error) {
        EXPECT_EQ(error.kind(), CampaignErrorKind::IoFailure);
        EXPECT_EQ(error.error_number(), EIO);
    }
    fault::clear();
    std::remove(path.c_str());
}

}  // namespace
}  // namespace glitchmask
