# Empty dependencies file for table2_products.
# This may be replaced when dependencies are built.
