#include "support/cancel.hpp"

#include <csignal>
#include <stdexcept>

namespace glitchmask {

namespace {

// One global slot: signal handlers cannot carry state, so the installed
// handler reads the token through this pointer.  Writes happen only from
// ScopedSignalCancel's constructor/destructor (normal context); the
// handler only loads.
std::atomic<CancelToken*> g_signal_token{nullptr};

struct sigaction g_old_int;
struct sigaction g_old_term;

void on_signal(int) {
    if (CancelToken* token = g_signal_token.load(std::memory_order_relaxed))
        token->request();
}

}  // namespace

ScopedSignalCancel::ScopedSignalCancel(CancelToken& token) {
    CancelToken* expected = nullptr;
    if (!g_signal_token.compare_exchange_strong(expected, &token))
        throw std::logic_error(
            "ScopedSignalCancel: another instance is already installed");
    struct sigaction action = {};
    action.sa_handler = on_signal;
    sigemptyset(&action.sa_mask);
    // SA_RESTART: checkpoint writes in progress are not interrupted; the
    // campaign notices the token at its next block boundary instead.
    action.sa_flags = SA_RESTART;
    sigaction(SIGINT, &action, &g_old_int);
    sigaction(SIGTERM, &action, &g_old_term);
}

ScopedSignalCancel::~ScopedSignalCancel() {
    sigaction(SIGINT, &g_old_int, nullptr);
    sigaction(SIGTERM, &g_old_term, nullptr);
    g_signal_token.store(nullptr, std::memory_order_relaxed);
}

}  // namespace glitchmask
