// Campaign checkpoint framing: identity fingerprint, policy, and the
// versioned snapshot file layout.
//
// A checkpoint stores the campaign's *merge frontier*: the stack of
// partial subtree accumulators the index-ordered pairwise reduction has
// built so far (see parallel_campaign.hpp -- the stack reproduces the
// fixed merge tree exactly), plus the number of contiguously completed
// blocks.  Because PR 1's counter-based per-trace RNG makes every block a
// pure function of (seed, block index), resuming from the frontier is
// bit-identical to an uninterrupted run at any worker or lane count.
//
// File layout (all little-endian, support/snapshot.hpp primitives):
//
//   u32 magic   'GMSN'            u32 version  (1)
//   u64 kind    u64 seed  u64 traces  u64 block_size  u64 payload_hash
//   u64 completed_blocks
//   u64 stack_entries
//   per entry: u64 blocks_spanned, then the accumulator payload
//   u32 CRC-32 over everything above (appended by SnapshotWriter::finish)
//
// The five fingerprint words identify the campaign; workers and lanes are
// deliberately absent (results are bit-identical across both), while
// anything that changes the stimulus, the noise, or the statistics --
// seed, trace budget, block plan, and the driver-specific payload hash --
// is load-bearing.  A mismatch on resume throws
// CampaignError{ConfigMismatch} naming the offending field.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "support/cancel.hpp"
#include "support/retry.hpp"
#include "support/snapshot.hpp"
#include "support/telemetry.hpp"

namespace glitchmask::eval {

inline constexpr std::uint32_t kSnapshotMagic = 0x4E534D47u;  // "GMSN"
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// FNV-1a accumulation over 64-bit words; drivers fold every
/// campaign-defining config field into the fingerprint's payload hash.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::uint64_t hash,
                                              std::uint64_t word) noexcept {
    for (int i = 0; i < 8; ++i) {
        hash ^= (word >> (8 * i)) & 0xFFu;
        hash *= 0x100000001B3ULL;
    }
    return hash;
}

inline constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;

/// Hash of a short tag string (campaign kind names).
[[nodiscard]] constexpr std::uint64_t fnv1a64_tag(const char* tag) noexcept {
    std::uint64_t hash = kFnvOffset;
    for (; *tag != '\0'; ++tag) {
        hash ^= static_cast<std::uint8_t>(*tag);
        hash *= 0x100000001B3ULL;
    }
    return hash;
}

/// The workers/lanes-independent identity of a campaign.  Two campaigns
/// with equal fingerprints produce bit-identical statistics, so a
/// snapshot written by one may seed the other.
struct CampaignFingerprint {
    std::uint64_t kind = 0;        // driver tag (fnv1a64_tag of its name)
    std::uint64_t seed = 0;
    std::uint64_t traces = 0;
    std::uint64_t block_size = 0;
    std::uint64_t payload = 0;     // hash of the remaining config fields

    friend bool operator==(const CampaignFingerprint&,
                           const CampaignFingerprint&) = default;
};

/// Throws CampaignError{ConfigMismatch} naming the first differing field.
void require_fingerprint_match(const CampaignFingerprint& expected,
                               const CampaignFingerprint& stored);

/// User-facing knobs for the crash-safe runtime, embedded in every
/// driver config.
struct CampaignRunOptions {
    /// Explicit snapshot file.  Empty: derived as
    /// $GLITCHMASK_CHECKPOINT_DIR/<campaign_id>.gmsnap when the env var
    /// is set, otherwise checkpointing is off.
    std::string checkpoint_path;
    /// Filename stem under GLITCHMASK_CHECKPOINT_DIR; empty = the
    /// driver's default id ("des_tvla", "mean_power", "seq_<n>").
    std::string campaign_id;
    /// Blocks between checkpoints; 0 = default (16).  Durability
    /// granularity only -- the merge frontier makes results independent
    /// of the checkpoint cadence.
    std::size_t checkpoint_every = 0;
    /// Cooperative cancellation; in-flight blocks finish, a final
    /// checkpoint is written, and a partial result is returned.
    CancelToken* cancel = nullptr;
    /// Test hook: called with the completed-block count after every
    /// checkpoint write (fault-injection tests kill the process here).
    std::function<void(std::size_t)> on_checkpoint;
    /// Explicit run-report file (JSON).  Empty: derived as
    /// $GLITCHMASK_REPORT_DIR/<campaign_id>.report.json when the env var
    /// is set, otherwise no report is written.  Pure observability --
    /// never read back by the runtime.
    std::string report_path;
    /// Rate-limited progress observer (see telemetry::ProgressMeter);
    /// also enabled campaign-wide by GLITCHMASK_PROGRESS=<seconds>,
    /// which prints a stderr heartbeat instead.
    telemetry::ProgressFn on_progress;
    /// Per-net leakage attribution (leakage/attribution.hpp): probe taps
    /// stream per-(net, clock-window) toggle counts into per-class
    /// accumulators alongside the power trace, producing a ranked culprit
    /// table in the result and the run report.  Also enabled campaign-wide
    /// by GLITCHMASK_ATTRIBUTION=1.  Changes the snapshot payload -- a
    /// checkpoint written with attribution on cannot resume a run with it
    /// off (and vice versa).
    bool attribution = false;
    /// Culprit-table depth for reports (result ranking is always full).
    std::size_t attribution_top_k = 10;
    /// Restrict attribution to nets whose module path contains this
    /// substring (empty = every net).  Bounds probe memory on large
    /// designs: the accumulator holds 48 B per (net, window) point.
    std::string attribution_scope;
    /// Simulation backend: "event" (default), "compiled", or "" to defer
    /// to GLITCHMASK_BACKEND (see eval/lane_backend.hpp).  The compiled
    /// backend changes the snapshot payload, so a checkpoint written
    /// under one backend cannot silently resume under the other; lane
    /// *width* is not part of the identity (results are width-invariant).
    std::string backend;
    /// Retry ladder for transient checkpoint-write errors (EINTR/EIO);
    /// permanent errnos (ENOSPC, EROFS, ...) are never retried.
    RetryPolicy io_retry;
    /// Graceful degradation: when a checkpoint write fails persistently
    /// (e.g. ENOSPC), keep the campaign running on its in-memory merge
    /// frontier -- correct results, no further durability -- instead of
    /// failing the run.  Off by default: a CLI run should fail loudly.
    bool degrade_on_io_error = false;
    /// Graceful degradation: a corrupt resume snapshot is quarantined
    /// (renamed `<path>.corrupt`) and the campaign restarts from zero --
    /// bit-identical to a fresh run -- instead of throwing.  Fingerprint
    /// mismatches still throw (they mean a *different* campaign's file).
    bool discard_corrupt_snapshot = false;
    /// Observer for every degradation decision: what is one of
    /// "checkpoint_degraded" / "snapshot_discarded", detail the message
    /// of the triggering error.
    std::function<void(const char* what, const std::string& detail)>
        on_degraded;
    /// Trace span the campaign's block/checkpoint spans parent to -- the
    /// service sets this to its execute span id; 0 = top-level.  Only
    /// meaningful when trace collection (support/trace.hpp) is on.
    std::uint64_t trace_parent = 0;
};

/// True when this run should attribute: the explicit flag or
/// GLITCHMASK_ATTRIBUTION=1.
[[nodiscard]] bool attribution_enabled(const CampaignRunOptions& run);

/// Folds the attribution identity (tag + scope) into a fingerprint's
/// payload.  Drivers call this only when attribution is on: off-runs keep
/// their pre-attribution fingerprints and snapshot layout, and resuming
/// an attributed snapshot into an unattributed run (or vice versa) fails
/// with ConfigMismatch instead of misparsing the payload.
void fold_attribution_fingerprint(CampaignFingerprint& fingerprint,
                                  const CampaignRunOptions& run);

/// Resolved per-run policy handed to the sharded runner.
struct CheckpointPolicy {
    std::string path;              // empty = no snapshots
    std::size_t every_blocks = 16;
    CancelToken* cancel = nullptr;
    std::function<void(std::size_t)> on_checkpoint;
    /// Degradation policy, copied from CampaignRunOptions (see there).
    RetryPolicy io_retry;
    bool degrade_on_io_error = false;
    bool discard_corrupt_snapshot = false;
    std::function<void(const char* what, const std::string& detail)>
        on_degraded;
    /// Parent span for block/checkpoint spans (copied from run options;
    /// not part of active() -- tracing alone never changes the execution
    /// path).
    std::uint64_t trace_parent = 0;

    /// Anything here that forces the wave-structured (checkpointable)
    /// execution path instead of the one-shot submit-all path?
    [[nodiscard]] bool active() const noexcept {
        return !path.empty() || cancel != nullptr ||
               static_cast<bool>(on_checkpoint);
    }
};

/// Builds the policy for one driver run: resolves the snapshot path from
/// the options / GLITCHMASK_CHECKPOINT_DIR and fills the defaults.
[[nodiscard]] CheckpointPolicy make_checkpoint_policy(
    const CampaignRunOptions& run, const std::string& default_id);

/// Progress report of a (possibly cancelled or resumed) campaign run.
struct CampaignProgress {
    std::size_t completed_blocks = 0;
    std::size_t completed_traces = 0;
    bool cancelled = false;   // token fired; result covers a prefix only
    bool resumed = false;     // a snapshot seeded this run
    /// Checkpoint writes failed persistently and the policy allowed
    /// degradation: the run continued on its in-memory frontier only.
    bool checkpoint_degraded = false;
    /// A corrupt resume snapshot was quarantined and the campaign
    /// restarted from zero (results unaffected).
    bool snapshot_discarded = false;
};

// --- snapshot file framing (used by the templated runner) ---------------

/// Starts a checkpoint buffer: magic, version, fingerprint, completed
/// block count and stack entry count.  The caller appends each entry's
/// blocks-spanned word + payload, then seals with finish().
[[nodiscard]] SnapshotWriter begin_checkpoint(const CampaignFingerprint& fp,
                                              std::uint64_t completed_blocks,
                                              std::uint64_t stack_entries);

struct CheckpointHeader {
    CampaignFingerprint fingerprint;
    std::uint64_t completed_blocks = 0;
    std::uint64_t stack_entries = 0;
};

/// Reads and validates the header written by begin_checkpoint; throws
/// CampaignError{CorruptSnapshot} on bad magic/version.
[[nodiscard]] CheckpointHeader read_checkpoint_header(SnapshotReader& in);

}  // namespace glitchmask::eval
