// Structure-of-arrays TVLA statistics bank: the fused, bin-vectorized
// replacement for a vector of per-point UnivariateTTest accumulators.
//
// TvlaCampaign stores its state point-major (one UnivariateTTest -- two
// MomentAccumulators -- per sample point), so folding a trace touches
// 2 * points scattered objects and the per-point Pebay update is a
// scalar dependency chain.  MomentBank transposes the layout: per class
// (fixed/random) it keeps one scalar trace count plus *planes* of means
// and central sums (row p holds sums_[p] of every point contiguously).
// Folding a trace then updates all points' accumulators with identical
// scalar coefficients (n, n1, the Pebay binomial/correction terms depend
// only on the class count, which every point of a class shares), so the
// update vectorizes across points -- AVX2 processes four bins per
// instruction -- without touching any single accumulator's FP operation
// order.  Results are bit-identical to TvlaCampaign, asserted with ==
// in tests/moment_bank_test.cpp, and the serialized form is
// byte-identical to TvlaCampaign::encode, so campaign checkpoints are
// interchangeable between the two representations.
//
// The class-count sharing is a structural invariant, not an assumption:
// add_trace() feeds every point, exactly like TvlaCampaign::add_trace.
// decode()/from_campaign() verify it and reject nonuniform input.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "leakage/tvla.hpp"
#include "support/snapshot.hpp"

namespace glitchmask::leakage {

namespace bank_kernels {

/// Folds one trace row (`row[0..points)`) into a class's planes: the
/// Pebay single-point increment of every point, vectorized across
/// points.  `sums` row p starts at `sums + p * stride` (rows 0..max_order;
/// rows 0 and 1 are unused and stay zero); `stride` may exceed `points`
/// so a vector kernel can hand its remainder to the scalar form.
/// `n1`/`n` are the class count before/after this trace.  Scalar and
/// AVX2 forms are bit-identical (see support/simd.hpp).
using FoldRowFn = void (*)(double* mean, double* sums, std::size_t points,
                           std::size_t stride, int max_order, double n1,
                           double n, const double* row);

void fold_row_scalar(double* mean, double* sums, std::size_t points,
                     std::size_t stride, int max_order, double n1, double n,
                     const double* row);
#if defined(GLITCHMASK_HAVE_AVX2)
void fold_row_avx2(double* mean, double* sums, std::size_t points,
                   std::size_t stride, int max_order, double n1, double n,
                   const double* row);
#endif

/// Kernel for support::active_simd_level(); never null.
[[nodiscard]] FoldRowFn resolve_fold_row() noexcept;

}  // namespace bank_kernels

class MomentBank {
public:
    /// Empty bank (0 points); assignable from decode()/from_campaign().
    MomentBank() = default;

    /// `max_test_order` in 1..3; central moments to 2*order are kept per
    /// point, exactly like TvlaCampaign(points, max_test_order).
    MomentBank(std::size_t points, int max_test_order = 3);

    /// Folds one complete trace (`row[0..points())`) into the given
    /// class.  Equivalent to TvlaCampaign::add_trace -- each per-point
    /// accumulator receives the same addend in the same position of its
    /// sequence -- but one vectorized pass instead of a point loop.
    void add_trace(bool fixed_class, const double* row);

    /// Pairwise Pebay merge, bit-identical to merging the per-point
    /// accumulators (TvlaCampaign::merge).
    void merge(const MomentBank& other);

    [[nodiscard]] std::size_t points() const noexcept { return points_; }
    [[nodiscard]] int max_test_order() const noexcept { return max_test_order_; }

    /// Traces folded into a class (shared by every point of the class).
    [[nodiscard]] double count(bool fixed_class) const noexcept {
        return (fixed_class ? fixed_ : random_).n;
    }
    [[nodiscard]] double mean(bool fixed_class, std::size_t point) const;
    /// Central power sum sum((x - mean)^p) of a class at one point.
    [[nodiscard]] double central_sum(bool fixed_class, std::size_t point,
                                     int p) const;

    /// Welch t at `order` (1..max_test_order) for one point; sentinel 0.0
    /// for degenerate classes, exactly as UnivariateTTest::t.
    [[nodiscard]] double t(std::size_t point, int order) const;

    /// Batched finalization over the whole bank (one value per point).
    [[nodiscard]] std::vector<double> t_curve(int order) const;
    [[nodiscard]] double max_abs_t(int order,
                                   std::size_t* argmax = nullptr) const;
    [[nodiscard]] std::vector<std::size_t> exceedances(
        int order, double threshold = kTvlaThreshold) const;

    /// Fixed-vs-random SNR at one point: variance of the two class means
    /// over the mean of the class variances, computed from the bank's own
    /// moments with the guard/sentinel sequence of SnrAccumulator::snr.
    [[nodiscard]] double snr(std::size_t point) const;

    /// Byte-identical to TvlaCampaign::encode of the equivalent campaign,
    /// so bank and campaign checkpoints are interchangeable.
    void encode(SnapshotWriter& out) const;
    [[nodiscard]] static MomentBank decode(SnapshotReader& in);

    /// Conversions through the shared serialized form (exact).
    [[nodiscard]] TvlaCampaign to_campaign() const;
    [[nodiscard]] static MomentBank from_campaign(const TvlaCampaign& campaign);

private:
    struct ClassPlanes {
        double n = 0.0;
        std::vector<double> mean;  // [points]
        std::vector<double> sums;  // rows 0..max_order, each [points]
    };

    void fold(ClassPlanes& planes, const double* row);
    void merge_class(ClassPlanes& into, const ClassPlanes& from) const;

    [[nodiscard]] double central_moment(const ClassPlanes& planes,
                                        std::size_t point, int p) const;
    [[nodiscard]] double preprocessed_mean(const ClassPlanes& planes,
                                           std::size_t point, int order) const;
    [[nodiscard]] double preprocessed_variance(const ClassPlanes& planes,
                                               std::size_t point,
                                               int order) const;

    std::size_t points_ = 0;
    int max_test_order_ = 0;
    int max_order_ = 0;  // 2 * max_test_order_
    ClassPlanes fixed_;
    ClassPlanes random_;
};

}  // namespace glitchmask::leakage
