# Empty dependencies file for fig17_tvla_pd.
# This may be replaced when dependencies are built.
