// FPGA utilization estimate: greedy LUT packing.
//
// The paper reports Spartan-6 FF/LUT counts from Xilinx ISE (Table III).
// We estimate LUT counts with a classic greedy fanout-free-cone packing:
// walking the combinational netlist in topological order, a cell absorbs
// an input driver whenever the driver is combinational, has a single
// fanout, and the merged cone still fits the LUT input budget (K = 6 for
// Spartan-6).  DelayBuf cells are never absorbed -- in the real flow they
// carry KEEP/LOC constraints precisely so the tools leave them as one LUT
// each (paper Sec. V).
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"

namespace glitchmask::netlist {

struct LutMapResult {
    std::size_t luts = 0;        // logic LUTs after packing (incl. delay LUTs)
    std::size_t delay_luts = 0;  // of which DelayBuf (route-through) LUTs
    std::size_t ffs = 0;         // flip-flops
};

/// Greedy K-input LUT packing estimate over a frozen netlist.
[[nodiscard]] LutMapResult estimate_luts(const Netlist& nl, unsigned k = 6);

}  // namespace glitchmask::netlist
