#include "sim/delay_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/rng.hpp"

namespace glitchmask::sim {

DelayConfig DelayConfig::spartan6() {
    DelayConfig config;
    auto set = [&config](CellKind kind, std::uint32_t ps) {
        config.nominal_ps[static_cast<std::size_t>(kind)] = ps;
    };
    set(CellKind::Input, 0);
    set(CellKind::Const0, 0);
    set(CellKind::Const1, 0);
    set(CellKind::Buf, 150);
    set(CellKind::Inv, 150);
    set(CellKind::DelayBuf, 600);
    set(CellKind::And2, 250);
    set(CellKind::Nand2, 250);
    set(CellKind::Or2, 250);
    set(CellKind::Nor2, 250);
    set(CellKind::Xor2, 300);
    set(CellKind::Xnor2, 300);
    set(CellKind::Orn2, 250);
    set(CellKind::SecAnd3, 300);  // one LUT
    set(CellKind::Mux2, 300);
    set(CellKind::Dff, 0);  // sequential; clk-to-q handled separately
    return config;
}

DelayConfig DelayConfig::deterministic() {
    DelayConfig config = spartan6();
    config.gate_jitter = 0.0;
    config.delaybuf_jitter = 0.0;
    config.wire_max_ps = config.wire_min_ps;
    return config;
}

DelayModel::DelayModel(const Netlist& nl, const DelayConfig& config)
    : config_(config) {
    if (config.wire_max_ps < config.wire_min_ps)
        throw std::runtime_error("DelayModel: wire_max < wire_min");

    gate_ps_.resize(nl.size());
    wire_ps_.resize(nl.size() * 3, 0);

    for (CellId id = 0; id < nl.size(); ++id) {
        const CellKind kind = nl.cell(id).kind;
        const std::uint32_t nominal =
            config.nominal_ps[static_cast<std::size_t>(kind)];
        const double jitter = (kind == CellKind::DelayBuf)
                                  ? config.delaybuf_jitter
                                  : config.gate_jitter;
        Xoshiro256 rng(mix64(config.seed, 0x6761746564656cULL ^ id));
        const double factor = 1.0 + jitter * rng.uniform(-1.0, 1.0);
        gate_ps_[id] = static_cast<std::uint32_t>(
            std::max(1.0, static_cast<double>(nominal) * factor));
        if (nominal == 0) gate_ps_[id] = 0;

        // Routing delay of each incoming edge.  DelayBuf chain internal
        // edges are short, hand-routed hops: give them the minimum wire
        // delay plus the (small) DelayBuf jitter, not the full placement
        // spread.
        const unsigned pins = netlist::pin_count(kind);
        for (unsigned p = 0; p < pins; ++p) {
            Xoshiro256 wire_rng(mix64(config.seed, 0x77697265ULL ^ (id * 3ull + p)));
            const bool short_hop =
                kind == CellKind::DelayBuf &&
                nl.cell(nl.cell(id).in[p]).kind == CellKind::DelayBuf;
            std::uint32_t wire = 0;
            if (short_hop) {
                wire = config.wire_min_ps;
            } else {
                wire = static_cast<std::uint32_t>(wire_rng.uniform(
                    static_cast<double>(config.wire_min_ps),
                    static_cast<double>(config.wire_max_ps) + 1.0));
            }
            wire_ps_[id * 3 + p] = wire;
        }
    }
}

CriticalPath analyze_timing(const Netlist& nl, const DelayModel& dm) {
    if (!nl.frozen()) throw std::runtime_error("analyze_timing: netlist not frozen");

    constexpr TimePs kUnset = 0;
    std::vector<TimePs> arrival(nl.size(), kUnset);
    std::vector<CellId> argmax(nl.size(), netlist::kNoNet);

    for (const CellId id : nl.inputs()) arrival[id] = dm.clk_to_q();
    for (const CellId id : nl.flops()) arrival[id] = dm.clk_to_q();

    for (const CellId id : nl.topo_order()) {
        const netlist::Cell& cell = nl.cell(id);
        const unsigned pins = netlist::pin_count(cell.kind);
        TimePs latest = 0;
        CellId from = netlist::kNoNet;
        for (unsigned p = 0; p < pins; ++p) {
            const NetId in = cell.in[p];
            const TimePs t = arrival[in] + dm.wire_delay(id, p);
            if (t >= latest) {
                latest = t;
                from = in;
            }
        }
        arrival[id] = latest + dm.gate_delay(id);
        argmax[id] = from;
    }

    // Endpoints: flop D pins and every net -- dangling nets are circuit
    // outputs and bound the clock period too.
    TimePs worst = 0;
    CellId endpoint = netlist::kNoNet;
    for (const CellId flop : nl.flops()) {
        const NetId d = nl.cell(flop).in[0];
        const TimePs t = arrival[d] + dm.wire_delay(flop, 0);
        if (t > worst) {
            worst = t;
            endpoint = d;
        }
    }
    for (CellId id = 0; id < nl.size(); ++id) {
        if (arrival[id] > worst) {
            worst = arrival[id];
            endpoint = id;
        }
    }

    CriticalPath result;
    result.delay_ps = worst;
    const double period_ps = static_cast<double>(worst + dm.setup());
    result.max_freq_mhz = (period_ps > 0.0) ? 1e6 / period_ps : 0.0;
    for (CellId at = endpoint; at != netlist::kNoNet; at = argmax[at]) {
        result.path.push_back(at);
        if (result.path.size() > nl.size()) break;  // defensive
    }
    return result;
}

}  // namespace glitchmask::sim
