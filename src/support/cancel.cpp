#include "support/cancel.hpp"

#include <unistd.h>

#include <csignal>
#include <stdexcept>

#include "support/log.hpp"

namespace glitchmask {

namespace {

// One global slot: signal handlers cannot carry state, so the installed
// handler reads the token through this pointer.  Writes happen only from
// ScopedSignalCancel's constructor/destructor (normal context); the
// handler only loads.
std::atomic<CancelToken*> g_signal_token{nullptr};

struct sigaction g_old_int;
struct sigaction g_old_term;

void on_signal(int) {
    if (CancelToken* token = g_signal_token.load(std::memory_order_relaxed))
        token->request();
    // Cancellation notice via the logger's level gate: log_enabled is a
    // relaxed atomic load (async-signal-safe), and write(2) is on the
    // signal-safe list -- log_message (mutex, stdio) is not, so the line
    // is emitted directly.  Quiet runs (GLITCHMASK_LOG=warn and below)
    // print nothing.
    if (log_enabled(LogLevel::kInfo)) {
        static constexpr char kNotice[] =
            "[glitchmask] info: cancellation requested; finishing in-flight "
            "blocks and writing a final checkpoint\n";
        const ssize_t ignored = ::write(2, kNotice, sizeof kNotice - 1);
        (void)ignored;
    }
}

}  // namespace

ScopedSignalCancel::ScopedSignalCancel(CancelToken& token) {
    CancelToken* expected = nullptr;
    if (!g_signal_token.compare_exchange_strong(expected, &token))
        throw std::logic_error(
            "ScopedSignalCancel: another instance is already installed");
    struct sigaction action = {};
    action.sa_handler = on_signal;
    sigemptyset(&action.sa_mask);
    // SA_RESTART: checkpoint writes in progress are not interrupted; the
    // campaign notices the token at its next block boundary instead.
    action.sa_flags = SA_RESTART;
    sigaction(SIGINT, &action, &g_old_int);
    sigaction(SIGTERM, &action, &g_old_term);
}

ScopedSignalCancel::~ScopedSignalCancel() {
    sigaction(SIGINT, &g_old_int, nullptr);
    sigaction(SIGTERM, &g_old_term, nullptr);
    g_signal_token.store(nullptr, std::memory_order_relaxed);
}

}  // namespace glitchmask
