#include "eval/des_experiments.hpp"

#include "core/sharing.hpp"
#include "support/rng.hpp"

namespace glitchmask::eval {

namespace {

power::PowerConfig des_power_config(sim::TimePs period) {
    power::PowerConfig config;
    config.bin_ps = period;
    return config;
}

}  // namespace

DesTvlaResult run_des_tvla(const des::MaskedDesCore& core,
                           const DesTvlaConfig& config) {
    sim::DelayConfig delay_config = sim::DelayConfig::spartan6();
    delay_config.seed = config.placement_seed;
    const sim::DelayModel dm(core.nl(), delay_config);

    sim::ClockConfig clock;
    clock.period_ps = core.recommended_period();
    sim::ClockedSim simulator(core.nl(), dm, clock, config.coupling);

    power::PowerConfig power_config = des_power_config(clock.period_ps);
    power_config.coupling_epsilon = config.coupling_epsilon;
    power::PowerRecorder recorder(core.nl(), power_config);
    recorder.attach(&simulator.engine());
    simulator.engine().set_sink(&recorder);

    const std::size_t samples = core.total_cycles();
    DesTvlaResult result(samples, config.max_test_order);
    result.samples = samples;

    Xoshiro256 rng(config.seed);
    Xoshiro256 noise_rng(mix64(config.seed, 0x646573746e6fULL));

    for (std::size_t n = 0; n < config.traces; ++n) {
        const bool fixed = rng.bit();
        const std::uint64_t pt = fixed ? config.fixed_plaintext : rng();

        simulator.restart();
        recorder.begin_trace(samples);
        if (config.prng_on) {
            const core::MaskedWord mpt = core::mask_word(pt, 64, rng);
            const core::MaskedWord mkey = core::mask_word(config.key, 64, rng);
            (void)core.encrypt(simulator, mpt, mkey, &rng);
        } else {
            (void)core.encrypt(simulator, core::MaskedWord{0, pt},
                               core::MaskedWord{0, config.key}, nullptr);
        }
        const std::vector<double> trace =
            recorder.noisy_trace(noise_rng, config.noise_sigma);
        result.campaign.add_trace(fixed, trace);
    }

    result.traces = config.traces;
    for (int order = 1; order <= config.max_test_order; ++order)
        result.max_abs_t[order] =
            result.campaign.max_abs_t(order, &result.argmax[order]);
    return result;
}

std::vector<double> mean_power_trace(const des::MaskedDesCore& core,
                                     std::size_t traces, std::uint64_t seed,
                                     std::uint64_t placement_seed) {
    sim::DelayConfig delay_config = sim::DelayConfig::spartan6();
    delay_config.seed = placement_seed;
    const sim::DelayModel dm(core.nl(), delay_config);
    sim::ClockConfig clock;
    clock.period_ps = core.recommended_period();
    sim::ClockedSim simulator(core.nl(), dm, clock);
    power::PowerRecorder recorder(core.nl(), des_power_config(clock.period_ps));
    simulator.engine().set_sink(&recorder);

    const std::size_t samples = core.total_cycles();
    std::vector<double> mean(samples, 0.0);
    Xoshiro256 rng(seed);
    for (std::size_t n = 0; n < traces; ++n) {
        simulator.restart();
        recorder.begin_trace(samples);
        (void)core.encrypt_value(simulator, rng(), rng(), &rng);
        const std::vector<double>& trace = recorder.trace();
        for (std::size_t i = 0; i < samples; ++i) mean[i] += trace[i];
    }
    for (double& v : mean) v /= static_cast<double>(traces);
    return mean;
}

}  // namespace glitchmask::eval
