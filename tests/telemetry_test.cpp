// Telemetry layer tests: registry shard merging, exact simulator counts
// on the secAND2 campaign, run-report JSON round-trips and the progress
// meter.  The load-bearing properties:
//
//   * shard merges are associative/commutative, so merged totals are
//     independent of thread scheduling and thread exit order;
//   * the deterministic counters (sim.*, campaign.blocks/traces) are a
//     pure function of the campaign -- exact at any worker count;
//   * enabling telemetry does not perturb a single result bit;
//   * a rendered report parses back with every u64 exact.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/circuits.hpp"
#include "des/masked_des.hpp"
#include "eval/campaign.hpp"
#include "eval/des_experiments.hpp"
#include "eval/run_report.hpp"
#include "support/telemetry.hpp"

using namespace glitchmask;

namespace {

std::string temp_path(const std::string& name) {
    return ::testing::TempDir() + "glitchmask_" + name;
}

// ----- registry ----------------------------------------------------------

TEST(TelemetryRegistry, CounterMetadataIsStableAndUnique) {
    std::vector<std::string> names;
    for (std::size_t i = 0; i < telemetry::kCounterCount; ++i) {
        const auto counter = static_cast<telemetry::Counter>(i);
        const std::string name = telemetry::counter_name(counter);
        EXPECT_FALSE(name.empty());
        for (const std::string& seen : names) EXPECT_NE(name, seen);
        names.push_back(name);
    }
    EXPECT_EQ(telemetry::counter_merge(telemetry::Counter::kSimQueuePeak),
              telemetry::MergeKind::kMax);
    EXPECT_EQ(telemetry::counter_merge(telemetry::Counter::kSimEvents),
              telemetry::MergeKind::kSum);
    EXPECT_TRUE(telemetry::counter_deterministic(
        telemetry::Counter::kSimGlitches));
    EXPECT_FALSE(telemetry::counter_deterministic(
        telemetry::Counter::kCampaignBlockNanos));
}

TEST(TelemetryRegistry, ShardMergeIsExactAcrossThreadsAndThreadExit) {
    telemetry::reset();
    // Every thread adds a known amount; half the threads exit before the
    // snapshot (their shards retire), half are still alive behind a
    // barrier.  The merged totals must be the analytic sum / max either
    // way -- merge order never matters.
    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 1000;
    std::atomic<int> arrived{0};
    std::atomic<bool> release{false};
    std::vector<std::thread> stayers;
    auto work = [&](int id, bool stay) {
        telemetry::Shard& shard = telemetry::shard();
        for (std::uint64_t n = 0; n < kPerThread; ++n)
            shard.add(telemetry::Counter::kSimEvents, 1);
        shard.add(telemetry::Counter::kSimToggles, kPerThread * 2);
        shard.peak(telemetry::Counter::kSimQueuePeak,
                   static_cast<std::uint64_t>(100 + id));
        arrived.fetch_add(1);
        if (stay)
            while (!release.load()) std::this_thread::yield();
    };
    {
        std::vector<std::thread> leavers;
        for (int id = 0; id < kThreads / 2; ++id)
            leavers.emplace_back(work, id, /*stay=*/false);
        for (std::thread& t : leavers) t.join();  // shards retired
    }
    for (int id = kThreads / 2; id < kThreads; ++id)
        stayers.emplace_back(work, id, /*stay=*/true);
    while (arrived.load() < kThreads) std::this_thread::yield();

    const telemetry::Snapshot merged = telemetry::snapshot();
    EXPECT_EQ(merged.value(telemetry::Counter::kSimEvents),
              kPerThread * kThreads);
    EXPECT_EQ(merged.value(telemetry::Counter::kSimToggles),
              kPerThread * 2 * kThreads);
    EXPECT_EQ(merged.value(telemetry::Counter::kSimQueuePeak),
              static_cast<std::uint64_t>(100 + kThreads - 1));

    release.store(true);
    for (std::thread& t : stayers) t.join();

    // Live and retired shards fold identically: totals are unchanged
    // after the remaining threads exit.
    const telemetry::Snapshot after = telemetry::snapshot();
    EXPECT_EQ(after.values, merged.values);
    telemetry::reset();
    EXPECT_EQ(telemetry::snapshot().value(telemetry::Counter::kSimEvents), 0u);
}

TEST(TelemetryRegistry, DeltaSubtractsSumsAndKeepsHighWater) {
    telemetry::Snapshot start;
    start.values[static_cast<std::size_t>(telemetry::Counter::kSimEvents)] = 10;
    start.values[static_cast<std::size_t>(telemetry::Counter::kSimQueuePeak)] =
        500;
    telemetry::Snapshot end = start;
    end.values[static_cast<std::size_t>(telemetry::Counter::kSimEvents)] = 35;
    end.values[static_cast<std::size_t>(telemetry::Counter::kSimQueuePeak)] =
        700;
    const telemetry::Snapshot delta = end.delta_since(start);
    EXPECT_EQ(delta.value(telemetry::Counter::kSimEvents), 25u);
    EXPECT_EQ(delta.value(telemetry::Counter::kSimQueuePeak), 700u);
}

TEST(TelemetryRegistry, RecordSimBlockFoldsDeltasAndAdvancesLast) {
    telemetry::reset();
    telemetry::SimStats last;
    telemetry::SimStats now{100, 50, 7, 3, 40};
    telemetry::record_sim_block(now, last);
    now = telemetry::SimStats{250, 90, 11, 3, 20};
    telemetry::record_sim_block(now, last);
    const telemetry::Snapshot merged = telemetry::snapshot();
    EXPECT_EQ(merged.value(telemetry::Counter::kSimEvents), 250u);
    EXPECT_EQ(merged.value(telemetry::Counter::kSimToggles), 90u);
    EXPECT_EQ(merged.value(telemetry::Counter::kSimGlitches), 11u);
    EXPECT_EQ(merged.value(telemetry::Counter::kSimInertialCancels), 3u);
    EXPECT_EQ(merged.value(telemetry::Counter::kSimQueuePeak), 40u);
    EXPECT_EQ(last.events, 250u);
    telemetry::reset();
}

// ----- histograms & gauges -----------------------------------------------

TEST(TelemetryHistogram, BucketMappingCoversTheFullU64Range) {
    // Bucket 0 holds exactly the value 0; bucket i >= 1 spans
    // [2^(i-1), 2^i).  The topmost bucket (64) catches everything from
    // 2^63 up to the u64 maximum.
    EXPECT_EQ(telemetry::histogram_bucket(0), 0u);
    EXPECT_EQ(telemetry::histogram_bucket(1), 1u);
    EXPECT_EQ(telemetry::histogram_bucket(2), 2u);
    EXPECT_EQ(telemetry::histogram_bucket(3), 2u);
    EXPECT_EQ(telemetry::histogram_bucket(4), 3u);
    EXPECT_EQ(telemetry::histogram_bucket(1023), 10u);
    EXPECT_EQ(telemetry::histogram_bucket(1024), 11u);
    EXPECT_EQ(telemetry::histogram_bucket(std::uint64_t{1} << 63), 64u);
    EXPECT_EQ(telemetry::histogram_bucket(~std::uint64_t{0}), 64u);
    // Floors invert the mapping: every bucket's floor maps back into it.
    for (std::size_t b = 0; b < telemetry::kHistogramBuckets; ++b)
        EXPECT_EQ(telemetry::histogram_bucket(
                      telemetry::histogram_bucket_floor(b)),
                  b);
    // Metadata is stable, unique and classifies the trace-count families
    // as deterministic.
    std::vector<std::string> names;
    for (std::size_t i = 0; i < telemetry::kHistogramCount; ++i) {
        const auto histogram = static_cast<telemetry::Histogram>(i);
        const std::string name = telemetry::histogram_name(histogram);
        EXPECT_FALSE(name.empty());
        for (const std::string& seen : names) EXPECT_NE(name, seen);
        names.push_back(name);
    }
    EXPECT_TRUE(telemetry::histogram_deterministic(
        telemetry::Histogram::kBlockTraces));
    EXPECT_TRUE(telemetry::histogram_deterministic(
        telemetry::Histogram::kJobTraces));
    EXPECT_FALSE(telemetry::histogram_deterministic(
        telemetry::Histogram::kExecuteNanos));
}

TEST(TelemetryHistogram, ShardMergeIsExactAcrossThreadsAndThreadExit) {
    telemetry::reset();
    const telemetry::ScopedTelemetryEnable scoped;
    // Every thread observes the same value set (including 0 and the u64
    // extremes); the merged buckets must be the analytic per-thread
    // distribution times the thread count -- element-wise u64 sums are
    // associative and commutative, so thread exit order cannot matter.
    constexpr int kThreads = 8;
    const std::vector<std::uint64_t> values = {
        0, 1, 1, 7, 4096, std::uint64_t{1} << 63, ~std::uint64_t{0}};
    {
        std::vector<std::thread> workers;
        for (int t = 0; t < kThreads; ++t)
            workers.emplace_back([&] {
                telemetry::Shard& shard = telemetry::shard();
                for (const std::uint64_t v : values)
                    shard.observe(telemetry::Histogram::kQueueWaitNanos, v);
            });
        for (std::thread& w : workers) w.join();  // all shards retired
    }
    const telemetry::HistogramSnapshot merged =
        telemetry::snapshot().histogram(telemetry::Histogram::kQueueWaitNanos);
    EXPECT_EQ(merged.count, values.size() * kThreads);
    // Sum wraps mod 2^64 identically no matter the fold order.
    std::uint64_t per_thread_sum = 0;
    for (const std::uint64_t v : values) per_thread_sum += v;
    EXPECT_EQ(merged.sum, per_thread_sum * kThreads);
    EXPECT_EQ(merged.max, ~std::uint64_t{0});
    EXPECT_EQ(merged.buckets[0], 1u * kThreads);   // the observed 0
    EXPECT_EQ(merged.buckets[1], 2u * kThreads);   // both 1s
    EXPECT_EQ(merged.buckets[3], 1u * kThreads);   // 7
    EXPECT_EQ(merged.buckets[13], 1u * kThreads);  // 4096
    EXPECT_EQ(merged.buckets[64], 2u * kThreads);  // 2^63 and u64 max
    std::uint64_t total = 0;
    for (const std::uint64_t b : merged.buckets) total += b;
    EXPECT_EQ(total, merged.count);
    telemetry::reset();
    EXPECT_EQ(telemetry::snapshot()
                  .histogram(telemetry::Histogram::kQueueWaitNanos)
                  .count,
              0u);
}

TEST(TelemetryHistogram, DeltaSubtractsBucketsAndKeepsMaxima) {
    telemetry::Snapshot start;
    auto& h0 = start.histograms[static_cast<std::size_t>(
        telemetry::Histogram::kBlockNanos)];
    h0.buckets[5] = 10;
    h0.count = 10;
    h0.sum = 200;
    h0.max = 31;
    telemetry::Snapshot end = start;
    auto& h1 = end.histograms[static_cast<std::size_t>(
        telemetry::Histogram::kBlockNanos)];
    h1.buckets[5] = 14;
    h1.buckets[7] = 2;
    h1.count = 16;
    h1.sum = 500;
    h1.max = 100;
    const telemetry::Snapshot delta = end.delta_since(start);
    const telemetry::HistogramSnapshot& d =
        delta.histogram(telemetry::Histogram::kBlockNanos);
    EXPECT_EQ(d.buckets[5], 4u);
    EXPECT_EQ(d.buckets[7], 2u);
    EXPECT_EQ(d.count, 6u);
    EXPECT_EQ(d.sum, 300u);
    EXPECT_EQ(d.max, 100u);  // high-water keeps the end value
}

TEST(TelemetryGauge, SetReadResetAndSnapshot) {
    telemetry::reset();
    // Gauges are ungated instantaneous values: set wins over set, and a
    // snapshot carries the latest stores.
    telemetry::set_gauge(telemetry::Gauge::kServiceQueueDepth, 7);
    telemetry::set_gauge(telemetry::Gauge::kServiceQueueDepth, 3);
    telemetry::set_gauge(telemetry::Gauge::kServiceSpoolBytes, 1 << 20);
    EXPECT_EQ(telemetry::gauge_value(telemetry::Gauge::kServiceQueueDepth),
              3u);
    const telemetry::Snapshot snap = telemetry::snapshot();
    EXPECT_EQ(snap.gauge(telemetry::Gauge::kServiceQueueDepth), 3u);
    EXPECT_EQ(snap.gauge(telemetry::Gauge::kServiceSpoolBytes),
              std::uint64_t{1} << 20);
    EXPECT_EQ(snap.gauge(telemetry::Gauge::kServiceRunningJobs), 0u);
    std::vector<std::string> names;
    for (std::size_t i = 0; i < telemetry::kGaugeCount; ++i) {
        const std::string name =
            telemetry::gauge_name(static_cast<telemetry::Gauge>(i));
        EXPECT_FALSE(name.empty());
        for (const std::string& seen : names) EXPECT_NE(name, seen);
        names.push_back(name);
    }
    telemetry::reset();
    EXPECT_EQ(telemetry::gauge_value(telemetry::Gauge::kServiceSpoolBytes),
              0u);
}

TEST(TelemetryExposition, PrometheusTextRendersAllThreeFamilies) {
    telemetry::Snapshot snap;
    snap.values[static_cast<std::size_t>(telemetry::Counter::kSimEvents)] =
        42;
    auto& h = snap.histograms[static_cast<std::size_t>(
        telemetry::Histogram::kExecuteNanos)];
    h.buckets[1] = 2;  // two observations of 1
    h.buckets[64] = 1;  // one top-bucket observation
    h.count = 3;
    h.sum = 2 + 0;  // sums are opaque to the renderer; any value works
    h.max = ~std::uint64_t{0};
    snap.gauges[static_cast<std::size_t>(
        telemetry::Gauge::kServiceQueueDepth)] = 5;
    const std::string text = telemetry::render_prometheus_text(snap);
    EXPECT_NE(text.find("glitchmask_sim_events 42"), std::string::npos);
    EXPECT_NE(text.find("glitchmask_service_queue_depth 5"),
              std::string::npos);
    // Cumulative buckets: le="1" sees both small observations, +Inf sees
    // the full count, and _count matches.
    EXPECT_NE(text.find("glitchmask_service_execute_nanos_bucket{le=\"1\"} 2"),
              std::string::npos);
    EXPECT_NE(
        text.find("glitchmask_service_execute_nanos_bucket{le=\"+Inf\"} 3"),
        std::string::npos);
    EXPECT_NE(text.find("glitchmask_service_execute_nanos_count 3"),
              std::string::npos);
    // No dotted names escape the mangling.
    EXPECT_EQ(text.find("glitchmask_sim.events"), std::string::npos);
}

// ----- exact campaign counts --------------------------------------------

eval::SequenceExperimentConfig small_config(unsigned workers, unsigned lanes) {
    eval::SequenceExperimentConfig config;
    config.replicas = 4;
    config.traces = 96;
    config.block_size = 16;
    config.seed = 5;
    config.max_test_order = 2;
    config.workers = workers;
    config.lanes = lanes;
    return config;
}

struct CountedRun {
    eval::SequenceLeakResult result;
    telemetry::Snapshot counters;
};

CountedRun run_counted(unsigned workers, unsigned lanes) {
    const telemetry::ScopedTelemetryEnable scoped;
    telemetry::reset();
    CountedRun run{eval::run_sequence_experiment(
                       core::all_input_sequences().front(),
                       small_config(workers, lanes)),
                   telemetry::snapshot()};
    telemetry::reset();
    return run;
}

TEST(TelemetryCampaign, Secand2CountsExactAtAnyWorkerCount) {
    const CountedRun w1 = run_counted(1, 64);
    const CountedRun w4 = run_counted(4, 64);
    // Activity happened and was counted.  (No glitch floor here: the
    // share-per-cycle sequences exist precisely to avoid glitching in the
    // masked AND -- the DES campaign below asserts nonzero glitches.)
    EXPECT_GT(w1.counters.value(telemetry::Counter::kSimEvents), 0u);
    EXPECT_GT(w1.counters.value(telemetry::Counter::kSimToggles), 0u);
    EXPECT_GE(w1.counters.value(telemetry::Counter::kSimToggles),
              w1.counters.value(telemetry::Counter::kSimGlitches));
    EXPECT_EQ(w1.counters.value(telemetry::Counter::kCampaignTraces), 96u);
    EXPECT_EQ(w1.counters.value(telemetry::Counter::kCampaignBlocks), 6u);
    // The deterministic counters are a pure function of the campaign:
    // exact equality across worker counts, not just statistical agreement.
    for (std::size_t i = 0; i < telemetry::kCounterCount; ++i) {
        const auto counter = static_cast<telemetry::Counter>(i);
        if (!telemetry::counter_deterministic(counter)) continue;
        EXPECT_EQ(w1.counters.value(counter), w4.counters.value(counter))
            << telemetry::counter_name(counter);
    }
    EXPECT_EQ(w1.result.max_abs_t1, w4.result.max_abs_t1);
    // The trace-count histograms are pure functions of the workload too:
    // 6 blocks of 16 traces, landing entirely in bucket [16, 32), and the
    // whole HistogramSnapshot (buckets, count, sum, max) bit-identical at
    // any worker count.
    const telemetry::HistogramSnapshot& blocks1 =
        w1.counters.histogram(telemetry::Histogram::kBlockTraces);
    EXPECT_EQ(blocks1.count, 6u);
    EXPECT_EQ(blocks1.sum, 96u);
    EXPECT_EQ(blocks1.max, 16u);
    EXPECT_EQ(blocks1.buckets[telemetry::histogram_bucket(16)], 6u);
    for (std::size_t i = 0; i < telemetry::kHistogramCount; ++i) {
        const auto histogram = static_cast<telemetry::Histogram>(i);
        if (!telemetry::histogram_deterministic(histogram)) continue;
        EXPECT_EQ(w1.counters.histogram(histogram),
                  w4.counters.histogram(histogram))
            << telemetry::histogram_name(histogram);
    }
    // And the wall-clock block-latency histogram saw every block even
    // though its shape is schedule-dependent.
    EXPECT_EQ(w1.counters.histogram(telemetry::Histogram::kBlockNanos).count,
              6u);
}

TEST(TelemetryCampaign, DesGlitchCountsExactAtAnyWorkerCount) {
    const des::MaskedDesCore core(des::MaskedDesOptions{});
    auto run_des = [&](unsigned workers) {
        eval::DesTvlaConfig config;
        config.traces = 16;
        config.block_size = 4;
        config.seed = 9;
        config.max_test_order = 1;
        config.workers = workers;
        config.lanes = 64;
        const telemetry::ScopedTelemetryEnable scoped;
        telemetry::reset();
        (void)eval::run_des_tvla(core, config);
        const telemetry::Snapshot counters = telemetry::snapshot();
        telemetry::reset();
        return counters;
    };
    const telemetry::Snapshot w1 = run_des(1);
    const telemetry::Snapshot w4 = run_des(4);
    // The DES round logic glitches heavily (reconvergent S-box paths), so
    // the transient counter must be busy -- and exact across workers.
    EXPECT_GT(w1.value(telemetry::Counter::kSimGlitches), 0u);
    EXPECT_GT(w1.value(telemetry::Counter::kSimInertialCancels), 0u);
    EXPECT_GT(w1.value(telemetry::Counter::kSimToggles),
              w1.value(telemetry::Counter::kSimGlitches));
    for (std::size_t i = 0; i < telemetry::kCounterCount; ++i) {
        const auto counter = static_cast<telemetry::Counter>(i);
        if (!telemetry::counter_deterministic(counter)) continue;
        EXPECT_EQ(w1.value(counter), w4.value(counter))
            << telemetry::counter_name(counter);
    }
}

TEST(TelemetryCampaign, ScalarAndBatchEnginesAgreeOnCommittedToggles) {
    const CountedRun scalar = run_counted(2, 1);
    const CountedRun batch = run_counted(2, 64);
    // Committed per-lane transitions are the engines' shared observable:
    // both drive the same power traces, so the totals must match exactly.
    // Schedule-shape counters (events, queue peak, cancellations, glitch
    // attribution) measure the engine's internal evaluation order and are
    // compared only within an engine.
    EXPECT_EQ(scalar.counters.value(telemetry::Counter::kSimToggles),
              batch.counters.value(telemetry::Counter::kSimToggles));
    EXPECT_EQ(scalar.result.max_abs_t1, batch.result.max_abs_t1);
    EXPECT_EQ(scalar.result.max_abs_t2, batch.result.max_abs_t2);
}

TEST(TelemetryCampaign, EnablingTelemetryIsBitIdentical) {
    telemetry::set_enabled(false);
    const eval::SequenceLeakResult off = eval::run_sequence_experiment(
        core::all_input_sequences().front(), small_config(2, 64));
    const CountedRun on = run_counted(2, 64);
    EXPECT_EQ(off.max_abs_t1, on.result.max_abs_t1);
    EXPECT_EQ(off.max_abs_t2, on.result.max_abs_t2);
    EXPECT_EQ(off.argmax_cycle, on.result.argmax_cycle);
}

// ----- run reports -------------------------------------------------------

TEST(RunReport, JsonParserReadsScalarsExactly) {
    const eval::JsonValue doc = eval::parse_json(
        R"({"a": 18446744073709551615, "b": -2.5, "c": "x\"\nA",
            "d": [true, false, null], "e": {"nested": 1}})");
    ASSERT_EQ(doc.kind, eval::JsonValue::Kind::kObject);
    ASSERT_NE(doc.find("a"), nullptr);
    EXPECT_EQ(doc.find("a")->kind, eval::JsonValue::Kind::kUnsigned);
    EXPECT_EQ(doc.find("a")->unsigned_value, 18446744073709551615ull);
    EXPECT_DOUBLE_EQ(doc.find("b")->as_number(), -2.5);
    EXPECT_EQ(doc.find("c")->string, "x\"\nA");
    ASSERT_EQ(doc.find("d")->array.size(), 3u);
    EXPECT_TRUE(doc.find("d")->array[0].boolean);
    EXPECT_EQ(doc.find("e")->find("nested")->unsigned_value, 1u);
    EXPECT_THROW((void)eval::parse_json("{\"unterminated\": "),
                 std::runtime_error);
    EXPECT_THROW((void)eval::parse_json("{} trailing"), std::runtime_error);
}

TEST(RunReport, RoundTripKeepsEveryFieldExact) {
    eval::RunReport report;
    report.campaign = "round_trip";
    // Fingerprint words exercise the full u64 range -- a double round-trip
    // would corrupt them.
    report.fingerprint = {0xFFFFFFFFFFFFFFFFull, 0x8000000000000001ull,
                          1234567, 64, 0xDEADBEEFCAFEF00Dull};
    report.workers = 8;
    report.lanes = 64;
    report.wall_seconds = 12.75;
    report.cpu_seconds = 98.5;
    report.telemetry_enabled = true;
    report.counters.values[static_cast<std::size_t>(
        telemetry::Counter::kSimEvents)] = 0xFFFFFFFFFFFFFFFEull;
    report.counters.values[static_cast<std::size_t>(
        telemetry::Counter::kSimQueuePeak)] = 4242;
    report.progress.completed_blocks = 19;
    report.progress.completed_traces = 1216;
    report.progress.resumed = true;
    report.progress.cancelled = false;
    report.checkpoint_blocks = {16, 19};
    report.metrics = {{"max_abs_t_order1", 4.125}, {"toggles", 1e6}};

    const std::string path = temp_path("roundtrip.report.json");
    eval::write_run_report(path, report);
    const auto read = eval::read_run_report(path);
    std::remove(path.c_str());
    ASSERT_TRUE(read.has_value());
    EXPECT_EQ(read->campaign, report.campaign);
    EXPECT_EQ(read->fingerprint.kind, report.fingerprint.kind);
    EXPECT_EQ(read->fingerprint.seed, report.fingerprint.seed);
    EXPECT_EQ(read->fingerprint.traces, report.fingerprint.traces);
    EXPECT_EQ(read->fingerprint.block_size, report.fingerprint.block_size);
    EXPECT_EQ(read->fingerprint.payload, report.fingerprint.payload);
    EXPECT_EQ(read->workers, report.workers);
    EXPECT_EQ(read->lanes, report.lanes);
    EXPECT_DOUBLE_EQ(read->wall_seconds, report.wall_seconds);
    EXPECT_DOUBLE_EQ(read->cpu_seconds, report.cpu_seconds);
    EXPECT_TRUE(read->telemetry_enabled);
    EXPECT_EQ(read->counters.values, report.counters.values);
    EXPECT_EQ(read->progress.completed_blocks, report.progress.completed_blocks);
    EXPECT_EQ(read->progress.completed_traces, report.progress.completed_traces);
    EXPECT_TRUE(read->progress.resumed);
    EXPECT_FALSE(read->progress.cancelled);
    EXPECT_EQ(read->checkpoint_blocks, report.checkpoint_blocks);
    ASSERT_EQ(read->metrics.size(), report.metrics.size());
    for (std::size_t i = 0; i < report.metrics.size(); ++i) {
        EXPECT_EQ(read->metrics[i].first, report.metrics[i].first);
        EXPECT_DOUBLE_EQ(read->metrics[i].second, report.metrics[i].second);
    }
    EXPECT_FALSE(eval::read_run_report(temp_path("missing.report.json"))
                     .has_value());
}

TEST(RunReport, DriverWritesAValidatedReport) {
    const std::string path = temp_path("seq_driver.report.json");
    eval::SequenceExperimentConfig config = small_config(2, 64);
    config.run.report_path = path;
    const bool was_enabled = telemetry::enabled();
    telemetry::set_enabled(false);  // the session must enable it itself
    const eval::SequenceLeakResult result = eval::run_sequence_experiment(
        core::all_input_sequences().front(), config);
    telemetry::set_enabled(was_enabled);

    const auto report = eval::read_run_report(path);
    std::remove(path.c_str());
    ASSERT_TRUE(report.has_value());
    EXPECT_EQ(report->fingerprint.seed, 5u);
    EXPECT_EQ(report->fingerprint.traces, 96u);
    EXPECT_EQ(report->workers, 2u);
    EXPECT_EQ(report->lanes, 64u);
    EXPECT_TRUE(report->telemetry_enabled);
    EXPECT_GT(report->wall_seconds, 0.0);
    EXPECT_GT(report->counters.value(telemetry::Counter::kSimEvents), 0u);
    EXPECT_EQ(report->counters.value(telemetry::Counter::kCampaignTraces), 96u);
    EXPECT_EQ(report->progress.completed_traces, 96u);
    bool has_t1 = false;
    for (const auto& [name, value] : report->metrics)
        if (name == "max_abs_t_order1") {
            has_t1 = true;
            EXPECT_DOUBLE_EQ(value, result.max_abs_t1);
        }
    EXPECT_TRUE(has_t1);
}

TEST(RunReport, PathResolutionMirrorsCheckpoints) {
    eval::CampaignRunOptions run;
    ::unsetenv("GLITCHMASK_REPORT_DIR");
    EXPECT_EQ(eval::resolve_report_path(run, "des_tvla"), "");
    run.report_path = "/tmp/explicit.report.json";
    EXPECT_EQ(eval::resolve_report_path(run, "des_tvla"),
              "/tmp/explicit.report.json");
    run.report_path.clear();
    ::setenv("GLITCHMASK_REPORT_DIR", "/tmp/gm_reports", 1);
    EXPECT_EQ(eval::resolve_report_path(run, "des_tvla"),
              "/tmp/gm_reports/des_tvla.report.json");
    ::unsetenv("GLITCHMASK_REPORT_DIR");
}

// ----- progress meter ----------------------------------------------------

TEST(ProgressMeter, InactiveWithoutCallbackOrHeartbeat) {
    telemetry::set_heartbeat_interval(0.0);
    telemetry::ProgressMeter meter("idle", 100, nullptr);
    EXPECT_FALSE(meter.active());
    meter.advance(10);  // must be safe even when inactive
    EXPECT_EQ(meter.completed(), 10u);
}

TEST(ProgressMeter, CallbackSeesRateLimitedAndFinalUpdates) {
    telemetry::set_heartbeat_interval(0.0);
    std::vector<telemetry::ProgressUpdate> updates;
    telemetry::ProgressMeter meter(
        "cb", 64, [&](const telemetry::ProgressUpdate& u) {
            updates.push_back(u);
        });
    EXPECT_TRUE(meter.active());
    // The first advance always lands (the emit deadline starts at 0); the
    // immediately-following ones fall inside the rate-limit window.
    for (int i = 0; i < 32; ++i) meter.advance(1);
    meter.finish();
    ASSERT_GE(updates.size(), 2u);
    EXPECT_LT(updates.size(), 32u);  // rate limit suppressed the burst
    EXPECT_EQ(updates.front().campaign, "cb");
    EXPECT_EQ(updates.front().total_traces, 64u);
    EXPECT_FALSE(updates.front().final);
    EXPECT_TRUE(updates.back().final);
    EXPECT_EQ(updates.back().completed_traces, 32u);
}

TEST(ProgressMeter, ResumedTracesCountTowardCompletionNotRate) {
    telemetry::set_heartbeat_interval(0.0);
    telemetry::ProgressUpdate last;
    telemetry::ProgressMeter meter(
        "resume", 100, [&](const telemetry::ProgressUpdate& u) { last = u; });
    meter.note_resumed(60);
    meter.advance(5);
    meter.finish();
    EXPECT_EQ(last.completed_traces, 65u);
    EXPECT_TRUE(last.final);
    // Rate derives from the 5 fresh traces only; with 35 left the ETA can
    // exceed the elapsed time many-fold, but it must be finite and the
    // rate positive.
    EXPECT_GT(last.traces_per_sec, 0.0);
}

TEST(ProgressMeter, ZeroFreshTracesNeverDividesByZero) {
    telemetry::set_heartbeat_interval(0.0);
    // A campaign cancelled before its first block finishes with zero
    // completed traces; the rate/ETA math must report clean zeros, never
    // 0/elapsed artifacts or NaN.
    telemetry::ProgressUpdate last;
    telemetry::ProgressMeter meter(
        "empty", 100, [&](const telemetry::ProgressUpdate& u) { last = u; });
    meter.finish();
    EXPECT_TRUE(last.final);
    EXPECT_EQ(last.completed_traces, 0u);
    EXPECT_EQ(last.traces_per_sec, 0.0);
    EXPECT_EQ(last.eta_sec, 0.0);
    EXPECT_GE(last.elapsed_sec, 0.0);
}

TEST(ProgressMeter, ResumeCreditWithNoFreshWorkKeepsRateZero) {
    telemetry::set_heartbeat_interval(0.0);
    // A resume credits 80 traces before any fresh block lands.  The fresh
    // count (completed - resumed) is zero; an unguarded u64 subtraction
    // under the emit/note_resumed race would instead produce a ~1.8e19
    // "fresh" count.  With zero rate, the 20 remaining traces must yield
    // ETA 0 (unknown), never a division by the zero rate.
    telemetry::ProgressUpdate last;
    telemetry::ProgressMeter meter(
        "saturate", 100,
        [&](const telemetry::ProgressUpdate& u) { last = u; });
    meter.note_resumed(80);
    meter.finish();
    EXPECT_EQ(last.completed_traces, 80u);
    EXPECT_EQ(last.traces_per_sec, 0.0);
    EXPECT_EQ(last.eta_sec, 0.0);
}

TEST(ProgressMeter, FullyResumedRunReportsZeroEta) {
    telemetry::set_heartbeat_interval(0.0);
    // Everything was done by the previous process: completion is total,
    // the fresh-trace rate is zero, and the ETA must not go negative or
    // divide by the zero rate.
    telemetry::ProgressUpdate last;
    telemetry::ProgressMeter meter(
        "all_resumed", 50,
        [&](const telemetry::ProgressUpdate& u) { last = u; });
    meter.note_resumed(50);
    meter.advance(0);
    meter.finish();
    EXPECT_EQ(last.completed_traces, 50u);
    EXPECT_EQ(last.traces_per_sec, 0.0);
    EXPECT_EQ(last.eta_sec, 0.0);
}

}  // namespace
