# Empty dependencies file for probing_test.
# This may be replaced when dependencies are built.
