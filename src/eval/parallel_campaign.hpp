// Deterministic sharded trace-collection engine.
//
// A campaign of T traces is cut into fixed-size blocks of consecutive
// trace indices.  Blocks are claimed dynamically by the pool's workers
// (work stealing balances the load -- simulator replicas warm up at
// different speeds), each worker owns a private simulator replica built
// from the shared netlist/delay-model, and every block folds its traces
// into a private accumulator.  The block accumulators are then merged in
// a fixed binary tree over block indices.
//
// Determinism is the design center, achieved by two rules:
//   1. Counter-based RNG: trace n draws every random decision (class
//      choice, mask shares, refresh bits, measurement noise) from streams
//      seeded as mix64(mix64(seed, stream_tag), n) -- no generator state
//      is ever shared between traces, so trace n's stimulus is a pure
//      function of (seed, n) no matter which worker runs it.
//   2. Fixed reduction shape: floating-point accumulation is not
//      associative, so bit-identical results require the *merge structure*
//      (block size and tree), not just the trace values, to be independent
//      of the worker count.  Block size is a config constant, never
//      derived from the pool size.
// Together these make a campaign at any worker count -- including 1 --
// produce bit-identical statistics.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "eval/checkpoint.hpp"
#include "support/atomic_file.hpp"
#include "support/fault.hpp"
#include "support/log.hpp"
#include "support/retry.hpp"
#include "support/rng.hpp"
#include "support/telemetry.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace glitchmask::eval {

namespace detail {

/// Per-block telemetry bracket shared by both sharded runners: times the
/// block when collection is on, feeds the progress meter, and -- when
/// span tracing is on -- opens a "block" span for the block's duration
/// (joining the ambient stack so PhaseClock's flushed phase leaves nest
/// under it).  Constructed on the worker thread right before run_block.
class BlockScope {
public:
    explicit BlockScope(trace::SpanId trace_parent = 0, std::size_t block = 0)
        : on_(telemetry::enabled()),
          tracing_(trace::enabled()),
          block_(block),
          parent_(trace_parent),
          start_ns_(on_ || tracing_ ? telemetry::steady_now_ns() : 0) {
        if (tracing_) {
            span_ = trace::new_span_id();
            trace::push_ambient(span_);
        }
    }

    void done(std::size_t traces, telemetry::ProgressMeter* meter) const {
        const std::uint64_t end_ns =
            on_ || tracing_ ? telemetry::steady_now_ns() : 0;
        if (tracing_) {
            trace::pop_ambient();
            trace::record_span(span_, "block", parent_, start_ns_, end_ns,
                               {{"block", std::to_string(block_)},
                                {"traces", std::to_string(traces)}});
        }
        if (on_) {
            const std::uint64_t nanos = end_ns - start_ns_;
            telemetry::Shard& shard = telemetry::shard();
            shard.add(telemetry::Counter::kCampaignBlocks, 1);
            shard.add(telemetry::Counter::kCampaignTraces, traces);
            shard.add(telemetry::Counter::kCampaignBlockNanos, nanos);
            shard.observe(telemetry::Histogram::kBlockNanos, nanos);
            shard.observe(telemetry::Histogram::kBlockTraces, traces);
        }
        if (meter != nullptr) meter->advance(traces);
    }

private:
    bool on_;
    bool tracing_;
    std::size_t block_;
    trace::SpanId parent_;
    trace::SpanId span_ = 0;
    std::uint64_t start_ns_;
};

}  // namespace detail

/// Up-front campaign config validation, shared by every driver: rejects
/// the degenerate values that would otherwise produce a silent zero-block
/// plan or an unusable lane setting.  Throws std::invalid_argument with a
/// message naming the field.  `lanes` follows the config convention
/// (0 = auto, 1 = scalar, 64 = bitsliced).
void validate_campaign_config(std::size_t traces, std::size_t block_size,
                              unsigned lanes);

/// Resolves a config's `workers` field: 0 = GLITCHMASK_WORKERS env /
/// hardware_concurrency (ThreadPool::default_worker_count()).
[[nodiscard]] unsigned resolve_workers(unsigned configured);

/// Resolves a config's `lanes` field (traces simulated per event-queue
/// pass): 1 = scalar EventSimulator, 64 = bitsliced BatchEventSimulator.
/// 0 = auto: GLITCHMASK_LANES env, default 64.  Timing coupling makes
/// delays data-dependent, which breaks the shared-schedule premise of the
/// batch engine, so `timing_coupling` forces the scalar path regardless
/// of the configured value.  Throws on values outside {0, 1, 64}.
[[nodiscard]] unsigned resolve_lanes(unsigned configured, bool timing_coupling);

/// Stream tags feeding mix64(mix64(seed, tag), trace_index): one derived
/// generator per purpose, so stimulus and noise draws never interleave.
inline constexpr std::uint64_t kStimulusStream = 0x7374696d756cULL;  // "stimul"
inline constexpr std::uint64_t kNoiseStream = 0x6e6f697365ULL;       // "noise"

/// The per-trace generator for one purpose; trace_index is the global
/// trace counter, identical in serial and parallel schedules.
[[nodiscard]] inline Xoshiro256 trace_rng(std::uint64_t seed,
                                          std::uint64_t stream_tag,
                                          std::uint64_t trace_index) {
    return Xoshiro256(mix64(mix64(seed, stream_tag), trace_index));
}

/// Fixed decomposition of a trace budget into blocks of consecutive
/// indices.  The block size is part of the campaign's identity: changing
/// it changes the merge tree and therefore the low bits of the result.
struct ShardPlan {
    std::size_t traces = 0;
    std::size_t block_size = 64;

    [[nodiscard]] std::size_t blocks() const noexcept {
        return block_size == 0 ? 0 : (traces + block_size - 1) / block_size;
    }
    [[nodiscard]] std::size_t block_begin(std::size_t block) const noexcept {
        return block * block_size;
    }
    [[nodiscard]] std::size_t block_end(std::size_t block) const noexcept {
        const std::size_t end = (block + 1) * block_size;
        return end < traces ? end : traces;
    }
};

/// In-place pairwise reduction of block accumulators in index order:
/// round 1 merges (0,1)(2,3)..., round 2 merges (0,2)(4,6)..., etc.  The
/// tree depends only on the number of blocks.  Returns the root.
template <class Acc, class Merge>
[[nodiscard]] Acc merge_tree(std::vector<std::optional<Acc>>& blocks,
                             Merge&& merge) {
    for (std::size_t step = 1; step < blocks.size(); step *= 2)
        for (std::size_t i = 0; i + step < blocks.size(); i += 2 * step)
            merge(*blocks[i], *blocks[i + step]);
    return std::move(*blocks.front());
}

/// Runs `plan.traces` traces on `pool` and returns the merged accumulator.
///
///   make_worker() -> owning handle H of one simulator replica; called
///     lazily, at most once per pool worker, on that worker's thread.
///     Return a std::unique_ptr (or any dereference-free movable state):
///     the handle is stored once and never relocated afterwards, so
///     internal pointers (e.g. a PowerRecorder registered as toggle sink)
///     stay valid.
///   make_acc() -> empty block accumulator Acc.
///   run_trace(H& worker, std::size_t trace_index, Acc& acc) collects one
///     trace into the block accumulator.
///   merge(Acc& into, const Acc& from) folds two block accumulators.
template <class MakeWorker, class MakeAcc, class RunTrace, class Merge>
[[nodiscard]] auto run_sharded(ThreadPool& pool, const ShardPlan& plan,
                               MakeWorker&& make_worker, MakeAcc&& make_acc,
                               RunTrace&& run_trace, Merge&& merge)
    -> decltype(make_acc());

/// Block-granular variant of run_sharded for collectors that process a
/// whole block at once -- the bitsliced batch path simulates a block as
/// lane groups of 64 consecutive trace indices, so it needs the [begin,
/// end) range rather than one callback per trace:
///
///   run_block(H& worker, std::size_t begin, std::size_t end, Acc& acc)
///     collects traces [begin, end) into the block accumulator.
///
/// Sharding, replica reuse and the merge tree are identical to
/// run_sharded, so the per-block accumulation order -- and therefore the
/// merged floating-point result -- only depends on what run_block feeds
/// the accumulator.
template <class MakeWorker, class MakeAcc, class RunBlock, class Merge>
[[nodiscard]] auto run_sharded_blocks(ThreadPool& pool, const ShardPlan& plan,
                                      MakeWorker&& make_worker,
                                      MakeAcc&& make_acc, RunBlock&& run_block,
                                      Merge&& merge,
                                      telemetry::ProgressMeter* meter = nullptr,
                                      trace::SpanId trace_parent = 0)
    -> decltype(make_acc()) {
    using Acc = decltype(make_acc());
    using Worker = decltype(make_worker());

    const std::size_t n_blocks = plan.blocks();
    if (n_blocks == 0) return make_acc();

    // One lazily-built replica slot per pool worker.  Each slot is only
    // ever touched by the pool thread with that index, so no locking.
    std::vector<std::optional<Worker>> replicas(pool.size());
    std::vector<std::optional<Acc>> blocks(n_blocks);

    TaskGroup group(pool);
    for (std::size_t b = 0; b < n_blocks; ++b) {
        group.run([&, b] {
            const int id = pool.current_worker();
            std::optional<Worker>& slot = replicas[static_cast<std::size_t>(id)];
            if (!slot.has_value()) slot.emplace(make_worker());

            const detail::BlockScope scope(trace_parent, b);
            Acc acc = make_acc();
            const std::size_t begin = plan.block_begin(b);
            const std::size_t end = plan.block_end(b);
            run_block(*slot, begin, end, acc);
            blocks[b].emplace(std::move(acc));
            scope.done(end - begin, meter);
        });
    }
    group.wait();

    return merge_tree(blocks, merge);
}

template <class MakeWorker, class MakeAcc, class RunTrace, class Merge>
[[nodiscard]] auto run_sharded(ThreadPool& pool, const ShardPlan& plan,
                               MakeWorker&& make_worker, MakeAcc&& make_acc,
                               RunTrace&& run_trace, Merge&& merge)
    -> decltype(make_acc()) {
    using Worker = decltype(make_worker());
    using Acc = decltype(make_acc());
    return run_sharded_blocks(
        pool, plan, std::forward<MakeWorker>(make_worker),
        std::forward<MakeAcc>(make_acc),
        [&run_trace](Worker& worker, std::size_t begin, std::size_t end,
                     Acc& acc) {
            for (std::size_t n = begin; n < end; ++n) run_trace(worker, n, acc);
        },
        std::forward<Merge>(merge));
}

// ----- crash-safe variant ----------------------------------------------
//
// run_sharded_blocks_checkpointed adds three behaviours on top of
// run_sharded_blocks without changing a single result bit:
//
//   * periodic snapshots: every `every_blocks` completed blocks the
//     campaign's merge frontier is written atomically to `policy.path`;
//   * resume: an existing snapshot (fingerprint-checked) seeds the run,
//     which then continues at the first missing block;
//   * graceful shutdown: when `policy.cancel` fires, blocks already
//     running finish, queued blocks are dropped, a final checkpoint is
//     written and the partial merge is returned (progress->cancelled).
//
// Bit-identity with the plain path rests on a classic equivalence: the
// fixed pairwise merge tree of merge_tree() is exactly reproduced by
// folding blocks *in index order* through a binary-counter stack -- push
// each block as a 1-block entry, then merge the top two entries while
// they span equally many blocks.  The surviving entries are the roots of
// the aligned power-of-two subtrees of the tree; the final result folds
// them right-to-left, which is the order merge_tree's increasing-step
// rounds combine them in.  That stack (O(log blocks) accumulators) is the
// entire checkpoint state, so the checkpoint cadence, the worker count
// and the interruption point all drop out of the final float result.
//
// When the policy is inactive (no path, no token, no hook) this delegates
// to run_sharded_blocks -- the hot path is untouched.

template <class MakeWorker, class MakeAcc, class RunBlock, class Merge,
          class EncodeAcc, class DecodeAcc>
[[nodiscard]] auto run_sharded_blocks_checkpointed(
    ThreadPool& pool, const ShardPlan& plan, MakeWorker&& make_worker,
    MakeAcc&& make_acc, RunBlock&& run_block, Merge&& merge,
    const CheckpointPolicy& policy, const CampaignFingerprint& fingerprint,
    EncodeAcc&& encode_acc, DecodeAcc&& decode_acc,
    CampaignProgress* progress = nullptr,
    telemetry::ProgressMeter* meter = nullptr) -> decltype(make_acc()) {
    using Acc = decltype(make_acc());
    using Worker = decltype(make_worker());

    const std::size_t n_blocks = plan.blocks();
    CampaignProgress local_progress;
    CampaignProgress& prog = progress != nullptr ? *progress : local_progress;
    prog = {};

    if (!policy.active()) {
        Acc result = run_sharded_blocks(
            pool, plan, std::forward<MakeWorker>(make_worker),
            std::forward<MakeAcc>(make_acc), std::forward<RunBlock>(run_block),
            std::forward<Merge>(merge), meter, policy.trace_parent);
        prog.completed_blocks = n_blocks;
        prog.completed_traces = plan.traces;
        return result;
    }

    // The merge frontier: (blocks spanned, partial subtree accumulator),
    // spans strictly decreasing powers of two summing to the completed
    // block count.
    std::vector<std::pair<std::uint64_t, Acc>> stack;
    std::size_t next_block = 0;

    if (!policy.path.empty()) {
        try {
            if (const auto bytes = read_file_if_exists(policy.path)) {
                SnapshotReader in(*bytes);  // verifies the CRC trailer
                const CheckpointHeader header = read_checkpoint_header(in);
                require_fingerprint_match(fingerprint, header.fingerprint);
                if (header.completed_blocks > n_blocks ||
                    header.stack_entries > 64)
                    throw CampaignError(
                        CampaignErrorKind::CorruptSnapshot,
                        "snapshot: completed-block count exceeds the block plan");
                std::uint64_t spanned = 0;
                for (std::uint64_t e = 0; e < header.stack_entries; ++e) {
                    const std::uint64_t span = in.u64();
                    const bool pow2 = span != 0 && (span & (span - 1)) == 0;
                    if (!pow2 || (!stack.empty() && stack.back().first <= span))
                        throw CampaignError(
                            CampaignErrorKind::CorruptSnapshot,
                            "snapshot: merge frontier is not a strictly "
                            "decreasing power-of-two sequence");
                    stack.emplace_back(span, decode_acc(in));
                    spanned += span;
                }
                if (spanned != header.completed_blocks)
                    throw CampaignError(CampaignErrorKind::CorruptSnapshot,
                                        "snapshot: merge frontier does not cover "
                                        "the completed blocks");
                next_block = static_cast<std::size_t>(header.completed_blocks);
                prog.resumed = true;
                if (meter != nullptr && next_block > 0)
                    meter->note_resumed(plan.block_end(next_block - 1));
                log::info("resumed campaign from " + policy.path + " at block " +
                          std::to_string(next_block) + "/" +
                          std::to_string(n_blocks));
            }
        } catch (const CampaignError& error) {
            // Quarantine-and-restart degradation: a corrupt snapshot is
            // renamed aside and the campaign starts from zero, which is
            // bit-identical to a fresh run.  ConfigMismatch still throws
            // (the file belongs to a different campaign, not to us).
            if (error.kind() != CampaignErrorKind::CorruptSnapshot ||
                !policy.discard_corrupt_snapshot)
                throw;
            const std::string quarantine = policy.path + ".corrupt";
            (void)std::rename(policy.path.c_str(), quarantine.c_str());
            stack.clear();
            next_block = 0;
            prog.resumed = false;
            prog.snapshot_discarded = true;
            log::warn("discarding corrupt snapshot " + policy.path +
                      " (quarantined as " + quarantine +
                      "); restarting campaign from block 0: " + error.what());
            if (policy.on_degraded)
                policy.on_degraded("snapshot_discarded", error.what());
        }
    }

    auto push_block = [&](Acc&& acc) {
        stack.emplace_back(1, std::move(acc));
        while (stack.size() >= 2 &&
               stack[stack.size() - 2].first == stack.back().first) {
            merge(stack[stack.size() - 2].second, stack.back().second);
            stack[stack.size() - 2].first *= 2;
            stack.pop_back();
        }
    };

    // Persistent checkpoint-write failure under a degradation-enabled
    // policy drops the campaign to its in-memory frontier: results stay
    // exact, durability is gone, and the condition is surfaced once.
    bool checkpoints_disabled = false;
    auto write_checkpoint = [&](std::size_t completed) {
        if (policy.path.empty() || checkpoints_disabled) return;
        const bool telem = telemetry::enabled();
        // The wave loop runs on the submitting thread, so the ambient
        // parent (a service execute span, when one is open) is correct.
        const trace::ScopedSpan span(
            "checkpoint", policy.trace_parent,
            {{"completed_blocks", std::to_string(completed)}});
        const auto start = telem ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
        SnapshotWriter out =
            begin_checkpoint(fingerprint, completed, stack.size());
        for (const auto& [span, acc] : stack) {
            out.u64(span);
            encode_acc(acc, out);
        }
        const std::vector<std::uint8_t> bytes = std::move(out).finish();
        try {
            retry_io(
                policy.io_retry,
                [&] { atomic_write_file(policy.path, bytes); }, policy.cancel,
                [&](unsigned attempt, const CampaignError& error) {
                    if (telemetry::enabled())
                        telemetry::shard().add(telemetry::Counter::kIoRetries);
                    log::warn("checkpoint write attempt " +
                              std::to_string(attempt) + " failed (" +
                              error.what() + "); retrying");
                });
        } catch (const CampaignError& error) {
            if (error.kind() != CampaignErrorKind::IoFailure ||
                !policy.degrade_on_io_error)
                throw;
            checkpoints_disabled = true;
            prog.checkpoint_degraded = true;
            log::warn("checkpoint writes to " + policy.path +
                      " failed persistently (" + error.what() +
                      "); continuing on the in-memory frontier without "
                      "further snapshots");
            if (policy.on_degraded)
                policy.on_degraded("checkpoint_degraded", error.what());
            return;
        }
        if (telem) {
            const auto nanos =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            telemetry::Shard& shard = telemetry::shard();
            shard.add(telemetry::Counter::kCheckpointWrites, 1);
            shard.add(telemetry::Counter::kCheckpointNanos,
                      static_cast<std::uint64_t>(nanos));
            shard.observe(telemetry::Histogram::kCheckpointWriteNanos,
                          static_cast<std::uint64_t>(nanos));
        }
    };

    std::vector<std::optional<Worker>> replicas(pool.size());
    const std::size_t every =
        policy.every_blocks > 0 ? policy.every_blocks : 16;
    // Waves below 2 blocks/worker would starve the pool; the checkpoint
    // cadence is rounded up accordingly (durability only, never results).
    const std::size_t wave_size =
        std::max<std::size_t>(every, std::size_t{2} * pool.size());

    while (next_block < n_blocks) {
        if (policy.cancel != nullptr && policy.cancel->requested()) {
            prog.cancelled = true;
            break;
        }
        const std::size_t wave_end =
            std::min(n_blocks, next_block + wave_size);
        std::vector<std::optional<Acc>> done(wave_end - next_block);
        {
            TaskGroup group(pool, policy.cancel);
            for (std::size_t b = next_block; b < wave_end; ++b) {
                group.run([&, b] {
                    // Chaos site: lets a fault plan stall or kill a worker
                    // mid-campaign (one relaxed load when no plan is on).
                    fault::inject_point("campaign.block");
                    const int id = pool.current_worker();
                    std::optional<Worker>& slot =
                        replicas[static_cast<std::size_t>(id)];
                    if (!slot.has_value()) slot.emplace(make_worker());
                    const detail::BlockScope scope(policy.trace_parent, b);
                    Acc acc = make_acc();
                    const std::size_t begin = plan.block_begin(b);
                    const std::size_t end = plan.block_end(b);
                    run_block(*slot, begin, end, acc);
                    done[b - next_block].emplace(std::move(acc));
                    scope.done(end - begin, meter);
                });
            }
            group.wait();
        }
        // Fold the contiguous completed prefix; a hole means cancellation
        // skipped a block, and out-of-order completions past it cannot be
        // kept (the frontier is strictly index-ordered).
        std::size_t folded = 0;
        while (folded < done.size() && done[folded].has_value())
            push_block(std::move(*done[folded++]));
        next_block += folded;
        if (folded < done.size()) prog.cancelled = true;
        write_checkpoint(next_block);
        if (policy.on_checkpoint) policy.on_checkpoint(next_block);
        if (prog.cancelled) break;
    }

    prog.completed_blocks = next_block;
    prog.completed_traces =
        next_block == 0 ? 0 : plan.block_end(next_block - 1);
    if (prog.cancelled)
        log::info("campaign cancelled after " + std::to_string(next_block) +
                  "/" + std::to_string(n_blocks) + " blocks" +
                  (policy.path.empty() ? std::string{}
                                       : "; checkpoint at " + policy.path));

    if (stack.empty()) return make_acc();
    while (stack.size() >= 2) {
        merge(stack[stack.size() - 2].second, stack.back().second);
        stack.pop_back();
    }
    return std::move(stack.front().second);
}

}  // namespace glitchmask::eval
