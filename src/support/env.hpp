// Environment-variable based experiment scaling.
//
// Benches reproduce the paper's campaigns at software-feasible trace
// counts by default; set GLITCHMASK_TRACES / GLITCHMASK_NOISE / _SEED to
// rescale without recompiling (documented in EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <string>

namespace glitchmask {

/// Integer env var with default; accepts plain integers ("20000").
[[nodiscard]] std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Floating-point env var with default.
[[nodiscard]] double env_double(const std::string& name, double fallback);

/// String env var with default (unset or empty falls back).
[[nodiscard]] std::string env_string(const std::string& name,
                                     const std::string& fallback);

/// Scale factor applied to every bench's trace counts:
/// value of GLITCHMASK_TRACE_SCALE, default 1.0.
[[nodiscard]] double trace_scale();

}  // namespace glitchmask
