# Empty dependencies file for inspect_gadget.
# This may be replaced when dependencies are built.
