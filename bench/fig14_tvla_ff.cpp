// Reproduces paper Fig. 14: leakage assessment of the protected DES
// design using secAND2-FF.
//
//   (a) PRNG off: all masks and refresh bits zero -> massive first-order
//       leakage with very few traces (paper: 12k; here: a few hundred).
//   (b)-(d) PRNG on, three different fixed plaintexts: no first-order
//       leakage, clear second-order leakage (2-share design), and the
//       paper's consistency rule applied across the three campaigns.
//
// Paper: 50M traces per test on a Spartan-6.  Here: simulated power with
// small synthetic noise; the default 3000 traces per test give the same
// verdicts (see EXPERIMENTS.md for the trace-count mapping).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "des/masked_des.hpp"
#include "eval/des_experiments.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

using namespace glitchmask;

int main() {
    bench::banner("Fig. 14: TVLA of protected DES using secAND2-FF");

    const des::MaskedDesCore core(des::MaskedDesOptions{});
    const std::size_t prng_off_traces = bench::scaled_traces(400);
    const std::size_t prng_on_traces = bench::scaled_traces(3000);

    TablePrinter table({"test", "traces", "max|t1|", "max|t2|", "max|t3|",
                        "1st-order verdict"});
    CsvWriter csv("fig14_tvla_ff.csv",
                  {"test", "order", "cycle", "t"});

    // (a) PRNG off sanity check.
    {
        eval::DesTvlaConfig config;
        config.traces = prng_off_traces;
        config.prng_on = false;
        config.seed = 101;
        const eval::DesTvlaResult r = eval::run_des_tvla(core, config);
        table.add_row({"Fig14a PRNG off", std::to_string(r.traces),
                       TablePrinter::num(r.max_abs_t[1]),
                       TablePrinter::num(r.max_abs_t[2]),
                       TablePrinter::num(r.max_abs_t[3]),
                       bench::verdict(r.max_abs_t[1])});
        for (int order = 1; order <= 3; ++order) {
            const std::vector<double> curve = r.campaign.t_curve(order);
            for (std::size_t c = 0; c < curve.size(); ++c)
                csv.raw_row({"prng_off", std::to_string(order),
                             std::to_string(c), TablePrinter::num(curve[c], 4)});
        }
    }

    // (b)-(d) PRNG on, three fixed plaintexts.
    const std::uint64_t plaintexts[3] = {0xDA39A3EE5E6B4B0Dull,
                                         0x0123456789ABCDEFull,
                                         0xA5A5A5A55A5A5A5Aull};
    std::vector<leakage::TvlaCampaign> campaigns;
    bool any_first_order = false;
    for (int p = 0; p < 3; ++p) {
        eval::DesTvlaConfig config;
        config.traces = prng_on_traces;
        config.fixed_plaintext = plaintexts[p];
        config.seed = 202 + static_cast<std::uint64_t>(p);
        eval::DesTvlaResult r = eval::run_des_tvla(core, config);
        const std::string name = std::string("Fig14") +
                                 static_cast<char>('b' + p) + " plaintext " +
                                 std::to_string(p + 1);
        table.add_row({name, std::to_string(r.traces),
                       TablePrinter::num(r.max_abs_t[1]),
                       TablePrinter::num(r.max_abs_t[2]),
                       TablePrinter::num(r.max_abs_t[3]),
                       bench::verdict(r.max_abs_t[1])});
        any_first_order |= r.max_abs_t[1] > leakage::kTvlaThreshold;
        for (int order = 1; order <= 3; ++order) {
            const std::vector<double> curve = r.campaign.t_curve(order);
            for (std::size_t c = 0; c < curve.size(); ++c)
                csv.raw_row({"pt" + std::to_string(p + 1),
                             std::to_string(order), std::to_string(c),
                             TablePrinter::num(curve[c], 4)});
        }
        campaigns.push_back(std::move(r.campaign));
    }
    table.print();

    const std::vector<std::size_t> consistent =
        leakage::consistent_exceedances(campaigns, 1);
    std::printf(
        "\nConsistency rule (paper Sec. VII-A): %zu time indexes exceed the\n"
        "threshold in ALL three campaigns -> implementation deemed %s at\n"
        "first order.  Second-order leakage is clearly present, as the paper\n"
        "observes for any 2-share design.\n",
        consistent.size(), consistent.empty() ? "NOT leaky" : "LEAKY");
    std::printf("CSV: fig14_tvla_ff.csv\n");
    return consistent.empty() ? 0 : 1;
}
