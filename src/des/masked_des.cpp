#include "des/masked_des.hpp"

#include <string>

#include "des/des_reference.hpp"
#include "support/bits.hpp"

namespace glitchmask::des {

namespace {

using netlist::kNoNet;
using netlist::NetId;

/// Pure wiring: output bit i aliases input bit table[i]-1 (both MSB-first).
Bus wire_perm(const Bus& in, std::span<const std::uint8_t> table) {
    Bus out(table.size());
    for (std::size_t i = 0; i < table.size(); ++i) out[i] = in[table[i] - 1];
    return out;
}

Bus concat(const Bus& a, const Bus& b) {
    Bus out = a;
    out.insert(out.end(), b.begin(), b.end());
    return out;
}

Bus slice(const Bus& in, std::size_t begin, std::size_t count) {
    return Bus(in.begin() + static_cast<std::ptrdiff_t>(begin),
               in.begin() + static_cast<std::ptrdiff_t>(begin + count));
}

/// Left rotation as wiring (MSB-first bus).
Bus rotl_wire(const Bus& in, unsigned amount) {
    Bus out(in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        out[i] = in[(i + amount) % in.size()];
    return out;
}

Bus xor_wire(Netlist& nl, const Bus& a, const Bus& b) {
    Bus out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = nl.xor2(a[i], b[i]);
    return out;
}

/// out[i] = sel ? when1[i] : when0[i].
Bus mux_wire(Netlist& nl, const Bus& when0, const Bus& when1, NetId sel) {
    Bus out(when0.size());
    for (std::size_t i = 0; i < when0.size(); ++i)
        out[i] = nl.mux2(when0[i], when1[i], sel);
    return out;
}

}  // namespace

MaskedDesCore::MaskedDesCore(const MaskedDesOptions& options)
    : options_(options), nl_(std::make_unique<Netlist>()) {
    build();
}

void MaskedDesCore::build() {
    Netlist& nl = *nl_;
    pt_s0_ = netlist::input_bus(nl, "pt_s0", 64);
    pt_s1_ = netlist::input_bus(nl, "pt_s1", 64);
    key_s0_ = netlist::input_bus(nl, "key_s0", 64);
    key_s1_ = netlist::input_bus(nl, "key_s1", 64);
    const std::size_t per_sbox = options_.flavor == CoreFlavor::DOM
                                     ? kDomRandomBitsPerSbox
                                     : kRandomBitsPerSbox;
    rand_ = netlist::input_bus(
        nl, "rand", options_.recycle_randomness ? per_sbox : 8 * per_sbox);
    load_sel_ = nl.input("load_sel");
    shift_one_ = nl.input("shift_one");
    build_datapath();
    nl.freeze();
}

void MaskedDesCore::build_datapath() {
    Netlist& nl = *nl_;
    const bool pd = options_.flavor == CoreFlavor::PD;

    struct ShareSide {
        Bus L, R, C, D;          // register Q nets
        Bus ip_left, ip_right;   // IP wiring of the plaintext share
        Bus subkey;              // PC2 output feeding the S-box input path
        Bus sbin;                // S-box input register Q nets (48)
    };
    std::array<ShareSide, 2> side{};

    // Registers and key schedule per share.
    for (unsigned s = 0; s < 2; ++s) {
        Netlist::Scope scope(nl, "share" + std::to_string(s));
        ShareSide& sh = side[s];
        const Bus& pt = (s == 0) ? pt_s0_ : pt_s1_;
        const Bus& key = (s == 0) ? key_s0_ : key_s1_;

        const Bus ip = wire_perm(pt, table_ip());
        sh.ip_left = slice(ip, 0, 32);
        sh.ip_right = slice(ip, 32, 32);

        sh.L = netlist::register_bank_floating(nl, 32, kStateG,
                                               netlist::kAlwaysEnabled, "L");
        sh.R = netlist::register_bank_floating(nl, 32, kStateG,
                                               netlist::kAlwaysEnabled, "R");
        sh.sbin = netlist::register_bank_floating(
            nl, 48, kSboxInG, netlist::kAlwaysEnabled, "sbin");

        // Masked key schedule: C/D rotation registers with a load mux and
        // a shift-by-1/2 select; all wiring is linear and share-wise.
        Netlist::Scope key_scope(nl, "keysched");
        const Bus cd = wire_perm(key, table_pc1());
        sh.C = netlist::register_bank_floating(nl, 28, kKeyG,
                                               netlist::kAlwaysEnabled, "C");
        sh.D = netlist::register_bank_floating(nl, 28, kKeyG,
                                               netlist::kAlwaysEnabled, "D");
        const Bus base_c = mux_wire(nl, sh.C, slice(cd, 0, 28), load_sel_);
        const Bus base_d = mux_wire(nl, sh.D, slice(cd, 28, 28), load_sel_);
        const Bus c_next =
            mux_wire(nl, rotl_wire(base_c, 2), rotl_wire(base_c, 1), shift_one_);
        const Bus d_next =
            mux_wire(nl, rotl_wire(base_d, 2), rotl_wire(base_d, 1), shift_one_);
        for (std::size_t i = 0; i < 28; ++i) {
            nl.connect_flop(sh.C[i], c_next[i]);
            nl.connect_flop(sh.D[i], d_next[i]);
        }
        // FF core: subkey from the registered C/D (sampled one cycle
        // before the S-box input register).  PD core: the S-box input
        // register samples at the same edge as C/D, so it taps the
        // combinational next-key value instead (Fig. 9b timing).
        sh.subkey = pd ? wire_perm(concat(c_next, d_next), table_pc2())
                       : wire_perm(concat(sh.C, sh.D), table_pc2());
    }

    // Substitution layer: 8 masked S-boxes on the registered inputs,
    // sharing the 14 random nets.
    std::array<Bus, 2> sout{Bus(32, kNoNet), Bus(32, kNoNet)};
    for (unsigned box = 0; box < 8; ++box) {
        SharedBus in(6);
        for (unsigned bit = 0; bit < 6; ++bit)
            in[bit] = SharedNet{side[0].sbin[box * 6 + bit],
                                side[1].sbin[box * 6 + bit]};
        const std::size_t per_sbox = options_.flavor == CoreFlavor::DOM
                                         ? kDomRandomBitsPerSbox
                                         : kRandomBitsPerSbox;
        const std::size_t rand_base =
            options_.recycle_randomness ? 0 : box * per_sbox;
        const std::span<const NetId> sbox_rand{rand_.data() + rand_base,
                                               per_sbox};
        SharedBus out;
        if (options_.flavor == CoreFlavor::DOM) {
            SboxDomGroups groups;
            groups.g_dom1 = kLayer1G;
            groups.g_dom2 = kLayer2G;
            groups.g_dom3 = kMux2G;
            groups.g_out = kOutG;
            out = build_masked_sbox_dom(nl, box, in, sbox_rand, groups);
        } else if (pd) {
            SboxPdGroups groups;
            groups.g_mid = kMidG;
            SboxPdOptions sbox_options;
            sbox_options.luts_per_unit = options_.delayunit_luts;
            sbox_options.couple_adjacent = options_.couple_adjacent;
            out = build_masked_sbox_pd(nl, box, in, sbox_rand, groups,
                                       sbox_options);
        } else {
            SboxFfGroups groups;
            groups.g_layer1 = kLayer1G;
            groups.g_layer2 = kLayer2G;
            groups.g_sync = kSyncG;
            groups.g_mux2 = kMux2G;
            groups.g_out = kOutG;
            groups.rst_early = kRstEarly;
            groups.rst_late = kRstLate;
            out = build_masked_sbox_ff(nl, box, in, sbox_rand, groups);
        }
        for (unsigned bit = 0; bit < 4; ++bit) {
            sout[0][box * 4 + bit] = out[bit].s0;
            sout[1][box * 4 + bit] = out[bit].s1;
        }
    }

    // Linear round feedback, S-box input path, and ciphertext per share.
    for (unsigned s = 0; s < 2; ++s) {
        Netlist::Scope scope(nl, "share" + std::to_string(s));
        ShareSide& sh = side[s];
        const Bus f_out = wire_perm(sout[s], table_p());
        const Bus r_feedback = xor_wire(nl, f_out, sh.L);
        const Bus r_next = mux_wire(nl, r_feedback, sh.ip_right, load_sel_);
        const Bus l_next = mux_wire(nl, sh.R, sh.ip_left, load_sel_);
        for (std::size_t i = 0; i < 32; ++i) {
            nl.connect_flop(sh.L[i], l_next[i]);
            nl.connect_flop(sh.R[i], r_next[i]);
        }

        // S-box input register D pins: E(R?) xor K.  The FF core reads the
        // state register (one cycle earlier); the PD core reads the
        // combinational feedback so the input register can sample at the
        // state-update edge itself (S-box output -> input register direct).
        const Bus r_for_sbox = pd ? r_next : sh.R;
        const Bus expanded = wire_perm(r_for_sbox, table_e());
        const Bus keyed = xor_wire(nl, expanded, sh.subkey);
        for (std::size_t i = 0; i < 48; ++i)
            nl.connect_flop(sh.sbin[i], keyed[i]);

        // Ciphertext: FP(R16 || L16), R16 = combinational feedback,
        // L16 = the R register (holding R15 after the last round).
        const Bus preoutput = concat(r_next, sh.R);
        Bus& ct = (s == 0) ? ct_s0_ : ct_s1_;
        ct = wire_perm(preoutput, table_fp());
    }
}

namespace {

/// Drives `bus` (MSB-first) to per-lane values: vals[l] is lane l's word.
/// transpose64 turns the 64 per-trace words into one lane word per bit
/// position; bus[i] carries value bit size-1-i.
void set_word_batch(sim::BatchClockedSim& sim, const Bus& bus,
                    const std::array<std::uint64_t, sim::kBatchLanes>& vals) {
    std::array<std::uint64_t, sim::kBatchLanes> m = vals;
    transpose64(m);
    for (std::size_t i = 0; i < bus.size(); ++i)
        sim.set_input_word(bus[i], m[bus.size() - 1 - i]);
}

/// Reads `bus` back into per-lane words (the inverse lane transposition;
/// transpose64 is an involution).
std::array<std::uint64_t, sim::kBatchLanes> read_word_batch(
    const sim::BatchClockedSim& sim, const Bus& bus) {
    std::array<std::uint64_t, sim::kBatchLanes> m{};
    for (std::size_t i = 0; i < bus.size(); ++i)
        m[bus.size() - 1 - i] = sim.word(bus[i]);
    transpose64(m);
    return m;
}

}  // namespace

std::array<MaskedWord, sim::kBatchLanes> MaskedDesCore::encrypt_batch(
    sim::BatchClockedSim& sim, std::span<const MaskedWord> pt,
    std::span<const MaskedWord> key, std::span<Xoshiro256> prngs) const {
    std::array<std::uint64_t, sim::kBatchLanes> pt0{}, pt1{}, k0{}, k1{};
    for (std::size_t lane = 0; lane < pt.size(); ++lane) {
        pt0[lane] = pt[lane].s0;
        pt1[lane] = pt[lane].s1;
        k0[lane] = key[lane].s0;
        k1[lane] = key[lane].s1;
    }
    set_word_batch(sim, pt_s0_, pt0);
    set_word_batch(sim, pt_s1_, pt1);
    set_word_batch(sim, key_s0_, k0);
    set_word_batch(sim, key_s1_, k1);
    set_rand(sim, prngs);
    sim.set_input(load_sel_, true);
    sim.set_input(shift_one_, true);  // round 1 shifts by 1
    sim.step();                       // stimulus lands

    switch (options_.flavor) {
        case CoreFlavor::FF: run_rounds_ff(sim, prngs); break;
        case CoreFlavor::PD: run_rounds_pd(sim, prngs); break;
        case CoreFlavor::DOM: run_rounds_dom(sim, prngs); break;
    }

    const std::array<std::uint64_t, sim::kBatchLanes> ct0 =
        read_word_batch(sim, ct_s0_);
    const std::array<std::uint64_t, sim::kBatchLanes> ct1 =
        read_word_batch(sim, ct_s1_);
    std::array<MaskedWord, sim::kBatchLanes> ct;
    for (unsigned lane = 0; lane < sim::kBatchLanes; ++lane)
        ct[lane] = MaskedWord{ct0[lane], ct1[lane]};
    return ct;
}

}  // namespace glitchmask::des
