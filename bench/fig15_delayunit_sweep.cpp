// Reproduces paper Fig. 15: finding the optimal DelayUnit size for the
// protected DES design using secAND2-PD.
//
// Several versions of the PD core differing only in the DelayUnit size
// run the same fixed-vs-random campaign.  Small units cannot dominate the
// routing-jitter spread, so arrival orders are occasionally violated and
// first-order leakage appears; it decreases with the unit size and is
// gone at 10 LUTs (the paper's optimum).  The paper's 15e/15f nuance --
// a size that looks clean at 0.5M traces but leaks at 5M -- is reproduced
// by re-running the borderline size with 4x the traces.
//
// Paper: 500k traces per version (5M for 15f).  Here: 2000 per version
// (8000 for the long run) with small synthetic noise.
#include <cstdio>

#include "bench_util.hpp"
#include "des/masked_des.hpp"
#include "eval/des_experiments.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

using namespace glitchmask;

namespace {

eval::DesTvlaResult run_size(unsigned luts, std::size_t traces) {
    des::MaskedDesOptions options;
    options.flavor = des::CoreFlavor::PD;
    options.delayunit_luts = luts;
    const des::MaskedDesCore core(options);
    eval::DesTvlaConfig config;
    config.traces = traces;
    config.seed = 31;
    return eval::run_des_tvla(core, config);
}

}  // namespace

int main() {
    bench::banner("Fig. 15: DelayUnit size sweep for secAND2-PD DES");

    const std::size_t traces = bench::scaled_traces(2000);
    const std::size_t long_traces = bench::scaled_traces(8000);

    TablePrinter table({"DelayUnit [LUTs]", "traces", "max|t1|", "max|t2|",
                        "1st-order verdict"});
    CsvWriter csv("fig15_delayunit_sweep.csv",
                  {"luts", "traces", "max_abs_t1", "max_abs_t2"});

    double t1_smallest = 0.0;
    double t1_largest = 0.0;
    double t1_borderline_base = 0.0;
    const unsigned borderline = 2;
    for (const unsigned luts : {1u, 2u, 4u, 5u, 7u, 10u}) {
        const eval::DesTvlaResult r = run_size(luts, traces);
        if (luts == 1) t1_smallest = r.max_abs_t[1];
        if (luts == 10) t1_largest = r.max_abs_t[1];
        if (luts == borderline) t1_borderline_base = r.max_abs_t[1];
        table.add_row({std::to_string(luts), std::to_string(r.traces),
                       TablePrinter::num(r.max_abs_t[1]),
                       TablePrinter::num(r.max_abs_t[2]),
                       bench::verdict(r.max_abs_t[1])});
        csv.row({static_cast<double>(luts), static_cast<double>(r.traces),
                 r.max_abs_t[1], r.max_abs_t[2]});
    }

    // The paper's 15e/15f step: a borderline size that passes at the base
    // trace count can still leak once more traces are collected.
    const eval::DesTvlaResult longer = run_size(borderline, long_traces);
    table.add_row({std::to_string(borderline) + " (re-run)",
                   std::to_string(longer.traces),
                   TablePrinter::num(longer.max_abs_t[1]),
                   TablePrinter::num(longer.max_abs_t[2]),
                   bench::verdict(longer.max_abs_t[1])});
    csv.row({static_cast<double>(borderline),
             static_cast<double>(longer.traces), longer.max_abs_t[1],
             longer.max_abs_t[2]});
    table.print();

    std::printf(
        "\nExpected shape (paper Fig. 15): pronounced first-order leakage at\n"
        "1 LUT, decreasing with size, none at 10 LUTs; the borderline size\n"
        "(here %u LUTs: %.1f at %zu traces) reveals itself with more traces\n"
        "(%.1f at %zu traces) -- the paper's 15e -> 15f effect.\n",
        borderline, t1_borderline_base, traces, longer.max_abs_t[1],
        long_traces);
    std::printf("CSV: fig15_delayunit_sweep.csv\n");

    const bool shape_holds =
        t1_smallest > leakage::kTvlaThreshold &&
        t1_largest < leakage::kTvlaThreshold && t1_smallest > t1_largest;
    return shape_holds ? 0 : 1;
}
