// Composition of secAND2 gadgets into products of more than two shared
// variables (paper Sec. III).
//
//   * product_tree_ff(): the Fig. 4/5 construction -- a balanced tree of
//     secAND2-FF gadgets whose internal flip-flops are grouped per layer;
//     the caller's FSM enables layer l's group in cycle l+1 after the
//     operands arrive, giving a latency of log2(n)+1 cycles.
//   * product_chain_pd(): the Fig. 6 construction -- a chain of secAND2
//     gadgets with the Table II path-delay schedule applied to the input
//     shares, computing the whole product in a single cycle.
//   * table2_schedule(): the delay schedule itself, exposed so tests and
//     documentation can cross-check it against the paper's Table II.
#pragma once

#include <span>
#include <vector>

#include "core/gadgets.hpp"

namespace glitchmask::core {

struct FfProduct {
    SharedNet out;
    unsigned layers = 0;       // tree depth; latency is layers + 1 cycles
    CtrlGroup first_group = 0; // layer l samples via group first_group + l
};

/// Product of `vars` (independently shared) with secAND2-FF gadgets.
/// Layer l's internal flip-flops live in enable group `first_group + l`
/// and reset group `reset`.  Requires at least one variable; a single
/// variable is returned unchanged (layers = 0).
[[nodiscard]] FfProduct product_tree_ff(Netlist& nl,
                                        std::span<const SharedNet> vars,
                                        CtrlGroup first_group,
                                        CtrlGroup reset = netlist::kAlwaysEnabled);

struct PdProduct {
    SharedNet out;
    unsigned max_delay_units = 0;  // depth of the longest delay chain
};

/// Product of `vars` with chained secAND2 gadgets and the Table II
/// path-delay schedule: for n variables, variable i (0-based) has share 0
/// delayed by n-1-i DelayUnits and share 1 by n-1+i DelayUnits, so the
/// global arrival order is
///   v_{n-1}.s0 -> ... -> v_0.s0, v_0.s1 -> ... -> v_{n-1}.s1.
[[nodiscard]] PdProduct product_chain_pd(Netlist& nl,
                                         std::span<const SharedNet> vars,
                                         const PathDelayOptions& options = {});

/// The Table II delay schedule in DelayUnits for a product of n variables.
struct DelaySchedule {
    std::vector<unsigned> share0;  // per variable
    std::vector<unsigned> share1;
};
[[nodiscard]] DelaySchedule table2_schedule(unsigned n);

/// Applies independent delay chains to the two shares of a masked wire and
/// returns the chains for coupling registration.
struct DelayedShared {
    SharedNet out;
    netlist::DelayChain chain0;
    netlist::DelayChain chain1;
};
[[nodiscard]] DelayedShared delay_shared(Netlist& nl, SharedNet a,
                                         unsigned units0, unsigned units1,
                                         unsigned luts_per_unit,
                                         std::string_view name = {});

}  // namespace glitchmask::core
