// Zero-delay (functional) cycle simulator.
//
// Same netlist, same enable/reset group semantics as ClockedSim, but the
// combinational network settles instantaneously via one levelized pass.
// No glitches, no power: this engine exists for *functional* verification
// (the masked DES cores must encrypt exactly like the reference DES) and
// as the fast inner loop of correctness property tests.  The contrast
// between this engine and the event-driven one is precisely the paper's
// point: a functional model cannot see the leakage.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/builder.hpp"
#include "netlist/netlist.hpp"

namespace glitchmask::sim {

using netlist::Bus;
using netlist::CtrlGroup;
using netlist::NetId;

class ZeroDelaySim {
public:
    explicit ZeroDelaySim(const netlist::Netlist& nl);

    void set_enable(CtrlGroup group, bool enabled);
    void set_reset(CtrlGroup group, bool asserted);

    /// Takes effect at the next step(), after flop sampling -- identical
    /// ordering to ClockedSim.
    void set_input(NetId input, bool value);
    void set_input_bus(const Bus& bus, std::uint64_t value);

    void step(std::size_t cycles = 1);

    [[nodiscard]] bool value(NetId net) const noexcept { return values_[net] != 0; }
    [[nodiscard]] std::uint64_t read_bus(const Bus& bus) const;

    [[nodiscard]] std::size_t cycle() const noexcept { return cycle_; }

    void restart();

private:
    void settle();

    const netlist::Netlist& nl_;
    std::vector<std::uint8_t> values_;
    std::vector<std::uint8_t> enable_;
    std::vector<std::uint8_t> reset_;
    struct PendingInput {
        NetId net;
        bool value;
    };
    std::vector<PendingInput> pending_;
    std::size_t cycle_ = 0;
};

}  // namespace glitchmask::sim
