file(REMOVE_RECURSE
  "CMakeFiles/fig17_tvla_pd.dir/fig17_tvla_pd.cpp.o"
  "CMakeFiles/fig17_tvla_pd.dir/fig17_tvla_pd.cpp.o.d"
  "fig17_tvla_pd"
  "fig17_tvla_pd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_tvla_pd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
