// Entry-vs-entry comparison: did the *result* change, and did the cost?
//
// Leakage facts are deterministic by construction (the counter-based
// per-trace RNG makes every campaign a pure function of its fingerprint),
// so two same-fingerprint runs must agree on max|t1|, the toggle count
// and the attribution table to the BIT -- any deviation is a real change
// (an intentional algorithm change, or a nondeterminism bug), never
// noise.  diff_entries() therefore compares leakage fields with
// std::bit_cast, not epsilons, and reports per-field bit_identical /
// changed verdicts plus the nets that entered or left the culprit table.
// Timings are the opposite -- always noisy -- so the diff only *reports*
// them side by side; judging them needs history and lives in
// obs/regression.hpp.
#pragma once

#include <string>
#include <vector>

#include "obs/ledger.hpp"

namespace glitchmask::obs {

/// One exactly-compared leakage field.
struct FieldDiff {
    std::string name;        // "max_abs_t1", "toggles", "net:<name>", ...
    bool bit_identical = false;
    double before = 0.0;     // exact for u64 fields below 2^53
    double after = 0.0;

    friend bool operator==(const FieldDiff&, const FieldDiff&) = default;
};

/// Attribution-table membership change: a net that entered or left the
/// ranked culprit table between the two entries.
struct NetChange {
    std::string name;
    bool entered = false;  // false = left
    double max_abs_t = 0.0;

    friend bool operator==(const NetChange&, const NetChange&) = default;
};

struct EntryDiff {
    bool same_fingerprint = false;
    /// Every leakage field bit-identical AND the attribution table
    /// unchanged (same nets, same order, same per-net statistics).
    bool leakage_identical = false;
    std::vector<FieldDiff> leakage;   // exact comparisons, fixed order
    std::vector<NetChange> net_changes;
    /// Side-by-side timings (never judged here -- see obs/regression.hpp):
    /// wall/cpu seconds plus one row per phase present on either side.
    std::vector<FieldDiff> timings;

    friend bool operator==(const EntryDiff&, const EntryDiff&) = default;
};

/// Compares `after` against `before`.  Pure; field order in the result is
/// fixed (leakage fields first by schema order, then per-net rows in
/// `before`'s ranking order), so identical inputs render identically.
[[nodiscard]] EntryDiff diff_entries(const LedgerEntry& before,
                                     const LedgerEntry& after);

/// Human-readable markdown rendering of a diff (deterministic).
[[nodiscard]] std::string render_diff_markdown(const LedgerEntry& before,
                                               const LedgerEntry& after,
                                               const EntryDiff& diff);

}  // namespace glitchmask::obs
