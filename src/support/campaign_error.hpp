// Structured error taxonomy for long-running campaigns.
//
// A 50M-trace campaign that dies with a bare runtime_error is
// indistinguishable from a bug; recovery tooling needs to know *why* a
// resume failed.  Every failure of the crash-safe campaign runtime is
// reported as a CampaignError with a machine-readable kind:
//
//   ConfigMismatch  - a snapshot was written by a campaign with a
//                     different identity (seed, trace budget, block plan,
//                     ...); resuming from it would silently mix two
//                     different experiments.  The message names the field.
//   CorruptSnapshot - the snapshot file failed structural validation
//                     (magic, version, CRC, truncation, impossible merge
//                     frontier).  It is never partially trusted.
//   IoFailure       - the snapshot could not be read or durably written
//                     (open/write/fsync/rename failure).
#pragma once

#include <stdexcept>
#include <string>

namespace glitchmask {

enum class CampaignErrorKind {
    ConfigMismatch,
    CorruptSnapshot,
    IoFailure,
};

class CampaignError : public std::runtime_error {
public:
    /// `error_number` preserves the errno of the failing syscall for
    /// IoFailure (0 when not applicable) -- retry policies classify
    /// transient errors (EINTR/EAGAIN/EIO) against permanent ones
    /// (ENOSPC/EROFS/EACCES) from it instead of parsing the message.
    CampaignError(CampaignErrorKind kind, const std::string& message,
                  int error_number = 0)
        : std::runtime_error(message),
          kind_(kind),
          error_number_(error_number) {}

    [[nodiscard]] CampaignErrorKind kind() const noexcept { return kind_; }
    [[nodiscard]] int error_number() const noexcept { return error_number_; }

private:
    CampaignErrorKind kind_;
    int error_number_ = 0;
};

/// Stable machine-readable name ("config_mismatch", "corrupt_snapshot",
/// "io_failure") used by run reports and the service protocol.
[[nodiscard]] constexpr const char* campaign_error_kind_name(
    CampaignErrorKind kind) noexcept {
    switch (kind) {
        case CampaignErrorKind::ConfigMismatch: return "config_mismatch";
        case CampaignErrorKind::CorruptSnapshot: return "corrupt_snapshot";
        case CampaignErrorKind::IoFailure: return "io_failure";
    }
    return "unknown";
}

}  // namespace glitchmask
