#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "eval/gadget_tvla.hpp"
#include "leakage/moment_bank.hpp"
#include "leakage/snr.hpp"
#include "leakage/ttest.hpp"
#include "leakage/tvla.hpp"
#include "support/campaign_error.hpp"
#include "support/rng.hpp"
#include "support/simd.hpp"
#include "support/snapshot.hpp"

namespace glitchmask::leakage {
namespace {

std::vector<double> random_row(Xoshiro256& rng, std::size_t points) {
    std::vector<double> row(points);
    for (double& x : row) x = rng.gaussian(1.5, 2.0);
    return row;
}

/// Feeds the same labelled random traces to a MomentBank and a
/// TvlaCampaign.  Point count deliberately not a multiple of 4 so the
/// AVX2 kernel exercises its scalar tail.
struct Pair {
    MomentBank bank;
    TvlaCampaign campaign;

    Pair(std::size_t points, int order)
        : bank(points, order), campaign(points, order) {}

    void feed(std::uint64_t seed, std::size_t traces) {
        Xoshiro256 rng(seed);
        for (std::size_t n = 0; n < traces; ++n) {
            const bool fixed = rng.bit();
            const std::vector<double> row = random_row(rng, bank.points());
            bank.add_trace(fixed, row.data());
            campaign.add_trace(fixed, row);
        }
    }
};

/// Exact (==) state comparison: counts, means, raw central sums and the
/// t statistics at every order.  The bank's contract is bit-identity
/// with the scalar accumulators, not closeness.
void expect_identical(const MomentBank& bank, const TvlaCampaign& campaign) {
    ASSERT_EQ(bank.points(), campaign.samples());
    for (std::size_t i = 0; i < bank.points(); ++i) {
        const UnivariateTTest& point = campaign.point(i);
        for (const bool cls : {true, false}) {
            const MomentAccumulator& acc = point.moments(cls);
            EXPECT_EQ(bank.count(cls), acc.count());
            EXPECT_EQ(bank.mean(cls, i), acc.mean()) << "point " << i;
            for (int p = 2; p <= acc.max_order(); ++p)
                EXPECT_EQ(bank.central_sum(cls, i, p), acc.raw_sums()[p])
                    << "point " << i << " order " << p;
        }
        for (int order = 1; order <= bank.max_test_order(); ++order)
            EXPECT_EQ(bank.t(i, order), point.t(order))
                << "point " << i << " order " << order;
    }
}

TEST(MomentBank, MatchesScalarAccumulatorsExactly) {
    for (const int order : {1, 2, 3}) {
        SCOPED_TRACE(order);
        Pair pair(23, order);
        pair.feed(7 + static_cast<std::uint64_t>(order), 400);
        expect_identical(pair.bank, pair.campaign);
        for (int d = 1; d <= order; ++d) {
            EXPECT_EQ(pair.bank.max_abs_t(d), pair.campaign.max_abs_t(d));
            EXPECT_EQ(pair.bank.t_curve(d), pair.campaign.t_curve(d));
            EXPECT_EQ(pair.bank.exceedances(d, 0.5),
                      pair.campaign.exceedances(d, 0.5));
        }
        std::size_t bank_argmax = 99;
        std::size_t campaign_argmax = 77;
        (void)pair.bank.max_abs_t(1, &bank_argmax);
        (void)pair.campaign.max_abs_t(1, &campaign_argmax);
        EXPECT_EQ(bank_argmax, campaign_argmax);
    }
}

TEST(MomentBank, FirstTraceAndSentinelsMatchTTest) {
    // Degenerate regimes: empty classes, a single trace per class
    // (Pebay's n1 == 0 branch), both must return the scalar sentinels.
    Pair pair(5, 3);
    for (int order = 1; order <= 3; ++order)
        EXPECT_EQ(pair.bank.t(0, order), pair.campaign.point(0).t(order));
    pair.feed(3, 1);
    expect_identical(pair.bank, pair.campaign);
    pair.feed(4, 2);
    expect_identical(pair.bank, pair.campaign);
}

#if defined(GLITCHMASK_HAVE_AVX2)
TEST(MomentBank, Avx2KernelMatchesScalarKernelExactly) {
    if (support::active_simd_level() < support::SimdLevel::kAvx2)
        GTEST_SKIP() << "AVX2 unavailable or disabled via GLITCHMASK_SIMD";
    // Drive both kernels through the same (n1, n) sequence on identical
    // plane copies; every double must match bit for bit, including the
    // vector remainder (21 % 4 != 0 exercises the scalar tail).
    constexpr std::size_t kPoints = 21;
    constexpr int kMaxOrder = 6;
    std::vector<double> mean_s(kPoints, 0.0);
    std::vector<double> sums_s((kMaxOrder + 1) * kPoints, 0.0);
    std::vector<double> mean_v = mean_s;
    std::vector<double> sums_v = sums_s;
    Xoshiro256 rng(29);
    for (std::size_t n = 1; n <= 300; ++n) {
        const std::vector<double> row = random_row(rng, kPoints);
        const double n1 = static_cast<double>(n - 1);
        const double nn = static_cast<double>(n);
        bank_kernels::fold_row_scalar(mean_s.data(), sums_s.data(), kPoints,
                                      kPoints, kMaxOrder, n1, nn, row.data());
        bank_kernels::fold_row_avx2(mean_v.data(), sums_v.data(), kPoints,
                                    kPoints, kMaxOrder, n1, nn, row.data());
    }
    EXPECT_EQ(mean_s, mean_v);
    EXPECT_EQ(sums_s, sums_v);
}
#endif

TEST(MomentBank, MergeMatchesCampaignMergeExactly) {
    // Split/merge must mirror the per-point accumulator merges: compare
    // the merged bank both against a merged campaign and against one
    // bank fed sequentially (merge order effects included).
    Pair left(17, 3);
    Pair right(17, 3);
    left.feed(101, 137);
    right.feed(202, 363);
    left.bank.merge(right.bank);
    left.campaign.merge(right.campaign);
    expect_identical(left.bank, left.campaign);

    // Merging into an empty bank copies; merging an empty is a no-op.
    MomentBank empty(17, 3);
    empty.merge(left.bank);
    expect_identical(empty, left.campaign);
    left.bank.merge(MomentBank(17, 3));
    expect_identical(left.bank, left.campaign);

    MomentBank mismatched(16, 3);
    EXPECT_THROW(left.bank.merge(mismatched), std::invalid_argument);
}

TEST(MomentBank, SnapshotIsByteIdenticalToCampaignAndRoundTrips) {
    Pair pair(13, 3);
    pair.feed(55, 250);

    // The wire format is TvlaCampaign's, byte for byte -- checkpoints
    // written by either representation resume into the other.
    SnapshotWriter bank_out;
    pair.bank.encode(bank_out);
    SnapshotWriter campaign_out;
    pair.campaign.encode(campaign_out);
    const std::vector<std::uint8_t> bank_bytes = std::move(bank_out).finish();
    const std::vector<std::uint8_t> campaign_bytes =
        std::move(campaign_out).finish();
    EXPECT_EQ(bank_bytes, campaign_bytes);

    SnapshotReader bank_in(bank_bytes);
    const MomentBank decoded = MomentBank::decode(bank_in);
    expect_identical(decoded, pair.campaign);

    SnapshotReader campaign_in(bank_bytes);
    const TvlaCampaign cross = TvlaCampaign::decode(campaign_in);
    expect_identical(pair.bank, cross);

    expect_identical(pair.bank, pair.bank.to_campaign());
    expect_identical(MomentBank::from_campaign(pair.campaign), pair.campaign);
}

TEST(MomentBank, DecodeRejectsCorruptSnapshots) {
    // The bank's extra structural invariant: every point must carry the
    // same test order and per-class count (TvlaCampaign can never write
    // anything else, so nonuniformity means corruption).
    const auto write_point = [](SnapshotWriter& out, std::uint32_t order,
                                std::uint32_t acc_order, double n) {
        out.u32(order);
        for (int cls = 0; cls < 2; ++cls) {
            out.u32(acc_order);
            out.f64(n);
            out.f64(0.25);  // mean
            for (std::uint32_t p = 0; p <= acc_order; ++p) out.f64(0.0);
        }
    };
    const auto expect_corrupt = [](SnapshotWriter&& out) {
        const std::vector<std::uint8_t> bytes = std::move(out).finish();
        SnapshotReader in(bytes);
        EXPECT_THROW((void)MomentBank::decode(in), CampaignError);
    };

    SnapshotWriter nonuniform_n;
    nonuniform_n.u64(2);
    write_point(nonuniform_n, 3, 6, 2.0);
    write_point(nonuniform_n, 3, 6, 3.0);
    expect_corrupt(std::move(nonuniform_n));

    SnapshotWriter nonuniform_order;
    nonuniform_order.u64(2);
    write_point(nonuniform_order, 3, 6, 2.0);
    write_point(nonuniform_order, 2, 4, 2.0);
    expect_corrupt(std::move(nonuniform_order));

    SnapshotWriter bad_acc_order;
    bad_acc_order.u64(1);
    write_point(bad_acc_order, 3, 4, 2.0);
    expect_corrupt(std::move(bad_acc_order));

    SnapshotWriter bad_order;
    bad_order.u64(1);
    write_point(bad_order, 9, 18, 2.0);
    expect_corrupt(std::move(bad_order));
}

TEST(MomentBank, SnrMatchesSnrAccumulator) {
    constexpr std::size_t kPoints = 9;
    MomentBank bank(kPoints, 1);
    std::vector<SnrAccumulator> snr;
    for (std::size_t i = 0; i < kPoints; ++i) snr.emplace_back(2);
    Xoshiro256 rng(61);
    for (std::size_t n = 0; n < 300; ++n) {
        const bool fixed = rng.bit();
        const std::vector<double> row = random_row(rng, kPoints);
        bank.add_trace(fixed, row.data());
        for (std::size_t i = 0; i < kPoints; ++i)
            snr[i].add(fixed ? 0 : 1, row[i]);
    }
    for (std::size_t i = 0; i < kPoints; ++i) {
        // Same formula over differently-streamed state (Welford M2 vs
        // Pebay central sums): equal to rounding, not necessarily to the
        // last bit.
        EXPECT_NEAR(bank.snr(i), snr[i].snr(), 1e-12)
            << "point " << i;
        EXPECT_GT(bank.snr(i), 0.0);
    }
}

TEST(MomentBank, GadgetTvlaIdenticalAcrossLaneWidths) {
    // End-to-end through the fused driver fold: the gadget campaign's
    // statistics must not depend on backend or lane width now that every
    // path streams rows into the bank.
    eval::GadgetTvlaConfig config;
    config.gadget = eval::GadgetKind::Ff;
    config.replicas = 2;
    config.traces = 320;
    config.noise_sigma = 0.5;
    config.seed = 17;
    config.workers = 1;
    config.block_size = 128;

    config.lanes = 1;
    config.run.backend = "event";
    const eval::GadgetTvlaResult scalar = eval::run_gadget_tvla(config);
    ASSERT_EQ(scalar.completed_traces, config.traces);
    ASSERT_GT(scalar.max_abs_t1, 0.0);  // not vacuous

    struct Case {
        const char* backend;
        unsigned lanes;
    };
    for (const Case c : {Case{"event", 64}, Case{"compiled", 256},
                         Case{"compiled", 512}}) {
        SCOPED_TRACE(std::string(c.backend) + "/" + std::to_string(c.lanes));
        config.run.backend = c.backend;
        config.lanes = c.lanes;
        const eval::GadgetTvlaResult wide = eval::run_gadget_tvla(config);
        EXPECT_EQ(scalar.max_abs_t1, wide.max_abs_t1);
        EXPECT_EQ(scalar.max_abs_t2, wide.max_abs_t2);
        EXPECT_EQ(scalar.argmax_cycle, wide.argmax_cycle);
    }
}

}  // namespace
}  // namespace glitchmask::leakage
