// ThreadSanitizer stress test for the work-stealing pool.
//
// Built as a standalone binary (no gtest, no glitchmask library) directly
// from src/support/thread_pool.cpp with -fsanitize=thread, and registered
// in the tier-1 ctest run whenever the toolchain provides libtsan -- so
// every `ctest` invocation race-checks the pool even in a plain Release
// build.  The whole-library sanitizer build stays available through
// -DGLITCHMASK_SANITIZE=thread|address.
//
// The scenarios mirror how eval/parallel_campaign.hpp drives the pool:
// many more blocks than workers, per-worker lazily built state, nested
// submits, and cross-thread result slots.
#include <atomic>
#include <cstdio>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <vector>

#include "support/thread_pool.hpp"

namespace {

int failures = 0;

void expect(bool condition, const char* what) {
    if (!condition) {
        std::fprintf(stderr, "FAIL: %s\n", what);
        ++failures;
    }
}

void stress_block_pattern() {
    using glitchmask::TaskGroup;
    using glitchmask::ThreadPool;

    ThreadPool pool(4);
    constexpr std::size_t kBlocks = 512;

    // Campaign-shaped usage: lazily built per-worker state, one result
    // slot per block, each touched by exactly one task.
    std::vector<std::optional<std::uint64_t>> worker_state(pool.size());
    std::vector<std::optional<std::uint64_t>> results(kBlocks);

    TaskGroup group(pool);
    for (std::size_t b = 0; b < kBlocks; ++b)
        group.run([&, b] {
            const int id = pool.current_worker();
            std::optional<std::uint64_t>& state =
                worker_state[static_cast<std::size_t>(id)];
            if (!state.has_value()) state.emplace(0);
            *state += b;
            results[b].emplace(b * 2);
        });
    group.wait();

    std::uint64_t total = 0;
    for (const std::optional<std::uint64_t>& r : results) {
        expect(r.has_value(), "every block produced a result");
        if (r.has_value()) total += *r;
    }
    expect(total == kBlocks * (kBlocks - 1), "block results sum");
}

void stress_nested_submits() {
    using glitchmask::TaskGroup;
    using glitchmask::ThreadPool;

    ThreadPool pool(4);
    TaskGroup group(pool);
    std::atomic<std::size_t> count{0};
    for (int i = 0; i < 64; ++i)
        group.run([&] {
            for (int j = 0; j < 8; ++j)
                group.run([&] { count.fetch_add(1, std::memory_order_relaxed); });
        });
    group.wait();
    expect(count.load() == 64 * 8, "nested submits all ran");
}

void stress_exceptions() {
    using glitchmask::TaskGroup;
    using glitchmask::ThreadPool;

    ThreadPool pool(2);
    TaskGroup group(pool);
    for (int i = 0; i < 32; ++i)
        group.run([i] {
            if (i % 7 == 0) throw std::runtime_error("expected");
        });
    bool threw = false;
    try {
        group.wait();
    } catch (const std::runtime_error&) {
        threw = true;
    }
    expect(threw, "exception propagated to wait()");
}

}  // namespace

int main() {
    for (int round = 0; round < 5; ++round) {
        stress_block_pattern();
        stress_nested_submits();
        stress_exceptions();
    }
    if (failures == 0) std::puts("thread_pool_tsan_test: all checks passed");
    return failures == 0 ? 0 : 1;
}
