// Gate-level netlist model.
//
// This is the structural substrate everything else is built on: masked
// gadgets (core/), the DES cores (des/), static timing (sta), area
// accounting (area), the LUT estimate (lutmap) and both simulators (sim/)
// all operate on this representation.
//
// Representation choices:
//  * Every cell has exactly one output; the net is identified with the
//    driving cell, so NetId == CellId.  Primary inputs are `Input` cells.
//  * Flip-flops carry an *enable group* and a *reset group* instead of
//    enable/reset nets.  The papers' designs control FF sampling order
//    with a small FSM; we keep that FSM in C++ testbench code (see
//    sim::ClockedSim) and tag each FF with the group the FSM drives.
//    This matches the paper's "the enable signal controls when the FF
//    samples" usage without modelling the (side-channel-irrelevant)
//    control logic as gates.
//  * Hierarchy is kept as a scope stack: every cell records the module
//    scope it was created in, so area reports can be broken down per
//    gadget ("Keep Hierarchy" discipline -- shares are never merged
//    across gadget boundaries because we do no logic optimization at all).
//  * Coupled net pairs (physically adjacent delay-chain wires) are
//    recorded in the netlist and consumed by the simulator's coupling
//    model (paper Sec. VII-C).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace glitchmask::netlist {

using CellId = std::uint32_t;
using NetId = std::uint32_t;  // == id of the driving cell
inline constexpr NetId kNoNet = 0xFFFFFFFFu;

/// Enable/reset group identifiers; group 0 is hard-wired "always enabled"
/// / "never reset".
using CtrlGroup = std::uint16_t;
inline constexpr CtrlGroup kAlwaysEnabled = 0;

enum class CellKind : std::uint8_t {
    Input,     // primary input (value driven by the testbench)
    Const0,    // constant 0
    Const1,    // constant 1
    Buf,       // buffer
    Inv,       // inverter
    DelayBuf,  // buffer used purely as a delay element (one LUT / 12 INV)
    And2,
    Nand2,
    Or2,
    Nor2,
    Xor2,
    Xnor2,
    Orn2,      // in0 | !in1 (OR with inverted b; one LUT / ORN2 cell --
               // the secAND2 "x | !y1" term maps to this on hardware)
    SecAnd3,   // (a & b) ^ (a | !c): one secAND2 output share as a single
               // 3-input LUT -- the paper's FPGA mapping of Eq. 2 (each
               // z output computed in one LUT, so it transitions once per
               // input arrival instead of glitching between sub-gates)
    Mux2,      // in2 ? in1 : in0
    Dff,       // D flip-flop: in0 = D; enable/reset via ctrl groups
};

inline constexpr std::size_t kNumCellKinds = 16;

/// Number of input pins for a cell kind.
[[nodiscard]] constexpr unsigned pin_count(CellKind kind) noexcept {
    switch (kind) {
        case CellKind::Input:
        case CellKind::Const0:
        case CellKind::Const1: return 0;
        case CellKind::Buf:
        case CellKind::Inv:
        case CellKind::DelayBuf:
        case CellKind::Dff: return 1;
        case CellKind::Mux2:
        case CellKind::SecAnd3: return 3;
        default: return 2;
    }
}

[[nodiscard]] constexpr std::string_view kind_name(CellKind kind) noexcept {
    switch (kind) {
        case CellKind::Input: return "INPUT";
        case CellKind::Const0: return "CONST0";
        case CellKind::Const1: return "CONST1";
        case CellKind::Buf: return "BUF";
        case CellKind::Inv: return "INV";
        case CellKind::DelayBuf: return "DELAYBUF";
        case CellKind::And2: return "AND2";
        case CellKind::Nand2: return "NAND2";
        case CellKind::Or2: return "OR2";
        case CellKind::Nor2: return "NOR2";
        case CellKind::Xor2: return "XOR2";
        case CellKind::Xnor2: return "XNOR2";
        case CellKind::Orn2: return "ORN2";
        case CellKind::SecAnd3: return "SECAND3";
        case CellKind::Mux2: return "MUX2";
        case CellKind::Dff: return "DFF";
    }
    return "?";
}

/// Combinational evaluation of a cell given its input pin values.
/// Dff evaluates to its D pin (used only when explicitly sampling).
[[nodiscard]] constexpr bool eval_cell(CellKind kind, bool a, bool b = false,
                                       bool c = false) noexcept {
    switch (kind) {
        case CellKind::Input: return a;   // value injected via pin 0
        case CellKind::Const0: return false;
        case CellKind::Const1: return true;
        case CellKind::Buf:
        case CellKind::DelayBuf: return a;
        case CellKind::Inv: return !a;
        case CellKind::And2: return a && b;
        case CellKind::Nand2: return !(a && b);
        case CellKind::Or2: return a || b;
        case CellKind::Nor2: return !(a || b);
        case CellKind::Xor2: return a != b;
        case CellKind::Xnor2: return a == b;
        case CellKind::Orn2: return a || !b;
        case CellKind::SecAnd3: return (a && b) != (a || !c);
        case CellKind::Mux2: return c ? b : a;
        case CellKind::Dff: return a;
    }
    return false;
}

/// Word-parallel evaluation of a cell: each of the 64 bit positions is an
/// independent evaluation (one simulation lane).  Bit-for-bit consistent
/// with eval_cell at every lane -- the bitsliced simulator relies on that.
[[nodiscard]] constexpr std::uint64_t eval_cell_word(CellKind kind,
                                                     std::uint64_t a,
                                                     std::uint64_t b = 0,
                                                     std::uint64_t c = 0) noexcept {
    switch (kind) {
        case CellKind::Input: return a;
        case CellKind::Const0: return 0;
        case CellKind::Const1: return ~std::uint64_t{0};
        case CellKind::Buf:
        case CellKind::DelayBuf: return a;
        case CellKind::Inv: return ~a;
        case CellKind::And2: return a & b;
        case CellKind::Nand2: return ~(a & b);
        case CellKind::Or2: return a | b;
        case CellKind::Nor2: return ~(a | b);
        case CellKind::Xor2: return a ^ b;
        case CellKind::Xnor2: return ~(a ^ b);
        case CellKind::Orn2: return a | ~b;
        case CellKind::SecAnd3: return (a & b) ^ (a | ~c);
        case CellKind::Mux2: return (c & b) | (~c & a);
        case CellKind::Dff: return a;
    }
    return 0;
}

struct Cell {
    CellKind kind = CellKind::Const0;
    CtrlGroup enable = kAlwaysEnabled;   // Dff only
    CtrlGroup reset = kAlwaysEnabled;    // Dff only; 0 = no reset group
    std::uint32_t module = 0;            // index into Netlist::module_names()
    std::array<NetId, 3> in{kNoNet, kNoNet, kNoNet};
};

/// One sink of a net: (cell, pin).
struct Sink {
    CellId cell;
    std::uint8_t pin;
};

/// Pair of nets whose physical wires are adjacent (coupling candidates).
struct CoupledPair {
    NetId a;
    NetId b;
};

class Netlist {
public:
    Netlist();

    // ----- construction -------------------------------------------------

    /// Raw cell constructor; prefer the typed helpers below.
    CellId add(CellKind kind, NetId a = kNoNet, NetId b = kNoNet, NetId c = kNoNet,
               std::string_view name = {});

    NetId input(std::string_view name);
    NetId const0();
    NetId const1();
    NetId buf(NetId a, std::string_view name = {});
    NetId inv(NetId a, std::string_view name = {});
    NetId delay_buf(NetId a, std::string_view name = {});
    NetId and2(NetId a, NetId b, std::string_view name = {});
    NetId nand2(NetId a, NetId b, std::string_view name = {});
    NetId or2(NetId a, NetId b, std::string_view name = {});
    NetId nor2(NetId a, NetId b, std::string_view name = {});
    NetId xor2(NetId a, NetId b, std::string_view name = {});
    NetId xnor2(NetId a, NetId b, std::string_view name = {});
    NetId orn2(NetId a, NetId b, std::string_view name = {});
    /// One secAND2 output share: (a & b) ^ (a | !c) as a single LUT.
    NetId secand3(NetId a, NetId b, NetId c, std::string_view name = {});
    NetId mux2(NetId in0, NetId in1, NetId sel, std::string_view name = {});

    /// D flip-flop.  `enable`/`reset` are control groups driven per cycle
    /// by the testbench FSM (group 0: always enabled / never reset).
    NetId dff(NetId d, CtrlGroup enable = kAlwaysEnabled,
              CtrlGroup reset = kAlwaysEnabled, std::string_view name = {});

    /// D flip-flop whose D pin will be connected later with connect_flop()
    /// -- needed for feedback (state registers fed by logic computed from
    /// their own Q).  freeze() throws if any flop is left unconnected.
    NetId dff_floating(CtrlGroup enable = kAlwaysEnabled,
                       CtrlGroup reset = kAlwaysEnabled,
                       std::string_view name = {});

    /// Connects (or rewires) the D pin of `flop`.  `d` may reference a cell
    /// created after the flop: this cannot create a combinational cycle
    /// because a flop output is a sequential source.
    void connect_flop(CellId flop, NetId d);

    /// Marks two nets as physically adjacent for the coupling model.
    void couple(NetId a, NetId b);

    /// Hierarchical naming scope; affects cells created while pushed.
    void push_scope(std::string_view name);
    void pop_scope();

    /// RAII helper for push_scope/pop_scope.
    class Scope {
    public:
        Scope(Netlist& owner, std::string_view name) : owner_(owner) {
            owner_.push_scope(name);
        }
        ~Scope() { owner_.pop_scope(); }
        Scope(const Scope&) = delete;
        Scope& operator=(const Scope&) = delete;

    private:
        Netlist& owner_;
    };

    // ----- freeze & queries ----------------------------------------------

    /// Builds fanout lists and a topological order of combinational cells;
    /// throws std::runtime_error on a combinational cycle.  Must be called
    /// before handing the netlist to a simulator / STA / mapper.  Adding
    /// cells afterwards un-freezes the netlist.
    void freeze();
    [[nodiscard]] bool frozen() const noexcept { return frozen_; }

    [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }
    [[nodiscard]] const Cell& cell(CellId id) const noexcept { return cells_[id]; }
    [[nodiscard]] std::span<const Cell> cells() const noexcept { return cells_; }

    /// Sinks of the net driven by `id` (valid after freeze()).
    [[nodiscard]] std::span<const Sink> fanout(NetId id) const noexcept;

    /// Combinational cells in topological order (valid after freeze()).
    [[nodiscard]] std::span<const CellId> topo_order() const noexcept {
        return topo_;
    }

    [[nodiscard]] std::span<const CellId> inputs() const noexcept { return inputs_; }
    [[nodiscard]] std::span<const CellId> flops() const noexcept { return flops_; }
    [[nodiscard]] std::span<const CoupledPair> coupled_pairs() const noexcept {
        return coupled_;
    }

    /// Cell counts per kind (for area/LUT accounting and reports).
    [[nodiscard]] std::array<std::size_t, kNumCellKinds> kind_histogram() const;

    /// Name lookup (empty when the cell was created without a name).
    [[nodiscard]] const std::string& name(CellId id) const noexcept {
        return names_[id];
    }
    [[nodiscard]] const std::vector<std::string>& module_names() const noexcept {
        return module_names_;
    }
    [[nodiscard]] std::uint32_t module_of(CellId id) const noexcept {
        return cells_[id].module;
    }

    /// Highest control group id referenced by any flop (for sizing the
    /// testbench's enable/reset vectors).
    [[nodiscard]] CtrlGroup max_ctrl_group() const noexcept { return max_ctrl_; }

private:
    std::string scoped_name(std::string_view name) const;

    std::vector<Cell> cells_;
    std::vector<std::string> names_;
    std::vector<CellId> inputs_;
    std::vector<CellId> flops_;
    std::vector<CoupledPair> coupled_;

    // scope machinery
    std::vector<std::string> scope_stack_;
    std::string scope_prefix_;
    std::vector<std::string> module_names_;
    std::uint32_t current_module_ = 0;

    // freeze products
    bool frozen_ = false;
    std::vector<Sink> fanout_flat_;
    std::vector<std::uint32_t> fanout_offset_;
    std::vector<CellId> topo_;

    NetId const0_ = kNoNet;
    NetId const1_ = kNoNet;
    CtrlGroup max_ctrl_ = 0;
};

}  // namespace glitchmask::netlist
