# Empty compiler generated dependencies file for leakage_lab.
# This may be replaced when dependencies are built.
