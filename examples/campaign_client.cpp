// Minimal client for the glitchmaskd campaign daemon.
//
// Sends one NDJSON request line over the daemon's Unix socket and prints
// every response line until the terminal one for that request arrives:
//
//   campaign_client /tmp/gm.sock '{"op":"submit","kind":"gadget_tvla",
//                                  "gadget":"trichina","traces":2000}'
//   campaign_client /tmp/gm.sock '{"op":"status","job":3}'
//   campaign_client /tmp/gm.sock '{"op":"stats"}'
//   campaign_client /tmp/gm.sock '{"op":"metrics"}'
//   campaign_client /tmp/gm.sock '{"op":"shutdown","drain":false}'
//
// For a submit, the client stays connected and relays progress events
// until the result line; every other op gets exactly one reply.  With a
// trailing --follow, a submit additionally renders the result's span
// rollup (queue_wait, execute, block, sim, ...) as a one-line-per-span
// latency summary on stderr.  Exit status: 0 on a completed/answered
// request, 1 on rejection or overload, 2 on usage/connection errors.

#include <cstdio>
#include <cstring>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "eval/run_report.hpp"

namespace {

bool line_ends_conversation(const std::string& line, bool is_submit,
                            int& exit_code) {
    const auto has = [&](const char* token) {
        return line.find(token) != std::string::npos;
    };
    if (has("\"event\":\"rejected\"") || has("\"event\":\"overloaded\"")) {
        exit_code = 1;
        return true;
    }
    if (is_submit) {
        if (has("\"event\":\"result\"")) {
            exit_code = has("\"state\":\"completed\"") ? 0 : 1;
            return true;
        }
        return false;  // accepted / progress: keep streaming
    }
    exit_code = 0;
    return true;  // single-reply ops are done after any event line
}

/// --follow: one line per span name from the result event's "spans"
/// rollup, on stderr so piped-stdout consumers still see pure NDJSON.
void render_span_summary(const std::string& result_line) {
    try {
        const glitchmask::eval::JsonValue json =
            glitchmask::eval::parse_json(result_line);
        const glitchmask::eval::JsonValue* spans = json.find("spans");
        if (spans == nullptr || spans->array.empty()) {
            std::fprintf(stderr, "[follow] no span rollup in result\n");
            return;
        }
        for (const glitchmask::eval::JsonValue& entry : spans->array) {
            const glitchmask::eval::JsonValue* name = entry.find("name");
            const glitchmask::eval::JsonValue* count = entry.find("count");
            const glitchmask::eval::JsonValue* total = entry.find("total_ns");
            if (name == nullptr || count == nullptr || total == nullptr)
                continue;
            std::fprintf(stderr, "[follow] %-16s count=%-8llu total=%.3fms\n",
                         name->string.c_str(),
                         static_cast<unsigned long long>(
                             count->unsigned_value),
                         static_cast<double>(total->unsigned_value) * 1e-6);
        }
    } catch (const std::exception& error) {
        std::fprintf(stderr, "[follow] unparsable result line: %s\n",
                     error.what());
    }
}

}  // namespace

int main(int argc, char** argv) {
    bool follow = false;
    if (argc == 4 && std::strcmp(argv[3], "--follow") == 0) {
        follow = true;
    } else if (argc != 3) {
        std::fprintf(stderr, "usage: %s SOCKET_PATH REQUEST_JSON [--follow]\n",
                     argv[0]);
        return 2;
    }
    const std::string socket_path = argv[1];
    std::string request = argv[2];
    if (request.empty() || request.back() != '\n') request += '\n';
    const bool is_submit =
        request.find("\"op\":\"submit\"") != std::string::npos;

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        std::perror("socket");
        return 2;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
        std::perror(("connect " + socket_path).c_str());
        ::close(fd);
        return 2;
    }

    std::size_t sent = 0;
    while (sent < request.size()) {
        const ssize_t n =
            ::write(fd, request.data() + sent, request.size() - sent);
        if (n < 0) {
            if (errno == EINTR) continue;
            std::perror("write");
            ::close(fd);
            return 2;
        }
        sent += static_cast<std::size_t>(n);
    }

    int exit_code = 1;
    std::string pending;
    std::string last_line;
    char buffer[4096];
    for (;;) {
        const ssize_t n = ::read(fd, buffer, sizeof buffer);
        if (n < 0) {
            if (errno == EINTR) continue;
            std::perror("read");
            break;
        }
        if (n == 0) break;  // daemon closed (e.g. shutdown)
        pending.append(buffer, static_cast<std::size_t>(n));
        std::size_t start = 0;
        bool done = false;
        for (;;) {
            const std::size_t newline = pending.find('\n', start);
            if (newline == std::string::npos) break;
            const std::string line = pending.substr(start, newline - start);
            start = newline + 1;
            std::printf("%s\n", line.c_str());
            std::fflush(stdout);
            if (line_ends_conversation(line, is_submit, exit_code)) {
                last_line = line;
                done = true;
                break;
            }
        }
        pending.erase(0, start);
        if (done) break;
    }
    ::close(fd);
    if (follow && is_submit && !last_line.empty() &&
        last_line.find("\"event\":\"result\"") != std::string::npos)
        render_span_summary(last_line);
    return exit_code;
}
