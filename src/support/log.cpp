#include "support/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <utility>

#include "support/env.hpp"

namespace glitchmask {

namespace {

// -1 = "not yet resolved from the environment".  The level itself is a
// relaxed atomic so log_enabled() stays async-signal-safe (the SIGINT
// handler gates its cancellation notice on it).
std::atomic<int> g_level{-1};
std::mutex g_stderr_mutex;

const char* level_tag(LogLevel level) noexcept {
    switch (level) {
        case LogLevel::kError: return "error";
        case LogLevel::kWarn: return "warn";
        case LogLevel::kInfo: return "info";
        case LogLevel::kDebug: return "debug";
        case LogLevel::kOff: break;
    }
    return "off";
}

/// Monotonic milliseconds since the first log call: the anchor is a
/// function-local static, so the first line reads +0.000s and every later
/// line is orderable against it regardless of wall-clock adjustments.
std::uint64_t log_uptime_ms() {
    using clock = std::chrono::steady_clock;
    static const clock::time_point anchor = clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(clock::now() -
                                                              anchor)
            .count());
}

thread_local std::string g_log_context;

int resolve_level() noexcept {
    int level = g_level.load(std::memory_order_relaxed);
    if (level >= 0) return level;
    LogLevel parsed = LogLevel::kWarn;
    // getenv-based; called once outside any signal context.
    const std::string text = env_string("GLITCHMASK_LOG", "");
    if (!text.empty()) parsed = parse_log_level(text, LogLevel::kWarn);
    level = static_cast<int>(parsed);
    int expected = -1;
    g_level.compare_exchange_strong(expected, level,
                                    std::memory_order_relaxed);
    return g_level.load(std::memory_order_relaxed);
}

}  // namespace

LogLevel parse_log_level(const std::string& text, LogLevel fallback) noexcept {
    if (text == "off" || text == "none" || text == "silent")
        return LogLevel::kOff;
    if (text == "error") return LogLevel::kError;
    if (text == "warn" || text == "warning") return LogLevel::kWarn;
    if (text == "info") return LogLevel::kInfo;
    if (text == "debug") return LogLevel::kDebug;
    return fallback;
}

LogLevel log_level() noexcept {
    return static_cast<LogLevel>(resolve_level());
}

void set_log_level(LogLevel level) noexcept {
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool log_enabled(LogLevel level) noexcept {
    const int current = g_level.load(std::memory_order_relaxed);
    if (current < 0) return static_cast<int>(level) <= resolve_level();
    return static_cast<int>(level) <= current;
}

void log_message(LogLevel level, const std::string& message) {
    if (level == LogLevel::kOff || !log_enabled(level)) return;
    const std::uint64_t ms = log_uptime_ms();
    const std::lock_guard<std::mutex> lock(g_stderr_mutex);
    if (g_log_context.empty()) {
        std::fprintf(stderr, "[glitchmask +%llu.%03us] %s: %s\n",
                     static_cast<unsigned long long>(ms / 1000),
                     static_cast<unsigned>(ms % 1000), level_tag(level),
                     message.c_str());
    } else {
        std::fprintf(stderr, "[glitchmask +%llu.%03us] %s: [%s] %s\n",
                     static_cast<unsigned long long>(ms / 1000),
                     static_cast<unsigned>(ms % 1000), level_tag(level),
                     g_log_context.c_str(), message.c_str());
    }
    std::fflush(stderr);
}

ScopedLogContext::ScopedLogContext(std::string context)
    : previous_(std::exchange(g_log_context, std::move(context))) {}

ScopedLogContext::~ScopedLogContext() {
    g_log_context = std::move(previous_);
}

}  // namespace glitchmask
