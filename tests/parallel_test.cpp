// Determinism contract of the sharded campaign engine: a campaign's
// statistics are a pure function of (seed, traces, block size) -- the
// worker count must not show up in a single result bit.  These tests run
// the same campaigns at 1, 2 and 4 workers and compare with exact double
// equality (EXPECT_EQ, not EXPECT_NEAR: "close" would hide a broken merge
// tree or a shared RNG stream).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "des/masked_des.hpp"
#include "eval/campaign.hpp"
#include "eval/des_experiments.hpp"
#include "eval/parallel_campaign.hpp"

namespace glitchmask::eval {
namespace {

TEST(ShardPlan, CoversBudgetWithFixedBlocks) {
    const ShardPlan plan{130, 64};
    EXPECT_EQ(plan.blocks(), 3u);
    EXPECT_EQ(plan.block_begin(0), 0u);
    EXPECT_EQ(plan.block_end(0), 64u);
    EXPECT_EQ(plan.block_begin(2), 128u);
    EXPECT_EQ(plan.block_end(2), 130u);  // short tail block
    EXPECT_EQ(ShardPlan{0}.blocks(), 0u);
}

TEST(TraceRng, StreamsAreDecorrelatedPerTraceAndPurpose) {
    Xoshiro256 a = trace_rng(1, kStimulusStream, 0);
    Xoshiro256 a2 = trace_rng(1, kStimulusStream, 0);
    Xoshiro256 b = trace_rng(1, kStimulusStream, 1);
    Xoshiro256 c = trace_rng(1, kNoiseStream, 0);
    EXPECT_EQ(a(), a2());
    int equal_b = 0;
    int equal_c = 0;
    for (int i = 0; i < 64; ++i) {
        const std::uint64_t va = a();
        equal_b += (va == b());
        equal_c += (va == c());
    }
    EXPECT_LT(equal_b, 2);
    EXPECT_LT(equal_c, 2);
}

TEST(ParallelCampaign, SequenceExperimentBitExactAcrossWorkerCounts) {
    SequenceExperimentConfig config;
    config.replicas = 4;
    config.traces = 600;
    config.noise_sigma = 0.5;
    config.seed = 42;
    const core::InputSequence sequence{core::ShareId::Y0, core::ShareId::X1,
                                       core::ShareId::Y1, core::ShareId::X0};

    config.workers = 1;
    const SequenceLeakResult serial = run_sequence_experiment(sequence, config);
    for (const unsigned workers : {2u, 4u}) {
        config.workers = workers;
        const SequenceLeakResult parallel =
            run_sequence_experiment(sequence, config);
        EXPECT_EQ(parallel.max_abs_t1, serial.max_abs_t1) << workers;
        EXPECT_EQ(parallel.max_abs_t2, serial.max_abs_t2) << workers;
        EXPECT_EQ(parallel.argmax_cycle, serial.argmax_cycle) << workers;
    }
}

TEST(ParallelCampaign, DesTvlaBitExactAcrossWorkerCounts) {
    const des::MaskedDesCore core(des::MaskedDesOptions{});
    DesTvlaConfig config;
    config.traces = 60;
    config.seed = 9;
    config.block_size = 16;  // several blocks even at this tiny budget

    config.workers = 1;
    const DesTvlaResult serial = run_des_tvla(core, config);
    for (const unsigned workers : {2u, 4u}) {
        config.workers = workers;
        const DesTvlaResult parallel = run_des_tvla(core, config);
        for (int order = 1; order <= config.max_test_order; ++order) {
            EXPECT_EQ(parallel.max_abs_t[order], serial.max_abs_t[order])
                << "order " << order << " workers " << workers;
            EXPECT_EQ(parallel.argmax[order], serial.argmax[order])
                << "order " << order << " workers " << workers;
        }
        EXPECT_EQ(parallel.toggles, serial.toggles) << workers;
        // Full t-curves, not just the maxima.
        for (int order = 1; order <= config.max_test_order; ++order) {
            const std::vector<double> ts = serial.campaign.t_curve(order);
            const std::vector<double> tp = parallel.campaign.t_curve(order);
            ASSERT_EQ(ts.size(), tp.size());
            for (std::size_t i = 0; i < ts.size(); ++i)
                EXPECT_EQ(tp[i], ts[i]) << "order " << order << " sample " << i;
        }
    }
}

TEST(ParallelCampaign, MeanPowerTraceBitExactAcrossWorkerCounts) {
    const des::MaskedDesCore core(des::MaskedDesOptions{});
    const std::vector<double> serial =
        mean_power_trace(core, /*traces=*/48, /*seed=*/5, /*placement_seed=*/1,
                         /*workers=*/1);
    for (const unsigned workers : {2u, 4u}) {
        const std::vector<double> parallel =
            mean_power_trace(core, 48, 5, 1, workers);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            EXPECT_EQ(parallel[i], serial[i]) << "sample " << i;
    }
}

TEST(BatchLanes, DesTvlaBitExactAcrossLaneConfigs) {
    // The bitsliced engine must reproduce the scalar campaign bit for bit:
    // full t-curves, argmaxima and the toggle count, with PRNG on and off,
    // including a partial final lane group (80 = 64 + 16).
    const des::MaskedDesCore core(des::MaskedDesOptions{});
    DesTvlaConfig config;
    config.traces = 80;
    config.seed = 11;
    config.workers = 2;
    config.block_size = 64;

    for (const bool prng_on : {true, false}) {
        config.prng_on = prng_on;
        config.lanes = 1;
        const DesTvlaResult scalar = run_des_tvla(core, config);
        config.lanes = 64;
        const DesTvlaResult batch = run_des_tvla(core, config);
        EXPECT_EQ(batch.toggles, scalar.toggles) << "prng " << prng_on;
        for (int order = 1; order <= config.max_test_order; ++order) {
            EXPECT_EQ(batch.max_abs_t[order], scalar.max_abs_t[order])
                << "prng " << prng_on << " order " << order;
            EXPECT_EQ(batch.argmax[order], scalar.argmax[order])
                << "prng " << prng_on << " order " << order;
            const std::vector<double> ts = scalar.campaign.t_curve(order);
            const std::vector<double> tb = batch.campaign.t_curve(order);
            ASSERT_EQ(ts.size(), tb.size());
            for (std::size_t i = 0; i < ts.size(); ++i)
                EXPECT_EQ(tb[i], ts[i])
                    << "prng " << prng_on << " order " << order << " sample "
                    << i;
        }
    }
}

TEST(BatchLanes, TimingCouplingFallsBackToScalar) {
    // Data-dependent delays break the shared-schedule premise, so a
    // 64-lane request under timing coupling must silently run the scalar
    // engine -- and therefore reproduce the scalar goldens exactly.
    const des::MaskedDesCore core(des::MaskedDesOptions{
        .flavor = des::CoreFlavor::PD, .delayunit_luts = 10});
    DesTvlaConfig config;
    config.traces = 24;
    config.seed = 3;
    config.coupling.timing_enabled = true;

    config.lanes = 1;
    const DesTvlaResult scalar = run_des_tvla(core, config);
    for (const unsigned lanes : {0u, 64u}) {
        config.lanes = lanes;
        const DesTvlaResult fallback = run_des_tvla(core, config);
        EXPECT_EQ(fallback.toggles, scalar.toggles) << "lanes " << lanes;
        for (int order = 1; order <= config.max_test_order; ++order)
            EXPECT_EQ(fallback.max_abs_t[order], scalar.max_abs_t[order])
                << "lanes " << lanes << " order " << order;
    }
}

TEST(BatchLanes, MeanPowerTraceBitExactAcrossLaneConfigs) {
    const des::MaskedDesCore core(des::MaskedDesOptions{});
    const std::vector<double> scalar =
        mean_power_trace(core, /*traces=*/48, /*seed=*/5, /*placement_seed=*/1,
                         /*workers=*/2, /*lanes=*/1);
    const std::vector<double> batch =
        mean_power_trace(core, 48, 5, 1, 2, 64);
    ASSERT_EQ(batch.size(), scalar.size());
    for (std::size_t i = 0; i < scalar.size(); ++i)
        EXPECT_EQ(batch[i], scalar[i]) << "sample " << i;
}

TEST(ParallelCampaign, BlockSizeIsPartOfTheResultIdentity) {
    // Changing the block size changes the merge tree, which is allowed to
    // move the low bits -- but the statistics must stay equivalent.  This
    // documents the contract: bit-exactness is promised across *worker
    // counts*, not across block sizes.
    const des::MaskedDesCore core(des::MaskedDesOptions{});
    DesTvlaConfig config;
    config.traces = 60;
    config.seed = 9;
    config.workers = 2;

    config.block_size = 16;
    const DesTvlaResult a = run_des_tvla(core, config);
    config.block_size = 60;
    const DesTvlaResult b = run_des_tvla(core, config);
    EXPECT_EQ(a.toggles, b.toggles);  // stimulus identical per trace
    for (int order = 1; order <= config.max_test_order; ++order)
        EXPECT_NEAR(a.max_abs_t[order], b.max_abs_t[order],
                    1e-6 * std::max(1.0, a.max_abs_t[order]))
            << "order " << order;
}

}  // namespace
}  // namespace glitchmask::eval
