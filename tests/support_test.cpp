#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <stdexcept>
#include <string>

#include "support/bits.hpp"
#include "support/csv.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace glitchmask {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
    Xoshiro256 a(42);
    Xoshiro256 b(42);
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
    Xoshiro256 a(1);
    Xoshiro256 b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) equal += (a() == b());
    EXPECT_LT(equal, 2);
}

TEST(Rng, BitIsRoughlyBalanced) {
    Xoshiro256 rng(7);
    int ones = 0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) ones += rng.bit();
    EXPECT_NEAR(static_cast<double>(ones) / kDraws, 0.5, 0.01);
}

TEST(Rng, BitsStayInRange) {
    Xoshiro256 rng(9);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.bits(4), 16u);
        EXPECT_LT(rng.bits(1), 2u);
    }
    EXPECT_EQ(rng.bits(0), 0u);
}

TEST(Rng, UniformInUnitInterval) {
    Xoshiro256 rng(11);
    double sum = 0.0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, BelowIsBoundedAndCoversRange) {
    Xoshiro256 rng(13);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t v = rng.below(7);
        ASSERT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, GaussianMomentsMatch) {
    Xoshiro256 rng(17);
    double sum = 0.0;
    double sum_sq = 0.0;
    constexpr int kDraws = 200000;
    for (int i = 0; i < kDraws; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sum_sq += g * g;
    }
    EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.03);
}

TEST(Rng, GaussianScaling) {
    Xoshiro256 rng(19);
    double sum = 0.0;
    constexpr int kDraws = 50000;
    for (int i = 0; i < kDraws; ++i) sum += rng.gaussian(3.0, 0.5);
    EXPECT_NEAR(sum / kDraws, 3.0, 0.02);
}

TEST(Rng, Mix64AvoidsTrivialCollisions) {
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(mix64(1, i));
    EXPECT_EQ(seen.size(), 1000u);
}

TEST(Bits, BasicOps) {
    EXPECT_TRUE(bit_of(0b100, 2));
    EXPECT_FALSE(bit_of(0b100, 1));
    EXPECT_EQ(with_bit(0, 3, true), 8u);
    EXPECT_EQ(with_bit(0xF, 0, false), 0xEu);
    EXPECT_TRUE(parity(0b111));
    EXPECT_FALSE(parity(0b110011));
    EXPECT_EQ(hamming_weight(0xFF), 8);
    EXPECT_EQ(hamming_distance(0b1010, 0b0110), 2);
}

TEST(Bits, Popcount64) {
    EXPECT_EQ(popcount64(0), 0);
    EXPECT_EQ(popcount64(~std::uint64_t{0}), 64);
    EXPECT_EQ(popcount64(0x8000000000000001ULL), 2);
    Xoshiro256 rng(31);
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t w = rng();
        int naive = 0;
        for (unsigned b = 0; b < 64; ++b) naive += bit_of(w, b);
        EXPECT_EQ(popcount64(w), naive);
    }
}

TEST(Bits, Transpose64MatchesDefinition) {
    Xoshiro256 rng(32);
    std::array<std::uint64_t, 64> m{};
    for (auto& row : m) row = rng();
    const std::array<std::uint64_t, 64> original = m;
    transpose64(m);
    // Bit j of m[i] equals bit i of the original m[j] -- trace l's value
    // for net i lands in lane bit l of word i.
    for (unsigned i = 0; i < 64; ++i)
        for (unsigned j = 0; j < 64; ++j)
            ASSERT_EQ(bit_of(m[i], j), bit_of(original[j], i))
                << "i=" << i << " j=" << j;
    transpose64(m);
    EXPECT_EQ(m, original);  // involution
}

TEST(Bits, Transpose64Identity) {
    // The identity matrix (diagonal bits) is its own transpose.
    std::array<std::uint64_t, 64> m{};
    for (unsigned i = 0; i < 64; ++i) m[i] = std::uint64_t{1} << i;
    const std::array<std::uint64_t, 64> diag = m;
    transpose64(m);
    EXPECT_EQ(m, diag);
}

TEST(Bits, RotlBits) {
    EXPECT_EQ(rotl_bits(0b0001, 4, 1), 0b0010u);
    EXPECT_EQ(rotl_bits(0b1000, 4, 1), 0b0001u);
    EXPECT_EQ(rotl_bits(0x0FFFFFFF, 28, 28), 0x0FFFFFFFu);
    // DES key-schedule style: rotate 28-bit halves by 2.
    EXPECT_EQ(rotl_bits(0x8000001, 28, 2), 0x6u);
}

TEST(Csv, WritesHeaderAndRows) {
    const std::string path = ::testing::TempDir() + "glitchmask_csv_test.csv";
    {
        CsvWriter csv(path, {"a", "b"});
        csv.row({1.0, 2.5});
        csv.raw_row({"x", "y"});
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "a,b");
    std::getline(in, line);
    EXPECT_EQ(line, "1,2.5");
    std::getline(in, line);
    EXPECT_EQ(line, "x,y");
    std::remove(path.c_str());
}

TEST(Env, FallbacksAndParsing) {
    EXPECT_EQ(env_int("GLITCHMASK_SURELY_UNSET_VAR", 123), 123);
    EXPECT_DOUBLE_EQ(env_double("GLITCHMASK_SURELY_UNSET_VAR", 1.5), 1.5);
    ::setenv("GLITCHMASK_TEST_VAR", "77", 1);
    EXPECT_EQ(env_int("GLITCHMASK_TEST_VAR", 0), 77);
    ::setenv("GLITCHMASK_TEST_VAR", "2.25", 1);
    EXPECT_DOUBLE_EQ(env_double("GLITCHMASK_TEST_VAR", 0.0), 2.25);
    ::setenv("GLITCHMASK_TEST_VAR", "notanumber", 1);
    EXPECT_EQ(env_int("GLITCHMASK_TEST_VAR", 5), 5);
    ::unsetenv("GLITCHMASK_TEST_VAR");
}

TEST(Table, AlignsColumns) {
    TablePrinter table({"Name", "GE"});
    table.add_row({"secAND2-FF", "15180"});
    table.add_row({"x", "1"});
    const std::string out = table.str();
    EXPECT_NE(out.find("Name"), std::string::npos);
    EXPECT_NE(out.find("secAND2-FF"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, NumberFormatting) {
    EXPECT_EQ(TablePrinter::num(1.2345, 2), "1.23");
    EXPECT_EQ(TablePrinter::integer(15180), "15180");
}

TEST(ThreadPool, RunsEveryTask) {
    ThreadPool pool(4);
    TaskGroup group(pool);
    std::atomic<int> sum{0};
    for (int i = 1; i <= 100; ++i)
        group.run([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
    group.wait();
    EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, WorkerIdsAreValidAndOwn) {
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3u);
    EXPECT_EQ(pool.current_worker(), -1);  // caller is not a pool thread
    TaskGroup group(pool);
    std::atomic<int> bad{0};
    for (int i = 0; i < 64; ++i)
        group.run([&] {
            const int id = pool.current_worker();
            if (id < 0 || id >= 3) bad.fetch_add(1);
        });
    group.wait();
    EXPECT_EQ(bad.load(), 0);
}

TEST(ThreadPool, NestedSubmitsFromWorkersComplete) {
    ThreadPool pool(2);
    TaskGroup group(pool);
    std::atomic<int> count{0};
    for (int i = 0; i < 8; ++i)
        group.run([&] {
            // Tasks submitted from a worker land on its own deque and may
            // be stolen; all must still be tracked by the group.
            group.run([&] { count.fetch_add(1); });
        });
    group.wait();
    EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, TaskGroupPropagatesFirstException) {
    ThreadPool pool(2);
    TaskGroup group(pool);
    std::atomic<int> completed{0};
    for (int i = 0; i < 16; ++i)
        group.run([&, i] {
            if (i == 5) throw std::runtime_error("boom");
            completed.fetch_add(1);
        });
    EXPECT_THROW(group.wait(), std::runtime_error);
    EXPECT_EQ(completed.load(), 15);  // the other tasks still ran
}

TEST(ThreadPool, DefaultWorkerCountHonoursEnv) {
    ::setenv("GLITCHMASK_WORKERS", "3", 1);
    EXPECT_EQ(ThreadPool::default_worker_count(), 3u);
    ::unsetenv("GLITCHMASK_WORKERS");
    EXPECT_GE(ThreadPool::default_worker_count(), 1u);
}

}  // namespace
}  // namespace glitchmask
