// Shared helpers for the bench harness binaries.
//
// Every bench reproduces one table or figure of the paper, prints the
// paper's rows/series to stdout, and dumps the full data as CSV next to
// the binary.  Campaign sizes are software-feasible defaults; scale them
// with GLITCHMASK_TRACE_SCALE (e.g. 4.0 for a 4x longer, sharper run).
// EXPERIMENTS.md records the mapping to the paper's trace counts.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>

#include "support/cli.hpp"
#include "support/env.hpp"

namespace glitchmask::bench {

using glitchmask::CliOptions;
using glitchmask::parse_cli;

/// Applies GLITCHMASK_TRACE_SCALE to a default trace count.
[[nodiscard]] inline std::size_t scaled_traces(std::size_t base) {
    const double scaled = static_cast<double>(base) * trace_scale();
    return static_cast<std::size_t>(std::max(100.0, scaled));
}

inline void banner(const char* title) {
    std::printf("\n==== %s ====\n\n", title);
}

[[nodiscard]] inline std::string verdict(double max_abs_t, double threshold = 4.5) {
    return max_abs_t > threshold ? "LEAKS" : "no leak";
}

}  // namespace glitchmask::bench
