// Typed retry-with-backoff for transient I/O failures.
//
// A checkpoint write that hits a transient EIO should not kill a
// multi-hour campaign, but ENOSPC retried forever is a hang, not
// robustness.  RetryPolicy + retry_io() encode the distinction: a failed
// operation that threw CampaignError{IoFailure} with a *transient* errno
// (errno_transient) is retried up to max_attempts with exponential
// backoff; everything else -- permanent errnos, corrupt snapshots, config
// mismatches -- propagates immediately, unchanged and typed.  The backoff
// sleep polls an optional CancelToken so graceful shutdown never waits
// out a retry ladder.
#pragma once

#include <algorithm>
#include <chrono>
#include <thread>

#include "support/campaign_error.hpp"
#include "support/cancel.hpp"

namespace glitchmask {

struct RetryPolicy {
    unsigned max_attempts = 3;        // total tries, including the first
    unsigned initial_backoff_ms = 5;
    double multiplier = 2.0;
    unsigned max_backoff_ms = 200;
};

/// True for errnos worth retrying: interruptions and transient device
/// errors.  ENOSPC/EDQUOT/EROFS/EACCES/ENOENT are permanent for the
/// duration of a run -- retrying them only delays the typed error (or the
/// degradation path) the caller needs to see.
[[nodiscard]] bool errno_transient(int error_number) noexcept;

/// Sleeps ~`ms`, polling `cancel` (when non-null) every few milliseconds;
/// returns false when cancellation cut the sleep short.
bool backoff_sleep(unsigned ms, const CancelToken* cancel) noexcept;

/// Runs `fn`, retrying per `policy` on transient CampaignError{IoFailure}.
/// Rethrows the last error when attempts are exhausted, the errno is
/// permanent, or `cancel` fires mid-backoff.  `on_retry(attempt, error)`
/// (optional) observes each retry for logging/telemetry.
template <class Fn, class OnRetry>
void retry_io(const RetryPolicy& policy, Fn&& fn, const CancelToken* cancel,
              OnRetry&& on_retry) {
    unsigned backoff = policy.initial_backoff_ms;
    for (unsigned attempt = 1;; ++attempt) {
        try {
            fn();
            return;
        } catch (const CampaignError& error) {
            if (error.kind() != CampaignErrorKind::IoFailure ||
                !errno_transient(error.error_number()) ||
                attempt >= std::max(1u, policy.max_attempts))
                throw;
            on_retry(attempt, error);
            if (!backoff_sleep(backoff, cancel)) throw;
            backoff = static_cast<unsigned>(
                std::min<double>(policy.max_backoff_ms,
                                 backoff * std::max(1.0, policy.multiplier)));
        }
    }
}

template <class Fn>
void retry_io(const RetryPolicy& policy, Fn&& fn,
              const CancelToken* cancel = nullptr) {
    retry_io(policy, static_cast<Fn&&>(fn), cancel,
             [](unsigned, const CampaignError&) {});
}

}  // namespace glitchmask
