// Reproduces paper Figs. 13 and 16: the power traces covering one full
// protected DES operation for both cores.
//
// The paper shows raw oscilloscope captures; we produce the mean
// per-cycle power over a few hundred random encryptions, which exhibits
// the same structure: a burst per round (7-cycle pattern for the FF core,
// 2-cycle pattern for the PD core) over 113 / 34 cycles.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "des/masked_des.hpp"
#include "eval/des_experiments.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

using namespace glitchmask;

namespace {

void emit(const char* name, const char* figure, des::CoreFlavor flavor,
          CsvWriter& csv, std::size_t traces) {
    des::MaskedDesOptions options;
    options.flavor = flavor;
    const des::MaskedDesCore core(options);
    const std::vector<double> mean =
        eval::mean_power_trace(core, traces, /*seed=*/5);

    double peak = 0.0;
    double total = 0.0;
    for (const double v : mean) {
        peak = std::max(peak, v);
        total += v;
    }
    std::printf("%s (%s): %u samples (1 per cycle), %u cycles/round\n", name,
                figure, core.total_cycles(), core.cycles_per_round());
    std::printf("  mean energy/cycle %.1f, peak %.1f, total %.1f\n",
                total / static_cast<double>(mean.size()), peak, total);

    // Compact round profile: per-cycle power averaged over rounds 2-14
    // (steady state), one value per cycle-within-round.
    const unsigned cpr = core.cycles_per_round();
    std::vector<double> profile(cpr, 0.0);
    int rounds_avg = 0;
    for (unsigned round = 2; round < 15; ++round) {
        ++rounds_avg;
        for (unsigned c = 0; c < cpr; ++c)
            profile[c] += mean[1 + round * cpr + c];
    }
    std::printf("  steady-state round profile:");
    for (unsigned c = 0; c < cpr; ++c)
        std::printf(" c%u=%.0f", c, profile[c] / rounds_avg);
    std::printf("\n\n");

    for (std::size_t i = 0; i < mean.size(); ++i)
        csv.raw_row({name, std::to_string(i), TablePrinter::num(mean[i], 3)});
}

}  // namespace

int main() {
    bench::banner("Figs. 13 / 16: power traces over one protected DES");
    const std::size_t traces = bench::scaled_traces(200);
    std::printf("averaging %zu random encryptions per core\n\n", traces);
    CsvWriter csv("fig13_16_power_traces.csv", {"core", "cycle", "mean_power"});
    emit("secAND2-FF core", "Fig. 13", des::CoreFlavor::FF, csv, traces);
    emit("secAND2-PD core", "Fig. 16", des::CoreFlavor::PD, csv, traces);
    std::printf("CSV: fig13_16_power_traces.csv\n");
    return 0;
}
