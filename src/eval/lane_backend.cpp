#include "eval/lane_backend.hpp"

#include <algorithm>
#include <stdexcept>

#include "eval/parallel_campaign.hpp"
#include "support/env.hpp"

namespace glitchmask::eval {

const char* backend_name(SimBackend backend) noexcept {
    return backend == SimBackend::Compiled ? "compiled" : "event";
}

namespace {

SimBackend parse_backend(const std::string& name) {
    if (name.empty() || name == "event") return SimBackend::Event;
    if (name == "compiled") return SimBackend::Compiled;
    throw std::invalid_argument(
        "campaign config: unknown backend \"" + name +
        "\" (expected \"event\" or \"compiled\")");
}

}  // namespace

BackendPlan resolve_backend_plan(const CampaignRunOptions& run,
                                 unsigned configured_lanes,
                                 bool timing_coupling) {
    std::string name = run.backend;
    if (name.empty()) name = env_string("GLITCHMASK_BACKEND", "");
    const SimBackend backend = parse_backend(name);

    BackendPlan plan;
    if (backend == SimBackend::Event || configured_lanes == 1 ||
        timing_coupling) {
        // The event plan owns the legacy policy (GLITCHMASK_LANES,
        // timing-coupling fallback to scalar).  lanes == 1 is the scalar
        // path regardless of the requested backend: a compiled pass
        // narrower than 64 lanes cannot exist.
        if (backend == SimBackend::Event && configured_lanes > 64)
            throw std::invalid_argument(
                "campaign config: the event backend supports at most 64 "
                "lanes; use backend=compiled for wider passes");
        if (timing_coupling && backend == SimBackend::Compiled)
            log::info(
                "timing coupling forces the scalar simulator; ignoring "
                "backend=compiled");
        plan.backend = SimBackend::Event;
        plan.lanes = resolve_lanes(
            std::min(configured_lanes, 64u), timing_coupling);
        return plan;
    }

    plan.backend = SimBackend::Compiled;
    unsigned lanes = configured_lanes;
    if (lanes == 0)
        lanes = static_cast<unsigned>(env_int("GLITCHMASK_COMPILED_LANES", 512));
    if (lanes != 64 && lanes != 128 && lanes != 256 && lanes != 512)
        throw std::invalid_argument(
            "campaign config: compiled backend lanes must be 64, 128, 256 "
            "or 512, got " +
            std::to_string(lanes));
    plan.lanes = lanes;
    return plan;
}

void fold_backend_fingerprint(CampaignFingerprint& fingerprint,
                              const BackendPlan& plan) {
    if (plan.backend != SimBackend::Compiled || plan.scalar()) return;
    fingerprint.payload = fnv1a64(fingerprint.payload, fnv1a64_tag("backend"));
    fingerprint.payload = fnv1a64(fingerprint.payload, fnv1a64_tag("compiled"));
}

}  // namespace glitchmask::eval
