#include "sim/simulator.hpp"

#include <stdexcept>

namespace glitchmask::sim {

namespace {
constexpr std::uint8_t kOutputPin = 0xFF;
constexpr std::uint8_t kSourcePin = 0xFE;
constexpr TimePs kNever = ~TimePs{0};
}  // namespace

EventSimulator::EventSimulator(const Netlist& nl, const DelayModel& dm,
                               CouplingConfig coupling, SimOptions options)
    : nl_(nl), dm_(dm), coupling_(coupling), options_(options) {
    if (!nl.frozen())
        throw std::runtime_error("EventSimulator: netlist not frozen");
    out_val_.resize(nl.size(), 0);
    pin_val_.resize(nl.size() * 3, 0);
    last_sched_out_.resize(nl.size(), 0);
    last_sched_time_.resize(nl.size(), 0);
    pending_.resize(nl.size());
    last_toggle_.assign(nl.size(), kNever);
    last_toggle_dir_.resize(nl.size(), 0);
    partner_.assign(nl.size(), netlist::kNoNet);
    for (const netlist::CoupledPair& pair : nl.coupled_pairs()) {
        if (partner_[pair.a] == netlist::kNoNet) partner_[pair.a] = pair.b;
        if (partner_[pair.b] == netlist::kNoNet) partner_[pair.b] = pair.a;
    }
    initialize();
}

void EventSimulator::initialize() {
    queue_ = {};
    now_ = 0;
    seq_ = 0;
    window_start_ = 0;
    std::fill(out_val_.begin(), out_val_.end(), 0);
    std::fill(pin_val_.begin(), pin_val_.end(), 0);
    std::fill(last_sched_time_.begin(), last_sched_time_.end(), 0);
    std::fill(last_toggle_.begin(), last_toggle_.end(), kNever);
    std::fill(last_toggle_dir_.begin(), last_toggle_dir_.end(), 0);
    for (auto& pending : pending_) pending.clear();

    // Constants first (they are sources), then a levelized pass: creation
    // order is topological for combinational cells.
    for (CellId id = 0; id < nl_.size(); ++id) {
        const netlist::Cell& cell = nl_.cell(id);
        bool value = false;
        switch (cell.kind) {
            case CellKind::Input:
            case CellKind::Dff:
                value = false;
                break;
            case CellKind::Const0:
                value = false;
                break;
            case CellKind::Const1:
                value = true;
                break;
            default: {
                const unsigned pins = netlist::pin_count(cell.kind);
                bool a = false;
                bool b = false;
                bool c = false;
                if (pins > 0) a = out_val_[cell.in[0]] != 0;
                if (pins > 1) b = out_val_[cell.in[1]] != 0;
                if (pins > 2) c = out_val_[cell.in[2]] != 0;
                value = netlist::eval_cell(cell.kind, a, b, c);
                break;
            }
        }
        out_val_[id] = value ? 1 : 0;
        last_sched_out_[id] = out_val_[id];
    }
    // Make the pin view consistent with the settled output values.
    for (CellId id = 0; id < nl_.size(); ++id) {
        const netlist::Cell& cell = nl_.cell(id);
        const unsigned pins = netlist::pin_count(cell.kind);
        for (unsigned p = 0; p < pins; ++p)
            pin_val_[id * 3 + p] = out_val_[cell.in[p]];
    }
}

void EventSimulator::drive(NetId source, bool value, TimePs time) {
    queue_.push(Event{time, seq_++, source, kSourcePin,
                      static_cast<std::uint8_t>(value)});
}

std::uint32_t EventSimulator::effective_gate_delay(CellId cell, bool new_value,
                                                   TimePs now) const {
    std::uint32_t delay = dm_.gate_delay(cell);
    if (!coupling_.timing_enabled) return delay;
    if (nl_.cell(cell).kind != CellKind::DelayBuf) return delay;
    const NetId neighbour = partner_[cell];
    if (neighbour == netlist::kNoNet) return delay;
    const TimePs last = last_toggle_[neighbour];
    if (last == kNever || now < last || now - last > coupling_.window_ps)
        return delay;
    const bool neighbour_rose = last_toggle_dir_[neighbour] != 0;
    if (neighbour_rose != new_value) {
        delay += coupling_.slowdown_ps;  // opposite transitions fight (Miller)
    } else if (delay > coupling_.speedup_ps) {
        delay -= coupling_.speedup_ps;   // same direction assists
    }
    return delay;
}

void EventSimulator::schedule_output(CellId cell, bool value, TimePs at) {
    // Per-cell monotonic commits: a later evaluation must not commit
    // before an earlier one, or the settled value could be stale.
    TimePs when = at;
    if (when <= last_sched_time_[cell]) when = last_sched_time_[cell] + 1;

    // Inertial pulse filtering: if the previous (still pending) commit of
    // the opposite value lies closer than the gate's inertial window, the
    // two transitions form a sub-propagation-delay pulse and cancel.  With
    // binary values the cancellation always annihilates both edges.
    if (options_.inertial_filtering && !pending_[cell].empty()) {
        const PendingCommit& last = pending_[cell].back();
        const auto window = static_cast<TimePs>(
            options_.inertial_factor * static_cast<double>(dm_.gate_delay(cell)));
        if (when >= last.time && when - last.time < window) {
            pending_[cell].pop_back();
            last_sched_out_[cell] = value ? 1 : 0;
            last_sched_time_[cell] = when;
            ++inertial_cancels_;
            return;
        }
    }

    last_sched_time_[cell] = when;
    last_sched_out_[cell] = value ? 1 : 0;
    pending_[cell].push_back(PendingCommit{when, seq_});
    queue_.push(Event{when, seq_++, cell, kOutputPin,
                      static_cast<std::uint8_t>(value)});
}

void EventSimulator::commit_output(const Event& ev) {
    if (ev.pin == kOutputPin) {
        // A gate commit must still be at the head of its pending list;
        // otherwise it was cancelled by inertial filtering.
        auto& pending = pending_[ev.cell];
        if (pending.empty() || pending.front().seq != ev.seq) return;
        pending.erase(pending.begin());
    }
    if (out_val_[ev.cell] == ev.value) return;
    // Telemetry: a 2nd+ toggle of a net within the current activity
    // window is a transient (glitch); last_toggle_ still holds the
    // previous commit time here.
    ++toggles_;
    if (last_toggle_[ev.cell] != kNever &&
        last_toggle_[ev.cell] >= window_start_)
        ++glitches_;
    out_val_[ev.cell] = ev.value;
    last_toggle_[ev.cell] = ev.time;
    last_toggle_dir_[ev.cell] = ev.value;
    if (sink_ != nullptr) sink_->on_toggle(ev.cell, ev.time, ev.value != 0);
    for (const netlist::Sink& sink : nl_.fanout(ev.cell)) {
        const TimePs at = ev.time + dm_.wire_delay(sink.cell, sink.pin);
        queue_.push(Event{at, seq_++, sink.cell, sink.pin, ev.value});
    }
}

void EventSimulator::update_pin(const Event& ev) {
    pin_val_[ev.cell * 3 + ev.pin] = ev.value;
    const netlist::Cell& cell = nl_.cell(ev.cell);
    if (cell.kind == CellKind::Dff) return;  // D sampled at clock edges only

    const bool a = pin_val_[ev.cell * 3 + 0] != 0;
    const bool b = pin_val_[ev.cell * 3 + 1] != 0;
    const bool c = pin_val_[ev.cell * 3 + 2] != 0;
    const bool value = netlist::eval_cell(cell.kind, a, b, c);
    if ((last_sched_out_[ev.cell] != 0) == value) return;
    schedule_output(ev.cell, value,
                    ev.time + effective_gate_delay(ev.cell, value, ev.time));
}

void EventSimulator::run_until(TimePs t_end) {
    while (!queue_.empty() && queue_.top().time < t_end) {
        if (queue_.size() > queue_peak_) queue_peak_ = queue_.size();
        const Event ev = queue_.top();
        queue_.pop();
        now_ = ev.time;
        ++processed_;
        if (ev.pin == kOutputPin || ev.pin == kSourcePin)
            commit_output(ev);
        else
            update_pin(ev);
    }
    now_ = t_end;
}

TimePs EventSimulator::run_to_quiescence() {
    while (!queue_.empty()) {
        if (queue_.size() > queue_peak_) queue_peak_ = queue_.size();
        const Event ev = queue_.top();
        queue_.pop();
        now_ = ev.time;
        ++processed_;
        if (ev.pin == kOutputPin || ev.pin == kSourcePin)
            commit_output(ev);
        else
            update_pin(ev);
    }
    return now_;
}

}  // namespace glitchmask::sim
