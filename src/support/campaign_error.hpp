// Structured error taxonomy for long-running campaigns.
//
// A 50M-trace campaign that dies with a bare runtime_error is
// indistinguishable from a bug; recovery tooling needs to know *why* a
// resume failed.  Every failure of the crash-safe campaign runtime is
// reported as a CampaignError with a machine-readable kind:
//
//   ConfigMismatch  - a snapshot was written by a campaign with a
//                     different identity (seed, trace budget, block plan,
//                     ...); resuming from it would silently mix two
//                     different experiments.  The message names the field.
//   CorruptSnapshot - the snapshot file failed structural validation
//                     (magic, version, CRC, truncation, impossible merge
//                     frontier).  It is never partially trusted.
//   IoFailure       - the snapshot could not be read or durably written
//                     (open/write/fsync/rename failure).
#pragma once

#include <stdexcept>
#include <string>

namespace glitchmask {

enum class CampaignErrorKind {
    ConfigMismatch,
    CorruptSnapshot,
    IoFailure,
};

class CampaignError : public std::runtime_error {
public:
    CampaignError(CampaignErrorKind kind, const std::string& message)
        : std::runtime_error(message), kind_(kind) {}

    [[nodiscard]] CampaignErrorKind kind() const noexcept { return kind_; }

private:
    CampaignErrorKind kind_;
};

}  // namespace glitchmask
