// Reproduces paper Table I: leakage behaviour of secAND2 for all 24 input
// sequences.
//
// Methodology (paper Sec. II-B): the four shares (x0, x1, y0, y1) are
// applied one per clock cycle, in every possible order, to a bank of
// parallel secAND2 instances behind individually enabled input registers
// that start from reset.  A fixed-vs-random TVLA over the per-cycle power
// then shows first-order leakage exactly for the sequences where an x
// share arrives in the last cycle.
//
// Paper: 500k traces on a Spartan-6.  Here: simulated glitchy power with
// small synthetic noise, 8k traces per sequence by default.
#include <cstdio>

#include "bench_util.hpp"
#include "core/circuits.hpp"
#include "eval/campaign.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

using namespace glitchmask;

int main() {
    bench::banner("Table I: secAND2 safe input sequences");

    eval::SequenceExperimentConfig config;
    config.replicas = 16;
    config.traces = bench::scaled_traces(8000);
    config.noise_sigma = 0.5;
    config.seed = 42;
    config.placement_seed = 7;
    std::printf("replicas=%u traces/sequence=%zu noise sigma=%.2f\n\n",
                config.replicas, config.traces, config.noise_sigma);

    TablePrinter table({"#", "sequence", "max|t1|", "at cycle", "verdict",
                        "paper (Table I)"});
    CsvWriter csv("table1_sequences.csv",
                  {"index", "sequence", "max_abs_t1", "argmax_cycle",
                   "max_abs_t2", "leaks", "expected"});

    int index = 0;
    int agreements = 0;
    for (const core::InputSequence& sequence : core::all_input_sequences()) {
        const eval::SequenceLeakResult result =
            eval::run_sequence_experiment(sequence, config);
        std::string label;
        for (const core::ShareId s : sequence) {
            if (!label.empty()) label += ' ';
            label += core::share_name(s);
        }
        const bool agrees =
            result.leaks_first_order == result.expected_to_leak;
        agreements += agrees;
        table.add_row({std::to_string(index), label,
                       TablePrinter::num(result.max_abs_t1),
                       std::to_string(result.argmax_cycle),
                       bench::verdict(result.max_abs_t1),
                       result.expected_to_leak ? "leaks" : "does not leak"});
        csv.raw_row({std::to_string(index), label,
                     TablePrinter::num(result.max_abs_t1, 4),
                     std::to_string(result.argmax_cycle),
                     TablePrinter::num(result.max_abs_t2, 4),
                     result.leaks_first_order ? "1" : "0",
                     result.expected_to_leak ? "1" : "0"});
        ++index;
    }
    table.print();
    std::printf(
        "\n%d / 24 sequences match the paper's Table I "
        "(x-share-last leaks, y-share-last does not).\n",
        agreements);
    std::printf("CSV: table1_sequences.csv\n");
    return agreements == 24 ? 0 : 1;
}
