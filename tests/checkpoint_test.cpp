// Unit tests of the crash-safe runtime's building blocks: the sealed
// snapshot byte format (CRC + truncation detection), atomic file
// replacement, cooperative cancellation, and the checkpoint framing with
// its fingerprint matching.  The end-to-end kill-and-resume behaviour
// lives in campaign_resume_test.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "eval/checkpoint.hpp"
#include "support/atomic_file.hpp"
#include "support/campaign_error.hpp"
#include "support/cancel.hpp"
#include "support/snapshot.hpp"
#include "support/thread_pool.hpp"

namespace glitchmask {
namespace {

std::string temp_path(const std::string& name) {
    return ::testing::TempDir() + "glitchmask_" + name;
}

TEST(Snapshot, WriterReaderRoundTrip) {
    SnapshotWriter out;
    out.u32(0xDEADBEEFu);
    out.u64(0x0123456789ABCDEFull);
    out.f64(3.141592653589793);
    out.f64(-0.0);
    const std::vector<std::uint8_t> raw{1, 2, 3, 4, 5, 6, 7, 8};
    out.bytes(raw);
    const std::vector<std::uint8_t> sealed = std::move(out).finish();

    SnapshotReader in(sealed);
    EXPECT_EQ(in.u32(), 0xDEADBEEFu);
    EXPECT_EQ(in.u64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(in.f64(), 3.141592653589793);
    const double neg_zero = in.f64();
    EXPECT_EQ(neg_zero, 0.0);
    EXPECT_TRUE(std::signbit(neg_zero));  // exact bit pattern, not value
    // bytes() writes raw octets; integers are little-endian over them.
    EXPECT_EQ(in.u64(), 0x0807060504030201ull);
    EXPECT_TRUE(in.exhausted());
}

TEST(Snapshot, ReaderExhaustionIsTracked) {
    SnapshotWriter out;
    out.u64(7);
    const std::vector<std::uint8_t> sealed = std::move(out).finish();
    SnapshotReader in(sealed);
    EXPECT_FALSE(in.exhausted());
    EXPECT_EQ(in.u64(), 7u);
    EXPECT_TRUE(in.exhausted());
}

TEST(Snapshot, BitFlipAnywhereFailsTheCrc) {
    SnapshotWriter out;
    for (std::uint64_t i = 0; i < 16; ++i) out.u64(i * 0x9E3779B97F4A7C15ull);
    const std::vector<std::uint8_t> sealed = std::move(out).finish();

    for (std::size_t byte : {std::size_t{0}, sealed.size() / 2,
                             sealed.size() - 5, sealed.size() - 1}) {
        std::vector<std::uint8_t> corrupt = sealed;
        corrupt[byte] ^= 0x10;
        try {
            SnapshotReader in(corrupt);
            FAIL() << "bit flip at byte " << byte << " was not detected";
        } catch (const CampaignError& e) {
            EXPECT_EQ(e.kind(), CampaignErrorKind::CorruptSnapshot);
        }
    }
}

TEST(Snapshot, TruncationIsDetected) {
    SnapshotWriter out;
    out.u64(1);
    out.u64(2);
    const std::vector<std::uint8_t> sealed = std::move(out).finish();

    // Chopping bytes off the end invalidates the CRC trailer (or leaves
    // too few bytes to even hold one).
    for (std::size_t keep = 0; keep < sealed.size(); ++keep) {
        const std::vector<std::uint8_t> cut(sealed.begin(),
                                            sealed.begin() + keep);
        EXPECT_THROW(SnapshotReader{cut}, CampaignError) << "kept " << keep;
    }

    // An intact CRC but over-reading the payload must also throw.
    SnapshotWriter short_out;
    short_out.u32(5);
    const std::vector<std::uint8_t> short_sealed = std::move(short_out).finish();
    SnapshotReader in(short_sealed);
    EXPECT_EQ(in.u32(), 5u);
    EXPECT_THROW((void)in.u64(), CampaignError);
}

TEST(AtomicFile, WriteReadRoundTripAndReplace) {
    const std::string path = temp_path("atomic_roundtrip.bin");
    const std::vector<std::uint8_t> first{10, 20, 30};
    atomic_write_file(path, first);
    auto read_back = read_file_if_exists(path);
    ASSERT_TRUE(read_back.has_value());
    EXPECT_EQ(*read_back, first);

    const std::vector<std::uint8_t> second{99};
    atomic_write_file(path, second);
    read_back = read_file_if_exists(path);
    ASSERT_TRUE(read_back.has_value());
    EXPECT_EQ(*read_back, second);

    // No .tmp litter after a successful replace.
    EXPECT_FALSE(read_file_if_exists(path + ".tmp").has_value());
    std::remove(path.c_str());
}

TEST(AtomicFile, MissingFileReadsAsNullopt) {
    EXPECT_FALSE(read_file_if_exists(temp_path("never_written")).has_value());
}

TEST(AtomicFile, UnwritableTargetThrowsIoFailure) {
    const std::vector<std::uint8_t> bytes{1};
    try {
        atomic_write_file("/nonexistent_dir_glitchmask/file.bin", bytes);
        FAIL() << "write into a missing directory should throw";
    } catch (const CampaignError& e) {
        EXPECT_EQ(e.kind(), CampaignErrorKind::IoFailure);
    }
}

TEST(CancelToken, RequestIsStickyUntilReset) {
    CancelToken token;
    EXPECT_FALSE(token.requested());
    token.request();
    token.request();  // idempotent
    EXPECT_TRUE(token.requested());
    token.reset();
    EXPECT_FALSE(token.requested());
}

TEST(CancelToken, TaskGroupSkipsQueuedTasksAfterCancel) {
    ThreadPool pool(2);
    CancelToken token;
    token.request();  // fire before anything is queued
    std::atomic<int> executed{0};
    TaskGroup group(pool, &token);
    for (int i = 0; i < 32; ++i) group.run([&] { executed.fetch_add(1); });
    group.wait();
    EXPECT_EQ(executed.load(), 0);
    EXPECT_EQ(group.skipped(), 32u);
}

TEST(CancelToken, TaskGroupRunsEverythingWithoutCancel) {
    ThreadPool pool(2);
    CancelToken token;
    std::atomic<int> executed{0};
    TaskGroup group(pool, &token);
    for (int i = 0; i < 32; ++i) group.run([&] { executed.fetch_add(1); });
    group.wait();
    EXPECT_EQ(executed.load(), 32);
    EXPECT_EQ(group.skipped(), 0u);
}

TEST(ScopedSignalCancel, SigintRequestsTheTokenInsteadOfKilling) {
    CancelToken token;
    {
        ScopedSignalCancel guard(token);
        EXPECT_FALSE(token.requested());
        std::raise(SIGINT);
        EXPECT_TRUE(token.requested());
        token.reset();
        std::raise(SIGTERM);
        EXPECT_TRUE(token.requested());
    }
    // Handlers restored; a second guard may be installed afterwards.
    token.reset();
    ScopedSignalCancel again(token);
    std::raise(SIGINT);
    EXPECT_TRUE(token.requested());
}

TEST(ScopedSignalCancel, SecondSimultaneousGuardIsRejected) {
    CancelToken a, b;
    ScopedSignalCancel guard(a);
    EXPECT_THROW(ScopedSignalCancel{b}, std::logic_error);
}

}  // namespace
}  // namespace glitchmask

namespace glitchmask::eval {
namespace {

TEST(CheckpointFraming, HeaderRoundTrip) {
    const CampaignFingerprint fp{fnv1a64_tag("unit_test"), 7, 1000, 64,
                                 0xABCDull};
    SnapshotWriter out = begin_checkpoint(fp, /*completed_blocks=*/5,
                                          /*stack_entries=*/2);
    out.u64(4);  // entry spans
    out.u64(1);
    const std::vector<std::uint8_t> sealed = std::move(out).finish();

    SnapshotReader in(sealed);
    const CheckpointHeader header = read_checkpoint_header(in);
    EXPECT_EQ(header.fingerprint.kind, fp.kind);
    EXPECT_EQ(header.fingerprint.seed, fp.seed);
    EXPECT_EQ(header.fingerprint.traces, fp.traces);
    EXPECT_EQ(header.fingerprint.block_size, fp.block_size);
    EXPECT_EQ(header.fingerprint.payload, fp.payload);
    EXPECT_EQ(header.completed_blocks, 5u);
    EXPECT_EQ(header.stack_entries, 2u);
    EXPECT_EQ(in.u64(), 4u);
    EXPECT_EQ(in.u64(), 1u);
}

TEST(CheckpointFraming, BadMagicAndVersionAreCorrupt) {
    SnapshotWriter bad_magic;
    bad_magic.u32(0x12345678u);
    bad_magic.u32(kSnapshotVersion);
    const std::vector<std::uint8_t> sealed_magic = std::move(bad_magic).finish();
    SnapshotReader in_magic(sealed_magic);
    try {
        (void)read_checkpoint_header(in_magic);
        FAIL() << "bad magic accepted";
    } catch (const CampaignError& e) {
        EXPECT_EQ(e.kind(), CampaignErrorKind::CorruptSnapshot);
    }

    SnapshotWriter bad_version;
    bad_version.u32(kSnapshotMagic);
    bad_version.u32(kSnapshotVersion + 7);
    const std::vector<std::uint8_t> sealed_version =
        std::move(bad_version).finish();
    SnapshotReader in_version(sealed_version);
    EXPECT_THROW((void)read_checkpoint_header(in_version), CampaignError);
}

TEST(CheckpointFraming, FingerprintMismatchNamesTheField) {
    const CampaignFingerprint expected{1, 2, 3, 4, 5};
    CampaignFingerprint stored = expected;
    require_fingerprint_match(expected, stored);  // equal: no throw

    stored.seed = 99;
    try {
        require_fingerprint_match(expected, stored);
        FAIL() << "seed mismatch accepted";
    } catch (const CampaignError& e) {
        EXPECT_EQ(e.kind(), CampaignErrorKind::ConfigMismatch);
        EXPECT_NE(std::string(e.what()).find("seed"), std::string::npos);
    }

    stored = expected;
    stored.traces = 77;
    try {
        require_fingerprint_match(expected, stored);
        FAIL() << "traces mismatch accepted";
    } catch (const CampaignError& e) {
        EXPECT_NE(std::string(e.what()).find("traces"), std::string::npos);
    }

    stored = expected;
    stored.block_size = 128;
    EXPECT_THROW(require_fingerprint_match(expected, stored), CampaignError);
}

TEST(CheckpointPolicyTest, ExplicitPathWinsOverEnvironment) {
    ::setenv("GLITCHMASK_CHECKPOINT_DIR", "/tmp/gm_env_dir", 1);
    CampaignRunOptions run;
    run.checkpoint_path = "/tmp/explicit.gmsnap";
    const CheckpointPolicy policy = make_checkpoint_policy(run, "def");
    EXPECT_EQ(policy.path, "/tmp/explicit.gmsnap");
    ::unsetenv("GLITCHMASK_CHECKPOINT_DIR");
}

TEST(CheckpointPolicyTest, EnvironmentDirectoryNamesFileByCampaignId) {
    ::setenv("GLITCHMASK_CHECKPOINT_DIR", "/tmp/gm_env_dir", 1);
    const CheckpointPolicy by_default =
        make_checkpoint_policy(CampaignRunOptions{}, "des_tvla");
    EXPECT_EQ(by_default.path, "/tmp/gm_env_dir/des_tvla.gmsnap");

    CampaignRunOptions run;
    run.campaign_id = "custom";
    const CheckpointPolicy by_id = make_checkpoint_policy(run, "des_tvla");
    EXPECT_EQ(by_id.path, "/tmp/gm_env_dir/custom.gmsnap");
    ::unsetenv("GLITCHMASK_CHECKPOINT_DIR");
}

TEST(CheckpointPolicyTest, InactiveWithoutPathTokenOrHook) {
    ::unsetenv("GLITCHMASK_CHECKPOINT_DIR");
    const CheckpointPolicy off =
        make_checkpoint_policy(CampaignRunOptions{}, "x");
    EXPECT_FALSE(off.active());
    EXPECT_EQ(off.every_blocks, 16u);  // default cadence

    CampaignRunOptions with_cadence;
    with_cadence.checkpoint_every = 4;
    with_cadence.checkpoint_path = "/tmp/y.gmsnap";
    const CheckpointPolicy on = make_checkpoint_policy(with_cadence, "x");
    EXPECT_TRUE(on.active());
    EXPECT_EQ(on.every_blocks, 4u);
}

}  // namespace
}  // namespace glitchmask::eval
