#include "sim/vcd.hpp"

#include <stdexcept>

namespace glitchmask::sim {

namespace {

/// Short printable VCD identifier for index i (base-94 over '!'..'~').
std::string vcd_code(std::size_t i) {
    std::string code;
    do {
        code += static_cast<char>('!' + (i % 94));
        i /= 94;
    } while (i != 0);
    return code;
}

}  // namespace

VcdWriter::VcdWriter(const netlist::Netlist& nl, const std::string& path)
    : out_(path) {
    if (!out_) throw std::runtime_error("VcdWriter: cannot open " + path);
    watch_.resize(nl.size());
    for (netlist::NetId id = 0; id < nl.size(); ++id) watch_[id] = id;
    write_header(nl);
}

VcdWriter::VcdWriter(const netlist::Netlist& nl, const std::string& path,
                     const std::vector<netlist::NetId>& watch,
                     GlitchMarkerConfig marker)
    : out_(path), watch_(watch), marker_(marker) {
    if (!out_) throw std::runtime_error("VcdWriter: cannot open " + path);
    if (marker_.net != netlist::kNoNet && marker_.window_ps <= 0)
        throw std::invalid_argument(
            "VcdWriter: glitch marker needs a positive window_ps");
    write_header(nl);
}

void VcdWriter::write_header(const netlist::Netlist& nl) {
    out_ << "$timescale 1ps $end\n$scope module glitchmask $end\n";
    codes_.assign(nl.size(), std::string());
    for (std::size_t i = 0; i < watch_.size(); ++i) {
        const netlist::NetId id = watch_[i];
        codes_[id] = vcd_code(i);
        std::string name = nl.name(id);
        if (name.empty()) name = "n" + std::to_string(id);
        for (char& c : name)
            if (c == ' ') c = '_';
        out_ << "$var wire 1 " << codes_[id] << ' ' << name << " $end\n";
    }
    if (marker_.net != netlist::kNoNet) {
        marker_code_ = vcd_code(watch_.size());
        std::string name = nl.name(marker_.net);
        if (name.empty()) name = "n" + std::to_string(marker_.net);
        for (char& c : name)
            if (c == ' ') c = '_';
        out_ << "$var wire 1 " << marker_code_ << ' ' << name
             << "_glitchmark $end\n";
    }
    out_ << "$upscope $end\n$enddefinitions $end\n";
}

void VcdWriter::dump_initial(const EventSimulator& sim) {
    out_ << "$dumpvars\n";
    for (const netlist::NetId id : watch_)
        out_ << (sim.value(id) ? '1' : '0') << codes_[id] << '\n';
    if (!marker_code_.empty()) out_ << '0' << marker_code_ << '\n';
    out_ << "$end\n";
    last_time_ = 0;
}

void VcdWriter::emit(TimePs time, bool value, const std::string& code) {
    if (time != last_time_) {
        out_ << '#' << time << '\n';
        last_time_ = time;
    }
    out_ << (value ? '1' : '0') << code << '\n';
}

void VcdWriter::on_toggle(netlist::NetId net, TimePs time, bool value) {
    const bool is_marker_net = !marker_code_.empty() && net == marker_.net;
    if (is_marker_net) {
        const TimePs window = time / marker_.window_ps;
        if (window != marker_window_) {
            // New clock window: the previous window's glitch burst is
            // over, so the marker drops at that window's end -- emitted
            // before this transition so timestamps stay monotonic.
            if (marker_high_) {
                emit((marker_window_ + 1) * marker_.window_ps, false,
                     marker_code_);
                marker_high_ = false;
            }
            marker_window_ = window;
            marker_toggles_ = 0;
        }
    }
    if (!codes_[net].empty()) emit(time, value, codes_[net]);
    if (!is_marker_net) return;
    ++marker_toggles_;
    if (marker_toggles_ >= 2 && !marker_high_) {
        emit(time, true, marker_code_);
        marker_high_ = true;
    }
}

void VcdWriter::close() {
    if (!out_.is_open()) return;
    out_.flush();
    if (!out_)
        throw std::runtime_error(
            "VcdWriter: write failed (disk full or stream error)");
    out_.close();
    if (!out_)
        throw std::runtime_error("VcdWriter: closing the dump file failed");
}

VcdWriter::~VcdWriter() {
    // Destructors must not throw during unwinding; call close() directly
    // to observe I/O failures.
    try {
        close();
    } catch (const std::runtime_error&) {
    }
}

}  // namespace glitchmask::sim
