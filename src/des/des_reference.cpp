#include "des/des_reference.hpp"

#include "support/bits.hpp"

namespace glitchmask::des {

namespace {

constexpr std::array<std::uint8_t, 64> kIp = {
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9,  1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7};

constexpr std::array<std::uint8_t, 64> kFp = {
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9,  49, 17, 57, 25};

constexpr std::array<std::uint8_t, 48> kE = {
    32, 1,  2,  3,  4,  5,  4,  5,  6,  7,  8,  9,  8,  9,  10, 11,
    12, 13, 12, 13, 14, 15, 16, 17, 16, 17, 18, 19, 20, 21, 20, 21,
    22, 23, 24, 25, 24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1};

constexpr std::array<std::uint8_t, 32> kP = {
    16, 7, 20, 21, 29, 12, 28, 17, 1,  15, 23, 26, 5,  18, 31, 10,
    2,  8, 24, 14, 32, 27, 3,  9,  19, 13, 30, 6,  22, 11, 4,  25};

constexpr std::array<std::uint8_t, 56> kPc1 = {
    57, 49, 41, 33, 25, 17, 9,  1,  58, 50, 42, 34, 26, 18,
    10, 2,  59, 51, 43, 35, 27, 19, 11, 3,  60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15, 7,  62, 54, 46, 38, 30, 22,
    14, 6,  61, 53, 45, 37, 29, 21, 13, 5,  28, 20, 12, 4};

constexpr std::array<std::uint8_t, 48> kPc2 = {
    14, 17, 11, 24, 1,  5,  3,  28, 15, 6,  21, 10, 23, 19, 12, 4,
    26, 8,  16, 7,  27, 20, 13, 2,  41, 52, 31, 37, 47, 55, 30, 40,
    51, 45, 33, 48, 44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32};

constexpr std::array<std::uint8_t, 16> kShifts = {1, 1, 2, 2, 2, 2, 2, 2,
                                                  1, 2, 2, 2, 2, 2, 2, 1};

// The eight S-boxes, [box][row * 16 + column].
constexpr std::uint8_t kSbox[8][64] = {
    {14, 4,  13, 1, 2,  15, 11, 8,  3,  10, 6,  12, 5,  9,  0, 7,
     0,  15, 7,  4, 14, 2,  13, 1,  10, 6,  12, 11, 9,  5,  3, 8,
     4,  1,  14, 8, 13, 6,  2,  11, 15, 12, 9,  7,  3,  10, 5, 0,
     15, 12, 8,  2, 4,  9,  1,  7,  5,  11, 3,  14, 10, 0,  6, 13},
    {15, 1,  8,  14, 6,  11, 3,  4,  9,  7, 2,  13, 12, 0, 5,  10,
     3,  13, 4,  7,  15, 2,  8,  14, 12, 0, 1,  10, 6,  9, 11, 5,
     0,  14, 7,  11, 10, 4,  13, 1,  5,  8, 12, 6,  9,  3, 2,  15,
     13, 8,  10, 1,  3,  15, 4,  2,  11, 6, 7,  12, 0,  5, 14, 9},
    {10, 0,  9,  14, 6, 3,  15, 5,  1,  13, 12, 7,  11, 4,  2,  8,
     13, 7,  0,  9,  3, 4,  6,  10, 2,  8,  5,  14, 12, 11, 15, 1,
     13, 6,  4,  9,  8, 15, 3,  0,  11, 1,  2,  12, 5,  10, 14, 7,
     1,  10, 13, 0,  6, 9,  8,  7,  4,  15, 14, 3,  11, 5,  2,  12},
    {7,  13, 14, 3, 0,  6,  9,  10, 1,  2, 8, 5,  11, 12, 4,  15,
     13, 8,  11, 5, 6,  15, 0,  3,  4,  7, 2, 12, 1,  10, 14, 9,
     10, 6,  9,  0, 12, 11, 7,  13, 15, 1, 3, 14, 5,  2,  8,  4,
     3,  15, 0,  6, 10, 1,  13, 8,  9,  4, 5, 11, 12, 7,  2,  14},
    {2,  12, 4,  1,  7,  10, 11, 6,  8,  5,  3,  15, 13, 0, 14, 9,
     14, 11, 2,  12, 4,  7,  13, 1,  5,  0,  15, 10, 3,  9, 8,  6,
     4,  2,  1,  11, 10, 13, 7,  8,  15, 9,  12, 5,  6,  3, 0,  14,
     11, 8,  12, 7,  1,  14, 2,  13, 6,  15, 0,  9,  10, 4, 5,  3},
    {12, 1,  10, 15, 9, 2,  6,  8,  0,  13, 3,  4,  14, 7,  5,  11,
     10, 15, 4,  2,  7, 12, 9,  5,  6,  1,  13, 14, 0,  11, 3,  8,
     9,  14, 15, 5,  2, 8,  12, 3,  7,  0,  4,  10, 1,  13, 11, 6,
     4,  3,  2,  12, 9, 5,  15, 10, 11, 14, 1,  7,  6,  0,  8,  13},
    {4,  11, 2,  14, 15, 0, 8,  13, 3,  12, 9, 7,  5,  10, 6, 1,
     13, 0,  11, 7,  4,  9, 1,  10, 14, 3,  5, 12, 2,  15, 8, 6,
     1,  4,  11, 13, 12, 3, 7,  14, 10, 15, 6, 8,  0,  5,  9, 2,
     6,  11, 13, 8,  1,  4, 10, 7,  9,  5,  0, 15, 14, 2,  3, 12},
    {13, 2,  8,  4, 6,  15, 11, 1,  10, 9,  3,  14, 5,  0,  12, 7,
     1,  15, 13, 8, 10, 3,  7,  4,  12, 5,  6,  11, 0,  14, 9,  2,
     7,  11, 4,  1, 9,  12, 14, 2,  0,  6,  10, 13, 15, 3,  5,  8,
     2,  1,  14, 7, 4,  10, 8,  13, 15, 12, 9,  0,  3,  5,  6,  11}};

}  // namespace

std::uint64_t permute(std::uint64_t in, std::span<const std::uint8_t> table,
                      unsigned in_width) {
    std::uint64_t out = 0;
    const auto out_width = static_cast<unsigned>(table.size());
    for (unsigned i = 0; i < out_width; ++i) {
        const unsigned src = table[i];  // 1-based from MSB
        const bool bit = ((in >> (in_width - src)) & 1u) != 0;
        out |= static_cast<std::uint64_t>(bit) << (out_width - 1 - i);
    }
    return out;
}

std::span<const std::uint8_t> table_ip() { return kIp; }
std::span<const std::uint8_t> table_fp() { return kFp; }
std::span<const std::uint8_t> table_e() { return kE; }
std::span<const std::uint8_t> table_p() { return kP; }
std::span<const std::uint8_t> table_pc1() { return kPc1; }
std::span<const std::uint8_t> table_pc2() { return kPc2; }
std::span<const std::uint8_t> key_shifts() { return kShifts; }

std::uint8_t sbox(unsigned box, std::uint8_t in) {
    const unsigned row = ((in >> 4) & 2u) | (in & 1u);
    const unsigned column = (in >> 1) & 0xFu;
    return kSbox[box][row * 16 + column];
}

std::uint8_t mini_sbox(unsigned box, unsigned row, std::uint8_t middle4) {
    return kSbox[box][row * 16 + (middle4 & 0xFu)];
}

std::array<std::uint64_t, kRounds> key_schedule(std::uint64_t key) {
    const std::uint64_t cd = permute(key, kPc1, 64);
    std::uint32_t c = static_cast<std::uint32_t>(cd >> 28) & 0x0FFFFFFFu;
    std::uint32_t d = static_cast<std::uint32_t>(cd) & 0x0FFFFFFFu;
    std::array<std::uint64_t, kRounds> subkeys{};
    for (unsigned round = 0; round < kRounds; ++round) {
        c = static_cast<std::uint32_t>(rotl_bits(c, 28, kShifts[round]));
        d = static_cast<std::uint32_t>(rotl_bits(d, 28, kShifts[round]));
        const std::uint64_t merged =
            (static_cast<std::uint64_t>(c) << 28) | d;
        subkeys[round] = permute(merged, kPc2, 56);
    }
    return subkeys;
}

std::uint32_t feistel(std::uint32_t r, std::uint64_t subkey) {
    const std::uint64_t expanded = permute(r, kE, 32) ^ subkey;
    std::uint32_t s_out = 0;
    for (unsigned box = 0; box < 8; ++box) {
        const auto six =
            static_cast<std::uint8_t>((expanded >> (42 - 6 * box)) & 0x3Fu);
        s_out = (s_out << 4) | sbox(box, six);
    }
    return static_cast<std::uint32_t>(permute(s_out, kP, 32));
}

RoundTrace encrypt_trace(std::uint64_t plaintext, std::uint64_t key) {
    RoundTrace trace;
    const std::uint64_t ip = permute(plaintext, kIp, 64);
    trace.left[0] = static_cast<std::uint32_t>(ip >> 32);
    trace.right[0] = static_cast<std::uint32_t>(ip);
    const auto subkeys = key_schedule(key);
    for (unsigned round = 0; round < kRounds; ++round) {
        trace.subkey[round] = subkeys[round];
        trace.left[round + 1] = trace.right[round];
        trace.right[round + 1] =
            trace.left[round] ^ feistel(trace.right[round], subkeys[round]);
    }
    // Final swap: pre-output is R16 || L16.
    const std::uint64_t preoutput =
        (static_cast<std::uint64_t>(trace.right[kRounds]) << 32) |
        trace.left[kRounds];
    trace.ciphertext = permute(preoutput, kFp, 64);
    return trace;
}

std::uint64_t encrypt_block(std::uint64_t plaintext, std::uint64_t key) {
    return encrypt_trace(plaintext, key).ciphertext;
}

std::uint64_t decrypt_block(std::uint64_t ciphertext, std::uint64_t key) {
    const std::uint64_t ip = permute(ciphertext, kIp, 64);
    std::uint32_t l = static_cast<std::uint32_t>(ip >> 32);
    std::uint32_t r = static_cast<std::uint32_t>(ip);
    const auto subkeys = key_schedule(key);
    for (unsigned round = 0; round < kRounds; ++round) {
        const std::uint32_t next_r = l ^ feistel(r, subkeys[kRounds - 1 - round]);
        l = r;
        r = next_r;
    }
    const std::uint64_t preoutput = (static_cast<std::uint64_t>(r) << 32) | l;
    return permute(preoutput, kFp, 64);
}

std::uint64_t tdes_encrypt(std::uint64_t plaintext, std::uint64_t k1,
                           std::uint64_t k2, std::uint64_t k3) {
    return encrypt_block(decrypt_block(encrypt_block(plaintext, k1), k2), k3);
}

std::uint64_t tdes_decrypt(std::uint64_t ciphertext, std::uint64_t k1,
                           std::uint64_t k2, std::uint64_t k3) {
    return decrypt_block(encrypt_block(decrypt_block(ciphertext, k3), k2), k1);
}

}  // namespace glitchmask::des
