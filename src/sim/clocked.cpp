#include "sim/clocked.hpp"

#include <stdexcept>

namespace glitchmask::sim {

ClockedSim::ClockedSim(const Netlist& nl, const DelayModel& dm,
                       ClockConfig clock, CouplingConfig coupling,
                       SimOptions options)
    : nl_(nl), dm_(dm), clock_(clock), engine_(nl, dm, coupling, options) {
    enable_.assign(nl.max_ctrl_group() + 1u, 0);
    reset_.assign(nl.max_ctrl_group() + 1u, 0);
    enable_[netlist::kAlwaysEnabled] = 1;
}

void ClockedSim::set_enable(CtrlGroup group, bool enabled) {
    if (group == netlist::kAlwaysEnabled)
        throw std::runtime_error("ClockedSim: group 0 is always enabled");
    enable_.at(group) = enabled ? 1 : 0;
}

void ClockedSim::set_reset(CtrlGroup group, bool asserted) {
    if (group == netlist::kAlwaysEnabled)
        throw std::runtime_error("ClockedSim: group 0 cannot be reset");
    reset_.at(group) = asserted ? 1 : 0;
}

void ClockedSim::set_input(NetId input, bool value) {
    if (nl_.cell(input).kind != netlist::CellKind::Input)
        throw std::runtime_error("ClockedSim::set_input: not a primary input");
    pending_.push_back({input, value});
}

void ClockedSim::set_input_bus(const Bus& bus, std::uint64_t value) {
    for (std::size_t i = 0; i < bus.size(); ++i)
        set_input(bus[i], ((value >> i) & 1u) != 0);
}

std::uint64_t ClockedSim::read_bus(const Bus& bus) const {
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < bus.size(); ++i)
        if (engine_.value(bus[i])) value |= std::uint64_t{1} << i;
    return value;
}

void ClockedSim::step(std::size_t cycles) {
    for (std::size_t n = 0; n < cycles; ++n) {
        const TimePs edge = static_cast<TimePs>(cycle_) * clock_.period_ps;
        engine_.begin_activity_window();

        // 1. Sample the flops with the pin view at the edge.
        struct Update {
            NetId net;
            bool value;
        };
        std::vector<Update> updates;
        for (const CellId flop : nl_.flops()) {
            const netlist::Cell& cell = nl_.cell(flop);
            bool q = engine_.value(flop);
            if (cell.reset != netlist::kAlwaysEnabled && reset_[cell.reset] != 0) {
                q = false;
            } else if (enable_[cell.enable] != 0) {
                q = engine_.pin_value(flop, 0);
            }
            if (q != engine_.value(flop)) updates.push_back({flop, q});
        }

        // 2. Launch new Q values and pending input changes after clk-to-Q.
        const TimePs launch = edge + dm_.clk_to_q();
        for (const Update& update : updates)
            engine_.drive(update.net, update.value, launch);
        for (const PendingInput& input : pending_)
            engine_.drive(input.net, input.value, launch);
        pending_.clear();

        // 3. Settle until just before the next edge.
        engine_.run_until(edge + clock_.period_ps);
        ++cycle_;
    }
}

void ClockedSim::restart() {
    engine_.initialize();
    enable_.assign(enable_.size(), 0);
    reset_.assign(reset_.size(), 0);
    enable_[netlist::kAlwaysEnabled] = 1;
    pending_.clear();
    cycle_ = 0;
}

}  // namespace glitchmask::sim
