// Deterministic pseudo-random number generation for the whole library.
//
// Everything in glitchmask that needs randomness -- mask shares, refresh
// bits, plaintext selection, delay jitter, measurement noise -- draws from
// an explicitly seeded generator so that every experiment is reproducible
// bit-for-bit.  We use xoshiro256++ (public domain, Blackman/Vigna) seeded
// through SplitMix64, which is both much faster than std::mt19937_64 and
// free of its seeding pitfalls.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace glitchmask {

/// SplitMix64 step: turns an arbitrary 64-bit seed stream into well-mixed
/// values.  Used to seed Xoshiro256 and to derive per-instance static
/// jitter from (seed, instance-id) pairs without constructing a generator.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// One-shot hash of two 64-bit values to a well-mixed 64-bit value.
/// Handy for "seed per (netlist-seed, gate-id)" style derivations.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept {
    std::uint64_t s = a ^ (b * 0x9e3779b97f4a7c15ULL);
    std::uint64_t v = splitmix64(s);
    return splitmix64(s) ^ v;
}

/// xoshiro256++ generator.  Satisfies std::uniform_random_bit_generator so
/// it can drive <random> distributions, but also offers the small helpers
/// (bit(), chance(), uniform()) the library uses in hot loops.
class Xoshiro256 {
public:
    using result_type = std::uint64_t;

    /// Seed through SplitMix64 so that nearby seeds give unrelated streams.
    explicit constexpr Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
        std::uint64_t sm = seed;
        for (auto& word : state_) word = splitmix64(sm);
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    constexpr result_type operator()() noexcept {
        const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// One uniformly random bit.
    [[nodiscard]] constexpr bool bit() noexcept { return ((*this)() >> 63) != 0; }

    /// `n` (<= 64) uniformly random bits in the low positions.
    [[nodiscard]] constexpr std::uint64_t bits(unsigned n) noexcept {
        return n == 0 ? 0 : (*this)() >> (64u - n);
    }

    /// Uniform double in [0, 1).
    [[nodiscard]] constexpr double uniform() noexcept {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    [[nodiscard]] constexpr double uniform(double lo, double hi) noexcept {
        return lo + (hi - lo) * uniform();
    }

    /// Uniform integer in [0, n).  n must be > 0.  Uses Lemire rejection.
    [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept;

    /// Bernoulli draw with probability p of returning true.
    [[nodiscard]] constexpr bool chance(double p) noexcept { return uniform() < p; }

    /// Standard-normal draw (Marsaglia polar method with cached spare).
    [[nodiscard]] double gaussian() noexcept;

    /// Normal draw with the given mean and standard deviation.
    [[nodiscard]] double gaussian(double mean, double sigma) noexcept {
        return mean + sigma * gaussian();
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
    double spare_ = 0.0;
    bool has_spare_ = false;
};

}  // namespace glitchmask
