file(REMOVE_RECURSE
  "CMakeFiles/table2_products.dir/table2_products.cpp.o"
  "CMakeFiles/table2_products.dir/table2_products.cpp.o.d"
  "table2_products"
  "table2_products.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_products.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
