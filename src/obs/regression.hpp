// The regression radar: judge a candidate entry against its rolling
// same-fingerprint history with a deterministic noise-aware rule.
//
// Timings are noisy, so "after != before" is meaningless; but CI still
// needs a yes/no answer.  The rule: for each metric, take the last N
// completed same-fingerprint history entries (canonical ledger order --
// see sort_ledger), compute the median and the MAD (median absolute
// deviation), and set the acceptance band to
//
//   threshold = max(mad_k * MAD, deadband_rel * |median|, deadband_abs)
//
// A candidate outside [median - threshold, median + threshold] is
// `regressed` or `improved` depending on the metric's direction
// (wall/cpu/phase seconds: lower is better; *_per_sec / *speedup*:
// higher is better); inside the band it is `stable`.  Fewer than
// min_history usable entries yields `no_history` -- never a verdict on
// thin evidence.  The MAD term adapts the band to the machine's actual
// jitter; the deadbands stop a microsecond-stable metric from flagging
// microsecond wiggles, and mad_k * MAD == 0 history (bit-stable metrics)
// still gets the deadband.
//
// Everything here is a pure function of its inputs: evaluate_candidate
// sorts its own copy of the history canonically, so ANY arrival
// interleaving of the same entries -- concurrent writers, shuffled
// ingest -- produces a byte-identical report (asserted in tests and
// gated in ci.sh).  Leakage fields never go through this rule: they are
// compared bit-exactly (obs/diff.hpp), and any change is `leakage_changed`
// regardless of magnitude.
#pragma once

#include <string>
#include <vector>

#include "obs/ledger.hpp"

namespace glitchmask::obs {

enum class MetricVerdict { kImproved, kStable, kRegressed, kNoHistory };

[[nodiscard]] constexpr const char* metric_verdict_name(
    MetricVerdict verdict) noexcept {
    switch (verdict) {
        case MetricVerdict::kImproved: return "improved";
        case MetricVerdict::kStable: return "stable";
        case MetricVerdict::kRegressed: return "regressed";
        case MetricVerdict::kNoHistory: return "no_history";
    }
    return "unknown";
}

struct RegressionRule {
    std::size_t window = 8;       // last N same-fingerprint entries
    std::size_t min_history = 3;  // fewer -> kNoHistory
    double mad_k = 4.0;           // band half-width in MADs
    double deadband_rel = 0.05;   // ... but never under 5% of the median
    double deadband_abs = 1e-6;   // ... nor under 1 microsecond/unit
};

/// Per-metric judgement against the history window.
struct MetricJudgement {
    std::string name;
    MetricVerdict verdict = MetricVerdict::kNoHistory;
    double value = 0.0;      // the candidate's value
    double median = 0.0;     // history median (0 when no history)
    double mad = 0.0;        // history MAD
    double threshold = 0.0;  // resolved acceptance half-width
    std::size_t history = 0; // usable history entries

    friend bool operator==(const MetricJudgement&,
                           const MetricJudgement&) = default;
};

struct RegressionReport {
    std::string fingerprint;  // 80-hex key the history was filtered by
    std::string campaign;
    /// Leakage vs the most recent history entry (bit-exact, never noise-
    /// judged); absent (equal = true, fields empty) with no history.
    bool leakage_checked = false;
    bool leakage_changed = false;
    std::vector<std::string> leakage_changes;  // names of changed fields
    std::vector<MetricJudgement> metrics;      // fixed order
    /// Any metric regressed or leakage changed.
    bool regressed = false;

    friend bool operator==(const RegressionReport&,
                           const RegressionReport&) = default;
};

/// True when the rule should treat larger values of `name` as better
/// (throughput/speedup metrics) rather than worse (time/overhead).
[[nodiscard]] bool metric_higher_is_better(const std::string& name);

/// True for metric names the perf rule must never judge (leakage facts:
/// max_abs_t*, toggles -- they are bit-compared instead).
[[nodiscard]] bool metric_is_leakage(const std::string& name);

/// Judges one metric value against its history samples.  Pure; `samples`
/// must already be in canonical history order (oldest first) -- the
/// median/MAD are order-independent, the windowing is not.
[[nodiscard]] MetricJudgement judge_metric(const std::string& name,
                                           double value,
                                           const std::vector<double>& samples,
                                           const RegressionRule& rule);

/// Judges `candidate` against `history` (any order; filtered internally
/// to completed entries with the candidate's fingerprint, sorted
/// canonically, excluding entries identical to the candidate's canonical
/// text is NOT done -- re-ingesting the same run twice is legitimate
/// history).  Pure: byte-identical report for any permutation of
/// `history`.
[[nodiscard]] RegressionReport evaluate_candidate(
    const LedgerEntry& candidate, std::vector<LedgerEntry> history,
    const RegressionRule& rule);

/// Deterministic markdown rendering (the `glitchmask_ledger trend`
/// report body; byte-identical for equal reports).
[[nodiscard]] std::string render_regression_markdown(
    const RegressionReport& report);

}  // namespace glitchmask::obs
