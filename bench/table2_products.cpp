// Reproduces paper Table II: the path-delay schedules for products of 3
// and 4 shared variables, and validates them.
//
// Three checks per product size:
//  1. the generated schedule equals the paper's Table II row;
//  2. the secAND2-PD chain computes the product correctly under glitchy
//     timing simulation;
//  3. TVLA: with the Table II schedule there is no first-order leakage,
//     while an unsafe variant in which the x operand arrives after all
//     y shares leaks -- the paper's safety argument.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "core/composition.hpp"
#include "core/sharing.hpp"
#include "eval/campaign.hpp"
#include "leakage/tvla.hpp"
#include "power/power_model.hpp"
#include "sim/clocked.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

using namespace glitchmask;
using core::MaskedBit;
using core::SharedBus;
using core::SharedNet;

namespace {

struct ProductHarness {
    core::Netlist nl;
    SharedBus in;       // primary inputs
    SharedNet out{};
};

/// Registered product chain with either the Table II schedule or an
/// unsafe x-last one, replicated for SNR.
ProductHarness build(unsigned n, bool safe_schedule, unsigned replicas) {
    ProductHarness h;
    h.in = core::shared_input_bus(h.nl, "v", n);
    SharedBus registered(n);
    for (unsigned i = 0; i < n; ++i)
        registered[i] = core::reg_shares(h.nl, h.in[i]);

    const core::DelaySchedule schedule = core::table2_schedule(n);
    for (unsigned k = 0; k < replicas; ++k) {
        core::Netlist::Scope scope(h.nl, "rep" + std::to_string(k));
        SharedBus delayed(n);
        for (unsigned i = 0; i < n; ++i) {
            unsigned d0 = schedule.share0[i];
            unsigned d1 = schedule.share1[i];
            if (!safe_schedule && i == 0) {
                // Unsafe variant: the x operand (v0) arrives after every y
                // share -- the Table I hazard (an x share evaluating on the
                // combined y0/y1 reveals the unshared y).
                d0 = d1 = 2 * (n - 1) + 1;
            }
            delayed[i] = core::delay_shared(h.nl, registered[i], d0, d1, 10,
                                            "v" + std::to_string(i))
                             .out;
        }
        SharedNet acc = delayed[0];
        for (unsigned i = 1; i < n; ++i)
            acc = core::secand2(h.nl, acc, delayed[i],
                                "g" + std::to_string(i));
        h.out = acc;
    }
    h.nl.freeze();
    return h;
}

struct ProductResult {
    bool correct = true;
    double max_abs_t1 = 0.0;
};

ProductResult evaluate(unsigned n, bool safe_schedule, std::size_t traces) {
    const unsigned replicas = 12;
    ProductHarness h = build(n, safe_schedule, replicas);
    const sim::DelayModel dm(h.nl, sim::DelayConfig::spartan6());
    sim::ClockConfig clock;
    clock.period_ps = 90000;
    sim::ClockedSim simulator(h.nl, dm, clock);
    power::PowerConfig power_config;
    power_config.bin_ps = clock.period_ps;
    power::PowerRecorder recorder(h.nl, power_config);
    simulator.engine().set_sink(&recorder);

    constexpr std::size_t kCycles = 5;  // two consecutive products
    leakage::TvlaCampaign campaign(kCycles, 1);
    Xoshiro256 rng(11);
    Xoshiro256 noise(12);
    ProductResult result;

    for (std::size_t t = 0; t < traces; ++t) {
        const bool fixed = rng.bit();
        simulator.restart();
        recorder.begin_trace(kCycles);
        bool expected = true;
        for (int op = 0; op < 2; ++op) {
            const bool classed = (op == 1);
            expected = true;
            for (unsigned i = 0; i < n; ++i) {
                const bool v = (classed && fixed) ? true : rng.bit();
                expected = expected && v;
                const MaskedBit m = core::mask_bit(v, rng);
                simulator.set_input(h.in[i].s0, m.s0);
                simulator.set_input(h.in[i].s1, m.s1);
            }
            simulator.step(2);
        }
        const bool z = simulator.value(h.out.s0) != simulator.value(h.out.s1);
        result.correct = result.correct && (z == expected);
        campaign.add_trace(fixed, recorder.noisy_trace(noise, 0.5));
    }
    result.max_abs_t1 = campaign.max_abs_t(1);
    return result;
}

std::string schedule_string(unsigned n) {
    const core::DelaySchedule s = core::table2_schedule(n);
    std::string out;
    for (unsigned i = 0; i < n; ++i) {
        if (!out.empty()) out += ' ';
        out += "v" + std::to_string(i) + ":(" + std::to_string(s.share0[i]) +
               "," + std::to_string(s.share1[i]) + ")";
    }
    return out;
}

}  // namespace

int main() {
    bench::banner("Table II: delay sequences for products of 3 / 4 variables");

    std::printf("Schedules in DelayUnits (share0, share1) per variable:\n");
    std::printf("  n=3: %s   (paper: c0->b0->a0,a1->b1->c1)\n",
                schedule_string(3).c_str());
    std::printf("  n=4: %s   (paper: d0->c0->b0->a0,a1->b1->c1->d1)\n\n",
                schedule_string(4).c_str());

    const std::size_t traces = bench::scaled_traces(6000);
    std::printf("traces per configuration: %zu\n\n", traces);

    TablePrinter table({"product", "schedule", "functionally correct",
                        "max|t1|", "verdict"});
    CsvWriter csv("table2_products.csv",
                  {"n", "safe_schedule", "correct", "max_abs_t1"});
    bool all_as_expected = true;
    for (const unsigned n : {3u, 4u}) {
        for (const bool safe : {true, false}) {
            const ProductResult r = evaluate(n, safe, traces);
            table.add_row({"z = v0*...*v" + std::to_string(n - 1),
                           safe ? "Table II" : "x-last (unsafe)",
                           r.correct ? "yes" : "NO",
                           TablePrinter::num(r.max_abs_t1),
                           bench::verdict(r.max_abs_t1)});
            csv.row({static_cast<double>(n), safe ? 1.0 : 0.0,
                     r.correct ? 1.0 : 0.0, r.max_abs_t1});
            const bool leaks = r.max_abs_t1 > leakage::kTvlaThreshold;
            all_as_expected = all_as_expected && r.correct && (leaks != safe);
        }
    }
    table.print();
    std::printf(
        "\nExpected: Table II schedules compute correctly with no first-order\n"
        "leak; making the x operand arrive last leaks (paper Sec. III-B).\n");
    std::printf("CSV: table2_products.csv\n");
    return all_as_expected ? 0 : 1;
}
