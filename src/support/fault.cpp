#include "support/fault.hpp"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <mutex>
#include <new>
#include <stdexcept>
#include <thread>

#include <unistd.h>

#include <atomic>

#include "support/log.hpp"
#include "support/rng.hpp"

#if !defined(GLITCHMASK_NO_FAULT_INJECTION)

namespace glitchmask::fault {

namespace {

/// FNV-1a over the site name, mixed with the plan seed and hit index to
/// drive the Bernoulli draw and the corruption byte position.
std::uint64_t site_hash(const char* site) noexcept {
    std::uint64_t hash = 0xCBF29CE484222325ULL;
    for (; *site != '\0'; ++site) {
        hash ^= static_cast<std::uint8_t>(*site);
        hash *= 0x100000001B3ULL;
    }
    return hash;
}

struct SiteState {
    FaultSpec spec;
    std::uint64_t hits = 0;   // eligible consultations
    std::uint64_t armed = 0;  // hits past `after`
    std::uint64_t fires = 0;
};

struct PlanState {
    std::uint64_t seed = 1;
    std::vector<SiteState> sites;
};

std::mutex g_mutex;
PlanState* g_plan = nullptr;             // guarded by g_mutex
std::atomic<bool> g_active{false};       // fast-path gate
std::atomic<std::uint64_t> g_fires{0};

bool site_matches(const std::string& pattern, const char* site) noexcept {
    if (!pattern.empty() && pattern.back() == '*')
        return std::string_view(site).substr(0, pattern.size() - 1) ==
               std::string_view(pattern).substr(0, pattern.size() - 1);
    return pattern == site;
}

/// Kind families a call site can trigger: inject_errno() only consults
/// IoError specs, inject_corrupt() only Corrupt ones, inject_point() the
/// control kinds -- so a site shared between families never consumes the
/// wrong spec's fire budget.
bool kind_eligible(FaultKind kind, bool io, bool corrupt,
                   bool control) noexcept {
    switch (kind) {
        case FaultKind::IoError: return io;
        case FaultKind::Corrupt: return corrupt;
        case FaultKind::Alloc:
        case FaultKind::Kill:
        case FaultKind::Stall: return control;
    }
    return false;
}

/// Consults the plan for `site`; fills `out` and returns true when a spec
/// fires on this hit.  Deterministic: the decision depends only on the
/// plan and the per-spec hit ordinal, never on wall clock or scheduling.
bool consult(const char* site, bool io, bool corrupt, bool control,
             FaultSpec& out) noexcept {
    std::lock_guard<std::mutex> lock(g_mutex);
    if (g_plan == nullptr) return false;
    for (SiteState& state : g_plan->sites) {
        if (!kind_eligible(state.spec.kind, io, corrupt, control)) continue;
        if (!site_matches(state.spec.site, site)) continue;
        state.hits += 1;
        if (state.fires >= state.spec.count) continue;
        if (state.hits <= state.spec.after) continue;
        state.armed += 1;
        if (state.spec.every > 1 && (state.armed % state.spec.every) != 0)
            continue;
        if (state.spec.probability < 1.0) {
            const std::uint64_t draw = mix64(
                mix64(g_plan->seed, site_hash(site)), state.armed);
            const double uniform =
                static_cast<double>(draw >> 11) * 0x1.0p-53;
            if (uniform >= state.spec.probability) continue;
        }
        state.fires += 1;
        g_fires.fetch_add(1, std::memory_order_relaxed);
        out = state.spec;
        return true;
    }
    return false;
}

[[noreturn]] void bad_clause(const std::string& clause,
                             const std::string& why) {
    throw std::invalid_argument("fault spec clause '" + clause + "': " + why);
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& text) {
    FaultPlan plan;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t end = text.find(';', pos);
        if (end == std::string::npos) end = text.size();
        const std::string clause = text.substr(pos, end - pos);
        pos = end + 1;
        if (clause.empty()) continue;

        const std::size_t eq = clause.find('=');
        if (eq == std::string::npos) bad_clause(clause, "missing '='");
        const std::string key = clause.substr(0, eq);
        if (key == "seed") {
            plan.seed = std::strtoull(clause.c_str() + eq + 1, nullptr, 10);
            continue;
        }

        FaultSpec spec;
        spec.site = key;
        if (spec.site.empty()) bad_clause(clause, "empty site name");
        std::string rhs = clause.substr(eq + 1);
        std::string params;
        if (const std::size_t at = rhs.find('@'); at != std::string::npos) {
            params = rhs.substr(at + 1);
            rhs = rhs.substr(0, at);
        }
        if (rhs == "eintr") {
            spec.kind = FaultKind::IoError;
            spec.error_number = EINTR;
        } else if (rhs == "eio") {
            spec.kind = FaultKind::IoError;
            spec.error_number = EIO;
        } else if (rhs == "enospc") {
            spec.kind = FaultKind::IoError;
            spec.error_number = ENOSPC;
        } else if (rhs == "oom") {
            spec.kind = FaultKind::Alloc;
        } else if (rhs == "corrupt") {
            spec.kind = FaultKind::Corrupt;
        } else if (rhs == "kill") {
            spec.kind = FaultKind::Kill;
        } else if (rhs == "stall") {
            spec.kind = FaultKind::Stall;
        } else {
            bad_clause(clause, "unknown fault kind '" + rhs + "'");
        }

        std::size_t ppos = 0;
        while (ppos < params.size()) {
            std::size_t pend = params.find(',', ppos);
            if (pend == std::string::npos) pend = params.size();
            const std::string param = params.substr(ppos, pend - ppos);
            ppos = pend + 1;
            const std::size_t peq = param.find('=');
            if (peq == std::string::npos)
                bad_clause(clause, "parameter '" + param + "' missing '='");
            const std::string name = param.substr(0, peq);
            const char* value = param.c_str() + peq + 1;
            if (name == "after") {
                spec.after = std::strtoull(value, nullptr, 10);
            } else if (name == "count") {
                spec.count = std::strtoull(value, nullptr, 10);
            } else if (name == "every") {
                spec.every = std::strtoull(value, nullptr, 10);
                if (spec.every == 0) bad_clause(clause, "every=0");
            } else if (name == "p") {
                spec.probability = std::strtod(value, nullptr);
                if (spec.probability < 0.0 || spec.probability > 1.0)
                    bad_clause(clause, "p outside [0, 1]");
            } else if (name == "ms") {
                spec.stall_ms = std::strtoull(value, nullptr, 10);
            } else {
                bad_clause(clause, "unknown parameter '" + name + "'");
            }
        }
        plan.specs.push_back(std::move(spec));
    }
    return plan;
}

void install(FaultPlan plan) {
    auto* state = new PlanState;
    state->seed = plan.seed;
    for (FaultSpec& spec : plan.specs)
        state->sites.push_back(SiteState{std::move(spec), 0, 0, 0});
    std::lock_guard<std::mutex> lock(g_mutex);
    delete g_plan;
    g_plan = state;
    g_fires.store(0, std::memory_order_relaxed);
    g_active.store(!state->sites.empty(), std::memory_order_relaxed);
}

void install_from_env() {
    const char* raw = std::getenv("GLITCHMASK_FAULTS");
    if (raw == nullptr || *raw == '\0') return;
    install(parse_fault_plan(raw));
    log::warn(std::string("fault injection active: GLITCHMASK_FAULTS=") + raw);
}

void clear() noexcept {
    std::lock_guard<std::mutex> lock(g_mutex);
    delete g_plan;
    g_plan = nullptr;
    g_active.store(false, std::memory_order_relaxed);
}

bool active() noexcept { return g_active.load(std::memory_order_relaxed); }

int inject_errno(const char* site) noexcept {
    if (!active()) return 0;
    FaultSpec spec;
    if (!consult(site, true, false, false, spec)) return 0;
    log::debug(std::string("fault: injecting errno ") +
               std::to_string(spec.error_number) + " at " + site);
    return spec.error_number;
}

bool inject_corrupt(const char* site, std::span<std::uint8_t> buf) noexcept {
    if (!active() || buf.empty()) return false;
    FaultSpec spec;
    if (!consult(site, false, true, false, spec)) return false;
    std::uint64_t seed;
    {
        std::lock_guard<std::mutex> lock(g_mutex);
        seed = g_plan != nullptr ? g_plan->seed : 1;
    }
    const std::uint64_t fires = g_fires.load(std::memory_order_relaxed);
    const std::size_t index = static_cast<std::size_t>(
        mix64(mix64(seed, site_hash(site)), fires) % buf.size());
    buf[index] ^= 0xA5u;
    log::debug(std::string("fault: corrupting byte ") + std::to_string(index) +
               " at " + site);
    return true;
}

void inject_point(const char* site) {
    if (!active()) return;
    FaultSpec spec;
    if (!consult(site, false, false, true, spec)) return;
    switch (spec.kind) {
        case FaultKind::Alloc:
            log::debug(std::string("fault: throwing bad_alloc at ") + site);
            throw std::bad_alloc();
        case FaultKind::Stall:
            log::debug(std::string("fault: stalling ") +
                       std::to_string(spec.stall_ms) + " ms at " + site);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(spec.stall_ms));
            return;
        case FaultKind::Kill:
            // No log: mirrors a real SIGKILL, which leaves no trace either.
            ::kill(::getpid(), SIGKILL);
            return;
        case FaultKind::IoError:
        case FaultKind::Corrupt:
            return;  // data-kind specs never fire at control points
    }
}

std::vector<SiteStats> stats() {
    std::lock_guard<std::mutex> lock(g_mutex);
    std::vector<SiteStats> out;
    if (g_plan == nullptr) return out;
    for (const SiteState& state : g_plan->sites)
        out.push_back(SiteStats{state.spec.site, state.hits, state.fires});
    return out;
}

std::uint64_t total_fires() noexcept {
    return g_fires.load(std::memory_order_relaxed);
}

}  // namespace glitchmask::fault

#endif  // !GLITCHMASK_NO_FAULT_INJECTION
