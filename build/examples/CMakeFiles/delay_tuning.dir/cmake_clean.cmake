file(REMOVE_RECURSE
  "CMakeFiles/delay_tuning.dir/delay_tuning.cpp.o"
  "CMakeFiles/delay_tuning.dir/delay_tuning.cpp.o.d"
  "delay_tuning"
  "delay_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delay_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
